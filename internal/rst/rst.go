// Package rst implements the Range Search Tree baseline (Gao &
// Steenkiste, ICNP 2004) as the paper's related-work section
// characterizes it: RST "goes to extreme, which gives each tree node the
// entire knowledge of global index tree... With index tree globally
// known, RST achieves one-hop exact-match query and efficient range
// query, but at the expense of high maintenance cost. A single leaf
// splitting could lead to a broadcasting to all nodes, which is quite
// inefficient and unscalable in P2P networks."
//
// The implementation makes that trade measurable: every peer caches the
// complete tree shape (the set of leaf labels), so queries route directly
// to the exact buckets with zero search overhead - and every structural
// change (split or merge) broadcasts the new shape to all P peers,
// charging P DHT messages to maintenance. P is a configuration parameter:
// the maintenance cost scales with the network, which is precisely the
// unscalability the paper criticizes (and what LHT's naming function
// avoids: its "global knowledge" is computable from any bucket's label).
//
// Buckets are stored in the DHT under their labels; there is no naming
// indirection since lookups never probe speculatively.
package rst

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"lht/internal/bitlabel"
	"lht/internal/dht"
	"lht/internal/keyspace"
	"lht/internal/metrics"
	"lht/internal/record"
)

var (
	// ErrKeyNotFound reports a search or deletion for an unindexed key.
	ErrKeyNotFound = errors.New("rst: data key not found")
	// ErrCorrupt reports an index state the algorithms cannot explain.
	ErrCorrupt = errors.New("rst: corrupt index state")
	// ErrBadRange reports a malformed range query.
	ErrBadRange = errors.New("rst: invalid range")
	// ErrConfig reports an invalid configuration.
	ErrConfig = errors.New("rst: invalid config")
)

// Cost reports the DHT traffic of one operation; see metrics.Cost.
type Cost = metrics.Cost

// Bucket is a leaf bucket, stored in the DHT under its own label.
type Bucket struct {
	Label   bitlabel.Label
	Records []record.Record
}

// Weight is the bucket's storage occupancy (records + label slot).
func (b *Bucket) Weight() int { return len(b.Records) + 1 }

// Interval returns the key interval the bucket covers.
func (b *Bucket) Interval() keyspace.Interval { return keyspace.IntervalOf(b.Label) }

// Config tunes an RST index.
type Config struct {
	// SplitThreshold and MergeThreshold mirror lht.Config.
	SplitThreshold int
	MergeThreshold int
	// Depth is the maximum tree depth in bits.
	Depth int
	// Peers is P, the number of peers holding a copy of the global tree:
	// every structural change broadcasts to all of them. The paper's
	// point is that this scales with the network.
	Peers int
}

// DefaultConfig matches the paper's experiment defaults with a 20-peer
// network (the paper's testbed size).
func DefaultConfig() Config {
	return Config{SplitThreshold: 100, MergeThreshold: 50, Depth: 20, Peers: 20}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.SplitThreshold < 4 {
		return fmt.Errorf("%w: SplitThreshold %d < 4", ErrConfig, c.SplitThreshold)
	}
	if c.MergeThreshold < 0 || c.MergeThreshold > c.SplitThreshold {
		return fmt.Errorf("%w: MergeThreshold %d outside [0, SplitThreshold]", ErrConfig, c.MergeThreshold)
	}
	if c.Depth < 2 || c.Depth > keyspace.MaxDepth {
		return fmt.Errorf("%w: Depth %d outside [2, %d]", ErrConfig, c.Depth, keyspace.MaxDepth)
	}
	if c.Peers < 1 {
		return fmt.Errorf("%w: Peers %d < 1", ErrConfig, c.Peers)
	}
	return nil
}

// Index is an RST index over a DHT substrate; create with New. The
// concurrency contract matches lht.Index.
type Index struct {
	d   dht.DHT
	cfg Config
	c   *metrics.Counters

	// shape is the globally replicated tree knowledge: the sorted set of
	// leaf labels. In the deployed system every peer holds a copy kept
	// in sync by broadcasts; here one authoritative copy stands for all
	// of them and each broadcast charges Peers messages.
	mu    sync.Mutex
	shape []bitlabel.Label // sorted left to right

	overflows int64
}

// New creates an index client, bootstrapping the single-leaf tree at
// "#0" if the substrate is empty.
func New(d dht.DHT, cfg Config) (*Index, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &metrics.Counters{}
	ix := &Index{d: dht.NewInstrumented(d, c), cfg: cfg, c: c}
	// The globally-known shape is itself a DHT object: a joining peer
	// fetches it instead of discovering the tree (uncharged bootstrap).
	v, err := d.Get(context.Background(), shapeKey)
	switch {
	case errors.Is(err, dht.ErrNotFound):
		if err := d.Put(context.Background(), bitlabel.TreeRoot.Key(), &Bucket{Label: bitlabel.TreeRoot}); err != nil {
			return nil, fmt.Errorf("rst: bootstrap: %w", err)
		}
		ix.shape = []bitlabel.Label{bitlabel.TreeRoot}
		if err := d.Put(context.Background(), shapeKey, ix.snapshotShape()); err != nil {
			return nil, fmt.Errorf("rst: bootstrap shape: %w", err)
		}
	case err != nil:
		return nil, fmt.Errorf("rst: probe substrate: %w", err)
	default:
		shape, ok := v.([]bitlabel.Label)
		if !ok {
			return nil, fmt.Errorf("%w: shape key holds %T", ErrCorrupt, v)
		}
		want := 0.0
		for _, l := range shape {
			iv := keyspace.IntervalOf(l)
			if iv.Lo != want {
				return nil, fmt.Errorf("%w: stored shape does not tile [0,1) at %s", ErrCorrupt, l)
			}
			want = iv.Hi
		}
		if want != 1 {
			return nil, fmt.Errorf("%w: stored shape covers [0, %g)", ErrCorrupt, want)
		}
		ix.shape = append([]bitlabel.Label(nil), shape...)
	}
	return ix, nil
}

// shapeKey stores the replicated tree shape; it cannot collide with
// bucket keys, which contain only '#', '0' and '1'.
const shapeKey = "#shape"

// snapshotShape copies the shape for storage (callers hold no lock at
// bootstrap; mutateShape snapshots under its own lock).
func (ix *Index) snapshotShape() []bitlabel.Label {
	out := make([]bitlabel.Label, len(ix.shape))
	copy(out, ix.shape)
	return out
}

// Config returns the index configuration.
func (ix *Index) Config() Config { return ix.cfg }

// Metrics returns the cumulative cost counters. Broadcast messages are
// charged to both Lookups (they are network traffic) and MaintLookups.
func (ix *Index) Metrics() metrics.Snapshot { return ix.c.Snapshot() }

// Overflows reports insertions into a full leaf at maximum depth.
func (ix *Index) Overflows() int64 {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.overflows
}

// leafFor resolves the leaf covering delta from the local tree copy -
// zero DHT traffic, the whole point of RST.
func (ix *Index) leafFor(delta float64) (bitlabel.Label, error) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	i := sort.Search(len(ix.shape), func(i int) bool {
		return keyspace.IntervalOf(ix.shape[i]).Hi > delta
	})
	if i == len(ix.shape) {
		return bitlabel.Label{}, fmt.Errorf("%w: no leaf covers %v", ErrCorrupt, delta)
	}
	return ix.shape[i], nil
}

// leavesIn returns the leaves overlapping [lo, hi), from the local copy.
func (ix *Index) leavesIn(lo, hi float64) []bitlabel.Label {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	var out []bitlabel.Label
	for _, l := range ix.shape {
		iv := keyspace.IntervalOf(l)
		if iv.Lo >= hi {
			break
		}
		if iv.Hi > lo {
			out = append(out, l)
		}
	}
	return out
}

// mutateShape applies fn to the shape under the lock, persists the new
// shape object, and charges the broadcast: one message per peer copy.
func (ix *Index) mutateShape(fn func(shape []bitlabel.Label) []bitlabel.Label) error {
	ix.mu.Lock()
	ix.shape = fn(ix.shape)
	sort.Slice(ix.shape, func(i, j int) bool {
		return bitlabel.Compare(ix.shape[i], ix.shape[j]) < 0
	})
	snapshot := ix.snapshotShape()
	ix.mu.Unlock()
	ix.c.AddLookups(int64(ix.cfg.Peers))
	ix.c.AddMaintLookups(int64(ix.cfg.Peers))
	if err := ix.d.Write(context.Background(), shapeKey, snapshot); err != nil {
		return fmt.Errorf("rst: persist shape: %w", err)
	}
	return nil
}

// getBucket fetches and type-asserts a bucket, charging cost.
func (ix *Index) getBucket(key string, cost *Cost) (*Bucket, error) {
	cost.Lookups++
	v, err := ix.d.Get(context.Background(), key)
	if err != nil {
		return nil, err
	}
	b, ok := v.(*Bucket)
	if !ok {
		return nil, fmt.Errorf("%w: key %q holds %T, not a bucket", ErrCorrupt, key, v)
	}
	return b, nil
}

// Search answers an exact-match query in one DHT-lookup: the local tree
// copy names the bucket directly.
func (ix *Index) Search(delta float64) (record.Record, Cost, error) {
	var cost Cost
	if err := keyspace.CheckKey(delta); err != nil {
		return record.Record{}, cost, err
	}
	leaf, err := ix.leafFor(delta)
	if err != nil {
		return record.Record{}, cost, err
	}
	b, err := ix.getBucket(leaf.Key(), &cost)
	cost.Steps = cost.Lookups
	if err != nil {
		return record.Record{}, cost, fmt.Errorf("rst: bucket %s: %w", leaf, err)
	}
	if i := record.FindByKey(b.Records, delta); i >= 0 {
		return b.Records[i], cost, nil
	}
	return record.Record{}, cost, fmt.Errorf("%w: %v", ErrKeyNotFound, delta)
}

// Insert adds a record: one direct put (no search), plus a possible
// split whose shape change broadcasts to every peer.
func (ix *Index) Insert(rec record.Record) (Cost, error) {
	var cost Cost
	if err := keyspace.CheckKey(rec.Key); err != nil {
		return cost, err
	}
	leaf, err := ix.leafFor(rec.Key)
	if err != nil {
		return cost, err
	}
	b, err := ix.getBucket(leaf.Key(), &cost)
	cost.Steps++
	if err != nil {
		return cost, fmt.Errorf("rst: bucket %s: %w", leaf, err)
	}
	if i := record.FindByKey(b.Records, rec.Key); i >= 0 {
		b.Records[i] = rec
	} else {
		b.Records = append(b.Records, rec)
	}
	cost.Lookups++
	cost.Steps++
	if err := ix.d.Put(context.Background(), leaf.Key(), b); err != nil {
		return cost, fmt.Errorf("rst: put %s: %w", leaf, err)
	}
	if b.Weight() >= ix.cfg.SplitThreshold {
		splitCost, err := ix.split(b)
		cost.Add(splitCost)
		if err != nil {
			return cost, err
		}
	}
	return cost, nil
}

// split divides a saturated leaf: both children are new labels, so both
// move (as in PHT), and the shape change broadcasts to all peers.
func (ix *Index) split(b *Bucket) (Cost, error) {
	var cost Cost
	if b.Label.Len() >= ix.cfg.Depth {
		ix.mu.Lock()
		ix.overflows++
		ix.mu.Unlock()
		return cost, nil
	}
	iv := b.Interval()
	pivot := iv.Lo + (iv.Hi-iv.Lo)/2
	var left, right []record.Record
	for _, r := range b.Records {
		if r.Key < pivot {
			left = append(left, r)
		} else {
			right = append(right, r)
		}
	}
	lc := &Bucket{Label: b.Label.Left(), Records: left}
	rc := &Bucket{Label: b.Label.Right(), Records: right}
	ix.c.AddSplits(1)
	ix.c.AddMovedRecords(int64(lc.Weight() + rc.Weight()))
	cost.Lookups += 3
	cost.Steps++
	if err := ix.d.Put(context.Background(), lc.Label.Key(), lc); err != nil {
		return cost, fmt.Errorf("rst: split put %s: %w", lc.Label, err)
	}
	if err := ix.d.Put(context.Background(), rc.Label.Key(), rc); err != nil {
		return cost, fmt.Errorf("rst: split put %s: %w", rc.Label, err)
	}
	if err := ix.d.Remove(context.Background(), b.Label.Key()); err != nil {
		return cost, fmt.Errorf("rst: split remove %s: %w", b.Label, err)
	}
	ix.c.AddMaintLookups(3)
	old := b.Label
	err := ix.mutateShape(func(shape []bitlabel.Label) []bitlabel.Label {
		out := shape[:0]
		for _, l := range shape {
			if l != old {
				out = append(out, l)
			}
		}
		return append(out, lc.Label, rc.Label)
	})
	cost.Lookups += ix.cfg.Peers // the broadcast
	cost.Steps++                 // one parallel round
	return cost, err
}

// Delete removes a record; an underweight leaf merges with its sibling
// leaf, which again broadcasts.
func (ix *Index) Delete(delta float64) (Cost, error) {
	var cost Cost
	if err := keyspace.CheckKey(delta); err != nil {
		return cost, err
	}
	leaf, err := ix.leafFor(delta)
	if err != nil {
		return cost, err
	}
	b, err := ix.getBucket(leaf.Key(), &cost)
	cost.Steps++
	if err != nil {
		return cost, fmt.Errorf("rst: bucket %s: %w", leaf, err)
	}
	i := record.FindByKey(b.Records, delta)
	if i < 0 {
		return cost, fmt.Errorf("%w: %v", ErrKeyNotFound, delta)
	}
	b.Records[i] = b.Records[len(b.Records)-1]
	b.Records = b.Records[:len(b.Records)-1]
	cost.Lookups++
	cost.Steps++
	if err := ix.d.Put(context.Background(), leaf.Key(), b); err != nil {
		return cost, fmt.Errorf("rst: put %s: %w", leaf, err)
	}
	if ix.cfg.MergeThreshold > 0 && leaf.Len() >= 2 && b.Weight() < ix.cfg.MergeThreshold {
		mergeCost, err := ix.merge(b)
		cost.Add(mergeCost)
		if err != nil {
			return cost, err
		}
	}
	return cost, nil
}

// merge collapses b with its sibling leaf when their combined weight is
// low; the parent becomes a leaf and the change broadcasts.
func (ix *Index) merge(b *Bucket) (Cost, error) {
	var cost Cost
	sibling := b.Label.Sibling()
	ix.mu.Lock()
	siblingIsLeaf := false
	for _, l := range ix.shape {
		if l == sibling {
			siblingIsLeaf = true
			break
		}
	}
	ix.mu.Unlock()
	if !siblingIsLeaf {
		return cost, nil
	}
	sb, err := ix.getBucket(sibling.Key(), &cost)
	cost.Steps++
	if err != nil {
		return cost, fmt.Errorf("rst: sibling %s: %w", sibling, err)
	}
	if b.Weight()+sb.Weight()-1 >= ix.cfg.MergeThreshold {
		return cost, nil
	}
	parent := &Bucket{
		Label:   b.Label.Parent(),
		Records: append(append([]record.Record{}, b.Records...), sb.Records...),
	}
	ix.c.AddMerges(1)
	ix.c.AddMovedRecords(int64(parent.Weight()))
	cost.Lookups += 3
	cost.Steps++
	if err := ix.d.Put(context.Background(), parent.Label.Key(), parent); err != nil {
		return cost, fmt.Errorf("rst: merge put %s: %w", parent.Label, err)
	}
	if err := ix.d.Remove(context.Background(), b.Label.Key()); err != nil {
		return cost, fmt.Errorf("rst: merge remove %s: %w", b.Label, err)
	}
	if err := ix.d.Remove(context.Background(), sibling.Key()); err != nil {
		return cost, fmt.Errorf("rst: merge remove %s: %w", sibling, err)
	}
	ix.c.AddMaintLookups(3)
	old1, old2 := b.Label, sibling
	err = ix.mutateShape(func(shape []bitlabel.Label) []bitlabel.Label {
		out := shape[:0]
		for _, l := range shape {
			if l != old1 && l != old2 {
				out = append(out, l)
			}
		}
		return append(out, parent.Label)
	})
	cost.Lookups += ix.cfg.Peers
	cost.Steps++
	return cost, err
}

// Range answers [lo, hi) optimally: the local tree copy lists exactly
// the overlapping buckets, all fetched in one parallel round - B lookups,
// 1 step. This is the query efficiency the broadcast maintenance buys.
func (ix *Index) Range(lo, hi float64) ([]record.Record, Cost, error) {
	var cost Cost
	if err := keyspace.CheckKey(lo); err != nil {
		return nil, cost, fmt.Errorf("%w: lo: %v", ErrBadRange, err)
	}
	if !(hi > lo && hi <= 1) {
		return nil, cost, fmt.Errorf("%w: [%v, %v)", ErrBadRange, lo, hi)
	}
	leaves := ix.leavesIn(lo, hi)
	var out []record.Record
	for _, l := range leaves {
		b, err := ix.getBucket(l.Key(), &cost)
		if err != nil {
			return nil, cost, fmt.Errorf("rst: bucket %s: %w", l, err)
		}
		out = record.FilterRange(out, b.Records, lo, hi)
	}
	cost.Steps = 1
	if len(leaves) == 0 {
		cost.Steps = 0
	}
	return out, cost, nil
}

// Leaves returns the leaf labels in key order (the local copy).
func (ix *Index) Leaves() []bitlabel.Label {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	out := make([]bitlabel.Label, len(ix.shape))
	copy(out, ix.shape)
	return out
}

// Count returns the number of indexed records (testing helper).
func (ix *Index) Count() (int, error) {
	recs, _, err := ix.Range(0, 1)
	if err != nil {
		return 0, err
	}
	return len(recs), nil
}

// CheckInvariants verifies that the replicated shape matches the stored
// buckets: the shape tiles [0, 1), every shape leaf's bucket exists under
// its label with matching label and in-interval records.
func (ix *Index) CheckInvariants() error {
	leaves := ix.Leaves()
	want := 0.0
	for _, l := range leaves {
		iv := keyspace.IntervalOf(l)
		if iv.Lo != want {
			return fmt.Errorf("%w: shape leaf %s starts at %g, want %g", ErrCorrupt, l, iv.Lo, want)
		}
		want = iv.Hi
		var cost Cost
		b, err := ix.getBucket(l.Key(), &cost)
		if err != nil {
			return fmt.Errorf("%w: shape leaf %s has no bucket: %v", ErrCorrupt, l, err)
		}
		if b.Label != l {
			return fmt.Errorf("%w: bucket under %s is labeled %s", ErrCorrupt, l, b.Label)
		}
		for _, r := range b.Records {
			if !iv.Contains(r.Key) {
				return fmt.Errorf("%w: record %g outside leaf %s", ErrCorrupt, r.Key, l)
			}
		}
	}
	if want != 1 {
		return fmt.Errorf("%w: shape tiles [0, %g)", ErrCorrupt, want)
	}
	return nil
}
