package tcpnet

import (
	"context"
	"encoding/binary"
	"fmt"
	"sync"

	"lht/internal/dht"
)

var _ dht.Batcher = (*Client)(nil)

// malformedResp wraps a response-parse failure: the server (or something
// between) broke framing, which is a transport-level, retryable fault.
func malformedResp(err error) error {
	return dht.MarkTransient(fmt.Errorf("tcpnet: malformed response: %w", err))
}

// GetBatch implements dht.Batcher: the batch's keys are grouped by owning
// node and each group travels as one framed multi-op message, the round
// trips to distinct nodes running concurrently. A transport failure fails
// only that node's slots; the rest of the batch stands.
func (c *Client) GetBatch(ctx context.Context, keys []string) ([]dht.Value, []error) {
	vals := make([]dht.Value, len(keys))
	errs := make([]error, len(keys))
	var wg sync.WaitGroup
	for n, slots := range c.groupByOwner(keys) {
		wg.Add(1)
		go func(n *clientNode, slots []int) {
			defer wg.Done()
			if c.wire == WireGob {
				c.gobGetBatch(ctx, n, keys, slots, vals, errs)
			} else {
				c.frameGetBatch(ctx, n, keys, slots, vals, errs)
			}
		}(n, slots)
	}
	wg.Wait()
	return vals, errs
}

// PutBatch implements dht.Batcher with the same per-owner grouping as
// GetBatch. Pairs travel and apply in slice order, so a duplicate key's
// last occurrence wins. A pair whose value fails to encode fails in its
// slot alone and is left out of the wire message. With replication on,
// the batch is stored on every holder — one wave of per-node batches per
// replica rank — so a bulk load leaves the same fully replicated store
// that per-key writes would.
func (c *Client) PutBatch(ctx context.Context, kvs []dht.KV) []error {
	errs := c.putBatchRank(ctx, kvs, 0)
	for r := 1; r < c.replicas; r++ {
		for i, err := range c.putBatchRank(ctx, kvs, r) {
			if errs[i] == nil {
				errs[i] = err
			}
		}
	}
	return errs
}

// putBatchRank stores each pair on its rank-th holder, grouped per node.
func (c *Client) putBatchRank(ctx context.Context, kvs []dht.KV, rank int) []error {
	errs := make([]error, len(kvs))
	keys := make([]string, len(kvs))
	for i, kv := range kvs {
		keys[i] = kv.Key
	}
	// Pre-encode values that need gob; on the framed wire a []byte value
	// travels raw and needs no encoding pass at all.
	enc := make([][]byte, len(kvs))
	for i, kv := range kvs {
		if c.wire != WireGob {
			if _, ok := kv.Val.([]byte); ok {
				continue
			}
		}
		b, err := encodeValue(kv.Val)
		if err != nil {
			errs[i] = err
			continue
		}
		enc[i] = b
	}
	var wg sync.WaitGroup
	for n, slots := range c.groupByRank(keys, rank) {
		sendable := slots[:0:0]
		for _, i := range slots {
			if errs[i] == nil {
				sendable = append(sendable, i)
			}
		}
		if len(sendable) == 0 {
			continue
		}
		wg.Add(1)
		go func(n *clientNode, slots []int) {
			defer wg.Done()
			if c.wire == WireGob {
				c.gobPutBatch(ctx, n, kvs, enc, slots, errs)
			} else {
				c.framePutBatch(ctx, n, kvs, enc, slots, errs)
			}
		}(n, sendable)
	}
	wg.Wait()
	return errs
}

// groupByOwner maps each owning node to the slot indices it serves, in
// ascending slice order per node. Batched reads always group by primary:
// the primary is in every key's holder set and sees every accepted
// write, so a primary-grouped read can miss nothing a replicated one
// would find.
func (c *Client) groupByOwner(keys []string) map[*clientNode][]int {
	return c.groupByRank(keys, 0)
}

// groupByRank groups each key under its rank-th holder (rank 0 is the
// primary; higher ranks exist only with replication on).
func (c *Client) groupByRank(keys []string, rank int) map[*clientNode][]int {
	groups := make(map[*clientNode][]int)
	for i, k := range keys {
		n := c.owner(k)
		if rank > 0 {
			n = c.owners(k)[rank]
		}
		groups[n] = append(groups[n], i)
	}
	return groups
}

// --- framed binary wire ---

// batchCall performs one framed batch round trip and hands back a cursor
// positioned at the first of want slots, or an error applied to the whole
// group. The returned frame must be recycled after the slots are parsed.
func batchCall(ctx context.Context, n *clientNode, op dht.OpKind, want int, build func([]byte) ([]byte, error)) (cursor, *[]byte, error) {
	body, err := n.pick().call(ctx, op, build)
	if err != nil {
		return cursor{}, nil, err
	}
	cur := cursor{b: (*body)[frameHeaderLen:]}
	status, err := cur.u8()
	if err != nil {
		putBuf(body)
		return cursor{}, nil, malformedResp(err)
	}
	if status != statusOK {
		err = serverErr(cur.rest())
		putBuf(body)
		return cursor{}, nil, err
	}
	got, err := cur.count()
	if err != nil {
		putBuf(body)
		return cursor{}, nil, malformedResp(err)
	}
	if got != want {
		putBuf(body)
		return cursor{}, nil, fmt.Errorf("tcpnet: batch reply has %d slots, want %d", got, want)
	}
	return cur, body, nil
}

func (c *Client) frameGetBatch(ctx context.Context, n *clientNode, keys []string, slots []int, vals []dht.Value, errs []error) {
	cur, frame, err := batchCall(ctx, n, dht.OpGetBatch, len(slots), func(b []byte) ([]byte, error) {
		b = appendUv(b, uint64(len(slots)))
		for _, i := range slots {
			b = appendLenString(b, keys[i])
		}
		return b, nil
	})
	if err != nil {
		for _, i := range slots {
			errs[i] = err
		}
		return
	}
	defer putBuf(frame)
	for _, i := range slots {
		st, err := cur.u8()
		if err != nil {
			errs[i] = malformedResp(err)
			continue
		}
		switch st {
		case statusOK:
			tv, err := cur.lenBytes()
			if err != nil {
				errs[i] = malformedResp(err)
				continue
			}
			vals[i], errs[i] = decodeTaggedValue(tv)
		case statusNotFound:
			errs[i] = dht.ErrNotFound
		default:
			msg, err := cur.lenBytes()
			if err != nil {
				errs[i] = malformedResp(err)
				continue
			}
			errs[i] = serverErr(msg)
		}
	}
}

func (c *Client) framePutBatch(ctx context.Context, n *clientNode, kvs []dht.KV, enc [][]byte, slots []int, errs []error) {
	cur, frame, err := batchCall(ctx, n, dht.OpPutBatch, len(slots), func(b []byte) ([]byte, error) {
		b = appendUv(b, uint64(len(slots)))
		for _, i := range slots {
			b = appendLenString(b, kvs[i].Key)
			if e := enc[i]; e != nil {
				// Epoch-carrying values get the same tagEpoch prefix
				// appendValue produces, sized into the slot's length.
				var ev [binary.MaxVarintLen64]byte
				evn := 0
				if ep, ok := kvs[i].Val.(dht.Epocher); ok {
					evn = binary.PutUvarint(ev[:], ep.DHTEpoch())
				}
				if evn > 0 {
					b = appendUv(b, uint64(1+evn+1+len(e)))
					b = append(b, tagEpoch)
					b = append(b, ev[:evn]...)
				} else {
					b = appendUv(b, uint64(1+len(e)))
				}
				b = append(b, tagGob)
				b = append(b, e...)
			} else {
				raw, _ := kvs[i].Val.([]byte)
				b = appendUv(b, uint64(1+len(raw)))
				b = append(b, tagRaw)
				b = append(b, raw...)
			}
		}
		return b, nil
	})
	if err != nil {
		for _, i := range slots {
			errs[i] = err
		}
		return
	}
	defer putBuf(frame)
	for _, i := range slots {
		st, err := cur.u8()
		if err != nil {
			errs[i] = malformedResp(err)
			continue
		}
		switch st {
		case statusOK:
			if _, err := cur.lenBytes(); err != nil {
				errs[i] = malformedResp(err)
			}
		case statusNotFound:
			errs[i] = dht.ErrNotFound
		default:
			msg, err := cur.lenBytes()
			if err != nil {
				errs[i] = malformedResp(err)
				continue
			}
			errs[i] = serverErr(msg)
		}
	}
}

// --- legacy gob wire ---

func (c *Client) gobGetBatch(ctx context.Context, n *clientNode, keys []string, slots []int, vals []dht.Value, errs []error) {
	req := request{Op: opGetBatch, Keys: make([]string, len(slots))}
	for j, i := range slots {
		req.Keys[j] = keys[i]
	}
	replies, err := n.gc.batchRoundTrip(ctx, req, len(slots))
	if err != nil {
		for _, i := range slots {
			errs[i] = err
		}
		return
	}
	for j, i := range slots {
		switch replies[j].Err {
		case "":
			vals[i], errs[i] = decodeValue(replies[j].Val)
		case errNotFound:
			errs[i] = dht.ErrNotFound
		default:
			errs[i] = fmt.Errorf("tcpnet: server error: %s", replies[j].Err)
		}
	}
}

func (c *Client) gobPutBatch(ctx context.Context, n *clientNode, kvs []dht.KV, enc [][]byte, slots []int, errs []error) {
	req := request{Op: opPutBatch, KVs: make([]batchKV, len(slots))}
	for j, i := range slots {
		req.KVs[j] = batchKV{Key: kvs[i].Key, Val: enc[i]}
		if e, ok := kvs[i].Val.(dht.Epocher); ok {
			req.KVs[j].Epoch, req.KVs[j].EpochKnown = e.DHTEpoch(), true
		}
	}
	replies, err := n.gc.batchRoundTrip(ctx, req, len(slots))
	if err != nil {
		for _, i := range slots {
			errs[i] = err
		}
		return
	}
	for j, i := range slots {
		if replies[j].Err != "" {
			errs[i] = fmt.Errorf("tcpnet: server error: %s", replies[j].Err)
		}
	}
}
