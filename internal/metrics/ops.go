package metrics

import "context"

// Op classifies an index-level operation for latency and phase
// attribution. OpOther is the zero value: traffic issued outside any
// labelled operation.
type Op int

const (
	OpOther Op = iota
	OpGet
	OpInsert
	OpDelete
	OpRange
	OpMin
	OpMax
	OpScan
	OpBulkLoad
	OpScrub
	NumOps // count sentinel, keep last
)

var opNames = [NumOps]string{
	"other", "get", "insert", "delete", "range",
	"min", "max", "scan", "bulkload", "scrub",
}

func (o Op) String() string {
	if o < 0 || o >= NumOps {
		return "invalid"
	}
	return opNames[o]
}

// Phase classifies which part of an algorithm issued a DHT-lookup.
// PhaseOther is the zero value: the operation's own direct reads and
// writes (e.g. the write-back of an insert).
type Phase int

const (
	PhaseOther   Phase = iota
	PhaseProbe         // Algorithm 2 binary search and cache probes
	PhaseForward       // range/scan forwarding along tree edges (Alg 3/4)
	PhaseSplit         // leaf split traffic (Alg 1 maintenance)
	PhaseMerge         // leaf merge traffic (Alg 1 maintenance)
	PhaseRepair        // torn-state read-repair and scrub repairs
	PhaseRetry         // policy-layer re-attempts after transient faults
	NumPhases          // count sentinel, keep last
)

var phaseNames = [NumPhases]string{
	"other", "probe", "forward", "split", "merge", "repair", "retry",
}

func (p Phase) String() string {
	if p < 0 || p >= NumPhases {
		return "invalid"
	}
	return phaseNames[p]
}

// Labels are the attribution labels carried on a context: which
// operation class is running and which algorithm phase it is in. The
// zero value (OpOther, PhaseOther) labels unattributed traffic.
type Labels struct {
	Op    Op
	Phase Phase
}

type labelsKey struct{}

// WithOp starts a new operation scope: it labels ctx with the given
// class and resets the phase to PhaseOther. Index entry points call
// this once; everything beneath inherits the class.
func WithOp(ctx context.Context, op Op) context.Context {
	if lb := LabelsFrom(ctx); lb.Op == op && lb.Phase == PhaseOther {
		return ctx
	}
	return context.WithValue(ctx, labelsKey{}, Labels{Op: op})
}

// WithPhase labels ctx with the algorithm phase, keeping the operation
// class already on it. Returns ctx unchanged when the phase is already
// set, so it is cheap to call in loops and recursion.
func WithPhase(ctx context.Context, phase Phase) context.Context {
	lb := LabelsFrom(ctx)
	if lb.Phase == phase {
		return ctx
	}
	lb.Phase = phase
	return context.WithValue(ctx, labelsKey{}, lb)
}

// LabelsFrom returns the attribution labels on ctx, or the zero Labels
// when none are set.
func LabelsFrom(ctx context.Context) Labels {
	lb, _ := ctx.Value(labelsKey{}).(Labels)
	return lb
}
