package metrics

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// goldenCounters populates a Counters deterministically: fixed counter
// increments and fixed observation durations, so the exposition below is
// pinned byte-for-byte.
func goldenCounters() *Counters {
	var c Counters
	c.AddLookups(12)
	c.AddFailedGets(2)
	c.AddMovedRecords(30)
	c.AddSplits(3)
	c.AddMerges(1)
	c.AddMaintLookups(5)
	c.AddCacheHits(4)
	c.AddCacheMisses(6)
	c.AddCacheStale(1)
	c.AddRetries(2)
	c.AddCancellations(1)
	c.AddDeadlineExceeded(1)
	c.AddBatchOps(2)
	c.AddBatchedKeys(8)
	c.AddTornSplits(1)
	c.AddRepairs(1)
	c.AddScrubLookups(4)
	c.AddCASConflicts(3)
	c.AddWriterRetries(2)
	c.AddCASFallbacks(1)
	c.AddHotSplits(2)
	c.AddCoalescedGets(5)
	c.AddSpreadReads(6)
	c.AddHedgedGets(3)
	c.AddHedgeWins(1)
	c.AddBreakerOpens(2)
	c.AddBreakerFastFails(4)
	c.AddFailovers(2)
	c.AddGossipRounds(5)
	c.AddViewRefreshes(2)
	c.AddHintsParked(3)
	c.AddHintsReplayed(2)
	c.AddReplicaProbes(9)
	c.AddReplicaRepairs(1)
	c.AddPhaseLookups(OpGet, PhaseProbe, 7)
	c.AddPhaseLookups(OpGet, PhaseRetry, 1)
	c.AddPhaseLookups(OpRange, PhaseForward, 4)
	c.ObserveOp(OpGet, 2*time.Microsecond, false)
	c.ObserveOp(OpGet, 3*time.Microsecond, true)
	c.ObserveOp(OpRange, time.Millisecond, false)
	return &c
}

const goldenExposition = `# HELP lht_dht_lookups_total DHT-lookups issued (paper section 8.1 bandwidth measure).
# TYPE lht_dht_lookups_total counter
lht_dht_lookups_total 12
# HELP lht_dht_failed_gets_total DHT-gets that returned not-found.
# TYPE lht_dht_failed_gets_total counter
lht_dht_failed_gets_total 2
# HELP lht_moved_records_total Record slots moved between peers.
# TYPE lht_moved_records_total counter
lht_moved_records_total 30
# HELP lht_splits_total Leaf splits performed.
# TYPE lht_splits_total counter
lht_splits_total 3
# HELP lht_merges_total Leaf merges performed.
# TYPE lht_merges_total counter
lht_merges_total 1
# HELP lht_maint_lookups_total Lookups spent on splits and merges.
# TYPE lht_maint_lookups_total counter
lht_maint_lookups_total 5
# HELP lht_cache_hits_total Leaf-cache probes resolved in one DHT-get.
# TYPE lht_cache_hits_total counter
lht_cache_hits_total 4
# HELP lht_cache_misses_total Lookups with no leaf-cache entry.
# TYPE lht_cache_misses_total counter
lht_cache_misses_total 6
# HELP lht_cache_stale_total Leaf-cache probes that detected a stale entry.
# TYPE lht_cache_stale_total counter
lht_cache_stale_total 1
# HELP lht_retries_total Policy-layer retries after transient faults.
# TYPE lht_retries_total counter
lht_retries_total 2
# HELP lht_cancellations_total Operations ended by context cancellation.
# TYPE lht_cancellations_total counter
lht_cancellations_total 1
# HELP lht_deadline_exceeded_total Operations ended by context deadline expiry.
# TYPE lht_deadline_exceeded_total counter
lht_deadline_exceeded_total 1
# HELP lht_batch_ops_total Native batched round trips issued.
# TYPE lht_batch_ops_total counter
lht_batch_ops_total 2
# HELP lht_batched_keys_total Keys carried inside native batches.
# TYPE lht_batched_keys_total counter
lht_batched_keys_total 8
# HELP lht_torn_splits_total Torn split intents detected.
# TYPE lht_torn_splits_total counter
lht_torn_splits_total 1
# HELP lht_torn_merges_total Torn merge intents detected.
# TYPE lht_torn_merges_total counter
lht_torn_merges_total 0
# HELP lht_repairs_total Torn states completed or rolled back.
# TYPE lht_repairs_total counter
lht_repairs_total 1
# HELP lht_scrub_lookups_total Lookups issued by Scrub walks.
# TYPE lht_scrub_lookups_total counter
lht_scrub_lookups_total 4
# HELP lht_cas_conflicts_total Conditional writes that lost their compare-and-swap.
# TYPE lht_cas_conflicts_total counter
lht_cas_conflicts_total 3
# HELP lht_writer_retries_total Index mutation rounds re-run after a CAS conflict.
# TYPE lht_writer_retries_total counter
lht_writer_retries_total 2
# HELP lht_cas_fallbacks_total Conditional ops emulated by fetch-verify-write.
# TYPE lht_cas_fallbacks_total counter
lht_cas_fallbacks_total 1
# HELP lht_hot_splits_total Leaf splits triggered by request rate, not capacity.
# TYPE lht_hot_splits_total counter
lht_hot_splits_total 2
# HELP lht_coalesced_gets_total DHT-gets absorbed by singleflight coalescing.
# TYPE lht_coalesced_gets_total counter
lht_coalesced_gets_total 5
# HELP lht_spread_reads_total Reads served starting at a non-primary replica.
# TYPE lht_spread_reads_total counter
lht_spread_reads_total 6
# HELP lht_hedged_gets_total Duplicate reads launched after the hedge delay.
# TYPE lht_hedged_gets_total counter
lht_hedged_gets_total 3
# HELP lht_hedge_wins_total Hedges that answered before the original attempt.
# TYPE lht_hedge_wins_total counter
lht_hedge_wins_total 1
# HELP lht_breaker_opens_total Circuit-breaker transitions into the open state.
# TYPE lht_breaker_opens_total counter
lht_breaker_opens_total 2
# HELP lht_breaker_fast_fails_total Operations rejected instantly by an open breaker.
# TYPE lht_breaker_fast_fails_total counter
lht_breaker_fast_fails_total 4
# HELP lht_failovers_total Reads rerouted off an unhealthy holder.
# TYPE lht_failovers_total counter
lht_failovers_total 2
# HELP lht_gossip_rounds_total Anti-entropy membership exchanges performed.
# TYPE lht_gossip_rounds_total counter
lht_gossip_rounds_total 5
# HELP lht_view_refreshes_total Membership views applied to a client routing ring.
# TYPE lht_view_refreshes_total counter
lht_view_refreshes_total 2
# HELP lht_hints_parked_total Hinted handoffs parked for an unreachable holder.
# TYPE lht_hints_parked_total counter
lht_hints_parked_total 3
# HELP lht_hints_replayed_total Parked hints delivered to their returned holder.
# TYPE lht_hints_replayed_total counter
lht_hints_replayed_total 2
# HELP lht_replica_probes_total Per-holder existence probes issued by re-replication.
# TYPE lht_replica_probes_total counter
lht_replica_probes_total 9
# HELP lht_replica_repairs_total Missing replica copies restored on their owners.
# TYPE lht_replica_repairs_total counter
lht_replica_repairs_total 1
# HELP lht_op_total Completed index operations per class.
# TYPE lht_op_total counter
lht_op_total{op="get"} 2
lht_op_total{op="range"} 1
# HELP lht_op_errors_total Index operations per class that returned an error.
# TYPE lht_op_errors_total counter
lht_op_errors_total{op="get"} 1
lht_op_errors_total{op="range"} 0
# HELP lht_phase_lookups_total DHT-lookups attributed to an operation class and algorithm phase.
# TYPE lht_phase_lookups_total counter
lht_phase_lookups_total{op="get",phase="probe"} 7
lht_phase_lookups_total{op="get",phase="retry"} 1
lht_phase_lookups_total{op="range",phase="forward"} 4
# HELP lht_op_latency_seconds End-to-end index operation latency per class.
# TYPE lht_op_latency_seconds histogram
lht_op_latency_seconds_bucket{op="get",le="2.048e-06"} 1
lht_op_latency_seconds_bucket{op="get",le="4.096e-06"} 2
lht_op_latency_seconds_bucket{op="get",le="+Inf"} 2
lht_op_latency_seconds_sum{op="get"} 5e-06
lht_op_latency_seconds_count{op="get"} 2
lht_op_latency_seconds_bucket{op="range",le="0.001048576"} 1
lht_op_latency_seconds_bucket{op="range",le="+Inf"} 1
lht_op_latency_seconds_sum{op="range"} 0.001
lht_op_latency_seconds_count{op="range"} 1
`

// TestWritePrometheusGolden pins the full exposition for a deterministic
// workload: any change to metric names, label sets, or bucket rendering
// must update the golden text consciously.
func TestWritePrometheusGolden(t *testing.T) {
	var b strings.Builder
	if err := WritePrometheus(&b, goldenCounters().Snapshot()); err != nil {
		t.Fatal(err)
	}
	got, want := b.String(), goldenExposition
	if got == want {
		return
	}
	gl, wl := strings.Split(got, "\n"), strings.Split(want, "\n")
	for i := 0; i < len(gl) || i < len(wl); i++ {
		var g, w string
		if i < len(gl) {
			g = gl[i]
		}
		if i < len(wl) {
			w = wl[i]
		}
		if g != w {
			t.Fatalf("exposition line %d:\n got: %q\nwant: %q", i+1, g, w)
		}
	}
	t.Fatal("exposition differs in trailing whitespace")
}

func TestHandler(t *testing.T) {
	c := goldenCounters()
	srv := httptest.NewServer(NewMux(c.Snapshot))
	defer srv.Close()
	res, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	var b strings.Builder
	if _, err := io.Copy(&b, res.Body); err != nil {
		t.Fatal(err)
	}
	if b.String() != goldenExposition {
		t.Fatal("handler body differs from WritePrometheus output")
	}
	// pprof index must be mounted on the same mux.
	res2, err := srv.Client().Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	res2.Body.Close()
	if res2.StatusCode != 200 {
		t.Fatalf("pprof status = %d", res2.StatusCode)
	}
}
