package lht

// Facade wiring for hedged reads: Config.HedgeAfter stacks dht.WithHedging
// below the instrumentation layer, so hedges cost physical round trips but
// never DHT-lookups, and the config validation rejects nonsense.

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"lht/internal/dht"
	"lht/internal/record"
)

// slowEveryOther delays every second Get long enough for the hedge to
// fire; all other traffic passes straight through.
type slowEveryOther struct {
	dht.DHT
	gets  atomic.Int64
	delay time.Duration
}

func (s *slowEveryOther) Get(ctx context.Context, key string) (dht.Value, error) {
	if s.gets.Add(1)%2 == 0 {
		select {
		case <-time.After(s.delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return s.DHT.Get(ctx, key)
}

func TestConfigHedgeAfterValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HedgeAfter = -time.Millisecond
	if _, err := New(dht.NewLocal(), cfg); !errors.Is(err, ErrConfig) {
		t.Fatalf("New with negative HedgeAfter = %v, want ErrConfig", err)
	}
}

// TestHedgedGetsUnderFacade: with HedgeAfter set, searches through a
// substrate with a slow arm stay correct, hedges are counted, and the
// DHT-lookup cost is identical to an unhedged run — hedging lives below
// the cost model.
func TestHedgedGetsUnderFacade(t *testing.T) {
	base := dht.NewLocal()
	cfg := Config{SplitThreshold: 4, Depth: 20, HedgeAfter: 2 * time.Millisecond}
	ix, err := New(&slowEveryOther{DHT: base, delay: 250 * time.Millisecond}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	builder, err := New(base, Config{SplitThreshold: 4, Depth: 20})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := New(base, Config{SplitThreshold: 4, Depth: 20})
	if err != nil {
		t.Fatal(err)
	}

	keys := []float64{0.1, 0.3, 0.7, 0.9}
	for i, k := range keys {
		if _, err := builder.Insert(record.Record{Key: k, Value: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	for i, k := range keys {
		rec, _, err := ref.Search(k)
		if err != nil || rec.Value[0] != byte(i) {
			t.Fatalf("reference Search(%g) = %v, %v", k, rec, err)
		}
	}
	start := time.Now()
	for i, k := range keys {
		rec, _, err := ix.Search(k)
		if err != nil || rec.Value[0] != byte(i) {
			t.Fatalf("Search(%g) = %v, %v", k, rec, err)
		}
	}
	if d := time.Since(start); d > 200*time.Millisecond {
		t.Fatalf("hedged searches took %v; hedge never rescued the slow arm", d)
	}

	hf := ix.Metrics().Flat()
	rf := ref.Metrics().Flat()
	if hf.HedgedGets == 0 || hf.HedgeWins == 0 {
		t.Fatalf("HedgedGets=%d HedgeWins=%d, want both > 0", hf.HedgedGets, hf.HedgeWins)
	}
	if hf.Lookups != rf.Lookups {
		t.Fatalf("hedged run charged %d lookups, reference %d — hedges must not be lookups",
			hf.Lookups, rf.Lookups)
	}
}
