package dht

import (
	"errors"

	"lht/internal/metrics"
)

// Instrumented wraps a DHT and charges every routed operation to a
// metrics.Counters according to the paper's cost model: Get, Put, Take and
// Remove each cost one DHT-lookup; failed Gets are additionally counted so
// experiments can report them; Write is free.
type Instrumented struct {
	inner DHT
	c     *metrics.Counters
}

var _ DHT = (*Instrumented)(nil)

// NewInstrumented wraps inner, charging costs to c. c must not be nil.
func NewInstrumented(inner DHT, c *metrics.Counters) *Instrumented {
	return &Instrumented{inner: inner, c: c}
}

// Counters returns the counter set this wrapper charges.
func (d *Instrumented) Counters() *metrics.Counters { return d.c }

// Get implements DHT, counting one lookup (and one failed get on miss).
func (d *Instrumented) Get(key string) (Value, error) {
	d.c.AddLookups(1)
	v, err := d.inner.Get(key)
	if errors.Is(err, ErrNotFound) {
		d.c.AddFailedGets(1)
	}
	return v, err
}

// Put implements DHT, counting one lookup.
func (d *Instrumented) Put(key string, v Value) error {
	d.c.AddLookups(1)
	return d.inner.Put(key, v)
}

// Take implements DHT, counting one lookup.
func (d *Instrumented) Take(key string) (Value, error) {
	d.c.AddLookups(1)
	v, err := d.inner.Take(key)
	if errors.Is(err, ErrNotFound) {
		d.c.AddFailedGets(1)
	}
	return v, err
}

// Remove implements DHT, counting one lookup.
func (d *Instrumented) Remove(key string) error {
	d.c.AddLookups(1)
	return d.inner.Remove(key)
}

// Write implements DHT; it is free in the cost model.
func (d *Instrumented) Write(key string, v Value) error {
	return d.inner.Write(key, v)
}
