package lht

import (
	"errors"
	"fmt"
	"time"

	"lht/internal/dht"
	"lht/internal/keyspace"
	"lht/internal/metrics"
)

// Config tunes an LHT index. The zero value is invalid; start from
// DefaultConfig.
type Config struct {
	// SplitThreshold is theta_split: the storage capacity of a leaf
	// bucket, counted in record slots, one of which the leaf label
	// occupies (section 9.2). A bucket splits when an insertion brings
	// its weight (records + label slot) up to the threshold, i.e. when
	// its theta-1 real-record capacity is exceeded - the accounting under
	// which the paper derives average alpha = 1/2 + 1/(2*theta). Must be
	// at least 4 so both split halves can hold a record.
	SplitThreshold int

	// MergeThreshold triggers the dual of splitting: when, after a
	// deletion, a leaf and its sibling leaf have combined merged weight
	// strictly below MergeThreshold, they merge into their parent. The
	// paper (section 3.2) merges whenever a subtree drops below
	// theta_split; we default to theta_split/2 for hysteresis so an
	// insert-delete workload at the boundary does not thrash. Set to 0 to
	// disable merging.
	MergeThreshold int

	// Depth is D, the a-priori maximum tree depth in bits (paper section
	// 5: the maximum label length is D+1 characters, i.e. D bits). The
	// lookup binary search runs over prefix lengths 1..D. Must be in
	// [2, keyspace.MaxDepth] (52: the float64 exactness bound). The
	// paper's experiments use 20.
	Depth int

	// LeafCache enables the client-side leaf cache: a bounded LRU of
	// leaf labels this client has observed, consulted before Algorithm
	// 2's binary search. A hit resolves an exact-match lookup in one
	// DHT-get instead of ~log2(D); staleness (the leaf split or merged
	// since it was cached) is detected soundly from the probe outcome
	// and repaired, so results are always identical to the uncached
	// path — only the Lookups/Steps cost changes. Off by default so the
	// paper-reproduction experiments measure Algorithm 2 itself.
	LeafCache bool

	// LeafCacheSize bounds the number of cached leaf labels (LRU
	// eviction beyond it). 0 means DefaultLeafCacheSize; negative is
	// invalid. Ignored unless LeafCache is set.
	LeafCacheSize int

	// ParallelRange executes range-query forwarding concurrently: every
	// independent branch forward runs in its own goroutine, exactly the
	// parallelism the Steps latency metric models, so wall-clock latency
	// over networked substrates matches it. Results and costs are
	// identical to sequential execution. Off by default: over the
	// in-process substrates goroutine overhead exceeds the map accesses
	// it parallelizes.
	ParallelRange bool

	// BatchSize caps the number of keys per batched DHT operation (the
	// bulk-load put rounds and the range-sweep multi-gets). Larger
	// batches mean fewer round trips on a batch-native substrate but
	// bigger messages. 0 means DefaultBatchSize; negative is invalid.
	// Batching never changes results or the Lookups/Steps cost, only
	// round trips; to disable it entirely, wrap the substrate with
	// dht.WithoutBatch.
	BatchSize int

	// Policy, when non-nil, interposes a dht.WithPolicy retry layer
	// between the index and the substrate: transient substrate faults
	// (classified by Policy.Classify, default dht.IsTransient) are
	// retried with capped jittered exponential backoff. The index wires
	// the policy's Counters to its own, and stacks the policy *above*
	// the instrumentation layer, so every retry attempt is charged as a
	// full DHT-lookup — retries are not free in the paper's cost model.
	// Nil (the default) means faults surface to the caller on the first
	// occurrence.
	Policy *dht.Policy

	// TraceSink, when non-nil, receives one structured metrics.OpEvent
	// per routed DHT primitive this index issues (kind, key, operation
	// class, algorithm phase, duration, outcome), letting a single slow
	// query be reconstructed span-by-span. metrics.NewRing provides a
	// bounded in-process sink. Nil (the default) disables tracing and
	// its clock reads.
	TraceSink metrics.TraceSink

	// Aggregate, when non-nil, chains this index's counters to a shared
	// parent: every increment also counts toward the aggregate, so many
	// index instances can serve one process-wide /metrics endpoint
	// while each keeps its own exact per-instance accounting.
	Aggregate *metrics.Counters

	// HotSplitRate enables load-aware leaf splitting: each bucket carries
	// a decaying request-rate estimate (requests per second, updated on
	// the CAS commit path), and a leaf whose estimate reaches
	// HotSplitRate splits even while its record count is below
	// SplitThreshold — halving the key interval one hot peer serves.
	// Merges skip leaves that are still hot so the structure does not
	// thrash. 0 (the default) disables the plane entirely: buckets carry
	// zero-valued rate fields and every cost counter is identical to a
	// build without the plane. Negative is invalid.
	HotSplitRate float64

	// CoalesceGets enables singleflight read coalescing below the
	// instrumentation layer: N concurrent DHT-gets of one key (the
	// thundering herd on a hot leaf label) issue a single physical fetch
	// that all N share. Every logical get is still charged as a
	// DHT-lookup, so the paper's cost model is unchanged; only physical
	// round trips and the hot peer's service load shrink (counted by
	// CoalescedGets). Off by default.
	//
	// Opting in accepts a bounded read-your-writes window on QUERY paths:
	// a search that joins an in-flight fetch started before a write
	// committed can observe the pre-commit bucket once — a record whose
	// Insert was just acknowledged may be missed by reads already riding
	// the herd, exactly as if they had been issued before the insert. The
	// window is one in-flight fetch; the write paths are exempt (the CAS
	// retry loops bypass coalescing with dht.WithFreshRead, so mutations
	// always rebase onto the committed epoch). See dht/coalesce.go.
	CoalesceGets bool

	// HedgeAfter enables quantile-triggered hedged reads below the
	// instrumentation layer: an idempotent DHT-get still waiting after
	// the hedge delay (the observed p95 get latency, floored at
	// HedgeAfter) launches one duplicate attempt, first answer wins, the
	// loser is cancelled. Over a replicated substrate the duplicate
	// rotates to a different holder, so one slow or silently dead node
	// stops defining the read's tail latency. Hedges are physical round
	// trips only — like coalescing, the layer sits below the
	// instrumentation, so the paper's DHT-lookup cost model is unchanged
	// (HedgedGets/HedgeWins count them separately). 0 (the default)
	// disables hedging; negative is invalid.
	HedgeAfter time.Duration

	// Rereplicate extends Scrub with a re-replication pass when the
	// substrate implements dht.Rereplicator (the tcpnet cluster client
	// does): after the structural walk verifies the tree, every visited
	// bucket key is probed on all of its ring owners and missing copies
	// are restored from the highest-epoch survivor. The probe and restore
	// round trips are charged to the scrub's cost (they bypass the
	// instrumented stack, so Scrub accounts for them manually); query and
	// mutation costs are untouched, keeping the paper's gated cost rows
	// byte-identical. Off by default; a no-op on substrates without
	// replication.
	Rereplicate bool

	// clock overrides the rate estimator's time source (UnixNano) so
	// tests drive deterministic hot-split schedules. Nil means real time.
	clock func() int64
}

// DefaultLeafCacheSize is the leaf-cache capacity used when LeafCache
// is enabled with LeafCacheSize 0. At theta = 100 it covers trees of
// roughly 400k records, far beyond the paper's 2^20-record experiments'
// hot sets, while costing only a label (16 bytes) per entry.
const DefaultLeafCacheSize = 4096

// DefaultBatchSize is the per-batch key cap used when BatchSize is 0:
// big enough that a paper-scale bulk load ships in a handful of rounds,
// small enough that one message stays well under typical frame limits.
const DefaultBatchSize = 64

// DefaultConfig mirrors the paper's experiment defaults: theta_split =
// 100, D = 20, merges enabled with theta_split/2 hysteresis.
func DefaultConfig() Config {
	return Config{
		SplitThreshold: 100,
		MergeThreshold: 50,
		Depth:          20,
	}
}

// ErrConfig reports an invalid configuration.
var ErrConfig = errors.New("lht: invalid config")

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.SplitThreshold < 4 {
		return fmt.Errorf("%w: SplitThreshold %d < 4", ErrConfig, c.SplitThreshold)
	}
	if c.MergeThreshold < 0 || c.MergeThreshold > c.SplitThreshold {
		return fmt.Errorf("%w: MergeThreshold %d outside [0, SplitThreshold]", ErrConfig, c.MergeThreshold)
	}
	if c.Depth < 2 || c.Depth > keyspace.MaxDepth {
		return fmt.Errorf("%w: Depth %d outside [2, %d]", ErrConfig, c.Depth, keyspace.MaxDepth)
	}
	if c.LeafCacheSize < 0 {
		return fmt.Errorf("%w: LeafCacheSize %d negative", ErrConfig, c.LeafCacheSize)
	}
	if c.BatchSize < 0 {
		return fmt.Errorf("%w: BatchSize %d negative", ErrConfig, c.BatchSize)
	}
	if c.HotSplitRate < 0 {
		return fmt.Errorf("%w: HotSplitRate %v negative", ErrConfig, c.HotSplitRate)
	}
	if c.HedgeAfter < 0 {
		return fmt.Errorf("%w: HedgeAfter %v negative", ErrConfig, c.HedgeAfter)
	}
	return nil
}

// leafCacheSize resolves the configured cache capacity, applying the
// default for 0.
func (c Config) leafCacheSize() int {
	if c.LeafCacheSize == 0 {
		return DefaultLeafCacheSize
	}
	return c.LeafCacheSize
}

// batchSize resolves the configured batch cap, applying the default for 0.
func (c Config) batchSize() int {
	if c.BatchSize == 0 {
		return DefaultBatchSize
	}
	return c.BatchSize
}
