// Package tcpnet is the real-network deployment mode: storage nodes that
// serve a gob-over-TCP key-value protocol, and a client that implements
// the dht.DHT interface over a static member set with client-side
// consistent hashing.
//
// This is the substrate behind cmd/lht-node and cmd/lht-cli: it
// demonstrates the paper's "easy to implement and deploy" claim with
// actual sockets and processes. Unlike internal/chord it has static
// membership (the operator supplies the node list); dynamic membership,
// churn and replication are the in-process Chord substrate's department -
// the index layer cannot tell the difference, which is the point of the
// over-DHT design.
package tcpnet

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"lht/internal/dht"
)

// op enumerates protocol operations.
type op uint8

const (
	opPing op = iota + 1
	opGet
	opPut
	opTake
	opRemove
	opWrite
	opGetBatch
	opPutBatch
)

// request is one client->server message.
type request struct {
	Op   op
	Key  string
	Val  []byte    // gob-encoded dht.Value for Put/Write
	Keys []string  // keys of an opGetBatch
	KVs  []batchKV // pairs of an opPutBatch, applied in order
}

// batchKV is one pair of an opPutBatch request.
type batchKV struct {
	Key string
	Val []byte
}

// batchReply is one per-key slot of a batched response, positionally
// aligned with the request's Keys or KVs.
type batchReply struct {
	Val []byte
	Err string
}

// response is one server->client message.
type response struct {
	Found bool
	Val   []byte
	Err   string
	Batch []batchReply // per-key outcomes of a batched op
}

// encodeValue serializes a dht.Value with gob. Concrete types must be
// registered (lht.RegisterGobTypes or gob.Register) by the embedding
// program.
func encodeValue(v dht.Value) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&v); err != nil {
		return nil, fmt.Errorf("tcpnet: encode value: %w", err)
	}
	return buf.Bytes(), nil
}

// decodeValue is the inverse of encodeValue.
func decodeValue(data []byte) (dht.Value, error) {
	var v dht.Value
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&v); err != nil {
		return nil, fmt.Errorf("tcpnet: decode value: %w", err)
	}
	return v, nil
}
