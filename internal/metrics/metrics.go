// Package metrics provides the counters behind the paper's cost model
// (section 8.1): DHT-lookups and moved data records are the two
// bandwidth-consuming operations of an over-DHT indexing scheme, and
// parallel step depth is the latency measure of section 9.4.
//
// Counters are atomic so instrumented DHTs can be shared across
// goroutines; reads take a consistent-enough snapshot for reporting.
package metrics

import "sync/atomic"

// Cost reports the DHT traffic of a single index operation, the two
// measures of paper section 9: Lookups is the bandwidth measure (number of
// DHT-lookups issued) and Steps is the latency measure (the longest chain
// of DHT-lookups that must run sequentially; lookups issued by the same
// peer in one round proceed in parallel).
type Cost struct {
	Lookups int
	Steps   int
}

// Add accumulates another operation's cost as if run sequentially after
// this one.
func (c *Cost) Add(o Cost) {
	c.Lookups += o.Lookups
	c.Steps += o.Steps
}

// Counters aggregates the cost-model measurements of one index instance or
// one DHT instance. The zero value is ready to use.
type Counters struct {
	lookups      atomic.Int64 // DHT-lookups: every routed Get/Put/Take/Remove
	failedGets   atomic.Int64 // subset of lookups: Gets that found no value
	movedRecords atomic.Int64 // records transferred between peers (incl. label slots)
	splits       atomic.Int64 // leaf splits performed
	merges       atomic.Int64 // leaf merges performed
	maintLookups atomic.Int64 // subset of lookups spent on splits/merges (Fig. 7b)
	cacheHits    atomic.Int64 // leaf-cache probes that resolved the lookup in one get
	cacheMisses  atomic.Int64 // lookups that found no leaf-cache entry
	cacheStale   atomic.Int64 // leaf-cache probes that found a stale entry

	retries          atomic.Int64 // policy-layer re-attempts after transient faults
	cancellations    atomic.Int64 // operations ended by context cancellation
	deadlineExceeded atomic.Int64 // operations ended by context deadline expiry

	batchOps    atomic.Int64 // native batched round trips issued
	batchedKeys atomic.Int64 // keys carried by those batches (each also a lookup)

	tornSplits   atomic.Int64 // torn split intents detected (lookup or scrub)
	tornMerges   atomic.Int64 // torn merge intents detected (lookup or scrub)
	repairs      atomic.Int64 // torn states completed or rolled back
	scrubLookups atomic.Int64 // subset of lookups issued by Scrub walks
}

// AddLookups adds n DHT-lookups.
func (c *Counters) AddLookups(n int64) { c.lookups.Add(n) }

// AddFailedGets adds n failed DHT-gets (already counted as lookups).
func (c *Counters) AddFailedGets(n int64) { c.failedGets.Add(n) }

// AddMovedRecords adds n records moved between peers.
func (c *Counters) AddMovedRecords(n int64) { c.movedRecords.Add(n) }

// AddSplits adds n leaf splits.
func (c *Counters) AddSplits(n int64) { c.splits.Add(n) }

// AddMerges adds n leaf merges.
func (c *Counters) AddMerges(n int64) { c.merges.Add(n) }

// AddMaintLookups attributes n already-counted lookups to structure
// maintenance (splits and merges), the traffic Fig. 7b isolates.
func (c *Counters) AddMaintLookups(n int64) { c.maintLookups.Add(n) }

// AddCacheHits adds n leaf-cache hits: exact-match lookups resolved by
// probing a cached leaf name with a single DHT-get.
func (c *Counters) AddCacheHits(n int64) { c.cacheHits.Add(n) }

// AddCacheMisses adds n leaf-cache misses: lookups for keys with no
// cached covering leaf, answered by the full binary search.
func (c *Counters) AddCacheMisses(n int64) { c.cacheMisses.Add(n) }

// AddCacheStale adds n stale leaf-cache probes: the cached leaf had
// split or merged away, so the client repaired and fell back.
func (c *Counters) AddCacheStale(n int64) { c.cacheStale.Add(n) }

// AddRetries adds n policy-layer retries: repeated attempts after a
// transient substrate fault. Each retry is also charged as a DHT-lookup
// by the instrumentation layer beneath the policy wrapper.
func (c *Counters) AddRetries(n int64) { c.retries.Add(n) }

// AddCancellations adds n operations that ended because the caller's
// context was cancelled.
func (c *Counters) AddCancellations(n int64) { c.cancellations.Add(n) }

// AddDeadlineExceeded adds n operations that ended because the caller's
// context deadline expired.
func (c *Counters) AddDeadlineExceeded(n int64) { c.deadlineExceeded.Add(n) }

// AddBatchOps adds n native batched round trips. Only batches served by a
// substrate's own Batcher implementation count; per-op fallbacks charge
// nothing here because they save no round trips.
func (c *Counters) AddBatchOps(n int64) { c.batchOps.Add(n) }

// AddBatchedKeys adds n keys carried inside native batches. Every such
// key is also charged as a DHT-lookup, keeping the bandwidth measure
// identical whether or not batching is available.
func (c *Counters) AddBatchedKeys(n int64) { c.batchedKeys.Add(n) }

// AddTornSplits adds n torn split intents detected: buckets fetched with a
// pending split marker left behind by a writer that crashed mid-mutation.
func (c *Counters) AddTornSplits(n int64) { c.tornSplits.Add(n) }

// AddTornMerges adds n torn merge intents detected.
func (c *Counters) AddTornMerges(n int64) { c.tornMerges.Add(n) }

// AddRepairs adds n repairs: torn states idempotently completed or rolled
// back by lookup read-repair or by Scrub.
func (c *Counters) AddRepairs(n int64) { c.repairs.Add(n) }

// AddScrubLookups attributes n already-counted lookups to Scrub walks, the
// cost of verifying and repairing the tree's structural invariants.
func (c *Counters) AddScrubLookups(n int64) { c.scrubLookups.Add(n) }

// Snapshot is a point-in-time copy of the counters.
type Snapshot struct {
	Lookups      int64 // DHT-lookups issued
	FailedGets   int64 // DHT-gets that returned "not found"
	MovedRecords int64 // record slots moved between peers
	Splits       int64 // leaf splits
	Merges       int64 // leaf merges
	MaintLookups int64 // lookups spent on splits and merges
	CacheHits    int64 // leaf-cache probes resolved in one DHT-get
	CacheMisses  int64 // lookups with no leaf-cache entry
	CacheStale   int64 // leaf-cache probes that detected a stale entry

	Retries          int64 // policy-layer retries after transient faults
	Cancellations    int64 // operations ended by context cancellation
	DeadlineExceeded int64 // operations ended by context deadline expiry

	BatchOps    int64 // native batched round trips issued
	BatchedKeys int64 // keys carried by those batches

	TornSplits   int64 // torn split intents detected
	TornMerges   int64 // torn merge intents detected
	Repairs      int64 // torn states completed or rolled back
	ScrubLookups int64 // lookups issued by Scrub walks
}

// RoundTrips estimates the client's DHT round trips: every lookup is its
// own round trip except the keys carried by native batches, which share
// one round trip per batch. With no batching it equals Lookups; a fully
// batched workload approaches one round trip per batch.
func (s Snapshot) RoundTrips() int64 { return s.Lookups - s.BatchedKeys + s.BatchOps }

// Snapshot returns the current counter values.
func (c *Counters) Snapshot() Snapshot {
	return Snapshot{
		Lookups:      c.lookups.Load(),
		FailedGets:   c.failedGets.Load(),
		MovedRecords: c.movedRecords.Load(),
		Splits:       c.splits.Load(),
		Merges:       c.merges.Load(),
		MaintLookups: c.maintLookups.Load(),
		CacheHits:    c.cacheHits.Load(),
		CacheMisses:  c.cacheMisses.Load(),
		CacheStale:   c.cacheStale.Load(),

		Retries:          c.retries.Load(),
		Cancellations:    c.cancellations.Load(),
		DeadlineExceeded: c.deadlineExceeded.Load(),

		BatchOps:    c.batchOps.Load(),
		BatchedKeys: c.batchedKeys.Load(),

		TornSplits:   c.tornSplits.Load(),
		TornMerges:   c.tornMerges.Load(),
		Repairs:      c.repairs.Load(),
		ScrubLookups: c.scrubLookups.Load(),
	}
}

// Reset zeroes all counters.
func (c *Counters) Reset() {
	c.lookups.Store(0)
	c.failedGets.Store(0)
	c.movedRecords.Store(0)
	c.splits.Store(0)
	c.merges.Store(0)
	c.maintLookups.Store(0)
	c.cacheHits.Store(0)
	c.cacheMisses.Store(0)
	c.cacheStale.Store(0)
	c.retries.Store(0)
	c.cancellations.Store(0)
	c.deadlineExceeded.Store(0)
	c.batchOps.Store(0)
	c.batchedKeys.Store(0)
	c.tornSplits.Store(0)
	c.tornMerges.Store(0)
	c.repairs.Store(0)
	c.scrubLookups.Store(0)
}

// Sub returns the component-wise difference s - prev, for measuring the
// cost of a single operation or experiment phase.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	return Snapshot{
		Lookups:      s.Lookups - prev.Lookups,
		FailedGets:   s.FailedGets - prev.FailedGets,
		MovedRecords: s.MovedRecords - prev.MovedRecords,
		Splits:       s.Splits - prev.Splits,
		Merges:       s.Merges - prev.Merges,
		MaintLookups: s.MaintLookups - prev.MaintLookups,
		CacheHits:    s.CacheHits - prev.CacheHits,
		CacheMisses:  s.CacheMisses - prev.CacheMisses,
		CacheStale:   s.CacheStale - prev.CacheStale,

		Retries:          s.Retries - prev.Retries,
		Cancellations:    s.Cancellations - prev.Cancellations,
		DeadlineExceeded: s.DeadlineExceeded - prev.DeadlineExceeded,

		BatchOps:    s.BatchOps - prev.BatchOps,
		BatchedKeys: s.BatchedKeys - prev.BatchedKeys,

		TornSplits:   s.TornSplits - prev.TornSplits,
		TornMerges:   s.TornMerges - prev.TornMerges,
		Repairs:      s.Repairs - prev.Repairs,
		ScrubLookups: s.ScrubLookups - prev.ScrubLookups,
	}
}
