package dht_test

import (
	"testing"

	"lht/internal/dht"
	"lht/internal/dht/dhttest"
	"lht/internal/metrics"
)

func newCounters() *metrics.Counters { return &metrics.Counters{} }

func TestLocalConformance(t *testing.T) {
	dhttest.Run(t, func(t *testing.T) dht.DHT { return dht.NewLocal() }, dhttest.Options{})
}

func TestInstrumentedConformance(t *testing.T) {
	dhttest.Run(t, func(t *testing.T) dht.DHT {
		return dht.NewInstrumented(dht.NewLocal(), newCounters())
	}, dhttest.Options{})
}

func TestCrashPointsConformance(t *testing.T) {
	dhttest.RunCrashPoints(t, func(t *testing.T) dht.DHT { return dht.NewLocal() })
}
