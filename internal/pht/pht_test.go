package pht

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"lht/internal/bitlabel"
	"lht/internal/dht"
	"lht/internal/record"
)

func newTestIndex(t *testing.T, cfg Config) (*Index, *dht.Local) {
	t.Helper()
	d := dht.NewLocal()
	ix, err := New(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ix, d
}

func smallConfig() Config {
	return Config{SplitThreshold: 8, MergeThreshold: 4, Depth: 20}
}

func TestNewValidatesConfig(t *testing.T) {
	if _, err := New(dht.NewLocal(), Config{}); !errors.Is(err, ErrConfig) {
		t.Fatalf("New with zero config = %v, want ErrConfig", err)
	}
}

func TestBootstrapAndAttach(t *testing.T) {
	ix, d := newTestIndex(t, smallConfig())
	if _, err := ix.Insert(record.Record{Key: 0.5, Value: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	ix2, err := New(d, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r, _, err := ix2.Search(0.5); err != nil || string(r.Value) != "x" {
		t.Fatalf("attach lost data: %v, %v", r, err)
	}
}

func TestInsertSearchDelete(t *testing.T) {
	ix, _ := newTestIndex(t, smallConfig())
	keys := []float64{0.1, 0.9, 0.5, 0.25, 0.75}
	for i, k := range keys {
		if _, err := ix.Insert(record.Record{Key: k, Value: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	for i, k := range keys {
		r, _, err := ix.Search(k)
		if err != nil || r.Value[0] != byte(i) {
			t.Fatalf("Search(%v) = %v, %v", k, r, err)
		}
	}
	if _, _, err := ix.Search(0.42); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("Search absent = %v", err)
	}
	if _, err := ix.Delete(0.5); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Delete(0.5); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("Delete absent = %v", err)
	}
	if n, err := ix.Count(); err != nil || n != len(keys)-1 {
		t.Fatalf("Count = %d, %v", n, err)
	}
}

// TestSplitCostProfile pins equation 2: a PHT split moves every record
// (both halves) and issues 4 DHT-lookups - 2 child puts plus 2 leaf-link
// patches - once the chain has neighbors on both sides.
func TestSplitCostProfile(t *testing.T) {
	theta := 8
	ix, _ := newTestIndex(t, Config{SplitThreshold: theta, MergeThreshold: 0, Depth: 20})
	rng := rand.New(rand.NewSource(1))
	// Grow until there are interior leaves, then measure a split whose
	// leaf has both neighbors.
	for i := 0; i < 600; i++ {
		if _, err := ix.Insert(record.Record{Key: rng.Float64()}); err != nil {
			t.Fatal(err)
		}
	}
	before := ix.Metrics().Flat()
	for i := 0; i < 600; i++ {
		pre := ix.Metrics().Flat()
		cost, err := ix.Insert(record.Record{Key: rng.Float64()})
		if err != nil {
			t.Fatal(err)
		}
		post := ix.Metrics().Flat()
		if post.Splits == pre.Splits {
			continue
		}
		_ = cost
		// A split normally fires with theta-1 records (moving theta+1
		// slots); a child left oversized by a skewed split can fire with
		// a few more, never fewer.
		moved := post.MovedRecords - pre.MovedRecords
		if moved < int64(theta+1) || moved > int64(theta+4) {
			t.Errorf("split moved %d record slots, want about theta+1 = %d", moved, theta+1)
		}
	}
	after := ix.Metrics().Flat()
	splits := after.Splits - before.Splits
	if splits == 0 {
		t.Fatal("no splits observed")
	}
	perSplitMoved := float64(after.MovedRecords-before.MovedRecords) / float64(splits)
	if perSplitMoved < float64(theta+1) || perSplitMoved > float64(theta)+1.5 {
		t.Errorf("moved per split = %v, want about %d", perSplitMoved, theta+1)
	}
}

func TestGrowthInvariants(t *testing.T) {
	ix, _ := newTestIndex(t, Config{SplitThreshold: 8, MergeThreshold: 0, Depth: 24})
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 3000; i++ {
		if _, err := ix.Insert(record.Record{Key: rng.Float64()}); err != nil {
			t.Fatal(err)
		}
		if i%1000 == 999 {
			if err := ix.CheckInvariants(); err != nil {
				t.Fatalf("after %d inserts: %v", i+1, err)
			}
		}
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if n, err := ix.Count(); err != nil || n != 3000 {
		t.Fatalf("Count = %d, %v", n, err)
	}
}

func TestDeleteTriggersMerges(t *testing.T) {
	ix, _ := newTestIndex(t, Config{SplitThreshold: 8, MergeThreshold: 6, Depth: 20})
	rng := rand.New(rand.NewSource(3))
	keys := make([]float64, 300)
	for i := range keys {
		keys[i] = rng.Float64()
		if _, err := ix.Insert(record.Record{Key: keys[i]}); err != nil {
			t.Fatal(err)
		}
	}
	rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	for i, k := range keys {
		if _, err := ix.Delete(k); err != nil {
			t.Fatalf("Delete(%v): %v", k, err)
		}
		if i%75 == 74 {
			if err := ix.CheckInvariants(); err != nil {
				t.Fatalf("after %d deletes: %v", i+1, err)
			}
		}
	}
	if s := ix.Metrics().Flat(); s.Merges == 0 {
		t.Error("expected merges")
	}
	if n, err := ix.Count(); err != nil || n != 0 {
		t.Fatalf("Count = %d, %v", n, err)
	}
}

// TestOracleBothRangeAlgorithms runs a random workload and validates both
// range algorithms against a reference map.
func TestOracleBothRangeAlgorithms(t *testing.T) {
	for dist := 0; dist < 3; dist++ {
		dist := dist
		t.Run(fmt.Sprintf("dist%d", dist), func(t *testing.T) {
			t.Parallel()
			ix, _ := newTestIndex(t, Config{SplitThreshold: 8, MergeThreshold: 6, Depth: 20})
			oracle := make(map[float64]bool)
			rng := rand.New(rand.NewSource(int64(100 + dist)))
			draw := func() float64 {
				switch dist {
				case 0:
					return rng.Float64()
				case 1:
					for {
						k := 0.5 + rng.NormFloat64()/6
						if k >= 0 && k < 1 {
							return k
						}
					}
				default:
					return float64(rng.Intn(64)) / 64
				}
			}
			for i := 0; i < 3000; i++ {
				k := draw()
				if rng.Intn(4) == 0 {
					_, err := ix.Delete(k)
					if oracle[k] != (err == nil) {
						t.Fatalf("Delete(%v) = %v, oracle %v", k, err, oracle[k])
					}
					delete(oracle, k)
					continue
				}
				if _, err := ix.Insert(record.Record{Key: k}); err != nil {
					t.Fatal(err)
				}
				oracle[k] = true
			}
			var want []float64
			for k := range oracle {
				want = append(want, k)
			}
			sort.Float64s(want)

			for trial := 0; trial < 100; trial++ {
				lo := rng.Float64()
				hi := lo + rng.Float64()*(1-lo)
				if hi <= lo {
					continue
				}
				var wantIn []float64
				for _, k := range want {
					if k >= lo && k < hi {
						wantIn = append(wantIn, k)
					}
				}
				seq, seqCost, err := ix.RangeSequential(lo, hi)
				if err != nil {
					t.Fatalf("RangeSequential(%v, %v): %v", lo, hi, err)
				}
				par, parCost, err := ix.RangeParallel(lo, hi)
				if err != nil {
					t.Fatalf("RangeParallel(%v, %v): %v", lo, hi, err)
				}
				for name, got := range map[string][]record.Record{"seq": seq, "par": par} {
					gotKeys := make([]float64, len(got))
					for i, r := range got {
						gotKeys[i] = r.Key
					}
					sort.Float64s(gotKeys)
					if len(gotKeys) != len(wantIn) {
						t.Fatalf("%s range [%v,%v): %d records, want %d", name, lo, hi, len(gotKeys), len(wantIn))
					}
					for i := range gotKeys {
						if gotKeys[i] != wantIn[i] {
							t.Fatalf("%s range [%v,%v): key %v != %v", name, lo, hi, gotKeys[i], wantIn[i])
						}
					}
				}
				if seqCost.Steps != seqCost.Lookups {
					t.Errorf("sequential range must have Steps == Lookups, got %+v", seqCost)
				}
				if parCost.Steps > parCost.Lookups {
					t.Errorf("parallel range Steps %d > Lookups %d", parCost.Steps, parCost.Lookups)
				}
			}
		})
	}
}

// TestParallelCostShape verifies the Fig. 9/10 relationships on a sizable
// uniform tree: parallel fan-out spends more bandwidth than the chain
// walk, but far fewer steps.
func TestParallelCostShape(t *testing.T) {
	ix, _ := newTestIndex(t, Config{SplitThreshold: 8, MergeThreshold: 0, Depth: 24})
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 10000; i++ {
		if _, err := ix.Insert(record.Record{Key: rng.Float64()}); err != nil {
			t.Fatal(err)
		}
	}
	var seqL, seqS, parL, parS int
	for trial := 0; trial < 50; trial++ {
		lo := rng.Float64() * 0.7
		hi := lo + 0.2
		_, sc, err := ix.RangeSequential(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		_, pc, err := ix.RangeParallel(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		seqL += sc.Lookups
		seqS += sc.Steps
		parL += pc.Lookups
		parS += pc.Steps
	}
	if parL <= seqL {
		t.Errorf("parallel bandwidth %d should exceed sequential %d", parL, seqL)
	}
	if parS*3 >= seqS {
		t.Errorf("parallel steps %d should be far below sequential %d", parS, seqS)
	}
}

func TestLookupCostLogD(t *testing.T) {
	ix, _ := newTestIndex(t, DefaultConfig())
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 20000; i++ {
		if _, err := ix.Insert(record.Record{Key: rng.Float64()}); err != nil {
			t.Fatal(err)
		}
	}
	maxCost := 0
	for i := 0; i < 1000; i++ {
		_, cost, err := ix.LookupLeaf(rng.Float64())
		if err != nil {
			t.Fatal(err)
		}
		if cost.Lookups > maxCost {
			maxCost = cost.Lookups
		}
	}
	// Binary search over 20 candidate lengths: at most ceil(log2(20))+1 = 6.
	if maxCost > 6 {
		t.Errorf("PHT lookup cost reached %d", maxCost)
	}
}

func TestRangeRejectsBadBounds(t *testing.T) {
	ix, _ := newTestIndex(t, smallConfig())
	bad := [][2]float64{{0.5, 0.5}, {0.6, 0.5}, {-0.1, 0.5}, {0.5, 1.1}, {math.NaN(), 0.5}}
	for _, b := range bad {
		if _, _, err := ix.RangeSequential(b[0], b[1]); err == nil {
			t.Errorf("RangeSequential(%v) should fail", b)
		}
		if _, _, err := ix.RangeParallel(b[0], b[1]); err == nil {
			t.Errorf("RangeParallel(%v) should fail", b)
		}
	}
}

func TestNodeEncodeDecode(t *testing.T) {
	ix, _ := newTestIndex(t, smallConfig())
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		if _, err := ix.Insert(record.Record{Key: rng.Float64(), Value: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	leaves, err := ix.Leaves()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range leaves {
		data, err := EncodeNode(n)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeNode(data)
		if err != nil {
			t.Fatal(err)
		}
		if got.Label != n.Label || got.Leaf != n.Leaf || len(got.Records) != len(n.Records) ||
			got.HasPrev != n.HasPrev || got.HasNext != n.HasNext || got.Prev != n.Prev || got.Next != n.Next {
			t.Fatalf("round trip mismatch: %v vs %v", got, n)
		}
	}
	if _, err := DecodeNode([]byte("junk")); err == nil {
		t.Error("DecodeNode(junk) should fail")
	}
}

func TestAccessorsAndNodeHelpers(t *testing.T) {
	ix, _ := newTestIndex(t, smallConfig())
	if ix.Config().SplitThreshold != 8 {
		t.Error("Config accessor broken")
	}
	if ix.Overflows() != 0 {
		t.Error("fresh index should have no overflows")
	}
	n := &Node{Label: mustLabel(t, "#01"), Leaf: true}
	if !n.Contains(0.75) || n.Contains(0.25) {
		t.Error("Contains broken")
	}
	if s := n.String(); !strings.Contains(s, "leaf") || !strings.Contains(s, "#01") {
		t.Errorf("String = %q", s)
	}
	n.Leaf = false
	if s := n.String(); !strings.Contains(s, "internal") {
		t.Errorf("String = %q", s)
	}
}

func TestConfigValidationCases(t *testing.T) {
	bad := []Config{
		{SplitThreshold: 2, MergeThreshold: 0, Depth: 20},
		{SplitThreshold: 8, MergeThreshold: 9, Depth: 20},
		{SplitThreshold: 8, MergeThreshold: -1, Depth: 20},
		{SplitThreshold: 8, MergeThreshold: 0, Depth: 1},
		{SplitThreshold: 8, MergeThreshold: 0, Depth: 60},
	}
	for _, cfg := range bad {
		if _, err := New(dht.NewLocal(), cfg); !errors.Is(err, ErrConfig) {
			t.Errorf("New(%+v) = %v, want ErrConfig", cfg, err)
		}
	}
}

func TestOverflowAtDepthLimit(t *testing.T) {
	ix, _ := newTestIndex(t, Config{SplitThreshold: 4, MergeThreshold: 0, Depth: 6})
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 150; i++ {
		if _, err := ix.Insert(record.Record{Key: rng.Float64() / 1024}); err != nil {
			t.Fatal(err)
		}
	}
	if ix.Overflows() == 0 {
		t.Fatal("expected overflows at the depth limit")
	}
	// All records still findable.
	rng = rand.New(rand.NewSource(11))
	for i := 0; i < 150; i++ {
		if _, _, err := ix.Search(rng.Float64() / 1024); err != nil {
			t.Fatalf("Search: %v", err)
		}
	}
	if n, err := ix.Count(); err != nil || n != 150 {
		t.Fatalf("Count = %d, %v", n, err)
	}
}

func mustLabel(t *testing.T, s string) bitlabel.Label {
	t.Helper()
	l, err := bitlabel.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return l
}
