package dht

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"lht/internal/metrics"
	"lht/internal/simnet"
)

// flaky fails the next `failures` routed operations with err, then
// delegates; calls counts every attempt it saw.
type flaky struct {
	inner    DHT
	failures int
	calls    int
	err      error
}

func (f *flaky) attempt() error {
	f.calls++
	if f.failures > 0 {
		f.failures--
		return f.err
	}
	return nil
}

func (f *flaky) Get(ctx context.Context, key string) (Value, error) {
	if err := f.attempt(); err != nil {
		return nil, err
	}
	return f.inner.Get(ctx, key)
}

func (f *flaky) Put(ctx context.Context, key string, v Value) error {
	if err := f.attempt(); err != nil {
		return err
	}
	return f.inner.Put(ctx, key, v)
}

func (f *flaky) Take(ctx context.Context, key string) (Value, error) {
	if err := f.attempt(); err != nil {
		return nil, err
	}
	return f.inner.Take(ctx, key)
}

func (f *flaky) Remove(ctx context.Context, key string) error {
	if err := f.attempt(); err != nil {
		return err
	}
	return f.inner.Remove(ctx, key)
}

func (f *flaky) Write(ctx context.Context, key string, v Value) error {
	if err := f.attempt(); err != nil {
		return err
	}
	return f.inner.Write(ctx, key, v)
}

func fastPolicy(c *metrics.Counters) Policy {
	return Policy{
		MaxAttempts: 4,
		BaseDelay:   time.Microsecond,
		MaxDelay:    10 * time.Microsecond,
		Counters:    c,
	}
}

func transientErr() error {
	return MarkTransient(fmt.Errorf("flaky: %w", simnet.ErrUnreachable))
}

func TestPolicyRetriesTransientFaults(t *testing.T) {
	ctx := context.Background()
	var c metrics.Counters
	f := &flaky{inner: NewLocal(), failures: 2, err: transientErr()}
	d := WithPolicy(f, fastPolicy(&c))

	if err := d.Put(ctx, "k", 42); err != nil {
		t.Fatalf("Put through 2 transient faults = %v", err)
	}
	if f.calls != 3 {
		t.Fatalf("attempts = %d, want 3 (2 faults + 1 success)", f.calls)
	}
	if got := c.Snapshot().Retry.Retries; got != 2 {
		t.Fatalf("Retries = %d, want 2", got)
	}
	if v, err := d.Get(ctx, "k"); err != nil || v.(int) != 42 {
		t.Fatalf("Get after recovery = %v, %v", v, err)
	}
}

func TestPolicyPermanentErrorsPassThrough(t *testing.T) {
	ctx := context.Background()
	var c metrics.Counters
	f := &flaky{inner: NewLocal()}
	d := WithPolicy(f, fastPolicy(&c))

	if _, err := d.Get(ctx, "absent"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(absent) = %v, want ErrNotFound untouched", err)
	}
	if f.calls != 1 {
		t.Fatalf("ErrNotFound was retried: %d attempts", f.calls)
	}
	if got := c.Snapshot().Retry.Retries; got != 0 {
		t.Fatalf("Retries = %d, want 0 for a permanent outcome", got)
	}
}

func TestPolicyExhaustion(t *testing.T) {
	ctx := context.Background()
	var c metrics.Counters
	cause := transientErr()
	f := &flaky{inner: NewLocal(), failures: 1 << 30, err: cause}
	d := WithPolicy(f, fastPolicy(&c))

	_, err := d.Get(ctx, "k")
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("err = %v, want ErrRetriesExhausted", err)
	}
	if !errors.Is(err, simnet.ErrUnreachable) {
		t.Fatalf("exhaustion lost the root cause: %v", err)
	}
	if !IsTransient(err) {
		t.Fatalf("exhausted error must stay classified transient: %v", err)
	}
	if f.calls != 4 {
		t.Fatalf("attempts = %d, want MaxAttempts = 4", f.calls)
	}
	if got := c.Snapshot().Retry.Retries; got != 3 {
		t.Fatalf("Retries = %d, want 3", got)
	}
}

func TestPolicyCancelDuringBackoff(t *testing.T) {
	var c metrics.Counters
	f := &flaky{inner: NewLocal(), failures: 1 << 30, err: transientErr()}
	// A long backoff guarantees the cancellation lands mid-wait.
	d := WithPolicy(f, Policy{
		MaxAttempts: 4,
		BaseDelay:   time.Minute,
		MaxDelay:    time.Minute,
		Counters:    &c,
	})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := d.Get(ctx, "k")
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if IsTransient(err) {
			t.Fatalf("cancellation classified transient: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancellation did not interrupt the backoff")
	}
	if f.calls != 1 {
		t.Fatalf("attempts = %d, want 1 (cancelled before the retry)", f.calls)
	}
	s := c.Snapshot().Flat()
	if s.Cancellations != 1 {
		t.Fatalf("Cancellations = %d, want 1", s.Cancellations)
	}
	if s.Retries != 1 {
		t.Fatalf("Retries = %d, want 1 (the retry was attempted, then aborted)", s.Retries)
	}
}

// TestPolicyRetriesChargedAsLookups pins the cost-model composition: with
// the policy wrapped *above* the instrumented layer, every attempt -
// including retries - is charged one DHT-lookup.
func TestPolicyRetriesChargedAsLookups(t *testing.T) {
	ctx := context.Background()
	var c metrics.Counters
	f := &flaky{inner: NewLocal(), failures: 2, err: transientErr()}
	d := WithPolicy(NewInstrumented(f, &c), fastPolicy(&c))

	if err := d.Put(ctx, "k", 1); err != nil {
		t.Fatal(err)
	}
	s := c.Snapshot().Flat()
	if s.Lookups != 3 {
		t.Fatalf("Lookups = %d, want 3 (each retry is a real DHT-lookup)", s.Lookups)
	}
	if s.Retries != 2 {
		t.Fatalf("Retries = %d, want 2", s.Retries)
	}
}

func TestPolicyCustomClassify(t *testing.T) {
	ctx := context.Background()
	errCustom := errors.New("substrate hiccup")
	f := &flaky{inner: NewLocal(), failures: 1, err: errCustom}
	d := WithPolicy(f, Policy{
		MaxAttempts: 3,
		BaseDelay:   time.Microsecond,
		MaxDelay:    time.Microsecond,
		Classify:    func(err error) bool { return errors.Is(err, errCustom) },
	})
	if err := d.Put(ctx, "k", 1); err != nil {
		t.Fatalf("custom-classified fault not retried: %v", err)
	}
	if f.calls != 2 {
		t.Fatalf("attempts = %d, want 2", f.calls)
	}
}

// TestPolicyDelayBounds checks the backoff schedule: exponential from
// BaseDelay, capped at MaxDelay, jittered within +-Jitter/2.
func TestPolicyDelayBounds(t *testing.T) {
	p := Policy{
		MaxAttempts: 8,
		BaseDelay:   5 * time.Millisecond,
		MaxDelay:    40 * time.Millisecond,
		Jitter:      0.5,
	}
	d := WithPolicy(NewLocal(), p)
	for n := 0; n < 8; n++ {
		nominal := p.BaseDelay << uint(n)
		if nominal <= 0 || nominal > p.MaxDelay {
			nominal = p.MaxDelay
		}
		for trial := 0; trial < 20; trial++ {
			got := d.delay(n)
			lo := time.Duration(float64(nominal) * (1 - p.Jitter/2))
			hi := time.Duration(float64(nominal) * (1 + p.Jitter/2))
			if got < lo || got > hi {
				t.Fatalf("delay(%d) = %v, want within [%v, %v]", n, got, lo, hi)
			}
		}
	}
}

func TestPolicyZeroValueIsUsable(t *testing.T) {
	d := WithPolicy(NewLocal(), Policy{})
	if d.p.MaxAttempts != 4 || d.p.BaseDelay != 5*time.Millisecond ||
		d.p.MaxDelay != 250*time.Millisecond || d.p.Jitter != 0 || d.p.Classify == nil {
		t.Fatalf("zero policy defaults = %+v", d.p)
	}
	if err := d.Put(context.Background(), "k", 1); err != nil {
		t.Fatal(err)
	}
}
