package tcpnet

// Goroutine-leak assertions for the degradation plane: Close must
// reclaim every goroutine even while hedged reads are in flight,
// breakers are open, and handshakes are being cancelled mid-probe. The
// checker is hand-rolled (no external leak detector): capture a
// baseline, then poll until the count returns to it or dump all stacks.

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"

	"lht/internal/dht"
	"lht/internal/metrics"
	"lht/internal/netchaos"
)

// checkGoroutines captures the current goroutine count and returns a
// function that fails the test if the count has not returned to the
// baseline within a grace window (server-side conn handlers need a
// moment to observe EOF after the client closes).
func checkGoroutines(t *testing.T) func() {
	t.Helper()
	base := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			runtime.GC()
			n := runtime.NumGoroutine()
			if n <= base {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				buf = buf[:runtime.Stack(buf, true)]
				t.Fatalf("goroutine leak: %d at baseline, %d now\n%s", base, n, buf)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// TestCloseReclaimsInFlightHedgedReads: hedged reads are parked on a
// link whose return path is black-holed when the client closes
// underneath them; every waiter, hedge arm, and connection goroutine
// must unwind.
func TestCloseReclaimsInFlightHedgedReads(t *testing.T) {
	addrs, _ := startServerMap(t, 2)
	leak := checkGoroutines(t)

	chaos := netchaos.New(11)
	c, err := DialContext(context.Background(), addrs,
		WithDialer(chaos),
		WithReplicas(2),
		WithHealth(dht.BreakerConfig{Threshold: 100, Cooldown: time.Minute}))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := c.Put(ctx, "k", &payload{N: 1}); err != nil {
		t.Fatal(err)
	}

	h := dht.WithHedging(c, 2*time.Millisecond, &metrics.Counters{})

	// Black-hole every return path: reads (and their hedges) park.
	chaos.Add(netchaos.Rule{Effect: netchaos.Effect{DropReads: true}})
	chaos.Start()

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Errors are expected (client closes underneath); the
			// assertion is that the goroutine comes back at all.
			_, _ = h.Get(ctx, "k")
		}()
	}
	time.Sleep(50 * time.Millisecond) // let reads and hedges park
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	leak()
}

// TestCloseReclaimsOpenBreakers: a client whose nodes are all tripped
// open holds no background goroutines — breakers are passive state — so
// Close returns the process to baseline immediately.
func TestCloseReclaimsOpenBreakers(t *testing.T) {
	addrs, _ := startServerMap(t, 2)
	leak := checkGoroutines(t)

	chaos := netchaos.New(12)
	c, err := DialContext(context.Background(), addrs,
		WithDialer(chaos),
		WithHealth(dht.BreakerConfig{Threshold: 1, Cooldown: time.Minute}))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Sever everything and trip every node's breaker.
	chaos.Add(netchaos.Rule{Effect: netchaos.Effect{RefuseDial: true, DropConns: true}})
	chaos.Start()
	for _, addr := range addrs {
		for i := 0; i < 3; i++ {
			_, _ = c.Get(ctx, "owned-by-"+addr)
		}
	}
	open := 0
	for _, addr := range addrs {
		if c.Health(addr) == dht.BreakerOpen {
			open++
		}
	}
	if open == 0 {
		t.Fatal("no breaker opened; scenario did not arm")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	leak()
}

// TestCloseReclaimsCancelledHandshake: a redial whose handshake ping is
// black-holed is cancelled mid-probe; the cancellation must close the
// socket, unpark the handshake read, and leave nothing behind.
func TestCloseReclaimsCancelledHandshake(t *testing.T) {
	addrs, _ := startServerMap(t, 1)
	leak := checkGoroutines(t)

	chaos := netchaos.New(13)
	c, err := DialContext(context.Background(), addrs, WithDialer(chaos))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := c.Put(ctx, "k", &payload{N: 1}); err != nil {
		t.Fatal(err)
	}

	// Sever the pooled sockets directly (their reads are already parked
	// inside the real socket read, beyond the chaos plane's reach), then
	// withhold all inbound data: the next operation redials and its
	// handshake parks waiting for the ping response that never arrives.
	for _, n := range c.ringNodes() {
		for _, m := range n.conns {
			m.mu.Lock()
			if m.st != nil {
				_ = m.st.conn.Close()
			}
			m.mu.Unlock()
		}
	}
	chaos.Add(netchaos.Rule{Effect: netchaos.Effect{DropReads: true}})
	chaos.Start()
	time.Sleep(20 * time.Millisecond) // let the severed generations be swept

	opCtx, cancel := context.WithCancel(ctx)
	done := make(chan error, 1)
	go func() {
		_, err := c.Get(opCtx, "k")
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // park the handshake in its ping read
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Get through a black-holed handshake succeeded")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled handshake never returned")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	leak()
}
