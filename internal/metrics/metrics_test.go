package metrics

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestCountersAndSnapshot(t *testing.T) {
	var c Counters
	c.AddLookups(3)
	c.AddFailedGets(1)
	c.AddMovedRecords(10)
	c.AddSplits(2)
	c.AddMerges(1)
	c.AddMaintLookups(2)
	c.AddCacheHits(5)
	c.AddCacheMisses(4)
	c.AddCacheStale(3)
	s := c.Snapshot()
	want := Snapshot{
		Lookup: LookupCounts{Total: 3, FailedGets: 1, MovedRecords: 10, Splits: 2, Merges: 1, Maintenance: 2},
		Cache:  CacheCounts{Hits: 5, Misses: 4, Stale: 3},
	}
	if s != want {
		t.Fatalf("Snapshot = %+v, want %+v", s, want)
	}
	diff := s.Sub(Snapshot{Lookup: LookupCounts{Total: 1, MovedRecords: 4}, Cache: CacheCounts{Hits: 2}})
	if diff.Lookup.Total != 2 || diff.Lookup.MovedRecords != 6 || diff.Lookup.Splits != 2 ||
		diff.Cache.Hits != 3 || diff.Cache.Stale != 3 {
		t.Fatalf("Sub = %+v", diff)
	}
	c.Reset()
	if c.Snapshot() != (Snapshot{}) {
		t.Fatal("Reset incomplete")
	}
}

func TestFlatSnapshot(t *testing.T) {
	var c Counters
	c.AddLookups(7)
	c.AddBatchOps(2)
	c.AddBatchedKeys(5)
	c.AddTornSplits(1)
	c.AddRepairs(1)
	s := c.Snapshot()
	f := s.Flat()
	if f.Lookups != 7 || f.BatchOps != 2 || f.BatchedKeys != 5 || f.TornSplits != 1 || f.Repairs != 1 {
		t.Fatalf("Flat = %+v", f)
	}
	if f.RoundTrips() != s.RoundTrips() || f.RoundTrips() != 4 {
		t.Fatalf("RoundTrips: flat %d, grouped %d, want 4", f.RoundTrips(), s.RoundTrips())
	}
}

func TestCountersConcurrent(t *testing.T) {
	var c Counters
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.AddLookups(1)
				c.AddMaintLookups(1)
			}
		}()
	}
	wg.Wait()
	if s := c.Snapshot(); s.Lookup.Total != 8000 || s.Lookup.Maintenance != 8000 {
		t.Fatalf("Snapshot = %+v", s)
	}
}

func TestCountersChain(t *testing.T) {
	var root, a, b Counters
	a.Chain(&root)
	b.Chain(&root)
	a.AddLookups(3)
	b.AddLookups(4)
	a.AddSplits(1)
	a.ObserveOp(OpGet, time.Millisecond, false)
	a.AddPhaseLookups(OpGet, PhaseProbe, 2)
	if got := a.Snapshot().Lookup.Total; got != 3 {
		t.Fatalf("child a Lookup.Total = %d, want 3", got)
	}
	rs := root.Snapshot()
	if rs.Lookup.Total != 7 || rs.Lookup.Splits != 1 {
		t.Fatalf("root snapshot = %+v", rs.Lookup)
	}
	if g := rs.Latency.Ops[OpGet]; g.Count != 1 || g.Phases[PhaseProbe] != 2 {
		t.Fatalf("root OpGet stats = %+v", g)
	}
	// Resetting a child must not disturb what the root already absorbed.
	a.Reset()
	if got := root.Snapshot().Lookup.Total; got != 7 {
		t.Fatalf("root after child reset = %d, want 7", got)
	}
}

func TestObserveOp(t *testing.T) {
	var c Counters
	c.ObserveOp(OpInsert, 2*time.Millisecond, false)
	c.ObserveOp(OpInsert, 4*time.Millisecond, true)
	c.ObserveOp(OpRange, time.Millisecond, false)
	s := c.Snapshot()
	ins := s.Latency.Ops[OpInsert]
	if ins.Count != 2 || ins.Errors != 1 || ins.Hist.Count() != 2 {
		t.Fatalf("insert stats = %+v", ins)
	}
	if got := s.Latency.Ops[OpRange].Count; got != 1 {
		t.Fatalf("range count = %d", got)
	}
	if mean := ins.Hist.Mean(); mean < 2*time.Millisecond || mean > 4*time.Millisecond {
		t.Fatalf("insert mean = %v", mean)
	}
}

func TestContextLabels(t *testing.T) {
	ctx := context.Background()
	if lb := LabelsFrom(ctx); lb != (Labels{}) {
		t.Fatalf("unlabelled ctx = %+v", lb)
	}
	ctx = WithOp(ctx, OpRange)
	ctx = WithPhase(ctx, PhaseForward)
	if lb := LabelsFrom(ctx); lb.Op != OpRange || lb.Phase != PhaseForward {
		t.Fatalf("labels = %+v", lb)
	}
	// Same phase again: no new context allocation.
	if ctx2 := WithPhase(ctx, PhaseForward); ctx2 != ctx {
		t.Fatal("WithPhase(same) allocated a new context")
	}
	// A new op scope resets the phase.
	if lb := LabelsFrom(WithOp(ctx, OpScrub)); lb.Op != OpScrub || lb.Phase != PhaseOther {
		t.Fatalf("WithOp labels = %+v", lb)
	}
}

func TestOpPhaseStrings(t *testing.T) {
	if OpGet.String() != "get" || OpBulkLoad.String() != "bulkload" || Op(99).String() != "invalid" {
		t.Fatal("Op.String mismatch")
	}
	if PhaseProbe.String() != "probe" || PhaseRetry.String() != "retry" || Phase(-1).String() != "invalid" {
		t.Fatal("Phase.String mismatch")
	}
}

func TestCostAdd(t *testing.T) {
	c := Cost{Lookups: 2, Steps: 1}
	c.Add(Cost{Lookups: 3, Steps: 2})
	if c != (Cost{Lookups: 5, Steps: 3}) {
		t.Fatalf("Add = %+v", c)
	}
}
