// Package sfc implements the extension the paper's footnote 1 points at:
// multi-dimensional indexing on top of the one-dimensional LHT index via
// a space-filling curve (the approach PHT's authors took in the SIGCOMM
// 2005 case study). Two-dimensional points in the unit square are
// quantized and Z-order (Morton) encoded into [0, 1) data keys;
// rectangle queries decompose into a small set of curve spans, each
// served by one LHT range query, with a post-filter removing the
// over-approximation at span edges.
package sfc

import (
	"errors"
	"fmt"
	"sort"
)

// MaxBits is the maximum per-dimension resolution: 2*MaxBits key bits
// must stay exactly representable in a float64 mantissa.
const MaxBits = 26

var (
	// ErrBits reports an unsupported resolution.
	ErrBits = errors.New("sfc: bits outside [1, MaxBits]")
	// ErrDomain reports a coordinate outside [0, 1).
	ErrDomain = errors.New("sfc: coordinate outside [0, 1)")
	// ErrRect reports an empty or invalid query rectangle.
	ErrRect = errors.New("sfc: invalid rectangle")
)

// Curve is a two-dimensional Z-order curve at a fixed resolution.
type Curve struct {
	bits int
}

// NewCurve creates a curve with the given per-dimension bit resolution.
func NewCurve(bits int) (Curve, error) {
	if bits < 1 || bits > MaxBits {
		return Curve{}, fmt.Errorf("%w: %d", ErrBits, bits)
	}
	return Curve{bits: bits}, nil
}

// Bits returns the per-dimension resolution.
func (c Curve) Bits() int { return c.bits }

// CellWidth returns the side length of one grid cell.
func (c Curve) CellWidth() float64 { return 1 / float64(uint64(1)<<uint(c.bits)) }

// Encode maps a point of the unit square to its Z-order data key in
// [0, 1): quantize both coordinates to bits bits and interleave them,
// x contributing the even (higher) bit positions.
func (c Curve) Encode(x, y float64) (float64, error) {
	if !(x >= 0 && x < 1) || !(y >= 0 && y < 1) {
		return 0, fmt.Errorf("%w: (%v, %v)", ErrDomain, x, y)
	}
	n := uint64(1) << uint(c.bits)
	xi := uint64(x * float64(n))
	yi := uint64(y * float64(n))
	z := interleave(xi)<<1 | interleave(yi)
	return float64(z) / float64(uint64(1)<<uint(2*c.bits)), nil
}

// Decode returns the lower-left corner of the grid cell a data key falls
// in. Composing Decode after Encode quantizes the point to its cell.
func (c Curve) Decode(key float64) (x, y float64) {
	z := uint64(key * float64(uint64(1)<<uint(2*c.bits)))
	xi := deinterleave(z >> 1)
	yi := deinterleave(z)
	n := float64(uint64(1) << uint(c.bits))
	return float64(xi) / n, float64(yi) / n
}

// interleave spreads the low 32 bits of v across the even bit positions.
func interleave(v uint64) uint64 {
	v &= 0xFFFFFFFF
	v = (v | v<<16) & 0x0000FFFF0000FFFF
	v = (v | v<<8) & 0x00FF00FF00FF00FF
	v = (v | v<<4) & 0x0F0F0F0F0F0F0F0F
	v = (v | v<<2) & 0x3333333333333333
	v = (v | v<<1) & 0x5555555555555555
	return v
}

// deinterleave collects the even bit positions of v into the low bits.
func deinterleave(v uint64) uint64 {
	v &= 0x5555555555555555
	v = (v | v>>1) & 0x3333333333333333
	v = (v | v>>2) & 0x0F0F0F0F0F0F0F0F
	v = (v | v>>4) & 0x00FF00FF00FF00FF
	v = (v | v>>8) & 0x0000FFFF0000FFFF
	v = (v | v>>16) & 0x00000000FFFFFFFF
	return v
}

// Rect is a half-open query rectangle [X0, X1) x [Y0, Y1).
type Rect struct {
	X0, X1, Y0, Y1 float64
}

// Contains reports whether the point lies in the rectangle.
func (r Rect) Contains(x, y float64) bool {
	return x >= r.X0 && x < r.X1 && y >= r.Y0 && y < r.Y1
}

// Span is a half-open interval [Lo, Hi) of the one-dimensional key space.
type Span struct {
	Lo, Hi float64
}

// CoverRect decomposes a rectangle query into roughly maxSpans curve
// spans whose union covers every cell intersecting the rectangle. The
// decomposition recursively splits the square into quadrants (which are
// exactly the Z-order subtrees, and exactly the LHT partition subtrees):
// fully inside quadrants emit their span, partially covered ones recurse
// while the span budget lasts, then over-approximate. Callers filter
// results through Rect.Contains on decoded keys.
func (c Curve) CoverRect(r Rect, maxSpans int) ([]Span, error) {
	if !(r.X0 >= 0 && r.X0 < r.X1 && r.X1 <= 1 && r.Y0 >= 0 && r.Y0 < r.Y1 && r.Y1 <= 1) {
		return nil, fmt.Errorf("%w: %+v", ErrRect, r)
	}
	if maxSpans < 1 {
		maxSpans = 1
	}
	// Budgeted breadth-first refinement: start with the whole square,
	// repeatedly split the partially-covered cell that over-approximates
	// the most until the span budget is met.
	type cell struct {
		x, y  float64 // lower-left corner
		w     float64 // side length
		zLo   float64 // curve span of the cell
		zW    float64
		depth int
	}
	full := cell{x: 0, y: 0, w: 1, zLo: 0, zW: 1, depth: 0}
	inside := make([]Span, 0, maxSpans)
	partial := []cell{full}
	budgetOK := func() bool { return len(inside)+len(partial) < maxSpans }

	for {
		// Find a partial cell that can still be refined.
		idx := -1
		for i, cl := range partial {
			if cl.depth < c.bits {
				idx = i
				break
			}
		}
		if idx < 0 || !budgetOK() {
			break
		}
		cl := partial[idx]
		partial = append(partial[:idx], partial[idx+1:]...)
		half := cl.w / 2
		quarterZ := cl.zW / 4
		// Z-order quadrant order: (x bit, y bit) = 00, 01, 10, 11 ->
		// (left-bottom), (left-top)... x contributes the higher bit.
		quads := [4]cell{
			{x: cl.x, y: cl.y, w: half, zLo: cl.zLo, zW: quarterZ, depth: cl.depth + 1},
			{x: cl.x, y: cl.y + half, w: half, zLo: cl.zLo + quarterZ, zW: quarterZ, depth: cl.depth + 1},
			{x: cl.x + half, y: cl.y, w: half, zLo: cl.zLo + 2*quarterZ, zW: quarterZ, depth: cl.depth + 1},
			{x: cl.x + half, y: cl.y + half, w: half, zLo: cl.zLo + 3*quarterZ, zW: quarterZ, depth: cl.depth + 1},
		}
		for _, q := range quads {
			qr := Rect{X0: q.x, X1: q.x + q.w, Y0: q.y, Y1: q.y + q.w}
			switch {
			case qr.X1 <= r.X0 || qr.X0 >= r.X1 || qr.Y1 <= r.Y0 || qr.Y0 >= r.Y1:
				// Disjoint: drop.
			case qr.X0 >= r.X0 && qr.X1 <= r.X1 && qr.Y0 >= r.Y0 && qr.Y1 <= r.Y1:
				inside = append(inside, Span{Lo: q.zLo, Hi: q.zLo + q.zW})
			default:
				partial = append(partial, q)
			}
		}
	}

	spans := make([]Span, 0, len(inside)+len(partial))
	spans = append(spans, inside...)
	for _, cl := range partial {
		spans = append(spans, Span{Lo: cl.zLo, Hi: cl.zLo + cl.zW})
	}
	return mergeSpans(spans), nil
}

// mergeSpans sorts spans and merges adjacent or overlapping ones.
func mergeSpans(spans []Span) []Span {
	if len(spans) == 0 {
		return spans
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].Lo < spans[j].Lo })
	out := spans[:1]
	for _, s := range spans[1:] {
		last := &out[len(out)-1]
		if s.Lo <= last.Hi {
			if s.Hi > last.Hi {
				last.Hi = s.Hi
			}
			continue
		}
		out = append(out, s)
	}
	return out
}
