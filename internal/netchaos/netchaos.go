// Package netchaos is a deterministic, scriptable network fault injector
// for the real socket substrate: a net.Conn / dialer wrapper that can
// drop, delay, jitter, duplicate, throttle, black-hole, and
// asymmetrically partition individual links on a replayable schedule.
//
// A Chaos wraps a ContextDialer (plain net.Dialer by default) and is
// injected into a tcpnet client with tcpnet.WithDialer, so every
// connection the client opens — including lazy redials and half-open
// breaker probes — passes through the plane. Faults are expressed as
// Rules: each names a destination address (the link, from this client's
// point of view), a time window relative to Start, an optional duty
// cycle for flapping, and an Effect. The schedule is a pure function of
// (rules, seed, elapsed time since Start): replaying the same rules with
// the same seed injects the same faults at the same offsets, which is
// what lets ablation A11 and the CI chaos job pin scenarios across runs.
//
// Effects compose the failure modes real deployments see:
//
//   - RefuseDial: new connections to the link fail immediately, like a
//     dead host with an RST-ing network stack.
//   - BlackholeDial: new connections hang until the dial context
//     expires, like a silently dropped SYN.
//   - DropConns: established connections are severed at the next I/O.
//   - Latency + Jitter: each write is delayed by Latency plus a seeded
//     uniform draw from [0, Jitter) — a slow node or congested link.
//   - ThrottleBps: writes are paced to the given bytes/sec.
//   - DropWrites: writes report success but nothing reaches the peer —
//     the outbound half of an asymmetric partition.
//   - DropReads: inbound data is withheld until the connection dies —
//     the inbound half (requests arrive, responses are lost).
//   - DupWrites: each write is sent twice, exercising duplicate
//     delivery of whole frames.
//
// A one-way partition is DropWrites or DropReads alone; a full
// partition is both (or RefuseDial+DropConns for the hard variant).
package netchaos

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// ContextDialer is the dialing capability Chaos wraps; *net.Dialer
// implements it.
type ContextDialer interface {
	DialContext(ctx context.Context, network, addr string) (net.Conn, error)
}

// Effect is the set of faults active on one link while a rule holds.
// The zero Effect is "healthy".
type Effect struct {
	RefuseDial    bool          // new dials fail immediately
	BlackholeDial bool          // new dials hang until the context expires
	DropConns     bool          // established conns are severed at next I/O
	Latency       time.Duration // added to each write
	Jitter        time.Duration // seeded uniform extra [0, Jitter) per write
	ThrottleBps   int           // write bandwidth cap, bytes/sec (0 = none)
	DropWrites    bool          // writes succeed but are discarded (outbound partition)
	DropReads     bool          // inbound data withheld (inbound partition)
	DupWrites     bool          // every write is duplicated
}

// healthy reports whether the effect injects nothing.
func (e Effect) healthy() bool { return e == Effect{} }

// merge overlays o on e: booleans OR, durations and rates take the
// maximum, so overlapping rules stack to the harsher fault.
func (e Effect) merge(o Effect) Effect {
	e.RefuseDial = e.RefuseDial || o.RefuseDial
	e.BlackholeDial = e.BlackholeDial || o.BlackholeDial
	e.DropConns = e.DropConns || o.DropConns
	e.DropWrites = e.DropWrites || o.DropWrites
	e.DropReads = e.DropReads || o.DropReads
	e.DupWrites = e.DupWrites || o.DupWrites
	if o.Latency > e.Latency {
		e.Latency = o.Latency
	}
	if o.Jitter > e.Jitter {
		e.Jitter = o.Jitter
	}
	if o.ThrottleBps > 0 && (e.ThrottleBps == 0 || o.ThrottleBps < e.ThrottleBps) {
		e.ThrottleBps = o.ThrottleBps // tighter cap wins
	}
	return e
}

// Rule scopes an Effect to a link and a window of the schedule.
type Rule struct {
	// Addr is the destination address the rule applies to; empty means
	// every link.
	Addr string
	// From and Until bound the active window, as offsets from Start.
	// Until 0 means "forever".
	From, Until time.Duration
	// Period and Duty, when Period > 0, flap the rule: within its
	// window the rule is active only during the first Duty fraction of
	// each Period — a peer that is up, then gone, then up again, on a
	// deterministic clock.
	Period time.Duration
	Duty   float64
	Effect Effect
}

// active reports whether the rule applies at elapsed time t.
func (r Rule) active(t time.Duration) bool {
	if t < r.From {
		return false
	}
	if r.Until > 0 && t >= r.Until {
		return false
	}
	if r.Period > 0 {
		phase := (t - r.From) % r.Period
		if float64(phase) >= r.Duty*float64(r.Period) {
			return false
		}
	}
	return true
}

// Chaos is the injector. Create with New, add rules, inject via
// tcpnet.WithDialer (or use DialContext directly), then Start the
// schedule clock. Safe for concurrent use.
type Chaos struct {
	base ContextDialer

	mu      sync.Mutex
	rules   []Rule
	started bool
	start   time.Time
	seed    int64
	jitters map[string]*rand.Rand // per-link seeded jitter streams
	conns   map[*conn]struct{}    // live wrapped connections

	// now is the schedule clock, injectable for tests.
	now func() time.Time

	dialsRefused atomic.Int64
	writesLost   atomic.Int64
	writesDuped  atomic.Int64
}

// New returns a Chaos over the default net.Dialer. The seed drives every
// random draw (jitter); two Chaos with equal rules, seed, and Start
// produce identical fault schedules.
func New(seed int64) *Chaos {
	return NewWith(&net.Dialer{}, seed)
}

// NewWith wraps a specific underlying dialer.
func NewWith(base ContextDialer, seed int64) *Chaos {
	return &Chaos{
		base:    base,
		seed:    seed,
		jitters: make(map[string]*rand.Rand),
		conns:   make(map[*conn]struct{}),
		now:     time.Now,
	}
}

// Add appends a rule to the schedule. Rules may be added before or
// after Start; the schedule evaluates all of them on every operation.
func (c *Chaos) Add(rules ...Rule) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rules = append(c.rules, rules...)
}

// Clear removes all rules, healing every link (established connections
// that were severed stay severed; the next dial is clean).
func (c *Chaos) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rules = nil
}

// Start begins the schedule clock: rule windows are measured from this
// instant. Before Start every link is healthy, so a client can be
// dialed and warmed deterministically before the chaos begins. Calling
// Start again rewinds the clock.
func (c *Chaos) Start() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.started = true
	c.start = c.now()
}

// elapsed returns the schedule time, or -1 before Start.
func (c *Chaos) elapsed() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.started {
		return -1
	}
	return c.now().Sub(c.start)
}

// effect resolves the merged active effect for a link at schedule time t.
func (c *Chaos) effect(addr string) Effect {
	t := c.elapsed()
	if t < 0 {
		return Effect{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var e Effect
	for _, r := range c.rules {
		if r.Addr != "" && r.Addr != addr {
			continue
		}
		if r.active(t) {
			e = e.merge(r.Effect)
		}
	}
	return e
}

// jitterFor draws a deterministic jitter in [0, j) for the link: each
// link has its own rand stream derived from the seed, so the draw
// sequence per link is replayable regardless of cross-link
// interleaving.
func (c *Chaos) jitterFor(addr string, j time.Duration) time.Duration {
	if j <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	rng, ok := c.jitters[addr]
	if !ok {
		h := int64(0)
		for _, b := range []byte(addr) {
			h = h*131 + int64(b)
		}
		rng = rand.New(rand.NewSource(c.seed ^ h))
		c.jitters[addr] = rng
	}
	return time.Duration(rng.Int63n(int64(j)))
}

// DialsRefused reports dials the plane rejected or black-holed.
func (c *Chaos) DialsRefused() int64 { return c.dialsRefused.Load() }

// WritesLost reports writes discarded by DropWrites black-holing.
func (c *Chaos) WritesLost() int64 { return c.writesLost.Load() }

// WritesDuped reports writes duplicated by DupWrites.
func (c *Chaos) WritesDuped() int64 { return c.writesDuped.Load() }

// DialContext implements ContextDialer: it applies the link's dial
// effects, then wraps the resulting connection so per-operation effects
// apply for the connection's lifetime.
func (c *Chaos) DialContext(ctx context.Context, network, addr string) (net.Conn, error) {
	e := c.effect(addr)
	if e.RefuseDial {
		c.dialsRefused.Add(1)
		return nil, fmt.Errorf("netchaos: dial %s refused by schedule", addr)
	}
	if e.BlackholeDial {
		c.dialsRefused.Add(1)
		<-ctx.Done()
		return nil, fmt.Errorf("netchaos: dial %s black-holed: %w", addr, ctx.Err())
	}
	inner, err := c.base.DialContext(ctx, network, addr)
	if err != nil {
		return nil, err
	}
	cc := &conn{Conn: inner, chaos: c, addr: addr}
	c.mu.Lock()
	c.conns[cc] = struct{}{}
	c.mu.Unlock()
	return cc, nil
}

// forget drops a closed connection from the live set.
func (c *Chaos) forget(cc *conn) {
	c.mu.Lock()
	delete(c.conns, cc)
	c.mu.Unlock()
}

// conn is one chaos-wrapped connection.
type conn struct {
	net.Conn
	chaos *Chaos
	addr  string

	severed atomic.Bool
	readDL  atomic.Int64 // read deadline, unix nanos; 0 = none
}

// SetDeadline mirrors the read half into the wrapper (so a reader parked
// in a DropReads window still observes it) before passing through.
func (cc *conn) SetDeadline(t time.Time) error {
	cc.storeReadDL(t)
	return cc.Conn.SetDeadline(t)
}

// SetReadDeadline mirrors the deadline into the wrapper before passing
// through.
func (cc *conn) SetReadDeadline(t time.Time) error {
	cc.storeReadDL(t)
	return cc.Conn.SetReadDeadline(t)
}

func (cc *conn) storeReadDL(t time.Time) {
	if t.IsZero() {
		cc.readDL.Store(0)
	} else {
		cc.readDL.Store(t.UnixNano())
	}
}

// readDeadlineExpired reports whether a read deadline is set and past.
func (cc *conn) readDeadlineExpired() bool {
	dl := cc.readDL.Load()
	return dl != 0 && !time.Now().Before(time.Unix(0, dl))
}

var errSevered = fmt.Errorf("netchaos: connection severed by schedule")

// apply resolves the link effect and handles connection-level faults;
// it returns the effect for the caller's per-op handling.
func (cc *conn) apply() (Effect, error) {
	if cc.severed.Load() {
		return Effect{}, errSevered
	}
	e := cc.chaos.effect(cc.addr)
	if e.DropConns {
		cc.severed.Store(true)
		_ = cc.Conn.Close()
		return Effect{}, errSevered
	}
	return e, nil
}

// Write applies latency, jitter, throttling, duplication and black-hole
// dropping before (or instead of) writing to the real connection.
func (cc *conn) Write(p []byte) (int, error) {
	e, err := cc.apply()
	if err != nil {
		return 0, err
	}
	if d := e.Latency + cc.chaos.jitterFor(cc.addr, e.Jitter); d > 0 {
		time.Sleep(d)
	}
	if e.ThrottleBps > 0 {
		// Pace the whole buffer at the cap; coarse but deterministic in
		// shape (sleep scales with bytes).
		time.Sleep(time.Duration(float64(len(p)) / float64(e.ThrottleBps) * float64(time.Second)))
	}
	if e.DropWrites {
		cc.chaos.writesLost.Add(1)
		return len(p), nil // swallowed by the void, reported as sent
	}
	if e.DupWrites {
		cc.chaos.writesDuped.Add(1)
		if n, err := cc.Conn.Write(p); err != nil {
			return n, err
		}
	}
	return cc.Conn.Write(p)
}

// Read withholds inbound data while DropReads holds: the caller blocks
// exactly as it would on a link whose return path is black-holed. The
// data is not consumed, so a window that ends releases the buffered
// stream intact — by then the requests it answers have typically been
// abandoned (their pending slots timed out), and the late responses are
// dropped by request-id correlation, which is precisely the asymmetric-
// partition behaviour the degradation machinery must survive.
//
// A parked reader still honours its read deadline (mirrored by the
// SetDeadline/SetReadDeadline wrappers): a black-holed return path makes
// reads time out, never hang past their budget — the handshake timeout
// on a half-open probe depends on exactly that.
func (cc *conn) Read(p []byte) (int, error) {
	for {
		e, err := cc.apply()
		if err != nil {
			return 0, err
		}
		if !e.DropReads {
			return cc.Conn.Read(p)
		}
		if cc.readDeadlineExpired() {
			return 0, &net.OpError{
				Op: "read", Net: "tcp",
				Source: cc.Conn.LocalAddr(), Addr: cc.Conn.RemoteAddr(),
				Err: os.ErrDeadlineExceeded,
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Close unwraps and closes; it also marks the wrapper severed so a
// reader parked in a DropReads window unblocks instead of leaking.
func (cc *conn) Close() error {
	cc.severed.Store(true)
	cc.chaos.forget(cc)
	return cc.Conn.Close()
}
