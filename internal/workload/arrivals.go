package workload

import (
	"fmt"
	"math/rand"
)

// Arrivals models a skewed request stream over a fixed key population:
// each Next draws one query key, with popularity following a Zipf law of
// exponent s over a seeded permutation of the population. Unlike
// Generator.Key — which draws fresh (jittered, distinct-friendly) data
// keys — Arrivals deliberately re-issues the same popular keys over and
// over, which is what concentrates traffic onto one leaf's responsible
// peer and makes its tail latency collapse. Skew s = 0 is the uniform
// arrival process (every key equally popular), the control arm of
// ablation A10.
type Arrivals struct {
	keys []float64 // population in popularity order: keys[0] is hottest
	rng  *rand.Rand
	zipf *rand.Zipf // nil when s == 0 (uniform)
}

// NewArrivals builds an arrival process over the given key population.
// s selects the skew: 0 for uniform arrivals, or any value > 1 for a
// Zipf popularity law (math/rand's Zipf sampler requires s > 1; the
// paper-style sweep uses s in {0, 1.01, 1.5}). Popularity ranks are
// assigned by a seeded shuffle so the hottest key is not simply the
// smallest, and the whole stream is reproducible from (keys, s, seed).
func NewArrivals(keys []float64, s float64, seed int64) (*Arrivals, error) {
	if len(keys) == 0 {
		return nil, fmt.Errorf("workload: arrivals need a non-empty key population")
	}
	if s != 0 && s <= 1 {
		return nil, fmt.Errorf("workload: arrival skew s = %v unsupported: use 0 (uniform) or s > 1 (Zipf)", s)
	}
	rng := rand.New(rand.NewSource(seed))
	a := &Arrivals{keys: append([]float64(nil), keys...), rng: rng}
	rng.Shuffle(len(a.keys), func(i, j int) { a.keys[i], a.keys[j] = a.keys[j], a.keys[i] })
	if s != 0 {
		a.zipf = rand.NewZipf(rng, s, 1, uint64(len(a.keys)-1))
	}
	return a, nil
}

// Next draws the next query key of the arrival stream.
func (a *Arrivals) Next() float64 {
	if a.zipf == nil {
		return a.keys[a.rng.Intn(len(a.keys))]
	}
	return a.keys[a.zipf.Uint64()]
}

// Hottest returns the most popular key of the stream, the one a skewed
// arrival process hammers hardest (useful for asserting where load
// concentrates in tests and ablations).
func (a *Arrivals) Hottest() float64 { return a.keys[0] }
