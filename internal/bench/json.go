package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"lht/internal/metrics"
)

// ReportSchema versions the machine-readable report format; bump it when
// the shape of Report changes incompatibly. lht-bench/2 added the
// per-experiment latency percentile blocks and the run-level counter
// totals.
const ReportSchema = "lht-bench/2"

// TimedResult is one experiment's figure plus the wall time it took to
// produce and the latency distribution of the operations it issued.
type TimedResult struct {
	Result
	WallMillis int64       `json:"wall_millis"`
	Latency    []OpLatency `json:"latency,omitempty"`
}

// Report is the machine-readable output of a bench run: every result with
// its series data (the op counts behind each figure), wall times, latency
// percentiles, and the run's aggregate DHT counters, for CI trend
// tracking and external plotting.
type Report struct {
	Schema     string        `json:"schema"`
	Options    Options       `json:"options"`
	WallMillis int64         `json:"wall_millis"`
	Results    []TimedResult `json:"results"`
	// Counters is the run-wide counter total (Options.Agg at the end of
	// the run), present when the run aggregated its indexes' counters.
	Counters *metrics.FlatSnapshot `json:"counters,omitempty"`
}

// NewReport starts a report for one run.
func NewReport(o Options) *Report {
	return &Report{Schema: ReportSchema, Options: o}
}

// Add appends one result with its wall time.
func (r *Report) Add(res Result, wall time.Duration) {
	r.AddTimed(TimedResult{Result: res, WallMillis: wall.Milliseconds()})
}

// AddTimed appends one fully populated result (wall time plus latency).
func (r *Report) AddTimed(tr TimedResult) {
	r.Results = append(r.Results, tr)
	r.WallMillis += tr.WallMillis
}

// WriteFile writes the report as indented JSON, creating the target
// directory if needed.
func (r *Report) WriteFile(path string) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("bench: report dir: %w", err)
		}
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: encode report: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("bench: write report: %w", err)
	}
	return nil
}
