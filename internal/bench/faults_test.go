package bench

import (
	"testing"

	"lht/internal/workload"
)

// TestFaultAblation pins the A5 acceptance criteria: with the retry
// policy, query success stays at or above 95% under 5% injected transient
// faults; without it, success is measurably degraded. The retry cost is
// nonzero exactly when faults are injected.
func TestFaultAblation(t *testing.T) {
	o := testOptions()
	rates := []float64{0, 0.05, 0.2}
	succ, cost, err := RunFaultAblation(o, workload.Uniform, 1<<11, rates)
	if err != nil {
		t.Fatal(err)
	}
	noPolicy := seriesByName(t, succ, "LHT no policy")
	withPolicy := seriesByName(t, succ, "LHT with policy")

	// Healthy substrate: both variants answer everything.
	if noPolicy.Points[0].Y != 100 || withPolicy.Points[0].Y != 100 {
		t.Fatalf("success at fault rate 0 = %v / %v, want 100 / 100",
			noPolicy.Points[0].Y, withPolicy.Points[0].Y)
	}
	// 5% faults: the policy holds the line, raw queries degrade.
	if y := withPolicy.Points[1].Y; y < 95 {
		t.Errorf("with policy at 5%% faults: success %v%%, want >= 95%%", y)
	}
	if y := noPolicy.Points[1].Y; y >= 95 {
		t.Errorf("no policy at 5%% faults: success %v%%, expected measurable degradation", y)
	}
	// The gap widens with the fault rate.
	if gap5, gap20 := withPolicy.Points[1].Y-noPolicy.Points[1].Y,
		withPolicy.Points[2].Y-noPolicy.Points[2].Y; gap20 <= gap5 {
		t.Errorf("policy advantage should grow with fault rate: %v at 5%%, %v at 20%%", gap5, gap20)
	}

	// Retries are the price, charged only when faults happen.
	retries := seriesByName(t, cost, "with policy")
	if retries.Points[0].Y != 0 {
		t.Errorf("retries/query at fault rate 0 = %v, want 0", retries.Points[0].Y)
	}
	if retries.Points[1].Y <= 0 {
		t.Errorf("retries/query at 5%% faults = %v, want > 0", retries.Points[1].Y)
	}
}
