package lht

import (
	"errors"
	"math/rand"
	"testing"

	"lht/internal/dht"
	"lht/internal/record"
)

// TestMultipleClientsShareOneTree verifies the over-DHT property from the
// client side: several Index instances attached to the same substrate see
// one consistent tree, because all state lives in the DHT (the clients
// hold only configuration and counters). Writes are serialized, as the
// concurrency contract requires.
func TestMultipleClientsShareOneTree(t *testing.T) {
	d := dht.NewLocal()
	cfg := Config{SplitThreshold: 8, MergeThreshold: 6, Depth: 20}
	clients := make([]*Index, 3)
	for i := range clients {
		ix, err := New(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = ix
	}

	rng := rand.New(rand.NewSource(91))
	oracle := make(map[float64]bool)
	for i := 0; i < 1500; i++ {
		writer := clients[i%len(clients)]
		k := rng.Float64()
		if rng.Intn(4) == 0 && len(oracle) > 0 {
			for dk := range oracle {
				k = dk
				break
			}
			if _, err := writer.Delete(k); err != nil {
				t.Fatalf("client %d Delete(%v): %v", i%3, k, err)
			}
			delete(oracle, k)
			continue
		}
		if _, err := writer.Insert(record.Record{Key: k}); err != nil {
			t.Fatalf("client %d Insert(%v): %v", i%3, k, err)
		}
		oracle[k] = true
	}

	// Every client answers identically.
	for ci, ix := range clients {
		if err := ix.CheckInvariants(); err != nil {
			t.Fatalf("client %d: %v", ci, err)
		}
		n, err := ix.Count()
		if err != nil || n != len(oracle) {
			t.Fatalf("client %d Count = %d, %v; want %d", ci, n, err, len(oracle))
		}
		for k := range oracle {
			if _, _, err := ix.Search(k); err != nil {
				t.Fatalf("client %d Search(%v): %v", ci, k, err)
			}
		}
	}

	// Split statistics are per client: the sum of splits across clients
	// equals the tree's growth, since every split happened through
	// exactly one of them.
	var totalSplits int64
	for _, ix := range clients {
		totalSplits += ix.Metrics().Lookup.Splits
	}
	leaves, err := clients[0].Leaves()
	if err != nil {
		t.Fatal(err)
	}
	var totalMerges int64
	for _, ix := range clients {
		totalMerges += ix.Metrics().Lookup.Merges
	}
	// leaves = 1 + splits - merges (each split adds one leaf, each merge
	// removes one).
	if int64(len(leaves)) != 1+totalSplits-totalMerges {
		t.Fatalf("leaves = %d, want 1 + %d splits - %d merges", len(leaves), totalSplits, totalMerges)
	}
}

// TestLeafCacheStalenessAcrossClients churns the tree behind a cached
// client's back: client B splits and merges leaves that client A has
// cached, and A's queries must still return exactly the right answers —
// the stale entries are detected (the counter ticks) and repaired, never
// served.
func TestLeafCacheStalenessAcrossClients(t *testing.T) {
	d := dht.NewLocal()
	cfg := Config{SplitThreshold: 8, MergeThreshold: 6, Depth: 20}
	cachedCfg := cfg
	cachedCfg.LeafCache = true
	a, err := New(d, cachedCfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(d, cfg)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(23))
	keys := make([]float64, 400)
	for i := range keys {
		keys[i] = rng.Float64()
		if _, err := b.Insert(record.Record{Key: keys[i]}); err != nil {
			t.Fatal(err)
		}
	}
	// Warm A's cache over every leaf.
	for _, k := range keys {
		if _, _, err := a.Search(k); err != nil {
			t.Fatalf("warm Search(%v): %v", k, err)
		}
	}

	// B grows the tree behind A's cache: a burst of inserts forces
	// splits, so many of A's entries now name internal nodes.
	grown := make([]float64, 600)
	for i := range grown {
		grown[i] = rng.Float64()
		if _, err := b.Insert(record.Record{Key: grown[i]}); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range append(append([]float64{}, keys...), grown...) {
		if _, _, err := a.Search(k); err != nil {
			t.Fatalf("Search(%v) after B's splits: %v", k, err)
		}
	}
	afterSplits := a.Metrics().Flat()
	if afterSplits.CacheStale == 0 {
		t.Error("no stale probes detected although B split leaves behind A's cache")
	}

	// B shrinks the tree: deleting the grown burst (and some originals)
	// forces merges, so A's deeper entries name vanished leaves.
	for _, k := range grown {
		if _, err := b.Delete(k); err != nil {
			t.Fatalf("Delete(%v): %v", k, err)
		}
	}
	if b.Metrics().Flat().Merges == 0 {
		t.Fatal("workload produced no merges; staleness-after-merge is untested")
	}
	for _, k := range keys {
		rec, _, err := a.Search(k)
		if err != nil || rec.Key != k {
			t.Fatalf("Search(%v) after B's merges = %v, %v", k, rec, err)
		}
	}
	for _, k := range grown {
		if _, _, err := a.Search(k); !errors.Is(err, ErrKeyNotFound) {
			t.Fatalf("Search(%v) of deleted key = %v, want ErrKeyNotFound", k, err)
		}
	}
	if s := a.Metrics().Flat(); s.CacheStale <= afterSplits.CacheStale {
		t.Errorf("stale counter did not tick for merges: %d -> %d", afterSplits.CacheStale, s.CacheStale)
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
