package pht

import (
	"context"
	"errors"
	"fmt"

	"lht/internal/bitlabel"
	"lht/internal/dht"
	"lht/internal/keyspace"
	"lht/internal/metrics"
	"lht/internal/record"
)

// ErrBadRange reports a malformed range query.
var ErrBadRange = errors.New("pht: invalid range")

func checkRange(lo, hi float64) error {
	if err := keyspace.CheckKey(lo); err != nil {
		return fmt.Errorf("%w: lo: %v", ErrBadRange, err)
	}
	if !(hi > lo && hi <= 1) {
		return fmt.Errorf("%w: [%v, %v)", ErrBadRange, lo, hi)
	}
	return nil
}

// RangeSequential is PHT's chain-walking range algorithm (Ramabhadran et
// al.): look up the leaf covering the lower bound, then follow the
// B+-tree Next links until past the upper bound. Bandwidth is
// near-optimal - one DHT-lookup per result leaf plus the initial lookup -
// but every hop depends on the previous one, so latency equals bandwidth:
// the order-of-magnitude gap of Fig. 10.
func (ix *Index) RangeSequential(lo, hi float64) ([]record.Record, Cost, error) {
	return ix.RangeSequentialContext(context.Background(), lo, hi)
}

// RangeSequentialContext is RangeSequential with a caller-supplied
// context; cancellation stops the chain walk at the next hop.
func (ix *Index) RangeSequentialContext(ctx context.Context, lo, hi float64) (out []record.Record, cost Cost, err error) {
	if err := checkRange(lo, hi); err != nil {
		return nil, Cost{}, err
	}
	ctx, done := ix.beginOp(ctx, metrics.OpRange)
	defer func() { done(err) }()
	n, cost, err := ix.lookupLeaf(ctx, lo)
	if err != nil {
		return nil, cost, err
	}
	// The chain walk is forwarding traffic, like LHT's range sweep.
	ctx = metrics.WithPhase(ctx, metrics.PhaseForward)
	for {
		out = record.FilterRange(out, n.Records, lo, hi)
		if !n.HasNext || n.Interval().Hi >= hi {
			cost.Steps = cost.Lookups
			return out, cost, nil
		}
		next, err := ix.getNode(ctx, n.Next.Key(), &cost)
		if err != nil {
			cost.Steps = cost.Lookups
			return out, cost, fmt.Errorf("pht: chain walk to %s: %w", n.Next, err)
		}
		n = next
	}
}

// RangeParallel is PHT's trie-fanning range algorithm (Chawathe et al.):
// from the range's LCA, recursively visit both children of every internal
// node overlapping the range, all siblings in parallel. Latency is the
// trie depth below the LCA, but bandwidth roughly doubles - every internal
// node on the way down costs a DHT-lookup that returns no records, which
// is why Fig. 9 shows PHT(parallel) as the most bandwidth-hungry of the
// three algorithms.
func (ix *Index) RangeParallel(lo, hi float64) ([]record.Record, Cost, error) {
	return ix.RangeParallelContext(context.Background(), lo, hi)
}

// RangeParallelContext is RangeParallel with a caller-supplied context;
// cancellation stops the trie descent before further node fetches.
//
// The descent runs breadth-first: each trie level below the LCA is one
// frontier, fetched with a single multi-get (one round trip per level on
// a batch-native substrate). The fan-out per level is exactly the
// parallelism the algorithm's latency model always assumed — Lookups and
// Steps are identical to a node-at-a-time descent; only round trips
// change.
func (ix *Index) RangeParallelContext(ctx context.Context, lo, hi float64) (out []record.Record, cost Cost, err error) {
	if err := checkRange(lo, hi); err != nil {
		return nil, Cost{}, err
	}
	ctx, done := ix.beginOp(ctx, metrics.OpRange)
	defer func() { done(err) }()
	// The trie descent fans the query out level by level.
	ctx = metrics.WithPhase(ctx, metrics.PhaseForward)
	r := keyspace.Interval{Lo: lo, Hi: hi}
	lca := keyspace.RangeLCA(r, ix.cfg.Depth)

	var depth int
	frontier := []bitlabel.Label{lca}
	for len(frontier) > 0 {
		depth++
		keys := make([]string, len(frontier))
		for i, label := range frontier {
			keys[i] = label.Key()
		}
		cost.Lookups += len(keys)
		vals, errs := dht.DoGetBatch(ctx, ix.d, keys)

		var next []bitlabel.Label
		for i, label := range frontier {
			if errors.Is(errs[i], dht.ErrNotFound) {
				if label == lca {
					// The trie is shallower than the LCA: the whole range
					// lies in one leaf, found by an ordinary lookup.
					n, lcost, err := ix.lookupLeaf(ctx, lo)
					cost.Lookups += lcost.Lookups
					cost.Steps = depth + lcost.Steps
					if err != nil {
						return nil, cost, err
					}
					out = record.FilterRange(out, n.Records, lo, hi)
					return out, cost, nil
				}
				return nil, cost, fmt.Errorf("%w: internal node %s lacks child %s", ErrCorrupt, label.Parent(), label)
			}
			n, err := nodeOf(vals[i], errs[i], keys[i])
			if err != nil {
				return nil, cost, err
			}
			if n.Leaf {
				out = record.FilterRange(out, n.Records, r.Lo, r.Hi)
				continue
			}
			// Internal: both children exist; descend into the overlapping
			// ones next level.
			for _, child := range []bitlabel.Label{label.Left(), label.Right()} {
				if keyspace.IntervalOf(child).Overlaps(r) {
					next = append(next, child)
				}
			}
		}
		frontier = next
	}
	cost.Steps = depth
	return out, cost, nil
}

// nodeOf type-asserts one get outcome (per-op or one slot of a batched
// multi-get) into a trie node.
func nodeOf(v dht.Value, err error, key string) (*Node, error) {
	if err != nil {
		return nil, err
	}
	n, ok := v.(*Node)
	if !ok {
		return nil, fmt.Errorf("%w: key %q holds %T, not a node", ErrCorrupt, key, v)
	}
	return n, nil
}

// Leaves returns every leaf in key order by walking the chain from the
// leftmost leaf (testing/inspection helper).
func (ix *Index) Leaves() ([]*Node, error) {
	var cost Cost
	// Descend the leftmost path.
	ctx := context.Background()
	label := bitlabel.TreeRoot
	for {
		n, err := ix.getNode(ctx, label.Key(), &cost)
		if err != nil {
			return nil, fmt.Errorf("pht: leftmost descent at %s: %w", label, err)
		}
		if n.Leaf {
			leaves := []*Node{n}
			for n.HasNext {
				next, err := ix.getNode(ctx, n.Next.Key(), &cost)
				if err != nil {
					return nil, fmt.Errorf("pht: chain walk to %s: %w", n.Next, err)
				}
				leaves = append(leaves, next)
				n = next
			}
			return leaves, nil
		}
		label = label.Left()
	}
}

// CheckInvariants verifies the trie and chain structure: leaves tile
// [0, 1) in chain order, links are symmetric, every record lies in its
// leaf's interval, every ancestor of a leaf is an internal marker, and no
// leaf below the depth bound has runaway weight (transient overflow up to
// the threshold is expected, as in LHT).
func (ix *Index) CheckInvariants() error {
	leaves, err := ix.Leaves()
	if err != nil {
		return err
	}
	want := 0.0
	for i, n := range leaves {
		iv := n.Interval()
		if iv.Lo != want {
			return fmt.Errorf("%w: leaf %s starts at %g, want %g", ErrCorrupt, n.Label, iv.Lo, want)
		}
		want = iv.Hi
		if i > 0 && (!n.HasPrev || n.Prev != leaves[i-1].Label) {
			return fmt.Errorf("%w: leaf %s prev link broken", ErrCorrupt, n.Label)
		}
		if i == 0 && n.HasPrev {
			return fmt.Errorf("%w: leftmost leaf %s has a prev link", ErrCorrupt, n.Label)
		}
		for _, r := range n.Records {
			if !iv.Contains(r.Key) {
				return fmt.Errorf("%w: record %g outside leaf %s %v", ErrCorrupt, r.Key, n.Label, iv)
			}
		}
		if n.Label.Len() < ix.cfg.Depth && n.Weight() > 2*ix.cfg.SplitThreshold {
			return fmt.Errorf("%w: leaf %s weight %d exceeds 2x threshold", ErrCorrupt, n.Label, n.Weight())
		}
		// Every proper ancestor must be an internal marker.
		for k := 1; k < n.Label.Len(); k++ {
			var c Cost
			anc, err := ix.getNode(context.Background(), n.Label.Prefix(k).Key(), &c)
			if err != nil {
				return fmt.Errorf("%w: ancestor %s of %s missing: %v", ErrCorrupt, n.Label.Prefix(k), n.Label, err)
			}
			if anc.Leaf {
				return fmt.Errorf("%w: ancestor %s of leaf %s is a leaf", ErrCorrupt, anc.Label, n.Label)
			}
		}
	}
	if want != 1 {
		return fmt.Errorf("%w: leaves tile [0, %g), want [0, 1)", ErrCorrupt, want)
	}
	if last := leaves[len(leaves)-1]; last.HasNext {
		return fmt.Errorf("%w: rightmost leaf %s has a next link", ErrCorrupt, last.Label)
	}
	return nil
}

// Count returns the total number of indexed records (testing helper).
func (ix *Index) Count() (int, error) {
	leaves, err := ix.Leaves()
	if err != nil {
		return 0, err
	}
	var total int
	for _, n := range leaves {
		total += len(n.Records)
	}
	return total, nil
}
