package lht

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"lht/internal/chord"
	"lht/internal/dht"
	"lht/internal/record"
	"lht/internal/tcpnet"
	"lht/internal/workload"
)

// The many-writer linearizability oracle. Because LHT splits never
// cascade (section 5), the tree after a burst of inserts depends on
// arrival order — a split that dumps every record into one child leaves
// that child overweight until the next insert into it, so an execution
// can simply run out of keys before a subtree finishes refining. The
// oracle therefore drives every execution to the workload's unique fixed
// point before comparing: n keys on the lattice (i+0.5)/n with
// SplitThreshold 4, followed by "settle rounds" that re-upsert every key
// (an upsert re-triggers the split check, so any still-overweight leaf
// refines by one more level per visit). At the fixed point no interval of
// depth < log2(n/2) can be a leaf (it would hold >= 3 records and split
// on the next visit) and no deeper leaf ever splits (2 lattice keys,
// weight 3, below the trigger), so every history — sequential or N-way
// concurrent — converges to the complete depth-log2(n/2) tree with 2
// records per leaf. Concurrent executions must match it byte for byte
// (epochs excluded — they count CAS rounds, which legitimately differ
// between histories). Lost or duplicated records are asserted BEFORE the
// settle rounds, where a re-upsert could mask a lost commit.

// latticeRecords returns n records on the key lattice (i+0.5)/n, each
// value a deterministic function of the key so any two executions store
// identical bytes.
func latticeRecords(n int) []record.Record {
	recs := make([]record.Record, n)
	for i := range recs {
		recs[i] = record.Record{
			Key:   (float64(i) + 0.5) / float64(n),
			Value: []byte(fmt.Sprintf("v%04d", i)),
		}
	}
	return recs
}

// fingerprintTree renders the tree's logical final state: leaves in walk
// order, records sorted by key within each leaf (concurrent committers
// append in commit order), pending-intent kind included (a quiesced tree
// must have none), epochs excluded.
func fingerprintTree(t *testing.T, ix *Index) string {
	t.Helper()
	leaves, err := ix.Leaves()
	if err != nil {
		t.Fatalf("Leaves: %v", err)
	}
	var buf bytes.Buffer
	for _, b := range leaves {
		recs := append([]record.Record(nil), b.Records...)
		sort.Slice(recs, func(i, j int) bool { return recs[i].Key < recs[j].Key })
		fmt.Fprintf(&buf, "%s pending=%v:", b.Label, b.Pending.Kind)
		for _, r := range recs {
			fmt.Fprintf(&buf, " %g=%q", r.Key, r.Value)
		}
		buf.WriteByte('\n')
	}
	return buf.String()
}

// sequentialFingerprint runs the reference execution: one writer, one
// Local substrate, keys in ascending order, then settle rounds until the
// tree stops changing (the fixed point). It verifies the fixed point is
// the fully refined lattice tree: every leaf under the split trigger.
func sequentialFingerprint(t *testing.T, recs []record.Record, cfg Config) string {
	t.Helper()
	ix, err := New(dht.NewLocal(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	sorted := append([]record.Record(nil), recs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	for _, r := range sorted {
		if _, err := ix.Insert(r); err != nil {
			t.Fatalf("reference Insert(%g): %v", r.Key, err)
		}
	}
	prev := fingerprintTree(t, ix)
	for round := 0; ; round++ {
		if round > 10 {
			t.Fatal("reference execution did not reach a fixed point in 10 settle rounds")
		}
		for _, r := range sorted {
			if _, err := ix.Insert(r); err != nil {
				t.Fatalf("reference settle Insert(%g): %v", r.Key, err)
			}
		}
		cur := fingerprintTree(t, ix)
		if cur == prev {
			break
		}
		prev = cur
	}
	leaves, err := ix.Leaves()
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range leaves {
		if b.Weight() >= cfg.SplitThreshold {
			t.Fatalf("reference fixed point has overweight leaf %s", b)
		}
	}
	return prev
}

// startServers boots n tcpnet servers on loopback and returns their
// addresses.
func startServers(t *testing.T, n int) []string {
	t.Helper()
	gob.Register(&Bucket{})
	addrs := make([]string, 0, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := tcpnet.NewServer()
		go func() { _ = srv.Serve(ln) }()
		t.Cleanup(func() { _ = srv.Close() })
		addrs = append(addrs, ln.Addr().String())
	}
	return addrs
}

// TestMultiWriterOracle races N independent index clients — each with its
// own cache and counters, sharing only the substrate — over disjoint
// interleaved slices of the lattice workload, on every substrate class,
// and requires the final tree to be byte-identical to the sequential
// reference execution. Run under -race.
func TestMultiWriterOracle(t *testing.T) {
	const nWriters = 8
	cfg := Config{SplitThreshold: 4, MergeThreshold: 0, Depth: 20}
	recs := latticeRecords(256)
	want := sequentialFingerprint(t, recs, cfg)

	tcpArm := func(wire tcpnet.Wire) func(t *testing.T) dht.DHT {
		return func(t *testing.T) dht.DHT {
			addrs := startServers(t, 3)
			c, err := tcpnet.DialContext(context.Background(), addrs, tcpnet.WithWire(wire))
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { _ = c.Close() })
			return c
		}
	}

	substrates := []struct {
		name   string
		make   func(t *testing.T) dht.DHT
		policy bool // wrap writers with the retry policy (flaky arm)
	}{
		{"local", func(t *testing.T) dht.DHT { return dht.NewLocal() }, false},
		{"chord", func(t *testing.T) dht.DHT {
			ring, err := chord.NewRing(16, chord.Config{Seed: 77, Replicas: 2})
			if err != nil {
				t.Fatal(err)
			}
			return ring
		}, false},
		{"tcpnet-binary", tcpArm(tcpnet.WireBinary), false},
		{"tcpnet-gob", tcpArm(tcpnet.WireGob), false},
		// The flaky arm injects one-shot transient faults — including the
		// lost-acknowledgement After variant, where the conditional write
		// took effect and the policy's retry then loses the CAS to the
		// writer's own first attempt — and must still converge exactly.
		{"local-flaky", func(t *testing.T) dht.DHT {
			return dht.WithCrashPoints(dht.NewLocal(),
				dht.CrashRule{Op: dht.OpPutIf, N: 3, Transient: true},
				dht.CrashRule{Op: dht.OpPutIf, N: 9, After: true, Transient: true},
				dht.CrashRule{Op: dht.OpPutIf, N: 40, After: true, Transient: true},
				dht.CrashRule{Op: dht.OpCreateIf, N: 2, After: true, Transient: true},
				dht.CrashRule{Op: dht.OpWriteIf, N: 2, Transient: true},
			)
		}, true},
	}

	for _, sub := range substrates {
		t.Run(sub.name, func(t *testing.T) {
			d := sub.make(t)
			wcfg := cfg
			if sub.policy {
				p := dht.DefaultPolicy()
				wcfg.Policy = &p
			}

			// Bootstrap once, then build every writer client up front: New
			// probes the substrate outside the policy stack, and the oracle
			// races mutations, not bootstraps (New's create-if-absent
			// convergence has its own test in the dhttest battery).
			verify, err := New(d, cfg)
			if err != nil {
				t.Fatal(err)
			}
			writers := make([]*Index, nWriters)
			for w := range writers {
				if writers[w], err = New(d, wcfg); err != nil {
					t.Fatal(err)
				}
			}

			race := func() {
				errs := make([]error, nWriters)
				var wg sync.WaitGroup
				for w := 0; w < nWriters; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						for i := w; i < len(recs); i += nWriters {
							if _, err := writers[w].Insert(recs[i]); err != nil {
								errs[w] = fmt.Errorf("writer %d: Insert(%g): %w", w, recs[i].Key, err)
								return
							}
						}
					}(w)
				}
				wg.Wait()
				for _, err := range errs {
					if err != nil {
						t.Fatal(err)
					}
				}
			}
			race()

			// Exactly-once, checked before any settle round can re-deliver
			// a lost commit: every key present once, nothing else, a valid
			// tree.
			leaves, err := verify.Leaves()
			if err != nil {
				t.Fatal(err)
			}
			seen := make(map[float64]int)
			for _, b := range leaves {
				for _, r := range b.Records {
					seen[r.Key]++
				}
			}
			for _, r := range recs {
				if seen[r.Key] != 1 {
					t.Errorf("key %g stored %d times after the race, want exactly once", r.Key, seen[r.Key])
				}
			}
			if len(seen) != len(recs) {
				t.Errorf("%d distinct keys stored, want %d", len(seen), len(recs))
			}
			if err := verify.CheckInvariants(); err != nil {
				t.Errorf("CheckInvariants after race: %v", err)
			}

			// Settle rounds, still racing, until the fixed point.
			got := fingerprintTree(t, verify)
			for round := 0; got != want && round < 10; round++ {
				race()
				got = fingerprintTree(t, verify)
			}
			if got != want {
				t.Errorf("concurrent fixed point differs from sequential reference:\n--- got ---\n%s--- want ---\n%s", got, want)
			}
			if err := verify.CheckInvariants(); err != nil {
				t.Errorf("CheckInvariants at fixed point: %v", err)
			}

			var conflicts, retries, fallbacks int64
			for _, ix := range writers {
				f := ix.Metrics().Flat()
				conflicts += f.CASConflicts
				retries += f.WriterRetries
				fallbacks += f.CASFallbacks
			}
			t.Logf("%d writers: %d CAS conflicts, %d writer retries, %d fallbacks",
				nWriters, conflicts, retries, fallbacks)
			if fallbacks != 0 {
				t.Errorf("CASFallbacks = %d on a native-conditional substrate, want 0", fallbacks)
			}
		})
	}
}

// TestMultiWriterHaltingCrashes kills writers mid-flight: each of the N
// writers races through its slice behind its own crash schedule that
// halts the simulated process at a different conditional-put ordinal —
// half of them with After set, the lost-acknowledgement window where the
// commit landed but the writer died unacknowledged. Survivor guarantees:
// every acknowledged insert is in the final tree exactly once, nothing is
// duplicated, and a fresh client's Scrub converges to a clean tree.
func TestMultiWriterHaltingCrashes(t *testing.T) {
	shared := dht.NewLocal()
	cfg := Config{SplitThreshold: 4, MergeThreshold: 0, Depth: 20}
	recs := latticeRecords(256)

	if _, err := New(shared, cfg); err != nil { // bootstrap
		t.Fatal(err)
	}

	const nWriters = 8
	type outcome struct {
		committed []float64 // inserts acknowledged before the crash
		attempted []float64 // every insert tried, acknowledged or not
	}
	outs := make([]outcome, nWriters)
	var wg sync.WaitGroup
	for w := 0; w < nWriters; w++ {
		// Writer w dies at its (5+3w)-th epoch-guarded commit; even
		// writers lose only the acknowledgement (the put landed).
		crash := dht.WithCrashPoints(shared, dht.CrashRule{
			Op: dht.OpPutIf, N: 5 + 3*w, After: w%2 == 0, Halt: true,
		})
		ix, err := New(crash, cfg)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(w int, ix *Index) {
			defer wg.Done()
			for i := w; i < len(recs); i += nWriters {
				outs[w].attempted = append(outs[w].attempted, recs[i].Key)
				if _, err := ix.Insert(recs[i]); err != nil {
					if !errors.Is(err, dht.ErrCrashed) {
						t.Errorf("writer %d: Insert(%g): %v", w, recs[i].Key, err)
					}
					return
				}
				outs[w].committed = append(outs[w].committed, recs[i].Key)
			}
		}(w, ix)
	}
	wg.Wait()

	// A fresh client over the raw substrate inherits the wreckage; its
	// scrubber must converge (each pass repairs what the previous pass
	// exposed) and the result must satisfy exactly-once for every
	// acknowledged commit.
	fresh, err := New(shared, cfg)
	if err != nil {
		t.Fatal(err)
	}
	clean := false
	for pass := 0; pass < 5 && !clean; pass++ {
		rep, err := fresh.Scrub(context.Background())
		if err != nil {
			t.Fatalf("Scrub pass %d: %v\n%s", pass, err, rep)
		}
		clean = rep.Clean()
	}
	if !clean {
		t.Fatal("Scrub did not converge to a clean tree in 5 passes")
	}
	if err := fresh.CheckInvariants(); err != nil {
		t.Fatalf("CheckInvariants after scrub: %v", err)
	}

	leaves, err := fresh.Leaves()
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[float64]int)
	for _, b := range leaves {
		for _, r := range b.Records {
			seen[r.Key]++
		}
	}
	attempted := make(map[float64]bool)
	for _, o := range outs {
		for _, k := range o.attempted {
			attempted[k] = true
		}
	}
	for k, n := range seen {
		if n > 1 {
			t.Errorf("key %g stored %d times, want exactly once", k, n)
		}
		if !attempted[k] {
			t.Errorf("key %g in the tree was never inserted", k)
		}
	}
	for w, o := range outs {
		for _, k := range o.committed {
			if seen[k] != 1 {
				t.Errorf("writer %d: acknowledged insert %g lost (stored %d times)", w, k, seen[k])
			}
		}
	}
}

// TestMultiWriterStress is the CI -race soak: 8 writers (insertions and
// deletions, merges enabled), 4 concurrent readers, a scrubber running
// against the live tree, and one writer cancelled mid-run. It asserts no
// unexpected errors while racing, exactly-once presence for every
// uncancelled writer's surviving keys afterwards, a clean final scrub,
// and that no goroutines leak.
func TestMultiWriterStress(t *testing.T) {
	before := runtime.NumGoroutine()
	shared := dht.NewLocal()
	cfg := Config{SplitThreshold: 8, MergeThreshold: 4, Depth: 20}
	if _, err := New(shared, cfg); err != nil {
		t.Fatal(err)
	}

	const (
		nWriters = 8
		nReaders = 4
		perW     = 200
	)
	// Distinct keys via one global permutation of a fine lattice, so
	// writer slices never collide.
	perm := rand.New(rand.NewSource(99)).Perm(nWriters * perW)
	keyAt := func(i int) float64 { return (float64(perm[i]) + 0.5) / float64(nWriters*perW) }

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cancelW, cancelOnce := 0, sync.Once{} // writer 0 is cancelled mid-run
	wctx, wcancel := context.WithCancel(context.Background())
	defer wcancel()

	// kept[w] collects keys writer w committed and did not delete;
	// deletions drop every third inserted key.
	kept := make([]map[float64]bool, nWriters)
	var writers sync.WaitGroup
	for w := 0; w < nWriters; w++ {
		kept[w] = make(map[float64]bool)
		ix, err := New(shared, cfg)
		if err != nil {
			t.Fatal(err)
		}
		writers.Add(1)
		go func(w int, ix *Index) {
			defer writers.Done()
			wc := context.Background()
			if w == cancelW {
				wc = wctx
			}
			for i := 0; i < perW; i++ {
				k := keyAt(w*perW + i)
				if w == cancelW && i == perW/2 {
					cancelOnce.Do(wcancel)
				}
				if _, err := ix.InsertContext(wc, record.Record{Key: k, Value: []byte{byte(w)}}); err != nil {
					if errors.Is(err, context.Canceled) {
						return
					}
					t.Errorf("writer %d: Insert(%g): %v", w, k, err)
					return
				}
				kept[w][k] = true
				if i%3 == 2 {
					del := keyAt(w*perW + i - 1)
					if _, err := ix.DeleteContext(wc, del); err != nil {
						if errors.Is(err, context.Canceled) {
							return
						}
						t.Errorf("writer %d: Delete(%g): %v", w, del, err)
						return
					}
					delete(kept[w], del)
				}
			}
		}(w, ix)
	}

	done := make(chan struct{})
	var aux sync.WaitGroup
	for r := 0; r < nReaders; r++ {
		ix, err := New(shared, cfg)
		if err != nil {
			t.Fatal(err)
		}
		aux.Add(1)
		go func(r int, ix *Index) {
			defer aux.Done()
			rng := rand.New(rand.NewSource(int64(1000 + r)))
			for {
				select {
				case <-done:
					return
				default:
				}
				if rng.Intn(4) == 0 {
					lo := rng.Float64() * 0.9
					if _, _, err := ix.RangeContext(ctx, lo, lo+0.1); err != nil && !errors.Is(err, context.Canceled) {
						t.Errorf("reader %d: Range: %v", r, err)
						return
					}
				} else {
					_, _, err := ix.SearchContext(ctx, keyAt(rng.Intn(nWriters*perW)))
					if err != nil && !errors.Is(err, ErrKeyNotFound) && !errors.Is(err, context.Canceled) {
						t.Errorf("reader %d: Search: %v", r, err)
						return
					}
				}
			}
		}(r, ix)
	}
	scrubIx, err := New(shared, cfg)
	if err != nil {
		t.Fatal(err)
	}
	aux.Add(1)
	go func() {
		defer aux.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			// Mid-run reports are allowed to be dirty (live intents look
			// like tears); the scrubber must only never corrupt or error.
			if _, err := scrubIx.Scrub(ctx); err != nil && !errors.Is(err, context.Canceled) {
				t.Errorf("live Scrub: %v", err)
				return
			}
		}
	}()

	writers.Wait()
	close(done)
	aux.Wait()
	cancel()

	fresh, err := New(shared, cfg)
	if err != nil {
		t.Fatal(err)
	}
	clean := false
	for pass := 0; pass < 5 && !clean; pass++ {
		rep, err := fresh.Scrub(context.Background())
		if err != nil {
			t.Fatalf("final Scrub: %v\n%s", err, rep)
		}
		clean = rep.Clean()
	}
	if !clean {
		t.Fatal("final Scrub did not converge in 5 passes")
	}
	if err := fresh.CheckInvariants(); err != nil {
		t.Fatalf("CheckInvariants: %v", err)
	}
	leaves, err := fresh.Leaves()
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[float64]int)
	for _, b := range leaves {
		for _, r := range b.Records {
			seen[r.Key]++
		}
	}
	for k, n := range seen {
		if n > 1 {
			t.Errorf("key %g stored %d times", k, n)
		}
	}
	// Every uncancelled writer's surviving keys are present; the
	// cancelled writer's state is indeterminate per key (a cancelled
	// commit may or may not have landed) so it is only covered by the
	// duplicate and invariant checks above.
	for w := 0; w < nWriters; w++ {
		if w == cancelW {
			continue
		}
		for k := range kept[w] {
			if seen[k] != 1 {
				t.Errorf("writer %d: surviving key %g stored %d times, want 1", w, k, seen[k])
			}
		}
	}

	// Goroutine-leak check: everything spawned above is joined, so the
	// count must come back down (allow the runtime a moment to retire).
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before+2 {
		t.Errorf("goroutines: %d before, %d after; leak suspected", before, g)
	}
}

// TestMultiWriterZipfSoak is the load plane's race soak: the full plane
// on (rate-triggered splits, coalesced reads), a Zipf(1.5) arrival
// stream concentrating almost all traffic onto a handful of leaves, 6
// writers updating the hot keys in place while 4 readers hammer the same
// distribution and a scrubber walks the live tree. Skew is its own race
// schedule — every writer and reader converges on one leaf, so the
// edge-triggered hot split, the CAS retry storm and the coalescer's
// flight teardown all interleave. Afterwards the key population must be
// intact (updates never change membership), the tree clean, and no
// goroutine leaked.
func TestMultiWriterZipfSoak(t *testing.T) {
	before := runtime.NumGoroutine()
	shared := dht.NewLocal()
	cfg := Config{
		SplitThreshold: 8, MergeThreshold: 4, Depth: 20,
		HotSplitRate: 50, CoalesceGets: true,
	}
	seedIx, err := New(shared, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const nKeys = 256
	keys := make([]float64, nKeys)
	for i := range keys {
		keys[i] = (float64(i) + 0.5) / nKeys
		if _, err := seedIx.Insert(record.Record{Key: keys[i], Value: []byte{0}}); err != nil {
			t.Fatal(err)
		}
	}

	const (
		nWriters = 6
		nReaders = 4
		perW     = 150
	)
	ctx := context.Background()
	var writers sync.WaitGroup
	for w := 0; w < nWriters; w++ {
		ix, err := New(shared, cfg)
		if err != nil {
			t.Fatal(err)
		}
		arr, err := workload.NewArrivals(keys, 1.5, int64(w))
		if err != nil {
			t.Fatal(err)
		}
		writers.Add(1)
		go func(w int, ix *Index, arr *workload.Arrivals) {
			defer writers.Done()
			for i := 0; i < perW; i++ {
				k := arr.Next()
				if _, err := ix.Insert(record.Record{Key: k, Value: []byte{byte(w), byte(i)}}); err != nil {
					t.Errorf("writer %d: update %g: %v", w, k, err)
					return
				}
			}
		}(w, ix, arr)
	}

	done := make(chan struct{})
	var aux sync.WaitGroup
	for r := 0; r < nReaders; r++ {
		ix, err := New(shared, cfg)
		if err != nil {
			t.Fatal(err)
		}
		arr, err := workload.NewArrivals(keys, 1.5, int64(100+r))
		if err != nil {
			t.Fatal(err)
		}
		aux.Add(1)
		go func(r int, ix *Index, arr *workload.Arrivals) {
			defer aux.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				if _, _, err := ix.SearchContext(ctx, arr.Next()); err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
			}
		}(r, ix, arr)
	}
	scrubIx, err := New(shared, cfg)
	if err != nil {
		t.Fatal(err)
	}
	aux.Add(1)
	go func() {
		defer aux.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if _, err := scrubIx.Scrub(ctx); err != nil {
				t.Errorf("live Scrub: %v", err)
				return
			}
		}
	}()

	writers.Wait()
	close(done)
	aux.Wait()

	fresh, err := New(shared, cfg)
	if err != nil {
		t.Fatal(err)
	}
	clean := false
	for pass := 0; pass < 5 && !clean; pass++ {
		rep, err := fresh.Scrub(context.Background())
		if err != nil {
			t.Fatalf("final Scrub: %v\n%s", err, rep)
		}
		clean = rep.Clean()
	}
	if !clean {
		t.Fatal("final Scrub did not converge in 5 passes")
	}
	if err := fresh.CheckInvariants(); err != nil {
		t.Fatalf("CheckInvariants: %v", err)
	}
	leaves, err := fresh.Leaves()
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[float64]int)
	for _, b := range leaves {
		for _, r := range b.Records {
			seen[r.Key]++
		}
	}
	for _, k := range keys {
		if seen[k] != 1 {
			t.Errorf("key %g stored %d times, want exactly once", k, seen[k])
		}
	}
	if len(seen) != nKeys {
		t.Errorf("tree holds %d keys, want %d", len(seen), nKeys)
	}

	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before+2 {
		t.Errorf("goroutines: %d before, %d after; leak suspected", before, g)
	}
}
