package bench

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"lht/internal/dht"
	"lht/internal/lht"
	"lht/internal/netchaos"
	"lht/internal/tcpnet"
	"lht/internal/workload"
)

// Ablation A11: the degradation plane (per-node circuit breakers, hedged
// reads, failover deadline budgets) under scripted network chaos, end to
// end over real sockets. Each cell boots a fresh 4-node cluster, loads
// the tree, then injects one fault scenario through the netchaos dialer
// while concurrent clients run the identical query schedule:
//
//   - partition: the return path from one storage node is black-holed
//     (requests arrive, responses vanish) — an asymmetric partition of
//     the primary for ~1/4 of the keys and a rotated read target for
//     ~1/3 of them;
//   - slow: one node answers at 10x the scenario latency quantum — alive
//     and correct, just late, the failure mode breakers alone cannot see;
//   - flap: one peer refuses dials and severs connections on a 50% duty
//     cycle — up, gone, up again, on a deterministic clock.
//
// The plane-on arm runs breakers + hedged reads over 3 replicas; the
// plane-off arm the identical cluster, replication, and schedule with
// the degradation plane disabled. Queries carry a fixed per-op deadline,
// so a black-holed holder costs the off arm its failover budget, never
// the whole run.
//
// Two results: A11, the measured success rate and latency tail per
// scenario (machine-speed dependent, not gated), and A11b, the plane-off
// workload replayed serially over the instrumented local substrate —
// deterministic round trips the CI perf gate diffs, pinning that neither
// the chaos plane nor the degradation machinery leaks into the logical
// cost model when switched off.
const (
	// chaosWorkers concurrent clients share the index handle, so a
	// stalled link stalls some queries while others proceed — the
	// degradation plane's job is to keep the stall from defining p99.
	chaosWorkers = 8
	// chaosOpDeadline is every query's end-to-end budget, both arms. It
	// is generous on purpose: the off arm's tail is the per-holder
	// failover share of it (deadline/3), so a bigger budget makes the
	// off arm *slower*, not better, while giving the on arm's ~6ms
	// hedged queries headroom against scheduler noise on a loaded
	// machine — success rates must measure the network, not the CPU.
	chaosOpDeadline = 2 * time.Second
	// chaosSlowLatency is the slow scenario's per-write delay: 10x a
	// 4ms latency quantum, far above any healthy loopback round trip.
	chaosSlowLatency = 40 * time.Millisecond
	// chaosHedgeAfter is the plane-on arm's hedge floor: well above a
	// healthy read, well below every injected fault.
	chaosHedgeAfter = 5 * time.Millisecond
	// chaosFlapPeriod/chaosFlapDuty flap the peer: 80ms up, 80ms down.
	chaosFlapPeriod = 160 * time.Millisecond
	chaosFlapDuty   = 0.5
)

// chaosScenarios are the scripted fault schedules, applied to one target
// node; the rules are pure data, so the same seed replays the same run.
var chaosScenarios = []struct {
	name string
	rule func(target string) netchaos.Rule
}{
	{"partition", func(target string) netchaos.Rule {
		return netchaos.Rule{Addr: target, Effect: netchaos.Effect{DropReads: true}}
	}},
	{"slow", func(target string) netchaos.Rule {
		return netchaos.Rule{Addr: target, Effect: netchaos.Effect{Latency: chaosSlowLatency}}
	}},
	{"flap", func(target string) netchaos.Rule {
		return netchaos.Rule{Addr: target, Period: chaosFlapPeriod, Duty: chaosFlapDuty,
			Effect: netchaos.Effect{RefuseDial: true, DropConns: true}}
	}},
}

// RunChaosAblation is ablation A11; see the package comment above.
func RunChaosAblation(o Options, size int) (Result, Result, error) {
	o = o.WithDefaults()
	lat := Result{
		Name: "A11",
		Title: fmt.Sprintf("Degradation plane under network chaos (%d records, %d clients, %v deadline)",
			size, chaosWorkers, chaosOpDeadline),
		XLabel: "scenario (0=partition, 1=slow, 2=flap)",
		YLabel: "success % / latency microseconds (p50/p99)",
	}
	rt := Result{
		Name:   "A11b",
		Title:  fmt.Sprintf("Chaos query cost, plane off (%d records + %d queries, serialized)", size, o.Queries),
		XLabel: "scenario (0=partition, 1=slow, 2=flap)",
		YLabel: "round trips",
	}
	xs := make([]float64, len(chaosScenarios))
	for i := range xs {
		xs[i] = float64(i)
	}

	for _, arm := range []struct {
		name  string
		plane bool
	}{{"plane off", false}, {"plane on", true}} {
		var succ, p50s, p99s []float64
		for sc := range chaosScenarios {
			cell, err := measureChaosCell(o, size, sc, arm.plane)
			if err != nil {
				return lat, rt, fmt.Errorf("bench: chaos ablation %s %s: %w", arm.name, chaosScenarios[sc].name, err)
			}
			succ = append(succ, cell.success)
			p50s = append(p50s, cell.p50)
			p99s = append(p99s, cell.p99)
		}
		lat.Series = append(lat.Series,
			meanSeries(arm.name+" success %", xs, [][]float64{succ}),
			meanSeries(arm.name+" query p50", xs, [][]float64{p50s}),
			meanSeries(arm.name+" query p99", xs, [][]float64{p99s}))
	}

	// The gated rows: each scenario's schedule replayed serially over the
	// instrumented local map with the plane off, cache off and on. Round
	// trips are a pure function of (seed, theta, depth, size, queries) —
	// drift means the chaos or degradation plane leaked into the default
	// lookup path.
	for _, cache := range []bool{false, true} {
		var rts []float64
		for sc := range chaosScenarios {
			n, err := chaosCostCell(o, size, sc, cache)
			if err != nil {
				return lat, rt, fmt.Errorf("bench: chaos cost cell %s cache=%t: %w", chaosScenarios[sc].name, cache, err)
			}
			rts = append(rts, n)
		}
		name := "cache off"
		if cache {
			name = "cache on"
		}
		rt.Series = append(rt.Series, meanSeries(name, xs, [][]float64{rts}))
	}
	return lat, rt, nil
}

// chaosCell is one (scenario, arm) combination's measured outcome.
type chaosCell struct {
	success  float64 // fraction of queries that answered in deadline, percent
	p50, p99 float64 // query latency percentiles, microseconds (all queries)
}

// chaosSchedule draws one rep's query keys: identical for both arms.
func chaosSchedule(o Options, keys []float64, scenario, rep int) []float64 {
	rng := rand.New(rand.NewSource(o.Seed + 17 + int64(scenario)*101 + int64(rep)))
	qs := make([]float64, 4*o.Queries)
	for i := range qs {
		qs[i] = keys[rng.Intn(len(keys))]
	}
	return qs
}

// measureChaosCell boots a 4-node cluster, loads the tree through the
// chaos dialer (healthy until Start), then injects the scenario and
// times the concurrent query phase.
func measureChaosCell(o Options, size, scenario int, plane bool) (chaosCell, error) {
	var cell chaosCell
	cl, err := startWireCluster(4, nil)
	if err != nil {
		return cell, err
	}
	defer cl.close()

	chaos := netchaos.New(o.Seed + int64(scenario))
	copts := []tcpnet.Option{
		tcpnet.WithDialer(chaos),
		tcpnet.WithReplicas(3),
		tcpnet.WithCounters(o.Agg),
	}
	if plane {
		copts = append(copts, tcpnet.WithHealth(dht.BreakerConfig{
			Threshold:   3,
			Cooldown:    50 * time.Millisecond,
			MaxCooldown: 250 * time.Millisecond,
			Seed:        o.Seed,
		}))
	}
	c, err := tcpnet.DialContext(context.Background(), cl.addrs, copts...)
	if err != nil {
		return cell, err
	}
	defer func() { _ = c.Close() }()

	cfg := lht.Config{
		SplitThreshold: o.Theta,
		Depth:          o.Depth,
		LeafCache:      true,
		Aggregate:      o.Agg,
	}
	if plane {
		cfg.HedgeAfter = chaosHedgeAfter
	}
	ix, err := lht.New(c, cfg)
	if err != nil {
		return cell, err
	}

	recs := workload.NewGenerator(workload.Uniform, o.Seed).Records(size)
	keys := make([]float64, len(recs))
	for i, r := range recs {
		keys[i] = r.Key
	}
	if _, err := ix.BulkLoad(recs); err != nil {
		return cell, fmt.Errorf("build: %w", err)
	}
	// Warm the leaf cache over every key (so no measured query pays a
	// multi-probe binary search whose probes could each draw the faulty
	// holder) and fill the hedger's latency window with healthy samples
	// before any fault exists.
	for _, k := range keys {
		if _, _, err := ix.Search(k); err != nil {
			return cell, fmt.Errorf("warmup search: %w", err)
		}
	}

	// The scenario targets one fixed storage node: primary for ~1/4 of
	// the keys, in the 3-holder replica set of 3/4 of them.
	chaos.Add(chaosScenarios[scenario].rule(cl.addrs[0]))
	chaos.Start()

	var ok, total atomic.Int64
	var lats []time.Duration
	for rep := 0; rep < o.Trials; rep++ {
		qs := chaosSchedule(o, keys, scenario, rep)
		lats = append(lats, runChaosPhase(ix, qs, &ok, &total)...)
	}
	cell.success = 100 * float64(ok.Load()) / float64(total.Load())
	cell.p50, cell.p99 = pctileUS(lats, 0.50), pctileUS(lats, 0.99)
	return cell, nil
}

// runChaosPhase strip-mines the schedule across chaosWorkers goroutines.
// A query that errors (deadline spent, every holder down) counts against
// the success rate with its full elapsed time in the latency pool.
func runChaosPhase(ix *lht.Index, qs []float64, ok, total *atomic.Int64) []time.Duration {
	var next atomic.Int64
	wLats := make([][]time.Duration, chaosWorkers)
	var wg sync.WaitGroup
	for w := 0; w < chaosWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(qs) {
					return
				}
				ctx, cancel := context.WithTimeout(context.Background(), chaosOpDeadline)
				t0 := time.Now()
				_, _, err := ix.SearchContext(ctx, qs[i])
				d := time.Since(t0)
				cancel()
				total.Add(1)
				if err == nil {
					ok.Add(1)
				}
				wLats[w] = append(wLats[w], d)
			}
		}(w)
	}
	wg.Wait()
	var lats []time.Duration
	for w := 0; w < chaosWorkers; w++ {
		lats = append(lats, wLats[w]...)
	}
	return lats
}

// chaosCostCell replays one scenario's schedule (build + queries,
// sequential, no chaos — the logical workload is identical with or
// without the physical planes) over the instrumented local substrate and
// returns the client-charged round trips.
func chaosCostCell(o Options, size, scenario int, cache bool) (float64, error) {
	ix, err := lht.New(dht.NewLocal(), lht.Config{
		SplitThreshold: o.Theta,
		Depth:          o.Depth,
		LeafCache:      cache,
		Aggregate:      o.Agg,
	})
	if err != nil {
		return 0, err
	}
	recs := workload.NewGenerator(workload.Uniform, o.Seed).Records(size)
	keys := make([]float64, len(recs))
	for i, r := range recs {
		keys[i] = r.Key
		if _, err := ix.Insert(r); err != nil {
			return 0, err
		}
	}
	for _, k := range chaosSchedule(o, keys, scenario, 0)[:o.Queries] {
		if _, _, err := ix.Search(k); err != nil {
			return 0, err
		}
	}
	return float64(ix.Metrics().Flat().RoundTrips()), nil
}
