module lht

go 1.22
