package tcpnet

import (
	"context"
	"net"
	"testing"
	"time"

	"lht/internal/dht"
)

// startMember boots one server with membership enabled and returns it
// with its address. The caller owns Close.
func startMember(t *testing.T, seeds []string, seed int64) (*Server, *Membership, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer()
	addr := ln.Addr().String()
	mem := srv.EnableMembership(MembershipConfig{Self: addr, Seeds: seeds, Seed: seed})
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() { _ = srv.Close() })
	return srv, mem, addr
}

// tickAll drives every membership one round.
func tickAll(ctx context.Context, mems []*Membership) {
	for _, m := range mems {
		_ = m.Tick(ctx)
	}
}

func TestMembershipConvergence(t *testing.T) {
	ctx := context.Background()
	_, m1, a1 := startMember(t, nil, 1)
	_, m2, _ := startMember(t, []string{a1}, 2)
	_, m3, _ := startMember(t, []string{a1}, 3)
	mems := []*Membership{m1, m2, m3}

	// A handful of rounds must spread all three addresses everywhere.
	for i := 0; i < 6; i++ {
		tickAll(ctx, mems)
	}
	for i, m := range mems {
		v := m.View()
		if len(v.Members) != 3 {
			t.Fatalf("member %d view has %d members, want 3: %+v", i+1, len(v.Members), v.Members)
		}
		for _, mem := range v.Members {
			if mem.State != dht.MemberAlive {
				t.Fatalf("member %d sees %s as %s, want alive", i+1, mem.Addr, mem.State)
			}
		}
	}
}

func TestMembershipDeathAndRefutation(t *testing.T) {
	ctx := context.Background()
	s1, m1, a1 := startMember(t, nil, 1)
	_, m2, a2 := startMember(t, []string{a1}, 2)
	_, m3, _ := startMember(t, []string{a1, a2}, 3)
	mems := []*Membership{m1, m2, m3}
	for i := 0; i < 6; i++ {
		tickAll(ctx, mems)
	}

	// Kill node 1 for good. Keep ticking the survivors: their exchanges
	// with it fail, suspicion accrues, and the view converges on dead.
	_ = s1.Close()
	alive := []*Membership{m2, m3}
	deadline := time.Now().Add(10 * time.Second)
	for {
		tickAll(ctx, alive)
		st2, _ := m2.View().Find(a1)
		st3, _ := m3.View().Find(a1)
		if st2.State == dht.MemberDead && st3.State == dht.MemberDead {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("node never declared dead: m2=%s m3=%s", st2.State, st3.State)
		}
	}

	// Resurrect it on the same address with a fresh (zero) incarnation.
	ln, err := net.Listen("tcp", a1)
	if err != nil {
		t.Skipf("cannot rebind %s: %v", a1, err)
	}
	srv := NewServer()
	m1b := srv.EnableMembership(MembershipConfig{Self: a1, Seeds: []string{a2}, Seed: 9})
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() { _ = srv.Close() })

	// The returned node gossips out, learns it is slandered as dead, and
	// refutes at a higher incarnation; the survivors converge back to
	// alive.
	deadline = time.Now().Add(10 * time.Second)
	for {
		_ = m1b.Tick(ctx)
		tickAll(ctx, alive)
		st2, _ := m2.View().Find(a1)
		st3, _ := m3.View().Find(a1)
		if st2.State == dht.MemberAlive && st3.State == dht.MemberAlive {
			if st2.Incarnation == 0 {
				t.Fatal("resurrection must ride a bumped incarnation")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("refutation never converged: m2=%s m3=%s", st2.State, st3.State)
		}
	}
}

func TestHintParkAndReplay(t *testing.T) {
	ctx := context.Background()
	sub, msub, asub := startMember(t, nil, 1)
	holder, mholder, aholder := startMember(t, []string{asub}, 2)
	// One exchange initiated by the holder teaches the substitute's view
	// that the holder exists and is alive.
	if err := mholder.Tick(ctx); err != nil {
		t.Fatal(err)
	}

	// Park two hints on the substitute for the holder: an epoch-tagged
	// value and a raw one, exactly as a failed fan-out would.
	tagged := append([]byte{tagEpoch}, appendUv(nil, 7)...)
	tagged = append(tagged, tagRaw)
	tagged = append(tagged, []byte("v7")...)
	raw := append([]byte{tagRaw}, []byte("vr")...)
	sub.mu.Lock()
	sub.parkHintLocked(aholder, "k1", tagged)
	sub.parkHintLocked(aholder, "k2", raw)
	// An older-epoch late arrival must not displace the parked newer hint.
	older := append([]byte{tagEpoch}, appendUv(nil, 3)...)
	older = append(older, tagRaw)
	older = append(older, []byte("v3")...)
	sub.parkHintLocked(aholder, "k1", older)
	sub.mu.Unlock()

	if got := sub.HintBacklog()[aholder]; got != 2 {
		t.Fatalf("backlog = %d, want 2", got)
	}

	// The holder is routable in the substitute's view, so one tick drains
	// the park.
	deadline := time.Now().Add(5 * time.Second)
	for len(sub.HintBacklog()) != 0 {
		_ = msub.Tick(ctx)
		if time.Now().After(deadline) {
			t.Fatalf("hints never replayed: backlog %v", sub.HintBacklog())
		}
	}
	if !holder.Has("k1") || !holder.Has("k2") {
		t.Fatal("replayed hints must land on the holder")
	}
	// The newer-epoch hint must have won the park slot.
	holder.mu.Lock()
	e := storedEpoch(holder.store["k1"])
	holder.mu.Unlock()
	if e != 7 {
		t.Fatalf("holder k1 epoch = %d, want 7", e)
	}
}

func TestHintReplayLosesToNewerEpoch(t *testing.T) {
	ctx := context.Background()
	sub, msub, asub := startMember(t, nil, 1)
	holder, mholder, aholder := startMember(t, []string{asub}, 2)
	if err := mholder.Tick(ctx); err != nil {
		t.Fatal(err)
	}

	// The holder already accepted epoch 9 for the key (a fresher write
	// landed after it returned); a parked epoch-7 hint must lose.
	newer := append([]byte{tagEpoch}, appendUv(nil, 9)...)
	newer = append(newer, tagRaw)
	newer = append(newer, []byte("v9")...)
	holder.mu.Lock()
	holder.store["k"] = newer
	holder.mu.Unlock()

	stale := append([]byte{tagEpoch}, appendUv(nil, 7)...)
	stale = append(stale, tagRaw)
	stale = append(stale, []byte("v7")...)
	sub.mu.Lock()
	sub.parkHintLocked(aholder, "k", stale)
	sub.mu.Unlock()

	deadline := time.Now().Add(5 * time.Second)
	for len(sub.HintBacklog()) != 0 {
		_ = msub.Tick(ctx)
		if time.Now().After(deadline) {
			t.Fatal("stale hint never drained")
		}
	}
	holder.mu.Lock()
	e := storedEpoch(holder.store["k"])
	holder.mu.Unlock()
	if e != 9 {
		t.Fatalf("holder epoch = %d after stale replay, want 9 (putnewer must keep the newer value)", e)
	}
}

// TestGossipDeterministicPeerSelection pins the seeded peer-selection
// schedule: the same seed over the same view must pick the same
// sequence. CI's gossip-determinism job leans on this.
func TestGossipDeterministicPeerSelection(t *testing.T) {
	pick := func(seed int64) []string {
		srv := NewServer()
		m := srv.EnableMembership(MembershipConfig{
			Self:  "self:1",
			Seeds: []string{"p1:1", "p2:1", "p3:1"},
			Seed:  seed,
		})
		var out []string
		for i := 0; i < 12; i++ {
			p, ok := m.pickPeer()
			if !ok {
				t.Fatal("no peer")
			}
			out = append(out, p)
		}
		return out
	}
	a, b := pick(42), pick(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule diverged at %d: %s vs %s", i, a[i], b[i])
		}
	}
	c := pick(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}
