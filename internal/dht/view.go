package dht

// The cluster-membership view: a versioned member list every node (and
// every client) can hold, merge, and gossip. The view is substrate-
// agnostic — internal/tcpnet maintains one by anti-entropy gossip between
// servers, but the types live here so chord/kademlia substrates and the
// index facade can speak membership without importing a transport.
//
// The state machine per member is SWIM-flavored:
//
//	alive -> suspect -> dead -> left
//	  ^________|__________|
//	     (refutation: the member reasserts itself at a higher incarnation)
//
// Two views merge member-wise with a deterministic total order: the
// higher incarnation always wins (a member that came back bumped its
// incarnation, overriding any stale suspicion), and within one
// incarnation the *worse* state wins (Alive < Suspect < Dead < Left), so
// a rumor of death cannot be shouted down by an equally old claim of
// health — only a fresher incarnation refutes it.

import (
	"context"
	"fmt"
	"sort"
)

// MemberState is one member's position in the failure-detection state
// machine. The numeric order IS the merge order: within one incarnation
// the larger (worse) state wins.
type MemberState uint8

const (
	// MemberAlive: the member answers probes / gossip.
	MemberAlive MemberState = iota
	// MemberSuspect: consecutive probe failures (or an opened circuit
	// breaker) cast doubt; routing still includes the member, but its
	// failure is being timed.
	MemberSuspect
	// MemberDead: the suspicion timer expired without a refutation. The
	// member leaves the routing ring; re-replication may begin restoring
	// its keys elsewhere. A dead member that returns refutes at a higher
	// incarnation and rejoins as alive.
	MemberDead
	// MemberLeft: the member announced a graceful permanent departure; it
	// never rejoins under this incarnation.
	MemberLeft
)

// String names the state for logs and status output.
func (s MemberState) String() string {
	switch s {
	case MemberAlive:
		return "alive"
	case MemberSuspect:
		return "suspect"
	case MemberDead:
		return "dead"
	case MemberLeft:
		return "left"
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// Routable reports whether the member should be part of the client's
// routing ring: alive and suspect members still hold their arcs (suspicion
// is doubt, not a verdict), dead and left members do not.
func (s MemberState) Routable() bool { return s == MemberAlive || s == MemberSuspect }

// Member is one node's entry in a ClusterView.
type Member struct {
	// Addr is the node's listen address, the same string clients dial; it
	// identifies the member (and hashes to its ring position).
	Addr string
	// State is the member's current failure-detection state.
	State MemberState
	// Incarnation is the member's self-asserted generation number. Only
	// the member itself increments it (when refuting suspicion or
	// rejoining after death), which is what makes the merge rule safe:
	// third parties can worsen a state within an incarnation, never
	// resurrect one.
	Incarnation uint64
}

// supersedes reports whether m's claim about a member wins over o's under
// the merge order: higher incarnation first, worse state within one.
func (m Member) supersedes(o Member) bool {
	if m.Incarnation != o.Incarnation {
		return m.Incarnation > o.Incarnation
	}
	return m.State > o.State
}

// ClusterView is a versioned membership list. Members are kept sorted by
// Addr so equal views are structurally equal and encodings are canonical.
// The Epoch is a monotonic version: it advances whenever a merge or a
// local transition changes any member entry, so "has anything changed"
// is one integer compare for pollers.
type ClusterView struct {
	Epoch   uint64
	Members []Member
}

// Clone returns a deep copy (the Members slice is fresh).
func (v ClusterView) Clone() ClusterView {
	out := ClusterView{Epoch: v.Epoch}
	out.Members = append([]Member(nil), v.Members...)
	return out
}

// Find returns the member entry for addr, if present.
func (v ClusterView) Find(addr string) (Member, bool) {
	i := sort.Search(len(v.Members), func(i int) bool { return v.Members[i].Addr >= addr })
	if i < len(v.Members) && v.Members[i].Addr == addr {
		return v.Members[i], true
	}
	return Member{}, false
}

// Upsert applies one member claim to the view under the merge order and
// reports whether the view changed. New addresses are inserted; known
// ones are replaced only when the claim supersedes the held entry.
func (v *ClusterView) Upsert(m Member) bool {
	i := sort.Search(len(v.Members), func(i int) bool { return v.Members[i].Addr >= m.Addr })
	if i < len(v.Members) && v.Members[i].Addr == m.Addr {
		if !m.supersedes(v.Members[i]) {
			return false
		}
		v.Members[i] = m
		return true
	}
	v.Members = append(v.Members, Member{})
	copy(v.Members[i+1:], v.Members[i:])
	v.Members[i] = m
	return true
}

// Merge folds the remote view into v member-wise under the merge order.
// The merged epoch is the max of both inputs, advanced by one more when
// the fold changed any entry — so both sides of an exchange converge on
// the same epoch for the same member list, and every real change is
// visible as an epoch step. Returns whether v changed.
func (v *ClusterView) Merge(remote ClusterView) bool {
	changed := false
	for _, m := range remote.Members {
		if v.Upsert(m) {
			changed = true
		}
	}
	if remote.Epoch > v.Epoch {
		v.Epoch = remote.Epoch
	}
	if changed {
		v.Epoch++
	}
	return changed
}

// Alive returns the addresses of routable members (alive or suspect), in
// canonical order.
func (v ClusterView) Alive() []string {
	var out []string
	for _, m := range v.Members {
		if m.State.Routable() {
			out = append(out, m.Addr)
		}
	}
	return out
}

// ClusterStatus is the operator-facing introspection snapshot a
// membership-aware substrate reports: the view version plus one row per
// member combining the gossip state with this client's local health
// plane (breaker state, parked hints, replica debt).
type ClusterStatus struct {
	// ViewEpoch is the membership view version the reporter holds.
	ViewEpoch uint64
	// Members has one row per known member, sorted by Addr.
	Members []MemberStatus
}

// MemberStatus is one member's row in a ClusterStatus.
type MemberStatus struct {
	// Addr is the member's listen address.
	Addr string
	// State is the member's membership state in the reporter's view.
	State MemberState
	// Incarnation is the member's incarnation in the reporter's view.
	Incarnation uint64
	// Breaker is this client's circuit-breaker state for the member
	// (BreakerClosed when the health plane is off).
	Breaker BreakerState
	// Hints is the number of keys parked cluster-wide as hinted handoffs
	// awaiting this member's return (-1 when unknown).
	Hints int
	// ReplicaDebt is the number of missing replica copies this client has
	// observed on the member and not yet seen restored (via
	// EnsureReplicated probes); 0 when none or never probed.
	ReplicaDebt int
}

// ClusterReporter is the optional introspection capability of a
// membership-aware substrate. The root facade's ClusterStatus method and
// lht-cli's -status command discover it by type assertion.
type ClusterReporter interface {
	ClusterStatus(ctx context.Context) (ClusterStatus, error)
}

// ReplicaRepair is the outcome of one EnsureReplicated call: how many
// holder probes it issued, how many copies it found missing, and how many
// it restored.
type ReplicaRepair struct {
	Probes   int // per-holder existence probes issued (each a DHT round trip)
	Missing  int // holder slots found without a copy
	Restored int // copies re-stored on their owners
}

// Add accumulates another repair's counts.
func (r *ReplicaRepair) Add(o ReplicaRepair) {
	r.Probes += o.Probes
	r.Missing += o.Missing
	r.Restored += o.Restored
}

// Rereplicator is the optional re-replication capability of a replicated
// substrate: EnsureReplicated(key) probes every current ring owner of the
// key and restores missing copies from the freshest surviving one (via
// the substrate's epoch-ordered store, so a restore can never roll a
// holder back). Index.Scrub drives it over every bucket key when
// re-replication is enabled, which is how a permanently dead node's keys
// regain full replica count on the new ring owners.
type Rereplicator interface {
	EnsureReplicated(ctx context.Context, key string) (ReplicaRepair, error)
}
