package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(-time.Second)
	h.Observe(1)         // bucket 1: [1, 2) ns
	h.Observe(1500)      // bucket 11: [1024, 2048) ns
	h.Observe(time.Hour) // clamps to the last bucket
	s := h.Snapshot()
	if s.Counts[0] != 2 || s.Counts[1] != 1 || s.Counts[11] != 1 || s.Counts[NumLatencyBuckets-1] != 1 {
		t.Fatalf("bucket counts = %v", s.Counts)
	}
	if s.Count() != 5 {
		t.Fatalf("Count = %d", s.Count())
	}
	if s.Sum != 1+1500+time.Hour.Nanoseconds() {
		t.Fatalf("Sum = %d", s.Sum)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Observe(time.Microsecond) // bucket 10, upper bound 1024ns
	}
	for i := 0; i < 10; i++ {
		h.Observe(time.Millisecond) // bucket 20, upper bound ~1.05ms
	}
	s := h.Snapshot()
	if q := s.Quantile(50); q != BucketUpper(10) {
		t.Fatalf("p50 = %v, want %v", q, BucketUpper(10))
	}
	if q := s.Quantile(99); q != BucketUpper(20) {
		t.Fatalf("p99 = %v, want %v", q, BucketUpper(20))
	}
	if q := (HistogramSnapshot{}).Quantile(50); q != 0 {
		t.Fatalf("empty p50 = %v", q)
	}
}

func TestHistogramMergeSub(t *testing.T) {
	var a, b Histogram
	a.Observe(time.Microsecond)
	a.Observe(time.Millisecond)
	b.Observe(time.Microsecond)
	sum := a.Snapshot().Merge(b.Snapshot())
	if sum.Count() != 3 {
		t.Fatalf("merged count = %d", sum.Count())
	}
	diff := sum.Sub(b.Snapshot())
	if diff != a.Snapshot() {
		t.Fatalf("Sub: got %+v, want %+v", diff, a.Snapshot())
	}
}

// TestHistogramConcurrent exercises record and merge racing against
// snapshot reads; run under -race (CI does) to verify lock-freedom is
// actually sound.
func TestHistogramConcurrent(t *testing.T) {
	var shared Histogram
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var local Histogram
			for i := 0; i < perWorker; i++ {
				d := time.Duration(i%1000+1) * time.Microsecond
				if w%2 == 0 {
					shared.Observe(d) // direct recording
				} else {
					local.Observe(d) // batched merge path
				}
				if i%500 == 499 && w%2 == 1 {
					shared.Merge(local.Snapshot())
					local.reset()
				}
			}
			if w%2 == 1 {
				shared.Merge(local.Snapshot())
			}
		}(w)
	}
	// Concurrent readers while writers run.
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				_ = shared.Snapshot().Count()
			}
		}
	}()
	wg.Wait()
	close(done)
	if got := shared.Snapshot().Count(); got != workers*perWorker {
		t.Fatalf("total observations = %d, want %d", got, workers*perWorker)
	}
}
