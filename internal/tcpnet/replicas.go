package tcpnet

// Client-driven replication (Option WithReplicas): each key is stored on
// its owner plus the next replicas-1 distinct ring members, the same
// successor-set scheme the Chord substrate uses. The servers stay plain
// byte stores — fan-out, fallback and read spreading all live here:
//
//   - put-like ops store on every holder, concurrently, before returning;
//   - conditional ops resolve their compare-and-swap on the primary (the
//     one serializer per key) and propagate the outcome to the other
//     holders only after the primary accepted it — via OpPutNewer, the
//     epoch-ordered store: a holder rejects a propagated value whose
//     epoch tag is older than what it already stores;
//   - Get and Take rotate their starting holder per request across the
//     secondary holders — keeping a hot key's read queue off its CAS
//     serializer — and fall back through the remaining holders (the
//     primary included) so a lagging replica costs an extra round trip,
//     never a wrong answer.
//
// A key is therefore never *stale* on a reachable holder (every accepted
// write reaches all of them synchronously), at most *absent* where a
// fan-out has not landed yet, and absence falls back. Concurrent writers
// to one key are serialized by the primary's CAS, but their fan-outs may
// interleave on the network; the epoch-ordered propagation makes that
// harmless — if commit N's fan-out overtakes commit N-1's, the straggler
// is rejected on arrival instead of durably rolling a holder back. The
// one remaining divergence window is a removal racing an earlier
// commit's fan-out (a late store can transiently resurrect a copy on a
// secondary after RemoveIf's propagation deleted it); that copy carries
// an older epoch, which the index's scrub orders and repairs. Batched
// stores replicate in per-rank waves (see PutBatch); batched reads group
// by primary, which holds every accepted write by construction.

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"

	"lht/internal/dht"
	"lht/internal/hashring"
)

// owners returns the replica set for key: the owning node plus the next
// replicas-1 distinct members clockwise, primary first.
func (c *Client) owners(key string) []*clientNode {
	nodes := c.ringNodes()
	h := hashring.HashKey(key)
	i := 0
	for ; i < len(nodes); i++ {
		if nodes[i].id >= h {
			break
		}
	}
	n := c.replicas
	if n > len(nodes) {
		n = len(nodes)
	}
	out := make([]*clientNode, 0, n)
	for k := 0; k < n; k++ {
		out = append(out, nodes[(i+k)%len(nodes)])
	}
	return out
}

// rotateStart picks which holder a read of key starts at: the
// key-hash-plus-sequence rotation the Chord and Kademlia substrates use,
// but over the *secondary* holders only. The primary is every key's CAS
// serializer — it already queues the conditional writes and their
// fan-outs — so reads start away from it and touch it only as the
// fallback, keeping a hot key's read queue and its write queue on
// different nodes. With more than two replicas the rotation still
// spreads reads across the whole secondary set.
func (c *Client) rotateStart(key string, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	start := 1 + int((uint64(h.Sum32())+c.readSeq.Add(1)-1)%uint64(n-1))
	c.spreadReads.Add(1)
	c.counters.AddSpreadReads(1)
	return start
}

// SpreadReads reports how many reads started at a non-primary holder.
func (c *Client) SpreadReads() int64 { return c.spreadReads.Load() }

// getFrom fetches key from one specific node on the binary wire.
func (c *Client) getFrom(ctx context.Context, n *clientNode, key string) (dht.Value, error) {
	tv, frame, err := n.simpleCall(ctx, dht.OpGet, func(b []byte) ([]byte, error) {
		return appendLenString(b, key), nil
	})
	if err != nil {
		return nil, err
	}
	v, err := decodeTaggedValue(tv)
	putBuf(frame)
	return v, err
}

// replicatedGet reads from the rotated holder, falling back through the
// rest: a holder that is missing the key (a fan-out it has not seen) or
// unreachable costs one extra round trip, and only a miss on every
// holder is a real miss.
//
// Degradation contract (WithHealth): a holder whose breaker is open
// fails in microseconds, so the read moves straight to the next holder —
// an open primary never costs a timeout. Each failover attempt runs
// under an even share of the caller's remaining deadline (stepCtx), so a
// black-holed holder burns its share of the budget, never all of it; the
// loop stops early only when the caller's own deadline is spent.
//
// A hedged duplicate (dht.MarkHedgeAttempt) starts at the primary
// instead: first reads never do, so the duplicate is guaranteed a
// different first holder than the straggler it is racing, whatever the
// rotation sequence did in between.
func (c *Client) replicatedGet(ctx context.Context, key string) (dht.Value, error) {
	owners := c.owners(key)
	start := 0
	if !dht.IsHedgeAttempt(ctx) {
		start = c.rotateStart(key, len(owners))
	}
	var firstErr error
	for i := range owners {
		n := owners[(start+i)%len(owners)]
		actx, cancel := stepCtx(ctx, len(owners)-i)
		v, err := c.getFrom(actx, n, key)
		cancel()
		if err == nil {
			return v, nil
		}
		if errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil {
			// The step budget expired, not the caller's deadline: to the
			// caller this is an ordinary transient holder fault (the
			// breaker already recorded the timeout against the node), so
			// it must stay retryable — context.DeadlineExceeded would
			// wrongly read as the caller's own deadline and stop a
			// policy-layer retry loop cold.
			err = dht.MarkTransient(fmt.Errorf(
				"tcpnet: holder %q timed out inside its failover budget", n.addr))
		}
		if !errors.Is(err, dht.ErrNotFound) {
			if firstErr == nil {
				firstErr = err
			}
			if i < len(owners)-1 {
				c.counters.AddFailovers(1)
			}
		}
		if ctx.Err() != nil {
			break
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return nil, dht.ErrNotFound
}

// eachOwner runs op against every holder of key concurrently and returns
// the first error, with ErrNotFound outranked by any other error (a
// holder that never saw the key is expected mid-fan-out; a transport
// fault is not).
func (c *Client) eachOwner(ctx context.Context, key string, op func(*clientNode) error) error {
	owners := c.owners(key)
	errs := make([]error, len(owners))
	var wg sync.WaitGroup
	for i, n := range owners {
		wg.Add(1)
		go func(i int, n *clientNode) {
			defer wg.Done()
			errs[i] = op(n)
		}(i, n)
	}
	wg.Wait()
	var notFound error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, dht.ErrNotFound) {
			notFound = err
			continue
		}
		return err
	}
	return notFound
}

// replicatedPut stores on every holder; with hinted handoff an
// unreachable holder's copy parks on a substitute instead of failing the
// put.
func (c *Client) replicatedPut(ctx context.Context, key string, v dht.Value) error {
	return c.eachOwner(ctx, key, func(n *clientNode) error {
		return c.putToOrHint(ctx, n, dht.OpPut, key, v)
	})
}

// putTo issues one put-like op (store or in-place write) to one node.
func (c *Client) putTo(ctx context.Context, n *clientNode, op dht.OpKind, key string, v dht.Value) error {
	_, frame, err := n.simpleCall(ctx, op, func(b []byte) ([]byte, error) {
		return appendValue(appendLenString(b, key), v)
	})
	if err != nil {
		return err
	}
	putBuf(frame)
	return nil
}

// replicatedWrite rewrites in place on every holder that has the key; a
// holder missing it is a pending fan-out, not an error, unless they all
// are.
func (c *Client) replicatedWrite(ctx context.Context, key string, v dht.Value) error {
	return c.eachOwner(ctx, key, func(n *clientNode) error {
		return c.putToOrHint(ctx, n, dht.OpWrite, key, v)
	})
}

// replicatedRemove deletes from every holder.
func (c *Client) replicatedRemove(ctx context.Context, key string) error {
	return c.eachOwner(ctx, key, func(n *clientNode) error {
		_, frame, err := n.simpleCall(ctx, dht.OpRemove, func(b []byte) ([]byte, error) {
			return appendLenString(b, key), nil
		})
		if err != nil {
			return err
		}
		putBuf(frame)
		return nil
	})
}

// replicatedTake fetches-and-deletes across the whole replica set: every
// holder gives up its copy, the rotated holder's value (first found from
// the rotated start) is returned.
func (c *Client) replicatedTake(ctx context.Context, key string) (dht.Value, error) {
	owners := c.owners(key)
	start := c.rotateStart(key, len(owners))
	vals := make([]dht.Value, len(owners))
	errs := make([]error, len(owners))
	var wg sync.WaitGroup
	for i := range owners {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			n := owners[(start+i)%len(owners)]
			tv, frame, err := n.simpleCall(ctx, dht.OpTake, func(b []byte) ([]byte, error) {
				return appendLenString(b, key), nil
			})
			if err != nil {
				errs[i] = err
				return
			}
			vals[i], errs[i] = decodeTaggedValue(tv)
			putBuf(frame)
		}(i)
	}
	wg.Wait()
	var firstErr error
	for i := range owners {
		if errs[i] == nil {
			return vals[i], nil
		}
		if !errors.Is(errs[i], dht.ErrNotFound) && firstErr == nil {
			firstErr = errs[i]
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return nil, dht.ErrNotFound
}

// replicatedCond resolves a conditional op on the primary — the one
// serializer for the key — and propagates the accepted outcome to the
// remaining holders: epoch-ordered stores (OpPutNewer) for the put-like
// conditionals, so two commits' concurrently in-flight fan-outs land in
// epoch order regardless of network interleaving, and removal for
// RemoveIf. Propagation failures surface to the caller (the write IS
// committed on the primary; the caller's retry loop re-runs against the
// committed state), they never roll back the primary's decision.
//
// With hinted handoff on, the serializer role itself fails over: an
// unreachable primary is skipped and the conditional resolves on the
// first reachable holder instead — every reachable holder carries the
// key's committed state (fan-outs are synchronous), so the CAS verdict
// is the same, and all writers walk the owner list in the same order, so
// within one view they agree on the acting serializer. The skipped
// holders then receive the outcome through the ordinary propagation
// path, whose hinting parks their copy for replay. Only transport
// faults fail over; a logical verdict (CAS conflict, not-found) from
// any holder settles the op.
func (c *Client) replicatedCond(ctx context.Context, key string, primary func(*clientNode) error, propagate func(*clientNode) error) error {
	owners := c.owners(key)
	acting, err := 0, error(nil)
	for i, n := range owners {
		acting, err = i, primary(n)
		if err == nil || !c.hinted || errors.Is(err, dht.ErrNotFound) || !dht.IsTransient(err) {
			break
		}
	}
	if err != nil {
		return err
	}
	errs := make([]error, 0, len(owners)-1)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i, n := range owners {
		if i == acting {
			continue
		}
		wg.Add(1)
		go func(n *clientNode) {
			defer wg.Done()
			perr := propagate(n)
			mu.Lock()
			errs = append(errs, perr)
			mu.Unlock()
		}(n)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil && !errors.Is(err, dht.ErrNotFound) {
			return err
		}
	}
	return nil
}

// replicatedPutIf is PutIf with propagation of the accepted value.
func (c *Client) replicatedPutIf(ctx context.Context, key string, v dht.Value, ifEpoch uint64) error {
	return c.replicatedCond(ctx, key,
		func(n *clientNode) error {
			return n.condCall(ctx, dht.OpPutIf, key, func(b []byte) ([]byte, error) {
				b = appendLenString(b, key)
				b = appendUv(b, ifEpoch)
				return appendValue(b, v)
			})
		},
		func(n *clientNode) error { return c.putToOrHint(ctx, n, dht.OpPutNewer, key, v) },
	)
}

// replicatedCreateIf is CreateIf with propagation of the created value.
func (c *Client) replicatedCreateIf(ctx context.Context, key string, v dht.Value) error {
	return c.replicatedCond(ctx, key,
		func(n *clientNode) error {
			return n.condCall(ctx, dht.OpCreateIf, key, func(b []byte) ([]byte, error) {
				return appendValue(appendLenString(b, key), v)
			})
		},
		func(n *clientNode) error { return c.putToOrHint(ctx, n, dht.OpPutNewer, key, v) },
	)
}

// replicatedRemoveIf is RemoveIf with propagation of the removal.
// Removals are never hinted: replaying a deletion later could resurrect
// nothing but could race a newer create, so a missed removal is left to
// the scrub plane, whose epoch ordering repairs it safely.
func (c *Client) replicatedRemoveIf(ctx context.Context, key string, ifEpoch uint64) error {
	return c.replicatedCond(ctx, key,
		func(n *clientNode) error {
			return n.condCall(ctx, dht.OpRemoveIf, key, func(b []byte) ([]byte, error) {
				b = appendLenString(b, key)
				return appendUv(b, ifEpoch), nil
			})
		},
		func(n *clientNode) error {
			_, frame, err := n.simpleCall(ctx, dht.OpRemove, func(b []byte) ([]byte, error) {
				return appendLenString(b, key), nil
			})
			if err != nil {
				return err
			}
			putBuf(frame)
			return nil
		},
	)
}

// replicatedWriteIf is WriteIf with propagation of the accepted value.
func (c *Client) replicatedWriteIf(ctx context.Context, key string, v dht.Value, ifEpoch uint64) error {
	return c.replicatedCond(ctx, key,
		func(n *clientNode) error {
			return n.condCall(ctx, dht.OpWriteIf, key, func(b []byte) ([]byte, error) {
				b = appendLenString(b, key)
				b = appendUv(b, ifEpoch)
				return appendValue(b, v)
			})
		},
		func(n *clientNode) error { return c.putToOrHint(ctx, n, dht.OpPutNewer, key, v) },
	)
}
