package lht

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"lht/internal/bitlabel"
	"lht/internal/dht"
	"lht/internal/keyspace"
	"lht/internal/metrics"
	"lht/internal/record"
)

// ErrNotEmpty reports a bulk load into an index that already holds data.
var ErrNotEmpty = errors.New("lht: bulk load requires an empty index")

// ErrPartialLoad reports a bulk load that failed after shipping some of
// its leaves: the tree is partially populated, not absent. Errors of this
// kind are always a *PartialLoadError carrying the ship counts and the
// root cause; errors.Is(err, ErrPartialLoad) detects the condition and
// errors.Is against the cause (e.g. context.Canceled) still matches.
var ErrPartialLoad = errors.New("lht: bulk load partially applied")

// PartialLoadError is the error type behind ErrPartialLoad.
type PartialLoadError struct {
	Shipped int   // leaves stored before the failure
	Total   int   // leaves the load planned to store
	Err     error // the first real failure (cancellations yield to it)
}

func (e *PartialLoadError) Error() string {
	return fmt.Sprintf("lht: bulk load interrupted after %d/%d leaves: %v", e.Shipped, e.Total, e.Err)
}

func (e *PartialLoadError) Unwrap() []error { return []error{ErrPartialLoad, e.Err} }

// bulkLoadWorkers bounds how many leaf batches ship concurrently.
const bulkLoadWorkers = 8

// BulkLoad populates an empty index with a dataset in one pass: the
// client partitions the records into a valid tree locally (every leaf
// under theta_split, splitting at interval medians exactly as incremental
// growth would) and ships each leaf bucket with a single DHT-put. Loading
// n records costs about n/(theta/2) DHT-lookups instead of incremental
// insertion's ~n*log(D/2) - the standard index-construction optimization.
//
// Records with duplicate keys collapse to the last occurrence (matching
// Insert's replace semantics). Bulk loading performs no splits, so split
// statistics (AlphaMean) stay empty; MovedRecords counts every shipped
// slot, as all buckets travel to their responsible peers.
func (ix *Index) BulkLoad(recs []record.Record) (Cost, error) {
	return ix.BulkLoadContext(context.Background(), recs)
}

// BulkLoadContext is BulkLoad with a caller-supplied context. Leaves ship
// in batched parallel put rounds (Config.BatchSize keys per batch, a
// bounded worker pool of batches in flight), one round trip per batch on
// a batch-native substrate. Cancellation or a substrate fault stops the
// load; leaves already shipped stay put, and when any did, the returned
// error is a *PartialLoadError (errors.Is ErrPartialLoad) reporting how
// much of the tree made it out — a subsequent BulkLoad will refuse with
// ErrNotEmpty, exactly because the partial tree is real data.
func (ix *Index) BulkLoadContext(ctx context.Context, recs []record.Record) (cost Cost, err error) {
	ctx, done := ix.beginOp(ctx, metrics.OpBulkLoad)
	defer func() { done(err) }()
	// The index must be in its bootstrap state: the single empty leaf.
	b, err := ix.getBucket(metrics.WithPhase(ctx, metrics.PhaseProbe), bitlabel.Root.Key(), &cost)
	if err != nil {
		return cost, fmt.Errorf("lht: bulk load probe: %w", err)
	}
	if b.Label != bitlabel.TreeRoot || len(b.Records) > 0 {
		return cost, ErrNotEmpty
	}

	// Deduplicate (last wins) and order by key.
	dedup := make(map[float64]record.Record, len(recs))
	for _, r := range recs {
		if err := keyspace.CheckKey(r.Key); err != nil {
			return cost, err
		}
		dedup[r.Key] = r
	}
	sorted := make([]record.Record, 0, len(dedup))
	for _, r := range dedup {
		sorted = append(sorted, r)
	}
	record.SortByKey(sorted)

	// Partition into leaves exactly as median splits would.
	var leaves []*Bucket
	var build func(label bitlabel.Label, part []record.Record)
	build = func(label bitlabel.Label, part []record.Record) {
		if len(part)+1 < ix.cfg.SplitThreshold || label.Len() >= ix.cfg.Depth {
			if label.Len() >= ix.cfg.Depth && len(part)+1 >= ix.cfg.SplitThreshold {
				ix.mu.Lock()
				ix.overflows++
				ix.mu.Unlock()
			}
			leaves = append(leaves, &Bucket{Label: label, Records: part})
			return
		}
		iv := keyspace.IntervalOf(label)
		pivot := iv.Lo + (iv.Hi-iv.Lo)/2
		split := sort.Search(len(part), func(i int) bool { return part[i].Key >= pivot })
		build(label.Left(), part[:split:split])
		build(label.Right(), part[split:])
	}
	build(bitlabel.TreeRoot, sorted)

	// Claim the bootstrap slot first. The leftmost leaf's name is always
	// the bootstrap key "#" (the naming function strips its trailing
	// zero-run), so an epoch-guarded put of that leaf over the probed
	// bootstrap bucket is the load's commit point: losing the claim means
	// another client mutated the index between the probe and now, and
	// since nothing has shipped yet, the load degrades to per-record
	// insertion instead of overwriting live data. The claim replaces one
	// of the batched puts, so the load still costs leaves+1 lookups.
	rootLeaf := leaves[0]
	rootLeaf.Epoch = b.Epoch + 1
	cost.Steps++
	cost.Lookups++
	cerr := dht.DoPutIf(ctx, ix.d, bitlabel.Root.Key(), rootLeaf, b.Epoch)
	if errors.Is(cerr, dht.ErrCASConflict) {
		ix.c.AddWriterRetries(1)
		for _, r := range sorted {
			c, ierr := ix.InsertContext(ctx, r)
			cost.Add(c)
			if ierr != nil {
				return cost, fmt.Errorf("lht: bulk load degraded insert %g: %w", r.Key, ierr)
			}
		}
		return cost, nil
	}
	if cerr != nil {
		return cost, fmt.Errorf("lht: bulk load claim %q: %w", bitlabel.Root.Key(), cerr)
	}
	ix.c.AddMovedRecords(int64(rootLeaf.Weight()))
	leaves = leaves[1:]
	if len(leaves) == 0 {
		return cost, nil
	}

	// Ship every remaining leaf to its name: the puts are independent, so
	// they go out as parallel batches — one conceptual round, hence one
	// step. Every attempted put is a lookup whether it lands or not. The
	// ship is not guarded: the claim made the new root's leftmost leaf
	// durable, so these keys are part of the committed tree and cannot be
	// contested except by writers that already see the load's structure.
	cost.Steps++
	cost.Lookups += len(leaves)
	kvs := make([]dht.KV, len(leaves))
	for i, leaf := range leaves {
		kvs[i] = dht.KV{Key: leaf.Label.Name().Key(), Val: leaf}
	}
	batch := ix.cfg.batchSize()
	var (
		mu       sync.Mutex
		shipped  int
		firstErr error
	)
	sem := make(chan struct{}, bulkLoadWorkers)
	var wg sync.WaitGroup
	for lo := 0; lo < len(kvs); lo += batch {
		hi := min(lo+batch, len(kvs))
		wg.Add(1)
		sem <- struct{}{}
		go func(lo, hi int) {
			defer wg.Done()
			defer func() { <-sem }()
			errs := dht.DoPutBatch(ctx, ix.d, kvs[lo:hi])
			mu.Lock()
			defer mu.Unlock()
			for i, err := range errs {
				if err == nil {
					shipped++
					ix.c.AddMovedRecords(int64(leaves[lo+i].Weight()))
					continue
				}
				err = fmt.Errorf("lht: bulk load put %s: %w", leaves[lo+i].Label, err)
				// Prefer a real root cause over follow-on cancellations.
				if firstErr == nil || (isCancellation(firstErr) && !isCancellation(err)) {
					firstErr = err
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	if firstErr != nil {
		// The claimed bootstrap leaf is always durable by now, so any
		// failure past the claim leaves a partial tree (+1 counts it).
		return cost, &PartialLoadError{Shipped: shipped + 1, Total: len(leaves) + 1, Err: firstErr}
	}
	// The bootstrap bucket was either replaced (single-leaf result) or
	// superseded by the new root's leftmost leaf, which shares key "#".
	return cost, nil
}
