// Sensordb indexes gaussian-distributed sensor readings over a Kademlia
// substrate - the paper's second data distribution on the repository's
// second DHT, demonstrating substrate independence. It answers min/max
// queries (Theorem 3: one DHT-lookup), an out-of-band alert range query,
// and then ages out old readings, exercising deletion and leaf merges.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"lht"
)

// Readings are temperatures in [-20C, +60C], normalized into [0, 1).
const (
	minTemp = -20.0
	maxTemp = 60.0
)

func keyOf(celsius float64) float64 { return (celsius - minTemp) / (maxTemp - minTemp) }
func tempOf(key float64) float64    { return key*(maxTemp-minTemp) + minTemp }

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	nw, err := lht.NewKademliaDHT(24, lht.KademliaConfig{Seed: 11})
	if err != nil {
		return err
	}
	ix, err := lht.New(nw, lht.Config{SplitThreshold: 40, MergeThreshold: 20, Depth: 20})
	if err != nil {
		return err
	}

	// 4000 readings around 22C with sigma ~6C (gaussian data, as in the
	// paper's evaluation).
	rng := rand.New(rand.NewSource(11))
	var keys []float64
	for i := 0; i < 4000; i++ {
		celsius := 22 + rng.NormFloat64()*6
		if celsius < minTemp || celsius >= maxTemp {
			continue
		}
		k := keyOf(celsius)
		keys = append(keys, k)
		rec := lht.Record{Key: k, Value: []byte(fmt.Sprintf("sensor-%02d/reading-%04d", i%32, i))}
		if _, err := ix.Insert(rec); err != nil {
			return err
		}
	}
	n, err := ix.Count()
	if err != nil {
		return err
	}
	fmt.Printf("indexed %d gaussian readings over a 24-node Kademlia network\n\n", n)

	// Coldest and hottest reading: one DHT-lookup each (Theorem 3).
	coldest, cost, err := ix.Min()
	if err != nil {
		return err
	}
	fmt.Printf("coldest: %6.2fC from %-28s %d DHT-lookup\n", tempOf(coldest.Key), coldest.Value, cost.Lookups)
	hottest, cost, err := ix.Max()
	if err != nil {
		return err
	}
	fmt.Printf("hottest: %6.2fC from %-28s %d DHT-lookup\n", tempOf(hottest.Key), hottest.Value, cost.Lookups)

	// Alert query: readings above 35C.
	alerts, cost, err := ix.Range(keyOf(35), 1)
	if err != nil {
		return err
	}
	fmt.Printf("alerts > 35C: %d readings              %d DHT-lookups, %d parallel steps\n",
		len(alerts), cost.Lookups, cost.Steps)

	// Age out 60% of readings; deletions trigger leaf merges, the dual
	// of splits, which LHT also performs with one bucket move.
	rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	expired := keys[:len(keys)*6/10]
	for _, k := range expired {
		if _, err := ix.Delete(k); err != nil {
			return fmt.Errorf("delete %v: %w", k, err)
		}
	}
	s := ix.Metrics().Flat()
	fmt.Printf("\naged out %d readings: %d leaf merges reclaimed buckets (%d splits during load)\n",
		len(expired), s.Merges, s.Splits)
	if err := ix.CheckInvariants(); err != nil {
		return fmt.Errorf("invariants after aging: %w", err)
	}
	remaining, err := ix.Count()
	if err != nil {
		return err
	}
	fmt.Printf("index consistent, %d readings remain\n", remaining)
	return nil
}
