package pht

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"lht/internal/bitlabel"
	"lht/internal/dht"
	"lht/internal/keyspace"
	"lht/internal/metrics"
	"lht/internal/record"
)

var (
	// ErrKeyNotFound reports an exact-match query or deletion for a data
	// key that is not indexed.
	ErrKeyNotFound = errors.New("pht: data key not found")
	// ErrCorrupt reports a trie state the algorithms cannot explain.
	ErrCorrupt = errors.New("pht: corrupt index state")
)

// Cost reports the DHT traffic of one operation; see metrics.Cost.
type Cost = metrics.Cost

// Config tunes a PHT index. It deliberately mirrors lht.Config so the
// benchmark harness can drive both with identical parameters.
type Config struct {
	// SplitThreshold is the leaf capacity in record slots (one occupied
	// by the label), identical in meaning to lht.Config.SplitThreshold.
	SplitThreshold int
	// MergeThreshold merges sibling leaves whose combined merged weight
	// falls below it; 0 disables merging.
	MergeThreshold int
	// Depth is D, the maximum trie depth in bits.
	Depth int
	// Aggregate, when non-nil, receives a copy of every counter update
	// this index makes (see metrics.Counters.Chain); the benchmark
	// harness uses it to roll per-index traffic into a process total.
	Aggregate *metrics.Counters
}

// DefaultConfig matches the paper's experiment defaults.
func DefaultConfig() Config {
	return Config{SplitThreshold: 100, MergeThreshold: 50, Depth: 20}
}

// ErrConfig reports an invalid configuration.
var ErrConfig = errors.New("pht: invalid config")

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.SplitThreshold < 4 {
		return fmt.Errorf("%w: SplitThreshold %d < 4", ErrConfig, c.SplitThreshold)
	}
	if c.MergeThreshold < 0 || c.MergeThreshold > c.SplitThreshold {
		return fmt.Errorf("%w: MergeThreshold %d outside [0, SplitThreshold]", ErrConfig, c.MergeThreshold)
	}
	if c.Depth < 2 || c.Depth > keyspace.MaxDepth {
		return fmt.Errorf("%w: Depth %d outside [2, %d]", ErrConfig, c.Depth, keyspace.MaxDepth)
	}
	return nil
}

// Index is a PHT index over a DHT substrate; create one with New. The
// concurrency contract matches lht.Index: record-level read-modify-writes
// are optimistic (epoch-guarded conditional puts, retried on conflict),
// so any number of concurrent writers may insert and delete safely.
// Structural maintenance (split, merge) is fenced by the same epochs —
// exactly one racing writer wins a split — but unlike LHT it records no
// write-ahead intent, so a writer failing mid-split or mid-merge can
// leave a torn trie; that fragility versus LHT's recoverable maintenance
// is part of what the paper's comparison measures.
type Index struct {
	d   dht.DHT
	cfg Config
	c   *metrics.Counters

	mu        sync.Mutex
	overflows int64
}

// New creates an index client over d, bootstrapping the single-leaf trie
// (leaf "#0" stored under its own label) if the substrate is empty.
func New(d dht.DHT, cfg Config) (*Index, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ctx := context.Background()
	rootKey := bitlabel.TreeRoot.Key()
	if _, err := d.Get(ctx, rootKey); err != nil {
		if !errors.Is(err, dht.ErrNotFound) {
			return nil, fmt.Errorf("pht: probe substrate: %w", err)
		}
		// Create-if-absent: concurrent bootstrappers converge on one trie.
		err := dht.DoCreateIf(ctx, d, rootKey, &Node{Label: bitlabel.TreeRoot, Leaf: true})
		if err != nil && !errors.Is(err, dht.ErrCASConflict) {
			return nil, fmt.Errorf("pht: bootstrap: %w", err)
		}
	}
	c := &metrics.Counters{}
	if cfg.Aggregate != nil {
		c.Chain(cfg.Aggregate)
	}
	return &Index{d: dht.NewInstrumented(d, c), cfg: cfg, c: c}, nil
}

// beginOp opens an operation span: the returned context carries the
// operation class for phase attribution, and the returned func records
// the operation's latency and outcome when called with the final error.
func (ix *Index) beginOp(ctx context.Context, op metrics.Op) (context.Context, func(error)) {
	start := time.Now()
	return metrics.WithOp(ctx, op), func(err error) {
		ix.c.ObserveOp(op, time.Since(start), err != nil)
	}
}

// Config returns the index configuration.
func (ix *Index) Config() Config { return ix.cfg }

// Metrics returns the cumulative cost counters of this index client.
func (ix *Index) Metrics() metrics.Snapshot { return ix.c.Snapshot() }

// Overflows returns the number of insertions into a full leaf at maximum
// depth, where splitting is impossible.
func (ix *Index) Overflows() int64 {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.overflows
}

// getNode fetches and type-asserts a trie node, charging cost.
func (ix *Index) getNode(ctx context.Context, key string, cost *Cost) (*Node, error) {
	cost.Lookups++
	v, err := ix.d.Get(ctx, key)
	return nodeOf(v, err, key)
}

// LookupLeaf is the PHT lookup: a binary search over all prefix lengths of
// mu(delta, D). Each probe gets the trie node stored under the prefix
// itself: a miss means the prefix is below the leaf (search shorter), an
// internal marker means above it (search longer). Expected cost is log D
// probes - the candidate set LHT's naming function halves (section 5,
// complexity discussion).
func (ix *Index) LookupLeaf(delta float64) (*Node, Cost, error) {
	return ix.LookupLeafContext(context.Background(), delta)
}

// LookupLeafContext is LookupLeaf with a caller-supplied context.
func (ix *Index) LookupLeafContext(ctx context.Context, delta float64) (n *Node, cost Cost, err error) {
	ctx, done := ix.beginOp(ctx, metrics.OpGet)
	defer func() { done(err) }()
	return ix.lookupLeaf(ctx, delta)
}

// lookupLeaf is the binary search itself, shared by every public entry
// point so each observes its own operation class exactly once.
func (ix *Index) lookupLeaf(ctx context.Context, delta float64) (*Node, Cost, error) {
	ctx = metrics.WithPhase(ctx, metrics.PhaseProbe)
	var cost Cost
	mu, err := keyspace.Mu(delta, ix.cfg.Depth)
	if err != nil {
		return nil, cost, err
	}
	lo, hi := 1, ix.cfg.Depth
	for lo <= hi {
		mid := lo + (hi-lo)/2
		x := mu.Prefix(mid)
		n, err := ix.getNode(ctx, x.Key(), &cost)
		switch {
		case errors.Is(err, dht.ErrNotFound):
			hi = mid - 1
		case err != nil:
			cost.Steps = cost.Lookups
			return nil, cost, err
		case n.Leaf:
			cost.Steps = cost.Lookups
			return n, cost, nil
		default:
			lo = mid + 1
		}
	}
	cost.Steps = cost.Lookups
	return nil, cost, fmt.Errorf("%w: lookup %v found no leaf", ErrCorrupt, delta)
}

// Search is the exact-match query: a lookup returning the record itself.
func (ix *Index) Search(delta float64) (record.Record, Cost, error) {
	return ix.SearchContext(context.Background(), delta)
}

// SearchContext is Search with a caller-supplied context.
func (ix *Index) SearchContext(ctx context.Context, delta float64) (rec record.Record, cost Cost, err error) {
	ctx, done := ix.beginOp(ctx, metrics.OpGet)
	defer func() { done(err) }()
	n, cost, err := ix.lookupLeaf(ctx, delta)
	if err != nil {
		return record.Record{}, cost, err
	}
	if i := record.FindByKey(n.Records, delta); i >= 0 {
		return n.Records[i], cost, nil
	}
	return record.Record{}, cost, fmt.Errorf("%w: %v", ErrKeyNotFound, delta)
}

// Insert adds a record (replacing any record with the same key): a lookup,
// a put of the leaf, and possibly a split.
func (ix *Index) Insert(rec record.Record) (Cost, error) {
	return ix.InsertContext(context.Background(), rec)
}

// InsertContext is Insert with a caller-supplied context. The
// read-modify-write is optimistic: the write-back is an epoch-guarded
// conditional put and a lost CAS re-runs the round from the lookup, the
// same protocol as lht.Index.InsertContext.
func (ix *Index) InsertContext(ctx context.Context, rec record.Record) (cost Cost, err error) {
	if err := keyspace.CheckKey(rec.Key); err != nil {
		return Cost{}, err
	}
	ctx, done := ix.beginOp(ctx, metrics.OpInsert)
	defer func() { done(err) }()
	for {
		n, lcost, err := ix.lookupLeaf(ctx, rec.Key)
		cost.Add(lcost)
		if err != nil {
			return cost, err
		}
		nn := n.Clone()
		if i := record.FindByKey(nn.Records, rec.Key); i >= 0 {
			nn.Records[i] = rec
		} else {
			nn.Records = append(nn.Records, rec)
		}
		nn.Epoch++
		cost.Lookups++
		cost.Steps++
		err = dht.DoPutIf(ctx, ix.d, nn.Label.Key(), nn, n.Epoch)
		if errors.Is(err, dht.ErrCASConflict) {
			ix.c.AddWriterRetries(1)
			if cerr := ctx.Err(); cerr != nil {
				return cost, cerr
			}
			continue
		}
		if err != nil {
			return cost, fmt.Errorf("pht: write back %s: %w", n.Label, err)
		}
		if nn.Weight() >= ix.cfg.SplitThreshold {
			splitCost, err := ix.split(ctx, nn)
			cost.Add(splitCost)
			ix.c.AddMaintLookups(int64(splitCost.Lookups))
			if err != nil {
				return cost, err
			}
		}
		return cost, nil
	}
}

// split divides a saturated leaf. Unlike LHT, both children carry labels
// different from the parent's, so both are pushed to other peers (2
// DHT-lookups, all records moved), the old node is rewritten in place as
// an internal marker (free), and the two neighbor leaves' links are
// patched (2 more DHT-lookups): equation 2's theta*i + 4*j per split.
// Like LHT, one insertion causes at most one split.
func (ix *Index) split(ctx context.Context, n *Node) (Cost, error) {
	ctx = metrics.WithPhase(ctx, metrics.PhaseSplit)
	var cost Cost
	if n.Label.Len() >= ix.cfg.Depth {
		ix.mu.Lock()
		ix.overflows++
		ix.mu.Unlock()
		return cost, nil
	}

	iv := n.Interval()
	pivot := iv.Lo + (iv.Hi-iv.Lo)/2
	var leftRecs, rightRecs []record.Record
	for _, r := range n.Records {
		if r.Key < pivot {
			leftRecs = append(leftRecs, r)
		} else {
			rightRecs = append(rightRecs, r)
		}
	}
	left := &Node{
		Label: n.Label.Left(), Leaf: true, Records: leftRecs,
		Prev: n.Prev, HasPrev: n.HasPrev,
		Next: n.Label.Right(), HasNext: true,
		Epoch: n.Epoch + 1,
	}
	right := &Node{
		Label: n.Label.Right(), Leaf: true, Records: rightRecs,
		Prev: n.Label.Left(), HasPrev: true,
		Next: n.Next, HasNext: n.HasNext,
		Epoch: n.Epoch + 1,
	}

	// The old leaf becomes an internal marker in place first (free local
	// rewrite) — the marker is the split's fence: it is guarded by the
	// leaf's epoch, so of any number of racing writers exactly one
	// rewrites the leaf and pushes the children; the losers' record
	// writes conflict against the marker and re-run their lookup. Losing
	// the fence ourselves means another writer committed first — yield,
	// and let the next saturating insert re-trigger the split. (Unlike
	// LHT's intent-marked split, the marker is not recoverable: a writer
	// dying between here and the children's puts leaves a torn trie.)
	marker := &Node{Label: n.Label, Epoch: n.Epoch + 1}
	err := dht.DoWriteIf(ctx, ix.d, n.Label.Key(), marker, n.Epoch)
	if errors.Is(err, dht.ErrCASConflict) || errors.Is(err, dht.ErrNotFound) {
		return cost, nil
	}
	if err != nil {
		return cost, fmt.Errorf("pht: split write %s: %w", n.Label, err)
	}

	ix.c.AddSplits(1)
	ix.c.AddMovedRecords(int64(left.Weight() + right.Weight()))

	// Both children move to the peers responsible for their new labels.
	// Plain puts: only the fence winner gets here, and overwriting is
	// exactly what reclaims a torn predecessor's stale children.
	cost.Lookups += 2
	cost.Steps++ // the two puts go out in parallel
	if err := ix.d.Put(ctx, left.Label.Key(), left); err != nil {
		return cost, fmt.Errorf("pht: split put %s: %w", left.Label, err)
	}
	if err := ix.d.Put(ctx, right.Label.Key(), right); err != nil {
		return cost, fmt.Errorf("pht: split put %s: %w", right.Label, err)
	}

	// Patch the chain neighbors; each patch routes to one peer.
	if n.HasPrev {
		if err := ix.patchLink(ctx, n.Prev, &cost, func(p *Node) { p.Next, p.HasNext = left.Label, true }); err != nil {
			return cost, err
		}
	}
	if n.HasNext {
		if err := ix.patchLink(ctx, n.Next, &cost, func(p *Node) { p.Prev, p.HasPrev = right.Label, true }); err != nil {
			return cost, err
		}
	}
	return cost, nil
}

// patchLink routes to the leaf stored under label, applies fn and rewrites
// it: one DHT-lookup (the rewrite happens on the peer that was routed to).
// The rewrite is an optimistic RMW like every other: a lost CAS re-fetches
// the neighbor and re-applies fn.
func (ix *Index) patchLink(ctx context.Context, label bitlabel.Label, cost *Cost, fn func(*Node)) error {
	for {
		p, err := ix.getNode(ctx, label.Key(), cost)
		cost.Steps++
		if err != nil {
			return fmt.Errorf("pht: patch link %s: %w", label, err)
		}
		np := p.Clone()
		fn(np)
		np.Epoch++
		err = dht.DoWriteIf(ctx, ix.d, label.Key(), np, p.Epoch)
		if errors.Is(err, dht.ErrCASConflict) {
			ix.c.AddWriterRetries(1)
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
			continue
		}
		if err != nil {
			return fmt.Errorf("pht: patch link %s: %w", label, err)
		}
		return nil
	}
}

// Delete removes the record with the given key, or returns
// ErrKeyNotFound; an underweight leaf attempts to merge with its sibling.
func (ix *Index) Delete(delta float64) (Cost, error) {
	return ix.DeleteContext(context.Background(), delta)
}

// DeleteContext is Delete with a caller-supplied context.
func (ix *Index) DeleteContext(ctx context.Context, delta float64) (cost Cost, err error) {
	if err := keyspace.CheckKey(delta); err != nil {
		return Cost{}, err
	}
	ctx, done := ix.beginOp(ctx, metrics.OpDelete)
	defer func() { done(err) }()
	for {
		n, lcost, err := ix.lookupLeaf(ctx, delta)
		cost.Add(lcost)
		if err != nil {
			return cost, err
		}
		i := record.FindByKey(n.Records, delta)
		if i < 0 {
			return cost, fmt.Errorf("%w: %v", ErrKeyNotFound, delta)
		}
		nn := n.Clone()
		nn.Records[i] = nn.Records[len(nn.Records)-1]
		nn.Records = nn.Records[:len(nn.Records)-1]
		nn.Epoch++
		cost.Lookups++
		cost.Steps++
		err = dht.DoPutIf(ctx, ix.d, nn.Label.Key(), nn, n.Epoch)
		if errors.Is(err, dht.ErrCASConflict) {
			ix.c.AddWriterRetries(1)
			if cerr := ctx.Err(); cerr != nil {
				return cost, cerr
			}
			continue
		}
		if err != nil {
			return cost, fmt.Errorf("pht: write back %s: %w", n.Label, err)
		}
		if ix.cfg.MergeThreshold > 0 && nn.Label.Len() >= 2 && nn.Weight() < ix.cfg.MergeThreshold {
			mergeCost, err := ix.merge(ctx, nn)
			cost.Add(mergeCost)
			ix.c.AddMaintLookups(int64(mergeCost.Lookups))
			if err != nil {
				return cost, err
			}
		}
		return cost, nil
	}
}

// merge collapses a leaf and its sibling leaf back into their parent when
// their combined weight is low: the records move to the parent's peer (the
// parent marker is rewritten as a leaf), both child entries are removed,
// and the chain is patched around them. It is noticeably more expensive
// than LHT's merge - every step routes, just as PHT's split does.
func (ix *Index) merge(ctx context.Context, n *Node) (Cost, error) {
	ctx = metrics.WithPhase(ctx, metrics.PhaseMerge)
	var cost Cost
	sibling := n.Label.Sibling()
	sib, err := ix.getNode(ctx, sibling.Key(), &cost)
	cost.Steps++
	if err != nil {
		if errors.Is(err, dht.ErrNotFound) {
			return cost, fmt.Errorf("%w: sibling %s of leaf %s missing", ErrCorrupt, sibling, n.Label)
		}
		return cost, err
	}
	if !sib.Leaf {
		return cost, nil
	}
	if n.Weight()+sib.Weight()-1 >= ix.cfg.MergeThreshold {
		return cost, nil
	}

	left, right := n, sib
	if n.Label.LastBit() == 1 {
		left, right = sib, n
	}
	parent := &Node{
		Label: n.Label.Parent(), Leaf: true,
		Records: append(append([]record.Record{}, left.Records...), right.Records...),
		Prev:    left.Prev, HasPrev: left.HasPrev,
		Next: right.Next, HasNext: right.HasNext,
		Epoch: max(left.Epoch, right.Epoch) + 1,
	}

	ix.c.AddMerges(1)
	ix.c.AddMovedRecords(int64(left.Weight() + right.Weight()))

	cost.Lookups += 3
	cost.Steps++ // put parent + remove both children, in parallel
	if err := ix.d.Put(ctx, parent.Label.Key(), parent); err != nil {
		return cost, fmt.Errorf("pht: merge put %s: %w", parent.Label, err)
	}
	// Drop the children at the epochs the merge read. A conflict means a
	// concurrent write landed on a child after the merged leaf became
	// durable; the merged leaf supersedes the child wholesale, so the
	// removal is forced — PHT has no write-ahead intent to rebase against,
	// which is exactly the lost-update window the paper's LHT protocol
	// closes.
	for _, child := range []*Node{left, right} {
		rerr := dht.DoRemoveIf(ctx, ix.d, child.Label.Key(), child.Epoch)
		if errors.Is(rerr, dht.ErrCASConflict) {
			cost.Lookups++
			rerr = ix.d.Remove(ctx, child.Label.Key())
		}
		if rerr != nil {
			return cost, fmt.Errorf("pht: merge remove %s: %w", child.Label, rerr)
		}
	}
	if parent.HasPrev {
		if err := ix.patchLink(ctx, parent.Prev, &cost, func(p *Node) { p.Next, p.HasNext = parent.Label, true }); err != nil {
			return cost, err
		}
	}
	if parent.HasNext {
		if err := ix.patchLink(ctx, parent.Next, &cost, func(p *Node) { p.Prev, p.HasPrev = parent.Label, true }); err != nil {
			return cost, err
		}
	}
	return cost, nil
}
