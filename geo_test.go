package lht_test

import (
	"errors"
	"math/rand"
	"testing"

	"lht"
)

func TestGeoIndexBasics(t *testing.T) {
	g, err := lht.NewGeoIndex(lht.NewLocalDHT(), lht.GeoConfig{Bits: 12})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Insert(lht.Point{X: 0.3, Y: 0.7, Value: []byte("library")}); err != nil {
		t.Fatal(err)
	}
	p, cost, err := g.Get(0.3, 0.7)
	if err != nil || string(p.Value) != "library" {
		t.Fatalf("Get = %+v, %v", p, err)
	}
	if cost.Lookups == 0 {
		t.Error("Get should cost lookups")
	}
	// Same-cell replace.
	if _, err := g.Insert(lht.Point{X: 0.3, Y: 0.7, Value: []byte("cafe")}); err != nil {
		t.Fatal(err)
	}
	if p, _, _ = g.Get(0.3, 0.7); string(p.Value) != "cafe" {
		t.Fatalf("replace failed: %q", p.Value)
	}
	if _, err := g.Delete(0.3, 0.7); err != nil {
		t.Fatal(err)
	}
	if _, _, err := g.Get(0.3, 0.7); !errors.Is(err, lht.ErrKeyNotFound) {
		t.Fatalf("Get after Delete = %v", err)
	}
	if _, err := g.Insert(lht.Point{X: 1.2, Y: 0}); err == nil {
		t.Error("out-of-domain insert should fail")
	}
	if g.Index() == nil {
		t.Error("Index accessor broken")
	}
}

func TestGeoSearchRectMatchesBruteForce(t *testing.T) {
	g, err := lht.NewGeoIndex(lht.NewLocalDHT(), lht.GeoConfig{
		Bits:     14,
		MaxSpans: 24,
		Index:    lht.Config{SplitThreshold: 16, MergeThreshold: 8, Depth: 28},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	type pt struct{ x, y float64 }
	cells := make(map[[2]int]pt) // dedupe per grid cell like the index does
	for i := 0; i < 3000; i++ {
		x, y := rng.Float64(), rng.Float64()
		if _, err := g.Insert(lht.Point{X: x, Y: y, Value: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
		cells[[2]int{int(x * (1 << 14)), int(y * (1 << 14))}] = pt{x, y}
	}
	for trial := 0; trial < 25; trial++ {
		x0, y0 := rng.Float64()*0.8, rng.Float64()*0.8
		r := lht.Rect{X0: x0, X1: x0 + 0.15, Y0: y0, Y1: y0 + 0.15}
		got, cost, err := g.SearchRect(r)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for _, p := range cells {
			if r.Contains(p.x, p.y) {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("SearchRect(%+v) = %d points, brute force %d", r, len(got), want)
		}
		for _, p := range got {
			if !r.Contains(p.X, p.Y) {
				t.Fatalf("point (%v,%v) outside rect", p.X, p.Y)
			}
		}
		if cost.Steps > cost.Lookups {
			t.Fatalf("Steps %d > Lookups %d", cost.Steps, cost.Lookups)
		}
	}
}

func TestGeoConfigDefaults(t *testing.T) {
	g, err := lht.NewGeoIndex(lht.NewLocalDHT(), lht.GeoConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Default Bits=16 requires Depth >= 32; the underlying config must
	// have been raised.
	if d := g.Index().Config().Depth; d < 32 {
		t.Errorf("Depth = %d, want >= 32", d)
	}
	if _, err := lht.NewGeoIndex(lht.NewLocalDHT(), lht.GeoConfig{Bits: 99}); err == nil {
		t.Error("invalid Bits should fail")
	}
}
