package dht

import (
	"context"
	"errors"
	"sync"
)

// ErrCrashed reports an operation failed by an injected crash schedule.
// It is deliberately NOT transient: a crashed client does not retry, so
// the policy layer must surface it immediately (schedules that model
// flaky-but-alive substrates set CrashRule.Transient instead).
var ErrCrashed = errors.New("dht: injected crash")

// OpKind identifies one DHT operation class. Crash schedules use it to
// match operations (batched operations decompose into their per-key kinds,
// OpGet / OpPut, so a schedule counts ops identically whether or not the
// substrate batches), and wire substrates use the same enumeration as
// their on-the-wire op byte: internal/tcpnet's framed protocol carries
// uint8(OpKind) in every frame header, so a packet capture and a crash
// schedule name operations identically.
type OpKind uint8

const (
	// OpAny matches every operation (never appears on the wire).
	OpAny OpKind = iota
	// OpGet matches Get (and each key of a GetBatch).
	OpGet
	// OpPut matches Put (and each pair of a PutBatch).
	OpPut
	// OpTake matches Take.
	OpTake
	// OpRemove matches Remove.
	OpRemove
	// OpWrite matches Write.
	OpWrite

	// The kinds below are wire-level only: they identify whole protocol
	// messages, not index-visible operation classes, so crash schedules
	// never match them directly (a batch decomposes into OpGet/OpPut).

	// OpPing is the wire-level liveness probe.
	OpPing
	// OpGetBatch is the wire-level framed multi-get.
	OpGetBatch
	// OpPutBatch is the wire-level framed multi-put.
	OpPutBatch

	// The conditional kinds are index-visible operation classes like
	// OpGet/OpPut: crash schedules match them, and the framed wire carries
	// them as op bytes.

	// OpPutIf matches PutIf (epoch-guarded replace).
	OpPutIf
	// OpCreateIf matches CreateIf (create-if-absent).
	OpCreateIf
	// OpRemoveIf matches RemoveIf (epoch-guarded delete).
	OpRemoveIf
	// OpWriteIf matches WriteIf (epoch-guarded in-place rewrite).
	OpWriteIf

	// OpPutNewer is wire-level only, like OpPing: the replica-propagation
	// store. The holder stores the value unless it already holds one with
	// a strictly newer epoch tag, so fan-outs of serialized conditional
	// commits may arrive in any order without an older commit ever
	// overwriting a newer one. Crash schedules never match it directly.
	OpPutNewer

	// The membership-plane kinds are wire-level only and free in the cost
	// model: they carry no index traffic, only cluster metadata. New wire
	// ops must keep appending here — the byte values are the framed
	// protocol's op bytes, so reordering the enum breaks wire stability.

	// OpGossip is one anti-entropy membership exchange: the payload is the
	// sender's encoded ClusterView, the response the receiver's merged one.
	OpGossip
	// OpHintPut parks a hinted handoff: an epoch-tagged value a writer
	// could not deliver to its down holder, stored on a substitute node
	// keyed by the intended holder's address, replayed via OpPutNewer when
	// the holder returns.
	OpHintPut
	// OpStatus asks a node for its membership view plus its parked-hint
	// backlog per intended holder.
	OpStatus
)

// String names the kind for logs and test failures.
func (k OpKind) String() string {
	switch k {
	case OpAny:
		return "any"
	case OpGet:
		return "get"
	case OpPut:
		return "put"
	case OpTake:
		return "take"
	case OpRemove:
		return "remove"
	case OpWrite:
		return "write"
	case OpPing:
		return "ping"
	case OpGetBatch:
		return "getbatch"
	case OpPutBatch:
		return "putbatch"
	case OpPutIf:
		return "putif"
	case OpCreateIf:
		return "createif"
	case OpRemoveIf:
		return "removeif"
	case OpWriteIf:
		return "writeif"
	case OpPutNewer:
		return "putnewer"
	case OpGossip:
		return "gossip"
	case OpHintPut:
		return "hintput"
	case OpStatus:
		return "status"
	}
	return "unknown"
}

// CrashRule is one entry of a deterministic fault schedule. A rule matches
// an operation when Op (OpAny = all) and Key (nil = all) both accept it;
// N picks the Nth match (1-based; 0 = every match). When a rule fires,
// the operation fails with ErrCrashed (or a transient fault when
// Transient is set); with After set, the underlying operation is executed
// first and only the acknowledgement is lost — the classic crash-after-put
// window where the remote write took effect but the writer died before
// its next step. Halt turns the firing into a process crash: every
// subsequent operation through the wrapper fails immediately.
type CrashRule struct {
	// Op restricts the rule to one operation class; OpAny matches all.
	Op OpKind
	// Key, when non-nil, restricts the rule to keys it accepts.
	Key func(key string) bool
	// N fires the rule on the Nth matching operation (1-based). 0 fires
	// on every match.
	N int
	// After executes the underlying operation before failing, so the
	// effect is durable but the caller observes a crash.
	After bool
	// Halt fails all operations after the rule fires (simulated process
	// death), not just the matching one.
	Halt bool
	// Transient marks the injected error retryable (dht.IsTransient), for
	// schedules that model a flaky substrate rather than a dead client.
	Transient bool
}

// CrashPoints wraps a DHT with a scripted, deterministic fault schedule.
// Unlike probabilistic injection (bench's flaky substrate), the same
// operation sequence always fails at the same points, so torn states are
// reproducible in tests. It implements Batcher: batched keys advance the
// same per-op counter, one count per key, in slice order.
type CrashPoints struct {
	inner DHT
	rules []CrashRule

	mu      sync.Mutex
	matches []int // per-rule match counts
	ops     int   // total operations observed
	halted  bool
}

var (
	_ DHT         = (*CrashPoints)(nil)
	_ Batcher     = (*CrashPoints)(nil)
	_ Conditional = (*CrashPoints)(nil)
)

// WithCrashPoints wraps d with the given schedule. Rules are evaluated in
// order; the first firing rule decides the outcome.
func WithCrashPoints(d DHT, rules ...CrashRule) *CrashPoints {
	return &CrashPoints{inner: d, rules: rules, matches: make([]int, len(rules))}
}

// Ops returns how many operations the schedule has observed (batched keys
// count one each).
func (c *CrashPoints) Ops() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ops
}

// Crashed reports whether a halting rule has fired: the simulated process
// is dead and every further operation fails.
func (c *CrashPoints) Crashed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.halted
}

// Reset revives a halted wrapper and restarts the schedule from the
// beginning, modeling a process restart with the same script.
func (c *CrashPoints) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.halted = false
	c.ops = 0
	for i := range c.matches {
		c.matches[i] = 0
	}
}

// verdict is the scheduling decision for one operation.
type verdict struct {
	fail  bool
	after bool
	err   error
}

// decide advances the schedule one operation and returns its fate.
func (c *CrashPoints) decide(op OpKind, key string) verdict {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.halted {
		return verdict{fail: true, err: ErrCrashed}
	}
	c.ops++
	for i, r := range c.rules {
		if r.Op != OpAny && r.Op != op {
			continue
		}
		if r.Key != nil && !r.Key(key) {
			continue
		}
		c.matches[i]++
		if r.N != 0 && c.matches[i] != r.N {
			continue
		}
		if r.Halt {
			c.halted = true
		}
		err := ErrCrashed
		if r.Transient {
			err = MarkTransient(ErrCrashed)
		}
		return verdict{fail: true, after: r.After, err: err}
	}
	return verdict{}
}

// Get implements DHT.
func (c *CrashPoints) Get(ctx context.Context, key string) (Value, error) {
	v := c.decide(OpGet, key)
	if v.fail && !v.after {
		return nil, v.err
	}
	val, err := c.inner.Get(ctx, key)
	if v.fail {
		return nil, v.err
	}
	return val, err
}

// Put implements DHT.
func (c *CrashPoints) Put(ctx context.Context, key string, val Value) error {
	v := c.decide(OpPut, key)
	if v.fail && !v.after {
		return v.err
	}
	err := c.inner.Put(ctx, key, val)
	if v.fail {
		return v.err
	}
	return err
}

// Take implements DHT.
func (c *CrashPoints) Take(ctx context.Context, key string) (Value, error) {
	v := c.decide(OpTake, key)
	if v.fail && !v.after {
		return nil, v.err
	}
	val, err := c.inner.Take(ctx, key)
	if v.fail {
		return nil, v.err
	}
	return val, err
}

// Remove implements DHT.
func (c *CrashPoints) Remove(ctx context.Context, key string) error {
	v := c.decide(OpRemove, key)
	if v.fail && !v.after {
		return v.err
	}
	err := c.inner.Remove(ctx, key)
	if v.fail {
		return v.err
	}
	return err
}

// Write implements DHT.
func (c *CrashPoints) Write(ctx context.Context, key string, val Value) error {
	v := c.decide(OpWrite, key)
	if v.fail && !v.after {
		return v.err
	}
	err := c.inner.Write(ctx, key, val)
	if v.fail {
		return v.err
	}
	return err
}

// PutIf implements Conditional: scheduled as one OpPutIf, then delegated
// to the inner substrate's native CAS (or the fetch-verify fallback).
func (c *CrashPoints) PutIf(ctx context.Context, key string, val Value, ifEpoch uint64) error {
	v := c.decide(OpPutIf, key)
	if v.fail && !v.after {
		return v.err
	}
	err := DoPutIf(ctx, c.inner, key, val, ifEpoch)
	if v.fail {
		return v.err
	}
	return err
}

// CreateIf implements Conditional.
func (c *CrashPoints) CreateIf(ctx context.Context, key string, val Value) error {
	v := c.decide(OpCreateIf, key)
	if v.fail && !v.after {
		return v.err
	}
	err := DoCreateIf(ctx, c.inner, key, val)
	if v.fail {
		return v.err
	}
	return err
}

// RemoveIf implements Conditional.
func (c *CrashPoints) RemoveIf(ctx context.Context, key string, ifEpoch uint64) error {
	v := c.decide(OpRemoveIf, key)
	if v.fail && !v.after {
		return v.err
	}
	err := DoRemoveIf(ctx, c.inner, key, ifEpoch)
	if v.fail {
		return v.err
	}
	return err
}

// WriteIf implements Conditional.
func (c *CrashPoints) WriteIf(ctx context.Context, key string, val Value, ifEpoch uint64) error {
	v := c.decide(OpWriteIf, key)
	if v.fail && !v.after {
		return v.err
	}
	err := DoWriteIf(ctx, c.inner, key, val, ifEpoch)
	if v.fail {
		return v.err
	}
	return err
}

// GetBatch implements Batcher: every key is scheduled as one OpGet, in
// slice order, exactly as a loop of per-op Gets would be. Surviving keys
// are fetched through the inner substrate's batch plane when available.
func (c *CrashPoints) GetBatch(ctx context.Context, keys []string) ([]Value, []error) {
	vals := make([]Value, len(keys))
	errs := make([]error, len(keys))
	var live []string
	var liveIdx []int
	after := make([]bool, len(keys))
	for i, k := range keys {
		v := c.decide(OpGet, k)
		if v.fail {
			errs[i] = v.err
			if v.after {
				after[i] = true
				live = append(live, k)
				liveIdx = append(liveIdx, i)
			}
			continue
		}
		live = append(live, k)
		liveIdx = append(liveIdx, i)
	}
	lv, le := DoGetBatch(ctx, c.inner, live)
	for j, i := range liveIdx {
		if after[i] {
			continue // effect happened; the scheduled error stands
		}
		vals[i], errs[i] = lv[j], le[j]
	}
	return vals, errs
}

// PutBatch implements Batcher with the same per-key scheduling as
// GetBatch.
func (c *CrashPoints) PutBatch(ctx context.Context, kvs []KV) []error {
	errs := make([]error, len(kvs))
	var live []KV
	var liveIdx []int
	after := make([]bool, len(kvs))
	for i, kv := range kvs {
		v := c.decide(OpPut, kv.Key)
		if v.fail {
			errs[i] = v.err
			if v.after {
				after[i] = true
				live = append(live, kv)
				liveIdx = append(liveIdx, i)
			}
			continue
		}
		live = append(live, kv)
		liveIdx = append(liveIdx, i)
	}
	le := DoPutBatch(ctx, c.inner, live)
	for j, i := range liveIdx {
		if after[i] {
			continue
		}
		errs[i] = le[j]
	}
	return errs
}
