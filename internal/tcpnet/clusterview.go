package tcpnet

// Client-side membership: the Client keeps a local dht.ClusterView
// (seeded from the bootstrap list, fed suspicion by its own circuit
// breakers) and syncs it with the servers' gossiped view through
// RefreshView — one OpGossip exchange with the first reachable member,
// exactly the anti-entropy protocol the servers run among themselves, so
// the client is just one more gossip participant that happens to hold no
// data. A refresh that changes the routable member set rebuilds the
// routing ring: new members get fresh connection state, members the view
// declared dead or left are closed and dropped, and every in-flight
// operation keeps the immutable ring snapshot it started with.
//
// On top of the view sit the two repair capabilities the index layer
// discovers by type assertion: EnsureReplicated (dht.Rereplicator)
// restores a key's missing replica copies from the freshest surviving
// one, and ClusterStatus (dht.ClusterReporter) joins the gossiped view
// with the client's local health plane for operator introspection.

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"lht/internal/dht"
)

var (
	_ dht.Rereplicator    = (*Client)(nil)
	_ dht.ClusterReporter = (*Client)(nil)
)

// markSuspect records local failure evidence against a member: the
// breaker's OnOpen calls this, so a node that just tripped its breaker is
// marked suspect in the client's view and the doubt spreads on the next
// gossip exchange. Within one incarnation suspicion merges over health
// (worse state wins), and only the member itself can refute it.
func (c *Client) markSuspect(addr string) {
	c.viewMu.Lock()
	defer c.viewMu.Unlock()
	cur, _ := c.view.Find(addr)
	if cur.State != dht.MemberAlive {
		return
	}
	if c.view.Upsert(dht.Member{Addr: addr, State: dht.MemberSuspect, Incarnation: cur.Incarnation}) {
		c.view.Epoch++
	}
}

// View returns a snapshot of the client's local membership view.
func (c *Client) View() dht.ClusterView {
	c.viewMu.Lock()
	defer c.viewMu.Unlock()
	return c.view.Clone()
}

// RefreshView runs one gossip exchange with the first reachable member:
// push the local view, merge the server's, and rebuild the routing ring
// if the routable member set changed. Errors only when no member could be
// exchanged with (all down, or none runs the membership plane).
func (c *Client) RefreshView(ctx context.Context) error {
	if c.wire == WireGob {
		return errors.New("tcpnet: membership requires the binary wire")
	}
	c.viewMu.Lock()
	local := c.view.Clone()
	c.viewMu.Unlock()
	nodes := c.ringNodes()
	err := errors.New("tcpnet: no members to refresh from")
	for _, n := range nodes {
		var tv []byte
		var frame *[]byte
		tv, frame, err = n.simpleCall(ctx, dht.OpGossip, func(b []byte) ([]byte, error) {
			return appendView(b, local), nil
		})
		if err != nil {
			continue
		}
		cur := cursor{b: tv}
		var remote dht.ClusterView
		remote, err = readView(&cur)
		putBuf(frame)
		if err != nil {
			continue
		}
		c.viewMu.Lock()
		c.view.Merge(remote)
		merged := c.view.Clone()
		c.viewMu.Unlock()
		c.reviveBreakers(local, merged)
		c.applyView(merged)
		return nil
	}
	return err
}

// reviveBreakers closes the breaker of every member the refreshed view
// newly reports alive. The gossip plane carries fresher evidence than a
// breaker's failure memory — a rejoined node refutes its own death with a
// bumped incarnation — so an open window must not outlive the verdict
// that caused it. Members the merge taught nothing new about (already
// alive at the same or a newer local incarnation) keep their breaker
// state: local transport evidence stands until gossip contradicts it.
func (c *Client) reviveBreakers(old, merged dht.ClusterView) {
	for _, n := range c.ringNodes() {
		if n.br == nil {
			continue
		}
		m, ok := merged.Find(n.addr)
		if !ok || m.State != dht.MemberAlive {
			continue
		}
		if prev, had := old.Find(n.addr); had && prev.State == dht.MemberAlive && prev.Incarnation >= m.Incarnation {
			continue
		}
		if n.br.State() != dht.BreakerClosed {
			n.br.Success()
		}
	}
}

// applyView rebuilds the routing ring to the view's routable member set.
// Existing members keep their connection state (and breaker history); new
// members are dialed lazily on first use; removed members are closed. The
// ring never shrinks below the replica count — a view that would leave
// too few holders is held (routing keeps the wider ring) until gossip
// finds replacements.
func (c *Client) applyView(v dht.ClusterView) bool {
	addrs := v.Alive()
	if len(addrs) < c.replicas {
		return false
	}
	old := c.ringNodes()
	byAddr := make(map[string]*clientNode, len(old))
	for _, n := range old {
		byAddr[n.addr] = n
	}
	changed := len(addrs) != len(old)
	nodes := make([]*clientNode, 0, len(addrs))
	for _, a := range addrs {
		if n, ok := byAddr[a]; ok {
			nodes = append(nodes, n)
			delete(byAddr, a)
		} else {
			nodes = append(nodes, c.newNode(a))
			changed = true
		}
	}
	if !changed {
		return false
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].id < nodes[j].id })
	c.ring.Store(&memberRing{nodes: nodes})
	for _, n := range byAddr { // members the view retired
		for _, m := range n.conns {
			m.close()
		}
		if n.gc != nil {
			_ = n.gc.close()
		}
	}
	c.counters.AddViewRefreshes(1)
	return true
}

// noteDebt records a missing, un-restored replica copy of key on addr.
func (c *Client) noteDebt(addr, key string) {
	c.debtMu.Lock()
	defer c.debtMu.Unlock()
	if c.debt == nil {
		c.debt = make(map[string]map[string]struct{})
	}
	keys := c.debt[addr]
	if keys == nil {
		keys = make(map[string]struct{})
		c.debt[addr] = keys
	}
	keys[key] = struct{}{}
}

// clearDebt retires the debt record for key on addr (the copy was seen
// present or restored).
func (c *Client) clearDebt(addr, key string) {
	c.debtMu.Lock()
	defer c.debtMu.Unlock()
	if keys := c.debt[addr]; keys != nil {
		delete(keys, key)
		if len(keys) == 0 {
			delete(c.debt, addr)
		}
	}
}

// replicaDebt returns the number of keys with an outstanding missing copy
// on addr.
func (c *Client) replicaDebt(addr string) int {
	c.debtMu.Lock()
	defer c.debtMu.Unlock()
	return len(c.debt[addr])
}

// rawGet fetches key's stored tagged bytes from one node, without
// decoding: re-replication moves bytes between holders verbatim, so the
// epoch tag (and the value it guards) survive untouched.
func (c *Client) rawGet(ctx context.Context, n *clientNode, key string) ([]byte, error) {
	tv, frame, err := n.simpleCall(ctx, dht.OpGet, func(b []byte) ([]byte, error) {
		return appendLenString(b, key), nil
	})
	if err != nil {
		return nil, err
	}
	out := append([]byte(nil), tv...)
	putBuf(frame)
	return out, nil
}

// putRaw stores already-tagged bytes on one node over the epoch-ordered
// OpPutNewer path: if the holder accepted a fresher write in the
// meantime, the restore loses, which is exactly right.
func (c *Client) putRaw(ctx context.Context, n *clientNode, key string, tagged []byte) error {
	_, frame, err := n.simpleCall(ctx, dht.OpPutNewer, func(b []byte) ([]byte, error) {
		b = appendLenString(b, key)
		return append(b, tagged...), nil
	})
	if err != nil {
		return err
	}
	putBuf(frame)
	return nil
}

// EnsureReplicated implements dht.Rereplicator: probe every current ring
// owner of key and restore missing copies from the freshest surviving
// one. A key no holder has is not an error (it was removed, or never
// existed); a key no holder could even be asked about is. Restores ride
// OpPutNewer, so racing writers can only ever beat the restore with a
// newer value, never lose to it.
func (c *Client) EnsureReplicated(ctx context.Context, key string) (dht.ReplicaRepair, error) {
	var rep dht.ReplicaRepair
	if c.replicas <= 1 || c.wire == WireGob {
		return rep, nil
	}
	owners := c.owners(key)
	vals := make([][]byte, len(owners))
	errs := make([]error, len(owners))
	for i, n := range owners {
		rep.Probes++
		vals[i], errs[i] = c.rawGet(ctx, n, key)
	}
	c.counters.AddReplicaProbes(int64(rep.Probes))

	// The freshest surviving copy (highest stored epoch) is the donor.
	var donor []byte
	reachable := 0
	for i := range owners {
		switch {
		case errs[i] == nil:
			reachable++
			if donor == nil || storedEpoch(vals[i]) > storedEpoch(donor) {
				donor = vals[i]
			}
		case errors.Is(errs[i], dht.ErrNotFound):
			reachable++
		}
	}
	if reachable == 0 {
		return rep, fmt.Errorf("tcpnet: ensure-replicated %q: no reachable holder: %w", key, errs[0])
	}
	if donor == nil {
		return rep, nil // absent everywhere reachable: nothing to restore
	}
	for i, n := range owners {
		switch {
		case errs[i] == nil:
			c.clearDebt(n.addr, key)
		case errors.Is(errs[i], dht.ErrNotFound):
			rep.Missing++
			if err := c.putRaw(ctx, n, key, donor); err != nil {
				c.noteDebt(n.addr, key)
				continue
			}
			rep.Restored++
			c.counters.AddReplicaRepairs(1)
			c.clearDebt(n.addr, key)
		default:
			// Unreachable holder: its copy state is unknown; leave any
			// existing debt record as is.
		}
	}
	return rep, nil
}

// ClusterStatus implements dht.ClusterReporter: fetch the gossiped view
// and hint backlog from the first reachable member (OpStatus) and join it
// with the client's local health plane. Against a cluster that never
// enabled the membership plane the report falls back to the client's own
// view of its ring, so breaker states stay visible either way.
func (c *Client) ClusterStatus(ctx context.Context) (dht.ClusterStatus, error) {
	view, hints, err := c.fetchStatus(ctx)
	if err != nil || len(view.Members) == 0 {
		// No server-side view: report the client's local one.
		view = c.View()
	}
	if len(view.Members) > 0 {
		// Keep the local view current with whatever was learned.
		c.viewMu.Lock()
		c.view.Merge(view)
		view = c.view.Clone()
		c.viewMu.Unlock()
	}
	st := dht.ClusterStatus{ViewEpoch: view.Epoch}
	for _, m := range view.Members {
		st.Members = append(st.Members, dht.MemberStatus{
			Addr:        m.Addr,
			State:       m.State,
			Incarnation: m.Incarnation,
			Breaker:     c.Health(m.Addr),
			Hints:       hints[m.Addr],
			ReplicaDebt: c.replicaDebt(m.Addr),
		})
	}
	return st, nil
}

// fetchStatus asks the first reachable member for its view and hint
// backlog over OpStatus.
func (c *Client) fetchStatus(ctx context.Context) (dht.ClusterView, map[string]int, error) {
	if c.wire == WireGob {
		return dht.ClusterView{}, nil, errors.New("tcpnet: membership requires the binary wire")
	}
	err := errors.New("tcpnet: no members to query")
	for _, n := range c.ringNodes() {
		var tv []byte
		var frame *[]byte
		tv, frame, err = n.simpleCall(ctx, dht.OpStatus, func(b []byte) ([]byte, error) {
			return b, nil
		})
		if err != nil {
			continue
		}
		cur := cursor{b: tv}
		view, verr := readView(&cur)
		if verr != nil {
			putBuf(frame)
			err = verr
			continue
		}
		hints := make(map[string]int)
		nh, herr := cur.uvarint()
		for i := uint64(0); herr == nil && i < nh; i++ {
			var holder []byte
			holder, herr = cur.lenBytes()
			if herr != nil {
				break
			}
			var count uint64
			count, herr = cur.uvarint()
			if herr != nil {
				break
			}
			hints[string(holder)] = int(count)
		}
		putBuf(frame)
		if herr != nil {
			err = herr
			continue
		}
		return view, hints, nil
	}
	return dht.ClusterView{}, nil, err
}

// parkHint parks the value a failed put-like fan-out could not deliver to
// holderAddr on the first reachable other owner (any live node works; the
// other owners are simply the closest candidates). The park node replays
// it to the holder over OpPutNewer once gossip shows the holder routable
// again.
func (c *Client) parkHint(ctx context.Context, key, holderAddr string, v dht.Value) error {
	err := errors.New("tcpnet: no substitute for hint")
	for _, n := range c.owners(key) {
		if n.addr == holderAddr {
			continue
		}
		var frame *[]byte
		_, frame, err = n.simpleCall(ctx, dht.OpHintPut, func(b []byte) ([]byte, error) {
			b = appendLenString(b, holderAddr)
			b = appendLenString(b, key)
			return appendValue(b, v)
		})
		if err != nil {
			continue
		}
		putBuf(frame)
		return nil
	}
	return err
}

// putToOrHint is putTo with hinted handoff: a put-like fan-out that fails
// against an unreachable holder parks the value as a hint instead of
// surfacing the fault — the write is complete on every reachable holder,
// and the hint replays when the missing one returns. Only transport
// faults are hinted; logical outcomes (not-found on Write, CAS conflicts)
// surface unchanged.
func (c *Client) putToOrHint(ctx context.Context, n *clientNode, op dht.OpKind, key string, v dht.Value) error {
	err := c.putTo(ctx, n, op, key, v)
	if err == nil || !c.hinted {
		return err
	}
	if errors.Is(err, dht.ErrNotFound) || !dht.IsTransient(err) {
		return err
	}
	if perr := c.parkHint(ctx, key, n.addr, v); perr == nil {
		return nil
	}
	return err
}
