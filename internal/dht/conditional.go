package dht

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// ErrCASConflict reports that a conditional write lost its compare-and-swap:
// the stored value's epoch no longer matched the caller's expectation (or a
// create-if-absent found the key taken). Conflicts are permanent outcomes,
// never transient — retrying the identical operation cannot succeed; the
// caller must re-fetch, rebase its mutation on the winner, and try again.
// The concrete error is always a *CASConflictError carrying the winner's
// epoch.
var ErrCASConflict = errors.New("dht: CAS conflict")

// CASConflictError is the typed conflict a Conditional operation returns:
// which key was contested, whether a value exists there now, and the epoch
// of the value that won (zero when Exists is false). It unwraps to
// ErrCASConflict.
type CASConflictError struct {
	// Key is the contested DHT key.
	Key string
	// Exists reports whether a value is stored under Key now. A PutIf
	// against an absent key conflicts with Exists == false.
	Exists bool
	// WinnerEpoch is the epoch of the stored value that won the race;
	// meaningful only when Exists is true.
	WinnerEpoch uint64
}

func (e *CASConflictError) Error() string {
	if !e.Exists {
		return fmt.Sprintf("dht: CAS conflict on %q: key absent", e.Key)
	}
	return fmt.Sprintf("dht: CAS conflict on %q: stored epoch %d won", e.Key, e.WinnerEpoch)
}

func (e *CASConflictError) Unwrap() error { return ErrCASConflict }

// Epocher is implemented by stored values that carry a monotonic version.
// The index layers' buckets and trie nodes implement it; Conditional
// substrates compare the stored value's epoch against a caller-supplied
// expectation. Values without an epoch compare as epoch 0.
type Epocher interface {
	// DHTEpoch returns the value's version for CAS comparison.
	DHTEpoch() uint64
}

// EpochOf returns the CAS epoch of a stored value: its DHTEpoch when it
// implements Epocher, else 0.
func EpochOf(v Value) uint64 {
	if e, ok := v.(Epocher); ok {
		return e.DHTEpoch()
	}
	return 0
}

// Conditional is the optional substrate capability behind multi-writer
// index mutation: epoch-guarded writes that fail with *CASConflictError
// instead of silently overwriting a concurrent winner. Substrates that
// implement it do the compare atomically with the write on the storing
// peer; DoPutIf and friends fall back to a non-atomic fetch-verify-write
// for substrates that do not (good enough for single-writer use, not for
// true concurrency).
//
// Cost model: PutIf, CreateIf and RemoveIf each cost one DHT-lookup,
// exactly like their unconditional counterparts; WriteIf, like Write, is
// the free local rewrite. A conflict still costs the lookup — the routing
// happened.
type Conditional interface {
	// PutIf stores v under key iff a value is present and its epoch equals
	// ifEpoch; otherwise it returns a *CASConflictError carrying the
	// winner's epoch (Exists == false when the key is absent).
	PutIf(ctx context.Context, key string, v Value, ifEpoch uint64) error

	// CreateIf stores v under key iff the key is absent; otherwise it
	// returns a *CASConflictError with Exists == true and the stored
	// value's epoch.
	CreateIf(ctx context.Context, key string, v Value) error

	// RemoveIf deletes the value under key iff its epoch equals ifEpoch.
	// Removing an absent key succeeds (the removal is already done);
	// a present value with a different epoch is a *CASConflictError.
	RemoveIf(ctx context.Context, key string, ifEpoch uint64) error

	// WriteIf rewrites the value in place on the peer already holding it,
	// iff the stored epoch equals ifEpoch. Absent keys return ErrNotFound
	// (as Write does); an epoch mismatch is a *CASConflictError.
	WriteIf(ctx context.Context, key string, v Value, ifEpoch uint64) error
}

// casConflict builds the conflict error for a contested key.
func casConflict(key string, exists bool, winner uint64) error {
	return &CASConflictError{Key: key, Exists: exists, WinnerEpoch: winner}
}

// DoPutIf performs a conditional put: natively when d implements
// Conditional, else by non-atomic fetch-verify-write (two lookups, and a
// racing writer can slip between the verify and the write — acceptable
// only when writers are serialized elsewhere).
func DoPutIf(ctx context.Context, d DHT, key string, v Value, ifEpoch uint64) error {
	if c, ok := d.(Conditional); ok {
		return c.PutIf(ctx, key, v, ifEpoch)
	}
	return fallbackPutIf(ctx, d, key, v, ifEpoch)
}

// DoCreateIf is DoPutIf's create-if-absent counterpart.
func DoCreateIf(ctx context.Context, d DHT, key string, v Value) error {
	if c, ok := d.(Conditional); ok {
		return c.CreateIf(ctx, key, v)
	}
	return fallbackCreateIf(ctx, d, key, v)
}

// DoRemoveIf is DoPutIf's remove-if-epoch counterpart.
func DoRemoveIf(ctx context.Context, d DHT, key string, ifEpoch uint64) error {
	if c, ok := d.(Conditional); ok {
		return c.RemoveIf(ctx, key, ifEpoch)
	}
	return fallbackRemoveIf(ctx, d, key, ifEpoch)
}

// DoWriteIf is DoPutIf's epoch-guarded in-place-write counterpart.
func DoWriteIf(ctx context.Context, d DHT, key string, v Value, ifEpoch uint64) error {
	if c, ok := d.(Conditional); ok {
		return c.WriteIf(ctx, key, v, ifEpoch)
	}
	return fallbackWriteIf(ctx, d, key, v, ifEpoch)
}

// The fallback implementations below never assert Conditional on d, so
// capability wrappers can route them through their own charged per-op
// methods without recursing.

func fallbackPutIf(ctx context.Context, d DHT, key string, v Value, ifEpoch uint64) error {
	cur, err := d.Get(ctx, key)
	if errors.Is(err, ErrNotFound) {
		return casConflict(key, false, 0)
	}
	if err != nil {
		return err
	}
	if e := EpochOf(cur); e != ifEpoch {
		return casConflict(key, true, e)
	}
	return d.Put(ctx, key, v)
}

func fallbackCreateIf(ctx context.Context, d DHT, key string, v Value) error {
	cur, err := d.Get(ctx, key)
	if err == nil {
		return casConflict(key, true, EpochOf(cur))
	}
	if !errors.Is(err, ErrNotFound) {
		return err
	}
	return d.Put(ctx, key, v)
}

func fallbackRemoveIf(ctx context.Context, d DHT, key string, ifEpoch uint64) error {
	cur, err := d.Get(ctx, key)
	if errors.Is(err, ErrNotFound) {
		return nil // already gone: the removal is done
	}
	if err != nil {
		return err
	}
	if e := EpochOf(cur); e != ifEpoch {
		return casConflict(key, true, e)
	}
	return d.Remove(ctx, key)
}

func fallbackWriteIf(ctx context.Context, d DHT, key string, v Value, ifEpoch uint64) error {
	cur, err := d.Get(ctx, key)
	if err != nil {
		return err // including ErrNotFound, matching Write
	}
	if e := EpochOf(cur); e != ifEpoch {
		return casConflict(key, true, e)
	}
	return d.Write(ctx, key, v)
}

// KeyLocks is a striped per-key mutex set. The simulated network
// substrates (Chord, Kademlia) use one to make their conditional
// read-compare-write atomic across a key's whole replica set, the stand-in
// for the responsible peer serializing updates in a deployed system.
// The zero value is ready to use.
type KeyLocks struct {
	mu [64]sync.Mutex
}

// stripe hashes key onto one mutex (FNV-1a).
func (l *KeyLocks) stripe(key string) *sync.Mutex {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &l.mu[h%uint32(len(l.mu))]
}

// Lock locks the stripe owning key.
func (l *KeyLocks) Lock(key string) { l.stripe(key).Lock() }

// Unlock unlocks the stripe owning key.
func (l *KeyLocks) Unlock(key string) { l.stripe(key).Unlock() }
