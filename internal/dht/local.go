package dht

import (
	"context"
	"sync"
)

// Local is a single-process DHT: one flat map standing in for the whole
// ring. It gives the index layers exactly the put/get semantics of a real
// substrate while keeping experiments fast and deterministic, which is
// what makes paper-scale (2^20-record) runs feasible on one machine.
//
// The zero value is not usable; create with NewLocal.
type Local struct {
	mu   sync.RWMutex
	data map[string]Value
}

var (
	_ DHT         = (*Local)(nil)
	_ Batcher     = (*Local)(nil)
	_ Conditional = (*Local)(nil)
)

// NewLocal returns an empty single-process DHT.
func NewLocal() *Local {
	return &Local{data: make(map[string]Value)}
}

// Get implements DHT.
func (l *Local) Get(ctx context.Context, key string) (Value, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	l.mu.RLock()
	defer l.mu.RUnlock()
	v, ok := l.data[key]
	if !ok {
		return nil, ErrNotFound
	}
	return v, nil
}

// Put implements DHT.
func (l *Local) Put(ctx context.Context, key string, v Value) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.data[key] = v
	return nil
}

// Take implements DHT.
func (l *Local) Take(ctx context.Context, key string) (Value, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	v, ok := l.data[key]
	if !ok {
		return nil, ErrNotFound
	}
	delete(l.data, key)
	return v, nil
}

// Remove implements DHT.
func (l *Local) Remove(ctx context.Context, key string) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.data, key)
	return nil
}

// Write implements DHT.
func (l *Local) Write(ctx context.Context, key string, v Value) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.data[key]; !ok {
		return ErrNotFound
	}
	l.data[key] = v
	return nil
}

// PutIf implements Conditional: the compare and the swap happen under one
// lock acquisition, the single-process analogue of the responsible peer
// applying the CAS atomically.
func (l *Local) PutIf(ctx context.Context, key string, v Value, ifEpoch uint64) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	cur, ok := l.data[key]
	if !ok {
		return casConflict(key, false, 0)
	}
	if e := EpochOf(cur); e != ifEpoch {
		return casConflict(key, true, e)
	}
	l.data[key] = v
	return nil
}

// CreateIf implements Conditional.
func (l *Local) CreateIf(ctx context.Context, key string, v Value) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if cur, ok := l.data[key]; ok {
		return casConflict(key, true, EpochOf(cur))
	}
	l.data[key] = v
	return nil
}

// RemoveIf implements Conditional; removing an absent key succeeds.
func (l *Local) RemoveIf(ctx context.Context, key string, ifEpoch uint64) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	cur, ok := l.data[key]
	if !ok {
		return nil
	}
	if e := EpochOf(cur); e != ifEpoch {
		return casConflict(key, true, e)
	}
	delete(l.data, key)
	return nil
}

// WriteIf implements Conditional: the free in-place rewrite, guarded.
func (l *Local) WriteIf(ctx context.Context, key string, v Value, ifEpoch uint64) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	cur, ok := l.data[key]
	if !ok {
		return ErrNotFound
	}
	if e := EpochOf(cur); e != ifEpoch {
		return casConflict(key, true, e)
	}
	l.data[key] = v
	return nil
}

// GetBatch implements Batcher: one lock pass serves the whole batch, the
// single-process analogue of one round trip.
func (l *Local) GetBatch(ctx context.Context, keys []string) ([]Value, []error) {
	vals := make([]Value, len(keys))
	errs := make([]error, len(keys))
	if err := ctxErr(ctx); err != nil {
		for i := range errs {
			errs[i] = err
		}
		return vals, errs
	}
	l.mu.RLock()
	defer l.mu.RUnlock()
	for i, k := range keys {
		v, ok := l.data[k]
		if !ok {
			errs[i] = ErrNotFound
			continue
		}
		vals[i] = v
	}
	return vals, errs
}

// PutBatch implements Batcher. Pairs apply in slice order, so a duplicate
// key's last occurrence wins.
func (l *Local) PutBatch(ctx context.Context, kvs []KV) []error {
	errs := make([]error, len(kvs))
	if err := ctxErr(ctx); err != nil {
		for i := range errs {
			errs[i] = err
		}
		return errs
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, kv := range kvs {
		l.data[kv.Key] = kv.Val
	}
	return errs
}

// Len returns the number of stored keys.
func (l *Local) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.data)
}

// Keys returns a copy of all stored keys, in no particular order.
func (l *Local) Keys() []string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	keys := make([]string, 0, len(l.data))
	for k := range l.data {
		keys = append(keys, k)
	}
	return keys
}
