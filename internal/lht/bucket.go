// Package lht implements the LHT index engine: the paper's core
// contribution (sections 3-7). It materializes the space-partition tree as
// leaf buckets named onto a generic DHT by the naming function, and
// implements lookup (Algorithm 2), insertion with incremental tree growth
// (Algorithm 1), deletion with the dual merge, range queries (Algorithms
// 3-4) and min/max queries (Theorem 3).
//
// The engine is a client of the dht.DHT substrate interface and keeps no
// state of its own beyond configuration and maintenance statistics, which
// is exactly the over-DHT property the paper argues for: the DHT handles
// peer membership, routing and robustness; LHT pays maintenance only for
// tree structure adjustment.
package lht

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
	"time"

	"lht/internal/bitlabel"
	"lht/internal/keyspace"
	"lht/internal/record"
)

// Bucket is a leaf bucket (section 3.3): the atomic unit LHT maps into the
// DHT. It consists of the leaf label, from which the peer reconstructs the
// local tree, and the record store.
//
// The bucket's DHT key is Label.Name().Key() (the naming function); the
// label itself is carried inside the bucket so queries can rebuild the
// local tree and range forwarding can verify what it fetched.
type Bucket struct {
	// Label is the leaf's label in the partition tree.
	Label bitlabel.Label
	// Records are the stored data records, in no particular order.
	Records []record.Record
	// Epoch is a per-bucket version, bumped on every mutation the index
	// performs (record write-backs, splits, merges; children continue
	// their parent's count). Recovery uses it to order two overlapping
	// buckets: the higher epoch is the live structure, the lower a stale
	// remnant of a torn mutation or resurrected replica.
	Epoch uint64
	// Pending is the write-ahead intent of an in-flight structural
	// mutation (split or merge). It is recorded in the surviving bucket
	// before the multi-step rewrite begins and cleared by the final step,
	// so every intermediate state of a crashed mutation is detectable
	// from the bucket alone; see Index.Scrub and the lookup read-repair.
	Pending Pending
	// Rate is the leaf's decaying request-rate estimate in requests per
	// second, and RateAt the UnixNano timestamp of its last update. Both
	// are maintained only when the load-balancing plane is enabled
	// (Config.HotSplitRate > 0) and stay zero otherwise, so buckets
	// written with the plane off carry no trace of it. Updated on the
	// index's CAS commit path; splits halve it into each child and
	// merges sum it, so the estimate follows the structure it measures.
	Rate float64
	// RateAt timestamps Rate (UnixNano); zero means never touched.
	RateAt int64
}

// rateTau is the rate estimator's time constant: the estimate forgets
// at e^(-dt/tau) and each touch adds 1/tau (per second), so under a
// steady stream of lambda requests/sec the estimate converges to
// ~lambda. One second balances reactivity (a burst registers within a
// few hundred requests) against stability (a lull of a few seconds
// fully cools a leaf).
const rateTau = float64(time.Second)

// bumpRate folds one request at time now (UnixNano) into the decaying
// rate estimate. Calls with a frozen clock (dt == 0) skip the decay, so
// deterministic tests observe Rate == touch count exactly.
func (b *Bucket) bumpRate(now int64) {
	if b.RateAt != 0 && now > b.RateAt {
		b.Rate *= math.Exp(-float64(now-b.RateAt) / rateTau)
	}
	b.Rate += 1e9 / rateTau
	b.RateAt = now
}

// RateNow returns the rate estimate decayed to time now without
// recording a touch.
func (b *Bucket) RateNow(now int64) float64 {
	if b.RateAt == 0 || now <= b.RateAt {
		return b.Rate
	}
	return b.Rate * math.Exp(-float64(now-b.RateAt)/rateTau)
}

// PendingKind enumerates the structural mutations that leave a
// write-ahead intent in a bucket.
type PendingKind uint8

const (
	// PendingNone marks a bucket with no mutation in flight.
	PendingNone PendingKind = iota
	// PendingSplit marks a leaf about to split (Algorithm 1): the
	// partition is deterministic from the bucket itself, so the intent
	// needs no extra data. Until cleared, the remote half may or may not
	// yet exist under the leaf's own label key.
	PendingSplit
	// PendingMerge marks a merged bucket whose obsolete child has not yet
	// been removed from the DHT.
	PendingMerge
)

// Pending is a bucket's write-ahead intent. The zero value means no
// mutation is in flight.
type Pending struct {
	// Kind says which mutation was started.
	Kind PendingKind
	// RemoveKey, for merges, is the DHT key of the obsolete child bucket
	// to delete once the merged bucket is durable.
	RemoveKey string
	// PeerEpoch, for merges, is the epoch the obsolete child had when the
	// merge began. Recovery rolls the merge forward only if the child is
	// unchanged; a newer epoch means another client wrote to it after the
	// crash, so the merge is rolled back instead.
	PeerEpoch uint64
}

// Torn reports whether the bucket carries an uncleared mutation intent,
// i.e. a writer crashed between the intent and the final write.
func (b *Bucket) Torn() bool { return b.Pending.Kind != PendingNone }

// DHTEpoch implements dht.Epocher: conditional substrate writes compare
// the stored bucket's epoch against the writer's expectation, which is
// what serializes concurrent index mutations of one bucket.
func (b *Bucket) DHTEpoch() uint64 { return b.Epoch }

// Weight is the storage occupancy of the bucket: the record count plus one
// slot for the leaf label (section 9.2 notes the label occupies one record
// slot, which is what shifts the average alpha to 1/2 + 1/(2*theta)).
func (b *Bucket) Weight() int { return len(b.Records) + 1 }

// Interval returns the dyadic key interval this leaf covers.
func (b *Bucket) Interval() keyspace.Interval { return keyspace.IntervalOf(b.Label) }

// Contains reports whether the bucket's interval covers the data key.
func (b *Bucket) Contains(delta float64) bool { return b.Interval().Contains(delta) }

// Clone returns a deep copy of the bucket.
func (b *Bucket) Clone() *Bucket {
	out := &Bucket{Label: b.Label, Epoch: b.Epoch, Pending: b.Pending, Rate: b.Rate, RateAt: b.RateAt}
	if b.Records != nil {
		out.Records = make([]record.Record, len(b.Records))
		copy(out.Records, b.Records)
	}
	return out
}

// String summarizes the bucket for logs and test failures.
func (b *Bucket) String() string {
	return fmt.Sprintf("bucket(%s, %d records)", b.Label, len(b.Records))
}

// bucketWire is the serialized form of a Bucket. Epoch, Pending and the
// rate fields are zero-valued on clean (or load-plane-off) buckets,
// which gob omits, so snapshots written before those planes existed
// decode unchanged.
type bucketWire struct {
	Label   bitlabel.Label
	Records []record.Record
	Epoch   uint64
	Pending Pending
	Rate    float64
	RateAt  int64
}

// EncodeBucket serializes a bucket for substrates that cross process
// boundaries (Chord/Kademlia byte stores, the TCP cluster).
func EncodeBucket(b *Bucket) ([]byte, error) {
	var buf bytes.Buffer
	w := bucketWire{Label: b.Label, Records: b.Records, Epoch: b.Epoch, Pending: b.Pending, Rate: b.Rate, RateAt: b.RateAt}
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, fmt.Errorf("encode bucket: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeBucket is the inverse of EncodeBucket.
func DecodeBucket(data []byte) (*Bucket, error) {
	var w bucketWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return nil, fmt.Errorf("decode bucket: %w", err)
	}
	return &Bucket{Label: w.Label, Records: w.Records, Epoch: w.Epoch, Pending: w.Pending, Rate: w.Rate, RateAt: w.RateAt}, nil
}
