package metrics

import (
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// WritePrometheus renders the snapshot in Prometheus text exposition
// format (version 0.0.4). Output is deterministic for a given snapshot:
// fixed metric order, ops and phases in enum order, buckets ascending.
// Operation classes with no activity are omitted to keep the exposition
// proportional to what actually ran.
func WritePrometheus(w io.Writer, s Snapshot) error {
	bw := &errWriter{w: w}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("lht_dht_lookups_total", "DHT-lookups issued (paper section 8.1 bandwidth measure).", s.Lookup.Total)
	counter("lht_dht_failed_gets_total", "DHT-gets that returned not-found.", s.Lookup.FailedGets)
	counter("lht_moved_records_total", "Record slots moved between peers.", s.Lookup.MovedRecords)
	counter("lht_splits_total", "Leaf splits performed.", s.Lookup.Splits)
	counter("lht_merges_total", "Leaf merges performed.", s.Lookup.Merges)
	counter("lht_maint_lookups_total", "Lookups spent on splits and merges.", s.Lookup.Maintenance)
	counter("lht_cache_hits_total", "Leaf-cache probes resolved in one DHT-get.", s.Cache.Hits)
	counter("lht_cache_misses_total", "Lookups with no leaf-cache entry.", s.Cache.Misses)
	counter("lht_cache_stale_total", "Leaf-cache probes that detected a stale entry.", s.Cache.Stale)
	counter("lht_retries_total", "Policy-layer retries after transient faults.", s.Retry.Retries)
	counter("lht_cancellations_total", "Operations ended by context cancellation.", s.Retry.Cancellations)
	counter("lht_deadline_exceeded_total", "Operations ended by context deadline expiry.", s.Retry.DeadlineExceeded)
	counter("lht_batch_ops_total", "Native batched round trips issued.", s.Batch.Ops)
	counter("lht_batched_keys_total", "Keys carried inside native batches.", s.Batch.Keys)
	counter("lht_torn_splits_total", "Torn split intents detected.", s.Repair.TornSplits)
	counter("lht_torn_merges_total", "Torn merge intents detected.", s.Repair.TornMerges)
	counter("lht_repairs_total", "Torn states completed or rolled back.", s.Repair.Repairs)
	counter("lht_scrub_lookups_total", "Lookups issued by Scrub walks.", s.Repair.ScrubLookups)
	counter("lht_cas_conflicts_total", "Conditional writes that lost their compare-and-swap.", s.Write.CASConflicts)
	counter("lht_writer_retries_total", "Index mutation rounds re-run after a CAS conflict.", s.Write.WriterRetries)
	counter("lht_cas_fallbacks_total", "Conditional ops emulated by fetch-verify-write.", s.Write.CASFallbacks)
	counter("lht_hot_splits_total", "Leaf splits triggered by request rate, not capacity.", s.Load.HotSplits)
	counter("lht_coalesced_gets_total", "DHT-gets absorbed by singleflight coalescing.", s.Load.CoalescedGets)
	counter("lht_spread_reads_total", "Reads served starting at a non-primary replica.", s.Load.SpreadReads)
	counter("lht_hedged_gets_total", "Duplicate reads launched after the hedge delay.", s.Health.HedgedGets)
	counter("lht_hedge_wins_total", "Hedges that answered before the original attempt.", s.Health.HedgeWins)
	counter("lht_breaker_opens_total", "Circuit-breaker transitions into the open state.", s.Health.BreakerOpens)
	counter("lht_breaker_fast_fails_total", "Operations rejected instantly by an open breaker.", s.Health.BreakerFastFails)
	counter("lht_failovers_total", "Reads rerouted off an unhealthy holder.", s.Health.Failovers)
	counter("lht_gossip_rounds_total", "Anti-entropy membership exchanges performed.", s.Membership.GossipRounds)
	counter("lht_view_refreshes_total", "Membership views applied to a client routing ring.", s.Membership.ViewRefreshes)
	counter("lht_hints_parked_total", "Hinted handoffs parked for an unreachable holder.", s.Membership.HintsParked)
	counter("lht_hints_replayed_total", "Parked hints delivered to their returned holder.", s.Membership.HintsReplayed)
	counter("lht_replica_probes_total", "Per-holder existence probes issued by re-replication.", s.Membership.ReplicaProbes)
	counter("lht_replica_repairs_total", "Missing replica copies restored on their owners.", s.Membership.ReplicaRepairs)

	active := func(o OpStats) bool { return o.Count != 0 || o.Lookups() != 0 }

	fmt.Fprintf(bw, "# HELP lht_op_total Completed index operations per class.\n# TYPE lht_op_total counter\n")
	for op := Op(0); op < NumOps; op++ {
		if o := s.Latency.Ops[op]; active(o) {
			fmt.Fprintf(bw, "lht_op_total{op=%q} %d\n", op, o.Count)
		}
	}
	fmt.Fprintf(bw, "# HELP lht_op_errors_total Index operations per class that returned an error.\n# TYPE lht_op_errors_total counter\n")
	for op := Op(0); op < NumOps; op++ {
		if o := s.Latency.Ops[op]; active(o) {
			fmt.Fprintf(bw, "lht_op_errors_total{op=%q} %d\n", op, o.Errors)
		}
	}
	fmt.Fprintf(bw, "# HELP lht_phase_lookups_total DHT-lookups attributed to an operation class and algorithm phase.\n# TYPE lht_phase_lookups_total counter\n")
	for op := Op(0); op < NumOps; op++ {
		o := s.Latency.Ops[op]
		if !active(o) {
			continue
		}
		for ph := Phase(0); ph < NumPhases; ph++ {
			if n := o.Phases[ph]; n != 0 {
				fmt.Fprintf(bw, "lht_phase_lookups_total{op=%q,phase=%q} %d\n", op, ph, n)
			}
		}
	}
	fmt.Fprintf(bw, "# HELP lht_op_latency_seconds End-to-end index operation latency per class.\n# TYPE lht_op_latency_seconds histogram\n")
	for op := Op(0); op < NumOps; op++ {
		o := s.Latency.Ops[op]
		if o.Hist.Count() == 0 {
			continue
		}
		var cum int64
		for i, n := range o.Hist.Counts {
			cum += n
			if n == 0 && i != NumLatencyBuckets-1 {
				continue
			}
			le := "+Inf"
			if i != NumLatencyBuckets-1 {
				le = strconv.FormatFloat(float64(BucketUpper(i))/1e9, 'g', -1, 64)
			}
			fmt.Fprintf(bw, "lht_op_latency_seconds_bucket{op=%q,le=%q} %d\n", op, le, cum)
		}
		fmt.Fprintf(bw, "lht_op_latency_seconds_sum{op=%q} %g\n", op, float64(o.Hist.Sum)/1e9)
		fmt.Fprintf(bw, "lht_op_latency_seconds_count{op=%q} %d\n", op, o.Hist.Count())
	}
	return bw.err
}

// errWriter latches the first write error so the exposition loop stays
// unconditional.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return len(p), nil
	}
	n, err := e.w.Write(p)
	e.err = err
	return n, nil
}

// Handler serves the snapshot function in Prometheus text format.
func Handler(snap func() Snapshot) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, snap())
	})
}

// NewMux returns an http.ServeMux serving /metrics in Prometheus text
// format plus the standard net/http/pprof profiling endpoints under
// /debug/pprof/, the export surface both lht-node and lht-bench mount.
func NewMux(snap func() Snapshot) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(snap))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
