// Package chord implements the Chord DHT (Stoica et al., SIGCOMM 2001):
// a ring overlay with finger tables giving O(log N)-hop lookups,
// successor lists for fault tolerance, and the stabilization protocol for
// churn. It is the repository's primary DHT substrate, standing in for
// the Bamboo ring the paper deployed on (DESIGN.md section 3 documents the
// substitution); LHT itself only ever sees the generic put/get interface.
//
// Nodes communicate over an internal/simnet network: every logical RPC
// charges one message, so experiments can report physical traffic and
// per-lookup hop counts. The protocol is step-driven - the harness decides
// when stabilization rounds run - which keeps every experiment
// deterministic and race-free.
package chord

import (
	"context"
	"sync"

	"lht/internal/dht"
	"lht/internal/hashring"
	"lht/internal/simnet"
)

// Ref identifies a node: its ring identifier and network address.
type Ref struct {
	ID   hashring.ID
	Addr string
}

// zeroRef is the unset reference.
var zeroRef Ref

// Node is one Chord peer. All exported behaviour goes through Ring; the
// rpc* methods are the node's wire protocol, invoked by other nodes (and
// the ring's client side) after a simnet.Send charged the message.
type Node struct {
	ref Ref
	net *simnet.Network

	mu      sync.Mutex
	pred    Ref
	hasPred bool
	succ    []Ref // successor list; succ[0] is the immediate successor
	fingers [hashring.Bits]Ref
	data    map[string]dht.Value

	succListLen int

	// onStore, when set, is invoked after the node stores keys — with
	// n.mu released, so the callback may take its own locks. The Ring
	// installs it to maintain the per-key holder registry that scopes
	// stale-copy retirement (Ring.retireStale): every path that creates a
	// copy (client stores, stabilization handoffs, graceful-leave
	// transfers) funnels through rpcStore/rpcStoreBatch, so the registry
	// sees them all.
	onStore func(keys ...string)
}

func newNode(ref Ref, net *simnet.Network, succListLen int) *Node {
	n := &Node{
		ref:         ref,
		net:         net,
		data:        make(map[string]dht.Value),
		succListLen: succListLen,
	}
	n.succ = []Ref{ref} // a lone node is its own successor
	return n
}

// Ref returns the node's identity.
func (n *Node) Ref() Ref { return n.ref }

// call dials a peer, charging one message. Calling a node's own address
// is free: local work costs no bandwidth.
func (n *Node) call(addr string) (*Node, error) {
	if addr == n.ref.Addr {
		return n, nil
	}
	v, err := n.net.SendFrom(n.ref.Addr, addr)
	if err != nil {
		return nil, err
	}
	return v.(*Node), nil
}

// --- wire protocol -------------------------------------------------------

// rpcPing answers liveness probes (reaching the node at all is the probe;
// the method exists so call sites read as intent).
func (n *Node) rpcPing() {}

// rpcNextHop is one step of the iterative lookup for id: done reports
// that id lands on this node's immediate successor; otherwise next is the
// closest preceding candidate from the finger table (falling back to the
// successor, which guarantees linear progress around the ring even with
// cold fingers).
func (n *Node) rpcNextHop(id hashring.ID) (done bool, succ Ref, next Ref) {
	n.mu.Lock()
	defer n.mu.Unlock()
	s := n.succ[0]
	if hashring.Between(id, n.ref.ID, s.ID) {
		return true, s, zeroRef
	}
	return false, s, n.closestPrecedingLocked(id)
}

// closestPrecedingLocked scans the finger table and successor list for
// the node closest to id while strictly preceding it.
func (n *Node) closestPrecedingLocked(id hashring.ID) Ref {
	best := n.succ[0]
	consider := func(c Ref) {
		if c == zeroRef || c.Addr == n.ref.Addr {
			return
		}
		if !hashring.StrictBetween(c.ID, n.ref.ID, id) {
			return
		}
		if best == zeroRef || best.Addr == n.ref.Addr ||
			!hashring.StrictBetween(best.ID, n.ref.ID, id) ||
			hashring.Distance(c.ID, id) < hashring.Distance(best.ID, id) {
			best = c
		}
	}
	for i := len(n.fingers) - 1; i >= 0; i-- {
		consider(n.fingers[i])
	}
	for _, s := range n.succ {
		consider(s)
	}
	return best
}

// rpcSuccessorList returns a copy of the successor list.
func (n *Node) rpcSuccessorList() []Ref {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]Ref, len(n.succ))
	copy(out, n.succ)
	return out
}

// rpcPredecessor returns the node's current predecessor, if known.
func (n *Node) rpcPredecessor() (Ref, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.pred, n.hasPred
}

// rpcNotify tells the node that p might be its predecessor (Chord's
// stabilization). Accepting a new predecessor hands off the keys that now
// belong to p: everything outside (p, n]. The handoff batch costs one
// message.
func (n *Node) rpcNotify(p Ref) {
	n.mu.Lock()
	accept := !n.hasPred || hashring.StrictBetween(p.ID, n.pred.ID, n.ref.ID)
	if !accept || p.Addr == n.ref.Addr {
		n.mu.Unlock()
		return
	}
	n.pred = p
	n.hasPred = true
	var handoff map[string]dht.Value
	for k, v := range n.data {
		if !hashring.Between(hashring.HashKey(k), p.ID, n.ref.ID) {
			if handoff == nil {
				handoff = make(map[string]dht.Value)
			}
			handoff[k] = v
			delete(n.data, k)
		}
	}
	n.mu.Unlock()
	if len(handoff) == 0 {
		return
	}
	if peer, err := n.call(p.Addr); err == nil {
		peer.rpcStoreBatch(handoff)
	}
	// If p is unreachable the batch is dropped, as a real transfer would
	// be; replication (Ring.Config.Replicas) covers such losses.
}

// rpcStoreBatch ingests a key handoff.
func (n *Node) rpcStoreBatch(kv map[string]dht.Value) {
	keys := make([]string, 0, len(kv))
	n.mu.Lock()
	for k, v := range kv {
		n.data[k] = v
		keys = append(keys, k)
	}
	n.mu.Unlock()
	if n.onStore != nil && len(keys) > 0 {
		n.onStore(keys...)
	}
}

// rpcStore stores one value.
func (n *Node) rpcStore(key string, v dht.Value) {
	n.mu.Lock()
	n.data[key] = v
	n.mu.Unlock()
	if n.onStore != nil {
		n.onStore(key)
	}
}

// rpcFetch retrieves one value.
func (n *Node) rpcFetch(key string) (dht.Value, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	v, ok := n.data[key]
	return v, ok
}

// rpcTake removes and returns one value.
func (n *Node) rpcTake(key string) (dht.Value, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	v, ok := n.data[key]
	if ok {
		delete(n.data, key)
	}
	return v, ok
}

// rpcRemove deletes one value.
func (n *Node) rpcRemove(key string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.data, key)
}

// rpcWriteLocal rewrites a value the node already stores.
func (n *Node) rpcWriteLocal(key string, v dht.Value) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.data[key]; !ok {
		return false
	}
	n.data[key] = v
	return true
}

// --- maintenance ---------------------------------------------------------

// stabilize runs one round of Chord stabilization: verify the successor,
// adopt a closer one if its predecessor slipped in, refresh the successor
// list, and notify the successor of our existence.
func (n *Node) stabilize() {
	n.mu.Lock()
	succs := make([]Ref, len(n.succ))
	copy(succs, n.succ)
	n.mu.Unlock()

	// Find the first live successor, skipping failed ones.
	var (
		succ *Node
		ref  Ref
	)
	for _, s := range succs {
		if s.Addr == n.ref.Addr {
			succ, ref = n, s
			break
		}
		if peer, err := n.call(s.Addr); err == nil {
			succ, ref = peer, s
			break
		}
	}
	if succ == nil {
		// Every successor is gone; fall back to self until a notify or
		// finger repair reconnects us.
		n.mu.Lock()
		n.succ = []Ref{n.ref}
		n.mu.Unlock()
		return
	}

	if x, ok := succ.rpcPredecessor(); ok && hashring.StrictBetween(x.ID, n.ref.ID, ref.ID) {
		if peer, err := n.call(x.Addr); err == nil {
			succ, ref = peer, x
		}
	}

	list := succ.rpcSuccessorList()
	newList := make([]Ref, 0, n.succListLen)
	newList = append(newList, ref)
	for _, s := range list {
		if len(newList) >= n.succListLen {
			break
		}
		if s.Addr != n.ref.Addr && s != ref {
			newList = append(newList, s)
		}
	}
	n.mu.Lock()
	n.succ = newList
	n.mu.Unlock()

	succ.rpcNotify(n.ref)
}

// checkPredecessor clears a failed predecessor so a live one can notify
// its way in.
func (n *Node) checkPredecessor() {
	n.mu.Lock()
	pred, has := n.pred, n.hasPred
	n.mu.Unlock()
	if !has || pred.Addr == n.ref.Addr {
		return
	}
	if _, err := n.call(pred.Addr); err != nil {
		n.mu.Lock()
		n.hasPred = false
		n.mu.Unlock()
	}
}

// fixFinger refreshes the i-th finger by looking up its start point from
// this node.
func (n *Node) fixFinger(i int) {
	target := hashring.FingerStart(n.ref.ID, i)
	ref, _, err := n.findSuccessor(context.Background(), target, 0)
	if err != nil {
		return
	}
	n.mu.Lock()
	n.fingers[i] = ref
	n.mu.Unlock()
}

// findSuccessor resolves the node responsible for id by iterative
// routing, starting from this node. One hop is one message round trip:
// dialing a peer and asking it for its next-hop decision, so the context
// is checked once per hop and cancellation stops the walk promptly.
// extraHops seeds the counter so retries accumulate.
func (n *Node) findSuccessor(ctx context.Context, id hashring.ID, extraHops int) (Ref, int, error) {
	hops := extraHops
	cur := n
	curRef := n.ref
	for i := 0; i < 4*hashring.Bits; i++ {
		if err := ctx.Err(); err != nil {
			return zeroRef, hops, err
		}
		done, succ, next := cur.rpcNextHop(id)
		if done {
			return succ, hops, nil
		}
		step := next
		if step == zeroRef || step.Addr == curRef.Addr {
			step = succ // guaranteed progress along the ring
		}
		if step.Addr == curRef.Addr {
			// The node knows nothing beyond itself; its successor is the
			// best answer available.
			return succ, hops, nil
		}
		peer, err := n.call(step.Addr)
		hops++ // a timeout costs bandwidth too
		if err != nil {
			// Route around the failure: the current node's successor
			// list usually holds a live alternative.
			peer = nil
			hops++ // querying cur for its successor list
			for _, alt := range cur.rpcSuccessorList() {
				if alt.Addr == curRef.Addr {
					continue
				}
				p, e := n.call(alt.Addr)
				hops++
				if e == nil {
					peer, step = p, alt
					break
				}
			}
			if peer == nil {
				return zeroRef, hops, err
			}
		}
		cur, curRef = peer, step
	}
	return zeroRef, hops, errLookupDiverged
}
