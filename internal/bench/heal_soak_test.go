package bench

// The membership-churn soak: every concurrent moving part of the
// self-healing plane running at once — server-side gossip loops, the
// client's background view refresh, hinted handoff, re-replicating
// scrubs, and a query fleet — while one node flaps on the A11 chaos
// schedule. The assertions are deliberately light (the cluster must end
// healthy); the test earns its keep under `go test -race`, where any
// locking mistake between the planes surfaces as a report.

import (
	"context"
	"sync"
	"testing"
	"time"

	"lht/internal/dht"
	"lht/internal/lht"
	"lht/internal/netchaos"
	"lht/internal/tcpnet"
	"lht/internal/workload"
)

func TestMembershipChurnSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second concurrency soak")
	}
	o := Options{Theta: 16, Depth: 12, Trials: 1, Queries: 40, Seed: 5}.WithDefaults()
	const size = 192
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	srvs, mems, addrs, err := bootHealCluster(o, healNodes)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, s := range srvs {
			_ = s.Close()
		}
	}()
	for _, m := range mems {
		go m.Run(ctx, 20*time.Millisecond)
	}

	// The flap schedule from A11: the target refuses dials and severs
	// connections on a 50% duty cycle, seeded so reruns flap identically.
	chaos := netchaos.New(o.Seed)
	chaos.Add(chaosScenarios[2].rule(addrs[0]))

	c, err := tcpnet.Dial(ctx, tcpnet.ClusterConfig{
		Seeds:    addrs,
		Replicas: healReplicas,
		Dialer:   chaos,
		Health: &dht.BreakerConfig{
			Threshold:   3,
			Cooldown:    50 * time.Millisecond,
			MaxCooldown: 250 * time.Millisecond,
			Seed:        o.Seed,
		},
		HintedHandoff:   true,
		RefreshInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	ix, err := lht.New(c, lht.Config{
		SplitThreshold: o.Theta,
		Depth:          o.Depth,
		LeafCache:      true,
		HedgeAfter:     chaosHedgeAfter,
		Rereplicate:    true,
	})
	if err != nil {
		t.Fatal(err)
	}

	recs := workload.NewGenerator(workload.Uniform, o.Seed).Records(size)
	keys := make([]float64, len(recs))
	for i, r := range recs {
		keys[i] = r.Key
	}
	if _, err := ix.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if _, _, err := ix.Search(k); err != nil {
			t.Fatal(err)
		}
	}
	chaos.Start()

	// Queries, writes, and re-replicating scrubs race the flapping node
	// and each other for a fixed wall-clock window. Operation errors are
	// expected (the victim is down half the time); crashes and races are
	// not.
	soakCtx, soakDone := context.WithTimeout(ctx, 2*time.Second)
	defer soakDone()
	var wg sync.WaitGroup
	for w := 0; w < chaosWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			qs := healSchedule(o, keys, w%len(healScenarios), w)
			for i := 0; soakCtx.Err() == nil; i++ {
				octx, ocancel := context.WithTimeout(soakCtx, chaosOpDeadline)
				if w == 0 && i%16 == 3 {
					_, _ = ix.InsertContext(octx, workload.NewGenerator(workload.Uniform, o.Seed+int64(i)).Records(1)[0])
				} else {
					_, _, _ = ix.SearchContext(octx, qs[i%len(qs)])
				}
				ocancel()
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for soakCtx.Err() == nil {
			_, _ = ix.Scrub(soakCtx)
		}
	}()
	wg.Wait()

	// Chaos off, flap settled: the cluster must converge back to healthy —
	// a clean scrub and every original key answerable.
	chaos.Clear()
	deadline := time.Now().Add(healConvergeBudget)
	for {
		rep, err := ix.Scrub(ctx)
		if err == nil && rep.Clean() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster never settled after chaos: rep=%v err=%v", rep, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	for _, k := range keys {
		if _, _, err := ix.SearchContext(ctx, k); err != nil {
			t.Fatalf("post-soak search %v: %v", k, err)
		}
	}
}
