package lht

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"lht/internal/dht"
	"lht/internal/metrics"
	"lht/internal/record"
)

// TestTraceSinkParallelRangeRace hammers one bounded Ring sink from
// concurrent parallel range queries and point reads (run with -race):
// every branch goroutine of every in-flight query emits op events into
// the same ring while readers drain it.
func TestTraceSinkParallelRangeRace(t *testing.T) {
	const retain = 128
	ring := metrics.NewRing(retain)
	ix, err := New(dht.NewLocal(), Config{
		SplitThreshold: 8,
		MergeThreshold: 0,
		Depth:          20,
		ParallelRange:  true,
		TraceSink:      ring,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		if _, err := ix.Insert(record.Record{Key: rng.Float64()}); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for q := 0; q < 25; q++ {
				lo := r.Float64() * 0.8
				if _, _, err := ix.Range(lo, lo+0.2); err != nil {
					t.Error(err)
					return
				}
				if _, _, err := ix.Search(r.Float64()); err != nil && !errors.Is(err, ErrKeyNotFound) {
					t.Error(err)
					return
				}
			}
		}(int64(g) + 1)
	}
	// Concurrent readers: draining the ring must be safe while writers
	// are still emitting.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			_ = ring.Events()
			_ = ring.Len()
		}
	}()
	wg.Wait()
	<-done

	if ring.Total() == 0 {
		t.Fatal("trace ring saw no op events")
	}
	if got := ring.Len(); got != retain {
		t.Fatalf("ring retained %d events, want the full capacity %d", got, retain)
	}
	for _, ev := range ring.Events() {
		if ev.Kind == "" {
			t.Fatalf("event with empty kind: %+v", ev)
		}
	}
}
