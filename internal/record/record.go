// Package record defines the data unit indexed by LHT and PHT.
//
// A record is identified by a distinct data key delta in [0, 1) (paper
// section 3.1) and carries an opaque payload. Applications map their own
// attribute domains (timestamps, prices, coordinates via a space-filling
// curve) into [0, 1) before indexing.
package record

import (
	"fmt"
	"sort"
)

// Record is one indexed data unit.
type Record struct {
	// Key is the data key delta in [0, 1). Records are unique by Key.
	Key float64
	// Value is the application payload; the index never interprets it.
	Value []byte
}

// String renders the record for logs and test failures.
func (r Record) String() string {
	return fmt.Sprintf("{%g: %q}", r.Key, r.Value)
}

// SortByKey sorts records in ascending key order in place.
func SortByKey(rs []Record) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].Key < rs[j].Key })
}

// FindByKey returns the index of the record with the given key in rs, or
// -1 if absent. rs need not be sorted.
func FindByKey(rs []Record, key float64) int {
	for i := range rs {
		if rs[i].Key == key {
			return i
		}
	}
	return -1
}

// FilterRange returns the records whose keys fall in [lo, hi), appended to
// dst (which may be nil).
func FilterRange(dst, rs []Record, lo, hi float64) []Record {
	for _, r := range rs {
		if r.Key >= lo && r.Key < hi {
			dst = append(dst, r)
		}
	}
	return dst
}
