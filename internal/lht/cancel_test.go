package lht

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"lht/internal/dht"
	"lht/internal/record"
)

// blockingDHT lets a configurable number of Gets through, then parks
// every further Get on its context until cancellation, simulating a
// substrate that stops responding mid-operation. inflight tracks how many
// fetches are currently parked.
type blockingDHT struct {
	inner    dht.DHT
	blocking atomic.Bool
	allow    atomic.Int32 // Gets still allowed through while blocking
	inflight atomic.Int32
}

func (b *blockingDHT) Get(ctx context.Context, key string) (dht.Value, error) {
	if b.blocking.Load() && b.allow.Add(-1) < 0 {
		b.inflight.Add(1)
		defer b.inflight.Add(-1)
		<-ctx.Done()
		return nil, ctx.Err()
	}
	return b.inner.Get(ctx, key)
}

func (b *blockingDHT) Put(ctx context.Context, key string, v dht.Value) error {
	return b.inner.Put(ctx, key, v)
}

func (b *blockingDHT) Take(ctx context.Context, key string) (dht.Value, error) {
	return b.inner.Take(ctx, key)
}

func (b *blockingDHT) Remove(ctx context.Context, key string) error {
	return b.inner.Remove(ctx, key)
}

func (b *blockingDHT) Write(ctx context.Context, key string, v dht.Value) error {
	return b.inner.Write(ctx, key, v)
}

// TestRangeCancellationStopsParallelFetches is the end-to-end
// cancellation check the refactor promises: a full-space range query over
// a many-leaf tree fans out parallel fetches; when the substrate stops
// responding and the caller cancels, the query returns context.Canceled
// promptly and every parked fetch goroutine is released.
func TestRangeCancellationStopsParallelFetches(t *testing.T) {
	b := &blockingDHT{inner: dht.NewLocal()}
	ix, err := New(b, Config{SplitThreshold: 4, MergeThreshold: 0, Depth: 16})
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	for i := 0; i < n; i++ {
		if _, err := ix.Insert(record.Record{Key: (float64(i) + 0.5) / n}); err != nil {
			t.Fatal(err)
		}
	}

	// Let the LCA fetch through so the query reaches its parallel
	// forwarding phase, then park everything after it.
	b.allow.Store(1)
	b.blocking.Store(true)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, _, err := ix.RangeContext(ctx, 0, 1)
		done <- err
	}()

	// Wait for at least one fetch to park on the stalled substrate.
	waitUntil(t, "a fetch to park", func() bool { return b.inflight.Load() >= 1 })
	cancel()

	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("RangeContext = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RangeContext did not return after cancellation")
	}

	// Every parked goroutine must be released, not leaked.
	waitUntil(t, "parked fetches to drain", func() bool { return b.inflight.Load() == 0 })

	// The instrumented layer saw the cancelled operations.
	if s := ix.Metrics().Flat(); s.Cancellations < 1 {
		t.Fatalf("Cancellations = %d, want >= 1", s.Cancellations)
	}

	// The index remains fully usable on a fresh context.
	b.blocking.Store(false)
	recs, _, err := ix.Range(0, 1)
	if err != nil {
		t.Fatalf("range after cancellation: %v", err)
	}
	if len(recs) != n {
		t.Fatalf("range after cancellation returned %d records, want %d", len(recs), n)
	}
}

// TestRangeDeadlineExpiry: a deadline that expires mid-query surfaces
// context.DeadlineExceeded and is tallied separately from cancellations.
func TestRangeDeadlineExpiry(t *testing.T) {
	b := &blockingDHT{inner: dht.NewLocal()}
	ix, err := New(b, Config{SplitThreshold: 4, MergeThreshold: 0, Depth: 16})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if _, err := ix.Insert(record.Record{Key: (float64(i) + 0.5) / 32}); err != nil {
			t.Fatal(err)
		}
	}
	b.allow.Store(1)
	b.blocking.Store(true)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, _, err := ix.RangeContext(ctx, 0, 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RangeContext = %v, want context.DeadlineExceeded", err)
	}
	waitUntil(t, "parked fetches to drain", func() bool { return b.inflight.Load() == 0 })
	if s := ix.Metrics().Flat(); s.DeadlineExceeded < 1 {
		t.Fatalf("DeadlineExceeded = %d, want >= 1", s.DeadlineExceeded)
	}
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
