package dst

import (
	"errors"
	"math/rand"
	"sort"
	"testing"

	"lht/internal/dht"
	"lht/internal/keyspace"
	"lht/internal/record"
)

func newTestIndex(t *testing.T, cfg Config) *Index {
	t.Helper()
	ix, err := New(dht.NewLocal(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(dht.NewLocal(), Config{}); !errors.Is(err, ErrConfig) {
		t.Fatalf("zero config = %v", err)
	}
	if _, err := New(dht.NewLocal(), Config{SaturationThreshold: 8, Depth: 70}); !errors.Is(err, ErrConfig) {
		t.Fatalf("deep config = %v", err)
	}
}

func TestInsertSearchDelete(t *testing.T) {
	ix := newTestIndex(t, Config{SaturationThreshold: 8, Depth: 20})
	keys := []float64{0.1, 0.9, 0.5, 0.25, 0.75}
	for i, k := range keys {
		if _, err := ix.Insert(record.Record{Key: k, Value: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	for i, k := range keys {
		r, _, err := ix.Search(k)
		if err != nil || r.Value[0] != byte(i) {
			t.Fatalf("Search(%v) = %v, %v", k, r, err)
		}
	}
	if _, _, err := ix.Search(0.42); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("Search absent = %v", err)
	}
	// Replace semantics.
	if _, err := ix.Insert(record.Record{Key: 0.5, Value: []byte("new")}); err != nil {
		t.Fatal(err)
	}
	if r, _, _ := ix.Search(0.5); string(r.Value) != "new" {
		t.Fatal("replace failed")
	}
	if n, err := ix.Count(); err != nil || n != len(keys) {
		t.Fatalf("Count = %d, %v", n, err)
	}
	if _, err := ix.Delete(0.5); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Delete(0.5); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("Delete absent = %v", err)
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReplicationInvariants(t *testing.T) {
	ix := newTestIndex(t, Config{SaturationThreshold: 8, Depth: 20})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1500; i++ {
		if _, err := ix.Insert(record.Record{Key: rng.Float64()}); err != nil {
			t.Fatal(err)
		}
		if i%500 == 499 {
			if err := ix.CheckInvariants(); err != nil {
				t.Fatalf("after %d inserts: %v", i+1, err)
			}
		}
	}
	if n, err := ix.Count(); err != nil || n != 1500 {
		t.Fatalf("Count = %d, %v", n, err)
	}
	// The root must have saturated long ago at capacity 8.
	s := ix.Metrics().Flat()
	if s.Splits == 0 {
		t.Fatal("no saturation events")
	}
}

func TestRangeOracle(t *testing.T) {
	ix := newTestIndex(t, Config{SaturationThreshold: 8, Depth: 20})
	rng := rand.New(rand.NewSource(2))
	oracle := make(map[float64]bool)
	for i := 0; i < 2000; i++ {
		k := rng.Float64()
		if rng.Intn(5) == 0 && len(oracle) > 0 {
			for dk := range oracle {
				k = dk
				break
			}
			if _, err := ix.Delete(k); err != nil {
				t.Fatalf("Delete(%v): %v", k, err)
			}
			delete(oracle, k)
			continue
		}
		if _, err := ix.Insert(record.Record{Key: k}); err != nil {
			t.Fatal(err)
		}
		oracle[k] = true
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	var want []float64
	for k := range oracle {
		want = append(want, k)
	}
	sort.Float64s(want)
	for trial := 0; trial < 60; trial++ {
		lo := rng.Float64()
		hi := lo + rng.Float64()*(1-lo)
		if hi <= lo {
			continue
		}
		got, cost, err := ix.Range(lo, hi)
		if err != nil {
			t.Fatalf("Range(%v, %v): %v", lo, hi, err)
		}
		gotKeys := make([]float64, len(got))
		for i, r := range got {
			gotKeys[i] = r.Key
		}
		sort.Float64s(gotKeys)
		var wantIn []float64
		for _, k := range want {
			if k >= lo && k < hi {
				wantIn = append(wantIn, k)
			}
		}
		if len(gotKeys) != len(wantIn) {
			t.Fatalf("Range(%v, %v) = %d records, want %d", lo, hi, len(gotKeys), len(wantIn))
		}
		for i := range wantIn {
			if gotKeys[i] != wantIn[i] {
				t.Fatalf("Range key %d = %v, want %v", i, gotKeys[i], wantIn[i])
			}
		}
		if cost.Steps > cost.Lookups {
			t.Fatalf("Steps %d > Lookups %d", cost.Steps, cost.Lookups)
		}
	}
	// Full-space range.
	got, _, err := ix.Range(0, 1)
	if err != nil || len(got) != len(want) {
		t.Fatalf("Range(0,1) = %d, %v; want %d", len(got), err, len(want))
	}
}

// TestInsertCostIsDepth pins the paper's criticism: DST insertion pays
// one DHT-lookup per tree level - D per insert, an order of magnitude
// above LHT's lookup + 1 at D = 24 - though in a single parallel round.
func TestInsertCostIsDepth(t *testing.T) {
	ix := newTestIndex(t, Config{SaturationThreshold: 8, Depth: 24})
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		c, err := ix.Insert(record.Record{Key: rng.Float64()})
		if err != nil {
			t.Fatal(err)
		}
		if c.Lookups != 24 {
			t.Fatalf("insert cost = %d lookups, want D = 24", c.Lookups)
		}
		if c.Steps != 1 {
			t.Fatalf("insert steps = %d, want 1 (parallel stores)", c.Steps)
		}
	}
}

// TestSearchIsOneLookup pins the flip side: exact-match queries probe the
// depth-D ground-truth node directly.
func TestSearchIsOneLookup(t *testing.T) {
	ix := newTestIndex(t, Config{SaturationThreshold: 8, Depth: 20})
	rng := rand.New(rand.NewSource(5))
	keys := make([]float64, 500)
	for i := range keys {
		keys[i] = rng.Float64()
		if _, err := ix.Insert(record.Record{Key: keys[i]}); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range keys[:50] {
		_, cost, err := ix.Search(k)
		if err != nil {
			t.Fatal(err)
		}
		if cost.Lookups != 1 {
			t.Fatalf("Search cost = %d, want 1", cost.Lookups)
		}
	}
}

// TestRangeLatencyLowWhenUnsaturated: segment-aligned queries on a tree
// whose canonical nodes still hold replicas answer in few parallel steps.
func TestRangeLatencyLowWhenUnsaturated(t *testing.T) {
	ix := newTestIndex(t, Config{SaturationThreshold: 100, Depth: 20})
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 5000; i++ {
		if _, err := ix.Insert(record.Record{Key: rng.Float64()}); err != nil {
			t.Fatal(err)
		}
	}
	_, cost, err := ix.Range(0.25, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	if cost.Steps > 6 {
		t.Errorf("range steps = %d; DST's parallel segments should stay shallow", cost.Steps)
	}
}

func TestRangeRejectsBadBounds(t *testing.T) {
	ix := newTestIndex(t, Config{SaturationThreshold: 8, Depth: 20})
	for _, b := range [][2]float64{{0.5, 0.5}, {0.6, 0.5}, {-0.1, 0.5}, {0, 1.1}} {
		if _, _, err := ix.Range(b[0], b[1]); err == nil {
			t.Errorf("Range(%v) should fail", b)
		}
	}
}

func TestAttachExisting(t *testing.T) {
	d := dht.NewLocal()
	ix, err := New(d, Config{SaturationThreshold: 8, Depth: 20})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Insert(record.Record{Key: 0.5, Value: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	ix2, err := New(d, Config{SaturationThreshold: 8, Depth: 20})
	if err != nil {
		t.Fatal(err)
	}
	if r, _, err := ix2.Search(0.5); err != nil || string(r.Value) != "x" {
		t.Fatalf("attach lost data: %v, %v", r, err)
	}
}

func TestCanonicalSegments(t *testing.T) {
	ix := newTestIndex(t, Config{SaturationThreshold: 8, Depth: 20})
	_ = ix
	// [0.25, 0.75) decomposes into exactly #001 and #010.
	segs := canonicalSegments(keyspace.Interval{Lo: 0.25, Hi: 0.75}, 20)
	if len(segs) != 2 || segs[0].String() != "#001" || segs[1].String() != "#010" {
		t.Fatalf("segments = %v", segs)
	}
	// The whole space is one segment: the root.
	segs = canonicalSegments(keyspace.Interval{Lo: 0, Hi: 1}, 20)
	if len(segs) != 1 || segs[0].String() != "#0" {
		t.Fatalf("segments = %v", segs)
	}
	// Segment count stays bounded by ~2 per level.
	segs = canonicalSegments(keyspace.Interval{Lo: 0.1000001, Hi: 0.8999999}, 20)
	if len(segs) > 40 {
		t.Fatalf("%d segments for a 20-deep decomposition", len(segs))
	}
}
