package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// The CI perf gate diffs bench reports across commits. Only rows that are
// deterministic functions of the workload may gate a build: counted costs
// (round trips, allocations per operation) reproduce exactly on any
// machine, while timed rates (ops/sec, latency percentiles) move with the
// hardware and would flake. gatedResult picks the former by YLabel.
func gatedResult(r Result) bool {
	y := strings.ToLower(r.YLabel)
	return strings.Contains(y, "round trips") || strings.Contains(y, "allocs/op") ||
		strings.Contains(y, "cas conflicts")
}

// LoadReport reads a bench report written by Report.WriteFile.
func LoadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bench: read report: %w", err)
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: parse report %s: %w", path, err)
	}
	if r.Schema != ReportSchema {
		return nil, fmt.Errorf("bench: report %s has schema %q, want %q", path, r.Schema, ReportSchema)
	}
	return &r, nil
}

// regressionSlack is the multiplicative headroom a gated row gets over
// its baseline, plus an absolute grace so near-zero baselines (e.g. 4
// allocs/op) do not gate on a single extra allocation.
const (
	regressionSlack = 1.20
	regressionGrace = 0.5
)

// CompareBaseline diffs the deterministic rows of current against
// baseline and returns one human-readable line per violation: a gated
// row whose value exceeds its baseline by more than 20% (plus a small
// absolute grace), or a gated baseline row the current run no longer
// produces. An empty slice means the gate passes. Runs with different
// options are not comparable — the deterministic rows are functions of
// the workload parameters — so mismatched options are themselves a
// violation.
func CompareBaseline(baseline, current *Report) []string {
	var bad []string
	bo, co := baseline.Options, current.Options
	bo.Agg, co.Agg = nil, nil
	if bo != co {
		bad = append(bad, fmt.Sprintf("options differ: baseline %+v vs current %+v (gated rows depend on them)", bo, co))
		return bad
	}

	cur := map[string]map[string]map[float64]float64{}
	for _, res := range current.Results {
		series := map[string]map[float64]float64{}
		for _, s := range res.Series {
			pts := map[float64]float64{}
			for _, p := range s.Points {
				pts[p.X] = p.Y
			}
			series[s.Name] = pts
		}
		cur[res.Name] = series
	}

	for _, res := range baseline.Results {
		if !gatedResult(res.Result) {
			continue
		}
		for _, s := range res.Series {
			for _, p := range s.Points {
				got, ok := cur[res.Name][s.Name][p.X]
				if !ok {
					bad = append(bad, fmt.Sprintf("%s / %s: row x=%g missing from the current report", res.Name, s.Name, p.X))
					continue
				}
				if limit := p.Y*regressionSlack + regressionGrace; got > limit {
					bad = append(bad, fmt.Sprintf("%s / %s at x=%g: %g regressed past baseline %g (limit %g)",
						res.Name, s.Name, p.X, got, p.Y, limit))
				}
			}
		}
	}
	return bad
}

// GatedRows counts the rows of a report the perf gate would compare,
// so callers can refuse a gate run that checked nothing.
func GatedRows(r *Report) int {
	n := 0
	for _, res := range r.Results {
		if !gatedResult(res.Result) {
			continue
		}
		for _, s := range res.Series {
			n += len(s.Points)
		}
	}
	return n
}
