package tcpnet

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"sync"
	"testing"

	"lht/internal/dht"
	ilht "lht/internal/lht"
	"lht/internal/record"
)

// startCluster boots n servers on loopback and returns a connected client.
func startCluster(t *testing.T, n int) (*Client, []*Server) {
	t.Helper()
	addrs := make([]string, 0, n)
	servers := make([]*Server, 0, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := NewServer()
		go func() {
			if err := srv.Serve(ln); err != nil {
				t.Logf("server exited: %v", err)
			}
		}()
		t.Cleanup(func() { _ = srv.Close() })
		addrs = append(addrs, ln.Addr().String())
		servers = append(servers, srv)
	}
	c, err := DialContext(context.Background(), addrs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c, servers
}

type payload struct {
	N int
	S string
}

func init() {
	gob.Register(&payload{})
	gob.Register(&ilht.Bucket{})
}

func TestClusterBasicOps(t *testing.T) {
	c, servers := startCluster(t, 3)

	if err := c.Put(context.Background(), "a", &payload{N: 1, S: "x"}); err != nil {
		t.Fatal(err)
	}
	v, err := c.Get(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	if p := v.(*payload); p.N != 1 || p.S != "x" {
		t.Fatalf("Get = %+v", p)
	}
	if _, err := c.Get(context.Background(), "missing"); !errors.Is(err, dht.ErrNotFound) {
		t.Fatalf("Get missing = %v", err)
	}
	if err := c.Write(context.Background(), "a", &payload{N: 2}); err != nil {
		t.Fatal(err)
	}
	if v, _ := c.Get(context.Background(), "a"); v.(*payload).N != 2 {
		t.Fatal("Write lost")
	}
	if err := c.Write(context.Background(), "missing", &payload{}); !errors.Is(err, dht.ErrNotFound) {
		t.Fatalf("Write missing = %v", err)
	}
	v, err = c.Take(context.Background(), "a")
	if err != nil || v.(*payload).N != 2 {
		t.Fatalf("Take = %v, %v", v, err)
	}
	if _, err := c.Take(context.Background(), "a"); !errors.Is(err, dht.ErrNotFound) {
		t.Fatal("second Take should miss")
	}
	if err := c.Put(context.Background(), "b", &payload{N: 3}); err != nil {
		t.Fatal(err)
	}
	if err := c.Remove(context.Background(), "b"); err != nil {
		t.Fatal(err)
	}
	if err := c.Remove(context.Background(), "b"); err != nil {
		t.Fatal("Remove absent must not error")
	}

	// Keys spread across the member set.
	total := 0
	for i := 0; i < 60; i++ {
		if err := c.Put(context.Background(), fmt.Sprintf("spread-%d", i), &payload{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	nonEmpty := 0
	for _, s := range servers {
		total += s.Len()
		if s.Len() > 0 {
			nonEmpty++
		}
	}
	if total != 60 {
		t.Fatalf("cluster holds %d keys, want 60", total)
	}
	if nonEmpty < 2 {
		t.Errorf("keys landed on %d of 3 nodes", nonEmpty)
	}
}

func TestDialValidation(t *testing.T) {
	if _, err := DialContext(context.Background(), nil); err == nil {
		t.Error("Dial with no nodes should fail")
	}
	if _, err := DialContext(context.Background(), []string{"x:1", "x:1"}); err == nil {
		t.Error("Dial with duplicates should fail")
	}
	if _, err := DialContext(context.Background(), []string{"127.0.0.1:1"}); err == nil {
		t.Error("Dial to a dead port should fail the ping")
	}
}

func TestConcurrentClients(t *testing.T) {
	c, _ := startCluster(t, 4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("c%d-%d", g, i)
				if err := c.Put(context.Background(), key, &payload{N: i}); err != nil {
					t.Error(err)
					return
				}
				v, err := c.Get(context.Background(), key)
				if err != nil || v.(*payload).N != i {
					t.Errorf("Get(%s) = %v, %v", key, v, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestLHTOverTCPCluster runs the full index over real sockets: the
// deployment mode end to end.
func TestLHTOverTCPCluster(t *testing.T) {
	c, _ := startCluster(t, 5)
	ix, err := ilht.New(c, ilht.Config{SplitThreshold: 8, MergeThreshold: 6, Depth: 20})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(51))
	oracle := make(map[float64]bool)
	for i := 0; i < 400; i++ {
		k := rng.Float64()
		if rng.Intn(5) == 0 && len(oracle) > 0 {
			for dk := range oracle {
				k = dk
				break
			}
			if _, err := ix.Delete(k); err != nil {
				t.Fatalf("Delete: %v", err)
			}
			delete(oracle, k)
			continue
		}
		if _, err := ix.Insert(record.Record{Key: k, Value: []byte("v")}); err != nil {
			t.Fatalf("Insert: %v", err)
		}
		oracle[k] = true
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	got, _, err := ix.Range(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(oracle) {
		t.Fatalf("Range(0,1) = %d records, want %d", len(got), len(oracle))
	}
	for k := range oracle {
		if _, _, err := ix.Search(k); err != nil {
			t.Fatalf("Search(%v): %v", k, err)
		}
	}
}

func TestServerCloseUnblocksServe(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer()
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	c, err := DialContext(context.Background(), []string{ln.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(context.Background(), "k", &payload{N: 1}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Serve returned %v after Close", err)
	}
	// The client should now fail cleanly.
	if err := c.Put(context.Background(), "k2", &payload{N: 2}); err == nil {
		t.Error("Put to closed server should fail")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/node.snap"

	srv := NewServer()
	for i := 0; i < 50; i++ {
		srv.apply(request{Op: opPut, Key: fmt.Sprintf("k%d", i), Val: []byte{byte(i)}})
	}
	if err := srv.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}

	restored := NewServer()
	if err := restored.LoadSnapshot(path); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != 50 {
		t.Fatalf("restored %d keys, want 50", restored.Len())
	}
	resp := restored.apply(request{Op: opGet, Key: "k7"})
	if !resp.Found || resp.Val[0] != 7 {
		t.Fatalf("restored value = %+v", resp)
	}

	// Missing snapshot is a fresh node, not an error.
	fresh := NewServer()
	if err := fresh.LoadSnapshot(dir + "/absent.snap"); err != nil {
		t.Fatal(err)
	}
	if fresh.Len() != 0 {
		t.Fatal("fresh node should be empty")
	}

	// Corrupt snapshot is an error.
	if err := os.WriteFile(dir+"/bad.snap", []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fresh.LoadSnapshot(dir + "/bad.snap"); err == nil {
		t.Fatal("corrupt snapshot should fail")
	}
}

// TestNodeRestartPreservesIndex restarts a node under a live index and
// verifies the shard survives via the snapshot.
func TestNodeRestartPreservesIndex(t *testing.T) {
	dir := t.TempDir()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	srv := NewServer()
	go func() { _ = srv.Serve(ln) }()

	c, err := DialContext(context.Background(), []string{addr})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := ilht.New(c, ilht.Config{SplitThreshold: 8, MergeThreshold: 0, Depth: 20})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	keys := make([]float64, 100)
	for i := range keys {
		keys[i] = rng.Float64()
		if _, err := ix.Insert(record.Record{Key: keys[i]}); err != nil {
			t.Fatal(err)
		}
	}

	// Stop, snapshot, restart on the same port, reload.
	snapPath := dir + "/shard.snap"
	if err := srv.SaveSnapshot(snapPath); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("port %s not immediately reusable: %v", addr, err)
	}
	srv2 := NewServer()
	if err := srv2.LoadSnapshot(snapPath); err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv2.Serve(ln2) }()
	t.Cleanup(func() { _ = srv2.Close() })

	c2, err := DialContext(context.Background(), []string{addr})
	if err != nil {
		t.Fatal(err)
	}
	ix2, err := ilht.New(c2, ilht.Config{SplitThreshold: 8, MergeThreshold: 0, Depth: 20})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if _, _, err := ix2.Search(k); err != nil {
			t.Fatalf("after restart, Search(%v): %v", k, err)
		}
	}
}
