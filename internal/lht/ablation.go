package lht

import (
	"context"
	"errors"
	"fmt"

	"lht/internal/dht"
	"lht/internal/keyspace"
	"lht/internal/record"
)

// LookupBucketLinear is an ablation of Algorithm 2: it resolves a data
// key by walking the candidate name sequence top-down (root name first,
// then f_nn after every non-covering bucket) instead of binary-searching
// it. Every probe hits an existing name, so there are no failed gets, but
// the probe count grows linearly with the number of distinct names on the
// path - about half the leaf depth - where the binary search pays
// O(log(D/2)). The benchmark harness uses it to quantify what the
// paper's binary search buys.
func (ix *Index) LookupBucketLinear(delta float64) (*Bucket, Cost, error) {
	var cost Cost
	mu, err := keyspace.Mu(delta, ix.cfg.Depth)
	if err != nil {
		return nil, cost, err
	}
	x := mu.Prefix(1)
	for {
		b, err := ix.getBucket(context.Background(), x.Name().Key(), &cost)
		switch {
		case errors.Is(err, dht.ErrNotFound):
			// Top-down probes only visit ancestors of the target leaf,
			// whose names all exist; a miss means the tree changed or is
			// corrupt.
			cost.Steps = cost.Lookups
			return nil, cost, fmt.Errorf("%w: linear lookup missed name %s", ErrCorrupt, x.Name())
		case err != nil:
			cost.Steps = cost.Lookups
			return nil, cost, err
		case b.Contains(delta):
			cost.Steps = cost.Lookups
			return b, cost, nil
		}
		next, ok := x.NextName(mu)
		if !ok {
			cost.Steps = cost.Lookups
			return nil, cost, fmt.Errorf("%w: linear lookup exhausted mu %s at %s", ErrCorrupt, mu, x)
		}
		x = next
	}
}

// SearchLinear is Search using the linear lookup strategy (ablation).
func (ix *Index) SearchLinear(delta float64) (record.Record, Cost, error) {
	b, cost, err := ix.LookupBucketLinear(delta)
	if err != nil {
		return record.Record{}, cost, err
	}
	if i := record.FindByKey(b.Records, delta); i >= 0 {
		return b.Records[i], cost, nil
	}
	return record.Record{}, cost, fmt.Errorf("%w: %v", ErrKeyNotFound, delta)
}
