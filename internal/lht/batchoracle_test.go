package lht

import (
	"bytes"
	"context"
	"encoding/gob"
	"math/rand"
	"net"
	"testing"

	"lht/internal/chord"
	"lht/internal/dht"
	"lht/internal/kademlia"
	"lht/internal/metrics"
	"lht/internal/record"
	"lht/internal/tcpnet"
)

// TestBatchedPathIsAnOracle builds the same index twice on every
// substrate — once through the native batch plane, once with batching
// stripped (dht.WithoutBatch forces per-op decomposition) — and requires
// byte-identical trees, identical query results, and identical
// Cost.Lookups. Batching may only change round trips, never the data or
// the paper's cost model.
func TestBatchedPathIsAnOracle(t *testing.T) {
	substrates := []struct {
		name   string
		native bool // substrate implements dht.Batcher
		make   func(t *testing.T) dht.DHT
	}{
		{"local", true, func(t *testing.T) dht.DHT { return dht.NewLocal() }},
		{"chord", true, func(t *testing.T) dht.DHT {
			ring, err := chord.NewRing(16, chord.Config{Seed: 77, Replicas: 2})
			if err != nil {
				t.Fatal(err)
			}
			return ring
		}},
		{"kademlia", false, func(t *testing.T) dht.DHT {
			nw, err := kademlia.NewNetwork(16, kademlia.Config{Seed: 78})
			if err != nil {
				t.Fatal(err)
			}
			return nw
		}},
		{"tcpnet", true, func(t *testing.T) dht.DHT {
			gob.Register(&Bucket{})
			addrs := make([]string, 0, 3)
			for i := 0; i < 3; i++ {
				ln, err := net.Listen("tcp", "127.0.0.1:0")
				if err != nil {
					t.Fatal(err)
				}
				srv := tcpnet.NewServer()
				go func() { _ = srv.Serve(ln) }()
				t.Cleanup(func() { _ = srv.Close() })
				addrs = append(addrs, ln.Addr().String())
			}
			c, err := tcpnet.DialContext(context.Background(), addrs)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { _ = c.Close() })
			return c
		}},
	}

	rng := rand.New(rand.NewSource(55))
	recs := make([]record.Record, 600)
	for i := range recs {
		recs[i] = record.Record{Key: rng.Float64(), Value: []byte{byte(i), byte(i >> 8)}}
	}
	ranges := [][2]float64{{0, 1}, {0.2, 0.6}, {0.45, 0.55}, {0.9, 1}, {0, 0.001}}

	for _, sub := range substrates {
		t.Run(sub.name, func(t *testing.T) {
			type arm struct {
				ix *Index
				c  *metrics.Counters
			}
			build := func(strip bool) arm {
				d := sub.make(t)
				if strip {
					d = dht.WithoutBatch(d)
				}
				c := &metrics.Counters{}
				ix, err := New(dht.NewInstrumented(d, c), Config{SplitThreshold: 16, MergeThreshold: 0, Depth: 20})
				if err != nil {
					t.Fatal(err)
				}
				return arm{ix, c}
			}
			batched, perOp := build(false), build(true)

			bcost, err := batched.ix.BulkLoad(recs)
			if err != nil {
				t.Fatal(err)
			}
			pcost, err := perOp.ix.BulkLoad(recs)
			if err != nil {
				t.Fatal(err)
			}
			if bcost.Lookups != pcost.Lookups {
				t.Errorf("BulkLoad Lookups: batched %d, per-op %d", bcost.Lookups, pcost.Lookups)
			}

			if got, want := gobLeaves(t, batched.ix), gobLeaves(t, perOp.ix); !bytes.Equal(got, want) {
				t.Fatal("batched and per-op trees are not byte-identical")
			}

			for _, r := range ranges {
				bres, bc, err := batched.ix.Range(r[0], r[1])
				if err != nil {
					t.Fatalf("batched Range%v: %v", r, err)
				}
				pres, pc, err := perOp.ix.Range(r[0], r[1])
				if err != nil {
					t.Fatalf("per-op Range%v: %v", r, err)
				}
				if bc != pc {
					t.Errorf("Range%v cost: batched %+v, per-op %+v", r, bc, pc)
				}
				if len(bres) != len(pres) {
					t.Fatalf("Range%v: batched %d records, per-op %d", r, len(bres), len(pres))
				}
				for i := range bres {
					if bres[i].Key != pres[i].Key || !bytes.Equal(bres[i].Value, pres[i].Value) {
						t.Fatalf("Range%v record %d differs: %v vs %v", r, i, bres[i], pres[i])
					}
				}
			}

			bs, ps := batched.c.Snapshot().Flat(), perOp.c.Snapshot().Flat()
			if bs.Lookups != ps.Lookups {
				t.Errorf("counter Lookups: batched %d, per-op %d", bs.Lookups, ps.Lookups)
			}
			if ps.BatchOps != 0 || ps.BatchedKeys != 0 {
				t.Errorf("per-op arm tallied batches: %d/%d", ps.BatchOps, ps.BatchedKeys)
			}
			if sub.native {
				if bs.BatchOps == 0 {
					t.Error("native substrate never batched")
				}
				if bs.RoundTrips() >= ps.RoundTrips() {
					t.Errorf("round trips: batched %d, per-op %d; batching should save round trips",
						bs.RoundTrips(), ps.RoundTrips())
				}
			}
		})
	}
}

// gobLeaves serializes an index's leaves (in key order) for byte-level
// comparison.
func gobLeaves(t *testing.T, ix *Index) []byte {
	t.Helper()
	leaves, err := ix.Leaves()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(leaves); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
