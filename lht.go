// Package lht is LHT, a low-maintenance hash tree for data indexing over
// DHTs (Tang & Zhou, ICDCS 2008).
//
// LHT turns any DHT with a put/get interface into an order-preserving
// index over one-dimensional keys in [0, 1), supporting exact-match,
// range, and min/max queries. Its distinguishing property is maintenance
// cost: a novel naming function maps the leaves of a distributed space
// partition tree onto the DHT so that a leaf split keeps one half on its
// current peer - one DHT-lookup and half a bucket of data per split,
// 50-75% cheaper than the prior state of the art (PHT), while queries get
// faster, not slower.
//
// Quick start:
//
//	d := lht.NewLocalDHT()                     // or NewChordDHT / NewKademliaDHT
//	ix, err := lht.New(d, lht.DefaultConfig())
//	...
//	ix.Insert(lht.Record{Key: 0.42, Value: []byte("answer")})
//	recs, cost, err := ix.Range(0.4, 0.6)
//
// Read-heavy clients can enable the client-side leaf cache
// (Config.LeafCache): exact-match lookups then amortize to a single
// DHT-get instead of Algorithm 2's ~log2(D) sequential probes, with
// staleness after splits/merges detected and repaired soundly, so query
// results never change — only their cost (see Snapshot.CacheHits /
// CacheMisses / CacheStale).
//
// Every operation has a Context variant (GetContext, RangeContext, ...)
// that threads a context.Context down to the substrate: deadlines become
// socket deadlines on networked substrates, and cancellation stops
// multi-step algorithms (including parallel range forwarding) promptly.
// The plain methods are shorthand for a background context. Setting
// Config.Policy adds a retry/backoff layer that absorbs transient
// substrate faults (see Policy and DefaultPolicy); every retry is charged
// as a DHT-lookup, keeping the paper's cost model honest.
//
// Substrates that implement the optional Batcher interface serve
// many-key rounds — bulk loads, parallel range sweeps — in one network
// round trip per peer instead of one per key. Batching changes latency
// and round-trip counts only: Lookups (the paper's bandwidth measure)
// and query results are identical either way, and WithoutBatch restores
// strict per-op behavior for comparison.
//
// The substrates, the PHT baseline, and the experiment harness that
// regenerates the paper's figures live under internal/; see DESIGN.md for
// the system inventory and EXPERIMENTS.md for reproduction results.
package lht

import (
	"context"

	"lht/internal/dht"
	ilht "lht/internal/lht"
	"lht/internal/metrics"
	"lht/internal/record"
)

// Record is one indexed data unit: a key in [0, 1) plus an opaque payload.
type Record = record.Record

// Config tunes an index: theta_split, the merge threshold, the maximum
// tree depth D, and the client-side leaf cache (LeafCache /
// LeafCacheSize).
type Config = ilht.Config

// DefaultLeafCacheSize is the leaf-cache capacity used when
// Config.LeafCache is set with LeafCacheSize 0.
const DefaultLeafCacheSize = ilht.DefaultLeafCacheSize

// Cost reports the DHT traffic of one operation: Lookups (bandwidth) and
// Steps (latency in dependent rounds).
type Cost = metrics.Cost

// Snapshot is the cumulative counter state of an index client.
type Snapshot = metrics.Snapshot

// Bucket is a leaf bucket of the partition tree, as returned by inspection
// helpers.
type Bucket = ilht.Bucket

// Errors surfaced by index operations.
var (
	// ErrKeyNotFound reports an exact-match query or deletion for an
	// unindexed key.
	ErrKeyNotFound = ilht.ErrKeyNotFound
	// ErrEmpty reports a min/max query against an empty index.
	ErrEmpty = ilht.ErrEmpty
	// ErrBadRange reports a malformed range query.
	ErrBadRange = ilht.ErrBadRange
	// ErrNotFound is the substrate-level "no value under this key".
	ErrNotFound = dht.ErrNotFound
	// ErrNotEmpty reports a BulkLoad into a non-empty index.
	ErrNotEmpty = ilht.ErrNotEmpty
	// ErrPartialLoad reports a BulkLoad that failed after shipping some
	// leaves: the tree is partially populated, not absent. The error is
	// always a *PartialLoadError carrying ship counts and the root cause.
	ErrPartialLoad = ilht.ErrPartialLoad
)

// PartialLoadError is the error type behind ErrPartialLoad: how many
// leaves shipped before the failure, out of how many planned, and the
// first real cause (cancellations yield to substrate faults).
type PartialLoadError = ilht.PartialLoadError

// DefaultConfig returns the paper's experiment defaults: theta_split =
// 100, D = 20, merging enabled.
func DefaultConfig() Config { return ilht.DefaultConfig() }

// Index is an LHT index over a DHT substrate. Create one with New.
//
// Concurrency contract: queries (Search, Range, Scan, Min/Max) are safe
// to call concurrently from any number of goroutines, including with the
// leaf cache enabled — the cache and cost counters are internally
// synchronized. Writers (Insert, Delete, BulkLoad) are NOT serialized by
// this type: the index is a client-side view of shared DHT state, and
// nothing here can lock a remote bucket, so callers must serialize
// writers externally against both queries and each other — use the index
// as if under a sync.RWMutex: any number of concurrent readers, or
// exactly one writer. (In the deployed system each bucket has one
// responsible peer serializing its updates; an in-process client cannot
// provide that for the caller.)
type Index struct {
	inner *ilht.Index
}

// New creates an index client over a substrate, bootstrapping the empty
// tree if the substrate holds none.
func New(d DHT, cfg Config) (*Index, error) {
	inner, err := ilht.New(d, cfg)
	if err != nil {
		return nil, err
	}
	return &Index{inner: inner}, nil
}

// Insert adds a record, replacing any record with the same key.
func (ix *Index) Insert(r Record) (Cost, error) { return ix.inner.Insert(r) }

// InsertContext is Insert under a caller-supplied context.
func (ix *Index) InsertContext(ctx context.Context, r Record) (Cost, error) {
	return ix.inner.InsertContext(ctx, r)
}

// BulkLoad populates an empty index with a whole dataset in one pass
// (about one DHT-put per resulting leaf), the standard construction
// optimization; ErrNotEmpty if the index already holds data. Leaves ship
// in batched parallel put rounds (Config.BatchSize keys per batch); a
// failure mid-load surfaces as a *PartialLoadError once any leaf has
// landed.
func (ix *Index) BulkLoad(recs []Record) (Cost, error) { return ix.inner.BulkLoad(recs) }

// BulkLoadContext is BulkLoad under a caller-supplied context.
func (ix *Index) BulkLoadContext(ctx context.Context, recs []Record) (Cost, error) {
	return ix.inner.BulkLoadContext(ctx, recs)
}

// Delete removes the record with the given key, or returns
// ErrKeyNotFound.
func (ix *Index) Delete(key float64) (Cost, error) { return ix.inner.Delete(key) }

// DeleteContext is Delete under a caller-supplied context.
func (ix *Index) DeleteContext(ctx context.Context, key float64) (Cost, error) {
	return ix.inner.DeleteContext(ctx, key)
}

// Get answers an exact-match query for one key.
func (ix *Index) Get(key float64) (Record, Cost, error) { return ix.inner.Search(key) }

// GetContext is Get under a caller-supplied context.
func (ix *Index) GetContext(ctx context.Context, key float64) (Record, Cost, error) {
	return ix.inner.SearchContext(ctx, key)
}

// Range returns every record with key in [lo, hi).
func (ix *Index) Range(lo, hi float64) ([]Record, Cost, error) { return ix.inner.Range(lo, hi) }

// RangeContext is Range under a caller-supplied context: a deadline bounds
// the whole forwarding recursion, and cancellation stops the parallel
// branch goroutines promptly.
func (ix *Index) RangeContext(ctx context.Context, lo, hi float64) ([]Record, Cost, error) {
	return ix.inner.RangeContext(ctx, lo, hi)
}

// Min returns the record with the smallest key (one DHT-lookup).
func (ix *Index) Min() (Record, Cost, error) { return ix.inner.Min() }

// MinContext is Min under a caller-supplied context.
func (ix *Index) MinContext(ctx context.Context) (Record, Cost, error) {
	return ix.inner.MinContext(ctx)
}

// Max returns the record with the largest key (one DHT-lookup).
func (ix *Index) Max() (Record, Cost, error) { return ix.inner.Max() }

// MaxContext is Max under a caller-supplied context.
func (ix *Index) MaxContext(ctx context.Context) (Record, Cost, error) {
	return ix.inner.MaxContext(ctx)
}

// Scan returns up to limit records with keys >= from in ascending order -
// the pagination primitive (resume with from = last returned key).
func (ix *Index) Scan(from float64, limit int) ([]Record, Cost, error) {
	return ix.inner.Scan(from, limit)
}

// ScanContext is Scan under a caller-supplied context.
func (ix *Index) ScanContext(ctx context.Context, from float64, limit int) ([]Record, Cost, error) {
	return ix.inner.ScanContext(ctx, from, limit)
}

// Count returns the number of indexed records by walking all leaves (an
// inspection helper, not a constant-cost query).
func (ix *Index) Count() (int, error) { return ix.inner.Count() }

// Leaves returns the leaf buckets in key order (inspection helper).
func (ix *Index) Leaves() ([]*Bucket, error) { return ix.inner.Leaves() }

// CheckInvariants verifies the structural invariants of the stored tree;
// useful in tests of applications embedding LHT.
func (ix *Index) CheckInvariants() error { return ix.inner.CheckInvariants() }

// ScrubReport is the typed outcome of a Scrub pass: leaves and records
// visited, DHT cost, repairs applied and invariant violations observed.
type ScrubReport = ilht.ScrubReport

// Scrub walks the reachable label space, verifying the tree's structural
// invariants and repairing torn splits/merges, orphaned buckets and
// misplaced records. A scrub of a consistent tree performs no writes; a
// repairing scrub counts as a writer for the concurrency contract.
func (ix *Index) Scrub() (*ScrubReport, error) { return ix.inner.Scrub(context.Background()) }

// ScrubContext is Scrub with a caller-supplied context.
func (ix *Index) ScrubContext(ctx context.Context) (*ScrubReport, error) {
	return ix.inner.Scrub(ctx)
}

// Metrics returns this client's cumulative cost counters.
func (ix *Index) Metrics() Snapshot { return ix.inner.Metrics() }

// AlphaMean returns the measured average alpha over all splits (paper
// section 8.2) and the split count.
func (ix *Index) AlphaMean() (float64, int64) { return ix.inner.AlphaMean() }

// Config returns the index configuration.
func (ix *Index) Config() Config { return ix.inner.Config() }
