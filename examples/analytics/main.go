// Analytics demonstrates the bulk-construction and pagination features on
// a DB-flavoured workload: bulk load 100k order amounts, page through a
// report with Scan, and answer percentile-style questions with ranges -
// while comparing the bulk load's cost against what incremental insertion
// would have paid.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"lht"
)

// Orders range from $1 to $10,000; amounts are log-normally distributed
// like real transaction data. keyOf maps dollars into [0, 1) by log scale
// so the index partitions where the data lives.
func keyOf(dollars float64) float64 {
	return math.Log(dollars) / math.Log(10000)
}

func dollarsOf(key float64) float64 {
	return math.Exp(key * math.Log(10000))
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ix, err := lht.New(lht.NewLocalDHT(), lht.DefaultConfig())
	if err != nil {
		return err
	}

	// Generate 100k orders.
	rng := rand.New(rand.NewSource(17))
	recs := make([]lht.Record, 0, 100_000)
	for i := 0; i < 100_000; i++ {
		dollars := math.Exp(rng.NormFloat64()*1.2 + 4) // log-normal, median ~$55
		if dollars < 1 || dollars >= 10000 {
			continue
		}
		recs = append(recs, lht.Record{
			Key:   keyOf(dollars),
			Value: []byte(fmt.Sprintf("order-%06d", i)),
		})
	}

	cost, err := ix.BulkLoad(recs)
	if err != nil {
		return err
	}
	n, err := ix.Count()
	if err != nil {
		return err
	}
	leaves, err := ix.Leaves()
	if err != nil {
		return err
	}
	fmt.Printf("bulk-loaded %d orders into %d leaf buckets: %d DHT-lookups\n",
		n, len(leaves), cost.Lookups)
	fmt.Printf("(incremental insertion would have paid about %d lookups: ~4 per insert)\n\n", 4*n)

	// Report: the 10 smallest orders, paged with Scan.
	page, cost, err := ix.Scan(0, 10)
	if err != nil {
		return err
	}
	fmt.Printf("10 smallest orders (%d DHT-lookups):\n", cost.Lookups)
	for _, r := range page {
		fmt.Printf("  $%8.2f  %s\n", dollarsOf(r.Key), r.Value)
	}

	// Percentile-style question: how many orders are above $1,000?
	big, cost, err := ix.Range(keyOf(1000), 1)
	if err != nil {
		return err
	}
	fmt.Printf("\norders above $1000: %d of %d (%.2f%%)  [%d DHT-lookups, %d steps]\n",
		len(big), n, 100*float64(len(big))/float64(n), cost.Lookups, cost.Steps)

	// Largest single order: one DHT-lookup.
	top, cost, err := ix.Max()
	if err != nil {
		return err
	}
	fmt.Printf("largest order: $%.2f (%s), found in %d DHT-lookup\n",
		dollarsOf(top.Key), top.Value, cost.Lookups)

	// Paged full scan: count pages a report generator would fetch.
	var pages int
	from := 0.0
	const pageSize = 1000
	for {
		page, _, err := ix.Scan(from, pageSize)
		if err != nil {
			return err
		}
		if len(page) == 0 {
			break
		}
		pages++
		if len(page) < pageSize {
			break
		}
		from = math.Nextafter(page[len(page)-1].Key, 2)
		if from >= 1 {
			break
		}
	}
	fmt.Printf("full report: %d pages of %d records\n", pages, pageSize)
	return nil
}
