package bench

import (
	"context"
	"fmt"
	"sync"
	"time"

	"lht/internal/dht"
	"lht/internal/lht"
	"lht/internal/record"
	"lht/internal/workload"
)

// Ablation A9: multi-writer concurrency. Three results:
//
//   - A9 (timed): wall-clock insert throughput with 1/2/4/8 goroutine
//     writers, each with its own Index handle over one shared substrate,
//     inserting disjoint interleaved key sets. Timed rates never gate.
//   - A9b (gated): the same interleave run as a deterministic round-robin
//     schedule — total client round trips vs handle count. Extra handles
//     pay only for stale leaf caches after another handle's split, so the
//     curve pins the coordination overhead of the epoch-CAS protocol at
//     (near) zero under serialized writers.
//   - A9c (gated): the round-robin schedule over a substrate that
//     deterministically fails every contendEvery-th PutIf with a lost
//     compare-and-swap, as if a racing writer had committed and restored
//     the epoch. The CASConflicts and WriterRetries totals pin the
//     rebase-and-retry machinery's exact cost.

// contendEvery is A9c's injection period: every contendEvery-th PutIf
// loses its CAS.
const contendEvery = 16

// contended wraps a Local substrate and injects a deterministic lost
// compare-and-swap on every every-th PutIf: the op is rejected with a
// conflict naming the caller's own epoch as the winner (the ABA shape —
// a racing writer won and the epoch came back around), so the caller's
// mandatory re-fetch-rebase-retry round then succeeds. Serialized
// schedules only: the op counter is unsynchronized on purpose.
type contended struct {
	*dht.Local
	every int
	n     int
}

func (c *contended) PutIf(ctx context.Context, key string, v dht.Value, ifEpoch uint64) error {
	c.n++
	if c.n%c.every == 0 {
		return &dht.CASConflictError{Key: key, Exists: true, WinnerEpoch: ifEpoch}
	}
	return c.Local.PutIf(ctx, key, v, ifEpoch)
}

// newWriters builds one Index handle per writer over the shared substrate
// (the first bootstraps the tree, the rest adopt it).
func (o Options) newWriters(d dht.DHT, n int) ([]*lht.Index, error) {
	handles := make([]*lht.Index, n)
	for w := range handles {
		ix, err := lht.New(d, lht.Config{SplitThreshold: o.Theta, Depth: o.Depth, Aggregate: o.Agg})
		if err != nil {
			return nil, err
		}
		handles[w] = ix
	}
	return handles, nil
}

// roundRobinInsert drives the deterministic serialized schedule: record i
// goes through handle i mod len(handles).
func roundRobinInsert(handles []*lht.Index, recs []record.Record) error {
	for i, r := range recs {
		if _, err := handles[i%len(handles)].Insert(r); err != nil {
			return fmt.Errorf("bench: round-robin insert %d: %w", i, err)
		}
	}
	return nil
}

// RunWriterAblation produces ablation A9 (see the package comment above):
// timed concurrent insert throughput, plus two deterministic gated rows —
// round trips and injected-contention conflict/retry counts — for each
// writer count. The deterministic rows are functions of (theta, depth,
// seed, size) alone, so they reproduce exactly on any machine and feed
// the perf gate.
func RunWriterAblation(o Options, dist workload.Dist, size int, writerCounts []int) (thru, rounds, contention Result, err error) {
	o = o.WithDefaults()
	thru = Result{
		Name:   "A9",
		Title:  fmt.Sprintf("Multi-writer insert throughput, shared substrate (%d records, theta=%d)", size, o.Theta),
		XLabel: "concurrent writers",
		YLabel: "kinserts/sec",
	}
	rounds = Result{
		Name:   "A9b",
		Title:  fmt.Sprintf("Serialized interleave: total round trips vs writer handles (%d records)", size),
		XLabel: "writer handles",
		YLabel: "round trips",
	}
	contention = Result{
		Name:   "A9c",
		Title:  fmt.Sprintf("Injected contention: every %dth PutIf loses its CAS (%d records)", contendEvery, size),
		XLabel: "writer handles",
		YLabel: "CAS conflicts / writer retries",
	}

	// A9: real goroutines, one trial per seed, wall-clock timed.
	ys := make([][]float64, o.Trials)
	for t := 0; t < o.Trials; t++ {
		recs := workload.NewGenerator(dist, o.Seed+int64(t)).Records(size)
		row := make([]float64, 0, len(writerCounts))
		for _, nW := range writerCounts {
			handles, err := o.newWriters(dht.NewLocal(), nW)
			if err != nil {
				return thru, rounds, contention, err
			}
			errCh := make(chan error, nW)
			var wg sync.WaitGroup
			start := time.Now()
			for w := 0; w < nW; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := w; i < len(recs); i += nW {
						if _, err := handles[w].Insert(recs[i]); err != nil {
							select {
							case errCh <- fmt.Errorf("bench: writer %d insert %d: %w", w, i, err):
							default:
							}
							return
						}
					}
				}(w)
			}
			wg.Wait()
			wall := time.Since(start)
			select {
			case err := <-errCh:
				return thru, rounds, contention, err
			default:
			}
			n, err := handles[0].Count()
			if err != nil {
				return thru, rounds, contention, err
			}
			if n != size {
				return thru, rounds, contention, fmt.Errorf("bench: %d writers committed %d of %d records", nW, n, size)
			}
			row = append(row, float64(size)/wall.Seconds()/1000)
		}
		ys[t] = row
	}
	xs := float64s(writerCounts)
	thru.Series = append(thru.Series, meanSeries(fmt.Sprintf("%s inserts", dist), xs, ys))

	// A9b + A9c: one deterministic pass each per writer count, fixed seed.
	recs := workload.NewGenerator(dist, o.Seed).Records(size)
	var trips, conflicts, retries Series
	trips.Name = "total round trips"
	conflicts.Name = "CAS conflicts"
	retries.Name = "writer retries"
	for _, nW := range writerCounts {
		handles, err := o.newWriters(dht.NewLocal(), nW)
		if err != nil {
			return thru, rounds, contention, err
		}
		if err := roundRobinInsert(handles, recs); err != nil {
			return thru, rounds, contention, err
		}
		var rt int64
		for _, ix := range handles {
			rt += ix.Metrics().RoundTrips()
		}
		trips.Points = append(trips.Points, Point{X: float64(nW), Y: float64(rt)})

		handles, err = o.newWriters(&contended{Local: dht.NewLocal(), every: contendEvery}, nW)
		if err != nil {
			return thru, rounds, contention, err
		}
		if err := roundRobinInsert(handles, recs); err != nil {
			return thru, rounds, contention, err
		}
		var cc, wr int64
		for _, ix := range handles {
			f := ix.Metrics().Flat()
			cc += f.CASConflicts
			wr += f.WriterRetries
		}
		conflicts.Points = append(conflicts.Points, Point{X: float64(nW), Y: float64(cc)})
		retries.Points = append(retries.Points, Point{X: float64(nW), Y: float64(wr)})
	}
	rounds.Series = append(rounds.Series, trips)
	contention.Series = append(contention.Series, conflicts, retries)
	return thru, rounds, contention, nil
}
