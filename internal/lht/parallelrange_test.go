package lht

import (
	"math/rand"
	"sort"
	"testing"

	"lht/internal/dht"
	"lht/internal/record"
)

// TestParallelRangeMatchesSequential runs identical queries through a
// sequential and a parallel index over the same substrate and requires
// identical results and costs (run with -race to validate the collector).
func TestParallelRangeMatchesSequential(t *testing.T) {
	d := dht.NewLocal()
	seq, err := New(d, Config{SplitThreshold: 8, MergeThreshold: 0, Depth: 20})
	if err != nil {
		t.Fatal(err)
	}
	par, err := New(d, Config{SplitThreshold: 8, MergeThreshold: 0, Depth: 20, ParallelRange: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(101))
	for i := 0; i < 5000; i++ {
		if _, err := seq.Insert(record.Record{Key: rng.Float64()}); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 200; trial++ {
		lo := rng.Float64()
		hi := lo + rng.Float64()*(1-lo)
		if hi <= lo {
			continue
		}
		sRecs, sCost, err := seq.Range(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		pRecs, pCost, err := par.Range(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		if len(sRecs) != len(pRecs) {
			t.Fatalf("trial %d: %d vs %d records", trial, len(sRecs), len(pRecs))
		}
		sk := make([]float64, len(sRecs))
		pk := make([]float64, len(pRecs))
		for i := range sRecs {
			sk[i], pk[i] = sRecs[i].Key, pRecs[i].Key
		}
		sort.Float64s(sk)
		sort.Float64s(pk)
		for i := range sk {
			if sk[i] != pk[i] {
				t.Fatalf("trial %d: key %d differs: %v vs %v", trial, i, sk[i], pk[i])
			}
		}
		if sCost != pCost {
			t.Fatalf("trial %d: cost %+v vs %+v", trial, sCost, pCost)
		}
	}
}

// TestParallelRangeConfigIsolation ensures parallel mode leaves the other
// operations untouched.
func TestParallelRangeConfigIsolation(t *testing.T) {
	ix, err := New(dht.NewLocal(), Config{SplitThreshold: 8, MergeThreshold: 6, Depth: 20, ParallelRange: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(102))
	for i := 0; i < 500; i++ {
		if _, err := ix.Insert(record.Record{Key: rng.Float64()}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ix.Min(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ix.Scan(0.3, 25); err != nil {
		t.Fatal(err)
	}
}
