package dhttest

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"sync"
	"testing"

	"lht/internal/dht"
)

// EpochValue is the battery's epoch-carrying stored value: what the index
// layers' buckets look like to the conditional plane. It is gob-registered
// so byte-store substrates can serialize it.
type EpochValue struct {
	Epoch uint64
	Body  string
}

// DHTEpoch implements dht.Epocher.
func (v *EpochValue) DHTEpoch() uint64 { return v.Epoch }

func init() { gob.Register(&EpochValue{}) }

// condBody fetches key and returns the stored EpochValue's body and epoch.
func condBody(t *testing.T, d dht.DHT, key string) (string, uint64) {
	t.Helper()
	v, err := d.Get(context.Background(), key)
	if err != nil {
		t.Fatalf("Get(%q) = %v", key, err)
	}
	ev, ok := v.(*EpochValue)
	if !ok {
		t.Fatalf("Get(%q) holds %T, want *EpochValue", key, v)
	}
	return ev.Body, ev.Epoch
}

// wantConflict asserts err is a CAS conflict carrying the given winner
// state, and that it is classified permanent (the index layer, not a
// retry policy, owns rebase-and-retry).
func wantConflict(t *testing.T, err error, exists bool, winner uint64) {
	t.Helper()
	if !errors.Is(err, dht.ErrCASConflict) {
		t.Fatalf("err = %v, want ErrCASConflict", err)
	}
	var c *dht.CASConflictError
	if !errors.As(err, &c) {
		t.Fatalf("err = %v, does not unwrap to *CASConflictError", err)
	}
	if c.Exists != exists || c.WinnerEpoch != winner {
		t.Fatalf("conflict = {Exists: %v, WinnerEpoch: %d}, want {%v, %d}", c.Exists, c.WinnerEpoch, exists, winner)
	}
	if dht.IsTransient(err) {
		t.Fatal("CAS conflict classified transient; a policy retry would re-lose it unchanged")
	}
}

// RunConditional drives the conformance battery for the conditional-write
// plane (dht.Conditional) against fresh substrates from the factory. It
// holds for native implementations and for the DoPutIf fetch-verify
// fallback alike; only the atomicity-under-contention subtests require a
// native plane (disable via opts.SkipConcurrency for fallback-only
// substrates).
func RunConditional(t *testing.T, factory func(t *testing.T) dht.DHT, opts Options) {
	t.Helper()
	ctx := context.Background()

	t.Run("PutIfReplacesOnMatch", func(t *testing.T) {
		d := factory(t)
		if err := d.Put(ctx, "k", &EpochValue{Epoch: 1, Body: "a"}); err != nil {
			t.Fatal(err)
		}
		if err := dht.DoPutIf(ctx, d, "k", &EpochValue{Epoch: 2, Body: "b"}, 1); err != nil {
			t.Fatalf("PutIf(matching epoch) = %v", err)
		}
		if body, epoch := condBody(t, d, "k"); body != "b" || epoch != 2 {
			t.Fatalf("stored = %q/%d, want b/2", body, epoch)
		}
	})

	t.Run("PutIfStaleLosesWithWinnerEpoch", func(t *testing.T) {
		d := factory(t)
		if err := d.Put(ctx, "k", &EpochValue{Epoch: 5, Body: "winner"}); err != nil {
			t.Fatal(err)
		}
		err := dht.DoPutIf(ctx, d, "k", &EpochValue{Epoch: 4, Body: "stale"}, 3)
		wantConflict(t, err, true, 5)
		if body, epoch := condBody(t, d, "k"); body != "winner" || epoch != 5 {
			t.Fatalf("lost CAS disturbed the store: %q/%d", body, epoch)
		}
	})

	t.Run("PutIfAbsentConflicts", func(t *testing.T) {
		// A PutIf against nothing is a conflict (Exists=false), not a
		// create: the caller's epoch premise "something is stored" failed.
		d := factory(t)
		err := dht.DoPutIf(ctx, d, "absent", &EpochValue{Epoch: 1}, 0)
		wantConflict(t, err, false, 0)
		if _, err := d.Get(ctx, "absent"); !errors.Is(err, dht.ErrNotFound) {
			t.Fatalf("Get after conflicted PutIf = %v, want ErrNotFound", err)
		}
	})

	t.Run("CreateIfFirstWins", func(t *testing.T) {
		d := factory(t)
		if err := dht.DoCreateIf(ctx, d, "k", &EpochValue{Epoch: 7, Body: "first"}); err != nil {
			t.Fatalf("CreateIf(absent) = %v", err)
		}
		err := dht.DoCreateIf(ctx, d, "k", &EpochValue{Epoch: 9, Body: "second"})
		wantConflict(t, err, true, 7)
		if body, epoch := condBody(t, d, "k"); body != "first" || epoch != 7 {
			t.Fatalf("stored = %q/%d, want first/7", body, epoch)
		}
	})

	t.Run("RemoveIfMatchDeletes", func(t *testing.T) {
		d := factory(t)
		if err := d.Put(ctx, "k", &EpochValue{Epoch: 4}); err != nil {
			t.Fatal(err)
		}
		if err := dht.DoRemoveIf(ctx, d, "k", 4); err != nil {
			t.Fatalf("RemoveIf(matching) = %v", err)
		}
		if _, err := d.Get(ctx, "k"); !errors.Is(err, dht.ErrNotFound) {
			t.Fatalf("Get after RemoveIf = %v, want ErrNotFound", err)
		}
	})

	t.Run("RemoveIfMismatchKeeps", func(t *testing.T) {
		d := factory(t)
		if err := d.Put(ctx, "k", &EpochValue{Epoch: 4, Body: "keep"}); err != nil {
			t.Fatal(err)
		}
		err := dht.DoRemoveIf(ctx, d, "k", 2)
		wantConflict(t, err, true, 4)
		if body, _ := condBody(t, d, "k"); body != "keep" {
			t.Fatalf("stored = %q, want keep", body)
		}
	})

	t.Run("RemoveIfAbsentIsSuccess", func(t *testing.T) {
		// The removal's goal state already holds; like Remove, this is not
		// an error (and not a conflict — there is no winner).
		d := factory(t)
		if err := dht.DoRemoveIf(ctx, d, "absent", 3); err != nil {
			t.Fatalf("RemoveIf(absent) = %v, want nil", err)
		}
	})

	t.Run("WriteIfSemantics", func(t *testing.T) {
		d := factory(t)
		if err := dht.DoWriteIf(ctx, d, "k", &EpochValue{Epoch: 1}, 0); !errors.Is(err, dht.ErrNotFound) {
			t.Fatalf("WriteIf(absent) = %v, want ErrNotFound (Write's contract)", err)
		}
		if err := d.Put(ctx, "k", &EpochValue{Epoch: 1, Body: "a"}); err != nil {
			t.Fatal(err)
		}
		if err := dht.DoWriteIf(ctx, d, "k", &EpochValue{Epoch: 2, Body: "b"}, 1); err != nil {
			t.Fatalf("WriteIf(matching) = %v", err)
		}
		err := dht.DoWriteIf(ctx, d, "k", &EpochValue{Epoch: 2, Body: "c"}, 1)
		wantConflict(t, err, true, 2)
		if body, epoch := condBody(t, d, "k"); body != "b" || epoch != 2 {
			t.Fatalf("stored = %q/%d, want b/2", body, epoch)
		}
	})

	t.Run("EpochSurvivesPlainOps", func(t *testing.T) {
		// The epoch the conditional plane compares is the stored value's,
		// however it got there: plain Put, Write, and batched puts all
		// refresh it.
		d := factory(t)
		if err := d.Put(ctx, "k", &EpochValue{Epoch: 3}); err != nil {
			t.Fatal(err)
		}
		if err := d.Write(ctx, "k", &EpochValue{Epoch: 8}); err != nil {
			t.Fatal(err)
		}
		wantConflict(t, dht.DoPutIf(ctx, d, "k", &EpochValue{Epoch: 4}, 3), true, 8)
		if err := dht.DoPutIf(ctx, d, "k", &EpochValue{Epoch: 9}, 8); err != nil {
			t.Fatalf("PutIf against Write's epoch = %v", err)
		}
		for i, err := range dht.DoPutBatch(ctx, d, []dht.KV{{Key: "k", Val: &EpochValue{Epoch: 12}}}) {
			if err != nil {
				t.Fatalf("PutBatch slot %d: %v", i, err)
			}
		}
		wantConflict(t, dht.DoPutIf(ctx, d, "k", &EpochValue{Epoch: 10}, 9), true, 12)
		if err := dht.DoPutIf(ctx, d, "k", &EpochValue{Epoch: 13}, 12); err != nil {
			t.Fatalf("PutIf against batched epoch = %v", err)
		}
	})

	t.Run("ContextCanceled", func(t *testing.T) {
		d := factory(t)
		if err := d.Put(ctx, "k", &EpochValue{Epoch: 1, Body: "keep"}); err != nil {
			t.Fatal(err)
		}
		cctx, cancel := context.WithCancel(context.Background())
		cancel()
		if err := dht.DoPutIf(cctx, d, "k", &EpochValue{Epoch: 2}, 1); !errors.Is(err, context.Canceled) {
			t.Fatalf("PutIf(cancelled) = %v, want context.Canceled", err)
		}
		if err := dht.DoCreateIf(cctx, d, "k2", &EpochValue{Epoch: 1}); !errors.Is(err, context.Canceled) {
			t.Fatalf("CreateIf(cancelled) = %v, want context.Canceled", err)
		}
		if err := dht.DoRemoveIf(cctx, d, "k", 1); !errors.Is(err, context.Canceled) {
			t.Fatalf("RemoveIf(cancelled) = %v, want context.Canceled", err)
		}
		if err := dht.DoWriteIf(cctx, d, "k", &EpochValue{Epoch: 2}, 1); !errors.Is(err, context.Canceled) {
			t.Fatalf("WriteIf(cancelled) = %v, want context.Canceled", err)
		}
		if body, epoch := condBody(t, d, "k"); body != "keep" || epoch != 1 {
			t.Fatalf("cancelled ops disturbed the store: %q/%d", body, epoch)
		}
	})

	if opts.SkipConcurrency {
		return
	}

	t.Run("CreateIfRaceOneWinner", func(t *testing.T) {
		// N clients race to create the same key: exactly one wins, every
		// loser learns the winner exists, and the stored value is the
		// winner's, whole.
		d := factory(t)
		const racers = 8
		winners := make([]bool, racers)
		var wg sync.WaitGroup
		for g := 0; g < racers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				err := dht.DoCreateIf(ctx, d, "race", &EpochValue{Epoch: 1, Body: fmt.Sprintf("w%d", g)})
				switch {
				case err == nil:
					winners[g] = true
				case errors.Is(err, dht.ErrCASConflict):
				default:
					t.Errorf("racer %d: %v", g, err)
				}
			}(g)
		}
		wg.Wait()
		var won []int
		for g, w := range winners {
			if w {
				won = append(won, g)
			}
		}
		if len(won) != 1 {
			t.Fatalf("winners = %v, want exactly one", won)
		}
		if body, _ := condBody(t, d, "race"); body != fmt.Sprintf("w%d", won[0]) {
			t.Fatalf("stored %q, want the winner's value w%d", body, won[0])
		}
	})

	t.Run("CASSerializesIncrements", func(t *testing.T) {
		// The lost-update litmus: N clients each apply M read-modify-write
		// increments through PutIf. With an atomic conditional plane no
		// round is lost; the final epoch is exactly N*M.
		d := factory(t)
		if err := d.Put(ctx, "ctr", &EpochValue{Epoch: 0}); err != nil {
			t.Fatal(err)
		}
		const (
			racers = 6
			incs   = 10
		)
		var wg sync.WaitGroup
		for g := 0; g < racers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < incs; i++ {
					for attempt := 0; ; attempt++ {
						if attempt > 1000 {
							t.Errorf("racer %d: increment %d livelocked", g, i)
							return
						}
						v, err := d.Get(ctx, "ctr")
						if err != nil {
							t.Errorf("racer %d: Get: %v", g, err)
							return
						}
						cur := v.(*EpochValue).Epoch
						err = dht.DoPutIf(ctx, d, "ctr", &EpochValue{Epoch: cur + 1}, cur)
						if err == nil {
							break
						}
						if !errors.Is(err, dht.ErrCASConflict) {
							t.Errorf("racer %d: PutIf: %v", g, err)
							return
						}
					}
				}
			}(g)
		}
		wg.Wait()
		if t.Failed() {
			return
		}
		if _, epoch := condBody(t, d, "ctr"); epoch != racers*incs {
			t.Fatalf("final epoch %d, want %d: %d increments were lost", epoch, racers*incs, racers*incs-int(epoch))
		}
	})
}
