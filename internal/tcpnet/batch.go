package tcpnet

import (
	"context"
	"fmt"
	"sync"

	"lht/internal/dht"
)

var _ dht.Batcher = (*Client)(nil)

// GetBatch implements dht.Batcher: the batch's keys are grouped by owning
// node and each group travels as one framed multi-op message, the round
// trips to distinct nodes running concurrently. A transport failure fails
// only that node's slots; the rest of the batch stands.
func (c *Client) GetBatch(ctx context.Context, keys []string) ([]dht.Value, []error) {
	vals := make([]dht.Value, len(keys))
	errs := make([]error, len(keys))
	var wg sync.WaitGroup
	for n, slots := range c.groupByOwner(keys) {
		wg.Add(1)
		go func(n *nodeConn, slots []int) {
			defer wg.Done()
			req := request{Op: opGetBatch, Keys: make([]string, len(slots))}
			for j, i := range slots {
				req.Keys[j] = keys[i]
			}
			replies, err := n.batchRoundTrip(ctx, req, len(slots))
			if err != nil {
				for _, i := range slots {
					errs[i] = err
				}
				return
			}
			for j, i := range slots {
				switch replies[j].Err {
				case "":
					vals[i], errs[i] = decodeValue(replies[j].Val)
				case errNotFound:
					errs[i] = dht.ErrNotFound
				default:
					errs[i] = fmt.Errorf("tcpnet: server error: %s", replies[j].Err)
				}
			}
		}(n, slots)
	}
	wg.Wait()
	return vals, errs
}

// PutBatch implements dht.Batcher with the same per-owner grouping as
// GetBatch. Pairs travel and apply in slice order, so a duplicate key's
// last occurrence wins. A pair whose value fails to encode fails in its
// slot alone and is left out of the wire message.
func (c *Client) PutBatch(ctx context.Context, kvs []dht.KV) []error {
	errs := make([]error, len(kvs))
	keys := make([]string, len(kvs))
	for i, kv := range kvs {
		keys[i] = kv.Key
	}
	data := make([][]byte, len(kvs))
	for i, kv := range kvs {
		b, err := encodeValue(kv.Val)
		if err != nil {
			errs[i] = err
			continue
		}
		data[i] = b
	}
	var wg sync.WaitGroup
	for n, slots := range c.groupByOwner(keys) {
		sendable := slots[:0:0]
		for _, i := range slots {
			if errs[i] == nil {
				sendable = append(sendable, i)
			}
		}
		if len(sendable) == 0 {
			continue
		}
		wg.Add(1)
		go func(n *nodeConn, slots []int) {
			defer wg.Done()
			req := request{Op: opPutBatch, KVs: make([]batchKV, len(slots))}
			for j, i := range slots {
				req.KVs[j] = batchKV{Key: kvs[i].Key, Val: data[i]}
			}
			replies, err := n.batchRoundTrip(ctx, req, len(slots))
			if err != nil {
				for _, i := range slots {
					errs[i] = err
				}
				return
			}
			for j, i := range slots {
				if replies[j].Err != "" {
					errs[i] = fmt.Errorf("tcpnet: server error: %s", replies[j].Err)
				}
			}
		}(n, sendable)
	}
	wg.Wait()
	return errs
}

// groupByOwner maps each owning node to the slot indices it serves, in
// ascending slice order per node.
func (c *Client) groupByOwner(keys []string) map[*nodeConn][]int {
	groups := make(map[*nodeConn][]int)
	for i, k := range keys {
		n := c.owner(k)
		groups[n] = append(groups[n], i)
	}
	return groups
}

// batchRoundTrip performs one batched request and validates the reply
// shape, so callers can index replies by slot unconditionally.
func (n *nodeConn) batchRoundTrip(ctx context.Context, req request, want int) ([]batchReply, error) {
	resp, err := n.roundTrip(ctx, req)
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, fmt.Errorf("tcpnet: server error: %s", resp.Err)
	}
	if len(resp.Batch) != want {
		return nil, fmt.Errorf("tcpnet: batch reply has %d slots, want %d", len(resp.Batch), want)
	}
	return resp.Batch, nil
}
