package bench

import (
	"strings"
	"testing"
)

// TestRunWireAblation runs A8 at a reduced scale: the cross-codec oracle
// must hold, and the headline claim — the framed binary wire allocates
// less than gob on every operation at every value size — must reproduce.
func TestRunWireAblation(t *testing.T) {
	o := Options{Theta: 16, Depth: 12, Trials: 1, Queries: 60, Seed: 1}
	allocs, thru, tail, err := RunWireAblation(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(allocs.Series) != 4 || len(thru.Series) != 4 || len(tail.Series) != 2 {
		t.Fatalf("series counts = %d/%d/%d", len(allocs.Series), len(thru.Series), len(tail.Series))
	}
	byName := map[string][]Point{}
	for _, s := range allocs.Series {
		if len(s.Points) != len(wireValueSizes) {
			t.Fatalf("series %q has %d points, want %d", s.Name, len(s.Points), len(wireValueSizes))
		}
		byName[s.Name] = s.Points
	}
	for _, op := range []string{"Get", "Put"} {
		bin, gob := byName["binary "+op], byName["gob "+op]
		for i := range bin {
			if bin[i].Y >= gob[i].Y {
				t.Errorf("%s at %g B: binary %g allocs/op not below gob %g",
					op, bin[i].X, bin[i].Y, gob[i].Y)
			}
		}
	}
	if !gatedResult(allocs) {
		t.Error("the allocs/op result must be eligible for the perf gate")
	}
	if gatedResult(thru) || gatedResult(tail) {
		t.Error("timed results must not be eligible for the perf gate")
	}
}

// TestRunSweep runs the parameter sweep at a reduced scale. The sweep
// itself asserts the strong property (round trips identical across
// substrates and value sizes); here we check the emitted shape and that
// batching monotonically reduces the deterministic round-trip rows.
func TestRunSweep(t *testing.T) {
	o := Options{Theta: 16, Depth: 12, Trials: 1, Queries: 30, Seed: 1}
	results, err := RunSweep(o, 128)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("RunSweep returned %d results, want 5", len(results))
	}
	rt, tpBatch, tpValue, cacheRt, skewRt := results[0], results[1], results[2], results[3], results[4]
	if len(rt.Series) != 2 {
		t.Fatalf("rt series = %d, want cache off + cache on", len(rt.Series))
	}
	for _, s := range rt.Series {
		if len(s.Points) != len(sweepBatchSizes) {
			t.Fatalf("rt series %q has %d points", s.Name, len(s.Points))
		}
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].Y > s.Points[i-1].Y {
				t.Errorf("rt series %q not monotone: batch %g costs %g, batch %g costs %g",
					s.Name, s.Points[i-1].X, s.Points[i-1].Y, s.Points[i].X, s.Points[i].Y)
			}
		}
		if s.Points[0].Y <= 0 {
			t.Errorf("rt series %q has empty rows", s.Name)
		}
	}
	if len(tpBatch.Series) != len(sweepSubstrates) || len(tpValue.Series) != len(sweepSubstrates) {
		t.Fatalf("throughput series = %d/%d, want %d each",
			len(tpBatch.Series), len(tpValue.Series), len(sweepSubstrates))
	}
	if !gatedResult(rt) || gatedResult(tpBatch) || gatedResult(tpValue) {
		t.Error("only the round-trip result may be eligible for the perf gate")
	}

	// The cache-capacity axis: deterministic, gated, and a bigger cache
	// never costs more round trips.
	if !gatedResult(cacheRt) {
		t.Error("the cache-capacity sweep must be eligible for the perf gate")
	}
	capRow := cacheRt.Series[0]
	if len(capRow.Points) != len(sweepCacheSizes) {
		t.Fatalf("cache sweep has %d points, want %d", len(capRow.Points), len(sweepCacheSizes))
	}
	for i := 1; i < len(capRow.Points); i++ {
		if capRow.Points[i].Y > capRow.Points[i-1].Y {
			t.Errorf("cache sweep not monotone: capacity %g costs %g, capacity %g costs %g",
				capRow.Points[i-1].X, capRow.Points[i-1].Y, capRow.Points[i].X, capRow.Points[i].Y)
		}
	}
	if capRow.Points[0].Y <= capRow.Points[len(capRow.Points)-1].Y {
		t.Errorf("a 2-bucket cache should thrash: %g round trips vs %g at capacity %d",
			capRow.Points[0].Y, capRow.Points[len(capRow.Points)-1].Y, sweepCacheSizes[len(sweepCacheSizes)-1])
	}

	// The skew axis: gated; the cache never costs extra round trips at
	// any skew, and under heavy skew — arrivals concentrated on leaves
	// the cache holds — it strictly wins.
	if !gatedResult(skewRt) {
		t.Error("the skew sweep must be eligible for the perf gate")
	}
	for _, sr := range skewRt.Series {
		if len(sr.Points) != len(sweepSkews) {
			t.Fatalf("skew series %q has %d points, want %d", sr.Name, len(sr.Points), len(sweepSkews))
		}
	}
	off, on := skewRt.Series[0], skewRt.Series[1]
	for i := range sweepSkews {
		if on.Points[i].Y > off.Points[i].Y {
			t.Errorf("cache costs round trips at s=%g: on %g > off %g",
				sweepSkews[i], on.Points[i].Y, off.Points[i].Y)
		}
	}
	last := len(sweepSkews) - 1
	if on.Points[last].Y >= off.Points[last].Y {
		t.Errorf("cache does not win at s=%g: on %g vs off %g",
			sweepSkews[last], on.Points[last].Y, off.Points[last].Y)
	}
}

// report builds a minimal report for the gate tests.
func report(o Options, results ...Result) *Report {
	r := NewReport(o)
	for _, res := range results {
		r.Add(res, 0)
	}
	return r
}

func TestCompareBaseline(t *testing.T) {
	o := Options{}.WithDefaults()
	gated := func(y float64) Result {
		return Result{Name: "A8", YLabel: "allocs/op",
			Series: []Series{{Name: "binary Get", Points: []Point{{X: 16, Y: y}}}}}
	}
	timed := func(y float64) Result {
		return Result{Name: "A8b", YLabel: "kops/sec",
			Series: []Series{{Name: "binary Get", Points: []Point{{X: 16, Y: y}}}}}
	}

	base := report(o, gated(10), timed(100))

	// Within the 20% slack: ok; improvements always ok.
	if bad := CompareBaseline(base, report(o, gated(11.9), timed(100))); len(bad) != 0 {
		t.Errorf("within-slack run flagged: %v", bad)
	}
	if bad := CompareBaseline(base, report(o, gated(3), timed(100))); len(bad) != 0 {
		t.Errorf("improvement flagged: %v", bad)
	}
	// Past the slack: flagged.
	if bad := CompareBaseline(base, report(o, gated(13), timed(100))); len(bad) != 1 {
		t.Errorf("regression not flagged exactly once: %v", bad)
	}
	// Timed rows never gate, however far they move.
	if bad := CompareBaseline(base, report(o, gated(10), timed(1))); len(bad) != 0 {
		t.Errorf("timed row gated: %v", bad)
	}
	// A gated baseline row the current run no longer produces is itself a
	// violation — a silently vanished row must not pass the gate.
	if bad := CompareBaseline(base, report(o, timed(100))); len(bad) != 1 || !strings.Contains(bad[0], "missing") {
		t.Errorf("missing row not flagged: %v", bad)
	}
	// Near-zero baselines get the absolute grace: 4 -> 5 allocs is not a
	// 20% gate trip.
	small := report(o, gated(4))
	if bad := CompareBaseline(small, report(o, gated(5.2))); len(bad) != 0 {
		t.Errorf("grace not applied: %v", bad)
	}
	// Mismatched options make runs incomparable.
	o2 := o
	o2.Queries = o.Queries + 1
	if bad := CompareBaseline(base, report(o2, gated(10), timed(100))); len(bad) != 1 || !strings.Contains(bad[0], "options differ") {
		t.Errorf("option mismatch not flagged: %v", bad)
	}

	if n := GatedRows(base); n != 1 {
		t.Errorf("GatedRows = %d, want 1", n)
	}
}

func TestLoadReportRoundTrip(t *testing.T) {
	o := Options{}.WithDefaults()
	r := report(o, Result{Name: "A8", YLabel: "allocs/op",
		Series: []Series{{Name: "s", Points: []Point{{X: 1, Y: 2}}}}})
	path := t.TempDir() + "/report.json"
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if bad := CompareBaseline(got, r); len(bad) != 0 {
		t.Errorf("round-tripped report does not gate cleanly against itself: %v", bad)
	}
	if _, err := LoadReport(t.TempDir() + "/missing.json"); err == nil {
		t.Error("missing report loaded without error")
	}
}
