package lht

import (
	"context"
	"errors"
	"fmt"

	"lht/internal/dht"
	"lht/internal/metrics"
	"lht/internal/record"
)

// Scan returns up to limit records with keys >= from, in ascending key
// order: the pagination primitive DB-style applications layer on a range
// index. It costs one LHT lookup for the first bucket plus one DHT-lookup
// per additional bucket walked (the same neighbor-function walk the range
// algorithm uses), so a full scan in pages costs the same as one range
// query over the union.
func (ix *Index) Scan(from float64, limit int) ([]record.Record, Cost, error) {
	return ix.ScanContext(context.Background(), from, limit)
}

// ScanContext is Scan with a caller-supplied context; cancellation stops
// the walk at the next leaf fetch.
func (ix *Index) ScanContext(ctx context.Context, from float64, limit int) (out []record.Record, cost Cost, err error) {
	if limit <= 0 {
		return nil, cost, fmt.Errorf("%w: scan limit %d", ErrBadRange, limit)
	}
	ctx, done := ix.beginOp(ctx, metrics.OpScan)
	defer func() { done(err) }()
	b, _, lcost, err := ix.lookup(ctx, from)
	cost.Add(lcost)
	if err != nil {
		return nil, cost, err
	}
	// The neighbor walk is forwarding traffic, like the range sweep.
	ctx = metrics.WithPhase(ctx, metrics.PhaseForward)
	for {
		matched := record.FilterRange(nil, b.Records, from, 1)
		record.SortByKey(matched)
		for _, r := range matched {
			out = append(out, r)
			if len(out) == limit {
				return out, cost, nil
			}
		}
		// Advance to the next leaf in key order: the near-end leaf of
		// the nearest right branch.
		beta, ok := b.Label.RightNeighbor()
		if !ok {
			return out, cost, nil // reached the right edge of the tree
		}
		nb, err := ix.getBucket(ctx, beta.Key(), &cost)
		cost.Steps++
		if errors.Is(err, dht.ErrNotFound) {
			nb, err = ix.getBucket(ctx, beta.Name().Key(), &cost)
			cost.Steps++
		}
		if err != nil {
			return out, cost, fmt.Errorf("lht: scan walk %s: %w", beta, err)
		}
		b = nb
	}
}
