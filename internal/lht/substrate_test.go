package lht

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"lht/internal/chord"
	"lht/internal/dht"
	"lht/internal/kademlia"
	"lht/internal/record"
)

// These integration tests run the full LHT engine over the real simulated
// substrates - the paper's "adaptable to any DHT substrate" claim - and
// cross-check results against the single-map Local DHT.

func runSubstrateWorkload(t *testing.T, d dht.DHT, seed int64) {
	t.Helper()
	ix, err := New(d, Config{SplitThreshold: 8, MergeThreshold: 6, Depth: 20})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	oracle := make(map[float64]string)
	for i := 0; i < 800; i++ {
		k := rng.Float64()
		if rng.Intn(5) == 0 && len(oracle) > 0 {
			// Delete a known key.
			for dk := range oracle {
				k = dk
				break
			}
			if _, err := ix.Delete(k); err != nil {
				t.Fatalf("Delete(%v): %v", k, err)
			}
			delete(oracle, k)
			continue
		}
		v := fmt.Sprintf("v%d", i)
		if _, err := ix.Insert(record.Record{Key: k, Value: []byte(v)}); err != nil {
			t.Fatalf("Insert(%v): %v", k, err)
		}
		oracle[k] = v
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for k, v := range oracle {
		rec, _, err := ix.Search(k)
		if err != nil || string(rec.Value) != v {
			t.Fatalf("Search(%v) = %v, %v; want %q", k, rec, err, v)
		}
	}
	// Range over everything must agree with the oracle.
	keys := make([]float64, 0, len(oracle))
	for k := range oracle {
		keys = append(keys, k)
	}
	sort.Float64s(keys)
	got, _, err := ix.Range(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(keys) {
		t.Fatalf("Range(0,1) = %d records, want %d", len(got), len(keys))
	}
	gotKeys := make([]float64, len(got))
	for i, r := range got {
		gotKeys[i] = r.Key
	}
	sort.Float64s(gotKeys)
	for i := range keys {
		if gotKeys[i] != keys[i] {
			t.Fatalf("Range key %d = %v, want %v", i, gotKeys[i], keys[i])
		}
	}
	if r, _, err := ix.Min(); err != nil || r.Key != keys[0] {
		t.Fatalf("Min = %v, %v; want %v", r, err, keys[0])
	}
	if r, _, err := ix.Max(); err != nil || r.Key != keys[len(keys)-1] {
		t.Fatalf("Max = %v, %v; want %v", r, err, keys[len(keys)-1])
	}
}

func TestLHTOverChord(t *testing.T) {
	ring, err := chord.NewRing(16, chord.Config{Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	runSubstrateWorkload(t, ring, 41)
	if ring.Network().Messages() == 0 {
		t.Error("chord substrate reported no traffic")
	}
}

func TestLHTOverChordWithReplication(t *testing.T) {
	ring, err := chord.NewRing(12, chord.Config{Seed: 32, Replicas: 3})
	if err != nil {
		t.Fatal(err)
	}
	runSubstrateWorkload(t, ring, 42)
}

func TestLHTOverKademlia(t *testing.T) {
	nw, err := kademlia.NewNetwork(16, kademlia.Config{Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	runSubstrateWorkload(t, nw, 43)
	if nw.Network().Messages() == 0 {
		t.Error("kademlia substrate reported no traffic")
	}
}

// TestLHTSurvivesChordChurn exercises the paper's maintenance argument
// end to end: the index keeps answering correctly while nodes join and
// leave gracefully, because the DHT absorbs membership changes and the
// index pays nothing.
func TestLHTSurvivesChordChurn(t *testing.T) {
	ring, err := chord.NewRing(10, chord.Config{Seed: 34, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := New(ring, Config{SplitThreshold: 8, MergeThreshold: 0, Depth: 20})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(44))
	oracle := make(map[float64]bool)
	next := 10
	for round := 0; round < 6; round++ {
		for i := 0; i < 100; i++ {
			k := rng.Float64()
			if _, err := ix.Insert(record.Record{Key: k}); err != nil {
				t.Fatalf("round %d: Insert: %v", round, err)
			}
			oracle[k] = true
		}
		// Churn: one join, one graceful leave.
		if err := ring.AddNode(fmt.Sprintf("n%d", next)); err != nil {
			t.Fatal(err)
		}
		next++
		addrs := ring.NodeAddrs()
		if err := ring.RemoveNode(addrs[rng.Intn(len(addrs))], true); err != nil {
			t.Fatal(err)
		}
		ring.Stabilize(3)
	}
	for k := range oracle {
		if _, _, err := ix.Search(k); err != nil {
			t.Fatalf("after churn, Search(%v): %v", k, err)
		}
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
