package metrics

import (
	"sync"
	"testing"
)

func TestCountersAndSnapshot(t *testing.T) {
	var c Counters
	c.AddLookups(3)
	c.AddFailedGets(1)
	c.AddMovedRecords(10)
	c.AddSplits(2)
	c.AddMerges(1)
	c.AddMaintLookups(2)
	c.AddCacheHits(5)
	c.AddCacheMisses(4)
	c.AddCacheStale(3)
	s := c.Snapshot()
	want := Snapshot{Lookups: 3, FailedGets: 1, MovedRecords: 10, Splits: 2, Merges: 1, MaintLookups: 2,
		CacheHits: 5, CacheMisses: 4, CacheStale: 3}
	if s != want {
		t.Fatalf("Snapshot = %+v, want %+v", s, want)
	}
	diff := s.Sub(Snapshot{Lookups: 1, MovedRecords: 4, CacheHits: 2})
	if diff.Lookups != 2 || diff.MovedRecords != 6 || diff.Splits != 2 || diff.CacheHits != 3 || diff.CacheStale != 3 {
		t.Fatalf("Sub = %+v", diff)
	}
	c.Reset()
	if c.Snapshot() != (Snapshot{}) {
		t.Fatal("Reset incomplete")
	}
}

func TestCountersConcurrent(t *testing.T) {
	var c Counters
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.AddLookups(1)
				c.AddMaintLookups(1)
			}
		}()
	}
	wg.Wait()
	if s := c.Snapshot(); s.Lookups != 8000 || s.MaintLookups != 8000 {
		t.Fatalf("Snapshot = %+v", s)
	}
}

func TestCostAdd(t *testing.T) {
	c := Cost{Lookups: 2, Steps: 1}
	c.Add(Cost{Lookups: 3, Steps: 2})
	if c != (Cost{Lookups: 5, Steps: 3}) {
		t.Fatalf("Add = %+v", c)
	}
}
