package workload

import (
	"math"
	"testing"
	"time"

	"lht/internal/stats"
)

func TestDistString(t *testing.T) {
	if Uniform.String() != "uniform" || Gaussian.String() != "gaussian" || Zipf.String() != "zipf" {
		t.Error("Dist names wrong")
	}
	if Dist(42).String() != "dist(42)" {
		t.Error("unknown dist name wrong")
	}
}

func TestKeysInDomain(t *testing.T) {
	for _, d := range []Dist{Uniform, Gaussian, Zipf} {
		g := NewGenerator(d, 1)
		for i := 0; i < 10000; i++ {
			k := g.Key()
			if !(k >= 0 && k < 1) {
				t.Fatalf("%v: key %v outside [0,1)", d, k)
			}
		}
	}
}

func TestDeterministicBySeed(t *testing.T) {
	a := NewGenerator(Gaussian, 7).Records(100)
	b := NewGenerator(Gaussian, 7).Records(100)
	for i := range a {
		if a[i].Key != b[i].Key {
			t.Fatalf("seeded generators diverge at %d", i)
		}
	}
	c := NewGenerator(Gaussian, 8).Records(100)
	same := true
	for i := range a {
		if a[i].Key != c[i].Key {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestRecordsDistinct(t *testing.T) {
	recs := NewGenerator(Uniform, 3).Records(5000)
	if len(recs) != 5000 {
		t.Fatalf("got %d records", len(recs))
	}
	seen := make(map[float64]bool, len(recs))
	for _, r := range recs {
		if seen[r.Key] {
			t.Fatalf("duplicate key %v", r.Key)
		}
		seen[r.Key] = true
		if len(r.Value) == 0 {
			t.Fatal("empty payload")
		}
	}
}

func TestDistributionShapes(t *testing.T) {
	// Uniform: mean ~ 0.5, stddev ~ 1/sqrt(12) ~ 0.289.
	g := NewGenerator(Uniform, 4)
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = g.Key()
	}
	if m := stats.Mean(xs); m < 0.48 || m > 0.52 {
		t.Errorf("uniform mean = %v", m)
	}
	if s := stats.StdDev(xs); s < 0.27 || s > 0.31 {
		t.Errorf("uniform stddev = %v", s)
	}

	// Gaussian: mean 0.5, stddev ~ 1/6 (slightly less after redraws).
	g = NewGenerator(Gaussian, 5)
	for i := range xs {
		xs[i] = g.Key()
	}
	if m := stats.Mean(xs); m < 0.48 || m > 0.52 {
		t.Errorf("gaussian mean = %v", m)
	}
	if s := stats.StdDev(xs); s < 0.15 || s > 0.18 {
		t.Errorf("gaussian stddev = %v", s)
	}

	// Zipf: heavily skewed toward 0.
	g = NewGenerator(Zipf, 6)
	below := 0
	for i := 0; i < 20000; i++ {
		if g.Key() < 0.01 {
			below++
		}
	}
	if below < 15000 {
		t.Errorf("zipf mass below 0.01 = %d/20000", below)
	}
}

func TestRangeQuery(t *testing.T) {
	g := NewGenerator(Uniform, 9)
	for i := 0; i < 1000; i++ {
		lo, hi := g.RangeQuery(0.2)
		if !(lo >= 0 && hi <= 1.0000001 && hi-lo > 0.19999) {
			t.Fatalf("bad range [%v, %v)", lo, hi)
		}
	}
}

// TestZipfRecordsTerminate pins the fix for the distinct-key rejection
// near-livelock: before sub-bucket jitter, 2^16 Zipf records over the
// 2^20 lattice (whose mass sits on a handful of ranks near 0) would spin
// effectively forever. With jitter the draw is continuous and finishes
// in well under the watchdog.
func TestZipfRecordsTerminate(t *testing.T) {
	const n = 1 << 16
	done := make(chan []float64, 1)
	go func() {
		recs := NewGenerator(Zipf, 11).Records(n)
		keys := make([]float64, len(recs))
		for i, r := range recs {
			keys[i] = r.Key
		}
		done <- keys
	}()
	var keys []float64
	select {
	case keys = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("drawing 2^16 Zipf records did not terminate")
	}
	if len(keys) != n {
		t.Fatalf("got %d records", len(keys))
	}
	seen := make(map[float64]bool, n)
	below := 0
	for _, k := range keys {
		if !(k >= 0 && k < 1) {
			t.Fatalf("key %v outside [0,1)", k)
		}
		if seen[k] {
			t.Fatalf("duplicate key %v", k)
		}
		seen[k] = true
		if k < 0.01 {
			below++
		}
	}
	// The jitter must not flatten the skew: the head of the lattice still
	// holds most of the mass.
	if below < n/2 {
		t.Errorf("zipf record mass below 0.01 = %d/%d, skew lost", below, n)
	}
}

// TestRangeQueryClamp is the table test for span validation: any span,
// including the previously-broken span <= 0 and span >= 1 cases, must
// yield 0 <= lo <= hi <= 1 with the span clamped into [0, 1].
func TestRangeQueryClamp(t *testing.T) {
	cases := []struct {
		span     float64
		wantSpan float64
	}{
		{span: 0.2, wantSpan: 0.2},
		{span: 0, wantSpan: 0},
		{span: -0.5, wantSpan: 0},
		{span: -1e9, wantSpan: 0},
		{span: 1, wantSpan: 1},
		{span: 1.5, wantSpan: 1},
		{span: math.Inf(1), wantSpan: 1},
		{span: math.Inf(-1), wantSpan: 0},
		{span: math.NaN(), wantSpan: 0},
		{span: 1e-9, wantSpan: 1e-9},
	}
	for _, tc := range cases {
		g := NewGenerator(Uniform, 12)
		for i := 0; i < 100; i++ {
			lo, hi := g.RangeQuery(tc.span)
			if math.IsNaN(lo) || math.IsNaN(hi) {
				t.Fatalf("span %v: NaN range [%v, %v)", tc.span, lo, hi)
			}
			if !(lo >= 0 && lo <= hi && hi <= 1) {
				t.Fatalf("span %v: bad range [%v, %v)", tc.span, lo, hi)
			}
			if got := hi - lo; math.Abs(got-tc.wantSpan) > 1e-12 {
				t.Fatalf("span %v: got width %v, want %v", tc.span, got, tc.wantSpan)
			}
		}
	}
	// Clamping must not desync seeded streams: a clamped call consumes
	// exactly one draw, like a valid one.
	a, b := NewGenerator(Uniform, 13), NewGenerator(Uniform, 13)
	a.RangeQuery(-1)
	b.RangeQuery(0.5)
	alo, _ := a.RangeQuery(0.3)
	blo, _ := b.RangeQuery(0.3)
	if alo != blo {
		t.Fatal("clamped RangeQuery consumed a different number of draws")
	}
}

func TestArrivals(t *testing.T) {
	g := NewGenerator(Uniform, 14)
	recs := g.Records(1000)
	keys := make([]float64, len(recs))
	for i, r := range recs {
		keys[i] = r.Key
	}

	if _, err := NewArrivals(nil, 0, 1); err == nil {
		t.Error("empty population accepted")
	}
	if _, err := NewArrivals(keys, 0.5, 1); err == nil {
		t.Error("skew in (0,1] accepted")
	}

	pop := func(s float64) map[float64]int {
		a, err := NewArrivals(keys, s, 42)
		if err != nil {
			t.Fatalf("NewArrivals(s=%v): %v", s, err)
		}
		counts := make(map[float64]int)
		for i := 0; i < 50000; i++ {
			k := a.Next()
			counts[k]++
		}
		return counts
	}

	// Uniform arrivals: the hottest key is unremarkable.
	u := pop(0)
	for k, n := range u {
		if n > 200 { // mean 50, generous bound
			t.Fatalf("uniform arrivals concentrate on %v: %d/50000", k, n)
		}
	}

	// Zipf arrivals: traffic concentrates on the head.
	a, err := NewArrivals(keys, 1.5, 42)
	if err != nil {
		t.Fatal(err)
	}
	z := pop(1.5)
	if n := z[a.Hottest()]; n < 10000 {
		t.Errorf("s=1.5 hottest key drew %d/50000 arrivals, want heavy concentration", n)
	}

	// Determinism: same (keys, s, seed) reproduces the stream.
	a1, _ := NewArrivals(keys, 1.5, 7)
	a2, _ := NewArrivals(keys, 1.5, 7)
	for i := 0; i < 1000; i++ {
		if a1.Next() != a2.Next() {
			t.Fatalf("seeded arrival streams diverge at %d", i)
		}
	}
}

func TestLookupKeys(t *testing.T) {
	keys := NewGenerator(Gaussian, 10).LookupKeys(1000)
	if len(keys) != 1000 {
		t.Fatal("wrong count")
	}
	// Lookup keys are uniform regardless of the data distribution.
	if m := stats.Mean(keys); m < 0.45 || m > 0.55 {
		t.Errorf("lookup key mean = %v", m)
	}
}
