package lht

import (
	"container/list"
	"sync"

	"lht/internal/bitlabel"
)

// leafCache is the client-side leaf cache behind Config.LeafCache: a
// bounded, concurrency-safe LRU of leaf labels this client has observed
// in the DHT. Because a leaf's label determines both its key-space
// interval and its DHT key (the naming function), caching just the label
// lets a later lookup for any key in that interval probe the leaf's name
// directly — one DHT-get instead of Algorithm 2's O(log D) sequential
// probes.
//
// The cache stores no records, so it can never serve stale data; the
// only staleness possible is structural (the leaf split or merged since
// it was observed), which the lookup path detects soundly from the probe
// outcome itself: a fetched bucket that does not cover the key, or a
// failed get, both feed Algorithm 2's own case analysis, so cached
// results are always identical to the uncached path.
//
// The cache composes with the load-balancing plane: a cache hit turns a
// hot-key lookup into a single get of the leaf's name, which is exactly
// the access pattern Config.CoalesceGets collapses — N clients hitting
// one hot cached leaf converge on the same key and share one physical
// fetch — and after a hot split the usual staleness repair re-teaches
// the cache the (now narrower, cooler) children.
type leafCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used; element values are bitlabel.Label
	entries map[bitlabel.Label]*list.Element
}

func newLeafCache(capacity int) *leafCache {
	return &leafCache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[bitlabel.Label]*list.Element, capacity),
	}
}

// find returns the deepest cached label that is a prefix of mu, i.e. a
// previously observed leaf whose interval covers mu's data key. Deepest
// first: after a split both the fresh child and its stale ancestor may
// be cached, and the child is the live leaf. The returned entry is
// touched. The scan is pure local work — at most D map probes, no DHT
// traffic.
func (c *leafCache) find(mu bitlabel.Label) (bitlabel.Label, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k := mu.Len(); k >= 1; k-- {
		x := mu.Prefix(k)
		if e, ok := c.entries[x]; ok {
			c.order.MoveToFront(e)
			return x, true
		}
	}
	return bitlabel.Label{}, false
}

// note records label as a currently observed leaf, touching an existing
// entry or inserting (and evicting the least recently used entry when
// over capacity).
func (c *leafCache) note(label bitlabel.Label) {
	if label.IsRoot() {
		return // the virtual root is never a leaf label
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[label]; ok {
		c.order.MoveToFront(e)
		return
	}
	c.entries[label] = c.order.PushFront(label)
	if c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(bitlabel.Label))
	}
}

// drop invalidates the entry for label, if present.
func (c *leafCache) drop(label bitlabel.Label) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[label]; ok {
		c.order.Remove(e)
		delete(c.entries, label)
	}
}

// len returns the current entry count (for tests and introspection).
func (c *leafCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// cacheNote records an observed leaf when the cache is enabled.
func (ix *Index) cacheNote(label bitlabel.Label) {
	if ix.cache != nil {
		ix.cache.note(label)
	}
}

// cacheDrop invalidates a label when the cache is enabled.
func (ix *Index) cacheDrop(label bitlabel.Label) {
	if ix.cache != nil {
		ix.cache.drop(label)
	}
}
