package dht

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"lht/internal/metrics"
)

func TestLocalBasicOps(t *testing.T) {
	d := NewLocal()

	if _, err := d.Get(context.Background(), "a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get missing = %v, want ErrNotFound", err)
	}
	if err := d.Put(context.Background(), "a", 1); err != nil {
		t.Fatal(err)
	}
	v, err := d.Get(context.Background(), "a")
	if err != nil || v.(int) != 1 {
		t.Fatalf("Get = %v, %v", v, err)
	}
	if err := d.Put(context.Background(), "a", 2); err != nil {
		t.Fatal(err)
	}
	if v, _ := d.Get(context.Background(), "a"); v.(int) != 2 {
		t.Fatalf("Put should replace, got %v", v)
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d", d.Len())
	}
	if err := d.Remove(context.Background(), "a"); err != nil {
		t.Fatal(err)
	}
	if err := d.Remove(context.Background(), "a"); err != nil {
		t.Fatal("Remove of absent key must not error:", err)
	}
	if _, err := d.Get(context.Background(), "a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after Remove = %v", err)
	}
}

func TestLocalTake(t *testing.T) {
	d := NewLocal()
	if _, err := d.Take(context.Background(), "k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Take missing = %v", err)
	}
	if err := d.Put(context.Background(), "k", "v"); err != nil {
		t.Fatal(err)
	}
	v, err := d.Take(context.Background(), "k")
	if err != nil || v.(string) != "v" {
		t.Fatalf("Take = %v, %v", v, err)
	}
	if _, err := d.Get(context.Background(), "k"); !errors.Is(err, ErrNotFound) {
		t.Fatal("Take must remove the key")
	}
}

func TestLocalWrite(t *testing.T) {
	d := NewLocal()
	if err := d.Write(context.Background(), "k", 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Write to absent key = %v, want ErrNotFound", err)
	}
	if err := d.Put(context.Background(), "k", 1); err != nil {
		t.Fatal(err)
	}
	if err := d.Write(context.Background(), "k", 2); err != nil {
		t.Fatal(err)
	}
	if v, _ := d.Get(context.Background(), "k"); v.(int) != 2 {
		t.Fatalf("Write did not update, got %v", v)
	}
}

func TestLocalKeys(t *testing.T) {
	d := NewLocal()
	want := map[string]bool{"x": true, "y": true, "z": true}
	for k := range want {
		if err := d.Put(context.Background(), k, k); err != nil {
			t.Fatal(err)
		}
	}
	keys := d.Keys()
	if len(keys) != len(want) {
		t.Fatalf("Keys = %v", keys)
	}
	for _, k := range keys {
		if !want[k] {
			t.Fatalf("unexpected key %q", k)
		}
	}
}

func TestLocalConcurrent(t *testing.T) {
	d := NewLocal()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d-%d", g, i)
				if err := d.Put(context.Background(), key, i); err != nil {
					t.Error(err)
					return
				}
				if _, err := d.Get(context.Background(), key); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if d.Len() != 8*200 {
		t.Fatalf("Len = %d", d.Len())
	}
}

func TestInstrumentedCounting(t *testing.T) {
	var c metrics.Counters
	d := NewInstrumented(NewLocal(), &c)
	if d.Counters() != &c {
		t.Fatal("Counters accessor mismatch")
	}

	_ = d.Put(context.Background(), "a", 1)       // 1 lookup
	_, _ = d.Get(context.Background(), "a")       // 2
	_, _ = d.Get(context.Background(), "missing") // 3, 1 failed
	_, _ = d.Take(context.Background(), "a")      // 4
	_, _ = d.Take(context.Background(), "a")      // 5, 2 failed
	_ = d.Remove(context.Background(), "a")       // 6
	_ = d.Put(context.Background(), "b", 1)       // 7
	_ = d.Write(context.Background(), "b", 2)     // free

	s := c.Snapshot().Flat()
	if s.Lookups != 7 {
		t.Errorf("Lookups = %d, want 7", s.Lookups)
	}
	if s.FailedGets != 2 {
		t.Errorf("FailedGets = %d, want 2", s.FailedGets)
	}
	if v, err := d.Get(context.Background(), "b"); err != nil || v.(int) != 2 {
		t.Errorf("Write through instrumentation failed: %v, %v", v, err)
	}
}

func TestSnapshotSubAndReset(t *testing.T) {
	var c metrics.Counters
	c.AddLookups(10)
	c.AddFailedGets(2)
	c.AddMovedRecords(30)
	c.AddSplits(4)
	c.AddMerges(1)
	before := c.Snapshot()
	c.AddLookups(5)
	c.AddMovedRecords(7)
	diff := c.Snapshot().Sub(before).Flat()
	if diff.Lookups != 5 || diff.MovedRecords != 7 || diff.Splits != 0 {
		t.Errorf("Sub = %+v", diff)
	}
	c.Reset()
	if s := c.Snapshot(); s != (metrics.Snapshot{}) {
		t.Errorf("Reset left %+v", s)
	}
}
