package lht_test

// One benchmark per table/figure of the paper's evaluation (section 9),
// each driving the corresponding internal/bench experiment at a reduced
// scale suitable for `go test -bench`. The headline quantity of each
// figure is exposed through b.ReportMetric, so `go test -bench=. -benchmem`
// prints the reproduced numbers next to the timing. cmd/lht-bench runs
// the same drivers at full paper scale (2^20 records, 100 trials).

import (
	"math/rand"
	"testing"

	"lht"
	"lht/internal/bench"
	"lht/internal/workload"
)

func benchOptions() bench.Options {
	return bench.Options{Theta: 32, Depth: 20, Trials: 2, Queries: 50, Seed: 1}
}

func lastY(s bench.Series) float64 { return s.Points[len(s.Points)-1].Y }

func sumSeries(r bench.Result, name string) float64 {
	for _, s := range r.Series {
		if s.Name == name {
			var sum float64
			for _, p := range s.Points {
				sum += p.Y
			}
			return sum
		}
	}
	return 0
}

// BenchmarkFig6aAvgAlphaVsSize reproduces Fig. 6a: average alpha vs data
// size. Reported metric: final alpha for uniform data (paper: approaches
// 1/2 + 1/(2*theta)).
func BenchmarkFig6aAvgAlphaVsSize(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		res, err := bench.RunAvgAlphaVsSize(o, []workload.Dist{workload.Uniform, workload.Gaussian},
			[]int{16, 64}, bench.Sizes(9, 13))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastY(res.Series[0]), "alpha")
	}
}

// BenchmarkFig6bAvgAlphaVsTheta reproduces Fig. 6b: average alpha vs
// theta_split.
func BenchmarkFig6bAvgAlphaVsTheta(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		res, err := bench.RunAvgAlphaVsTheta(o, []workload.Dist{workload.Uniform, workload.Gaussian},
			[]int{8, 16, 32, 64, 128}, 1<<13)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastY(res.Series[0]), "alpha@128")
	}
}

// BenchmarkFig7aMaintenanceMoved reproduces Fig. 7a: cumulative moved
// records, LHT vs PHT. Reported metric: LHT/PHT ratio (paper: about 0.5).
func BenchmarkFig7aMaintenanceMoved(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		moved, _, err := bench.RunMaintenance(o, []workload.Dist{workload.Uniform, workload.Gaussian},
			bench.Sizes(9, 13))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastY(moved.Series[0])/lastY(moved.Series[1]), "moved-ratio")
	}
}

// BenchmarkFig7bMaintenanceLookups reproduces Fig. 7b: cumulative
// maintenance DHT-lookups. Reported metric: LHT/PHT ratio (paper: about
// 0.25).
func BenchmarkFig7bMaintenanceLookups(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		_, lookups, err := bench.RunMaintenance(o, []workload.Dist{workload.Uniform, workload.Gaussian},
			bench.Sizes(9, 13))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastY(lookups.Series[0])/lastY(lookups.Series[1]), "lookup-ratio")
	}
}

// BenchmarkFig8aLookupUniform reproduces Fig. 8a: lookup cost vs size on
// uniform data. Reported metric: LHT's saving over PHT (paper: ~20%).
func BenchmarkFig8aLookupUniform(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		res, err := bench.RunLookup(o, workload.Uniform, bench.Sizes(8, 13))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(1-sumSeries(res, "LHT")/sumSeries(res, "PHT"), "saving")
	}
}

// BenchmarkFig8bLookupGaussian reproduces Fig. 8b (paper saving: ~30%).
func BenchmarkFig8bLookupGaussian(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		res, err := bench.RunLookup(o, workload.Gaussian, bench.Sizes(8, 13))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(1-sumSeries(res, "LHT")/sumSeries(res, "PHT"), "saving")
	}
}

// BenchmarkFig9aRangeBandwidthVsSize reproduces Fig. 9a. Reported metric:
// PHT(par)/LHT bandwidth ratio (paper: parallel costs the most; LHT near
// optimal).
func BenchmarkFig9aRangeBandwidthVsSize(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		bw, _, err := bench.RunRangeVsSize(o, workload.Uniform, bench.Sizes(10, 13), 0.2)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(sumSeries(bw, "PHT(par)")/sumSeries(bw, "LHT"), "par/lht-bw")
	}
}

// BenchmarkFig9bRangeBandwidthVsSpan reproduces Fig. 9b.
func BenchmarkFig9bRangeBandwidthVsSpan(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		bw, _, err := bench.RunRangeVsSpan(o, workload.Uniform, 1<<13, []float64{0.05, 0.1, 0.2, 0.4})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(sumSeries(bw, "PHT(seq)")/sumSeries(bw, "LHT"), "seq/lht-bw")
	}
}

// BenchmarkFig10aRangeLatencyVsSize reproduces Fig. 10a. Reported metric:
// PHT(seq)/LHT latency ratio (paper: an order of magnitude).
func BenchmarkFig10aRangeLatencyVsSize(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		_, lat, err := bench.RunRangeVsSize(o, workload.Uniform, bench.Sizes(10, 13), 0.2)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(sumSeries(lat, "PHT(seq)")/sumSeries(lat, "LHT"), "seq/lht-lat")
	}
}

// BenchmarkFig10bRangeLatencyVsSpan reproduces Fig. 10b. Reported metric:
// PHT(par)/LHT latency ratio (paper: LHT saves ~18%).
func BenchmarkFig10bRangeLatencyVsSpan(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		_, lat, err := bench.RunRangeVsSpan(o, workload.Gaussian, 1<<13, []float64{0.05, 0.1, 0.2, 0.4})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(sumSeries(lat, "PHT(par)")/sumSeries(lat, "LHT"), "par/lht-lat")
	}
}

// BenchmarkEq3SavingRatio reproduces the section 8 analysis: measured
// maintenance saving priced by the cost model at gamma = 4 (paper: 50-75%
// across the gamma range).
func BenchmarkEq3SavingRatio(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		res, err := bench.RunSavingRatio(o, workload.Uniform, 1<<13, []float64{0, 4, 64})
		if err != nil {
			b.Fatal(err)
		}
		var measured bench.Series
		for _, s := range res.Series {
			if s.Name == "measured" {
				measured = s
			}
		}
		b.ReportMetric(measured.Points[1].Y, "saving@gamma4")
	}
}

// BenchmarkThm3MinMax reproduces Theorem 3: min/max queries cost one
// DHT-lookup at every data size.
func BenchmarkThm3MinMax(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		res, err := bench.RunMinMax(o, workload.Uniform, bench.Sizes(8, 13))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastY(res.Series[0]), "lookups/min-query")
	}
}

// --- micro-benchmarks of the public API over the local substrate -------

func buildIndex(b *testing.B, n int) *lht.Index {
	return buildIndexCfg(b, n, lht.DefaultConfig())
}

func buildIndexCfg(b *testing.B, n int, cfg lht.Config) *lht.Index {
	b.Helper()
	ix, err := lht.New(lht.NewLocalDHT(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		if _, err := ix.Insert(lht.Record{Key: rng.Float64(), Value: []byte("payload")}); err != nil {
			b.Fatal(err)
		}
	}
	return ix
}

// BenchmarkOpInsert measures a single insertion on a 64k-record index.
func BenchmarkOpInsert(b *testing.B) {
	ix := buildIndex(b, 1<<16)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Insert(lht.Record{Key: rng.Float64()}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOpGet measures an exact-match query on a 64k-record index.
func BenchmarkOpGet(b *testing.B) {
	ix := buildIndex(b, 1<<16)
	rng := rand.New(rand.NewSource(1))
	keys := make([]float64, 1<<16)
	for i := range keys {
		keys[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ix.Get(keys[i%len(keys)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOpRange measures a 1%-span range query on a 64k-record index.
func BenchmarkOpRange(b *testing.B) {
	ix := buildIndex(b, 1<<16)
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := rng.Float64() * 0.99
		if _, _, err := ix.Range(lo, lo+0.01); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOpMin measures the constant-cost min query.
func BenchmarkOpMin(b *testing.B) {
	ix := buildIndex(b, 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ix.Min(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchmarkLookup measures exact-match queries on a 64k-record index and
// reports the mean DHT-lookups per query, with or without the leaf cache.
func benchmarkLookup(b *testing.B, cached bool) {
	cfg := lht.DefaultConfig()
	cfg.LeafCache = cached
	ix := buildIndexCfg(b, 1<<16, cfg)
	rng := rand.New(rand.NewSource(1))
	keys := make([]float64, 1<<16)
	for i := range keys {
		keys[i] = rng.Float64()
	}
	b.ResetTimer()
	before := ix.Metrics()
	for i := 0; i < b.N; i++ {
		if _, _, err := ix.Get(keys[i%len(keys)]); err != nil {
			b.Fatal(err)
		}
	}
	diff := ix.Metrics().Sub(before).Flat()
	b.ReportMetric(float64(diff.Lookups)/float64(b.N), "dht-lookups/query")
}

// BenchmarkLookupCached is the leaf-cache fast path: repeat exact-match
// queries resolve with ~1 DHT-get (vs ~log2(D) uncached) and skip the
// binary search's sequential probes in wall-clock time too.
func BenchmarkLookupCached(b *testing.B) { benchmarkLookup(b, true) }

// BenchmarkLookupUncached is the same workload through plain Algorithm 2,
// the baseline BenchmarkLookupCached's dht-lookups/query is read against.
func BenchmarkLookupUncached(b *testing.B) { benchmarkLookup(b, false) }

// BenchmarkA4CacheAblation runs the leaf-cache ablation at reduced scale
// (reported: uncached/cached lookup-cost ratio under 95/5 churn).
func BenchmarkA4CacheAblation(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		res, err := bench.RunCacheAblation(o, workload.Uniform, bench.Sizes(10, 13))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(sumSeries(res, "uncached lookups/query")/sumSeries(res, "cached lookups/query"), "uncached/cached")
	}
}

// BenchmarkA1LookupAblation quantifies what Algorithm 2's binary search
// buys over a linear top-down walk (reported: linear/binary cost ratio).
func BenchmarkA1LookupAblation(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		res, err := bench.RunLookupAblation(o, workload.Uniform, bench.Sizes(10, 13))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(sumSeries(res, "linear descent")/sumSeries(res, "binary search (Alg 2)"), "linear/binary")
	}
}

// BenchmarkRW1RelatedWork compares per-insert bandwidth across LHT, PHT,
// DST and RST (reported: DST/LHT insert-cost ratio; paper section 2:
// "insertion in DST is inefficient").
func BenchmarkRW1RelatedWork(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		results, err := bench.RunRelatedWork(o, workload.Uniform, 1<<12, 0.1)
		if err != nil {
			b.Fatal(err)
		}
		var lht, dst float64
		for _, s := range results[0].Series {
			switch s.Name {
			case "LHT":
				lht = s.Points[0].Y
			case "DST":
				dst = s.Points[0].Y
			}
		}
		b.ReportMetric(dst/lht, "dst/lht-insert")
	}
}

// BenchmarkX1SkewRobustness loads zipf-skewed data and reports LHT's
// lookup saving over PHT under extreme skew.
func BenchmarkX1SkewRobustness(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		res, err := bench.RunSkewRobustness(o, bench.Sizes(9, 12))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(1-sumSeries(res, "LHT lookups")/sumSeries(res, "PHT lookups"), "saving")
	}
}
