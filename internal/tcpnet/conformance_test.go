package tcpnet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"testing"

	"lht/internal/dht"
	"lht/internal/dht/dhttest"
)

// startServers boots n fresh servers and returns their addresses.
func startServers(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, 0, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := NewServer()
		go func() { _ = srv.Serve(ln) }()
		t.Cleanup(func() { _ = srv.Close() })
		addrs = append(addrs, ln.Addr().String())
	}
	return addrs
}

// TestClientConformance runs the full dhttest battery over both wire
// formats, with both gob-encoded struct values and raw []byte values (the
// framed protocol's zero-serialization fast path).
func TestClientConformance(t *testing.T) {
	for _, w := range []struct {
		name string
		wire Wire
	}{{"binary", WireBinary}, {"gob", WireGob}} {
		factory := func(t *testing.T) dht.DHT {
			c, err := DialContext(context.Background(), startServers(t, 3), WithWire(w.wire))
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { _ = c.Close() })
			return c
		}
		t.Run(w.name+"/struct", func(t *testing.T) {
			dhttest.Run(t, factory, dhttest.Options{
				Keys:         120,
				ValueFactory: func(i int) dht.Value { return &payload{N: i} },
				ValueEqual: func(v dht.Value, i int) bool {
					p, ok := v.(*payload)
					return ok && p.N == i
				},
			})
		})
		t.Run(w.name+"/bytes", func(t *testing.T) {
			dhttest.Run(t, factory, dhttest.Options{
				Keys:         120,
				ValueFactory: func(i int) dht.Value { return []byte(fmt.Sprintf("v-%d", i)) },
				ValueEqual: func(v dht.Value, i int) bool {
					b, ok := v.([]byte)
					return ok && bytes.Equal(b, []byte(fmt.Sprintf("v-%d", i)))
				},
			})
		})
		t.Run(w.name+"/conditional", func(t *testing.T) {
			// The byte store serves the CAS from the epoch prefix written
			// with every put-like op, so conditional semantics must hold
			// over both wire protocols.
			dhttest.RunConditional(t, factory, dhttest.Options{})
		})
	}
}

// TestCrossWireConditional pins the conditional plane's interop: an epoch
// written through one wire must be compared and swapped correctly through
// the other, in both directions.
func TestCrossWireConditional(t *testing.T) {
	addrs := startServers(t, 3)
	bin, err := DialContext(context.Background(), addrs, WithWire(WireBinary))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = bin.Close() })
	gb, err := DialContext(context.Background(), addrs, WithWire(WireGob))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = gb.Close() })

	ctx := context.Background()
	arms := []struct {
		name           string
		writer, reader dht.DHT
	}{
		{"binary-writes_gob-cas", bin, gb},
		{"gob-writes_binary-cas", gb, bin},
	}
	for _, arm := range arms {
		t.Run(arm.name, func(t *testing.T) {
			key := "xc/" + arm.name
			if err := arm.writer.Put(ctx, key, &dhttest.EpochValue{Epoch: 4, Body: "w"}); err != nil {
				t.Fatal(err)
			}
			if err := dht.DoPutIf(ctx, arm.reader, key, &dhttest.EpochValue{Epoch: 5, Body: "r"}, 3); !errors.Is(err, dht.ErrCASConflict) {
				t.Fatalf("stale cross-wire PutIf = %v, want ErrCASConflict", err)
			}
			var c *dht.CASConflictError
			if err := dht.DoPutIf(ctx, arm.reader, key, &dhttest.EpochValue{Epoch: 5, Body: "r"}, 3); !errors.As(err, &c) || c.WinnerEpoch != 4 {
				t.Fatalf("cross-wire conflict carries winner %+v, want epoch 4", c)
			}
			if err := dht.DoPutIf(ctx, arm.reader, key, &dhttest.EpochValue{Epoch: 5, Body: "r"}, 4); err != nil {
				t.Fatalf("matching cross-wire PutIf = %v", err)
			}
			v, err := arm.writer.Get(ctx, key)
			if err != nil {
				t.Fatal(err)
			}
			if ev, ok := v.(*dhttest.EpochValue); !ok || ev.Epoch != 5 || ev.Body != "r" {
				t.Fatalf("cross-wire read-back = %#v, want epoch 5 body r", v)
			}
			if err := dht.DoRemoveIf(ctx, arm.writer, key, 5); err != nil {
				t.Fatalf("cross-wire RemoveIf = %v", err)
			}
		})
	}
}

// TestCrossWireInterop stores through each wire format and reads through
// the other: the two protocols must interoperate on one store, for both
// gob-encoded struct values and raw []byte values.
func TestCrossWireInterop(t *testing.T) {
	addrs := startServers(t, 3)
	bin, err := DialContext(context.Background(), addrs, WithWire(WireBinary))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = bin.Close() })
	gob, err := DialContext(context.Background(), addrs, WithWire(WireGob))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = gob.Close() })

	ctx := context.Background()
	writers := map[string]dht.DHT{"binary": bin, "gob": gob}
	readers := map[string]dht.DHT{"binary": bin, "gob": gob}
	for wn, w := range writers {
		for rn, r := range readers {
			t.Run(wn+"-writes_"+rn+"-reads", func(t *testing.T) {
				sk := fmt.Sprintf("x/%s/%s/struct", wn, rn)
				if err := w.Put(ctx, sk, &payload{N: 42, S: "cross"}); err != nil {
					t.Fatal(err)
				}
				v, err := r.Get(ctx, sk)
				if err != nil {
					t.Fatal(err)
				}
				if p, ok := v.(*payload); !ok || p.N != 42 || p.S != "cross" {
					t.Fatalf("struct value = %#v", v)
				}

				bk := fmt.Sprintf("x/%s/%s/bytes", wn, rn)
				if err := w.Put(ctx, bk, []byte("raw-bytes")); err != nil {
					t.Fatal(err)
				}
				v, err = r.Get(ctx, bk)
				if err != nil {
					t.Fatal(err)
				}
				if b, ok := v.([]byte); !ok || !bytes.Equal(b, []byte("raw-bytes")) {
					t.Fatalf("bytes value = %#v", v)
				}

				// Batches cross too.
				kvs := []dht.KV{
					{Key: bk + "/b0", Val: []byte("b0")},
					{Key: bk + "/b1", Val: &payload{N: 1}},
				}
				for i, err := range w.(dht.Batcher).PutBatch(ctx, kvs) {
					if err != nil {
						t.Fatalf("PutBatch[%d]: %v", i, err)
					}
				}
				vals, errs := r.(dht.Batcher).GetBatch(ctx, []string{bk + "/b0", bk + "/b1", bk + "/absent"})
				if errs[0] != nil || !bytes.Equal(vals[0].([]byte), []byte("b0")) {
					t.Fatalf("batch slot 0 = %#v, %v", vals[0], errs[0])
				}
				if errs[1] != nil || vals[1].(*payload).N != 1 {
					t.Fatalf("batch slot 1 = %#v, %v", vals[1], errs[1])
				}
				if !errors.Is(errs[2], dht.ErrNotFound) {
					t.Fatalf("batch slot 2 err = %v, want not found", errs[2])
				}
			})
		}
	}
}
