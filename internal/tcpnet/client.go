package tcpnet

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lht/internal/dht"
	"lht/internal/hashring"
	"lht/internal/metrics"
)

// Wire selects the client's wire format.
type Wire int

const (
	// WireBinary is the framed binary protocol (see frame.go): no
	// reflection, pooled buffers, and a pipelined multiplexer holding
	// many requests in flight per connection. The default.
	WireBinary Wire = iota
	// WireGob is the legacy reflection-based gob stream with one blocking
	// request per connection. It exists as the compat arm for the codec
	// oracle (ablation A8) and for talking to pre-framed-protocol nodes.
	WireGob
)

// ParseWire maps a command-line wire name ("binary" or "gob") to its
// Wire value.
func ParseWire(s string) (Wire, error) {
	switch s {
	case "binary":
		return WireBinary, nil
	case "gob":
		return WireGob, nil
	}
	return 0, fmt.Errorf("tcpnet: unknown wire format %q (have binary, gob)", s)
}

// ClusterConfig is the one-stop cluster client configuration: the Dial
// entry point takes it whole, replacing the accreted option list
// (WithReplicas/WithHealth/WithDialer/...), which survives only as the
// deprecated DialContext compat path. The zero value of every field is a
// sensible default; only Seeds is required.
type ClusterConfig struct {
	// Seeds are the bootstrap node addresses. With membership gossip
	// running on the servers they are only the first view — RefreshView
	// (or the RefreshInterval loop) grows and shrinks the routing ring as
	// the gossiped view changes. Without gossip they are the static
	// member list, exactly as before.
	Seeds []string
	// Wire selects the wire format (default WireBinary).
	Wire Wire
	// PoolSize is the number of multiplexed connections per node (default
	// 2; ignored by WireGob).
	PoolSize int
	// Replicas stores each key on this many consecutive ring members
	// (default 1 = unreplicated). Requires the binary wire.
	Replicas int
	// Counters chains the client's counters onto a shared metrics sink.
	Counters *metrics.Counters
	// Dialer replaces the transport factory (nil = plain net.Dialer); the
	// netchaos plane injects here.
	Dialer ContextDialer
	// Health enables the per-node circuit-breaker plane (see WithHealth).
	Health *dht.BreakerConfig
	// DegradedStart lets construction succeed with part of the cluster
	// down (dead nodes start with open breakers). Implies Health.
	DegradedStart bool
	// HintedHandoff parks put-like fan-outs that fail against a down
	// holder on a reachable node instead of surfacing the fault: the park
	// (OpHintPut) tags the value with its epoch, and the holding node
	// replays it to the returned holder over the epoch-ordered putnewer
	// path. Requires Replicas > 1.
	HintedHandoff bool
	// RefreshInterval, when positive, runs a background loop calling
	// RefreshView at that period, keeping the routing ring synced to the
	// servers' gossiped membership view. Zero leaves refresh manual.
	RefreshInterval time.Duration
}

// Option tunes a Client at dial time.
//
// Deprecated: options configure the legacy DialContext path; new code
// should fill a ClusterConfig and call Dial.
type Option func(*clientOptions)

type clientOptions struct {
	wire     Wire
	poolSize int
	replicas int
	counters *metrics.Counters
	dialer   ContextDialer
	health   *dht.BreakerConfig
	degraded bool
}

// WithWire selects the wire format (default WireBinary).
func WithWire(w Wire) Option { return func(o *clientOptions) { o.wire = w } }

// WithPoolSize sets how many multiplexed connections the client keeps per
// node (default 2, minimum 1). Each connection already pipelines many
// requests; extra connections spread very hot nodes across sockets.
// Ignored by WireGob, which keeps the legacy one connection per node.
func WithPoolSize(n int) Option { return func(o *clientOptions) { o.poolSize = n } }

// WithReplicas stores each key on n consecutive ring members instead of
// one (default 1, i.e. no replication). Replication is client-driven —
// see replicas.go for the fan-out, fallback and read-spreading contract.
// Requires the binary wire and a cluster of at least n nodes.
func WithReplicas(n int) Option { return func(o *clientOptions) { o.replicas = n } }

// WithCounters chains the client's load counters (spread reads) onto cs,
// so replica read spreading shows up on a shared metrics endpoint. Nil
// (the default) keeps the client's local SpreadReads tally only.
func WithCounters(cs *metrics.Counters) Option { return func(o *clientOptions) { o.counters = cs } }

// WithDialer replaces the transport factory used for every outgoing
// connection on both wire formats (default: a plain net.Dialer). This is
// the injection point for the netchaos plane: a scripted dialer can
// drop, delay, throttle, or partition individual node links under an
// otherwise unmodified client.
func WithDialer(d ContextDialer) Option { return func(o *clientOptions) { o.dialer = d } }

// WithHealth enables the graceful-degradation plane: one circuit breaker
// per node with the given configuration (zero fields defaulted — see
// dht.BreakerConfig). Consecutive transport failures open the node's
// breaker; while open, every operation against it fails instantly with a
// typed *dht.UnavailableError, replicated reads fail over to the next
// holder immediately, and the first operation after the cooldown probes
// the node half-open. See health.go for the full contract.
func WithHealth(cfg dht.BreakerConfig) Option {
	return func(o *clientOptions) { o.health = &cfg }
}

// WithDegradedStart lets DialContext succeed with part of the cluster
// unreachable: dead nodes are registered with their breaker already
// open, so they fail fast until a half-open probe finds them recovered
// and adopts them. Implies WithHealth (with defaults, if not configured
// explicitly). Construction still fails when no node is reachable.
func WithDegradedStart() Option { return func(o *clientOptions) { o.degraded = true } }

// Client implements dht.DHT over a static set of tcpnet servers: keys are
// mapped to nodes with consistent hashing on the same 64-bit circle the
// Chord substrate uses, so each node owns the arc ending at its hashed
// address. It is safe for concurrent use: on the default binary wire,
// each node connection is a pipelined multiplexer carrying many requests
// in flight at once, so concurrent callers (and the batch plane's
// per-node fan-out) overlap their round trips instead of queueing on a
// connection mutex.
//
// Contexts bound the dial of a connection, and cancellation abandons the
// request's pending slot — the connection and everyone else's in-flight
// requests are untouched. Transport failures are marked transient
// (dht.IsTransient) so a policy wrapper can retry them; the next attempt
// redials lazily, health-checking the fresh connection with a ping.
type Client struct {
	wire     Wire
	replicas int // holders per key; 1 = unreplicated
	counters *metrics.Counters
	opts     clientOptions // retained to build nodes for members the view adds
	hinted   bool          // hinted handoff enabled

	// ring is the current routing ring. It is replaced wholesale (never
	// mutated) when a membership view refresh changes the member set, so
	// in-flight operations keep a consistent snapshot.
	ring atomic.Pointer[memberRing]

	// view is the client's local membership view: seeded from the
	// bootstrap list, fed suspicion by breaker opens, and merged with a
	// server's gossiped view on every RefreshView.
	viewMu sync.Mutex
	view   dht.ClusterView

	// debt tracks keys with a missing, not-yet-restored replica copy per
	// node address (fed by EnsureReplicated; read by ClusterStatus).
	debtMu sync.Mutex
	debt   map[string]map[string]struct{}

	refreshCancel context.CancelFunc
	refreshWG     sync.WaitGroup

	readSeq     atomic.Uint64 // read-spreading rotation sequence
	spreadReads atomic.Int64  // reads started at a non-primary holder
}

// memberRing is one immutable routing-ring snapshot.
type memberRing struct {
	nodes []*clientNode // sorted by ring ID
}

// ringNodes returns the current ring snapshot's nodes.
func (c *Client) ringNodes() []*clientNode {
	if r := c.ring.Load(); r != nil {
		return r.nodes
	}
	return nil
}

var (
	_ dht.DHT         = (*Client)(nil)
	_ dht.Conditional = (*Client)(nil)
)

// clientNode is one member's connection state: a pool of multiplexed
// connections (binary wire) or a single legacy gob connection.
type clientNode struct {
	id   hashring.ID
	addr string

	conns []*mconn // binary wire; round-robin
	next  atomic.Uint32
	gc    *gobConn // gob wire

	br       *dht.Breaker // health plane; nil when WithHealth is off
	counters *metrics.Counters
}

// pick returns the node's next connection in round-robin order.
func (n *clientNode) pick() *mconn {
	if len(n.conns) == 1 {
		return n.conns[0]
	}
	return n.conns[int(n.next.Add(1))%len(n.conns)]
}

// Dial builds a cluster client from cfg and verifies every seed node
// answers a ping, probing all nodes concurrently: the slowest node bounds
// startup instead of the sum of all nodes, and the first hard error
// cancels the remaining probes and is surfaced. The context bounds the
// verification; later operations carry their own contexts.
//
// This is the canonical constructor; DialContext and the Option list are
// its deprecated compat form.
func Dial(ctx context.Context, cfg ClusterConfig) (*Client, error) {
	if len(cfg.Seeds) == 0 {
		return nil, errors.New("tcpnet: no node addresses")
	}
	o := clientOptions{
		wire:     cfg.Wire,
		poolSize: cfg.PoolSize,
		replicas: cfg.Replicas,
		counters: cfg.Counters,
		dialer:   cfg.Dialer,
		health:   cfg.Health,
		degraded: cfg.DegradedStart,
	}
	if o.poolSize == 0 {
		o.poolSize = 2
	}
	if o.poolSize < 1 {
		o.poolSize = 1
	}
	if o.replicas < 1 {
		o.replicas = 1
	}
	if o.replicas > 1 && o.wire == WireGob {
		return nil, errors.New("tcpnet: replication requires the binary wire")
	}
	if cfg.HintedHandoff && o.replicas < 2 {
		return nil, errors.New("tcpnet: hinted handoff requires replication")
	}
	if o.degraded && o.health == nil {
		o.health = &dht.BreakerConfig{}
	}
	c := &Client{
		wire:     o.wire,
		replicas: o.replicas,
		counters: o.counters,
		opts:     o,
		hinted:   cfg.HintedHandoff,
	}
	seen := make(map[string]bool, len(cfg.Seeds))
	var nodes []*clientNode
	for _, a := range cfg.Seeds {
		if seen[a] {
			return nil, fmt.Errorf("tcpnet: duplicate node %q", a)
		}
		seen[a] = true
		nodes = append(nodes, c.newNode(a))
		// The bootstrap list seeds the local view; gossip grows it.
		c.view.Upsert(dht.Member{Addr: a, State: dht.MemberAlive})
	}
	// Validated against the built member list, after the duplicate check:
	// the replica count must never exceed the number of distinct nodes, or
	// owners() would hand out short holder sets and the per-rank batch
	// fan-out would index past them.
	if o.replicas > len(nodes) {
		return nil, fmt.Errorf("tcpnet: %d replicas exceed the %d-node cluster", o.replicas, len(nodes))
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].id < nodes[j].id })
	c.ring.Store(&memberRing{nodes: nodes})

	if o.degraded {
		if err := c.verifyDegraded(ctx); err != nil {
			_ = c.Close()
			return nil, err
		}
	} else if err := c.verifyAll(ctx, nodes); err != nil {
		_ = c.Close()
		return nil, err
	}
	if cfg.RefreshInterval > 0 {
		rctx, cancel := context.WithCancel(context.Background())
		c.refreshCancel = cancel
		c.refreshWG.Add(1)
		go func() {
			defer c.refreshWG.Done()
			t := time.NewTicker(cfg.RefreshInterval)
			defer t.Stop()
			for {
				select {
				case <-rctx.Done():
					return
				case <-t.C:
					_ = c.RefreshView(rctx)
				}
			}
		}()
	}
	return c, nil
}

// newNode builds one member's connection state from the client's retained
// dial options. Used at construction and again whenever a view refresh
// admits a new member.
func (c *Client) newNode(a string) *clientNode {
	o := c.opts
	n := &clientNode{id: hashring.HashAddr(a), addr: a, counters: o.counters}
	if o.health != nil {
		cfg := *o.health
		if cfg.Seed == 0 {
			// Distinct deterministic jitter stream per node.
			cfg.Seed = int64(n.id) | 1
		}
		prev := cfg.OnOpen
		counters := o.counters
		cfg.OnOpen = func() {
			counters.AddBreakerOpens(1)
			// An opened breaker is local evidence of failure: mark the
			// member suspect so the next gossip exchange spreads the doubt.
			c.markSuspect(a)
			if prev != nil {
				prev()
			}
		}
		n.br = dht.NewBreaker(cfg)
	}
	if o.wire == WireGob {
		n.gc = &gobConn{addr: a, dial: o.dialer, gate: redialGate{br: n.br}}
	} else {
		for i := 0; i < o.poolSize; i++ {
			n.conns = append(n.conns, &mconn{addr: a, dial: o.dialer, gate: redialGate{br: n.br}})
		}
	}
	return n
}

// verifyAll probes all members concurrently; the first failure wins and
// cancels the rest, so one dead node surfaces at its own dial latency.
func (c *Client) verifyAll(ctx context.Context, nodes []*clientNode) error {
	vctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	for _, n := range nodes {
		wg.Add(1)
		go func(n *clientNode) {
			defer wg.Done()
			err := c.verify(vctx, n)
			if err == nil {
				return
			}
			mu.Lock()
			if firstErr == nil {
				firstErr = fmt.Errorf("tcpnet: ping %q: %w", n.addr, err)
				cancel()
			}
			mu.Unlock()
		}(n)
	}
	wg.Wait()
	return firstErr
}

// DialContext builds a client from a bootstrap address list plus options.
//
// Deprecated: this is the pre-ClusterConfig constructor, kept so existing
// call sites migrate mechanically. New code should call Dial with a
// ClusterConfig.
func DialContext(ctx context.Context, addrs []string, opts ...Option) (*Client, error) {
	o := clientOptions{wire: WireBinary, poolSize: 2}
	for _, opt := range opts {
		opt(&o)
	}
	return Dial(ctx, ClusterConfig{
		Seeds:         addrs,
		Wire:          o.wire,
		PoolSize:      o.poolSize,
		Replicas:      o.replicas,
		Counters:      o.counters,
		Dialer:        o.dialer,
		Health:        o.health,
		DegradedStart: o.degraded,
	})
}

// verify dials and pings one node on the appropriate wire.
func (c *Client) verify(ctx context.Context, n *clientNode) error {
	if c.wire == WireGob {
		_, err := n.gc.roundTrip(ctx, request{Op: opPing})
		return err
	}
	// The binary dial health-checks with a ping already.
	return n.conns[0].connect(ctx)
}

// Close stops the view-refresh loop (if any) and tears down all
// connections.
func (c *Client) Close() error {
	if c.refreshCancel != nil {
		c.refreshCancel()
		c.refreshWG.Wait()
	}
	var first error
	for _, n := range c.ringNodes() {
		for _, m := range n.conns {
			m.close()
		}
		if n.gc != nil {
			if err := n.gc.close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// owner returns the node responsible for key: the first node clockwise
// from hash(key).
func (c *Client) owner(key string) *clientNode {
	nodes := c.ringNodes()
	h := hashring.HashKey(key)
	i := sort.Search(len(nodes), func(i int) bool { return nodes[i].id >= h })
	if i == len(nodes) {
		i = 0
	}
	return nodes[i]
}

// MaxInFlight reports the highest number of requests any single
// connection has had in flight at once — the pipelining depth actually
// reached. Zero on the gob wire, which cannot pipeline.
func (c *Client) MaxInFlight() int {
	max := 0
	for _, n := range c.ringNodes() {
		for _, m := range n.conns {
			if h := m.maxInFlight(); h > max {
				max = h
			}
		}
	}
	return max
}

// NodeAddrs returns the current member addresses in ring order.
func (c *Client) NodeAddrs() []string {
	nodes := c.ringNodes()
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.addr
	}
	return out
}

// serverErr converts a wire error payload into the caller-facing error.
func serverErr(msg []byte) error {
	if string(msg) == errNotFound {
		return dht.ErrNotFound
	}
	return fmt.Errorf("tcpnet: server error: %s", msg)
}

// simpleCall performs one non-batch framed round trip and returns the
// response's tagged value bytes (nil for value-less ops) plus the pooled
// frame to recycle after the value is decoded.
func (n *clientNode) simpleCall(ctx context.Context, op dht.OpKind, build func([]byte) ([]byte, error)) (val []byte, frame *[]byte, err error) {
	tok, err := n.allow()
	if err != nil {
		return nil, nil, err
	}
	defer func() { n.record(tok, err) }()
	body, err := n.pick().call(ctx, op, build)
	if err != nil {
		return nil, nil, err
	}
	c := cursor{b: (*body)[frameHeaderLen:]}
	status, err := c.u8()
	if err != nil {
		putBuf(body)
		return nil, nil, dht.MarkTransient(fmt.Errorf("tcpnet: malformed response: %w", err))
	}
	switch status {
	case statusOK:
		return c.rest(), body, nil
	case statusNotFound:
		putBuf(body)
		return nil, nil, dht.ErrNotFound
	default:
		err = serverErr(c.rest())
		putBuf(body)
		return nil, nil, err
	}
}

// Get implements dht.DHT.
func (c *Client) Get(ctx context.Context, key string) (dht.Value, error) {
	if c.replicas > 1 {
		return c.replicatedGet(ctx, key)
	}
	if c.wire == WireGob {
		return c.gobGet(ctx, key, request{Op: opGet, Key: key})
	}
	tv, frame, err := c.owner(key).simpleCall(ctx, dht.OpGet, func(b []byte) ([]byte, error) {
		return appendLenString(b, key), nil
	})
	if err != nil {
		return nil, err
	}
	v, err := decodeTaggedValue(tv)
	putBuf(frame)
	return v, err
}

// Put implements dht.DHT.
func (c *Client) Put(ctx context.Context, key string, v dht.Value) error {
	if c.replicas > 1 {
		return c.replicatedPut(ctx, key, v)
	}
	if c.wire == WireGob {
		return c.gobPutLike(ctx, opPut, key, v)
	}
	_, frame, err := c.owner(key).simpleCall(ctx, dht.OpPut, func(b []byte) ([]byte, error) {
		return appendValue(appendLenString(b, key), v)
	})
	if err != nil {
		return err
	}
	putBuf(frame)
	return nil
}

// Take implements dht.DHT.
func (c *Client) Take(ctx context.Context, key string) (dht.Value, error) {
	if c.replicas > 1 {
		return c.replicatedTake(ctx, key)
	}
	if c.wire == WireGob {
		return c.gobGet(ctx, key, request{Op: opTake, Key: key})
	}
	tv, frame, err := c.owner(key).simpleCall(ctx, dht.OpTake, func(b []byte) ([]byte, error) {
		return appendLenString(b, key), nil
	})
	if err != nil {
		return nil, err
	}
	v, err := decodeTaggedValue(tv)
	putBuf(frame)
	return v, err
}

// Remove implements dht.DHT.
func (c *Client) Remove(ctx context.Context, key string) error {
	if c.replicas > 1 {
		return c.replicatedRemove(ctx, key)
	}
	if c.wire == WireGob {
		_, err := c.gobDo(ctx, key, request{Op: opRemove, Key: key})
		return err
	}
	_, frame, err := c.owner(key).simpleCall(ctx, dht.OpRemove, func(b []byte) ([]byte, error) {
		return appendLenString(b, key), nil
	})
	if err != nil {
		return err
	}
	putBuf(frame)
	return nil
}

// Write implements dht.DHT: the owning node rewrites the value in place.
func (c *Client) Write(ctx context.Context, key string, v dht.Value) error {
	if c.replicas > 1 {
		return c.replicatedWrite(ctx, key, v)
	}
	if c.wire == WireGob {
		return c.gobPutLike(ctx, opWrite, key, v)
	}
	_, frame, err := c.owner(key).simpleCall(ctx, dht.OpWrite, func(b []byte) ([]byte, error) {
		return appendValue(appendLenString(b, key), v)
	})
	if err != nil {
		return err
	}
	putBuf(frame)
	return nil
}

// condCall performs one framed conditional round trip: like simpleCall,
// but mapping statusCASConflict to the typed *dht.CASConflictError. The
// conditional ops carry no response value, so the frame is recycled here.
func (n *clientNode) condCall(ctx context.Context, op dht.OpKind, key string, build func([]byte) ([]byte, error)) (err error) {
	tok, err := n.allow()
	if err != nil {
		return err
	}
	defer func() { n.record(tok, err) }()
	body, err := n.pick().call(ctx, op, build)
	if err != nil {
		return err
	}
	defer putBuf(body)
	c := cursor{b: (*body)[frameHeaderLen:]}
	status, err := c.u8()
	if err != nil {
		return dht.MarkTransient(fmt.Errorf("tcpnet: malformed response: %w", err))
	}
	switch status {
	case statusOK:
		return nil
	case statusNotFound:
		return dht.ErrNotFound
	case statusCASConflict:
		exists, err1 := c.u8()
		winner, err2 := c.uvarint()
		if err1 != nil || err2 != nil {
			return dht.MarkTransient(fmt.Errorf("tcpnet: malformed conflict response"))
		}
		return &dht.CASConflictError{Key: key, Exists: exists != 0, WinnerEpoch: winner}
	default:
		return serverErr(c.rest())
	}
}

// PutIf implements dht.Conditional: the owning node compares the stored
// value's epoch tag and swaps atomically under its store lock.
func (c *Client) PutIf(ctx context.Context, key string, v dht.Value, ifEpoch uint64) error {
	if c.replicas > 1 {
		return c.replicatedPutIf(ctx, key, v, ifEpoch)
	}
	if c.wire == WireGob {
		return c.gobCond(ctx, opPutIf, key, v, ifEpoch)
	}
	return c.owner(key).condCall(ctx, dht.OpPutIf, key, func(b []byte) ([]byte, error) {
		b = appendLenString(b, key)
		b = appendUv(b, ifEpoch)
		return appendValue(b, v)
	})
}

// CreateIf implements dht.Conditional.
func (c *Client) CreateIf(ctx context.Context, key string, v dht.Value) error {
	if c.replicas > 1 {
		return c.replicatedCreateIf(ctx, key, v)
	}
	if c.wire == WireGob {
		return c.gobCond(ctx, opCreateIf, key, v, 0)
	}
	return c.owner(key).condCall(ctx, dht.OpCreateIf, key, func(b []byte) ([]byte, error) {
		return appendValue(appendLenString(b, key), v)
	})
}

// RemoveIf implements dht.Conditional.
func (c *Client) RemoveIf(ctx context.Context, key string, ifEpoch uint64) error {
	if c.replicas > 1 {
		return c.replicatedRemoveIf(ctx, key, ifEpoch)
	}
	if c.wire == WireGob {
		_, err := c.gobDo(ctx, key, request{Op: opRemoveIf, Key: key, IfEpoch: ifEpoch})
		return err
	}
	return c.owner(key).condCall(ctx, dht.OpRemoveIf, key, func(b []byte) ([]byte, error) {
		b = appendLenString(b, key)
		return appendUv(b, ifEpoch), nil
	})
}

// WriteIf implements dht.Conditional: the epoch-guarded form of Write.
func (c *Client) WriteIf(ctx context.Context, key string, v dht.Value, ifEpoch uint64) error {
	if c.replicas > 1 {
		return c.replicatedWriteIf(ctx, key, v, ifEpoch)
	}
	if c.wire == WireGob {
		return c.gobCond(ctx, opWriteIf, key, v, ifEpoch)
	}
	return c.owner(key).condCall(ctx, dht.OpWriteIf, key, func(b []byte) ([]byte, error) {
		b = appendLenString(b, key)
		b = appendUv(b, ifEpoch)
		return appendValue(b, v)
	})
}

// --- legacy gob wire ---

func (c *Client) gobDo(ctx context.Context, key string, req request) (_ response, err error) {
	n := c.owner(key)
	tok, err := n.allow()
	if err != nil {
		return response{}, err
	}
	defer func() { n.record(tok, err) }()
	resp, err := n.gc.roundTrip(ctx, req)
	if err != nil {
		return response{}, err
	}
	switch resp.Err {
	case "":
		return resp, nil
	case errNotFound:
		return response{}, dht.ErrNotFound
	case errCASConflict:
		return response{}, &dht.CASConflictError{
			Key: key, Exists: resp.ConflictExists, WinnerEpoch: resp.Winner,
		}
	default:
		return response{}, fmt.Errorf("tcpnet: server error: %s", resp.Err)
	}
}

func (c *Client) gobGet(ctx context.Context, key string, req request) (dht.Value, error) {
	resp, err := c.gobDo(ctx, key, req)
	if err != nil {
		return nil, err
	}
	return decodeValue(resp.Val)
}

func (c *Client) gobPutLike(ctx context.Context, op op, key string, v dht.Value) error {
	data, err := encodeValue(v)
	if err != nil {
		return err
	}
	req := request{Op: op, Key: key, Val: data}
	if e, ok := v.(dht.Epocher); ok {
		req.Epoch, req.EpochKnown = e.DHTEpoch(), true
	}
	_, err = c.gobDo(ctx, key, req)
	return err
}

// gobCond sends a value-carrying conditional op on the legacy wire.
func (c *Client) gobCond(ctx context.Context, op op, key string, v dht.Value, ifEpoch uint64) error {
	data, err := encodeValue(v)
	if err != nil {
		return err
	}
	req := request{Op: op, Key: key, Val: data, IfEpoch: ifEpoch}
	if e, ok := v.(dht.Epocher); ok {
		req.Epoch, req.EpochKnown = e.DHTEpoch(), true
	}
	_, err = c.gobDo(ctx, key, req)
	return err
}
