package lht

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"testing"

	"lht/internal/bitlabel"
	"lht/internal/dht"
	"lht/internal/record"
)

// substrateImage captures every stored bucket of a Local substrate as
// encoded bytes, keyed by storage key — the ground truth two runs are
// compared on.
func substrateImage(t *testing.T, d *dht.Local) map[string][]byte {
	t.Helper()
	ctx := context.Background()
	img := make(map[string][]byte)
	for _, k := range d.Keys() {
		v, err := d.Get(ctx, k)
		if err != nil {
			t.Fatalf("image %q: %v", k, err)
		}
		b, ok := v.(*Bucket)
		if !ok {
			t.Fatalf("image %q: %T, not a bucket", k, v)
		}
		enc, err := EncodeBucket(b)
		if err != nil {
			t.Fatalf("encode %q: %v", k, err)
		}
		img[k] = enc
	}
	return img
}

func diffImages(got, want map[string][]byte) string {
	keys := make(map[string]bool)
	for k := range got {
		keys[k] = true
	}
	for k := range want {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	var diffs []string
	for _, k := range sorted {
		g, gok := got[k]
		w, wok := want[k]
		switch {
		case !gok:
			diffs = append(diffs, fmt.Sprintf("missing key %q", k))
		case !wok:
			diffs = append(diffs, fmt.Sprintf("extra key %q", k))
		case !bytes.Equal(g, w):
			diffs = append(diffs, fmt.Sprintf("key %q differs", k))
		}
	}
	if len(diffs) == 0 {
		return ""
	}
	return fmt.Sprint(diffs)
}

// splitWorkload drives a fresh index on d up to (and through) the first
// split of the tree root: three inserts, the third of which saturates the
// root leaf at theta=4. It returns the insert error of the splitting
// insert (nil on a healthy substrate).
var splitKeys = []float64{0.1, 0.3, 0.7}

func splitWorkload(t *testing.T, d dht.DHT) error {
	t.Helper()
	ix, err := New(d, Config{SplitThreshold: 4, Depth: 20})
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range splitKeys {
		_, err := ix.Insert(record.Record{Key: k, Value: []byte{byte(i)}})
		if i < len(splitKeys)-1 && err != nil {
			t.Fatalf("insert %d (%g): %v", i, k, err)
		}
		if i == len(splitKeys)-1 {
			return err
		}
	}
	return nil
}

// TestTornSplitRepairedByLookup crashes a split in each of its two
// windows — before the remote put, and after the remote put but before
// the local write-back — and verifies that a fresh client's next lookup
// detects the intent, repairs it in-line, answers correctly, and leaves
// the substrate byte-identical to a run that never crashed.
func TestTornSplitRepairedByLookup(t *testing.T) {
	// Oracle: the same workload against a healthy substrate.
	oracleDHT := dht.NewLocal()
	if err := splitWorkload(t, oracleDHT); err != nil {
		t.Fatalf("oracle workload: %v", err)
	}
	oracle := substrateImage(t, oracleDHT)

	for _, tc := range []struct {
		name  string
		after bool
	}{
		// The split pushes the remote half out with a create-if-absent to
		// "#0" (write-backs of the root leaf go to "#").
		{"crash-before-remote-put", false},
		{"crash-after-remote-put", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			base := dht.NewLocal()
			crash := dht.WithCrashPoints(base, dht.CrashRule{
				Op:    dht.OpCreateIf,
				Key:   func(k string) bool { return k == "#0" },
				N:     1,
				After: tc.after,
				Halt:  true,
			})
			err := splitWorkload(t, crash)
			if !errors.Is(err, dht.ErrCrashed) {
				t.Fatalf("splitting insert = %v, want ErrCrashed", err)
			}
			if !crash.Crashed() {
				t.Fatal("writer should be halted")
			}

			// The tree is torn but must remain fully queryable: a fresh
			// client repairs in-line on first contact with the marker.
			ix, err := New(base, Config{SplitThreshold: 4, Depth: 20})
			if err != nil {
				t.Fatal(err)
			}
			for i, k := range splitKeys {
				rec, _, err := ix.Search(k)
				if err != nil {
					t.Fatalf("Search(%g) on torn tree: %v", k, err)
				}
				if len(rec.Value) != 1 || rec.Value[0] != byte(i) {
					t.Fatalf("Search(%g) = %v, want value [%d]", k, rec.Value, i)
				}
			}
			s := ix.Metrics().Flat()
			if s.TornSplits != 1 || s.Repairs != 1 {
				t.Fatalf("TornSplits=%d Repairs=%d, want 1, 1", s.TornSplits, s.Repairs)
			}

			// The repaired substrate is byte-identical to the oracle.
			if d := diffImages(substrateImage(t, base), oracle); d != "" {
				t.Fatalf("repaired tree differs from never-crashed oracle: %s", d)
			}
			if err := ix.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestTornSplitRepairedByScrub is the offline counterpart: no query
// traffic touches the tear; one Scrub pass finds and repairs it, again
// byte-identical to the never-crashed oracle.
func TestTornSplitRepairedByScrub(t *testing.T) {
	oracleDHT := dht.NewLocal()
	if err := splitWorkload(t, oracleDHT); err != nil {
		t.Fatalf("oracle workload: %v", err)
	}
	oracle := substrateImage(t, oracleDHT)

	base := dht.NewLocal()
	crash := dht.WithCrashPoints(base, dht.CrashRule{
		Op:   dht.OpCreateIf,
		Key:  func(k string) bool { return k == "#0" },
		N:    1,
		Halt: true,
	})
	if err := splitWorkload(t, crash); !errors.Is(err, dht.ErrCrashed) {
		t.Fatalf("splitting insert = %v, want ErrCrashed", err)
	}

	ix, err := New(base, Config{SplitThreshold: 4, Depth: 20})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ix.Scrub(context.Background())
	if err != nil {
		t.Fatalf("Scrub: %v\n%s", err, rep)
	}
	if rep.TornSplits != 1 || rep.Repairs != 1 {
		t.Fatalf("report = %s; want 1 torn split, 1 repair", rep)
	}
	if d := diffImages(substrateImage(t, base), oracle); d != "" {
		t.Fatalf("scrubbed tree differs from never-crashed oracle: %s", d)
	}
	// A second pass finds a consistent tree.
	rep, err = ix.Scrub(context.Background())
	if err != nil || !rep.Clean() {
		t.Fatalf("second Scrub = %v, %s; want clean", err, rep)
	}
	if got := ix.Metrics().Flat().ScrubLookups; got <= 0 {
		t.Fatalf("ScrubLookups = %d, want > 0", got)
	}
}

// mergeWorkload drives a tree through one split, then deletes the lone
// right-half record so the leaves re-merge. Returns the delete error.
func mergeWorkload(t *testing.T, d dht.DHT) error {
	t.Helper()
	ix, err := New(d, Config{SplitThreshold: 4, MergeThreshold: 4, Depth: 20})
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range splitKeys {
		if _, err := ix.Insert(record.Record{Key: k, Value: []byte{byte(i)}}); err != nil {
			t.Fatalf("insert %d (%g): %v", i, k, err)
		}
	}
	// 0.7 is alone in leaf #01 (stored under "#0"); deleting it drops the
	// leaf's weight below the merge threshold.
	_, err = ix.Delete(0.7)
	return err
}

// TestTornMergeRepaired crashes a merge in both of its windows — before
// and after the obsolete child's removal — and verifies lookup-driven
// repair rolls the merge forward without losing a record.
func TestTornMergeRepaired(t *testing.T) {
	oracleDHT := dht.NewLocal()
	if err := mergeWorkload(t, oracleDHT); err != nil {
		t.Fatalf("oracle workload: %v", err)
	}
	oracle := substrateImage(t, oracleDHT)

	for _, tc := range []struct {
		name  string
		after bool
	}{
		// The merged bucket lands under "#" first; removing the obsolete
		// child under "#0" is the only conditional remove the workload
		// issues.
		{"crash-before-remove", false},
		{"crash-after-remove", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			base := dht.NewLocal()
			crash := dht.WithCrashPoints(base, dht.CrashRule{
				Op:    dht.OpRemoveIf,
				N:     1,
				After: tc.after,
				Halt:  true,
			})
			if err := mergeWorkload(t, crash); !errors.Is(err, dht.ErrCrashed) {
				t.Fatalf("merging delete = %v, want ErrCrashed", err)
			}

			ix, err := New(base, Config{SplitThreshold: 4, MergeThreshold: 4, Depth: 20})
			if err != nil {
				t.Fatal(err)
			}
			// Both surviving records answer; the deleted one stays deleted
			// (its tombstone is the merged bucket's record set).
			for i, k := range splitKeys[:2] {
				rec, _, err := ix.Search(k)
				if err != nil || rec.Value[0] != byte(i) {
					t.Fatalf("Search(%g) = %v, %v", k, rec, err)
				}
			}
			if _, _, err := ix.Search(0.7); !errors.Is(err, ErrKeyNotFound) {
				t.Fatalf("Search(0.7) = %v, want ErrKeyNotFound", err)
			}
			s := ix.Metrics().Flat()
			if s.TornMerges != 1 || s.Repairs != 1 {
				t.Fatalf("TornMerges=%d Repairs=%d, want 1, 1", s.TornMerges, s.Repairs)
			}
			if d := diffImages(substrateImage(t, base), oracle); d != "" {
				t.Fatalf("repaired tree differs from never-crashed oracle: %s", d)
			}
			if err := ix.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestTornMergeRollsBackWhenChildEvolved stages the race the PeerEpoch
// field exists for: a merge crashed mid-flight, and before anyone
// repaired it another client wrote to the obsolete child. Rolling the
// merge forward would discard that write; repair must roll back instead,
// shrinking the merged bucket to the surviving child and leaving the
// evolved child in place.
func TestTornMergeRollsBackWhenChildEvolved(t *testing.T) {
	ctx := context.Background()
	base := dht.NewLocal()

	// Hand-build the torn state. The merged bucket under "#" says: I
	// absorbed child #01 (then at epoch 3), remove it from "#0". But the
	// stored child has moved on to epoch 4 with an extra record.
	merged := &Bucket{
		Label: bitlabel.MustParse("#0"),
		Records: []record.Record{
			{Key: 0.1, Value: []byte{0}},
			{Key: 0.7, Value: []byte{2}},
		},
		Epoch:   5,
		Pending: Pending{Kind: PendingMerge, RemoveKey: "#0", PeerEpoch: 3},
	}
	evolved := &Bucket{
		Label: bitlabel.MustParse("#01"),
		Records: []record.Record{
			{Key: 0.7, Value: []byte{2}},
			{Key: 0.9, Value: []byte{9}},
		},
		Epoch: 4,
	}
	if err := base.Put(ctx, "#", merged); err != nil {
		t.Fatal(err)
	}
	if err := base.Put(ctx, "#0", evolved); err != nil {
		t.Fatal(err)
	}

	ix, err := New(base, Config{SplitThreshold: 4, MergeThreshold: 4, Depth: 20})
	if err != nil {
		t.Fatal(err)
	}
	// Touching the torn bucket repairs it; the evolved child's write must
	// survive.
	for _, want := range []struct {
		key float64
		val byte
	}{{0.1, 0}, {0.7, 2}, {0.9, 9}} {
		rec, _, err := ix.Search(want.key)
		if err != nil || rec.Value[0] != want.val {
			t.Fatalf("Search(%g) = %v, %v; want value [%d]", want.key, rec, err, want.val)
		}
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The rollback shrank "#" to the surviving child #00.
	v, err := base.Get(ctx, "#")
	if err != nil {
		t.Fatal(err)
	}
	kb := v.(*Bucket)
	if kb.Label != bitlabel.MustParse("#00") || len(kb.Records) != 1 || kb.Torn() {
		t.Fatalf("bucket under # after rollback = %s, want leaf #00 with 1 record", kb)
	}
}

// TestScrubRemovesOrphan verifies the shadow probe: a stale pre-merge
// child resurrected under a live leaf's own label key (as non-graceful
// churn can do) is detected by epoch order and removed.
func TestScrubRemovesOrphan(t *testing.T) {
	ctx := context.Background()
	base := dht.NewLocal()
	if err := mergeWorkload(t, base); err != nil {
		t.Fatal(err)
	}
	// Resurrect the pre-merge child: an old replica of leaf #01 reappears
	// under "#0" — the live leaf #0's own label key.
	orphan := &Bucket{
		Label:   bitlabel.MustParse("#01"),
		Records: []record.Record{{Key: 0.7, Value: []byte{2}}},
		Epoch:   1,
	}
	if err := base.Put(ctx, "#0", orphan); err != nil {
		t.Fatal(err)
	}

	ix, err := New(base, Config{SplitThreshold: 4, MergeThreshold: 4, Depth: 20})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ix.Scrub(ctx)
	if err != nil {
		t.Fatalf("Scrub: %v\n%s", err, rep)
	}
	if rep.Orphans != 1 || rep.Repairs != 1 {
		t.Fatalf("report = %s; want 1 orphan removed", rep)
	}
	if _, err := base.Get(ctx, "#0"); !errors.Is(err, dht.ErrNotFound) {
		t.Fatalf("orphan still stored: %v", err)
	}
	rep, err = ix.Scrub(ctx)
	if err != nil || !rep.Clean() {
		t.Fatalf("second Scrub = %v, %s; want clean", err, rep)
	}
}

// TestScrubRelocatesStrays verifies record relocation: a record parked in
// a leaf whose interval does not contain it is pulled out and re-inserted
// where lookups can find it.
func TestScrubRelocatesStrays(t *testing.T) {
	ctx := context.Background()
	base := dht.NewLocal()
	if err := splitWorkload(t, base); err != nil {
		t.Fatal(err)
	}
	// Park a record for 0.9 inside leaf #00 ([0, 0.5)).
	v, err := base.Get(ctx, "#")
	if err != nil {
		t.Fatal(err)
	}
	b := v.(*Bucket)
	b.Records = append(b.Records, record.Record{Key: 0.9, Value: []byte{9}})
	if err := base.Put(ctx, "#", b); err != nil {
		t.Fatal(err)
	}

	ix, err := New(base, Config{SplitThreshold: 4, Depth: 20})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ix.Scrub(ctx)
	if err != nil {
		t.Fatalf("Scrub: %v\n%s", err, rep)
	}
	if rep.Strays != 1 {
		t.Fatalf("report = %s; want 1 stray relocated", rep)
	}
	rec, _, err := ix.Search(0.9)
	if err != nil || rec.Value[0] != 9 {
		t.Fatalf("Search(0.9) after relocation = %v, %v", rec, err)
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
