package simnet

import (
	"errors"
	"sync"
	"testing"
)

func TestRegisterSendPeek(t *testing.T) {
	n := New()
	n.Register("a", 42)

	v, err := n.Send("a")
	if err != nil || v.(int) != 42 {
		t.Fatalf("Send = %v, %v", v, err)
	}
	if n.Messages() != 1 {
		t.Fatalf("Messages = %d", n.Messages())
	}
	if v, ok := n.Peek("a"); !ok || v.(int) != 42 {
		t.Fatal("Peek failed")
	}
	if n.Messages() != 1 {
		t.Fatal("Peek must not charge messages")
	}
	if _, err := n.Send("ghost"); !errors.Is(err, ErrUnknownAddr) {
		t.Fatalf("Send to unknown = %v", err)
	}
	if n.Messages() != 2 {
		t.Fatal("failed sends must still be charged")
	}
}

func TestDownAndRecovery(t *testing.T) {
	n := New()
	n.Register("a", 1)
	n.SetDown("a", true)
	if !n.Down("a") {
		t.Fatal("Down not set")
	}
	if _, err := n.Send("a"); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("Send to down node = %v", err)
	}
	n.SetDown("a", false)
	if _, err := n.Send("a"); err != nil {
		t.Fatalf("Send after recovery = %v", err)
	}
	// SetDown on an unknown address is a no-op.
	n.SetDown("ghost", true)
	if n.Down("ghost") {
		t.Fatal("unknown addr marked down")
	}
	// Re-registering clears the down flag.
	n.SetDown("a", true)
	n.Register("a", 2)
	if n.Down("a") {
		t.Fatal("Register did not clear down flag")
	}
}

func TestUnregister(t *testing.T) {
	n := New()
	n.Register("a", 1)
	n.Register("b", 2)
	n.Unregister("a")
	if _, err := n.Send("a"); !errors.Is(err, ErrUnknownAddr) {
		t.Fatal("Unregister did not remove the node")
	}
	addrs := n.Addrs()
	if len(addrs) != 1 || addrs[0] != "b" {
		t.Fatalf("Addrs = %v", addrs)
	}
}

func TestResetMessages(t *testing.T) {
	n := New()
	n.Register("a", 1)
	for i := 0; i < 5; i++ {
		_, _ = n.Send("a")
	}
	n.ResetMessages()
	if n.Messages() != 0 {
		t.Fatal("ResetMessages failed")
	}
}

func TestConcurrentSends(t *testing.T) {
	n := New()
	n.Register("a", 1)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if _, err := n.Send("a"); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if n.Messages() != 800 {
		t.Fatalf("Messages = %d, want 800", n.Messages())
	}
}
