package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// ReportSchema versions the machine-readable report format; bump it when
// the shape of Report changes incompatibly.
const ReportSchema = "lht-bench/1"

// TimedResult is one experiment's figure plus the wall time it took to
// produce.
type TimedResult struct {
	Result
	WallMillis int64 `json:"wall_millis"`
}

// Report is the machine-readable output of a bench run: every result with
// its series data (the op counts behind each figure) and wall times, for
// CI trend tracking and external plotting.
type Report struct {
	Schema     string        `json:"schema"`
	Options    Options       `json:"options"`
	WallMillis int64         `json:"wall_millis"`
	Results    []TimedResult `json:"results"`
}

// NewReport starts a report for one run.
func NewReport(o Options) *Report {
	return &Report{Schema: ReportSchema, Options: o}
}

// Add appends one result with its wall time.
func (r *Report) Add(res Result, wall time.Duration) {
	r.Results = append(r.Results, TimedResult{Result: res, WallMillis: wall.Milliseconds()})
	r.WallMillis += wall.Milliseconds()
}

// WriteFile writes the report as indented JSON, creating the target
// directory if needed.
func (r *Report) WriteFile(path string) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("bench: report dir: %w", err)
		}
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: encode report: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("bench: write report: %w", err)
	}
	return nil
}
