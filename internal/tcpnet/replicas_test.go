package tcpnet

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"

	"lht/internal/dht"
	"lht/internal/dht/dhttest"
	"lht/internal/metrics"
)

// startServerMap boots n servers and returns their addresses plus an
// address-to-server map, so a test can take down a specific holder.
func startServerMap(t *testing.T, n int) ([]string, map[string]*Server) {
	t.Helper()
	addrs := make([]string, 0, n)
	srvs := make(map[string]*Server, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := NewServer()
		go func() { _ = srv.Serve(ln) }()
		t.Cleanup(func() { _ = srv.Close() })
		addr := ln.Addr().String()
		addrs = append(addrs, addr)
		srvs[addr] = srv
	}
	return addrs, srvs
}

// TestReplicatedConformance runs the full substrate battery with
// replication on: every op must behave exactly like the unreplicated
// client, with redundancy and read spreading invisible to callers.
func TestReplicatedConformance(t *testing.T) {
	factory := func(t *testing.T) dht.DHT {
		c, err := DialContext(context.Background(), startServers(t, 4), WithReplicas(2))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = c.Close() })
		return c
	}
	dhttest.Run(t, factory, dhttest.Options{
		Keys:         120,
		ValueFactory: func(i int) dht.Value { return &payload{N: i} },
		ValueEqual: func(v dht.Value, i int) bool {
			p, ok := v.(*payload)
			return ok && p.N == i
		},
	})
}

// TestReplicatedFailover pins what replication buys: with the primary
// holder down, reads fall back to the surviving holder, and the read
// rotation spreads load across holders while both are up.
func TestReplicatedFailover(t *testing.T) {
	addrs, srvs := startServerMap(t, 4)
	agg := &metrics.Counters{}
	c, err := DialContext(context.Background(), addrs, WithReplicas(2), WithCounters(agg))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	ctx := context.Background()
	if err := c.Put(ctx, "hot", []byte("v")); err != nil {
		t.Fatal(err)
	}

	// Both holders up: repeated reads of one key must leave the primary.
	for i := 0; i < 10; i++ {
		if _, err := c.Get(ctx, "hot"); err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
	}
	if c.SpreadReads() == 0 {
		t.Error("no reads spread to the non-primary holder")
	}
	if got := agg.Snapshot().Load.SpreadReads; got != c.SpreadReads() {
		t.Errorf("chained counter saw %d spread reads, client %d", got, c.SpreadReads())
	}

	// Kill the primary: the fallback scan must still serve the key.
	primary := c.owners("hot")[0]
	if err := srvs[primary.addr].Close(); err != nil {
		t.Fatal(err)
	}
	var served bool
	for i := 0; i < 4; i++ {
		if _, err := c.Get(ctx, "hot"); err == nil {
			served = true
			break
		}
	}
	if !served {
		t.Error("replicated get did not survive losing the primary holder")
	}

	// A conditional write against the dead primary fails rather than
	// diverging: the CAS serializer for the key is gone.
	err = c.PutIf(ctx, "hot", []byte("v2"), 0)
	if err == nil {
		t.Error("PutIf succeeded with the primary CAS serializer down")
	}
}

// TestReplicaPropagationEpochOrder pins the high-severity staleness fix:
// replica fan-outs travel as OpPutNewer, so a late-arriving propagation of
// an OLDER commit must not overwrite the newer value a holder already
// stores. Without the epoch guard, two concurrent commits' interleaved
// fan-outs could durably roll a secondary back, and every rotated read of
// the key would serve the stale epoch.
func TestReplicaPropagationEpochOrder(t *testing.T) {
	addrs, _ := startServerMap(t, 2)
	c, err := DialContext(context.Background(), addrs, WithReplicas(2))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	ctx := context.Background()

	holder := c.owners("k")[1] // a secondary: where fan-outs land

	// Commit N's fan-out lands first...
	if err := c.putTo(ctx, holder, dht.OpPutNewer, "k", &dhttest.EpochValue{Epoch: 5, Body: "new"}); err != nil {
		t.Fatal(err)
	}
	// ...then commit N-1's straggler arrives. It must be rejected.
	if err := c.putTo(ctx, holder, dht.OpPutNewer, "k", &dhttest.EpochValue{Epoch: 4, Body: "old"}); err != nil {
		t.Fatalf("superseded propagation errored instead of no-oping: %v", err)
	}
	v, err := c.getFrom(ctx, holder, "k")
	if err != nil {
		t.Fatal(err)
	}
	if ev, ok := v.(*dhttest.EpochValue); !ok || ev.Epoch != 5 || ev.Body != "new" {
		t.Fatalf("holder rolled back to %#v, want epoch 5 %q", v, "new")
	}

	// Equal and newer epochs still store (idempotent re-propagation, and
	// the normal in-order case).
	if err := c.putTo(ctx, holder, dht.OpPutNewer, "k", &dhttest.EpochValue{Epoch: 6, Body: "newer"}); err != nil {
		t.Fatal(err)
	}
	if v, _ := c.getFrom(ctx, holder, "k"); v.(*dhttest.EpochValue).Epoch != 6 {
		t.Fatalf("in-order propagation did not store, holder at %#v", v)
	}
}

// TestReplicatedCASHoldersConverge drives many concurrent CAS writers at
// one key and then inspects EVERY holder directly: once all writers have
// returned, each reachable holder must store the final committed epoch —
// the file's "never stale on a reachable holder" invariant. The last
// commit's fan-out completes before its writer returns, and epoch-ordered
// propagation forbids any straggling older fan-out from overwriting it.
func TestReplicatedCASHoldersConverge(t *testing.T) {
	addrs, _ := startServerMap(t, 4)
	c, err := DialContext(context.Background(), addrs, WithReplicas(3))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	ctx := context.Background()
	const key = "contested"

	if err := c.CreateIf(ctx, key, &dhttest.EpochValue{Epoch: 1, Body: "seed"}); err != nil {
		t.Fatal(err)
	}

	const writers, commitsEach = 8, 10
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < commitsEach; n++ {
				for { // optimistic CAS retry loop, as the index layer runs it
					v, err := c.Get(ctx, key)
					if err != nil {
						t.Error(err)
						return
					}
					cur := v.(*dhttest.EpochValue)
					next := &dhttest.EpochValue{Epoch: cur.Epoch + 1, Body: "w"}
					err = c.PutIf(ctx, key, next, cur.Epoch)
					if err == nil {
						break
					}
					if !errors.Is(err, dht.ErrCASConflict) {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()

	want := uint64(1 + writers*commitsEach)
	for rank, holder := range c.owners(key) {
		v, err := c.getFrom(ctx, holder, key)
		if err != nil {
			t.Fatalf("holder %d (%s): %v", rank, holder.addr, err)
		}
		if got := v.(*dhttest.EpochValue).Epoch; got != want {
			t.Errorf("holder %d (%s) settled at epoch %d, want %d: stale replica survived the fan-out race",
				rank, holder.addr, got, want)
		}
	}
}

// TestReplicasValidation pins the dial-time contract.
func TestReplicasValidation(t *testing.T) {
	addrs := startServers(t, 2)
	if _, err := DialContext(context.Background(), addrs, WithReplicas(3)); err == nil {
		t.Error("3 replicas on a 2-node cluster dialed")
	}
	if _, err := DialContext(context.Background(), addrs, WithReplicas(2), WithWire(WireGob)); err == nil {
		t.Error("replicated gob wire dialed")
	}
	// Duplicate addresses must fail the dial outright — they can never
	// shrink the distinct-node count below the replica count, which would
	// leave owners() handing out short holder sets.
	if _, err := DialContext(context.Background(), []string{addrs[0], addrs[0]}, WithReplicas(2)); err == nil {
		t.Error("duplicated node list dialed")
	}
	c, err := DialContext(context.Background(), addrs, WithReplicas(2))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	if got := len(c.owners("k")); got != 2 {
		t.Errorf("owners = %d nodes, want 2", got)
	}
	if c.owners("k")[0] != c.owner("k") {
		t.Error("replica set does not start at the owner")
	}
}

// TestCondSerializerFailover pins the acting-serializer rule: with hinted
// handoff on, a conditional write whose primary holder is unreachable
// resolves on the first reachable holder and parks the primary's copy as
// a hint; without hinted handoff the same write surfaces the fault.
func TestCondSerializerFailover(t *testing.T) {
	ctx := context.Background()
	addrs, srvs := startServerMap(t, 3)
	c, err := Dial(ctx, ClusterConfig{Seeds: addrs, Replicas: 2, HintedHandoff: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	static, err := Dial(ctx, ClusterConfig{Seeds: addrs, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer static.Close()

	key := "cas-failover"
	owners := c.owners(key)
	primary, secondary := owners[0].addr, owners[1].addr
	_ = srvs[primary].Close()

	if err := static.CreateIf(ctx, key, []byte("lost")); err == nil {
		t.Fatal("static client must surface the down primary")
	}
	if err := c.CreateIf(ctx, key, []byte("v1")); err != nil {
		t.Fatalf("CreateIf with serializer failover: %v", err)
	}
	if !srvs[secondary].Has(key) {
		t.Fatal("acting serializer holds no copy")
	}
	if got := srvs[secondary].HintBacklog()[primary]; got != 1 {
		t.Fatalf("hints parked for the skipped primary = %d, want 1", got)
	}

	// The committed copy is CAS-visible: a conditional update against the
	// acting serializer's epoch succeeds, a stale one conflicts.
	v, err := c.Get(ctx, key)
	if err != nil {
		t.Fatal(err)
	}
	if string(v.([]byte)) != "v1" {
		t.Fatalf("read back %q", v)
	}
	if err := c.CreateIf(ctx, key, []byte("dup")); err == nil {
		t.Fatal("CreateIf over an existing key must conflict, not fail over")
	}
}
