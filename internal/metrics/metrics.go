// Package metrics provides the counters behind the paper's cost model
// (section 8.1): DHT-lookups and moved data records are the two
// bandwidth-consuming operations of an over-DHT indexing scheme, and
// parallel step depth is the latency measure of section 9.4.
//
// Beyond the flat cost-model counters, the package carries the
// observability plane: per-operation-class latency histograms and a
// lookup matrix attributing DHT traffic to the algorithm phase that
// issued it (probe, forward, split, merge, repair, retry). Operation
// and phase labels travel on the context (WithOp, WithPhase) so the
// instrumentation layer can charge each routed lookup to the right
// cell without threading extra parameters through the algorithms.
//
// Counters are atomic so instrumented DHTs can be shared across
// goroutines; reads take a consistent-enough snapshot for reporting.
// A Counters may chain to a parent aggregate (Chain), letting many
// index instances roll up into one process-wide set served at /metrics
// while each instance keeps its own exact accounting.
package metrics

import (
	"sync/atomic"
	"time"
)

// Cost reports the DHT traffic of a single index operation, the two
// measures of paper section 9: Lookups is the bandwidth measure (number of
// DHT-lookups issued) and Steps is the latency measure (the longest chain
// of DHT-lookups that must run sequentially; lookups issued by the same
// peer in one round proceed in parallel).
type Cost struct {
	Lookups int
	Steps   int
}

// Add accumulates another operation's cost as if run sequentially after
// this one.
func (c *Cost) Add(o Cost) {
	c.Lookups += o.Lookups
	c.Steps += o.Steps
}

// Counters aggregates the cost-model measurements of one index instance or
// one DHT instance. The zero value is ready to use.
type Counters struct {
	lookups      atomic.Int64 // DHT-lookups: every routed Get/Put/Take/Remove
	failedGets   atomic.Int64 // subset of lookups: Gets that found no value
	movedRecords atomic.Int64 // records transferred between peers (incl. label slots)
	splits       atomic.Int64 // leaf splits performed
	merges       atomic.Int64 // leaf merges performed
	maintLookups atomic.Int64 // subset of lookups spent on splits/merges (Fig. 7b)
	cacheHits    atomic.Int64 // leaf-cache probes that resolved the lookup in one get
	cacheMisses  atomic.Int64 // lookups that found no leaf-cache entry
	cacheStale   atomic.Int64 // leaf-cache probes that found a stale entry

	retries          atomic.Int64 // policy-layer re-attempts after transient faults
	cancellations    atomic.Int64 // operations ended by context cancellation
	deadlineExceeded atomic.Int64 // operations ended by context deadline expiry

	batchOps    atomic.Int64 // native batched round trips issued
	batchedKeys atomic.Int64 // keys carried by those batches (each also a lookup)

	tornSplits   atomic.Int64 // torn split intents detected (lookup or scrub)
	tornMerges   atomic.Int64 // torn merge intents detected (lookup or scrub)
	repairs      atomic.Int64 // torn states completed or rolled back
	scrubLookups atomic.Int64 // subset of lookups issued by Scrub walks

	casConflicts  atomic.Int64 // conditional writes that lost their compare-and-swap
	writerRetries atomic.Int64 // index mutation rounds re-run after a CAS conflict
	casFallbacks  atomic.Int64 // conditional ops emulated by fetch-verify-write

	hotSplits     atomic.Int64 // leaf splits triggered by request rate, not capacity
	coalescedGets atomic.Int64 // DHT-gets absorbed by singleflight coalescing
	spreadReads   atomic.Int64 // reads served starting at a non-primary replica

	hedgedGets       atomic.Int64 // hedge requests launched for slow idempotent gets
	hedgeWins        atomic.Int64 // hedges that answered before the original attempt
	breakerOpens     atomic.Int64 // circuit-breaker transitions into the open state
	breakerFastFails atomic.Int64 // operations rejected instantly by an open breaker
	failovers        atomic.Int64 // reads rerouted off an unhealthy primary holder

	gossipRounds   atomic.Int64 // anti-entropy membership exchanges performed
	viewRefreshes  atomic.Int64 // membership views applied to a client's routing ring
	hintsParked    atomic.Int64 // hinted handoffs parked for an unreachable holder
	hintsReplayed  atomic.Int64 // parked hints delivered to their returned holder
	replicaProbes  atomic.Int64 // per-holder existence probes issued by re-replication
	replicaRepairs atomic.Int64 // missing replica copies restored on their owners

	opCount [NumOps]atomic.Int64            // completed index operations per class
	opErrs  [NumOps]atomic.Int64            // subset of opCount that returned an error
	opLat   [NumOps]Histogram               // end-to-end latency per class
	phase   [NumOps][NumPhases]atomic.Int64 // lookup matrix: op class x algorithm phase

	// parent, when non-nil, receives a copy of every increment, so many
	// per-index Counters can roll up into one process-wide aggregate.
	// Set once via Chain before the Counters is shared.
	parent *Counters
}

// Chain makes every future increment of c also count toward parent
// (and, transitively, toward parent's own parent). Per-index values
// such as the split count stay exact on c — which derived statistics
// like AlphaMean depend on — while the aggregate sees the union of all
// chained children. Must be called before c is used concurrently.
func (c *Counters) Chain(parent *Counters) { c.parent = parent }

// AddLookups adds n DHT-lookups.
func (c *Counters) AddLookups(n int64) {
	for ; c != nil; c = c.parent {
		c.lookups.Add(n)
	}
}

// AddFailedGets adds n failed DHT-gets (already counted as lookups).
func (c *Counters) AddFailedGets(n int64) {
	for ; c != nil; c = c.parent {
		c.failedGets.Add(n)
	}
}

// AddMovedRecords adds n records moved between peers.
func (c *Counters) AddMovedRecords(n int64) {
	for ; c != nil; c = c.parent {
		c.movedRecords.Add(n)
	}
}

// AddSplits adds n leaf splits.
func (c *Counters) AddSplits(n int64) {
	for ; c != nil; c = c.parent {
		c.splits.Add(n)
	}
}

// AddMerges adds n leaf merges.
func (c *Counters) AddMerges(n int64) {
	for ; c != nil; c = c.parent {
		c.merges.Add(n)
	}
}

// AddMaintLookups attributes n already-counted lookups to structure
// maintenance (splits and merges), the traffic Fig. 7b isolates.
func (c *Counters) AddMaintLookups(n int64) {
	for ; c != nil; c = c.parent {
		c.maintLookups.Add(n)
	}
}

// AddCacheHits adds n leaf-cache hits: exact-match lookups resolved by
// probing a cached leaf name with a single DHT-get.
func (c *Counters) AddCacheHits(n int64) {
	for ; c != nil; c = c.parent {
		c.cacheHits.Add(n)
	}
}

// AddCacheMisses adds n leaf-cache misses: lookups for keys with no
// cached covering leaf, answered by the full binary search.
func (c *Counters) AddCacheMisses(n int64) {
	for ; c != nil; c = c.parent {
		c.cacheMisses.Add(n)
	}
}

// AddCacheStale adds n stale leaf-cache probes: the cached leaf had
// split or merged away, so the client repaired and fell back.
func (c *Counters) AddCacheStale(n int64) {
	for ; c != nil; c = c.parent {
		c.cacheStale.Add(n)
	}
}

// AddRetries adds n policy-layer retries: repeated attempts after a
// transient substrate fault. Each retry is also charged as a DHT-lookup
// by the instrumentation layer beneath the policy wrapper.
func (c *Counters) AddRetries(n int64) {
	for ; c != nil; c = c.parent {
		c.retries.Add(n)
	}
}

// AddCancellations adds n operations that ended because the caller's
// context was cancelled.
func (c *Counters) AddCancellations(n int64) {
	for ; c != nil; c = c.parent {
		c.cancellations.Add(n)
	}
}

// AddDeadlineExceeded adds n operations that ended because the caller's
// context deadline expired.
func (c *Counters) AddDeadlineExceeded(n int64) {
	for ; c != nil; c = c.parent {
		c.deadlineExceeded.Add(n)
	}
}

// AddBatchOps adds n native batched round trips. Only batches served by a
// substrate's own Batcher implementation count; per-op fallbacks charge
// nothing here because they save no round trips.
func (c *Counters) AddBatchOps(n int64) {
	for ; c != nil; c = c.parent {
		c.batchOps.Add(n)
	}
}

// AddBatchedKeys adds n keys carried inside native batches. Every such
// key is also charged as a DHT-lookup, keeping the bandwidth measure
// identical whether or not batching is available.
func (c *Counters) AddBatchedKeys(n int64) {
	for ; c != nil; c = c.parent {
		c.batchedKeys.Add(n)
	}
}

// AddTornSplits adds n torn split intents detected: buckets fetched with a
// pending split marker left behind by a writer that crashed mid-mutation.
func (c *Counters) AddTornSplits(n int64) {
	for ; c != nil; c = c.parent {
		c.tornSplits.Add(n)
	}
}

// AddTornMerges adds n torn merge intents detected.
func (c *Counters) AddTornMerges(n int64) {
	for ; c != nil; c = c.parent {
		c.tornMerges.Add(n)
	}
}

// AddRepairs adds n repairs: torn states idempotently completed or rolled
// back by lookup read-repair or by Scrub.
func (c *Counters) AddRepairs(n int64) {
	for ; c != nil; c = c.parent {
		c.repairs.Add(n)
	}
}

// AddScrubLookups attributes n already-counted lookups to Scrub walks, the
// cost of verifying and repairing the tree's structural invariants.
func (c *Counters) AddScrubLookups(n int64) {
	for ; c != nil; c = c.parent {
		c.scrubLookups.Add(n)
	}
}

// AddCASConflicts adds n lost compare-and-swaps: conditional writes that
// found the stored epoch moved by a concurrent winner.
func (c *Counters) AddCASConflicts(n int64) {
	for ; c != nil; c = c.parent {
		c.casConflicts.Add(n)
	}
}

// AddWriterRetries adds n optimistic-writer retry rounds: whole
// read-modify-write cycles the index layer re-ran after losing a CAS.
func (c *Counters) AddWriterRetries(n int64) {
	for ; c != nil; c = c.parent {
		c.writerRetries.Add(n)
	}
}

// AddCASFallbacks adds n conditional operations served by the non-atomic
// fetch-verify-write fallback because the substrate has no native CAS.
func (c *Counters) AddCASFallbacks(n int64) {
	for ; c != nil; c = c.parent {
		c.casFallbacks.Add(n)
	}
}

// AddHotSplits adds n hot splits: leaf splits triggered by the decaying
// request-rate estimate crossing Config.HotSplitRate while the leaf was
// still under its capacity threshold. Each is also counted by AddSplits.
func (c *Counters) AddHotSplits(n int64) {
	for ; c != nil; c = c.parent {
		c.hotSplits.Add(n)
	}
}

// AddCoalescedGets adds n coalesced DHT-gets: concurrent fetches of one
// hot key that rode an already-in-flight get instead of issuing their
// own. Coalesced gets are still charged as lookups by the
// instrumentation layer above the coalescer, so the cost model is
// unchanged; this counts the physical round trips saved.
func (c *Counters) AddCoalescedGets(n int64) {
	for ; c != nil; c = c.parent {
		c.coalescedGets.Add(n)
	}
}

// AddSpreadReads adds n spread reads: Get/Take operations whose replica
// iteration started at a rotated non-primary holder to spread a hot
// key's read load across its replica set.
func (c *Counters) AddSpreadReads(n int64) {
	for ; c != nil; c = c.parent {
		c.spreadReads.Add(n)
	}
}

// AddHedgedGets adds n hedged gets: duplicate reads launched against
// another replica holder after the original attempt outlived the hedge
// delay. Hedges are physical round trips, not logical DHT-lookups — the
// paper's cost model is unchanged; this counts the extra load spent
// buying tail latency.
func (c *Counters) AddHedgedGets(n int64) {
	for ; c != nil; c = c.parent {
		c.hedgedGets.Add(n)
	}
}

// AddHedgeWins adds n hedge wins: hedged gets whose duplicate answered
// before the original attempt did.
func (c *Counters) AddHedgeWins(n int64) {
	for ; c != nil; c = c.parent {
		c.hedgeWins.Add(n)
	}
}

// AddBreakerOpens adds n circuit-breaker open transitions: a node's
// consecutive transport failures crossed the threshold and further
// traffic to it will fast-fail for the cooldown.
func (c *Counters) AddBreakerOpens(n int64) {
	for ; c != nil; c = c.parent {
		c.breakerOpens.Add(n)
	}
}

// AddBreakerFastFails adds n breaker fast fails: operations that were
// rejected instantly by an open breaker instead of paying a dial or
// request timeout against a node known to be unhealthy.
func (c *Counters) AddBreakerFastFails(n int64) {
	for ; c != nil; c = c.parent {
		c.breakerFastFails.Add(n)
	}
}

// AddFailovers adds n read failovers: reads that skipped an open
// (unhealthy) holder and were served by another replica.
func (c *Counters) AddFailovers(n int64) {
	for ; c != nil; c = c.parent {
		c.failovers.Add(n)
	}
}

// AddGossipRounds adds n anti-entropy membership exchanges: one gossip
// round trip between two nodes, successful or not.
func (c *Counters) AddGossipRounds(n int64) {
	for ; c != nil; c = c.parent {
		c.gossipRounds.Add(n)
	}
}

// AddViewRefreshes adds n view refreshes: membership views a client
// pulled from the cluster and applied to its routing ring.
func (c *Counters) AddViewRefreshes(n int64) {
	for ; c != nil; c = c.parent {
		c.viewRefreshes.Add(n)
	}
}

// AddHintsParked adds n hinted handoffs: epoch-tagged writes a fan-out
// could not deliver to their holder, parked on a substitute node for
// replay when the holder returns.
func (c *Counters) AddHintsParked(n int64) {
	for ; c != nil; c = c.parent {
		c.hintsParked.Add(n)
	}
}

// AddHintsReplayed adds n hint replays: parked hinted handoffs delivered
// to their returned holder through the epoch-ordered store.
func (c *Counters) AddHintsReplayed(n int64) {
	for ; c != nil; c = c.parent {
		c.hintsReplayed.Add(n)
	}
}

// AddReplicaProbes adds n re-replication probes: per-holder existence
// checks EnsureReplicated issued while auditing a key's replica set.
func (c *Counters) AddReplicaProbes(n int64) {
	for ; c != nil; c = c.parent {
		c.replicaProbes.Add(n)
	}
}

// AddReplicaRepairs adds n replica repairs: missing copies re-stored on
// their ring owners by re-replication.
func (c *Counters) AddReplicaRepairs(n int64) {
	for ; c != nil; c = c.parent {
		c.replicaRepairs.Add(n)
	}
}

// AddPhaseLookups attributes n already-counted lookups to the (op, phase)
// cell of the attribution matrix. The instrumentation layer calls this
// alongside AddLookups with the labels it read from the context, so the
// matrix row sums track the lookup total for labelled traffic.
func (c *Counters) AddPhaseLookups(op Op, phase Phase, n int64) {
	if op < 0 || op >= NumOps || phase < 0 || phase >= NumPhases {
		return
	}
	for ; c != nil; c = c.parent {
		c.phase[op][phase].Add(n)
	}
}

// ObserveOp records one completed index operation of the given class:
// its end-to-end latency and whether it returned an error.
func (c *Counters) ObserveOp(op Op, d time.Duration, failed bool) {
	if op < 0 || op >= NumOps {
		op = OpOther
	}
	for ; c != nil; c = c.parent {
		c.opCount[op].Add(1)
		if failed {
			c.opErrs[op].Add(1)
		}
		c.opLat[op].Observe(d)
	}
}

// Snapshot is a point-in-time copy of the counters, grouped by concern:
// the paper's cost model (Lookup), the client leaf cache (Cache), the
// retry policy plane (Retry), the batched operation plane (Batch), the
// crash-consistency plane (Repair), and per-operation-class latency and
// phase attribution (Latency). Flat returns the same numbers as a flat
// struct for column-oriented consumers.
type Snapshot struct {
	Lookup     LookupCounts
	Cache      CacheCounts
	Retry      RetryCounts
	Batch      BatchCounts
	Repair     RepairCounts
	Write      WriteCounts
	Load       LoadCounts
	Health     HealthCounts
	Membership MembershipCounts
	Latency    LatencyStats
}

// LookupCounts are the paper's bandwidth-model counters.
type LookupCounts struct {
	Total        int64 // DHT-lookups issued
	FailedGets   int64 // DHT-gets that returned "not found"
	MovedRecords int64 // record slots moved between peers
	Splits       int64 // leaf splits
	Merges       int64 // leaf merges
	Maintenance  int64 // lookups spent on splits and merges
}

// CacheCounts are the client leaf-cache counters.
type CacheCounts struct {
	Hits   int64 // leaf-cache probes resolved in one DHT-get
	Misses int64 // lookups with no leaf-cache entry
	Stale  int64 // leaf-cache probes that detected a stale entry
}

// RetryCounts are the retry-policy-plane counters.
type RetryCounts struct {
	Retries          int64 // policy-layer retries after transient faults
	Cancellations    int64 // operations ended by context cancellation
	DeadlineExceeded int64 // operations ended by context deadline expiry
}

// BatchCounts are the batched-operation-plane counters.
type BatchCounts struct {
	Ops  int64 // native batched round trips issued
	Keys int64 // keys carried by those batches
}

// RepairCounts are the crash-consistency-plane counters.
type RepairCounts struct {
	TornSplits   int64 // torn split intents detected
	TornMerges   int64 // torn merge intents detected
	Repairs      int64 // torn states completed or rolled back
	ScrubLookups int64 // lookups issued by Scrub walks
}

// WriteCounts are the multi-writer concurrency-control counters.
type WriteCounts struct {
	CASConflicts  int64 // conditional writes that lost their compare-and-swap
	WriterRetries int64 // index mutation rounds re-run after a CAS conflict
	CASFallbacks  int64 // conditional ops emulated by fetch-verify-write
}

// LoadCounts are the hot-leaf load-balancing-plane counters.
type LoadCounts struct {
	HotSplits     int64 // leaf splits triggered by request rate, not capacity
	CoalescedGets int64 // DHT-gets absorbed by singleflight coalescing
	SpreadReads   int64 // reads served starting at a non-primary replica
}

// HealthCounts are the graceful-degradation-plane counters: circuit
// breakers and hedged reads keeping queries answered while the network
// misbehaves.
type HealthCounts struct {
	HedgedGets       int64 // duplicate reads launched after the hedge delay
	HedgeWins        int64 // hedges that answered before the original attempt
	BreakerOpens     int64 // circuit-breaker transitions into the open state
	BreakerFastFails int64 // operations rejected instantly by an open breaker
	Failovers        int64 // reads rerouted off an unhealthy holder
}

// MembershipCounts are the self-healing-membership-plane counters:
// gossip keeping every view current, hinted handoff bridging transient
// holder outages, and re-replication restoring replica count after
// permanent ones.
type MembershipCounts struct {
	GossipRounds   int64 // anti-entropy membership exchanges performed
	ViewRefreshes  int64 // membership views applied to a client's routing ring
	HintsParked    int64 // hinted handoffs parked for an unreachable holder
	HintsReplayed  int64 // parked hints delivered to their returned holder
	ReplicaProbes  int64 // per-holder existence probes issued by re-replication
	ReplicaRepairs int64 // missing replica copies restored on their owners
}

// OpStats are the per-operation-class observations: how many operations
// of the class completed, how many failed, their latency distribution,
// and the DHT-lookups they issued broken down by algorithm phase.
type OpStats struct {
	Count  int64
	Errors int64
	Hist   HistogramSnapshot
	Phases [NumPhases]int64
}

// Lookups returns the total DHT-lookups attributed to this class across
// all phases.
func (o OpStats) Lookups() int64 {
	var n int64
	for _, p := range o.Phases {
		n += p
	}
	return n
}

// LatencyStats hold one OpStats per operation class, indexed by Op.
type LatencyStats struct {
	Ops [NumOps]OpStats
}

// RoundTrips estimates the client's DHT round trips: every lookup is its
// own round trip except the keys carried by native batches, which share
// one round trip per batch. With no batching it equals Lookup.Total; a
// fully batched workload approaches one round trip per batch.
func (s Snapshot) RoundTrips() int64 { return s.Lookup.Total - s.Batch.Keys + s.Batch.Ops }

// Snapshot returns the current counter values.
func (c *Counters) Snapshot() Snapshot {
	s := Snapshot{
		Lookup: LookupCounts{
			Total:        c.lookups.Load(),
			FailedGets:   c.failedGets.Load(),
			MovedRecords: c.movedRecords.Load(),
			Splits:       c.splits.Load(),
			Merges:       c.merges.Load(),
			Maintenance:  c.maintLookups.Load(),
		},
		Cache: CacheCounts{
			Hits:   c.cacheHits.Load(),
			Misses: c.cacheMisses.Load(),
			Stale:  c.cacheStale.Load(),
		},
		Retry: RetryCounts{
			Retries:          c.retries.Load(),
			Cancellations:    c.cancellations.Load(),
			DeadlineExceeded: c.deadlineExceeded.Load(),
		},
		Batch: BatchCounts{
			Ops:  c.batchOps.Load(),
			Keys: c.batchedKeys.Load(),
		},
		Repair: RepairCounts{
			TornSplits:   c.tornSplits.Load(),
			TornMerges:   c.tornMerges.Load(),
			Repairs:      c.repairs.Load(),
			ScrubLookups: c.scrubLookups.Load(),
		},
		Write: WriteCounts{
			CASConflicts:  c.casConflicts.Load(),
			WriterRetries: c.writerRetries.Load(),
			CASFallbacks:  c.casFallbacks.Load(),
		},
		Load: LoadCounts{
			HotSplits:     c.hotSplits.Load(),
			CoalescedGets: c.coalescedGets.Load(),
			SpreadReads:   c.spreadReads.Load(),
		},
		Health: HealthCounts{
			HedgedGets:       c.hedgedGets.Load(),
			HedgeWins:        c.hedgeWins.Load(),
			BreakerOpens:     c.breakerOpens.Load(),
			BreakerFastFails: c.breakerFastFails.Load(),
			Failovers:        c.failovers.Load(),
		},
		Membership: MembershipCounts{
			GossipRounds:   c.gossipRounds.Load(),
			ViewRefreshes:  c.viewRefreshes.Load(),
			HintsParked:    c.hintsParked.Load(),
			HintsReplayed:  c.hintsReplayed.Load(),
			ReplicaProbes:  c.replicaProbes.Load(),
			ReplicaRepairs: c.replicaRepairs.Load(),
		},
	}
	for op := Op(0); op < NumOps; op++ {
		o := &s.Latency.Ops[op]
		o.Count = c.opCount[op].Load()
		o.Errors = c.opErrs[op].Load()
		o.Hist = c.opLat[op].Snapshot()
		for ph := Phase(0); ph < NumPhases; ph++ {
			o.Phases[ph] = c.phase[op][ph].Load()
		}
	}
	return s
}

// Reset zeroes all counters (the parent aggregate, if chained, keeps
// what it has already absorbed).
func (c *Counters) Reset() {
	c.lookups.Store(0)
	c.failedGets.Store(0)
	c.movedRecords.Store(0)
	c.splits.Store(0)
	c.merges.Store(0)
	c.maintLookups.Store(0)
	c.cacheHits.Store(0)
	c.cacheMisses.Store(0)
	c.cacheStale.Store(0)
	c.retries.Store(0)
	c.cancellations.Store(0)
	c.deadlineExceeded.Store(0)
	c.batchOps.Store(0)
	c.batchedKeys.Store(0)
	c.tornSplits.Store(0)
	c.tornMerges.Store(0)
	c.repairs.Store(0)
	c.scrubLookups.Store(0)
	c.casConflicts.Store(0)
	c.writerRetries.Store(0)
	c.casFallbacks.Store(0)
	c.hotSplits.Store(0)
	c.coalescedGets.Store(0)
	c.spreadReads.Store(0)
	c.hedgedGets.Store(0)
	c.hedgeWins.Store(0)
	c.breakerOpens.Store(0)
	c.breakerFastFails.Store(0)
	c.failovers.Store(0)
	c.gossipRounds.Store(0)
	c.viewRefreshes.Store(0)
	c.hintsParked.Store(0)
	c.hintsReplayed.Store(0)
	c.replicaProbes.Store(0)
	c.replicaRepairs.Store(0)
	for op := Op(0); op < NumOps; op++ {
		c.opCount[op].Store(0)
		c.opErrs[op].Store(0)
		c.opLat[op].reset()
		for ph := Phase(0); ph < NumPhases; ph++ {
			c.phase[op][ph].Store(0)
		}
	}
}

// Sub returns the component-wise difference s - prev, for measuring the
// cost of a single operation or experiment phase.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	d := Snapshot{
		Lookup: LookupCounts{
			Total:        s.Lookup.Total - prev.Lookup.Total,
			FailedGets:   s.Lookup.FailedGets - prev.Lookup.FailedGets,
			MovedRecords: s.Lookup.MovedRecords - prev.Lookup.MovedRecords,
			Splits:       s.Lookup.Splits - prev.Lookup.Splits,
			Merges:       s.Lookup.Merges - prev.Lookup.Merges,
			Maintenance:  s.Lookup.Maintenance - prev.Lookup.Maintenance,
		},
		Cache: CacheCounts{
			Hits:   s.Cache.Hits - prev.Cache.Hits,
			Misses: s.Cache.Misses - prev.Cache.Misses,
			Stale:  s.Cache.Stale - prev.Cache.Stale,
		},
		Retry: RetryCounts{
			Retries:          s.Retry.Retries - prev.Retry.Retries,
			Cancellations:    s.Retry.Cancellations - prev.Retry.Cancellations,
			DeadlineExceeded: s.Retry.DeadlineExceeded - prev.Retry.DeadlineExceeded,
		},
		Batch: BatchCounts{
			Ops:  s.Batch.Ops - prev.Batch.Ops,
			Keys: s.Batch.Keys - prev.Batch.Keys,
		},
		Repair: RepairCounts{
			TornSplits:   s.Repair.TornSplits - prev.Repair.TornSplits,
			TornMerges:   s.Repair.TornMerges - prev.Repair.TornMerges,
			Repairs:      s.Repair.Repairs - prev.Repair.Repairs,
			ScrubLookups: s.Repair.ScrubLookups - prev.Repair.ScrubLookups,
		},
		Write: WriteCounts{
			CASConflicts:  s.Write.CASConflicts - prev.Write.CASConflicts,
			WriterRetries: s.Write.WriterRetries - prev.Write.WriterRetries,
			CASFallbacks:  s.Write.CASFallbacks - prev.Write.CASFallbacks,
		},
		Load: LoadCounts{
			HotSplits:     s.Load.HotSplits - prev.Load.HotSplits,
			CoalescedGets: s.Load.CoalescedGets - prev.Load.CoalescedGets,
			SpreadReads:   s.Load.SpreadReads - prev.Load.SpreadReads,
		},
		Health: HealthCounts{
			HedgedGets:       s.Health.HedgedGets - prev.Health.HedgedGets,
			HedgeWins:        s.Health.HedgeWins - prev.Health.HedgeWins,
			BreakerOpens:     s.Health.BreakerOpens - prev.Health.BreakerOpens,
			BreakerFastFails: s.Health.BreakerFastFails - prev.Health.BreakerFastFails,
			Failovers:        s.Health.Failovers - prev.Health.Failovers,
		},
		Membership: MembershipCounts{
			GossipRounds:   s.Membership.GossipRounds - prev.Membership.GossipRounds,
			ViewRefreshes:  s.Membership.ViewRefreshes - prev.Membership.ViewRefreshes,
			HintsParked:    s.Membership.HintsParked - prev.Membership.HintsParked,
			HintsReplayed:  s.Membership.HintsReplayed - prev.Membership.HintsReplayed,
			ReplicaProbes:  s.Membership.ReplicaProbes - prev.Membership.ReplicaProbes,
			ReplicaRepairs: s.Membership.ReplicaRepairs - prev.Membership.ReplicaRepairs,
		},
	}
	for op := Op(0); op < NumOps; op++ {
		a, b := s.Latency.Ops[op], prev.Latency.Ops[op]
		o := &d.Latency.Ops[op]
		o.Count = a.Count - b.Count
		o.Errors = a.Errors - b.Errors
		o.Hist = a.Hist.Sub(b.Hist)
		for ph := Phase(0); ph < NumPhases; ph++ {
			o.Phases[ph] = a.Phases[ph] - b.Phases[ph]
		}
	}
	return d
}

// FlatSnapshot is Snapshot flattened back to the original one-level
// counter names, for column-oriented consumers (benchmark formatters,
// JSON reports) that want every number addressable by a short name.
type FlatSnapshot struct {
	Lookups      int64 `json:"lookups"`
	FailedGets   int64 `json:"failed_gets"`
	MovedRecords int64 `json:"moved_records"`
	Splits       int64 `json:"splits"`
	Merges       int64 `json:"merges"`
	MaintLookups int64 `json:"maint_lookups"`
	CacheHits    int64 `json:"cache_hits"`
	CacheMisses  int64 `json:"cache_misses"`
	CacheStale   int64 `json:"cache_stale"`

	Retries          int64 `json:"retries"`
	Cancellations    int64 `json:"cancellations"`
	DeadlineExceeded int64 `json:"deadline_exceeded"`

	BatchOps    int64 `json:"batch_ops"`
	BatchedKeys int64 `json:"batched_keys"`

	TornSplits   int64 `json:"torn_splits"`
	TornMerges   int64 `json:"torn_merges"`
	Repairs      int64 `json:"repairs"`
	ScrubLookups int64 `json:"scrub_lookups"`

	CASConflicts  int64 `json:"cas_conflicts"`
	WriterRetries int64 `json:"writer_retries"`
	CASFallbacks  int64 `json:"cas_fallbacks"`

	HotSplits     int64 `json:"hot_splits"`
	CoalescedGets int64 `json:"coalesced_gets"`
	SpreadReads   int64 `json:"spread_reads"`

	HedgedGets       int64 `json:"hedged_gets"`
	HedgeWins        int64 `json:"hedge_wins"`
	BreakerOpens     int64 `json:"breaker_opens"`
	BreakerFastFails int64 `json:"breaker_fast_fails"`
	Failovers        int64 `json:"failovers"`

	GossipRounds   int64 `json:"gossip_rounds"`
	ViewRefreshes  int64 `json:"view_refreshes"`
	HintsParked    int64 `json:"hints_parked"`
	HintsReplayed  int64 `json:"hints_replayed"`
	ReplicaProbes  int64 `json:"replica_probes"`
	ReplicaRepairs int64 `json:"replica_repairs"`
}

// Flat returns the snapshot's counters under their flat legacy names.
// Latency histograms and the phase matrix have no flat form; use
// s.Latency directly.
func (s Snapshot) Flat() FlatSnapshot {
	return FlatSnapshot{
		Lookups:      s.Lookup.Total,
		FailedGets:   s.Lookup.FailedGets,
		MovedRecords: s.Lookup.MovedRecords,
		Splits:       s.Lookup.Splits,
		Merges:       s.Lookup.Merges,
		MaintLookups: s.Lookup.Maintenance,
		CacheHits:    s.Cache.Hits,
		CacheMisses:  s.Cache.Misses,
		CacheStale:   s.Cache.Stale,

		Retries:          s.Retry.Retries,
		Cancellations:    s.Retry.Cancellations,
		DeadlineExceeded: s.Retry.DeadlineExceeded,

		BatchOps:    s.Batch.Ops,
		BatchedKeys: s.Batch.Keys,

		TornSplits:   s.Repair.TornSplits,
		TornMerges:   s.Repair.TornMerges,
		Repairs:      s.Repair.Repairs,
		ScrubLookups: s.Repair.ScrubLookups,

		CASConflicts:  s.Write.CASConflicts,
		WriterRetries: s.Write.WriterRetries,
		CASFallbacks:  s.Write.CASFallbacks,

		HotSplits:     s.Load.HotSplits,
		CoalescedGets: s.Load.CoalescedGets,
		SpreadReads:   s.Load.SpreadReads,

		HedgedGets:       s.Health.HedgedGets,
		HedgeWins:        s.Health.HedgeWins,
		BreakerOpens:     s.Health.BreakerOpens,
		BreakerFastFails: s.Health.BreakerFastFails,
		Failovers:        s.Health.Failovers,

		GossipRounds:   s.Membership.GossipRounds,
		ViewRefreshes:  s.Membership.ViewRefreshes,
		HintsParked:    s.Membership.HintsParked,
		HintsReplayed:  s.Membership.HintsReplayed,
		ReplicaProbes:  s.Membership.ReplicaProbes,
		ReplicaRepairs: s.Membership.ReplicaRepairs,
	}
}

// RoundTrips mirrors Snapshot.RoundTrips for flat consumers.
func (s FlatSnapshot) RoundTrips() int64 { return s.Lookups - s.BatchedKeys + s.BatchOps }

// Sub returns the counter-wise difference s - prev, mirroring
// Snapshot.Sub for flat consumers.
func (s FlatSnapshot) Sub(prev FlatSnapshot) FlatSnapshot {
	return FlatSnapshot{
		Lookups:      s.Lookups - prev.Lookups,
		FailedGets:   s.FailedGets - prev.FailedGets,
		MovedRecords: s.MovedRecords - prev.MovedRecords,
		Splits:       s.Splits - prev.Splits,
		Merges:       s.Merges - prev.Merges,
		MaintLookups: s.MaintLookups - prev.MaintLookups,
		CacheHits:    s.CacheHits - prev.CacheHits,
		CacheMisses:  s.CacheMisses - prev.CacheMisses,
		CacheStale:   s.CacheStale - prev.CacheStale,

		Retries:          s.Retries - prev.Retries,
		Cancellations:    s.Cancellations - prev.Cancellations,
		DeadlineExceeded: s.DeadlineExceeded - prev.DeadlineExceeded,

		BatchOps:    s.BatchOps - prev.BatchOps,
		BatchedKeys: s.BatchedKeys - prev.BatchedKeys,

		TornSplits:   s.TornSplits - prev.TornSplits,
		TornMerges:   s.TornMerges - prev.TornMerges,
		Repairs:      s.Repairs - prev.Repairs,
		ScrubLookups: s.ScrubLookups - prev.ScrubLookups,

		CASConflicts:  s.CASConflicts - prev.CASConflicts,
		WriterRetries: s.WriterRetries - prev.WriterRetries,
		CASFallbacks:  s.CASFallbacks - prev.CASFallbacks,

		HotSplits:     s.HotSplits - prev.HotSplits,
		CoalescedGets: s.CoalescedGets - prev.CoalescedGets,
		SpreadReads:   s.SpreadReads - prev.SpreadReads,

		HedgedGets:       s.HedgedGets - prev.HedgedGets,
		HedgeWins:        s.HedgeWins - prev.HedgeWins,
		BreakerOpens:     s.BreakerOpens - prev.BreakerOpens,
		BreakerFastFails: s.BreakerFastFails - prev.BreakerFastFails,
		Failovers:        s.Failovers - prev.Failovers,

		GossipRounds:   s.GossipRounds - prev.GossipRounds,
		ViewRefreshes:  s.ViewRefreshes - prev.ViewRefreshes,
		HintsParked:    s.HintsParked - prev.HintsParked,
		HintsReplayed:  s.HintsReplayed - prev.HintsReplayed,
		ReplicaProbes:  s.ReplicaProbes - prev.ReplicaProbes,
		ReplicaRepairs: s.ReplicaRepairs - prev.ReplicaRepairs,
	}
}
