package bench

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"lht/internal/dht"
	"lht/internal/lht"
	"lht/internal/simnet"
	"lht/internal/workload"
)

// flakySubstrate wraps a DHT and fails each routed operation with a
// configured probability, the failure marked transient exactly as the
// networked substrates mark theirs. Injection is off until Activate, so
// the index under test is built on a healthy substrate and only the
// query phase sees faults. The rng is seeded, keeping runs reproducible.
type flakySubstrate struct {
	inner dht.DHT

	mu     sync.Mutex
	rng    *rand.Rand
	rate   float64
	active bool
}

func newFlaky(inner dht.DHT, seed int64) *flakySubstrate {
	return &flakySubstrate{inner: inner, rng: rand.New(rand.NewSource(seed))}
}

// Activate starts injecting: each subsequent operation fails with
// probability rate.
func (f *flakySubstrate) Activate(rate float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rate = rate
	f.active = true
}

func (f *flakySubstrate) fault() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.active && f.rng.Float64() < f.rate {
		return dht.MarkTransient(fmt.Errorf("bench: injected fault: %w", simnet.ErrUnreachable))
	}
	return nil
}

func (f *flakySubstrate) Get(ctx context.Context, key string) (dht.Value, error) {
	if err := f.fault(); err != nil {
		return nil, err
	}
	return f.inner.Get(ctx, key)
}

func (f *flakySubstrate) Put(ctx context.Context, key string, v dht.Value) error {
	if err := f.fault(); err != nil {
		return err
	}
	return f.inner.Put(ctx, key, v)
}

func (f *flakySubstrate) Take(ctx context.Context, key string) (dht.Value, error) {
	if err := f.fault(); err != nil {
		return nil, err
	}
	return f.inner.Take(ctx, key)
}

func (f *flakySubstrate) Remove(ctx context.Context, key string) error {
	if err := f.fault(); err != nil {
		return err
	}
	return f.inner.Remove(ctx, key)
}

func (f *flakySubstrate) Write(ctx context.Context, key string, v dht.Value) error {
	if err := f.fault(); err != nil {
		return err
	}
	return f.inner.Write(ctx, key, v)
}

// RunFaultAblation is ablation A5: query success under injected transient
// substrate faults, with and without the retry/backoff policy layer. An
// index of the given size is built on a healthy substrate; the query
// phase (4:1 exact-match to range) then runs while every DHT operation
// fails independently with probability p. Without a policy a single fault
// anywhere in a multi-lookup algorithm kills the query, so success decays
// like (1-p)^lookups; with the default policy each lookup survives up to
// MaxAttempts faults in a row, and success stays near 100% at realistic
// fault rates. The companion result reports the price: policy retries per
// query, each charged as a full DHT-lookup.
func RunFaultAblation(o Options, dist workload.Dist, size int, rates []float64) (Result, Result, error) {
	o = o.WithDefaults()
	success := Result{
		Name:   "A5",
		Title:  fmt.Sprintf("Query success vs substrate fault rate (data size %d)", size),
		XLabel: "fault rate (%)",
		YLabel: "query success (%)",
	}
	retries := Result{
		Name:   "A5b",
		Title:  "Retry cost of the policy layer",
		XLabel: "fault rate (%)",
		YLabel: "retries per query",
	}

	xs := make([]float64, len(rates))
	for i, p := range rates {
		xs[i] = p * 100
	}

	variants := []struct {
		name   string
		policy bool
	}{
		{"no policy", false},
		{"with policy", true},
	}

	ysSuccess := make([][][]float64, len(variants)) // [variant][trial][rate]
	ysRetries := make([][]float64, o.Trials)        // [trial][rate]
	for vi := range variants {
		ysSuccess[vi] = make([][]float64, o.Trials)
	}

	for t := 0; t < o.Trials; t++ {
		gen := workload.NewGenerator(dist, o.Seed+int64(t))
		recs := gen.Records(size)
		for vi, variant := range variants {
			row := make([]float64, 0, len(rates))
			retryRow := make([]float64, 0, len(rates))
			for ri, rate := range rates {
				flaky := newFlaky(dht.NewLocal(), o.Seed+int64(t*1000+ri))
				cfg := lht.Config{SplitThreshold: o.Theta, Depth: o.Depth, Aggregate: o.Agg}
				if variant.policy {
					cfg.Policy = &dht.Policy{
						BaseDelay: 50 * time.Microsecond,
						MaxDelay:  500 * time.Microsecond,
						Seed:      o.Seed + int64(t),
					}
				}
				ix, err := lht.New(flaky, cfg)
				if err != nil {
					return success, retries, err
				}
				for _, r := range recs {
					if _, err := ix.Insert(r); err != nil {
						return success, retries, fmt.Errorf("bench: healthy build failed: %w", err)
					}
				}

				flaky.Activate(rate)
				qrng := rand.New(rand.NewSource(o.Seed + int64(t)))
				before := ix.Metrics()
				ok := 0
				for q := 0; q < o.Queries; q++ {
					var err error
					if q%5 == 4 {
						lo, hi := gen.RangeQuery(0.01)
						_, _, err = ix.Range(lo, hi)
					} else {
						k := recs[qrng.Intn(len(recs))].Key
						_, _, err = ix.Search(k)
					}
					if err == nil {
						ok++
					}
				}
				delta := ix.Metrics().Sub(before).Flat()
				row = append(row, 100*float64(ok)/float64(o.Queries))
				retryRow = append(retryRow, float64(delta.Retries)/float64(o.Queries))
			}
			ysSuccess[vi][t] = row
			if variant.policy {
				ysRetries[t] = retryRow
			}
		}
	}

	for vi, variant := range variants {
		success.Series = append(success.Series, meanSeries("LHT "+variant.name, xs, ysSuccess[vi]))
	}
	retries.Series = append(retries.Series, meanSeries("with policy", xs, ysRetries))
	return success, retries, nil
}
