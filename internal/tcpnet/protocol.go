// Package tcpnet is the real-network deployment mode: storage nodes that
// serve a key-value protocol over TCP, and a client that implements the
// dht.DHT interface over a static member set with client-side consistent
// hashing.
//
// Two wire formats share one store. The default is the framed binary
// protocol (frame.go): reflection-free length-prefixed frames with pooled
// buffers, carried by a pipelined multiplexer (mux.go) that keeps many
// requests in flight per connection. The legacy gob stream (this file and
// gobwire.go) remains as a compatibility arm — the server auto-detects the
// protocol per connection, and the cross-codec oracle tests pin the two
// formats to identical observable behaviour, including identical
// cost-model counters.
//
// This is the substrate behind cmd/lht-node and cmd/lht-cli: it
// demonstrates the paper's "easy to implement and deploy" claim with
// actual sockets and processes. Unlike internal/chord it has static
// membership (the operator supplies the node list); dynamic membership,
// churn and replication are the in-process Chord substrate's department -
// the index layer cannot tell the difference, which is the point of the
// over-DHT design.
package tcpnet

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"lht/internal/dht"
)

// op enumerates the legacy gob protocol's operations. The framed binary
// protocol carries dht.OpKind in its frame header instead, so crash
// schedules and packet captures name operations identically.
type op uint8

const (
	opPing op = iota + 1
	opGet
	opPut
	opTake
	opRemove
	opWrite
	opGetBatch
	opPutBatch
	opPutIf
	opCreateIf
	opRemoveIf
	opWriteIf
)

// request is one client->server message.
type request struct {
	Op   op
	Key  string
	Val  []byte    // gob-encoded dht.Value for Put/Write and conditional ops
	Keys []string  // keys of an opGetBatch
	KVs  []batchKV // pairs of an opPutBatch, applied in order

	IfEpoch uint64 // expected stored epoch of opPutIf/opRemoveIf/opWriteIf
	// Epoch/EpochKnown carry the new value's own epoch so the server can
	// store it in the epoch-tagged byte form the framed wire produces —
	// the two wires must leave byte-identical stores behind.
	Epoch      uint64
	EpochKnown bool
}

// batchKV is one pair of an opPutBatch request.
type batchKV struct {
	Key string
	Val []byte
	// Epoch/EpochKnown mirror request.Epoch for this pair's value.
	Epoch      uint64
	EpochKnown bool
}

// batchReply is one per-key slot of a batched response, positionally
// aligned with the request's Keys or KVs.
type batchReply struct {
	Val []byte
	Err string
}

// response is one server->client message.
type response struct {
	Found bool
	Val   []byte
	Err   string
	Batch []batchReply // per-key outcomes of a batched op

	// ConflictExists/Winner detail an Err == errCASConflict response.
	ConflictExists bool
	Winner         uint64
}

// Raw []byte values stored by a framed client are gob-encoded when a
// legacy client reads them (detagValue), so the concrete type must be
// registered on both ends; every tcpnet process links this package.
func init() { gob.Register([]byte(nil)) }

// encodeValue serializes a dht.Value with gob. Concrete types must be
// registered (lht.RegisterGobTypes or gob.Register) by the embedding
// program.
func encodeValue(v dht.Value) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&v); err != nil {
		return nil, fmt.Errorf("tcpnet: encode value: %w", err)
	}
	return buf.Bytes(), nil
}

// decodeValue is the inverse of encodeValue.
func decodeValue(data []byte) (dht.Value, error) {
	var v dht.Value
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&v); err != nil {
		return nil, fmt.Errorf("tcpnet: decode value: %w", err)
	}
	return v, nil
}
