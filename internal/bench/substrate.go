package bench

import (
	"context"
	"fmt"

	"lht/internal/chord"
	"lht/internal/kademlia"
)

// RunHopsVsNodes measures the substrates' routing cost as the network
// grows: mean messages per DHT lookup for Chord and Kademlia at several
// ring sizes. This grounds the cost model's j parameter (section 8.1:
// "for P2P network with more peers, each DHT-lookup incurs more physical
// hops, typically at complexity of O(log N)") in measured behaviour.
func RunHopsVsNodes(o Options, nodeCounts []int) (Result, error) {
	o = o.WithDefaults()
	res := Result{
		Name:   "Substrate S1",
		Title:  "Routing cost vs network size (the cost model's j)",
		XLabel: "nodes",
		YLabel: "messages per lookup",
	}
	chordYs := make([][]float64, o.Trials)
	kadYs := make([][]float64, o.Trials)
	for t := 0; t < o.Trials; t++ {
		var crow, krow []float64
		for _, n := range nodeCounts {
			ring, err := chord.NewRing(n, chord.Config{Seed: o.Seed + int64(t)})
			if err != nil {
				return res, err
			}
			var hops int
			for q := 0; q < o.Queries; q++ {
				_, h, err := ring.Lookup(context.Background(), fmt.Sprintf("q-%d-%d", t, q))
				if err != nil {
					return res, err
				}
				hops += h
			}
			crow = append(crow, float64(hops)/float64(o.Queries))

			nw, err := kademlia.NewNetwork(n, kademlia.Config{Seed: o.Seed + int64(t)})
			if err != nil {
				return res, err
			}
			hops = 0
			for q := 0; q < o.Queries; q++ {
				_, h, err := nw.Lookup(context.Background(), fmt.Sprintf("q-%d-%d", t, q))
				if err != nil {
					return res, err
				}
				hops += h
			}
			krow = append(krow, float64(hops)/float64(o.Queries))
		}
		chordYs[t], kadYs[t] = crow, krow
	}
	xs := make([]float64, len(nodeCounts))
	for i, n := range nodeCounts {
		xs[i] = float64(n)
	}
	res.Series = append(res.Series,
		meanSeries("Chord", xs, chordYs),
		meanSeries("Kademlia", xs, kadYs))
	return res, nil
}
