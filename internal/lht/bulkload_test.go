package lht

import (
	"errors"
	"math/rand"
	"sort"
	"testing"

	"lht/internal/dht"
	"lht/internal/record"
)

func TestBulkLoad(t *testing.T) {
	ix, err := New(dht.NewLocal(), Config{SplitThreshold: 16, MergeThreshold: 8, Depth: 20})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(81))
	recs := make([]record.Record, 3000)
	for i := range recs {
		recs[i] = record.Record{Key: rng.Float64(), Value: []byte{byte(i)}}
	}
	cost, err := ix.BulkLoad(recs)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	n, err := ix.Count()
	if err != nil || n != len(recs) {
		t.Fatalf("Count = %d, %v; want %d", n, err, len(recs))
	}
	// Cost is about one put per leaf, far below incremental insertion.
	leaves, err := ix.Leaves()
	if err != nil {
		t.Fatal(err)
	}
	if cost.Lookups > len(leaves)+2 {
		t.Errorf("bulk load cost %d for %d leaves", cost.Lookups, len(leaves))
	}
	if cost.Lookups > len(recs)/2 {
		t.Errorf("bulk load cost %d is not bulk at all", cost.Lookups)
	}
	// Every leaf respects the capacity.
	for _, b := range leaves {
		if b.Weight() >= 16 {
			t.Errorf("leaf %s weight %d >= theta", b.Label, b.Weight())
		}
	}
	// The index behaves normally afterwards: queries and further inserts.
	for _, r := range recs[:200] {
		got, _, err := ix.Search(r.Key)
		if err != nil {
			t.Fatalf("Search(%v): %v", r.Key, err)
		}
		_ = got
	}
	keys := make([]float64, len(recs))
	for i, r := range recs {
		keys[i] = r.Key
	}
	sort.Float64s(keys)
	if r, _, err := ix.Min(); err != nil || r.Key != keys[0] {
		t.Fatalf("Min = %v, %v", r, err)
	}
	if r, _, err := ix.Max(); err != nil || r.Key != keys[len(keys)-1] {
		t.Fatalf("Max = %v, %v", r, err)
	}
	if _, err := ix.Insert(record.Record{Key: 0.123456}); err != nil {
		t.Fatal(err)
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBulkLoadRequiresEmpty(t *testing.T) {
	ix, err := New(dht.NewLocal(), Config{SplitThreshold: 16, MergeThreshold: 0, Depth: 20})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Insert(record.Record{Key: 0.5}); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.BulkLoad([]record.Record{{Key: 0.1}}); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("BulkLoad on non-empty = %v", err)
	}
}

func TestBulkLoadDeduplicatesAndValidates(t *testing.T) {
	ix, err := New(dht.NewLocal(), Config{SplitThreshold: 8, MergeThreshold: 0, Depth: 20})
	if err != nil {
		t.Fatal(err)
	}
	recs := []record.Record{
		{Key: 0.5, Value: []byte("old")},
		{Key: 0.25},
		{Key: 0.5, Value: []byte("new")},
	}
	if _, err := ix.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	if n, _ := ix.Count(); n != 2 {
		t.Fatalf("Count = %d, want 2 after dedup", n)
	}
	r, _, err := ix.Search(0.5)
	if err != nil || string(r.Value) != "new" {
		t.Fatalf("Search = %v, %v; last duplicate must win", r, err)
	}
	// Out-of-domain keys are rejected.
	ix2, err := New(dht.NewLocal(), Config{SplitThreshold: 8, MergeThreshold: 0, Depth: 20})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix2.BulkLoad([]record.Record{{Key: 1.5}}); err == nil {
		t.Fatal("out-of-domain bulk load should fail")
	}
}

func TestBulkLoadEmptyAndClustered(t *testing.T) {
	ix, err := New(dht.NewLocal(), Config{SplitThreshold: 8, MergeThreshold: 0, Depth: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.BulkLoad(nil); err != nil {
		t.Fatal(err)
	}
	if n, _ := ix.Count(); n != 0 {
		t.Fatalf("Count = %d", n)
	}
	// Clustered keys hit the depth cap: oversized boundary leaves are
	// accepted and recorded.
	ix2, err := New(dht.NewLocal(), Config{SplitThreshold: 8, MergeThreshold: 0, Depth: 10})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(82))
	recs := make([]record.Record, 300)
	for i := range recs {
		recs[i] = record.Record{Key: rng.Float64() / 4096}
	}
	if _, err := ix2.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	if err := ix2.CheckInvariants(); err == nil {
		// Oversized boundary leaves exceed the 2x sanity bound in
		// CheckInvariants only if truly runaway; either way the data
		// must be complete and searchable.
		t.Log("invariants clean despite depth cap")
	}
	if ix2.Overflows() == 0 {
		t.Error("expected overflow accounting at the depth cap")
	}
	for _, r := range recs[:30] {
		if _, _, err := ix2.Search(r.Key); err != nil {
			t.Fatalf("Search(%v): %v", r.Key, err)
		}
	}
}
