package lht_test

import (
	"context"
	"fmt"
	"sort"
	"time"

	"lht"
)

// The smallest end-to-end program: build an index, insert, query.
// New takes functional options; with none, the paper's defaults apply.
func Example() {
	ix, err := lht.New(lht.NewLocalDHT())
	if err != nil {
		panic(err)
	}
	if _, err := ix.Insert(lht.Record{Key: 0.42, Value: []byte("answer")}); err != nil {
		panic(err)
	}
	rec, _, err := ix.Get(0.42)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%g -> %s\n", rec.Key, rec.Value)
	// Output: 0.42 -> answer
}

// Range queries return every record in [lo, hi) with near-optimal
// DHT traffic (at most B+3 lookups for B result buckets).
func ExampleIndex_Range() {
	ix, err := lht.New(lht.NewLocalDHT(), lht.DefaultConfig())
	if err != nil {
		panic(err)
	}
	for _, k := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		if _, err := ix.Insert(lht.Record{Key: k}); err != nil {
			panic(err)
		}
	}
	recs, _, err := ix.Range(0.25, 0.75)
	if err != nil {
		panic(err)
	}
	keys := make([]float64, len(recs))
	for i, r := range recs {
		keys[i] = r.Key
	}
	sort.Float64s(keys)
	fmt.Println(keys)
	// Output: [0.3 0.5 0.7]
}

// Min and max queries cost exactly one DHT-lookup (Theorem 3): the
// naming function pins the leftmost leaf to key "#" and the rightmost to
// "#0".
func ExampleIndex_Min() {
	ix, err := lht.New(lht.NewLocalDHT(), lht.DefaultConfig())
	if err != nil {
		panic(err)
	}
	for _, k := range []float64{0.5, 0.2, 0.8} {
		if _, err := ix.Insert(lht.Record{Key: k}); err != nil {
			panic(err)
		}
	}
	rec, cost, err := ix.Min()
	if err != nil {
		panic(err)
	}
	fmt.Printf("min %g in %d lookup(s)\n", rec.Key, cost.Lookups)
	// Output: min 0.2 in 1 lookup(s)
}

// Scan pages through the index in key order; resume from the last key.
func ExampleIndex_Scan() {
	ix, err := lht.New(lht.NewLocalDHT(), lht.DefaultConfig())
	if err != nil {
		panic(err)
	}
	for i := 1; i <= 6; i++ {
		if _, err := ix.Insert(lht.Record{Key: float64(i) / 10}); err != nil {
			panic(err)
		}
	}
	page, _, err := ix.Scan(0.25, 3)
	if err != nil {
		panic(err)
	}
	for _, r := range page {
		fmt.Println(r.Key)
	}
	// Output:
	// 0.3
	// 0.4
	// 0.5
}

// The same index runs unchanged over a simulated Chord ring - the
// over-DHT property the paper is about.
func ExampleNewChordDHT() {
	ring, err := lht.NewChordDHT(8, lht.ChordConfig{Seed: 1})
	if err != nil {
		panic(err)
	}
	ix, err := lht.New(ring, lht.DefaultConfig())
	if err != nil {
		panic(err)
	}
	if _, err := ix.Insert(lht.Record{Key: 0.25, Value: []byte("on chord")}); err != nil {
		panic(err)
	}
	rec, _, err := ix.Get(0.25)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s\n", rec.Value)
	// Output: on chord
}

// Every operation has a Context variant: a deadline on the context
// bounds the whole multi-step algorithm - here a range query over a
// Chord ring, whose parallel forwarding stops promptly if the deadline
// expires. The WithPolicy option additionally absorbs transient
// substrate faults with retries and backoff, each retry charged as a
// DHT-lookup.
func ExampleIndex_RangeContext() {
	ring, err := lht.NewChordDHT(8, lht.ChordConfig{Seed: 1})
	if err != nil {
		panic(err)
	}
	ix, err := lht.New(ring,
		lht.WithThresholds(4, 3),
		lht.WithPolicy(lht.DefaultPolicy()),
	)
	if err != nil {
		panic(err)
	}
	for i := 0; i < 32; i++ {
		if _, err := ix.Insert(lht.Record{Key: (float64(i) + 0.5) / 32}); err != nil {
			panic(err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	recs, _, err := ix.RangeContext(ctx, 0.25, 0.75)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d records within the deadline\n", len(recs))
	// Output: 16 records within the deadline
}

// Behaviour composes from functional options, and observability comes
// from the same surface: a bounded trace ring records every DHT
// operation the index issues (kind, key, phase, duration, outcome),
// while Metrics returns grouped counters with per-operation latency
// histograms. WritePrometheus or MetricsHandler export the same
// snapshot in Prometheus text format.
func ExampleWithTraceSink() {
	ring := lht.NewTraceRing(64)
	ix, err := lht.New(lht.NewLocalDHT(),
		lht.WithLeafCache(1024),
		lht.WithBatchSize(64),
		lht.WithTraceSink(ring),
	)
	if err != nil {
		panic(err)
	}
	for _, k := range []float64{0.2, 0.5, 0.8} {
		if _, err := ix.Insert(lht.Record{Key: k}); err != nil {
			panic(err)
		}
	}
	if _, _, err := ix.Get(0.5); err != nil {
		panic(err)
	}
	s := ix.Metrics()
	fmt.Printf("%d DHT ops traced, %d lookups charged, %d cache hits\n",
		ring.Total(), s.Lookup.Total, s.Cache.Hits)
	// Output: 9 DHT ops traced, 9 lookups charged, 3 cache hits
}

// GeoIndex layers two-dimensional rectangle search on top of the
// one-dimensional index via a Z-order curve (the paper's footnote 1).
func ExampleGeoIndex() {
	g, err := lht.NewGeoIndex(lht.NewLocalDHT(), lht.GeoConfig{Bits: 10})
	if err != nil {
		panic(err)
	}
	pts := []lht.Point{
		{X: 0.2, Y: 0.3, Value: []byte("a")},
		{X: 0.25, Y: 0.35, Value: []byte("b")},
		{X: 0.9, Y: 0.9, Value: []byte("far away")},
	}
	for _, p := range pts {
		if _, err := g.Insert(p); err != nil {
			panic(err)
		}
	}
	hits, _, err := g.SearchRect(lht.Rect{X0: 0.1, X1: 0.4, Y0: 0.2, Y1: 0.5})
	if err != nil {
		panic(err)
	}
	names := make([]string, len(hits))
	for i, p := range hits {
		names[i] = string(p.Value)
	}
	sort.Strings(names)
	fmt.Println(names)
	// Output: [a b]
}
