// Package hashring provides the consistent-hashing identifier space that
// ring DHTs (Chord here; Bamboo in the paper's testbed) are built on
// (Karger et al., STOC 1997): peers and keys hash onto a circular 64-bit
// identifier space, and a key belongs to the first peer clockwise from its
// identifier.
package hashring

import (
	"crypto/sha1"
	"encoding/binary"
	"fmt"
)

// Bits is the width of the identifier space.
const Bits = 64

// ID is a point on the identifier circle [0, 2^64).
type ID uint64

// String renders the ID in fixed-width hex for stable logs.
func (id ID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// HashKey maps a DHT key onto the circle (SHA-1 truncated to 64 bits, as
// consistent hashing prescribes a uniform base hash).
func HashKey(key string) ID {
	sum := sha1.Sum([]byte(key))
	return ID(binary.BigEndian.Uint64(sum[:8]))
}

// HashAddr maps a peer address onto the circle. It is HashKey with a
// domain-separation prefix so a peer named like a key does not collide by
// construction.
func HashAddr(addr string) ID {
	return HashKey("node:" + addr)
}

// Between reports whether x lies on the half-open clockwise arc (a, b].
// When a == b the arc spans the whole circle, matching Chord's convention
// for a single-node ring.
func Between(x, a, b ID) bool {
	if a < b {
		return x > a && x <= b
	}
	return x > a || x <= b
}

// StrictBetween reports whether x lies on the open clockwise arc (a, b).
func StrictBetween(x, a, b ID) bool {
	if a == b {
		return x != a
	}
	if a < b {
		return x > a && x < b
	}
	return x > a || x < b
}

// Add returns id + d on the circle (mod 2^64), used to compute finger
// starts id + 2^(i-1).
func Add(id ID, d uint64) ID { return ID(uint64(id) + d) }

// FingerStart returns the i-th finger start (0-indexed): id + 2^i.
func FingerStart(id ID, i int) ID {
	return Add(id, 1<<uint(i))
}

// Distance returns the clockwise distance from a to b.
func Distance(a, b ID) uint64 { return uint64(b) - uint64(a) }
