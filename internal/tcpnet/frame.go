package tcpnet

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"

	"lht/internal/dht"
)

// This file is the framed binary wire codec (wire format 2). Unlike the
// legacy gob stream it uses no reflection and recycles every buffer it
// touches, so the encode/decode hot path allocates nothing beyond the
// returned value bytes.
//
// A connection opens with the 4-byte magic "LHT2" (absent on legacy gob
// connections, which the server detects by peeking). After the magic,
// both directions speak length-prefixed frames:
//
//	+---------+------------+--------+---------------------+
//	| len u32 | request id | op u8  | payload (len-9 B)   |
//	| big-end |   u64 BE   |        |                     |
//	+---------+------------+--------+---------------------+
//
// len counts the bytes after the length field (id + op + payload), so a
// frame occupies 4+len bytes on the wire. The id correlates a response
// with its request: responses may arrive in any order, which is what lets
// a client keep many requests in flight on one connection. The op byte is
// uint8(dht.OpKind); responses echo the request's id and op.
//
// Request payloads (uv = unsigned varint; "rest" = to the frame's end):
//
//	ping                    (empty)
//	get / take / remove     uv klen, key
//	put / write             uv klen, key, value(rest)
//	putnewer                uv klen, key, value(rest); stored only if no
//	                        strictly newer epoch tag is already held
//	putif / writeif         uv klen, key, uv ifEpoch, value(rest)
//	createif                uv klen, key, value(rest)
//	removeif                uv klen, key, uv ifEpoch
//	getbatch                uv count, count x (uv klen, key)
//	putbatch                uv count, count x (uv klen, key, uv vlen, value)
//
// A value is a tag byte followed by its serialized form: tagRaw means the
// bytes ARE the dht.Value (a []byte travels with zero serialization work),
// tagGob means encoding/gob (arbitrary registered types, exactly the bytes
// the legacy protocol would have carried). A value whose type implements
// dht.Epocher additionally travels with a tagEpoch prefix — tagEpoch,
// uv epoch, then the inner tagged form — so the server can serve CAS
// comparisons without ever decoding a value. Servers store values with
// their tags, so the two wire formats interoperate on one store.
//
// Response payloads:
//
//	status u8: 0 ok, 1 not-found, 2 server error, 3 CAS conflict
//	ok   get/take            value(rest)
//	ok   put/remove/write/ping  (empty)
//	ok   putif/createif/removeif/writeif  (empty)
//	ok   getbatch/putbatch   uv count, count x slot
//	not-found                (empty)
//	error                    message(rest)
//	cas-conflict             exists u8, uv winnerEpoch
//
// A batch slot is: status u8; ok = uv n, n bytes (a tagged value for a
// get slot, n=0 for a put slot); not-found = nothing; error = uv n,
// n-byte message.
const (
	// wireMagic opens every framed binary connection; its absence selects
	// the legacy gob protocol.
	wireMagic = "LHT2"

	// frameHeaderLen is the id+op prefix counted inside the length field.
	frameHeaderLen = 9

	// maxFrameLen bounds a frame's length field: decoders reject anything
	// larger before allocating, so a garbage or hostile header can never
	// balloon memory.
	maxFrameLen = 64 << 20

	// maxPooledBuf is the largest buffer the frame pool retains; bigger
	// ones (oversized batch frames) are left to the garbage collector so
	// one huge request does not pin memory forever.
	maxPooledBuf = 1 << 20
)

// Response status bytes.
const (
	statusOK          = 0
	statusNotFound    = 1
	statusErr         = 2
	statusCASConflict = 3 // payload: exists u8, uv winnerEpoch
)

// Value tag bytes.
const (
	tagRaw   = 0 // the bytes are the dht.Value (a []byte) verbatim
	tagGob   = 1 // encoding/gob, same bytes as the legacy protocol
	tagEpoch = 2 // uv epoch then an inner tagged value; serves CAS compares
)

var (
	errFrameTooLarge = errors.New("tcpnet: frame exceeds size limit")
	errFrameTooSmall = errors.New("tcpnet: frame shorter than header")
	errTruncated     = errors.New("tcpnet: truncated frame payload")
)

// bufPool recycles frame buffers across requests; the hot path gets and
// puts, it never allocates in steady state.
var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }}

func getBuf() *[]byte { return bufPool.Get().(*[]byte) }

func putBuf(b *[]byte) {
	if b == nil || cap(*b) > maxPooledBuf {
		return
	}
	*b = (*b)[:0]
	bufPool.Put(b)
}

// newFrame starts a request frame in a pooled buffer: length placeholder,
// zero id placeholder, op byte. The pooled pointer travels with the frame
// (builders reassign *bp after appending) so the encode path allocates no
// fresh slice header per request; finishFrame stamps the real id and
// length in place.
func newFrame(op dht.OpKind) *[]byte {
	bp := getBuf()
	*bp = append((*bp)[:0], 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, byte(op))
	return bp
}

// finishFrame stamps the frame's id and length fields in place.
func finishFrame(b []byte, id uint64) {
	binary.BigEndian.PutUint32(b[0:4], uint32(len(b)-4))
	binary.BigEndian.PutUint64(b[4:12], id)
}

// appendUv appends an unsigned varint.
func appendUv(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

// appendLenBytes appends a varint-length-prefixed byte string.
func appendLenBytes(b, p []byte) []byte {
	b = appendUv(b, uint64(len(p)))
	return append(b, p...)
}

// appendLenString is appendLenBytes for a string without conversion copies.
func appendLenString(b []byte, s string) []byte {
	b = appendUv(b, uint64(len(s)))
	return append(b, s...)
}

// appendValue appends the tagged wire form of v: a []byte travels raw, any
// other type goes through gob exactly as the legacy protocol would. A
// value carrying a CAS epoch (dht.Epocher) is prefixed with tagEpoch and
// the epoch varint so the server can compare epochs on pure bytes.
func appendValue(b []byte, v dht.Value) ([]byte, error) {
	if e, ok := v.(dht.Epocher); ok {
		b = append(b, tagEpoch)
		b = appendUv(b, e.DHTEpoch())
	}
	if raw, ok := v.([]byte); ok {
		b = append(b, tagRaw)
		return append(b, raw...), nil
	}
	data, err := encodeValue(v)
	if err != nil {
		return nil, err
	}
	b = append(b, tagGob)
	return append(b, data...), nil
}

// decodeTaggedValue is the inverse of appendValue. The input's backing
// array may be a pooled buffer, so raw bytes are copied out.
func decodeTaggedValue(tv []byte) (dht.Value, error) {
	if len(tv) == 0 {
		return nil, fmt.Errorf("tcpnet: empty wire value")
	}
	switch tv[0] {
	case tagRaw:
		out := make([]byte, len(tv)-1)
		copy(out, tv[1:])
		return out, nil
	case tagGob:
		return decodeValue(tv[1:])
	case tagEpoch:
		// The epoch only exists for the server's CAS compare; the decoded
		// value carries its own version, so the prefix is simply stripped.
		c := cursor{b: tv[1:]}
		if _, err := c.uvarint(); err != nil {
			return nil, fmt.Errorf("tcpnet: truncated epoch tag")
		}
		if len(c.b) == 0 || c.b[0] == tagEpoch {
			return nil, fmt.Errorf("tcpnet: malformed epoch-tagged value")
		}
		return decodeTaggedValue(c.b)
	default:
		return nil, fmt.Errorf("tcpnet: unknown value tag %d", tv[0])
	}
}

// readFrameBody reads one frame from br into buf (grown as needed) and
// returns the body (id + op + payload). The length field is validated
// before any allocation, so malformed or hostile headers cannot cause an
// oversized allocation.
func readFrameBody(br *bufio.Reader, buf []byte) ([]byte, error) {
	// The length field is read byte-wise: a stack array passed through
	// io.ReadFull's interface would escape and cost one allocation per
	// frame.
	var n uint32
	for i := 0; i < 4; i++ {
		c, err := br.ReadByte()
		if err != nil {
			if i > 0 && err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return buf, err
		}
		n = n<<8 | uint32(c)
	}
	if n < frameHeaderLen {
		return buf, errFrameTooSmall
	}
	if n > maxFrameLen {
		return buf, errFrameTooLarge
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(br, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return buf, err
	}
	return buf, nil
}

// cursor walks a frame payload; every accessor reports truncation as an
// error instead of panicking, which is what the fuzz target leans on.
type cursor struct{ b []byte }

func (c *cursor) empty() bool { return len(c.b) == 0 }

func (c *cursor) u8() (byte, error) {
	if len(c.b) < 1 {
		return 0, errTruncated
	}
	v := c.b[0]
	c.b = c.b[1:]
	return v, nil
}

func (c *cursor) uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.b)
	if n <= 0 {
		return 0, errTruncated
	}
	c.b = c.b[n:]
	return v, nil
}

// count reads a batch element count and bounds it by the bytes that
// remain: every element occupies at least one byte, so a garbage count
// can never drive an oversized allocation downstream.
func (c *cursor) count() (int, error) {
	v, err := c.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(len(c.b)) {
		return 0, fmt.Errorf("tcpnet: batch count %d exceeds frame size", v)
	}
	return int(v), nil
}

// lenBytes reads a varint-length-prefixed byte string as a view into the
// frame buffer (no copy; the caller copies if it must outlive the frame).
func (c *cursor) lenBytes() ([]byte, error) {
	n, err := c.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(c.b)) {
		return nil, errTruncated
	}
	v := c.b[:n]
	c.b = c.b[n:]
	return v, nil
}

// rest consumes and returns everything left.
func (c *cursor) rest() []byte {
	v := c.b
	c.b = nil
	return v
}
