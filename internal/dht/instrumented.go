package dht

import (
	"context"
	"errors"
	"time"

	"lht/internal/metrics"
)

// Instrumented wraps a DHT and charges every routed operation to a
// metrics.Counters according to the paper's cost model: Get, Put, Take and
// Remove each cost one DHT-lookup; failed Gets are additionally counted so
// experiments can report them; Write is free. Operations that end in
// context cancellation or deadline expiry are also tallied
// (Cancellations / DeadlineExceeded), so fault experiments can separate
// "gave up" from "failed".
//
// Instrumented is also where the observability plane taps the traffic:
// each charged lookup is attributed to the (operation class, algorithm
// phase) cell labelled on the context by the index layer, and — when a
// trace sink is attached — every primitive is timed and emitted as a
// structured OpEvent, so a single slow query can be reconstructed
// span-by-span. Without a sink no clocks are read and the overhead is a
// handful of atomic adds.
type Instrumented struct {
	inner DHT
	c     *metrics.Counters
	sink  metrics.TraceSink
}

var (
	_ DHT         = (*Instrumented)(nil)
	_ Batcher     = (*Instrumented)(nil)
	_ Conditional = (*Instrumented)(nil)
)

// NewInstrumented wraps inner, charging costs to c. c must not be nil.
func NewInstrumented(inner DHT, c *metrics.Counters) *Instrumented {
	return &Instrumented{inner: inner, c: c}
}

// Counters returns the counter set this wrapper charges.
func (d *Instrumented) Counters() *metrics.Counters { return d.c }

// SetSink attaches a trace sink receiving one OpEvent per routed
// primitive (nil detaches). Must be called before the wrapper is shared
// across goroutines.
func (d *Instrumented) SetSink(s metrics.TraceSink) { d.sink = s }

// note tallies the context-outcome counters for a finished operation.
func (d *Instrumented) note(err error) {
	switch {
	case err == nil:
	case errors.Is(err, context.Canceled):
		d.c.AddCancellations(1)
	case errors.Is(err, context.DeadlineExceeded):
		d.c.AddDeadlineExceeded(1)
	}
}

// charge counts n lookups and attributes them to the labels on ctx.
func (d *Instrumented) charge(ctx context.Context, n int64) metrics.Labels {
	lb := metrics.LabelsFrom(ctx)
	d.c.AddLookups(n)
	d.c.AddPhaseLookups(lb.Op, lb.Phase, n)
	return lb
}

// start returns the event start time, or zero when tracing is off so
// the hot path never reads the clock without a sink.
func (d *Instrumented) start() time.Time {
	if d.sink == nil {
		return time.Time{}
	}
	return time.Now()
}

// outcome classifies how a primitive ended for the trace event.
func outcome(err error) (string, string) {
	switch {
	case err == nil:
		return "ok", ""
	case errors.Is(err, ErrNotFound):
		return "not_found", ""
	case errors.Is(err, context.Canceled):
		return "cancelled", ""
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline", ""
	default:
		return "error", err.Error()
	}
}

// emit sends one trace event when a sink is attached.
func (d *Instrumented) emit(lb metrics.Labels, kind, key string, keys int, start time.Time, err error) {
	if d.sink == nil {
		return
	}
	out, detail := outcome(err)
	d.sink.RecordOp(metrics.OpEvent{
		Start:    start,
		Duration: time.Since(start),
		Kind:     kind,
		Key:      key,
		Keys:     keys,
		Op:       lb.Op,
		Phase:    lb.Phase,
		Outcome:  out,
		Err:      detail,
	})
}

// batchErr picks the event-worthy error of a batch: the first non-nil
// slot error, preferring one that is not a cancellation so partial
// failures stay visible.
func batchErr(errs []error) error {
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if first == nil || errors.Is(first, context.Canceled) || errors.Is(first, context.DeadlineExceeded) {
			first = err
		}
	}
	return first
}

// Get implements DHT, counting one lookup (and one failed get on miss).
func (d *Instrumented) Get(ctx context.Context, key string) (Value, error) {
	lb := d.charge(ctx, 1)
	start := d.start()
	v, err := d.inner.Get(ctx, key)
	if errors.Is(err, ErrNotFound) {
		d.c.AddFailedGets(1)
	}
	d.note(err)
	d.emit(lb, "get", key, 1, start, err)
	return v, err
}

// Put implements DHT, counting one lookup.
func (d *Instrumented) Put(ctx context.Context, key string, v Value) error {
	lb := d.charge(ctx, 1)
	start := d.start()
	err := d.inner.Put(ctx, key, v)
	d.note(err)
	d.emit(lb, "put", key, 1, start, err)
	return err
}

// Take implements DHT, counting one lookup.
func (d *Instrumented) Take(ctx context.Context, key string) (Value, error) {
	lb := d.charge(ctx, 1)
	start := d.start()
	v, err := d.inner.Take(ctx, key)
	if errors.Is(err, ErrNotFound) {
		d.c.AddFailedGets(1)
	}
	d.note(err)
	d.emit(lb, "take", key, 1, start, err)
	return v, err
}

// Remove implements DHT, counting one lookup.
func (d *Instrumented) Remove(ctx context.Context, key string) error {
	lb := d.charge(ctx, 1)
	start := d.start()
	err := d.inner.Remove(ctx, key)
	d.note(err)
	d.emit(lb, "remove", key, 1, start, err)
	return err
}

// GetBatch implements Batcher. When the wrapped substrate batches
// natively, each carried key is still charged as one lookup — batching
// saves round trips, never bandwidth — and the batch itself is tallied in
// BatchOps/BatchedKeys. Otherwise the batch decomposes through this
// wrapper's own per-op Get, which charges each key as it goes.
func (d *Instrumented) GetBatch(ctx context.Context, keys []string) ([]Value, []error) {
	if len(keys) == 0 {
		return nil, nil
	}
	b, ok := d.inner.(Batcher)
	if !ok {
		vals := make([]Value, len(keys))
		errs := make([]error, len(keys))
		for i, k := range keys {
			vals[i], errs[i] = d.Get(ctx, k)
		}
		return vals, errs
	}
	lb := d.charge(ctx, int64(len(keys)))
	d.c.AddBatchOps(1)
	d.c.AddBatchedKeys(int64(len(keys)))
	start := d.start()
	vals, errs := b.GetBatch(ctx, keys)
	for _, err := range errs {
		if errors.Is(err, ErrNotFound) {
			d.c.AddFailedGets(1)
		}
		d.note(err)
	}
	d.emit(lb, "get_batch", "", len(keys), start, batchErr(errs))
	return vals, errs
}

// PutBatch implements Batcher with the same charging rules as GetBatch.
func (d *Instrumented) PutBatch(ctx context.Context, kvs []KV) []error {
	if len(kvs) == 0 {
		return nil
	}
	b, ok := d.inner.(Batcher)
	if !ok {
		errs := make([]error, len(kvs))
		for i, kv := range kvs {
			errs[i] = d.Put(ctx, kv.Key, kv.Val)
		}
		return errs
	}
	lb := d.charge(ctx, int64(len(kvs)))
	d.c.AddBatchOps(1)
	d.c.AddBatchedKeys(int64(len(kvs)))
	start := d.start()
	errs := b.PutBatch(ctx, kvs)
	for _, err := range errs {
		d.note(err)
	}
	d.emit(lb, "put_batch", "", len(kvs), start, batchErr(errs))
	return errs
}

// Write implements DHT; it is free in the cost model but still traced,
// since intent writes are part of a mutation's span.
func (d *Instrumented) Write(ctx context.Context, key string, v Value) error {
	start := d.start()
	err := d.inner.Write(ctx, key, v)
	d.note(err)
	if d.sink != nil {
		// Write charges nothing, so the labels were not read yet.
		d.emit(metrics.LabelsFrom(ctx), "write", key, 1, start, err)
	}
	return err
}

// noteCAS tallies a finished conditional operation: one CASConflict when
// the compare lost, plus the usual context-outcome counters.
func (d *Instrumented) noteCAS(err error) {
	if errors.Is(err, ErrCASConflict) {
		d.c.AddCASConflicts(1)
	}
	d.note(err)
}

// PutIf implements Conditional, counting one lookup like Put. When the
// wrapped substrate has no native CAS, the operation decomposes into this
// wrapper's own charged Get + Put (two lookups — the price of emulation)
// and is tallied as a CASFallback.
func (d *Instrumented) PutIf(ctx context.Context, key string, v Value, ifEpoch uint64) error {
	cd, ok := d.inner.(Conditional)
	if !ok {
		d.c.AddCASFallbacks(1)
		err := fallbackPutIf(ctx, d, key, v, ifEpoch)
		d.noteCAS(err)
		return err
	}
	lb := d.charge(ctx, 1)
	start := d.start()
	err := cd.PutIf(ctx, key, v, ifEpoch)
	d.noteCAS(err)
	d.emit(lb, "putif", key, 1, start, err)
	return err
}

// CreateIf implements Conditional, counting one lookup like Put.
func (d *Instrumented) CreateIf(ctx context.Context, key string, v Value) error {
	cd, ok := d.inner.(Conditional)
	if !ok {
		d.c.AddCASFallbacks(1)
		err := fallbackCreateIf(ctx, d, key, v)
		d.noteCAS(err)
		return err
	}
	lb := d.charge(ctx, 1)
	start := d.start()
	err := cd.CreateIf(ctx, key, v)
	d.noteCAS(err)
	d.emit(lb, "createif", key, 1, start, err)
	return err
}

// RemoveIf implements Conditional, counting one lookup like Remove.
func (d *Instrumented) RemoveIf(ctx context.Context, key string, ifEpoch uint64) error {
	cd, ok := d.inner.(Conditional)
	if !ok {
		d.c.AddCASFallbacks(1)
		err := fallbackRemoveIf(ctx, d, key, ifEpoch)
		d.noteCAS(err)
		return err
	}
	lb := d.charge(ctx, 1)
	start := d.start()
	err := cd.RemoveIf(ctx, key, ifEpoch)
	d.noteCAS(err)
	d.emit(lb, "removeif", key, 1, start, err)
	return err
}

// WriteIf implements Conditional; like Write it is free in the cost model
// but still traced and conflict-counted.
func (d *Instrumented) WriteIf(ctx context.Context, key string, v Value, ifEpoch uint64) error {
	cd, ok := d.inner.(Conditional)
	if !ok {
		d.c.AddCASFallbacks(1)
		err := fallbackWriteIf(ctx, d, key, v, ifEpoch)
		d.noteCAS(err)
		return err
	}
	start := d.start()
	err := cd.WriteIf(ctx, key, v, ifEpoch)
	d.noteCAS(err)
	if d.sink != nil {
		d.emit(metrics.LabelsFrom(ctx), "writeif", key, 1, start, err)
	}
	return err
}
