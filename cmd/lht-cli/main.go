// Command lht-cli operates an LHT index over a cluster of lht-node
// processes. Every invocation connects to the member list, runs one
// command against the shared index, and prints the result together with
// the DHT-lookup cost of the operation.
//
//	lht-cli -nodes host1:7001,host2:7001 put 0.42 "some value"
//	lht-cli -nodes ... get 0.42
//	lht-cli -nodes ... del 0.42
//	lht-cli -nodes ... range 0.2 0.6
//	lht-cli -nodes ... scan 0.5 20
//	lht-cli -nodes ... min | max | count
//	lht-cli -nodes ... fill 10000        # seeded uniform bulk load
//	lht-cli -nodes ... -scrub            # verify + repair tree invariants
//	lht-cli -nodes ... -status           # cluster membership + health report
//
// Against a replicated, self-healing cluster (lht-node -gossip-peers),
// pass -replicas so reads fail over and -scrub -rereplicate restores
// lost replica copies:
//
//	lht-cli -nodes ... -replicas 3 -scrub -rereplicate
//
// -degraded connects even while part of the cluster is down (-status
// always does: the health report must work precisely then), and
// -hinted parks writes that fail against a down holder for replay on
// its return.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"lht"
	"lht/internal/tcpnet"
	"lht/internal/workload"
)

func main() {
	// Ctrl-C cancels the context, which aborts the in-flight operation
	// down to its socket I/O.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lht-cli:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("lht-cli", flag.ContinueOnError)
	var (
		nodes   = fs.String("nodes", "127.0.0.1:7001", "comma-separated lht-node addresses")
		theta   = fs.Int("theta", 100, "theta_split used by the index")
		depth   = fs.Int("depth", 20, "maximum tree depth D")
		seed    = fs.Int64("seed", 1, "seed for the fill command")
		timeout = fs.Duration("timeout", 0, "deadline for the whole command (0 = none); becomes socket deadlines on every request")
		retry   = fs.Bool("retry", true, "retry transient node faults with backoff (each retry costs one DHT-lookup)")
		scrub   = fs.Bool("scrub", false, "verify and repair the tree's structural invariants, print the report, and exit")
		trace   = fs.Int("trace", 0, "after the command, print its last N DHT operations (kind, key, phase, duration, outcome)")
		wire    = fs.String("wire", "binary", "wire format to the nodes: binary (framed, pipelined) or gob (legacy)")
		conns   = fs.Int("conns", 0, "pipelined connections per node on the binary wire (0 = default)")
		reps    = fs.Int("replicas", 1, "store each key on this many distinct nodes (binary wire only)")
		status  = fs.Bool("status", false, "print the cluster membership and health report, and exit")
		rerep   = fs.Bool("rereplicate", false, "with -scrub: restore the replica count of every bucket (needs -replicas > 1)")
		degr    = fs.Bool("degraded", false, "connect even if part of the cluster is down (dead nodes start breaker-open); implied by -status")
		hinted  = fs.Bool("hinted", false, "park writes that fail against a down holder as hints for replay on its return (needs -replicas > 1)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cmd := fs.Args()
	if len(cmd) == 0 && !*scrub && !*status {
		return fmt.Errorf("missing command (put|get|del|range|scan|min|max|count|fill), or use -scrub / -status")
	}
	if *rerep && *reps < 2 {
		return fmt.Errorf("-rereplicate needs -replicas > 1")
	}
	if *hinted && *reps < 2 {
		return fmt.Errorf("-hinted needs -replicas > 1")
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	w, err := tcpnet.ParseWire(*wire)
	if err != nil {
		return err
	}
	lht.RegisterGobTypes()
	// -status must work precisely when part of the cluster is down, so it
	// always boots degraded: unreachable members start breaker-open and
	// show up in the report instead of failing the dial.
	client, err := tcpnet.Dial(ctx, tcpnet.ClusterConfig{
		Seeds:         strings.Split(*nodes, ","),
		Wire:          w,
		PoolSize:      *conns,
		Replicas:      *reps,
		DegradedStart: *degr || *status,
		HintedHandoff: *hinted,
	})
	if err != nil {
		return err
	}
	defer func() { _ = client.Close() }()

	opts := []lht.Option{
		lht.WithThresholds(*theta, *theta/2),
		lht.WithDepth(*depth),
		lht.WithRereplication(*rerep),
	}
	if *retry {
		opts = append(opts, lht.WithPolicy(lht.DefaultPolicy()))
	}
	var ring *lht.TraceRing
	if *trace > 0 {
		ring = lht.NewTraceRing(*trace)
		opts = append(opts, lht.WithTraceSink(ring))
	}
	ix, err := lht.New(client, opts...)
	if err != nil {
		return err
	}
	err = runCommand(ctx, ix, cmd, *scrub, *status, *seed, out)
	if ring != nil {
		fmt.Fprintf(out, "trace (last %d of %d DHT ops):\n", ring.Len(), ring.Total())
		for _, ev := range ring.Events() {
			fmt.Fprintf(out, "  %s\n", ev)
		}
	}
	return err
}

func runCommand(ctx context.Context, ix *lht.Index, cmd []string, scrub, status bool, seed int64, out io.Writer) error {
	if status {
		st, err := ix.ClusterStatus(ctx)
		if err != nil {
			return err
		}
		printStatus(out, st)
		return nil
	}
	if scrub {
		rep, err := ix.ScrubContext(ctx)
		if rep != nil {
			fmt.Fprintln(out, rep)
		}
		return err
	}
	return dispatch(ctx, ix, cmd, seed, out)
}

// printStatus renders the cluster membership report: one row per member
// with its gossip state, incarnation, this client's breaker verdict, the
// hinted-handoff backlog parked for it cluster-wide, and known replica
// debt.
func printStatus(out io.Writer, st lht.ClusterStatus) {
	fmt.Fprintf(out, "cluster view epoch %d, %d member(s)\n", st.ViewEpoch, len(st.Members))
	fmt.Fprintf(out, "%-24s %-8s %-5s %-9s %-6s %s\n",
		"ADDRESS", "STATE", "INC", "BREAKER", "HINTS", "DEBT")
	for _, m := range st.Members {
		fmt.Fprintf(out, "%-24s %-8s %-5d %-9s %-6d %d\n",
			m.Addr, m.State, m.Incarnation, m.Breaker, m.Hints, m.ReplicaDebt)
	}
}

func dispatch(ctx context.Context, ix *lht.Index, cmd []string, seed int64, out io.Writer) error {
	parseKey := func(s string) (float64, error) {
		k, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return 0, fmt.Errorf("key %q: %w", s, err)
		}
		return k, nil
	}
	need := func(n int) error {
		if len(cmd)-1 != n {
			return fmt.Errorf("%s takes %d argument(s)", cmd[0], n)
		}
		return nil
	}

	switch cmd[0] {
	case "put":
		if err := need(2); err != nil {
			return err
		}
		k, err := parseKey(cmd[1])
		if err != nil {
			return err
		}
		cost, err := ix.InsertContext(ctx, lht.Record{Key: k, Value: []byte(cmd[2])})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "ok (%d DHT-lookups)\n", cost.Lookups)
	case "get":
		if err := need(1); err != nil {
			return err
		}
		k, err := parseKey(cmd[1])
		if err != nil {
			return err
		}
		rec, cost, err := ix.GetContext(ctx, k)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%s (%d DHT-lookups)\n", rec.Value, cost.Lookups)
	case "del":
		if err := need(1); err != nil {
			return err
		}
		k, err := parseKey(cmd[1])
		if err != nil {
			return err
		}
		cost, err := ix.DeleteContext(ctx, k)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "ok (%d DHT-lookups)\n", cost.Lookups)
	case "range":
		if err := need(2); err != nil {
			return err
		}
		lo, err := parseKey(cmd[1])
		if err != nil {
			return err
		}
		hi, err := parseKey(cmd[2])
		if err != nil {
			return err
		}
		recs, cost, err := ix.RangeContext(ctx, lo, hi)
		if err != nil {
			return err
		}
		for _, r := range recs {
			fmt.Fprintf(out, "%-12g %s\n", r.Key, r.Value)
		}
		fmt.Fprintf(out, "%d records (%d DHT-lookups, %d parallel steps)\n",
			len(recs), cost.Lookups, cost.Steps)
	case "min", "max":
		if err := need(0); err != nil {
			return err
		}
		query := ix.MinContext
		if cmd[0] == "max" {
			query = ix.MaxContext
		}
		rec, cost, err := query(ctx)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%g %s (%d DHT-lookups)\n", rec.Key, rec.Value, cost.Lookups)
	case "scan":
		if err := need(2); err != nil {
			return err
		}
		from, err := parseKey(cmd[1])
		if err != nil {
			return err
		}
		limit, err := strconv.Atoi(cmd[2])
		if err != nil || limit < 1 {
			return fmt.Errorf("scan limit %q", cmd[2])
		}
		recs, cost, err := ix.ScanContext(ctx, from, limit)
		if err != nil {
			return err
		}
		for _, r := range recs {
			fmt.Fprintf(out, "%-12g %s\n", r.Key, r.Value)
		}
		fmt.Fprintf(out, "%d records (%d DHT-lookups)\n", len(recs), cost.Lookups)
	case "count":
		if err := need(0); err != nil {
			return err
		}
		n, err := ix.Count()
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%d records\n", n)
	case "fill":
		if err := need(1); err != nil {
			return err
		}
		n, err := strconv.Atoi(cmd[1])
		if err != nil || n < 1 {
			return fmt.Errorf("fill count %q", cmd[1])
		}
		gen := workload.NewGenerator(workload.Uniform, seed)
		for _, r := range gen.Records(n) {
			if _, err := ix.InsertContext(ctx, r); err != nil {
				return err
			}
		}
		s := ix.Metrics().Flat()
		fmt.Fprintf(out, "inserted %d records: %d DHT-lookups, %d splits, %d record slots moved\n",
			n, s.Lookups, s.Splits, s.MovedRecords)
	default:
		return fmt.Errorf("unknown command %q", cmd[0])
	}
	return nil
}
