//go:build !race

package bench

// raceEnabled reports whether the race detector is compiled in; the
// wall-clock-budgeted chaos ablation test skips itself under it (see
// race_on.go).
const raceEnabled = false
