// Package kademlia implements the Kademlia DHT (Maymounkov & Mazieres,
// IPTPS 2002): XOR-metric routing over k-buckets with iterative,
// concurrent lookups. It is the repository's second substrate, present to
// substantiate the paper's claim that over-DHT indexes are "adaptable to
// any DHT substrate": the same LHT index runs over it unchanged.
//
// Like internal/chord it runs on simnet with per-message accounting and is
// step-driven and deterministic.
package kademlia

import (
	"math/bits"
	"sort"

	"lht/internal/hashring"
)

// Ref identifies a node by ring ID and address.
type Ref struct {
	ID   hashring.ID
	Addr string
}

// xorDist is the Kademlia metric.
func xorDist(a, b hashring.ID) uint64 { return uint64(a) ^ uint64(b) }

// bucketIndex returns which k-bucket of self a contact belongs to: the
// position of the highest differing bit (0..63), or -1 for self.
func bucketIndex(self, other hashring.ID) int {
	d := xorDist(self, other)
	if d == 0 {
		return -1
	}
	return 63 - bits.LeadingZeros64(d)
}

// table is one node's routing state: 64 k-buckets of at most k contacts
// each, least-recently-seen first.
type table struct {
	self    Ref
	k       int
	buckets [hashring.Bits][]Ref
}

func newTable(self Ref, k int) *table {
	return &table{self: self, k: k}
}

// observe records contact with a peer: fresh contacts go to the bucket
// tail (most recently seen); a full bucket drops the newcomer, Kademlia's
// preference for long-lived contacts.
func (t *table) observe(r Ref) {
	i := bucketIndex(t.self.ID, r.ID)
	if i < 0 {
		return
	}
	b := t.buckets[i]
	for j, c := range b {
		if c.Addr == r.Addr {
			copy(b[j:], b[j+1:])
			b[len(b)-1] = r
			return
		}
	}
	if len(b) < t.k {
		t.buckets[i] = append(b, r)
	}
}

// remove drops a dead contact.
func (t *table) remove(addr string) {
	for i, b := range t.buckets {
		for j, c := range b {
			if c.Addr == addr {
				t.buckets[i] = append(b[:j], b[j+1:]...)
				return
			}
		}
	}
}

// closest returns up to n known contacts closest to target by XOR
// distance, including self.
func (t *table) closest(target hashring.ID, n int) []Ref {
	out := make([]Ref, 0, n+1)
	out = append(out, t.self)
	for _, b := range t.buckets {
		out = append(out, b...)
	}
	sort.Slice(out, func(i, j int) bool {
		return xorDist(out[i].ID, target) < xorDist(out[j].ID, target)
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// size returns the number of contacts (excluding self).
func (t *table) size() int {
	var n int
	for _, b := range t.buckets {
		n += len(b)
	}
	return n
}
