package kademlia

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"lht/internal/dht"
	"lht/internal/hashring"
	"lht/internal/metrics"
	"lht/internal/simnet"
)

var (
	// ErrNoNodes reports an operation against a network with no live
	// nodes.
	ErrNoNodes = errors.New("kademlia: no live nodes")
	// ErrNodeExists reports adding an address twice.
	ErrNodeExists = errors.New("kademlia: node already exists")
)

// Config tunes a Network.
type Config struct {
	// K is the bucket size and the replication degree (STOREs go to the
	// K closest nodes). Default 8.
	K int
	// Alpha is the lookup concurrency: contacts queried per round.
	// Default 3.
	Alpha int
	// Seed drives entry selection.
	Seed int64
	// Counters, when set, receives the network's load-balancing counters
	// (spread reads); routing cost is charged by dht.Instrumented above.
	Counters *metrics.Counters
}

func (c Config) withDefaults() Config {
	if c.K <= 0 {
		c.K = 8
	}
	if c.Alpha <= 0 {
		c.Alpha = 3
	}
	return c
}

// node is one Kademlia peer.
type node struct {
	ref Ref

	mu    sync.Mutex
	table *table
	data  map[string]dht.Value
}

// rpcFindNode returns the k contacts closest to target this node knows,
// and observes the caller.
func (n *node) rpcFindNode(from Ref, target hashring.ID, k int) []Ref {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.table.observe(from)
	return n.table.closest(target, k)
}

// rpcStore stores a value and observes the caller.
func (n *node) rpcStore(from Ref, key string, v dht.Value) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.table.observe(from)
	n.data[key] = v
}

// rpcFindValue returns the stored value, or the closest contacts.
func (n *node) rpcFindValue(from Ref, key string, k int) (dht.Value, bool, []Ref) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.table.observe(from)
	if v, ok := n.data[key]; ok {
		return v, true, nil
	}
	return nil, false, n.table.closest(hashring.HashKey(key), k)
}

// rpcDelete removes a key (used by the DHT facade's Remove/Take).
func (n *node) rpcDelete(key string) (dht.Value, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	v, ok := n.data[key]
	delete(n.data, key)
	return v, ok
}

// rpcWriteLocal rewrites a value the node already stores.
func (n *node) rpcWriteLocal(key string, v dht.Value) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.data[key]; !ok {
		return false
	}
	n.data[key] = v
	return true
}

// Network is a Kademlia network plus its client side; it implements
// dht.DHT.
type Network struct {
	cfg Config
	net *simnet.Network

	mu    sync.Mutex
	rng   *rand.Rand
	nodes map[string]*node

	// readSeq rotates the replica a read starts at (see rotateStart);
	// spreadReads counts reads that started off the XOR-closest holder.
	readSeq     atomic.Uint64
	spreadReads atomic.Int64

	// casMu serializes conditional read-compare-write cycles per key
	// across the key's K-closest replica set, standing in for the storing
	// peers applying the CAS atomically in a deployed network.
	casMu dht.KeyLocks
}

var (
	_ dht.DHT         = (*Network)(nil)
	_ dht.Conditional = (*Network)(nil)
)

// NewNetwork creates a network of n nodes named "k0".."k<n-1>", each
// bootstrapped through a random earlier node.
func NewNetwork(n int, cfg Config) (*Network, error) {
	if n < 1 {
		return nil, fmt.Errorf("kademlia: network needs at least 1 node, got %d", n)
	}
	nw := &Network{
		cfg:   cfg.withDefaults(),
		net:   simnet.New(),
		nodes: make(map[string]*node, n),
	}
	nw.rng = rand.New(rand.NewSource(nw.cfg.Seed))
	for i := 0; i < n; i++ {
		if err := nw.AddNode(fmt.Sprintf("k%d", i)); err != nil {
			return nil, err
		}
	}
	return nw, nil
}

// Network exposes the underlying simulated network.
func (nw *Network) Network() *simnet.Network { return nw.net }

// AddNode creates a node and bootstraps its routing table by looking up
// its own ID through a random existing member.
func (nw *Network) AddNode(addr string) error {
	nw.mu.Lock()
	if _, ok := nw.nodes[addr]; ok {
		nw.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNodeExists, addr)
	}
	nd := &node{
		ref:  Ref{ID: hashring.HashAddr(addr), Addr: addr},
		data: make(map[string]dht.Value),
	}
	nd.table = newTable(nd.ref, nw.cfg.K)
	var bootstrap *node
	if len(nw.nodes) > 0 {
		bootstrap = nw.randomLiveLocked()
	}
	nw.nodes[addr] = nd
	nw.mu.Unlock()
	nw.net.Register(addr, nd)

	if bootstrap == nil {
		return nil
	}
	nd.mu.Lock()
	nd.table.observe(bootstrap.ref)
	nd.mu.Unlock()
	// Self-lookup populates buckets along the path (standard bootstrap).
	nw.iterativeFindNode(context.Background(), nd, nd.ref.ID)
	return nil
}

// Fail marks a node unreachable; Recover restores it.
func (nw *Network) Fail(addr string)    { nw.net.SetDown(addr, true) }
func (nw *Network) Recover(addr string) { nw.net.SetDown(addr, false) }

func (nw *Network) randomLiveLocked() *node {
	live := make([]*node, 0, len(nw.nodes))
	for addr, n := range nw.nodes {
		if !nw.net.Down(addr) {
			live = append(live, n)
		}
	}
	if len(live) == 0 {
		return nil
	}
	sort.Slice(live, func(i, j int) bool { return live[i].ref.Addr < live[j].ref.Addr })
	return live[nw.rng.Intn(len(live))]
}

func (nw *Network) entry() (*node, error) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	n := nw.randomLiveLocked()
	if n == nil {
		return nil, ErrNoNodes
	}
	return n, nil
}

// dial charges one message and returns the peer, unless it is the caller
// itself (local work is free).
func (nw *Network) dial(from *node, addr string) (*node, error) {
	if addr == from.ref.Addr {
		return from, nil
	}
	v, err := nw.net.SendFrom(from.ref.Addr, addr)
	if err != nil {
		return nil, err
	}
	return v.(*node), nil
}

// iterativeFindNode runs the Kademlia node lookup from origin: repeatedly
// query the alpha closest unqueried contacts for their k closest, until
// the k best known are all queried. It returns the k closest live
// contacts and the number of messages spent. The context is checked once
// per query round; cancellation ends the lookup with whatever contacts
// are already known.
func (nw *Network) iterativeFindNode(ctx context.Context, origin *node, target hashring.ID) ([]Ref, int) {
	type candidate struct {
		ref     Ref
		queried bool
		dead    bool
	}
	origin.mu.Lock()
	seedRefs := origin.table.closest(target, nw.cfg.K)
	origin.mu.Unlock()

	short := make(map[string]*candidate)
	for _, r := range seedRefs {
		short[r.Addr] = &candidate{ref: r}
	}
	hops := 0

	bestUnqueried := func() []*candidate {
		var out []*candidate
		for _, c := range short {
			if !c.queried && !c.dead {
				out = append(out, c)
			}
		}
		sort.Slice(out, func(i, j int) bool {
			return xorDist(out[i].ref.ID, target) < xorDist(out[j].ref.ID, target)
		})
		if len(out) > nw.cfg.Alpha {
			out = out[:nw.cfg.Alpha]
		}
		return out
	}

	for round := 0; round < 64; round++ {
		if ctx.Err() != nil {
			break
		}
		batch := bestUnqueried()
		if len(batch) == 0 {
			break
		}
		for _, c := range batch {
			c.queried = true
			if c.ref.Addr == origin.ref.Addr {
				continue
			}
			peer, err := nw.dial(origin, c.ref.Addr)
			hops++
			if err != nil {
				c.dead = true
				origin.mu.Lock()
				origin.table.remove(c.ref.Addr)
				origin.mu.Unlock()
				continue
			}
			for _, r := range peer.rpcFindNode(origin.ref, target, nw.cfg.K) {
				if _, ok := short[r.Addr]; !ok {
					short[r.Addr] = &candidate{ref: r}
				}
				origin.mu.Lock()
				origin.table.observe(r)
				origin.mu.Unlock()
			}
		}
	}

	live := make([]Ref, 0, nw.cfg.K)
	all := make([]*candidate, 0, len(short))
	for _, c := range short {
		all = append(all, c)
	}
	sort.Slice(all, func(i, j int) bool {
		return xorDist(all[i].ref.ID, target) < xorDist(all[j].ref.ID, target)
	})
	for _, c := range all {
		if c.dead {
			continue
		}
		live = append(live, c.ref)
		if len(live) == nw.cfg.K {
			break
		}
	}
	return live, hops
}

// Lookup resolves the K closest nodes to a key and the messages spent.
func (nw *Network) Lookup(ctx context.Context, key string) ([]Ref, int, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, fmt.Errorf("kademlia: lookup aborted: %w", err)
	}
	origin, err := nw.entry()
	if err != nil {
		return nil, 0, err
	}
	refs, hops := nw.iterativeFindNode(ctx, origin, hashring.HashKey(key))
	if err := ctx.Err(); err != nil {
		return refs, hops, fmt.Errorf("kademlia: lookup aborted: %w", err)
	}
	return refs, hops, nil
}

// --- dht.DHT -------------------------------------------------------------

// Put implements dht.DHT: STORE on the K closest nodes.
func (nw *Network) Put(ctx context.Context, key string, v dht.Value) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	origin, err := nw.entry()
	if err != nil {
		return err
	}
	refs, _ := nw.iterativeFindNode(ctx, origin, hashring.HashKey(key))
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(refs) == 0 {
		return dht.MarkTransient(ErrNoNodes)
	}
	for _, r := range refs {
		peer, err := nw.dial(origin, r.Addr)
		if err != nil {
			continue
		}
		peer.rpcStore(origin.ref, key, v)
	}
	return nil
}

// rotateStart picks which of the K-closest holders a read of key starts
// at: a deterministic function of the key and a per-network read
// sequence, so consecutive reads of one hot key spread across the whole
// replica set instead of pinning the XOR-closest node, while any
// serialized schedule stays reproducible. The scan still visits every
// ref in order (wrapping), so fallback semantics are unchanged.
func (nw *Network) rotateStart(key string, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	start := int((uint64(h.Sum32()) + nw.readSeq.Add(1) - 1) % uint64(n))
	if start != 0 {
		nw.spreadReads.Add(1)
		nw.cfg.Counters.AddSpreadReads(1)
	}
	return start
}

// SpreadReads reports how many reads started at a non-closest holder.
func (nw *Network) SpreadReads() int64 { return nw.spreadReads.Load() }

// Get implements dht.DHT: iterative FIND_VALUE, starting at a rotated
// member of the K-closest set.
func (nw *Network) Get(ctx context.Context, key string) (dht.Value, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	origin, err := nw.entry()
	if err != nil {
		return nil, err
	}
	refs, _ := nw.iterativeFindNode(ctx, origin, hashring.HashKey(key))
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := nw.rotateStart(key, len(refs))
	for i := range refs {
		peer, err := nw.dial(origin, refs[(start+i)%len(refs)].Addr)
		if err != nil {
			continue
		}
		if v, ok, _ := peer.rpcFindValue(origin.ref, key, nw.cfg.K); ok {
			return v, nil
		}
	}
	return nil, dht.ErrNotFound
}

// Take implements dht.DHT: fetch-and-delete across the K closest.
func (nw *Network) Take(ctx context.Context, key string) (dht.Value, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	origin, err := nw.entry()
	if err != nil {
		return nil, err
	}
	refs, _ := nw.iterativeFindNode(ctx, origin, hashring.HashKey(key))
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var (
		out   dht.Value
		found bool
	)
	for _, r := range refs {
		peer, err := nw.dial(origin, r.Addr)
		if err != nil {
			continue
		}
		if v, ok := peer.rpcDelete(key); ok && !found {
			out, found = v, true
		}
	}
	if !found {
		return nil, dht.ErrNotFound
	}
	return out, nil
}

// Remove implements dht.DHT.
func (nw *Network) Remove(ctx context.Context, key string) error {
	_, err := nw.Take(ctx, key)
	if errors.Is(err, dht.ErrNotFound) {
		return nil
	}
	return err
}

// Write implements dht.DHT: every replica holding the key rewrites it in
// place, without routing (the index layer's free local write).
func (nw *Network) Write(ctx context.Context, key string, v dht.Value) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	nw.mu.Lock()
	holders := make([]*node, 0, nw.cfg.K)
	for _, n := range nw.nodes {
		n.mu.Lock()
		_, ok := n.data[key]
		n.mu.Unlock()
		if ok {
			holders = append(holders, n)
		}
	}
	nw.mu.Unlock()
	if len(holders) == 0 {
		return dht.ErrNotFound
	}
	for _, n := range holders {
		n.rpcWriteLocal(key, v)
	}
	return nil
}

// casResolve routes to the K closest nodes and reads the current value
// for key from the first replica holding it.
func (nw *Network) casResolve(ctx context.Context, key string) (refs []Ref, origin *node, cur dht.Value, found bool, err error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, nil, false, err
	}
	origin, err = nw.entry()
	if err != nil {
		return nil, nil, nil, false, err
	}
	refs, _ = nw.iterativeFindNode(ctx, origin, hashring.HashKey(key))
	if err := ctx.Err(); err != nil {
		return nil, nil, nil, false, err
	}
	if len(refs) == 0 {
		return nil, nil, nil, false, dht.MarkTransient(ErrNoNodes)
	}
	for _, r := range refs {
		peer, err := nw.dial(origin, r.Addr)
		if err != nil {
			continue
		}
		if v, ok, _ := peer.rpcFindValue(origin.ref, key, nw.cfg.K); ok {
			return refs, origin, v, true, nil
		}
	}
	return refs, origin, nil, false, nil
}

// storeOn STOREs v on every reachable ref.
func (nw *Network) storeOn(origin *node, refs []Ref, key string, v dht.Value) {
	for _, r := range refs {
		peer, err := nw.dial(origin, r.Addr)
		if err != nil {
			continue
		}
		peer.rpcStore(origin.ref, key, v)
	}
}

// PutIf implements dht.Conditional: resolve the K closest, compare the
// stored epoch, and store — all under the key's CAS stripe so racing
// conditional writers serialize.
func (nw *Network) PutIf(ctx context.Context, key string, v dht.Value, ifEpoch uint64) error {
	nw.casMu.Lock(key)
	defer nw.casMu.Unlock(key)
	refs, origin, cur, found, err := nw.casResolve(ctx, key)
	if err != nil {
		return err
	}
	if !found {
		return &dht.CASConflictError{Key: key}
	}
	if e := dht.EpochOf(cur); e != ifEpoch {
		return &dht.CASConflictError{Key: key, Exists: true, WinnerEpoch: e}
	}
	nw.storeOn(origin, refs, key, v)
	return nil
}

// CreateIf implements dht.Conditional.
func (nw *Network) CreateIf(ctx context.Context, key string, v dht.Value) error {
	nw.casMu.Lock(key)
	defer nw.casMu.Unlock(key)
	refs, origin, cur, found, err := nw.casResolve(ctx, key)
	if err != nil {
		return err
	}
	if found {
		return &dht.CASConflictError{Key: key, Exists: true, WinnerEpoch: dht.EpochOf(cur)}
	}
	nw.storeOn(origin, refs, key, v)
	return nil
}

// RemoveIf implements dht.Conditional; removing an absent key succeeds.
func (nw *Network) RemoveIf(ctx context.Context, key string, ifEpoch uint64) error {
	nw.casMu.Lock(key)
	defer nw.casMu.Unlock(key)
	refs, origin, cur, found, err := nw.casResolve(ctx, key)
	if err != nil {
		return err
	}
	if !found {
		return nil
	}
	if e := dht.EpochOf(cur); e != ifEpoch {
		return &dht.CASConflictError{Key: key, Exists: true, WinnerEpoch: e}
	}
	for _, r := range refs {
		peer, err := nw.dial(origin, r.Addr)
		if err != nil {
			continue
		}
		peer.rpcDelete(key)
	}
	return nil
}

// WriteIf implements dht.Conditional: every holder rewrites in place, but
// only when the stored epoch still matches.
func (nw *Network) WriteIf(ctx context.Context, key string, v dht.Value, ifEpoch uint64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	nw.casMu.Lock(key)
	defer nw.casMu.Unlock(key)
	nw.mu.Lock()
	holders := make([]*node, 0, nw.cfg.K)
	for _, n := range nw.nodes {
		n.mu.Lock()
		_, ok := n.data[key]
		n.mu.Unlock()
		if ok {
			holders = append(holders, n)
		}
	}
	nw.mu.Unlock()
	if len(holders) == 0 {
		return dht.ErrNotFound
	}
	holders[0].mu.Lock()
	cur := holders[0].data[key]
	holders[0].mu.Unlock()
	if e := dht.EpochOf(cur); e != ifEpoch {
		return &dht.CASConflictError{Key: key, Exists: true, WinnerEpoch: e}
	}
	for _, n := range holders {
		n.rpcWriteLocal(key, v)
	}
	return nil
}

// TotalKeys counts stored key copies across live nodes (replicas counted
// per holder); inspection helper.
func (nw *Network) TotalKeys() int {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	var total int
	for addr, n := range nw.nodes {
		if nw.net.Down(addr) {
			continue
		}
		n.mu.Lock()
		total += len(n.data)
		n.mu.Unlock()
	}
	return total
}
