package lht

import (
	"context"
	"encoding/gob"

	"lht/internal/chord"
	"lht/internal/dht"
	"lht/internal/kademlia"
	ilht "lht/internal/lht"
)

// DHT is the substrate interface LHT runs over: a flat key-value store
// with one-lookup Get/Put/Take/Remove and a free local Write, every
// operation taking a context.Context for cancellation and deadlines. Any
// DHT can be adapted by implementing it; this package ships four
// substrates.
type DHT = dht.DHT

// Value is the unit of substrate storage.
type Value = dht.Value

// Policy describes the retry/backoff layer for transient substrate
// faults: attempts, capped jittered exponential backoff, and the
// transient-vs-permanent classifier. Set Config.Policy to have an index
// absorb transient faults, or apply WithPolicy to a substrate directly.
type Policy = dht.Policy

// DefaultPolicy returns the default retry policy: 4 attempts, 5ms base
// delay doubling to a 250ms cap, 50% jitter, IsTransient classification.
func DefaultPolicy() Policy { return dht.DefaultPolicy() }

// WithRetry wraps a substrate so every routed operation retries
// transient faults per the policy. Indexes created with the WithPolicy
// option (or Config.Policy) already compose this above their
// instrumentation layer (charging each retry as a DHT-lookup); use
// WithRetry directly only for raw substrate access.
func WithRetry(d DHT, p Policy) DHT { return dht.WithPolicy(d, p) }

// Batcher is the optional batched operation plane: substrates that can
// serve many keys in fewer network round trips implement it alongside
// DHT. Results are positionally aligned with the inputs, a batch never
// fails as a whole (each slot carries its own error), and duplicate keys
// in a PutBatch apply in slice order. The Local, Chord, and tcpnet
// substrates are batch-native; everything that is not decomposes
// per-op through GetBatch/PutBatch below. Batching never changes what
// the paper's cost model counts — every batched key is still one
// DHT-lookup — only how many substrate round trips carry them.
type Batcher = dht.Batcher

// KV is one key/value slot of a batched put.
type KV = dht.KV

// GetBatch fetches many keys through d's native batch plane if it has
// one, or per-op otherwise. Result slices are positionally aligned with
// keys; absent keys report ErrNotFound in their slot.
func GetBatch(ctx context.Context, d DHT, keys []string) ([]Value, []error) {
	return dht.DoGetBatch(ctx, d, keys)
}

// PutBatch stores many key/value pairs through d's native batch plane if
// it has one, or per-op otherwise. The returned errors align with kvs.
func PutBatch(ctx context.Context, d DHT, kvs []KV) []error {
	return dht.DoPutBatch(ctx, d, kvs)
}

// WithoutBatch hides a substrate's native Batcher implementation, forcing
// per-op decomposition — the control arm for measuring what batching
// saves (ablation A6 in EXPERIMENTS.md).
func WithoutBatch(d DHT) DHT { return dht.WithoutBatch(d) }

// Conditional is the optional conditional-write plane: substrates that
// can compare a stored value's epoch and swap atomically implement it
// alongside DHT. It is what makes true multi-writer index concurrency
// safe — every index read-modify-write commits through an epoch-guarded
// conditional put. All four shipped substrates implement it natively.
type Conditional = dht.Conditional

// Epocher is implemented by stored values that carry a version epoch;
// conditional writes compare against it. Index buckets implement it.
type Epocher = dht.Epocher

// ErrCASConflict reports a conditional write that lost its epoch
// comparison to a concurrent writer. Conflicts are permanent (never
// retried by a Policy); the index layer owns rebase-and-retry.
var ErrCASConflict = dht.ErrCASConflict

// CASConflictError is the typed form of ErrCASConflict, carrying whether
// a value exists under the contested key and the winning stored epoch.
type CASConflictError = dht.CASConflictError

// PutIf stores v under key only if a value is stored there with epoch
// ifEpoch, through d's native conditional plane if it has one, or a
// non-atomic fetch-verify emulation otherwise.
func PutIf(ctx context.Context, d DHT, key string, v Value, ifEpoch uint64) error {
	return dht.DoPutIf(ctx, d, key, v, ifEpoch)
}

// CreateIf stores v under key only if nothing is stored there.
func CreateIf(ctx context.Context, d DHT, key string, v Value) error {
	return dht.DoCreateIf(ctx, d, key, v)
}

// RemoveIf deletes key only if the stored value's epoch is ifEpoch; an
// absent key is a success (the removal's goal state).
func RemoveIf(ctx context.Context, d DHT, key string, ifEpoch uint64) error {
	return dht.DoRemoveIf(ctx, d, key, ifEpoch)
}

// WriteIf is the free in-place counterpart of PutIf: it rewrites key's
// value only if present with epoch ifEpoch, returns ErrNotFound if
// absent, and costs no DHT-lookup.
func WriteIf(ctx context.Context, d DHT, key string, v Value, ifEpoch uint64) error {
	return dht.DoWriteIf(ctx, d, key, v, ifEpoch)
}

// CrashPoints is a substrate wrapper carrying a scripted, deterministic
// fault schedule — the tool behind the repository's torn-mutation tests
// and the churn ablation (A7). Build one with WithCrashPoints.
type CrashPoints = dht.CrashPoints

// CrashRule is one entry of a CrashPoints schedule: which operation class
// and keys it matches, which match fires it (N, 1-based; 0 = every
// match), and what firing does — fail before the operation, or after it
// took effect (After, the classic lost-acknowledgement window), once or
// as a permanent process death (Halt).
type CrashRule = dht.CrashRule

// OpKind selects the operation class a CrashRule matches.
type OpKind = dht.OpKind

// Operation classes for CrashRule.Op.
const (
	OpAny      = dht.OpAny
	OpGet      = dht.OpGet
	OpPut      = dht.OpPut
	OpTake     = dht.OpTake
	OpRemove   = dht.OpRemove
	OpWrite    = dht.OpWrite
	OpPutIf    = dht.OpPutIf
	OpCreateIf = dht.OpCreateIf
	OpRemoveIf = dht.OpRemoveIf
	OpWriteIf  = dht.OpWriteIf
)

// ErrCrashed reports an operation failed by an injected crash schedule.
// It is deliberately not transient: a crashed client does not retry.
var ErrCrashed = dht.ErrCrashed

// WithCrashPoints wraps a substrate with a deterministic fault schedule:
// the same operation sequence always fails at the same points, making
// torn index states reproducible in tests and experiments. Rules are
// evaluated in order; the first firing rule decides the outcome.
func WithCrashPoints(d DHT, rules ...CrashRule) *CrashPoints {
	return dht.WithCrashPoints(d, rules...)
}

// Transient-fault classification, shared by Policy and callers that
// inspect errors themselves.
var (
	// ErrTransient marks an error as a transient substrate fault; wrap
	// with MarkTransient, test with errors.Is or IsTransient.
	ErrTransient = dht.ErrTransient
	// ErrRetriesExhausted reports that a transient fault persisted
	// through every attempt a Policy allows.
	ErrRetriesExhausted = dht.ErrRetriesExhausted
)

// IsTransient reports whether an error is a transient substrate fault
// worth retrying: unreachable peers and network timeouts are transient;
// ErrNotFound and context cancellation/expiry are permanent.
func IsTransient(err error) bool { return dht.IsTransient(err) }

// MarkTransient wraps an error so IsTransient reports true, for custom
// DHT implementations surfacing their own fault types.
func MarkTransient(err error) error { return dht.MarkTransient(err) }

// ChordRing is the Chord substrate (in-process simulation with
// per-message accounting, joins/leaves/failures and stabilization).
type ChordRing = chord.Ring

// ChordConfig tunes a ChordRing (successor list length, replication,
// seed).
type ChordConfig = chord.Config

// KademliaNetwork is the Kademlia substrate.
type KademliaNetwork = kademlia.Network

// KademliaConfig tunes a KademliaNetwork (bucket size K, lookup
// concurrency alpha, seed).
type KademliaConfig = kademlia.Config

// NewLocalDHT returns the single-process substrate: one flat map with DHT
// semantics. It is the right choice for tests, embedding, and paper-scale
// experiments on one machine.
func NewLocalDHT() DHT { return dht.NewLocal() }

// NewChordDHT builds an n-node Chord ring and returns it; the returned
// ring is itself a DHT, and its methods (AddNode, RemoveNode, Fail,
// Stabilize) drive churn experiments.
func NewChordDHT(n int, cfg ChordConfig) (*ChordRing, error) {
	return chord.NewRing(n, cfg)
}

// NewKademliaDHT builds an n-node Kademlia network; the returned network
// is itself a DHT.
func NewKademliaDHT(n int, cfg KademliaConfig) (*KademliaNetwork, error) {
	return kademlia.NewNetwork(n, cfg)
}

// RegisterGobTypes registers the index's stored types with encoding/gob,
// required before using a substrate that serializes values across
// processes (internal/tcpnet and anything else gob-encoding dht.Value).
func RegisterGobTypes() {
	gob.Register(&ilht.Bucket{})
}
