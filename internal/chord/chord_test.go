package chord

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"

	"lht/internal/dht"
	"lht/internal/hashring"
	"lht/internal/metrics"
)

func newRing(t *testing.T, n int, cfg Config) *Ring {
	t.Helper()
	r, err := NewRing(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestSingleNodeRing(t *testing.T) {
	r := newRing(t, 1, Config{Seed: 1})
	if err := r.Put(context.Background(), "k", 42); err != nil {
		t.Fatal(err)
	}
	v, err := r.Get(context.Background(), "k")
	if err != nil || v.(int) != 42 {
		t.Fatalf("Get = %v, %v", v, err)
	}
	ref, hops, err := r.Lookup(context.Background(), "k")
	if err != nil || ref.Addr != "n0" {
		t.Fatalf("Lookup = %v, %v", ref, err)
	}
	if hops != 0 {
		t.Errorf("single-node lookup hops = %d", hops)
	}
}

func TestNewRingValidates(t *testing.T) {
	if _, err := NewRing(0, Config{}); err == nil {
		t.Error("NewRing(0) should fail")
	}
}

func TestRingConsistency(t *testing.T) {
	r := newRing(t, 16, Config{Seed: 2})
	assertRingOrdered(t, r)
}

// assertRingOrdered walks successor pointers from one node and verifies
// they form a single cycle covering every live node in ID order.
func assertRingOrdered(t *testing.T, r *Ring) {
	t.Helper()
	nodes := r.liveNodes()
	if len(nodes) == 0 {
		t.Fatal("no live nodes")
	}
	start := nodes[0]
	visited := map[string]bool{}
	cur := start
	for i := 0; i <= len(nodes); i++ {
		if visited[cur.ref.Addr] {
			break
		}
		visited[cur.ref.Addr] = true
		succ := cur.rpcSuccessorList()[0]
		v, ok := r.net.Peek(succ.Addr)
		if !ok {
			t.Fatalf("successor %q of %q not registered", succ.Addr, cur.ref.Addr)
		}
		next := v.(*Node)
		// The arc (cur, succ] must contain no other live node.
		for _, other := range nodes {
			if other.ref.Addr == cur.ref.Addr || other.ref.Addr == succ.Addr {
				continue
			}
			if hashring.StrictBetween(other.ref.ID, cur.ref.ID, succ.ID) {
				t.Fatalf("node %q lies between %q and its successor %q", other.ref.Addr, cur.ref.Addr, succ.Addr)
			}
		}
		cur = next
	}
	if len(visited) != len(nodes) {
		t.Fatalf("successor cycle covers %d of %d nodes", len(visited), len(nodes))
	}
}

func TestPutGetAcrossRing(t *testing.T) {
	r := newRing(t, 20, Config{Seed: 3})
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("key-%d", i)
		if err := r.Put(context.Background(), key, i); err != nil {
			t.Fatalf("Put(%s): %v", key, err)
		}
	}
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("key-%d", i)
		v, err := r.Get(context.Background(), key)
		if err != nil || v.(int) != i {
			t.Fatalf("Get(%s) = %v, %v", key, v, err)
		}
	}
	if _, err := r.Get(context.Background(), "absent"); !errors.Is(err, dht.ErrNotFound) {
		t.Fatalf("Get absent = %v", err)
	}
	if r.TotalKeys() != 500 {
		t.Fatalf("TotalKeys = %d", r.TotalKeys())
	}
}

func TestTakeRemoveWrite(t *testing.T) {
	r := newRing(t, 8, Config{Seed: 4})
	if err := r.Put(context.Background(), "a", 1); err != nil {
		t.Fatal(err)
	}
	if err := r.Write(context.Background(), "a", 2); err != nil {
		t.Fatal(err)
	}
	if v, _ := r.Get(context.Background(), "a"); v.(int) != 2 {
		t.Fatalf("Write lost: %v", v)
	}
	if err := r.Write(context.Background(), "missing", 1); !errors.Is(err, dht.ErrNotFound) {
		t.Fatalf("Write missing = %v", err)
	}
	v, err := r.Take(context.Background(), "a")
	if err != nil || v.(int) != 2 {
		t.Fatalf("Take = %v, %v", v, err)
	}
	if _, err := r.Take(context.Background(), "a"); !errors.Is(err, dht.ErrNotFound) {
		t.Fatal("second Take should miss")
	}
	if err := r.Put(context.Background(), "b", 3); err != nil {
		t.Fatal(err)
	}
	if err := r.Remove(context.Background(), "b"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get(context.Background(), "b"); !errors.Is(err, dht.ErrNotFound) {
		t.Fatal("Remove did not delete")
	}
}

func TestLookupHopsLogarithmic(t *testing.T) {
	r := newRing(t, 64, Config{Seed: 5})
	var total int
	const queries = 300
	for i := 0; i < queries; i++ {
		_, hops, err := r.Lookup(context.Background(), fmt.Sprintf("q-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		total += hops
	}
	mean := float64(total) / queries
	// log2(64) = 6; the classic expectation is ~(1/2)log2 N. Allow slack
	// but fail if routing degrades toward linear (32).
	if mean > 2*math.Log2(64) {
		t.Errorf("mean hops = %v for 64 nodes; routing not logarithmic", mean)
	}
	if mean == 0 {
		t.Error("mean hops = 0; counting broken")
	}
}

func TestLoadBalance(t *testing.T) {
	r := newRing(t, 16, Config{Seed: 6})
	const keys = 4000
	for i := 0; i < keys; i++ {
		if err := r.Put(context.Background(), fmt.Sprintf("lb-%d", i), i); err != nil {
			t.Fatal(err)
		}
	}
	per := r.KeysPerNode()
	if len(per) != 16 {
		t.Fatalf("expected 16 nodes, got %d", len(per))
	}
	// Uniform hashing: no node should be empty or hold a majority.
	for addr, n := range per {
		if n == 0 {
			t.Errorf("node %s holds no keys", addr)
		}
		if n > keys/2 {
			t.Errorf("node %s holds %d of %d keys", addr, n, keys)
		}
	}
}

func TestJoinTransfersKeys(t *testing.T) {
	r := newRing(t, 4, Config{Seed: 7})
	for i := 0; i < 300; i++ {
		if err := r.Put(context.Background(), fmt.Sprintf("j-%d", i), i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 4; i < 12; i++ {
		if err := r.AddNode(fmt.Sprintf("n%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	r.Stabilize(3)
	assertRingOrdered(t, r)
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("j-%d", i)
		v, err := r.Get(context.Background(), key)
		if err != nil || v.(int) != i {
			t.Fatalf("after joins, Get(%s) = %v, %v", key, v, err)
		}
	}
	if err := r.AddNode("n4"); !errors.Is(err, ErrNodeExists) {
		t.Fatalf("duplicate AddNode = %v", err)
	}
}

func TestGracefulLeavePreservesData(t *testing.T) {
	r := newRing(t, 10, Config{Seed: 8})
	for i := 0; i < 300; i++ {
		if err := r.Put(context.Background(), fmt.Sprintf("g-%d", i), i); err != nil {
			t.Fatal(err)
		}
	}
	for _, addr := range []string{"n1", "n4", "n7"} {
		if err := r.RemoveNode(addr, true); err != nil {
			t.Fatal(err)
		}
		r.Stabilize(3)
	}
	assertRingOrdered(t, r)
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("g-%d", i)
		v, err := r.Get(context.Background(), key)
		if err != nil || v.(int) != i {
			t.Fatalf("after leaves, Get(%s) = %v, %v", key, v, err)
		}
	}
	if err := r.RemoveNode("n1", true); !errors.Is(err, ErrNodeUnknown) {
		t.Fatalf("double remove = %v", err)
	}
}

func TestAbruptFailureHealsRing(t *testing.T) {
	r := newRing(t, 12, Config{Seed: 9})
	for i := 0; i < 200; i++ {
		if err := r.Put(context.Background(), fmt.Sprintf("f-%d", i), i); err != nil {
			t.Fatal(err)
		}
	}
	r.Fail("n3")
	r.Fail("n8")
	r.Stabilize(4)
	// The ring must stay routable: every key resolves to a live node;
	// values on the failed nodes are lost (no replication configured).
	var lost int
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("f-%d", i)
		v, err := r.Get(context.Background(), key)
		switch {
		case errors.Is(err, dht.ErrNotFound):
			lost++
		case err != nil:
			t.Fatalf("Get(%s) = %v", key, err)
		case v.(int) != i:
			t.Fatalf("Get(%s) = %v", key, v)
		}
	}
	if lost == 0 {
		t.Error("expected some loss without replication")
	}
	if lost > 120 {
		t.Errorf("lost %d of 200 keys to 2/12 failures", lost)
	}
	// Recovery brings the stored keys back.
	r.Recover("n3")
	r.Recover("n8")
	r.Stabilize(4)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("f-%d", i)
		if _, err := r.Get(context.Background(), key); err != nil {
			t.Fatalf("after recovery, Get(%s) = %v", key, err)
		}
	}
}

func TestReplicationSurvivesFailure(t *testing.T) {
	r := newRing(t, 12, Config{Seed: 10, Replicas: 3})
	for i := 0; i < 200; i++ {
		if err := r.Put(context.Background(), fmt.Sprintf("r-%d", i), i); err != nil {
			t.Fatal(err)
		}
	}
	r.Fail("n2")
	r.Fail("n9")
	r.Stabilize(4)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("r-%d", i)
		v, err := r.Get(context.Background(), key)
		if err != nil || v.(int) != i {
			t.Fatalf("with replication, Get(%s) = %v, %v", key, v, err)
		}
	}
}

func TestAllNodesDown(t *testing.T) {
	r := newRing(t, 2, Config{Seed: 11})
	r.Fail("n0")
	r.Fail("n1")
	if err := r.Put(context.Background(), "x", 1); !errors.Is(err, ErrNoNodes) {
		t.Fatalf("Put with all down = %v", err)
	}
}

func TestMessagesAreCounted(t *testing.T) {
	r := newRing(t, 16, Config{Seed: 12})
	r.Network().ResetMessages()
	if err := r.Put(context.Background(), "counted", 1); err != nil {
		t.Fatal(err)
	}
	if r.Network().Messages() == 0 {
		t.Error("Put on a 16-node ring should cost messages")
	}
}

// TestReadSpreading pins the hot-read rotation: on a replicated ring,
// repeated Gets of one key start at different replicas (spreading the
// hot key's load) while every Get still returns the value, including
// after the primary fails — the fallback scan visits the whole chain.
func TestReadSpreading(t *testing.T) {
	agg := &metrics.Counters{}
	r := newRing(t, 8, Config{Seed: 21, Replicas: 3, Counters: agg})
	if err := r.Put(context.Background(), "hot", 42); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		v, err := r.Get(context.Background(), "hot")
		if err != nil || v.(int) != 42 {
			t.Fatalf("Get %d = %v, %v", i, v, err)
		}
	}
	// With 3 replicas and a rotating sequence, 2/3 of reads start
	// off-primary.
	if n := r.SpreadReads(); n < 10 {
		t.Errorf("SpreadReads = %d after 30 replicated reads", n)
	}
	if got, want := agg.Snapshot().Load.SpreadReads, r.SpreadReads(); got != want {
		t.Errorf("chained aggregate SpreadReads = %d, ring says %d", got, want)
	}

	// Unreplicated rings have a single holder: nothing to spread.
	r1 := newRing(t, 8, Config{Seed: 22})
	if err := r1.Put(context.Background(), "solo", 7); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := r1.Get(context.Background(), "solo"); err != nil {
			t.Fatal(err)
		}
	}
	if n := r1.SpreadReads(); n != 0 {
		t.Errorf("SpreadReads = %d with Replicas=1", n)
	}
}

// TestReadSpreadingCostOracle pins the Lookups accounting: rotation
// happens below the instrumentation layer with free direct calls, so a
// replicated Get costs exactly one DHT-lookup whether or not its start
// was rotated — identical to the primary-pinned behavior it replaced.
func TestReadSpreadingCostOracle(t *testing.T) {
	r := newRing(t, 8, Config{Seed: 23, Replicas: 3})
	var c metrics.Counters
	d := dht.NewInstrumented(r, &c)
	ctx := context.Background()
	for i := 0; i < 20; i++ {
		if err := d.Put(ctx, fmt.Sprintf("k-%d", i), i); err != nil {
			t.Fatal(err)
		}
	}
	before := c.Snapshot().Lookup.Total
	const reads = 60
	for i := 0; i < reads; i++ {
		if _, err := d.Get(ctx, fmt.Sprintf("k-%d", i%20)); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Snapshot().Lookup.Total - before; got != reads {
		t.Errorf("60 replicated Gets charged %d lookups, want exactly %d", got, reads)
	}
	if r.SpreadReads() == 0 {
		t.Error("no reads were spread across the replica chain")
	}
}

// TestStrandedCopyRetiredAfterRecovery pins the holder registry that
// scopes retireStale: a secondary that was DOWN while a write replaced
// the key's copies keeps its stale remnant (a real system cannot reach
// it), stays registered, and the first replica-set write after its
// recovery retires the remnant — so a removed key can never be
// resurrected by a rotated read landing on the recovered node.
func TestStrandedCopyRetiredAfterRecovery(t *testing.T) {
	r := newRing(t, 8, Config{Seed: 31, Replicas: 2})
	ctx := context.Background()
	if err := r.Put(ctx, "stranded", 1); err != nil {
		t.Fatal(err)
	}
	chain, _, _, err := r.replicaChain(ctx, "stranded")
	if err != nil {
		t.Fatal(err)
	}
	sec := chain[1]

	r.Fail(sec.ref.Addr)
	r.Stabilize(4)
	if err := r.Put(ctx, "stranded", 2); err != nil {
		t.Fatal(err) // sec misses this write: its copy of value 1 is stranded
	}
	// Recover WITHOUT a stabilization round: a maintenance sweep's
	// predecessor handoff could independently refresh the copy, and the
	// retirement contract must not depend on maintenance having run.
	r.Recover(sec.ref.Addr)
	if v, ok := sec.rpcFetch("stranded"); !ok || v.(int) != 1 {
		t.Fatalf("precondition: recovered node holds %v (found %t), want stale value 1", v, ok)
	}

	// Remove retires every REGISTERED holder, including the recovered
	// one the removal-time chain no longer contains.
	if err := r.Remove(ctx, "stranded"); err != nil {
		t.Fatal(err)
	}
	if v, ok := sec.rpcFetch("stranded"); ok {
		t.Fatalf("stranded copy survived retirement: %v", v)
	}
	for i := 0; i < 10; i++ {
		if _, err := r.Get(ctx, "stranded"); !errors.Is(err, dht.ErrNotFound) {
			t.Fatalf("rotated read %d resurrected a removed key: %v", i, err)
		}
	}
}

// TestRecoveredStaleCopyWindow documents the read-rotation staleness
// window under Fail/Recover churn: between a holder's recovery and the
// NEXT write of the key, a rotated read may serve the recovered (older)
// copy that the old primary-first order usually shadowed — bounded
// divergence the bucket epochs order and the index scrub repairs. The
// next write closes the window: every registered holder is refreshed or
// retired, and reads converge on the latest value.
func TestRecoveredStaleCopyWindow(t *testing.T) {
	r := newRing(t, 8, Config{Seed: 33, Replicas: 2})
	ctx := context.Background()
	if err := r.Put(ctx, "win", 1); err != nil {
		t.Fatal(err)
	}
	chain, _, _, err := r.replicaChain(ctx, "win")
	if err != nil {
		t.Fatal(err)
	}
	sec := chain[1]
	r.Fail(sec.ref.Addr)
	r.Stabilize(4)
	if err := r.Put(ctx, "win", 2); err != nil {
		t.Fatal(err)
	}
	r.Recover(sec.ref.Addr)
	r.Stabilize(4)

	// The window: reads may serve the stranded older copy or the newer
	// value, never anything else.
	for i := 0; i < 20; i++ {
		v, err := r.Get(ctx, "win")
		if err != nil {
			t.Fatal(err)
		}
		if n := v.(int); n != 1 && n != 2 {
			t.Fatalf("read %d = %d, want the stale (1) or current (2) value", i, n)
		}
	}

	// The next write closes it: every holder is refreshed or retired.
	if err := r.Put(ctx, "win", 3); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		v, err := r.Get(ctx, "win")
		if err != nil || v.(int) != 3 {
			t.Fatalf("post-write read %d = %v, %v, want 3", i, v, err)
		}
	}
}
