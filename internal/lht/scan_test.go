package lht

import (
	"math/rand"
	"sort"
	"testing"

	"lht/internal/dht"
	"lht/internal/record"
)

func TestScan(t *testing.T) {
	ix, err := New(dht.NewLocal(), Config{SplitThreshold: 8, MergeThreshold: 0, Depth: 20})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(61))
	keys := make([]float64, 500)
	for i := range keys {
		keys[i] = rng.Float64()
		if _, err := ix.Insert(record.Record{Key: keys[i]}); err != nil {
			t.Fatal(err)
		}
	}
	sort.Float64s(keys)

	// Scan from several starting points with several limits and compare
	// with the sorted oracle.
	for _, from := range []float64{0, 0.25, 0.5, 0.9, keys[100]} {
		start := sort.SearchFloat64s(keys, from)
		for _, limit := range []int{1, 7, 50, 1000} {
			got, cost, err := ix.Scan(from, limit)
			if err != nil {
				t.Fatalf("Scan(%v, %d): %v", from, limit, err)
			}
			want := keys[start:]
			if len(want) > limit {
				want = want[:limit]
			}
			if len(got) != len(want) {
				t.Fatalf("Scan(%v, %d) = %d records, want %d", from, limit, len(got), len(want))
			}
			for i := range want {
				if got[i].Key != want[i] {
					t.Fatalf("Scan(%v, %d)[%d] = %v, want %v", from, limit, i, got[i].Key, want[i])
				}
			}
			if cost.Lookups == 0 {
				t.Fatal("scan should cost lookups")
			}
		}
	}

	// Scanning past the end returns what exists.
	got, _, err := ix.Scan(keys[len(keys)-1], 10)
	if err != nil || len(got) != 1 {
		t.Fatalf("tail Scan = %d records, %v", len(got), err)
	}
	// Invalid limit.
	if _, _, err := ix.Scan(0.5, 0); err == nil {
		t.Fatal("Scan with limit 0 should fail")
	}
	// Bad key.
	if _, _, err := ix.Scan(1.5, 10); err == nil {
		t.Fatal("Scan with key out of domain should fail")
	}
}

// TestScanPagination walks the whole index in pages and verifies the
// concatenation equals one full range query.
func TestScanPagination(t *testing.T) {
	ix, err := New(dht.NewLocal(), Config{SplitThreshold: 8, MergeThreshold: 0, Depth: 20})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(62))
	for i := 0; i < 300; i++ {
		if _, err := ix.Insert(record.Record{Key: rng.Float64()}); err != nil {
			t.Fatal(err)
		}
	}
	all, _, err := ix.Range(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	record.SortByKey(all)

	var pages []record.Record
	from := 0.0
	for {
		page, _, err := ix.Scan(from, 37)
		if err != nil {
			t.Fatal(err)
		}
		if len(pages) > 0 && len(page) > 0 && page[0].Key == pages[len(pages)-1].Key {
			page = page[1:] // drop the resume anchor
		}
		if len(page) == 0 {
			break
		}
		pages = append(pages, page...)
		from = page[len(page)-1].Key
		if len(page) < 36 {
			break
		}
	}
	if len(pages) != len(all) {
		t.Fatalf("paged scan = %d records, range = %d", len(pages), len(all))
	}
	for i := range all {
		if pages[i].Key != all[i].Key {
			t.Fatalf("page record %d = %v, want %v", i, pages[i].Key, all[i].Key)
		}
	}
}
