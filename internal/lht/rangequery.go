package lht

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"lht/internal/bitlabel"
	"lht/internal/dht"
	"lht/internal/keyspace"
	"lht/internal/metrics"
	"lht/internal/record"
)

// ErrBadRange reports a malformed range query.
var ErrBadRange = errors.New("lht: invalid range")

// rangeCollector accumulates a range query's results and bandwidth cost.
// When the index is configured with ParallelRange, branch forwards run in
// goroutines, so the collector is mutex-guarded; latency (Steps) is
// always computed structurally from the forwarding DAG, identically in
// both modes.
type rangeCollector struct {
	mu      sync.Mutex
	out     []record.Record
	lookups int
	err     error
}

func (c *rangeCollector) addRecords(recs []record.Record, lo, hi float64) {
	c.mu.Lock()
	c.out = record.FilterRange(c.out, recs, lo, hi)
	c.mu.Unlock()
}

func (c *rangeCollector) addLookup() {
	c.mu.Lock()
	c.lookups++
	c.mu.Unlock()
}

func (c *rangeCollector) addLookups(n int) {
	c.mu.Lock()
	c.lookups += n
	c.mu.Unlock()
}

// isCancellation reports whether err is (or wraps) a context
// cancellation or deadline expiry — the follow-on noise every other
// branch emits once one branch has failed for a real reason.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// setErr records the error the query surfaces. The first error wins,
// with one exception: a stored cancellation yields to a later
// non-cancellation error. Under ParallelRange one branch's real fault
// (say a dead Chord peer) makes the sibling branches observe
// context.Canceled; whichever order those land in, the root cause — not
// the collateral cancellation — must be what the caller sees.
func (c *rangeCollector) setErr(err error) {
	c.mu.Lock()
	if c.err == nil || (isCancellation(c.err) && !isCancellation(err)) {
		c.err = err
	}
	c.mu.Unlock()
}

func (c *rangeCollector) snapshot() ([]record.Record, int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.out, c.lookups, c.err
}

// getBucketC fetches a bucket, charging the collector.
func (ix *Index) getBucketC(ctx context.Context, key string, col *rangeCollector) (*Bucket, error) {
	col.addLookup()
	return ix.fetchBucket(ctx, key)
}

// Range answers the range query [lo, hi) (sections 6.1-6.2): it returns
// every indexed record whose key falls in the range. Bounds must satisfy
// 0 <= lo < hi <= 1.
//
// The algorithm is the paper's general case (Algorithm 4): the initiator
// locally computes the range's lowest common ancestor LCA and fetches the
// leaf named f_n(LCA). A miss means the whole range lies in one leaf
// (an exact-match lookup finishes the query); an overlapping bucket starts
// recursive forwarding (Algorithm 3); a non-overlapping bucket descends
// through LCA's two children first. Forwarding needs only each bucket's
// local tree: branch nodes are enumerated with the neighbor functions, and
// every fully-covered branch is entered in one hop through its named leaf.
//
// Cost.Lookups counts every DHT-get (the bandwidth measure, at most B+3
// for B result buckets in the paper's analysis); Cost.Steps counts the
// longest dependent chain (the latency measure): all forwards issued by
// one bucket proceed in parallel. With Config.ParallelRange they really
// do - independent branches run in goroutines - which turns the Steps
// model into wall-clock time over networked substrates.
func (ix *Index) Range(lo, hi float64) ([]record.Record, Cost, error) {
	return ix.RangeContext(context.Background(), lo, hi)
}

// RangeContext is Range with a caller-supplied context. Cancelling the
// context stops the forwarding recursion promptly: no new branch fetches
// start, in-flight substrate operations observe the cancellation, and the
// parallel goroutines drain before RangeContext returns. The partial cost
// accumulated up to that point is still reported.
func (ix *Index) RangeContext(ctx context.Context, lo, hi float64) (res []record.Record, cost Cost, err error) {
	if err := keyspace.CheckKey(lo); err != nil {
		return nil, cost, fmt.Errorf("%w: lo: %v", ErrBadRange, err)
	}
	if !(hi > lo && hi <= 1) {
		return nil, cost, fmt.Errorf("%w: [%v, %v)", ErrBadRange, lo, hi)
	}
	ctx, done := ix.beginOp(ctx, metrics.OpRange)
	defer func() { done(err) }()
	r := keyspace.Interval{Lo: lo, Hi: hi}
	lca := keyspace.RangeLCA(r, ix.cfg.Depth)

	col := &rangeCollector{}
	b, err := ix.getBucketC(metrics.WithPhase(ctx, metrics.PhaseProbe), lca.Name().Key(), col)
	switch {
	case errors.Is(err, dht.ErrNotFound):
		// Case 1: no leaf is named f_n(LCA), so the subtree under LCA is
		// a single leaf covering the whole range: exact-match lookup.
		lb, _, lcost, err := ix.lookup(ctx, lo)
		out, lookups, _ := col.snapshot()
		cost.Lookups = lookups + lcost.Lookups
		cost.Steps = 1 + lcost.Steps
		if err != nil {
			return nil, cost, err
		}
		out = record.FilterRange(out, lb.Records, lo, hi)
		return out, cost, nil
	case err != nil:
		_, cost.Lookups, _ = col.snapshot()
		cost.Steps = 1
		return nil, cost, err
	}

	var depth int
	if b.Interval().Overlaps(r) {
		// Case 2: the simple case holds from this bucket.
		depth = 1 + ix.forward(ctx, b, r, col)
	} else {
		// Case 3: descend through both children of the LCA; each child's
		// subrange contains one bound of its half, so forwarding from the
		// entered leaf is again the simple case. The two descents proceed
		// in parallel.
		var d0, d1 int
		ix.inParallel(
			func() { d0 = ix.enterChild(ctx, lca.Left(), r, col) },
			func() { d1 = ix.enterChild(ctx, lca.Right(), r, col) },
		)
		depth = 1 + max(d0, d1)
	}
	out, lookups, err := col.snapshot()
	cost.Lookups = lookups
	cost.Steps = depth
	if err != nil {
		return nil, cost, err
	}
	return out, cost, nil
}

// inParallel runs the thunks concurrently when ParallelRange is set, or
// sequentially otherwise.
func (ix *Index) inParallel(thunks ...func()) {
	if !ix.cfg.ParallelRange {
		for _, f := range thunks {
			f()
		}
		return
	}
	var wg sync.WaitGroup
	for _, f := range thunks {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f()
		}()
	}
	wg.Wait()
}

// enterChild fetches the leaf that starts the sweep inside one child
// subtree of the LCA and forwards the intersected range there. The child
// label itself is tried first (the leaf bound to that name is the subtree
// boundary leaf); if the child is a leaf rather than an internal node, the
// key misses and the leaf is found under f_n(child) instead - the one
// extra lookup the complexity analysis of section 6.3 budgets for.
// It returns the depth of the dependent lookup chain it issued.
func (ix *Index) enterChild(ctx context.Context, child bitlabel.Label, r keyspace.Interval, col *rangeCollector) int {
	ctx = metrics.WithPhase(ctx, metrics.PhaseForward)
	sub := keyspace.IntervalOf(child).Intersect(r)
	if sub.Empty() {
		return 0
	}
	if err := ctx.Err(); err != nil {
		col.setErr(fmt.Errorf("lht: range enter %s: %w", child, err))
		return 0
	}
	depth := 1
	b, err := ix.getBucketC(ctx, child.Key(), col)
	if errors.Is(err, dht.ErrNotFound) {
		depth = 2
		b, err = ix.getBucketC(ctx, child.Name().Key(), col)
	}
	if err != nil {
		col.setErr(fmt.Errorf("lht: range enter %s: %w", child, err))
		return depth
	}
	return depth + ix.forward(ctx, b, sub, col)
}

// forward implements the recursive forwarding of Algorithm 3 from bucket
// b, which the caller has already fetched: collect b's records in r, then
// sweep toward whichever sides of r extend beyond b's interval. Both
// sweeps and all per-branch forwards are issued by b's peer in one round,
// so the returned chain depth is the maximum over the branches.
func (ix *Index) forward(ctx context.Context, b *Bucket, r keyspace.Interval, col *rangeCollector) int {
	ctx = metrics.WithPhase(ctx, metrics.PhaseForward)
	col.addRecords(b.Records, r.Lo, r.Hi)
	if err := ctx.Err(); err != nil {
		col.setErr(fmt.Errorf("lht: range forward from %s: %w", b.Label, err))
		return 0
	}
	iv := b.Interval()
	var dRight, dLeft int
	ix.inParallel(
		func() {
			if r.Hi > iv.Hi {
				dRight = ix.sweep(ctx, b.Label, r, sweepRight, col)
			}
		},
		func() {
			if r.Lo < iv.Lo {
				dLeft = ix.sweep(ctx, b.Label, r, sweepLeft, col)
			}
		},
	)
	return max(dRight, dLeft)
}

type sweepDir int

const (
	sweepRight sweepDir = iota + 1
	sweepLeft
)

// sweep walks the branch nodes of the local tree of the leaf labeled from,
// in the given direction, decomposing r into per-branch subranges
// (Algorithm 3). A branch whose interval is fully inside r is entered
// through the leaf bound to f_n(beta): the far-end boundary leaf of the
// branch, which then sweeps back inward. The final, partially covered
// branch is entered through the leaf bound to beta itself: the near-end
// boundary leaf; if beta turns out to be a leaf, that get fails and the
// leaf is under f_n(beta) - the at-most-one failed lookup per sweep of
// section 6.3.
//
// The walk over branch labels is local arithmetic; every branch's fetch
// and recursive forward is independent, so in parallel mode each runs in
// its own goroutine. A cancelled context stops the recursion before any
// further branch fetch.
func (ix *Index) sweep(ctx context.Context, from bitlabel.Label, r keyspace.Interval, dir sweepDir, col *rangeCollector) int {
	ctx = metrics.WithPhase(ctx, metrics.PhaseForward)
	// Phase 1: enumerate the branches to visit (pure local arithmetic).
	type branchTask struct {
		label   bitlabel.Label
		inv     keyspace.Interval
		covered bool
	}
	var tasks []branchTask
	beta := from
loop:
	for {
		var ok bool
		if dir == sweepRight {
			beta, ok = beta.RightNeighbor()
		} else {
			beta, ok = beta.LeftNeighbor()
		}
		if !ok {
			break // reached the tree edge
		}
		inv := keyspace.IntervalOf(beta)
		covered := false
		switch dir {
		case sweepRight:
			if inv.Lo >= r.Hi {
				break loop // branch lies beyond the range
			}
			covered = inv.Hi <= r.Hi
		case sweepLeft:
			if inv.Hi <= r.Lo {
				break loop
			}
			covered = inv.Lo >= r.Lo
		}
		tasks = append(tasks, branchTask{label: beta, inv: inv, covered: covered})
		if !covered {
			break // the partially covered branch terminates the sweep
		}
	}

	// Phase 2: every branch's first probe goes out as one multi-get —
	// the same fan-out round the Steps model already treats as parallel,
	// now one round trip on a batch-native substrate. Each fetched branch
	// then forwards independently (concurrently under ParallelRange).
	// A covered branch probes its named leaf f_n(beta); the partially
	// covered terminal branch probes beta's own label, and a miss there
	// means beta is itself a leaf, found under f_n(beta) — the
	// at-most-one failed lookup of section 6.3, still a per-op follow-up.
	if len(tasks) == 0 {
		return 0
	}
	if err := ctx.Err(); err != nil {
		col.setErr(fmt.Errorf("lht: range forward %s: %w", tasks[0].label, err))
		return 0
	}
	keys := make([]string, len(tasks))
	for i, task := range tasks {
		if task.covered {
			keys[i] = task.label.Name().Key()
		} else {
			keys[i] = task.label.Key()
		}
	}
	col.addLookups(len(keys))
	vals, errs := dht.DoGetBatch(ctx, ix.d, keys)

	depths := make([]int, len(tasks))
	thunks := make([]func(), len(tasks))
	for i, task := range tasks {
		nb, err := ix.bucketOf(vals[i], errs[i], keys[i])
		if task.covered {
			// The branch is fully inside the remaining range: enter it
			// through its named leaf and let it sweep back inward.
			thunks[i] = func() {
				if err != nil {
					col.setErr(fmt.Errorf("lht: range forward %s: %w", task.label, err))
					depths[i] = 1
					return
				}
				depths[i] = 1 + ix.forward(ctx, nb, task.inv, col)
			}
			continue
		}
		thunks[i] = func() {
			hops := 1
			tb, terr := nb, err
			if errors.Is(terr, dht.ErrNotFound) {
				hops = 2
				tb, terr = ix.getBucketC(ctx, task.label.Name().Key(), col)
			}
			if terr != nil {
				col.setErr(fmt.Errorf("lht: range forward %s: %w", task.label, terr))
				depths[i] = hops
				return
			}
			depths[i] = hops + ix.forward(ctx, tb, task.inv.Intersect(r), col)
		}
	}
	ix.inParallel(thunks...)

	var depth int
	for _, d := range depths {
		if d > depth {
			depth = d
		}
	}
	return depth
}
