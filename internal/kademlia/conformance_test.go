package kademlia

import (
	"testing"

	"lht/internal/dht"
	"lht/internal/dht/dhttest"
)

func TestNetworkConformance(t *testing.T) {
	dhttest.Run(t, func(t *testing.T) dht.DHT {
		nw, err := NewNetwork(10, Config{Seed: 99, K: 4})
		if err != nil {
			t.Fatal(err)
		}
		return nw
	}, dhttest.Options{Keys: 120})
}

func TestNetworkConditionalConformance(t *testing.T) {
	dhttest.RunConditional(t, func(t *testing.T) dht.DHT {
		nw, err := NewNetwork(10, Config{Seed: 99, K: 4})
		if err != nil {
			t.Fatal(err)
		}
		return nw
	}, dhttest.Options{})
}
