package lht

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lht/internal/dht"
	"lht/internal/record"
)

// normalizedImage captures every stored bucket as encoded bytes with the
// load-plane rate fields zeroed, so trees built with and without the
// plane compare on structure, records and epochs alone.
func normalizedImage(t *testing.T, d *dht.Local) map[string][]byte {
	t.Helper()
	ctx := context.Background()
	img := make(map[string][]byte)
	for _, k := range d.Keys() {
		v, err := d.Get(ctx, k)
		if err != nil {
			t.Fatalf("image %q: %v", k, err)
		}
		b, ok := v.(*Bucket)
		if !ok {
			t.Fatalf("image %q: %T, not a bucket", k, v)
		}
		nb := b.Clone()
		nb.Rate, nb.RateAt = 0, 0
		enc, err := EncodeBucket(nb)
		if err != nil {
			t.Fatalf("encode %q: %v", k, err)
		}
		img[k] = enc
	}
	return img
}

// TestHotSplitOracle checks the load plane's structural contract: a
// rate-triggered split is the same Algorithm 1 as a capacity split, so a
// workload whose rate trigger fires exactly where the capacity trigger
// would must leave a byte-identical tree (modulo the rate fields
// themselves).
//
// The alignment is engineered: with a frozen clock the estimator never
// decays, so a leaf's Rate equals its touch count, and the bit-reversed
// insertion order keeps every split's partition perfectly even — each
// child inherits Rate/2 touches and exactly half the records, so rate
// and capacity stay in lockstep at every level.
func TestHotSplitOracle(t *testing.T) {
	// i/16 for i in bit-reversed order: every prefix is balanced.
	order := []int{0, 8, 4, 12, 2, 10, 6, 14, 1, 9, 5, 13, 3, 11, 7, 15}

	run := func(cfg Config) (*Index, *dht.Local) {
		d := dht.NewLocal()
		ix, err := New(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, i := range order {
			if _, err := ix.Insert(record.Record{Key: float64(i) / 16}); err != nil {
				t.Fatalf("insert %d/16: %v", i, err)
			}
		}
		return ix, d
	}

	// Capacity reference: splits when a leaf's weight (records+1) reaches
	// 9, i.e. on the 8th record.
	capIx, capD := run(Config{SplitThreshold: 9, MergeThreshold: 0, Depth: 8})
	// Rate-triggered: capacity can never fire (threshold 1000); the frozen
	// clock makes Rate a touch counter, so HotSplitRate 8 fires on the 8th
	// insert into a leaf — the same instant capacity would.
	hotIx, hotD := run(Config{
		SplitThreshold: 1000, MergeThreshold: 0, Depth: 8,
		HotSplitRate: 8, clock: func() int64 { return 1 },
	})

	capImg, hotImg := normalizedImage(t, capD), normalizedImage(t, hotD)
	if d := diffImages(hotImg, capImg); d != "" {
		t.Errorf("rate-triggered tree differs from capacity tree:\n%s", d)
	}

	capM, hotM := capIx.Metrics(), hotIx.Metrics()
	if capM.Lookup.Splits != 3 || capM.Load.HotSplits != 0 {
		t.Errorf("capacity index: %d splits (%d hot), want 3 (0 hot)",
			capM.Lookup.Splits, capM.Load.HotSplits)
	}
	if hotM.Lookup.Splits != 3 || hotM.Load.HotSplits != 3 {
		t.Errorf("hot index: %d splits (%d hot), want 3 (3 hot)",
			hotM.Lookup.Splits, hotM.Load.HotSplits)
	}

	// The capacity run never touched the rate plane: its stored buckets
	// must be byte-identical to their normalized form.
	if d := diffImages(substrateImage(t, capD), capImg); d != "" {
		t.Errorf("plane-off buckets carry rate state:\n%s", d)
	}

	rep, err := hotIx.Scrub(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Splitting is what cools a leaf: each child inherited Rate/2 = 4,
	// below the threshold of 8, so the settled tree reports no hot leaves
	// — the plane sheds load exactly by halving it.
	if rep.HotLeaves != 0 {
		t.Errorf("scrub saw %d hot leaves after settling, want 0", rep.HotLeaves)
	}
}

// TestHotLeafAtDepthBound pins the plane's behavior when a hot leaf
// cannot split: at the a-priori depth bound D the split is skipped (an
// overflow, like a capacity split would be), the leaf keeps its heat,
// and Scrub's HotLeaves gauge is how an operator sees it.
func TestHotLeafAtDepthBound(t *testing.T) {
	d := dht.NewLocal()
	ix, err := New(d, Config{
		SplitThreshold: 1000, MergeThreshold: 0, Depth: 2,
		HotSplitRate: 4, clock: func() int64 { return 1 },
	})
	if err != nil {
		t.Fatal(err)
	}
	// Bit-reversed i/8: the root splits at rate 4 (depth 1 -> 2), its two
	// children each reach rate 2+2 = 4 but sit at the depth bound.
	for _, i := range []int{0, 4, 2, 6, 1, 5, 3, 7} {
		if _, err := ix.Insert(record.Record{Key: float64(i) / 8}); err != nil {
			t.Fatalf("insert %d/8: %v", i, err)
		}
	}
	if got := ix.Overflows(); got != 2 {
		t.Errorf("overflows = %d, want 2 (one per depth-bounded hot child)", got)
	}
	rep, err := ix.Scrub(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.HotLeaves != 2 {
		t.Errorf("scrub saw %d hot leaves, want 2", rep.HotLeaves)
	}
}

// herdDHT gates Get once armed, so a test can hold a thundering herd in
// flight, and counts the physical fetches that reach the substrate.
type herdDHT struct {
	*dht.Local
	gate    atomic.Bool
	release chan struct{}
	gets    atomic.Int64
}

func (h *herdDHT) Get(ctx context.Context, key string) (dht.Value, error) {
	h.gets.Add(1)
	if h.gate.Load() {
		select {
		case <-h.release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return h.Local.Get(ctx, key)
}

// TestCoalescedSearchHerd drives the thundering herd through the full
// index stack: N concurrent searches for one hot key walk the same probe
// sequence, and with Config.CoalesceGets the in-flight fetches collapse
// — the substrate sees fewer physical gets than the searches issued
// logical ones, with the difference accounted in CoalescedGets.
func TestCoalescedSearchHerd(t *testing.T) {
	h := &herdDHT{Local: dht.NewLocal(), release: make(chan struct{})}
	ix, err := New(h, Config{SplitThreshold: 8, MergeThreshold: 0, Depth: 8, CoalesceGets: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := ix.Insert(record.Record{Key: float64(i) / 32}); err != nil {
			t.Fatal(err)
		}
	}

	const herd = 16
	hot := 5.0 / 32
	before := h.gets.Load()
	h.gate.Store(true)
	var wg sync.WaitGroup
	errs := make([]error, herd)
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = ix.Search(hot)
		}(i)
	}
	// Every search opens with the same probe; wait until the leader is
	// parked inside the gated substrate get, give the followers a moment
	// to pile onto its flight, then open the gate.
	for h.gets.Load() == before {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	close(h.release)
	wg.Wait()
	h.gate.Store(false)

	for i, err := range errs {
		if err != nil {
			t.Fatalf("search %d: %v", i, err)
		}
	}
	m := ix.Metrics()
	if m.Load.CoalescedGets == 0 {
		t.Error("herd searches coalesced no gets")
	}
	phys := h.gets.Load() - before
	logical := phys + m.Load.CoalescedGets
	if phys >= logical {
		t.Errorf("physical gets %d not reduced below logical %d", phys, logical)
	}
}
