// Package bitlabel implements the label algebra of the LHT space-partition
// tree (Tang & Zhou, ICDCS 2008, sections 3-4).
//
// Every node of the partition tree carries a label: the virtual root is
// "#", and every other node's label is "#" followed by the bit string of
// the edges on the path from the virtual root. The edge from the virtual
// root to the regular root is labeled 0, so every non-virtual label starts
// with "#0". Left edges append 0, right edges append 1.
//
// The package provides the four label functions the paper defines:
//
//   - Name (f_n, Definition 1): the naming function mapping each leaf label
//     bijectively onto an internal-node label (Theorem 1), used as the DHT
//     key of the corresponding leaf bucket.
//   - NextName (f_nn, Definition 2): the next-naming function used by the
//     lookup binary search to skip prefixes that share a name.
//   - RightNeighbor / LeftNeighbor (f_rn / f_ln, Definition 3): the branch
//     enumeration used by range-query forwarding.
//   - LCA: the lowest common ancestor used by the general range case.
//
// A Label packs its bits into a uint64, so depths up to MaxBits are
// supported; the paper's experiments use D = 20.
package bitlabel

import (
	"errors"
	"fmt"
	"math/bits"
	"strings"
)

// MaxBits is the maximum number of bits a Label can hold. It bounds the
// maximum depth D of the partition tree this package can represent.
const MaxBits = 62

// Label is a node label of the space-partition tree. The zero value is the
// virtual root "#".
//
// Internally the bit string is stored as an unsigned integer whose most
// significant used bit is the first (root-edge) bit, together with the bit
// count. Labels are values; all operations return new Labels.
type Label struct {
	val uint64 // bit string interpreted as a big-endian integer
	n   uint8  // number of bits
}

// Root is the virtual-root label "#".
var Root = Label{}

// TreeRoot is the regular root label "#0", the single leaf of an empty tree.
var TreeRoot = Label{val: 0, n: 1}

var (
	// ErrBadLabel reports a malformed label string.
	ErrBadLabel = errors.New("bitlabel: malformed label")
	// ErrTooDeep reports a label exceeding MaxBits bits.
	ErrTooDeep = errors.New("bitlabel: label exceeds MaxBits bits")
)

// Parse converts a textual label such as "#0110" into a Label. The string
// must start with '#', continue with only '0' and '1' characters, and any
// first bit must be 0 (the virtual-root edge).
func Parse(s string) (Label, error) {
	if len(s) == 0 || s[0] != '#' {
		return Label{}, fmt.Errorf("%w: %q must start with '#'", ErrBadLabel, s)
	}
	body := s[1:]
	if len(body) > MaxBits {
		return Label{}, fmt.Errorf("%w: %q has %d bits", ErrTooDeep, s, len(body))
	}
	l := Label{}
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '0':
			l = l.Child(0)
		case '1':
			l = l.Child(1)
		default:
			return Label{}, fmt.Errorf("%w: %q contains %q", ErrBadLabel, s, body[i])
		}
	}
	if l.n > 0 && l.Bit(0) != 0 {
		return Label{}, fmt.Errorf("%w: %q first bit must be 0", ErrBadLabel, s)
	}
	return l, nil
}

// MustParse is Parse for tests and constants; it panics on error.
func MustParse(s string) Label {
	l, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return l
}

// String renders the label in the paper's notation, e.g. "#0100".
func (l Label) String() string {
	var b strings.Builder
	b.Grow(int(l.n) + 1)
	b.WriteByte('#')
	for i := 0; i < int(l.n); i++ {
		b.WriteByte('0' + byte(l.Bit(i)))
	}
	return b.String()
}

// Key returns the label's DHT-key form. It is the same as String; defined
// separately so call sites read as intent ("use as DHT key").
func (l Label) Key() string { return l.String() }

// Len returns the number of bits in the label. The virtual root has length
// 0 and the regular root "#0" has length 1. Note the paper measures label
// length in characters including '#'; that is Len()+1.
func (l Label) Len() int { return int(l.n) }

// IsRoot reports whether l is the virtual root "#".
func (l Label) IsRoot() bool { return l.n == 0 }

// Bit returns the i-th bit (0-indexed from the root edge) as 0 or 1.
// It panics if i is out of range: label bits are always iterated with
// bounds established by Len.
func (l Label) Bit(i int) int {
	if i < 0 || i >= int(l.n) {
		panic(fmt.Sprintf("bitlabel: Bit(%d) out of range for %s", i, l))
	}
	return int(l.val>>(uint(l.n)-1-uint(i))) & 1
}

// LastBit returns the final bit of the label. It panics on the virtual
// root, which has no bits.
func (l Label) LastBit() int {
	if l.n == 0 {
		panic("bitlabel: LastBit of virtual root")
	}
	return int(l.val & 1)
}

// Child appends one edge bit, producing the left (0) or right (1) child
// label. It panics if the label is already MaxBits deep or bit is not 0 or
// 1; depth must be validated by the caller (the index layers bound D).
func (l Label) Child(bit int) Label {
	if bit != 0 && bit != 1 {
		panic(fmt.Sprintf("bitlabel: Child(%d): bit must be 0 or 1", bit))
	}
	if l.n >= MaxBits {
		panic(fmt.Sprintf("bitlabel: Child would exceed MaxBits on %s", l))
	}
	return Label{val: l.val<<1 | uint64(bit), n: l.n + 1}
}

// Left returns the left-child label (append 0).
func (l Label) Left() Label { return l.Child(0) }

// Right returns the right-child label (append 1).
func (l Label) Right() Label { return l.Child(1) }

// Parent returns the label with the final bit removed. It panics on the
// virtual root.
func (l Label) Parent() Label {
	if l.n == 0 {
		panic("bitlabel: Parent of virtual root")
	}
	return Label{val: l.val >> 1, n: l.n - 1}
}

// Sibling returns the label with the final bit flipped. It panics on the
// virtual root and on the regular root "#0", which has no sibling.
func (l Label) Sibling() Label {
	if l.n <= 1 {
		panic(fmt.Sprintf("bitlabel: Sibling of %s", l))
	}
	return Label{val: l.val ^ 1, n: l.n}
}

// Prefix returns the first k bits of the label. It panics if k is out of
// range [0, Len()].
func (l Label) Prefix(k int) Label {
	if k < 0 || k > int(l.n) {
		panic(fmt.Sprintf("bitlabel: Prefix(%d) out of range for %s", k, l))
	}
	return Label{val: l.val >> (uint(l.n) - uint(k)), n: uint8(k)}
}

// IsPrefixOf reports whether l is a (non-strict) prefix of other, i.e.
// whether l is an ancestor of or equal to other in the tree.
func (l Label) IsPrefixOf(other Label) bool {
	if l.n > other.n {
		return false
	}
	return other.Prefix(int(l.n)) == l
}

// Equal reports whether two labels are identical.
func (l Label) Equal(other Label) bool { return l == other }

// trailingRun returns the length of the maximal run of identical bits at
// the end of the label. The virtual root has run 0.
func (l Label) trailingRun() int {
	if l.n == 0 {
		return 0
	}
	var run int
	if l.val&1 == 1 {
		run = bits.TrailingZeros64(^l.val)
	} else {
		v := l.val
		if v == 0 {
			return int(l.n) // all bits are 0
		}
		run = bits.TrailingZeros64(v)
	}
	if run > int(l.n) {
		run = int(l.n)
	}
	return run
}

// Name implements the naming function f_n of Definition 1: it strips the
// maximal trailing run of the label's last bit.
//
//	f_n(p011*) = p0,   f_n(p100*) = p1,   f_n(#00*) = #.
//
// For every leaf label the result is a distinct internal-node label
// (Theorem 1), which LHT uses as the leaf bucket's DHT key. Name panics on
// the virtual root, which is not a valid leaf label.
func (l Label) Name() Label {
	if l.n == 0 {
		panic("bitlabel: Name of virtual root")
	}
	return l.Prefix(int(l.n) - l.trailingRun())
}

// NextName implements the next-naming function f_nn of Definition 2 for a
// prefix x = l of the bit string mu. It returns the shortest prefix of mu
// that strictly extends l and ends with a bit different from l's last bit:
// the first prefix of mu past l that is mapped to a different name.
//
// ok is false when mu has no such bit (every bit of mu after l equals l's
// last bit), in which case the lookup binary search has exhausted the
// candidate space above l. NextName panics if l is not a proper prefix of
// mu or l is the virtual root.
func (l Label) NextName(mu Label) (next Label, ok bool) {
	if l.n == 0 {
		panic("bitlabel: NextName of virtual root")
	}
	if !l.IsPrefixOf(mu) || l.n == mu.n {
		panic(fmt.Sprintf("bitlabel: NextName: %s is not a proper prefix of %s", l, mu))
	}
	last := l.LastBit()
	for i := int(l.n); i < int(mu.n); i++ {
		if mu.Bit(i) != last {
			return mu.Prefix(i + 1), true
		}
	}
	return Label{}, false
}

// RightNeighbor implements the right-neighbor function f_rn of Definition
// 3: the label of the nearest right branch node of l, obtained by
// stripping the trailing 1s and flipping the resulting final 0 to 1.
//
// ok is false when l lies on the rightmost path of the tree (l = #01*),
// where the paper maps f_rn(x) = x; callers treat that as "no branch to
// the right". RightNeighbor panics on the virtual root.
func (l Label) RightNeighbor() (branch Label, ok bool) {
	if l.n == 0 {
		panic("bitlabel: RightNeighbor of virtual root")
	}
	// Strip the trailing run of 1s (possibly empty).
	ones := bits.TrailingZeros64(^l.val)
	if ones >= int(l.n) {
		ones = int(l.n) // cannot happen for valid labels (first bit is 0)
	}
	rest := l.Prefix(int(l.n) - ones)
	if rest.n <= 1 {
		// l = #01*: already rightmost.
		return l, false
	}
	// rest ends with 0; flip it to 1.
	return Label{val: rest.val | 1, n: rest.n}, true
}

// LeftNeighbor implements the left-neighbor function f_ln of Definition 3:
// the label of the nearest left branch node of l, obtained by stripping
// the trailing 0s and flipping the resulting final 1 to 0.
//
// ok is false when l lies on the leftmost path of the tree (l = #00*).
// LeftNeighbor panics on the virtual root.
func (l Label) LeftNeighbor() (branch Label, ok bool) {
	if l.n == 0 {
		panic("bitlabel: LeftNeighbor of virtual root")
	}
	var zeros int
	if l.val == 0 {
		zeros = int(l.n)
	} else {
		zeros = bits.TrailingZeros64(l.val)
	}
	if zeros >= int(l.n)-1 {
		// l = #00*: already leftmost. (The first bit is always 0, so a
		// run of zeros reaching bit 1 means the whole label is zeros.)
		return l, false
	}
	rest := l.Prefix(int(l.n) - zeros)
	// rest ends with 1; flip it to 0.
	return Label{val: rest.val &^ 1, n: rest.n}, true
}

// LCA returns the lowest common ancestor of two labels: their longest
// common prefix.
func LCA(a, b Label) Label {
	n := int(a.n)
	if int(b.n) < n {
		n = int(b.n)
	}
	for i := 0; i < n; i++ {
		if a.Bit(i) != b.Bit(i) {
			return a.Prefix(i)
		}
	}
	return a.Prefix(n)
}

// Compare orders labels by the position of their subtree in the key space:
// -1 if a's subtree lies entirely left of b's, +1 if right, and 0 if one
// is an ancestor of the other (their intervals nest).
func Compare(a, b Label) int {
	n := int(a.n)
	if int(b.n) < n {
		n = int(b.n)
	}
	for i := 0; i < n; i++ {
		ab, bb := a.Bit(i), b.Bit(i)
		switch {
		case ab < bb:
			return -1
		case ab > bb:
			return 1
		}
	}
	return 0
}
