// Package dst implements the Distributed Segment Tree (Zheng et al.,
// IPTPS 2006), the second baseline the paper positions itself against
// (section 2): DST "replicates data keys across all ancestors of a leaf,
// and leverages parallel lookups to reduce query latency. Due to
// replication, data insertion in DST is inefficient."
//
// DST is a *fixed-height* segment tree over the key space: the tree does
// not grow or shrink - every key conceptually has a depth-D leaf, and an
// insert sends one store message to the node of every prefix of the key,
// root included (D messages, but a single parallel round). Interior nodes
// whose segment outgrows the node capacity "saturate": they drop their
// replicas and queries descend to their children, which hold complete
// copies of their halves. Depth-D nodes never saturate; they are the
// ground truth.
//
// What this buys and costs, as the paper's related-work section says:
//
//   - exact-match queries are one DHT-lookup (probe the depth-D node
//     directly);
//   - range queries decompose into at most 2D canonical segments, all
//     probed in parallel - low latency, bandwidth proportional to the
//     decomposition (an absent node simply means an empty segment);
//   - every insert and delete pays D DHT-lookups of bandwidth - an
//     order of magnitude more maintenance than LHT's lookup + 1.
//
// The implementation mirrors internal/lht and internal/pht so the bench
// harness compares all three over identical substrates and workloads.
package dst

import (
	"context"
	"errors"
	"fmt"

	"lht/internal/bitlabel"
	"lht/internal/dht"
	"lht/internal/keyspace"
	"lht/internal/metrics"
	"lht/internal/record"
)

var (
	// ErrKeyNotFound reports a search or deletion for an unindexed key.
	ErrKeyNotFound = errors.New("dst: data key not found")
	// ErrCorrupt reports a tree state the algorithms cannot explain.
	ErrCorrupt = errors.New("dst: corrupt index state")
	// ErrBadRange reports a malformed range query.
	ErrBadRange = errors.New("dst: invalid range")
	// ErrConfig reports an invalid configuration.
	ErrConfig = errors.New("dst: invalid config")
)

// Cost reports the DHT traffic of one operation; see metrics.Cost.
type Cost = metrics.Cost

// Node is one segment-tree node as stored in the DHT under its label.
// Nodes exist only where data exists: an absent node is an empty segment.
type Node struct {
	Label bitlabel.Label
	// Saturated marks an interior node that dropped its replicas because
	// its segment outgrew the node capacity; queries descend past it.
	// Depth-D nodes never saturate.
	Saturated bool
	// Records are the replicated records of the node's segment (complete
	// unless Saturated).
	Records []record.Record
}

// Weight is the node's storage occupancy (records + label slot), the
// same accounting as the LHT and PHT buckets.
func (n *Node) Weight() int { return len(n.Records) + 1 }

// Interval returns the segment the node covers.
func (n *Node) Interval() keyspace.Interval { return keyspace.IntervalOf(n.Label) }

// String summarizes the node.
func (n *Node) String() string {
	kind := "replica"
	if n.Saturated {
		kind = "saturated"
	}
	return fmt.Sprintf("dst(%s, %s, %d records)", n.Label, kind, len(n.Records))
}

// Config tunes a DST index.
type Config struct {
	// SaturationThreshold is the interior-node capacity in record slots
	// (the analogue of theta_split for comparability): an interior node
	// reaching it stops replicating. Depth-D nodes ignore it.
	SaturationThreshold int
	// Depth is D, the fixed tree height in bits.
	Depth int
}

// DefaultConfig matches the paper's experiment defaults.
func DefaultConfig() Config { return Config{SaturationThreshold: 100, Depth: 20} }

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.SaturationThreshold < 4 {
		return fmt.Errorf("%w: SaturationThreshold %d < 4", ErrConfig, c.SaturationThreshold)
	}
	if c.Depth < 2 || c.Depth > keyspace.MaxDepth {
		return fmt.Errorf("%w: Depth %d outside [2, %d]", ErrConfig, c.Depth, keyspace.MaxDepth)
	}
	return nil
}

// Index is a DST index over a DHT substrate; create with New. The
// concurrency contract matches lht.Index: concurrent queries, exclusive
// writers.
type Index struct {
	// raw is the uncharged handle used to emulate *node-local* work: a
	// real DST insert sends one store message per level and the
	// receiving node applies the merge locally; this client-side
	// emulation reads the node's state through raw and charges only the
	// routed message through d.
	raw dht.DHT
	d   dht.DHT
	cfg Config
	c   *metrics.Counters
}

// New creates an index client. DST needs no bootstrap: an empty tree is
// simply the absence of nodes.
func New(d dht.DHT, cfg Config) (*Index, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &metrics.Counters{}
	return &Index{raw: d, d: dht.NewInstrumented(d, c), cfg: cfg, c: c}, nil
}

// Config returns the index configuration.
func (ix *Index) Config() Config { return ix.cfg }

// Metrics returns the cumulative cost counters of this client.
func (ix *Index) Metrics() metrics.Snapshot { return ix.c.Snapshot() }

// getNode fetches and type-asserts a node, charging cost.
func (ix *Index) getNode(key string, cost *Cost) (*Node, error) {
	cost.Lookups++
	v, err := ix.d.Get(context.Background(), key)
	if err != nil {
		return nil, err
	}
	n, ok := v.(*Node)
	if !ok {
		return nil, fmt.Errorf("%w: key %q holds %T, not a node", ErrCorrupt, key, v)
	}
	return n, nil
}

// peekNode reads a node through the uncharged handle (node-local work).
func (ix *Index) peekNode(label bitlabel.Label) (*Node, error) {
	v, err := ix.raw.Get(context.Background(), label.Key())
	if errors.Is(err, dht.ErrNotFound) {
		return nil, err
	}
	if err != nil {
		return nil, err
	}
	n, ok := v.(*Node)
	if !ok {
		return nil, fmt.Errorf("%w: key %q holds %T, not a node", ErrCorrupt, label.Key(), v)
	}
	return n, nil
}

// Insert adds a record (replacing any record with the same key): one
// routed store per tree level, all in one parallel round - the
// replication cost the paper's related-work section criticizes.
func (ix *Index) Insert(rec record.Record) (Cost, error) {
	var cost Cost
	if err := keyspace.CheckKey(rec.Key); err != nil {
		return cost, err
	}
	mu, err := keyspace.Mu(rec.Key, ix.cfg.Depth)
	if err != nil {
		return cost, err
	}
	cost.Steps = 1 // the per-level stores go out in parallel
	for level := 1; level <= mu.Len(); level++ {
		label := mu.Prefix(level)
		n, err := ix.peekNode(label)
		switch {
		case errors.Is(err, dht.ErrNotFound):
			n = &Node{Label: label, Records: []record.Record{rec}}
		case err != nil:
			return cost, err
		case n.Saturated:
			// Nothing to store here; the message is still sent (the
			// sender cannot know), so it is still charged below.
		default:
			storeIn(n, rec)
			if label.Len() < ix.cfg.Depth && n.Weight() >= ix.cfg.SaturationThreshold {
				n.Saturated = true
				n.Records = nil
				ix.c.AddSplits(1) // saturation events stand in for splits
			}
		}
		// One routed store message per level.
		cost.Lookups++
		ix.c.AddMovedRecords(1)
		if err := ix.d.Put(context.Background(), label.Key(), n); err != nil {
			return cost, fmt.Errorf("dst: insert put %s: %w", label, err)
		}
	}
	ix.c.AddMaintLookups(int64(mu.Len() - 1)) // everything beyond the leaf store is replication upkeep
	return cost, nil
}

// storeIn appends or replaces rec in n.
func storeIn(n *Node, rec record.Record) {
	if i := record.FindByKey(n.Records, rec.Key); i >= 0 {
		n.Records[i] = rec
		return
	}
	n.Records = append(n.Records, rec)
}

// Delete removes the record from every level of its path (one routed
// message per level, like Insert), or returns ErrKeyNotFound.
func (ix *Index) Delete(delta float64) (Cost, error) {
	var cost Cost
	if err := keyspace.CheckKey(delta); err != nil {
		return cost, err
	}
	mu, err := keyspace.Mu(delta, ix.cfg.Depth)
	if err != nil {
		return cost, err
	}
	// Check existence at the ground-truth level first (one probe).
	leaf, err := ix.getNode(mu.Key(), &cost)
	cost.Steps++
	if errors.Is(err, dht.ErrNotFound) {
		return cost, fmt.Errorf("%w: %v", ErrKeyNotFound, delta)
	}
	if err != nil {
		return cost, err
	}
	if record.FindByKey(leaf.Records, delta) < 0 {
		return cost, fmt.Errorf("%w: %v", ErrKeyNotFound, delta)
	}
	cost.Steps++ // the per-level removals go out in parallel
	for level := 1; level <= mu.Len(); level++ {
		label := mu.Prefix(level)
		n, err := ix.peekNode(label)
		if errors.Is(err, dht.ErrNotFound) {
			continue
		}
		if err != nil {
			return cost, err
		}
		cost.Lookups++
		if i := record.FindByKey(n.Records, delta); i >= 0 {
			n.Records[i] = n.Records[len(n.Records)-1]
			n.Records = n.Records[:len(n.Records)-1]
		}
		if len(n.Records) == 0 && !n.Saturated {
			if err := ix.d.Remove(context.Background(), label.Key()); err != nil {
				return cost, fmt.Errorf("dst: delete remove %s: %w", label, err)
			}
			continue
		}
		if err := ix.d.Put(context.Background(), label.Key(), n); err != nil {
			return cost, fmt.Errorf("dst: delete put %s: %w", label, err)
		}
	}
	if cost.Lookups > 1 {
		ix.c.AddMaintLookups(int64(cost.Lookups - 1))
	}
	return cost, nil
}

// Search answers an exact-match query with a single DHT-lookup: the
// depth-D node of the key's path holds the ground truth. This is the
// flip side of DST's expensive insertion.
func (ix *Index) Search(delta float64) (record.Record, Cost, error) {
	var cost Cost
	if err := keyspace.CheckKey(delta); err != nil {
		return record.Record{}, cost, err
	}
	mu, err := keyspace.Mu(delta, ix.cfg.Depth)
	if err != nil {
		return record.Record{}, cost, err
	}
	n, err := ix.getNode(mu.Key(), &cost)
	cost.Steps = cost.Lookups
	if errors.Is(err, dht.ErrNotFound) {
		return record.Record{}, cost, fmt.Errorf("%w: %v", ErrKeyNotFound, delta)
	}
	if err != nil {
		return record.Record{}, cost, err
	}
	if i := record.FindByKey(n.Records, delta); i >= 0 {
		return n.Records[i], cost, nil
	}
	return record.Record{}, cost, fmt.Errorf("%w: %v", ErrKeyNotFound, delta)
}
