package record

import (
	"testing"
)

func TestString(t *testing.T) {
	r := Record{Key: 0.25, Value: []byte("v")}
	if got := r.String(); got != `{0.25: "v"}` {
		t.Errorf("String = %q", got)
	}
}

func TestSortByKey(t *testing.T) {
	rs := []Record{{Key: 0.9}, {Key: 0.1}, {Key: 0.5}}
	SortByKey(rs)
	if rs[0].Key != 0.1 || rs[1].Key != 0.5 || rs[2].Key != 0.9 {
		t.Errorf("SortByKey = %v", rs)
	}
}

func TestFindByKey(t *testing.T) {
	rs := []Record{{Key: 0.9}, {Key: 0.1}, {Key: 0.5}}
	if i := FindByKey(rs, 0.1); i != 1 {
		t.Errorf("FindByKey(0.1) = %d", i)
	}
	if i := FindByKey(rs, 0.2); i != -1 {
		t.Errorf("FindByKey(0.2) = %d", i)
	}
	if i := FindByKey(nil, 0.2); i != -1 {
		t.Errorf("FindByKey(nil) = %d", i)
	}
}

func TestFilterRange(t *testing.T) {
	rs := []Record{{Key: 0.1}, {Key: 0.3}, {Key: 0.5}, {Key: 0.7}}
	got := FilterRange(nil, rs, 0.3, 0.7)
	if len(got) != 2 || got[0].Key != 0.3 || got[1].Key != 0.5 {
		t.Errorf("FilterRange = %v", got)
	}
	// Appends to dst.
	got = FilterRange(got, rs, 0, 0.2)
	if len(got) != 3 || got[2].Key != 0.1 {
		t.Errorf("FilterRange append = %v", got)
	}
	// Half-open: hi excluded.
	if out := FilterRange(nil, rs, 0.7, 0.7001); len(out) != 1 {
		t.Errorf("boundary FilterRange = %v", out)
	}
}
