// Command lht-dump inspects the partition tree of a live LHT cluster: it
// walks the leaves left to right and prints the tree structure, bucket
// occupancy, and depth/occupancy histograms. An operator's view of how
// the index adapted to the data distribution (compare the paper's Fig. 2
// picture).
//
//	lht-dump -nodes 127.0.0.1:7001,127.0.0.1:7002
//	lht-dump -nodes ... -tree        # ASCII tree instead of the summary
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"lht"
	"lht/internal/tcpnet"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lht-dump:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("lht-dump", flag.ContinueOnError)
	var (
		nodes = fs.String("nodes", "127.0.0.1:7001", "comma-separated lht-node addresses")
		theta = fs.Int("theta", 100, "theta_split used by the index")
		depth = fs.Int("depth", 20, "maximum tree depth D")
		tree  = fs.Bool("tree", false, "print the ASCII tree instead of the summary")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}

	lht.RegisterGobTypes()
	client, err := tcpnet.DialContext(context.Background(), strings.Split(*nodes, ","))
	if err != nil {
		return err
	}
	defer func() { _ = client.Close() }()
	ix, err := lht.New(client, lht.Config{SplitThreshold: *theta, MergeThreshold: *theta / 2, Depth: *depth})
	if err != nil {
		return err
	}
	leaves, err := ix.Leaves()
	if err != nil {
		return err
	}
	if *tree {
		printTree(out, leaves)
		return nil
	}
	printSummary(out, leaves, *theta)
	return nil
}

// printTree renders each leaf as an indented line, depth first by key
// order, mirroring the space partition.
func printTree(out io.Writer, leaves []*lht.Bucket) {
	for _, b := range leaves {
		iv := b.Interval()
		indent := strings.Repeat("  ", b.Label.Len()-1)
		fmt.Fprintf(out, "%s%-24s [%0.6f, %0.6f)  %3d records\n",
			indent, b.Label, iv.Lo, iv.Hi, len(b.Records))
	}
}

func printSummary(out io.Writer, leaves []*lht.Bucket, theta int) {
	var (
		records  int
		minDepth = 1 << 30
		maxDepth int
		byDepth  = map[int]int{}
		occupied int
	)
	maxOcc := 0
	for _, b := range leaves {
		records += len(b.Records)
		d := b.Label.Len()
		byDepth[d]++
		if d < minDepth {
			minDepth = d
		}
		if d > maxDepth {
			maxDepth = d
		}
		if len(b.Records) > 0 {
			occupied++
		}
		if len(b.Records) > maxOcc {
			maxOcc = len(b.Records)
		}
	}
	fmt.Fprintf(out, "leaves:   %d (%d non-empty)\n", len(leaves), occupied)
	fmt.Fprintf(out, "records:  %d (avg %.1f per leaf, max %d, capacity %d)\n",
		records, avg(records, len(leaves)), maxOcc, theta-1)
	fmt.Fprintf(out, "depth:    min %d, max %d\n", minDepth, maxDepth)
	fmt.Fprintln(out, "depth histogram:")
	for d := minDepth; d <= maxDepth; d++ {
		n := byDepth[d]
		if n == 0 {
			continue
		}
		bar := strings.Repeat("#", scaled(n, len(leaves), 50))
		fmt.Fprintf(out, "  %2d: %5d %s\n", d, n, bar)
	}
}

func avg(total, n int) float64 {
	if n == 0 {
		return 0
	}
	return float64(total) / float64(n)
}

// scaled maps n/total onto a bar of at most width chars (at least 1 for
// nonzero n).
func scaled(n, total, width int) int {
	if total == 0 || n == 0 {
		return 0
	}
	w := n * width / total
	if w == 0 {
		w = 1
	}
	return w
}
