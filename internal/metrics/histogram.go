package metrics

// Log-bucketed latency histograms. Recording is one atomic add into a
// power-of-two bucket (no locks, no allocation), so instrumentation can
// sit on the hottest paths of an index shared across goroutines.
// Snapshots are plain value types (fixed-size arrays, so they stay
// comparable like the rest of Snapshot) that merge and subtract
// component-wise, which is what lets per-experiment latency be computed
// as snapshot differences and per-client histograms roll up into a
// process-wide aggregate.

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// NumLatencyBuckets is the number of histogram buckets. Bucket 0 holds
// non-positive durations; bucket i (1 <= i < NumLatencyBuckets-1) holds
// durations in [2^(i-1), 2^i) nanoseconds; the last bucket holds
// everything from ~4.6 minutes up.
const NumLatencyBuckets = 40

// latencyBucket maps a duration to its bucket index.
func latencyBucket(d time.Duration) int {
	n := d.Nanoseconds()
	if n <= 0 {
		return 0
	}
	b := bits.Len64(uint64(n))
	if b >= NumLatencyBuckets {
		return NumLatencyBuckets - 1
	}
	return b
}

// BucketUpper returns the exclusive upper bound of bucket i in
// nanoseconds (2^i), or math.MaxInt64 for the unbounded last bucket.
func BucketUpper(i int) time.Duration {
	if i >= NumLatencyBuckets-1 {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(int64(1) << uint(i))
}

// Histogram is a race-safe log-bucketed latency histogram. The zero
// value is ready to use.
type Histogram struct {
	counts [NumLatencyBuckets]atomic.Int64
	sum    atomic.Int64 // nanoseconds
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.counts[latencyBucket(d)].Add(1)
	if d > 0 {
		h.sum.Add(d.Nanoseconds())
	}
}

// Merge adds a snapshot's contents into h, atomically per bucket, so it
// can run concurrently with Observe (e.g. rolling worker histograms into
// a shared one).
func (h *Histogram) Merge(s HistogramSnapshot) {
	for i, n := range s.Counts {
		if n != 0 {
			h.counts[i].Add(n)
		}
	}
	if s.Sum != 0 {
		h.sum.Add(s.Sum)
	}
}

// Snapshot returns a point-in-time copy of the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Sum = h.sum.Load()
	return s
}

// reset zeroes the histogram.
func (h *Histogram) reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.sum.Store(0)
}

// HistogramSnapshot is a point-in-time copy of a Histogram: per-bucket
// counts plus the sum of all recorded durations in nanoseconds.
type HistogramSnapshot struct {
	Counts [NumLatencyBuckets]int64
	Sum    int64
}

// Count returns the total number of recorded observations.
func (s HistogramSnapshot) Count() int64 {
	var n int64
	for _, c := range s.Counts {
		n += c
	}
	return n
}

// Mean returns the average recorded duration, or 0 when empty.
func (s HistogramSnapshot) Mean() time.Duration {
	n := s.Count()
	if n == 0 {
		return 0
	}
	return time.Duration(s.Sum / n)
}

// Quantile returns an estimate of the p-th percentile (0 <= p <= 100)
// by nearest rank over the buckets; the returned value is the upper
// bound of the bucket holding that rank, i.e. within a factor of two of
// the true latency. Returns 0 for an empty histogram.
func (s HistogramSnapshot) Quantile(p float64) time.Duration {
	total := s.Count()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(p / 100 * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			if i == 0 {
				return 0
			}
			return BucketUpper(i)
		}
	}
	return BucketUpper(NumLatencyBuckets - 1)
}

// Merge returns the component-wise sum s + o.
func (s HistogramSnapshot) Merge(o HistogramSnapshot) HistogramSnapshot {
	for i, c := range o.Counts {
		s.Counts[i] += c
	}
	s.Sum += o.Sum
	return s
}

// Sub returns the component-wise difference s - o, for measuring one
// experiment or operation window.
func (s HistogramSnapshot) Sub(o HistogramSnapshot) HistogramSnapshot {
	for i, c := range o.Counts {
		s.Counts[i] -= c
	}
	s.Sum -= o.Sum
	return s
}
