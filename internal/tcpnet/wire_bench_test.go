package tcpnet

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"net"
	"testing"

	"lht/internal/dht"
)

// BenchmarkFrameEncode measures pure codec cost: building a put frame
// with a raw []byte value. Steady state allocates nothing — the frame
// buffer is pooled.
func BenchmarkFrameEncode(b *testing.B) {
	val := bytes.Repeat([]byte("x"), 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bufp := newFrame(dht.OpPut)
		frame := appendLenString(*bufp, "bench/key/000042")
		frame = append(frame, tagRaw)
		frame = append(frame, val...)
		*bufp = frame
		finishFrame(frame, uint64(i))
		putBuf(bufp)
	}
}

// BenchmarkFrameDecode measures pure decode cost: framing + cursor walk
// of a put request. The only allocation is the first iteration's buffer.
func BenchmarkFrameDecode(b *testing.B) {
	frame := appendLenString(*newFrame(dht.OpPut), "bench/key/000042")
	frame = append(frame, tagRaw)
	frame = append(frame, bytes.Repeat([]byte("x"), 256)...)
	finishFrame(frame, 7)
	raw := frame
	r := bytes.NewReader(raw)
	br := bufio.NewReader(r)
	buf := make([]byte, 0, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Reset(raw)
		br.Reset(r)
		body, err := readFrameBody(br, buf)
		if err != nil {
			b.Fatal(err)
		}
		buf = body
		c := cursor{b: body[frameHeaderLen:]}
		if _, err := c.lenBytes(); err != nil {
			b.Fatal(err)
		}
		if v := c.rest(); len(v) != 257 {
			b.Fatalf("value = %d bytes", len(v))
		}
	}
}

// benchCluster is one server + one client for end-to-end benchmarks.
func benchCluster(b *testing.B, opts ...Option) *Client {
	b.Helper()
	addrs := startBenchServers(b, 1)
	c, err := DialContext(context.Background(), addrs, opts...)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = c.Close() })
	return c
}

func startBenchServers(b *testing.B, n int) []string {
	b.Helper()
	addrs := make([]string, 0, n)
	for i := 0; i < n; i++ {
		srv := NewServer()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		go func() { _ = srv.Serve(ln) }()
		b.Cleanup(func() { _ = srv.Close() })
		addrs = append(addrs, ln.Addr().String())
	}
	return addrs
}

// BenchmarkWireGet / BenchmarkWirePut compare the full client round trip
// across codecs with a raw []byte value: run with -benchmem to see the
// allocs/op gap that ablation A8 gates on.
func BenchmarkWireGet(b *testing.B) {
	for _, w := range []struct {
		name string
		wire Wire
	}{{"binary", WireBinary}, {"gob", WireGob}} {
		b.Run(w.name, func(b *testing.B) {
			c := benchCluster(b, WithWire(w.wire))
			ctx := context.Background()
			if err := c.Put(ctx, "k", bytes.Repeat([]byte("x"), 256)); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Get(ctx, "k"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkWirePut(b *testing.B) {
	for _, w := range []struct {
		name string
		wire Wire
	}{{"binary", WireBinary}, {"gob", WireGob}} {
		b.Run(w.name, func(b *testing.B) {
			c := benchCluster(b, WithWire(w.wire))
			ctx := context.Background()
			val := bytes.Repeat([]byte("x"), 256)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.Put(ctx, "k", val); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWirePipelined measures the multiplexer's throughput win: many
// concurrent getters sharing one connection pool.
func BenchmarkWirePipelined(b *testing.B) {
	c := benchCluster(b)
	ctx := context.Background()
	if err := c.Put(ctx, "k", bytes.Repeat([]byte("x"), 256)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := c.Get(ctx, "k"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkWireGetBatch compares a 64-key batch across codecs.
func BenchmarkWireGetBatch(b *testing.B) {
	const n = 64
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("bk-%03d", i)
	}
	for _, w := range []struct {
		name string
		wire Wire
	}{{"binary", WireBinary}, {"gob", WireGob}} {
		b.Run(w.name, func(b *testing.B) {
			c := benchCluster(b, WithWire(w.wire))
			ctx := context.Background()
			kvs := make([]dht.KV, n)
			for i, k := range keys {
				kvs[i] = dht.KV{Key: k, Val: []byte("v-" + k)}
			}
			for _, err := range c.PutBatch(ctx, kvs) {
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, errs := c.GetBatch(ctx, keys)
				for _, err := range errs {
					if err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
