package dht

import (
	"errors"
	"testing"
	"time"
)

// fakeClock is a hand-stepped time source for breaker tests.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }

func newTestBreaker(clk *fakeClock, opens *int) *Breaker {
	return NewBreaker(BreakerConfig{
		Threshold:   3,
		Cooldown:    100 * time.Millisecond,
		MaxCooldown: time.Second,
		Seed:        7,
		Clock:       clk.now,
		OnOpen:      func() { *opens++ },
	})
}

func TestBreakerTripsAfterThreshold(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	var opens int
	b := newTestBreaker(clk, &opens)

	errBoom := errors.New("boom")
	for i := 0; i < 2; i++ {
		b.Failure(errBoom)
		if !b.Allow() || b.State() != BreakerClosed {
			t.Fatalf("breaker tripped after %d failures, threshold is 3", i+1)
		}
	}
	b.Failure(errBoom)
	if b.State() != BreakerOpen {
		t.Fatalf("state after 3rd failure = %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a call inside the cooldown")
	}
	if opens != 1 {
		t.Fatalf("OnOpen fired %d times, want 1", opens)
	}
	ue := b.Unavailable("n1")
	if !IsTransient(ue) {
		t.Fatal("UnavailableError must be transient so the policy layer retries past the cooldown")
	}
	if !IsUnavailable(ue) || !errors.Is(ue, errBoom) {
		t.Fatal("UnavailableError lost its type or cause")
	}
}

func TestBreakerHalfOpenProbeRecovers(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	var opens int
	b := newTestBreaker(clk, &opens)
	for i := 0; i < 3; i++ {
		b.Failure(errors.New("down"))
	}

	// Jitter keeps the window within [Cooldown/2, Cooldown); a full
	// Cooldown step is always past it.
	clk.advance(100 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("cooldown elapsed but probe was not admitted")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("second caller admitted while the probe slot is taken")
	}
	b.Success()
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("probe success did not close the breaker")
	}
	// A closed breaker needs a fresh run of Threshold failures to trip:
	// the backoff run reset with the success.
	b.Failure(errors.New("again"))
	b.Failure(errors.New("again"))
	if b.State() != BreakerClosed {
		t.Fatal("failure run survived a Success reset")
	}
}

func TestBreakerProbeFailureReopensLonger(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	var opens int
	b := newTestBreaker(clk, &opens)
	for i := 0; i < 3; i++ {
		b.Failure(errors.New("down"))
	}
	clk.advance(100 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("probe not admitted")
	}
	b.Failure(errors.New("still down"))
	if b.State() != BreakerOpen || opens != 2 {
		t.Fatalf("probe failure: state=%v opens=%d, want open/2", b.State(), opens)
	}
	// Second window is doubled: within [Cooldown, 2*Cooldown). Half a
	// base cooldown in, the breaker must still fast-fail.
	clk.advance(50 * time.Millisecond)
	if b.Allow() {
		t.Fatal("reopened breaker admitted a call before the doubled cooldown")
	}
	clk.advance(200 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("doubled cooldown elapsed but probe was not admitted")
	}
}

func TestBreakerCooldownCapped(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	var opens int
	b := newTestBreaker(clk, &opens)
	for trip := 0; trip < 12; trip++ {
		for i := 0; i < 3; i++ {
			b.Failure(errors.New("down"))
		}
		until, backing := b.Backoff()
		if !backing {
			t.Fatal("open breaker reports no backoff window")
		}
		if d := until.Sub(clk.now()); d > time.Second {
			t.Fatalf("trip %d cooldown %v exceeds MaxCooldown", trip, d)
		}
		// Step past the cap so the next iteration can claim its probe
		// slot; failing the probe is what escalates the trip count.
		clk.advance(time.Second)
		if !b.Allow() {
			t.Fatal("probe not admitted after max cooldown")
		}
	}
}

// TestBreakerCancelProbeReleasesSlot: a probe that ends with no verdict
// (cancelled mid-flight, e.g. a hedger killing its losing arm) must hand
// the slot back. Before CancelProbe existed this wedged the breaker:
// half-open with the slot claimed forever, every caller rejected, no
// backoff window reported, and no path back to closed without a restart.
func TestBreakerCancelProbeReleasesSlot(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	var opens int
	b := newTestBreaker(clk, &opens)
	for i := 0; i < 3; i++ {
		b.Failure(errors.New("down"))
	}
	clk.advance(100 * time.Millisecond)
	ok, probe := b.AllowProbe()
	if !ok || !probe {
		t.Fatalf("AllowProbe after cooldown = %v/%v, want probe admission", ok, probe)
	}
	if ok, _ := b.AllowProbe(); ok {
		t.Fatal("second caller admitted while the probe slot is taken")
	}
	b.CancelProbe()
	// The window already elapsed, so the very next caller must be
	// admitted as a fresh probe — not rejected by a still-claimed slot.
	ok, probe = b.AllowProbe()
	if !ok || !probe {
		t.Fatalf("AllowProbe after CancelProbe = %v/%v, want fresh probe", ok, probe)
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatal("fresh probe success did not close the breaker")
	}
	// Outside a held half-open slot CancelProbe is a no-op.
	b.CancelProbe()
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("CancelProbe on a closed breaker changed state")
	}
}

func TestBreakerBackoffClearsOnClose(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	var opens int
	b := newTestBreaker(clk, &opens)
	if _, backing := b.Backoff(); backing {
		t.Fatal("closed breaker reports a backoff window")
	}
	for i := 0; i < 3; i++ {
		b.Failure(errors.New("down"))
	}
	clk.advance(100 * time.Millisecond)
	b.Allow()
	b.Success()
	if _, backing := b.Backoff(); backing {
		t.Fatal("backoff window survived a Success close")
	}
}
