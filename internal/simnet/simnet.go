// Package simnet is the in-process network the simulated DHT substrates
// run on: a registry of addressable nodes with per-message accounting and
// failure injection. It stands in for the paper's LAN testbed; the
// index-layer measurements are network-scale independent (paper footnote
// 5), so the substrates only need faithful message *counts*, which simnet
// provides, plus the ability to take peers down to exercise churn.
//
// simnet is payload-agnostic: each substrate registers its node objects
// and performs direct method calls on what Send returns, charging one
// message per Send. Synchronous delivery keeps experiments deterministic.
package simnet

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

var (
	// ErrUnknownAddr reports a send to an address that was never
	// registered (or was unregistered).
	ErrUnknownAddr = errors.New("simnet: unknown address")
	// ErrUnreachable reports a send to a node currently down.
	ErrUnreachable = errors.New("simnet: peer unreachable")
	// ErrPartitioned reports a send blocked by a one-way link partition:
	// the destination is up, but this source cannot reach it.
	ErrPartitioned = errors.New("simnet: link partitioned")
)

// link identifies one directed src→dst edge. The empty source is "any
// caller that did not identify itself" (plain Send).
type link struct{ src, dst string }

// Network is the simulated network. Create with New.
type Network struct {
	mu    sync.RWMutex
	nodes map[string]any
	down  map[string]bool
	// cut holds directed partitioned links; Any as src or dst wildcards
	// that side, so a node can be cut off asymmetrically from everyone.
	cut map[link]bool
	// delay holds per-directed-link latency, charged as real sleep time
	// on delivery (zero value: synchronous delivery, as before).
	delay map[link]time.Duration

	messages atomic.Int64
}

// Any is the wildcard endpoint for SetPartition and SetLinkLatency.
const Any = "*"

// New returns an empty network.
func New() *Network {
	return &Network{
		nodes: make(map[string]any),
		down:  make(map[string]bool),
		cut:   make(map[link]bool),
		delay: make(map[link]time.Duration),
	}
}

// Register attaches a node object to an address, replacing any previous
// registration and clearing its down flag.
func (n *Network) Register(addr string, node any) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.nodes[addr] = node
	delete(n.down, addr)
}

// Unregister removes an address entirely (a departed peer).
func (n *Network) Unregister(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.nodes, addr)
	delete(n.down, addr)
}

// SetDown marks an address unreachable (true) or reachable (false)
// without removing it: an abrupt failure that stabilization must detect.
func (n *Network) SetDown(addr string, down bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.nodes[addr]; !ok {
		return
	}
	if down {
		n.down[addr] = true
	} else {
		delete(n.down, addr)
	}
}

// Down reports whether the address is currently marked unreachable.
func (n *Network) Down(addr string) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.down[addr]
}

// SetPartition cuts (on) or heals (off) the directed src→dst link:
// while cut, SendFrom(src, dst) fails with ErrPartitioned but the
// reverse direction is untouched — an asymmetric partition. Either
// endpoint may be Any, wildcarding that side (SetPartition(Any, addr,
// true) makes addr unreachable by everyone who identifies a source,
// without marking it down).
func (n *Network) SetPartition(src, dst string, on bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if on {
		n.cut[link{src, dst}] = true
	} else {
		delete(n.cut, link{src, dst})
	}
}

// SetLinkLatency attaches a one-way delivery delay to the directed
// src→dst link (Any wildcards an endpoint; the most specific match
// wins, exact link over wildcard). Zero removes the delay. The delay is
// charged as real sleep time in SendFrom, so simulated-substrate
// latency experiments see a genuinely slow peer.
func (n *Network) SetLinkLatency(src, dst string, d time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if d <= 0 {
		delete(n.delay, link{src, dst})
	} else {
		n.delay[link{src, dst}] = d
	}
}

// cutLocked reports whether src→dst delivery is blocked by a partition.
func (n *Network) cutLocked(src, dst string) bool {
	return n.cut[link{src, dst}] || n.cut[link{Any, dst}] || n.cut[link{src, Any}]
}

// delayLocked resolves the src→dst delivery delay, most specific first.
func (n *Network) delayLocked(src, dst string) time.Duration {
	if d, ok := n.delay[link{src, dst}]; ok {
		return d
	}
	if d, ok := n.delay[link{Any, dst}]; ok {
		return d
	}
	return n.delay[link{src, Any}]
}

// Send delivers one message to addr: it charges one message and returns
// the registered node object for the caller to invoke directly, or
// ErrUnknownAddr / ErrUnreachable. The message is charged even when
// delivery fails - a timeout consumes bandwidth too. Send carries no
// source identity, so only wildcard-source partitions and delays apply;
// substrates that know their own address use SendFrom.
func (n *Network) Send(addr string) (any, error) {
	return n.SendFrom("", addr)
}

// SendFrom is Send with an identified source, the hook the one-way
// partition and per-link latency knobs act on: a cut src→dst link fails
// with ErrPartitioned (charged — the sender's packets still leave), and
// a link delay sleeps before delivery.
func (n *Network) SendFrom(src, addr string) (any, error) {
	n.messages.Add(1)
	n.mu.RLock()
	node, ok := n.nodes[addr]
	down := n.down[addr]
	cut := n.cutLocked(src, addr)
	d := n.delayLocked(src, addr)
	n.mu.RUnlock()
	if d > 0 {
		time.Sleep(d)
	}
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownAddr, addr)
	}
	if down {
		return nil, fmt.Errorf("%w: %q", ErrUnreachable, addr)
	}
	if cut {
		return nil, fmt.Errorf("%w: %q -> %q", ErrPartitioned, src, addr)
	}
	return node, nil
}

// Peek returns the node object without charging a message; for test and
// harness introspection only.
func (n *Network) Peek(addr string) (any, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	node, ok := n.nodes[addr]
	return node, ok
}

// Addrs returns all registered addresses (up or down), in no particular
// order.
func (n *Network) Addrs() []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]string, 0, len(n.nodes))
	for a := range n.nodes {
		out = append(out, a)
	}
	return out
}

// Messages returns the total messages sent so far.
func (n *Network) Messages() int64 { return n.messages.Load() }

// ResetMessages zeroes the message counter (between experiment phases).
func (n *Network) ResetMessages() { n.messages.Store(0) }
