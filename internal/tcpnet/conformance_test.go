package tcpnet

import (
	"net"
	"testing"

	"lht/internal/dht"
	"lht/internal/dht/dhttest"
)

func TestClientConformance(t *testing.T) {
	factory := func(t *testing.T) dht.DHT {
		addrs := make([]string, 0, 3)
		for i := 0; i < 3; i++ {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			srv := NewServer()
			go func() { _ = srv.Serve(ln) }()
			t.Cleanup(func() { _ = srv.Close() })
			addrs = append(addrs, ln.Addr().String())
		}
		c, err := Dial(addrs)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = c.Close() })
		return c
	}
	dhttest.Run(t, factory, dhttest.Options{
		Keys:         120,
		ValueFactory: func(i int) dht.Value { return &payload{N: i} },
		ValueEqual: func(v dht.Value, i int) bool {
			p, ok := v.(*payload)
			return ok && p.N == i
		},
	})
}
