package simnet

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestRegisterSendPeek(t *testing.T) {
	n := New()
	n.Register("a", 42)

	v, err := n.Send("a")
	if err != nil || v.(int) != 42 {
		t.Fatalf("Send = %v, %v", v, err)
	}
	if n.Messages() != 1 {
		t.Fatalf("Messages = %d", n.Messages())
	}
	if v, ok := n.Peek("a"); !ok || v.(int) != 42 {
		t.Fatal("Peek failed")
	}
	if n.Messages() != 1 {
		t.Fatal("Peek must not charge messages")
	}
	if _, err := n.Send("ghost"); !errors.Is(err, ErrUnknownAddr) {
		t.Fatalf("Send to unknown = %v", err)
	}
	if n.Messages() != 2 {
		t.Fatal("failed sends must still be charged")
	}
}

func TestDownAndRecovery(t *testing.T) {
	n := New()
	n.Register("a", 1)
	n.SetDown("a", true)
	if !n.Down("a") {
		t.Fatal("Down not set")
	}
	if _, err := n.Send("a"); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("Send to down node = %v", err)
	}
	n.SetDown("a", false)
	if _, err := n.Send("a"); err != nil {
		t.Fatalf("Send after recovery = %v", err)
	}
	// SetDown on an unknown address is a no-op.
	n.SetDown("ghost", true)
	if n.Down("ghost") {
		t.Fatal("unknown addr marked down")
	}
	// Re-registering clears the down flag.
	n.SetDown("a", true)
	n.Register("a", 2)
	if n.Down("a") {
		t.Fatal("Register did not clear down flag")
	}
}

func TestUnregister(t *testing.T) {
	n := New()
	n.Register("a", 1)
	n.Register("b", 2)
	n.Unregister("a")
	if _, err := n.Send("a"); !errors.Is(err, ErrUnknownAddr) {
		t.Fatal("Unregister did not remove the node")
	}
	addrs := n.Addrs()
	if len(addrs) != 1 || addrs[0] != "b" {
		t.Fatalf("Addrs = %v", addrs)
	}
}

func TestResetMessages(t *testing.T) {
	n := New()
	n.Register("a", 1)
	for i := 0; i < 5; i++ {
		_, _ = n.Send("a")
	}
	n.ResetMessages()
	if n.Messages() != 0 {
		t.Fatal("ResetMessages failed")
	}
}

// TestOneWayPartition: cutting a→b blocks exactly that direction; the
// reverse link and anonymous Send stay up, and healing restores it.
func TestOneWayPartition(t *testing.T) {
	n := New()
	n.Register("a", 1)
	n.Register("b", 2)

	n.SetPartition("a", "b", true)
	if _, err := n.SendFrom("a", "b"); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("SendFrom across cut link = %v, want ErrPartitioned", err)
	}
	if _, err := n.SendFrom("b", "a"); err != nil {
		t.Fatalf("reverse direction blocked: %v", err)
	}
	if _, err := n.Send("b"); err != nil {
		t.Fatalf("anonymous Send caught by a specific-source cut: %v", err)
	}
	n.SetPartition("a", "b", false)
	if _, err := n.SendFrom("a", "b"); err != nil {
		t.Fatalf("healed link still cut: %v", err)
	}
}

// TestWildcardPartition: Any as source isolates a destination from every
// identified sender without marking it down; Any as destination cuts a
// source off from the world.
func TestWildcardPartition(t *testing.T) {
	n := New()
	n.Register("a", 1)
	n.Register("b", 2)
	n.Register("c", 3)

	n.SetPartition(Any, "b", true)
	if _, err := n.SendFrom("a", "b"); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("wildcard-source cut missed: %v", err)
	}
	if _, err := n.SendFrom("c", "b"); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("wildcard-source cut missed for c: %v", err)
	}
	if n.Down("b") {
		t.Fatal("partition must not mark the node down")
	}
	n.SetPartition(Any, "b", false)

	n.SetPartition("a", Any, true)
	if _, err := n.SendFrom("a", "c"); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("wildcard-destination cut missed: %v", err)
	}
	if _, err := n.SendFrom("b", "c"); err != nil {
		t.Fatalf("unrelated sender cut: %v", err)
	}
}

// TestLinkLatency: a per-link delay slows exactly that direction, and
// the exact link overrides a wildcard.
func TestLinkLatency(t *testing.T) {
	n := New()
	n.Register("a", 1)
	n.Register("b", 2)

	n.SetLinkLatency("a", "b", 30*time.Millisecond)
	start := time.Now()
	if _, err := n.SendFrom("a", "b"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("delayed link delivered in %v, want >= 30ms", d)
	}
	start = time.Now()
	if _, err := n.SendFrom("b", "a"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 20*time.Millisecond {
		t.Fatalf("reverse link took %v, want fast", d)
	}

	// Exact beats wildcard.
	n.SetLinkLatency(Any, "b", 80*time.Millisecond)
	start = time.Now()
	if _, err := n.SendFrom("a", "b"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d >= 80*time.Millisecond {
		t.Fatalf("exact link delay not preferred over wildcard (%v)", d)
	}
	// Clearing the exact link falls back to the wildcard.
	n.SetLinkLatency("a", "b", 0)
	start = time.Now()
	if _, err := n.SendFrom("a", "b"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 70*time.Millisecond {
		t.Fatalf("wildcard delay not applied after clearing exact (%v)", d)
	}
}

func TestConcurrentSends(t *testing.T) {
	n := New()
	n.Register("a", 1)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if _, err := n.Send("a"); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if n.Messages() != 800 {
		t.Fatalf("Messages = %d, want 800", n.Messages())
	}
}
