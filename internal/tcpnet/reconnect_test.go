package tcpnet

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"lht/internal/dht"
)

// TestReconnectAfterServerRestart: killing a server breaks the client's
// established connection; once the server is back, a single client call
// must recover by redialing within the same round trip (the broken pipe
// surfaces on the first attempt, the retry dials fresh).
func TestReconnectAfterServerRestart(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	srv := NewServer()
	go func() { _ = srv.Serve(ln) }()

	c, err := DialContext(context.Background(), []string{addr})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	if err := c.Put(context.Background(), "k", &payload{N: 1}); err != nil {
		t.Fatal(err)
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("port %s not immediately reusable: %v", addr, err)
	}
	srv2 := NewServer()
	go func() { _ = srv2.Serve(ln2) }()
	t.Cleanup(func() { _ = srv2.Close() })

	// The client still holds the dead connection; this call must detect
	// the broken pipe and reconnect without caller involvement.
	if err := c.Put(context.Background(), "k2", &payload{N: 2}); err != nil {
		t.Fatalf("Put after server restart = %v, want reconnect", err)
	}
	v, err := c.Get(context.Background(), "k2")
	if err != nil || v.(*payload).N != 2 {
		t.Fatalf("Get after reconnect = %v, %v", v, err)
	}
}

// TestServerKilledIsTransientAndPolicyRecovers is the fault-tolerance
// satellite: a server killed under a connected client makes requests fail
// with an error classified *transient* (never ErrNotFound), and a
// dht.Policy retrying with backoff rides out the outage while the server
// restarts.
func TestServerKilledIsTransientAndPolicyRecovers(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	srv := NewServer()
	go func() { _ = srv.Serve(ln) }()

	c, err := DialContext(context.Background(), []string{addr})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	if err := c.Put(context.Background(), "k", &payload{N: 1}); err != nil {
		t.Fatal(err)
	}

	// Kill the server mid-session: the client's connection is now broken
	// and redials are refused.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	_, err = c.Get(context.Background(), "k")
	if err == nil {
		t.Fatal("Get against a killed server succeeded")
	}
	if !dht.IsTransient(err) {
		t.Fatalf("outage not classified transient: %v", err)
	}
	if errors.Is(err, dht.ErrNotFound) {
		t.Fatalf("outage mislabelled as a missing key: %v", err)
	}

	// Bring the server back shortly; a policy-wrapped client started
	// during the outage must absorb it.
	restarted := make(chan *Server, 1)
	go func() {
		time.Sleep(50 * time.Millisecond)
		for i := 0; i < 100; i++ {
			ln2, err := net.Listen("tcp", addr)
			if err == nil {
				srv2 := NewServer()
				go func() { _ = srv2.Serve(ln2) }()
				restarted <- srv2
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		restarted <- nil
	}()

	p := dht.WithPolicy(c, dht.Policy{
		MaxAttempts: 60,
		BaseDelay:   20 * time.Millisecond,
		MaxDelay:    50 * time.Millisecond,
	})
	perr := p.Put(context.Background(), "k2", &payload{N: 2})
	srv2 := <-restarted
	if srv2 == nil {
		t.Skipf("port %s not reusable, cannot test recovery", addr)
	}
	t.Cleanup(func() { _ = srv2.Close() })
	if perr != nil {
		t.Fatalf("policy did not ride out the outage: %v", perr)
	}
	v, err := p.Get(context.Background(), "k2")
	if err != nil || v.(*payload).N != 2 {
		t.Fatalf("Get after recovery = %v, %v", v, err)
	}
}
