package bench

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"math"
	"math/rand"
	"net"
	"runtime"
	"sort"
	"time"

	"lht/internal/dht"
	"lht/internal/lht"
	"lht/internal/record"
	"lht/internal/tcpnet"
	"lht/internal/workload"
)

// The tcpnet-backed experiments ship lht buckets across a real socket, so
// the stored type must be gob-registered exactly as an embedding process
// (lht.RegisterGobTypes) would register it.
func init() { gob.Register(&lht.Bucket{}) }

// wireCluster is a set of in-process tcpnet servers backing the wire
// experiments.
type wireCluster struct {
	servers []*tcpnet.Server
	addrs   []string
}

// startWireCluster boots n servers. When want is non-empty the servers
// bind exactly those addresses, retrying briefly while the previous
// owner's socket winds down: consistent hashing — and with it the
// per-node batch grouping the servers count — is a function of the
// addresses, so rebinding them keeps sequential clusters comparable.
func startWireCluster(n int, want []string) (*wireCluster, error) {
	cl := &wireCluster{}
	for i := 0; i < n; i++ {
		var ln net.Listener
		var err error
		if len(want) > 0 {
			for try := 0; try < 200; try++ {
				ln, err = net.Listen("tcp", want[i])
				if err == nil {
					break
				}
				time.Sleep(5 * time.Millisecond)
			}
		} else {
			ln, err = net.Listen("tcp", "127.0.0.1:0")
		}
		if err != nil {
			cl.close()
			return nil, fmt.Errorf("bench: wire cluster listen: %w", err)
		}
		srv := tcpnet.NewServer()
		go func() { _ = srv.Serve(ln) }()
		cl.servers = append(cl.servers, srv)
		cl.addrs = append(cl.addrs, ln.Addr().String())
	}
	return cl, nil
}

func (cl *wireCluster) close() {
	for _, s := range cl.servers {
		_ = s.Close()
	}
}

// wireServed sums the cost-model counters the cluster's servers charged.
type wireServed struct {
	Lookups, FailedGets, BatchOps, BatchedKeys, RoundTrips int64
}

func (cl *wireCluster) served() wireServed {
	var tot wireServed
	for _, s := range cl.servers {
		f := s.Metrics().Flat()
		tot.Lookups += f.Lookups
		tot.FailedGets += f.FailedGets
		tot.BatchOps += f.BatchOps
		tot.BatchedKeys += f.BatchedKeys
		tot.RoundTrips += f.RoundTrips()
	}
	return tot
}

// wireValueSizes spans the payload range the codec ablation sweeps.
var wireValueSizes = []int{16, 256, 4096}

// RunWireAblation is ablation A8: the framed binary wire protocol versus
// the legacy gob wire, measured end to end over real TCP connections to
// in-process tcpnet servers. Three results: allocations per operation
// (the deterministic row the CI perf gate diffs), throughput (client
// kops/sec on Get plus batched bulk-load krecords/sec through the
// index), and Get tail latency.
//
// Before measuring, the run pins the two codecs to each other: the
// identical index workload over each wire must produce byte-identical
// tree state and byte-identical server-side cost-model counters — the
// codec may change how bytes travel, never what the index observes or
// what the cost model charges. Any divergence fails the run.
func RunWireAblation(o Options) (Result, Result, Result, error) {
	o = o.WithDefaults()
	allocs := Result{
		Name:   "A8",
		Title:  "Wire codec: allocations per operation (framed binary vs gob)",
		XLabel: "value size (bytes)",
		YLabel: "allocs/op",
	}
	thru := Result{
		Name:   "A8b",
		Title:  "Wire codec: throughput (framed binary vs gob)",
		XLabel: "value size (bytes)",
		YLabel: "kops/sec (Get) | krecords/sec (bulk load)",
	}
	tail := Result{
		Name:   "A8c",
		Title:  "Wire codec: Get tail latency (framed binary vs gob)",
		XLabel: "value size (bytes)",
		YLabel: "p99 microseconds",
	}

	if err := wireOracle(o); err != nil {
		return allocs, thru, tail, err
	}
	if err := wireCondOracle(o); err != nil {
		return allocs, thru, tail, err
	}

	arms := []struct {
		name string
		wire tcpnet.Wire
	}{
		{"binary", tcpnet.WireBinary},
		{"gob", tcpnet.WireGob},
	}
	xs := float64s(wireValueSizes)
	for _, arm := range arms {
		var getAllocs, putAllocs, getKops, loadRate, p99 []float64
		for _, vs := range wireValueSizes {
			st, err := measureWire(o, arm.wire, vs)
			if err != nil {
				return allocs, thru, tail, fmt.Errorf("bench: wire %s/%d: %w", arm.name, vs, err)
			}
			getAllocs = append(getAllocs, st.getAllocs)
			putAllocs = append(putAllocs, st.putAllocs)
			getKops = append(getKops, st.getKops)
			loadRate = append(loadRate, st.loadRate)
			p99 = append(p99, st.p99)
		}
		allocs.Series = append(allocs.Series,
			meanSeries(arm.name+" Get", xs, [][]float64{getAllocs}),
			meanSeries(arm.name+" Put", xs, [][]float64{putAllocs}))
		thru.Series = append(thru.Series,
			meanSeries(arm.name+" Get kops/s", xs, [][]float64{getKops}),
			meanSeries(arm.name+" load krec/s", xs, [][]float64{loadRate}))
		tail.Series = append(tail.Series,
			meanSeries(arm.name+" Get p99 us", xs, [][]float64{p99}))
	}
	return allocs, thru, tail, nil
}

// wireStats are one codec's measurements at one value size.
type wireStats struct {
	getAllocs float64 // allocations per Get round trip, min over reps
	putAllocs float64 // allocations per Put round trip, min over reps
	getKops   float64 // Get throughput, best rep
	p99       float64 // Get p99 latency in microseconds, best rep
	loadRate  float64 // batched index bulk load, krecords/sec, best rep
}

func measureWire(o Options, wire tcpnet.Wire, valSize int) (wireStats, error) {
	var st wireStats

	// Point ops against a single node: one server isolates codec cost from
	// key placement.
	cl, err := startWireCluster(1, nil)
	if err != nil {
		return st, err
	}
	defer cl.close()
	c, err := tcpnet.DialContext(context.Background(), cl.addrs, tcpnet.WithWire(wire))
	if err != nil {
		return st, err
	}
	defer func() { _ = c.Close() }()

	ctx := context.Background()
	val := bytes.Repeat([]byte("v"), valSize)
	if err := c.Put(ctx, "bench", val); err != nil {
		return st, err
	}
	n := 2 * o.Queries
	st.getAllocs, st.getKops, st.p99, err = measureOp(n, func(int) error {
		_, err := c.Get(ctx, "bench")
		return err
	})
	if err != nil {
		return st, err
	}
	st.putAllocs, _, _, err = measureOp(n, func(int) error {
		return c.Put(ctx, "bench", val)
	})
	if err != nil {
		return st, err
	}

	st.loadRate, err = measureLoad(o, wire, valSize)
	return st, err
}

// measureOp runs op n times per rep, three reps, and reports the minimum
// allocations per op across reps plus the throughput and p99 latency of
// the fastest rep. Allocations come from runtime.MemStats Mallocs deltas,
// which count the whole in-process round trip — client encode/decode,
// server service, and both ends' connection goroutines — so the number is
// an honest end-to-end cost, not just the client codec. The minimum
// across reps sheds warmup effects (pool fills, map growth) without
// averaging away the steady state.
func measureOp(n int, op func(int) error) (allocsPerOp, kops, p99us float64, err error) {
	for i := 0; i < n/10+1; i++ {
		if err := op(i); err != nil {
			return 0, 0, 0, err
		}
	}
	lat := make([]time.Duration, n)
	allocsPerOp = math.MaxFloat64
	best := time.Duration(math.MaxInt64)
	var ms0, ms1 runtime.MemStats
	for rep := 0; rep < 3; rep++ {
		runtime.ReadMemStats(&ms0)
		t0 := time.Now()
		for i := 0; i < n; i++ {
			s := time.Now()
			if err := op(i); err != nil {
				return 0, 0, 0, err
			}
			lat[i] = time.Since(s)
		}
		elapsed := time.Since(t0)
		runtime.ReadMemStats(&ms1)
		if a := float64(ms1.Mallocs-ms0.Mallocs) / float64(n); a < allocsPerOp {
			allocsPerOp = a
		}
		if elapsed < best {
			best = elapsed
			sorted := append([]time.Duration(nil), lat...)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
			p99us = float64(sorted[min(n-1, n*99/100)].Microseconds())
		}
	}
	kops = float64(n) / best.Seconds() / 1000
	return allocsPerOp, kops, p99us, nil
}

// measureLoad times a batched bulk load through the DHT batch plane:
// records ship as PutBatch rounds of 64 raw []byte values, several
// rounds in flight across a 3-node cluster, best of two runs, in
// krecords/sec. Raw values are the framed wire's sweet spot — they
// travel tag-prefixed with zero serialization work while the legacy wire
// gob-encodes every one — and in-flight rounds are the pipelined
// multiplexer's: the legacy wire admits one blocking request per
// connection, so concurrent rounds to the same node serialize.
func measureLoad(o Options, wire tcpnet.Wire, valSize int) (float64, error) {
	nrec := 8 * o.Queries
	val := bytes.Repeat([]byte("v"), valSize)
	kvs := make([]dht.KV, nrec)
	for i := range kvs {
		kvs[i] = dht.KV{Key: fmt.Sprintf("load/%06d", i), Val: val}
	}
	var best float64
	for rep := 0; rep < 2; rep++ {
		rate, err := loadOnce(wire, kvs)
		if err != nil {
			return 0, err
		}
		if rate > best {
			best = rate
		}
	}
	return best, nil
}

// loadOnce runs one timed load: loadWorkers goroutines strip-mine the
// records in rounds of loadBatch keys each.
func loadOnce(wire tcpnet.Wire, kvs []dht.KV) (float64, error) {
	const (
		loadBatch   = 64
		loadWorkers = 4
	)
	cl, err := startWireCluster(3, nil)
	if err != nil {
		return 0, err
	}
	defer cl.close()
	c, err := tcpnet.DialContext(context.Background(), cl.addrs, tcpnet.WithWire(wire))
	if err != nil {
		return 0, err
	}
	defer func() { _ = c.Close() }()

	ctx := context.Background()
	var chunks [][]dht.KV
	for len(kvs) > 0 {
		n := min(loadBatch, len(kvs))
		chunks = append(chunks, kvs[:n])
		kvs = kvs[n:]
	}
	t0 := time.Now()
	errs := make(chan error, loadWorkers)
	for w := 0; w < loadWorkers; w++ {
		go func(w int) {
			for i := w; i < len(chunks); i += loadWorkers {
				for _, err := range c.PutBatch(ctx, chunks[i]) {
					if err != nil {
						errs <- err
						return
					}
				}
			}
			errs <- nil
		}(w)
	}
	var firstErr error
	total := 0
	for w := 0; w < loadWorkers; w++ {
		if err := <-errs; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return 0, firstErr
	}
	for _, ch := range chunks {
		total += len(ch)
	}
	return float64(total) / time.Since(t0).Seconds() / 1000, nil
}

// wireOracle runs the identical index workload over each codec against
// clusters bound to the same addresses and requires byte-identical tree
// state and byte-identical server-side counters.
func wireOracle(o Options) error {
	var addrs []string
	binTree, binServed, err := wireOracleArm(o, &addrs, tcpnet.WireBinary)
	if err != nil {
		return fmt.Errorf("bench: wire oracle (binary): %w", err)
	}
	gobTree, gobServed, err := wireOracleArm(o, &addrs, tcpnet.WireGob)
	if err != nil {
		return fmt.Errorf("bench: wire oracle (gob): %w", err)
	}
	if !bytes.Equal(binTree, gobTree) {
		return fmt.Errorf("bench: tree state diverges across codecs: %d vs %d bytes", len(binTree), len(gobTree))
	}
	if binServed != gobServed {
		return fmt.Errorf("bench: cost-model counters diverge across codecs: binary %+v, gob %+v", binServed, gobServed)
	}
	if binServed.Lookups == 0 || binServed.BatchOps == 0 {
		return fmt.Errorf("bench: wire oracle workload did not exercise the cost model: %+v", binServed)
	}
	return nil
}

// wireOracleArm boots a 3-node cluster (fresh ports on the first call,
// recorded into addrs; the same ports on the second, so key ownership
// matches), runs a deterministic index workload over the given wire, and
// returns the gob-encoded leaves plus the summed server counters.
func wireOracleArm(o Options, addrs *[]string, wire tcpnet.Wire) ([]byte, wireServed, error) {
	cl, err := startWireCluster(3, *addrs)
	if err != nil {
		return nil, wireServed{}, err
	}
	defer cl.close()
	if len(*addrs) == 0 {
		*addrs = append(*addrs, cl.addrs...)
	}
	c, err := tcpnet.DialContext(context.Background(), cl.addrs, tcpnet.WithWire(wire))
	if err != nil {
		return nil, wireServed{}, err
	}
	defer func() { _ = c.Close() }()

	// Small thresholds so a small workload still splits and merges.
	ix, err := lht.New(c, lht.Config{SplitThreshold: 8, MergeThreshold: 6, Depth: 20, Aggregate: o.Agg})
	if err != nil {
		return nil, wireServed{}, err
	}
	rng := rand.New(rand.NewSource(o.Seed + 42))
	recs := make([]record.Record, 200)
	for i := range recs {
		recs[i] = record.Record{Key: rng.Float64(), Value: []byte(fmt.Sprintf("r%d", i))}
	}
	if _, err := ix.BulkLoad(recs); err != nil {
		return nil, wireServed{}, err
	}
	keys := make([]float64, 0, 120)
	for i := 0; i < 120; i++ {
		k := rng.Float64()
		keys = append(keys, k)
		if _, err := ix.Insert(record.Record{Key: k, Value: []byte("ins")}); err != nil {
			return nil, wireServed{}, err
		}
	}
	for i := 0; i < 40; i++ {
		if _, err := ix.Delete(keys[i]); err != nil {
			return nil, wireServed{}, err
		}
	}
	for i := 40; i < 80; i++ {
		if _, _, err := ix.Search(keys[i]); err != nil {
			return nil, wireServed{}, err
		}
	}
	for i := 0; i < 20; i++ {
		lo := rng.Float64() * 0.9
		if _, _, err := ix.Range(lo, lo+0.1); err != nil {
			return nil, wireServed{}, err
		}
	}
	leaves, err := ix.Leaves()
	if err != nil {
		return nil, wireServed{}, err
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(leaves); err != nil {
		return nil, wireServed{}, err
	}
	return buf.Bytes(), cl.served(), nil
}

// wireCondCost is the comparable slice of one client's cost counters the
// conditional-interleave oracle diffs across codecs.
type wireCondCost struct {
	Lookups, BatchOps, BatchedKeys            int64
	CASConflicts, WriterRetries, CASFallbacks int64
}

// wireCondOracle pins the conditional-write plane across codecs: one
// shared cluster, two index clients — one per wire — interleaving every
// mutation class (epoch-guarded inserts, deletes through RemoveIf, splits
// through CreateIf, merges) against the same tree. Both clients must read
// back byte-identical leaves, and re-running with the codecs' roles
// swapped on a rebound cluster must reproduce the same tree, the same
// server-side counters, and exactly transposed client-side costs — the
// codec may never leak into what a conditional op costs or stores.
func wireCondOracle(o Options) error {
	type armResult struct {
		tree   []byte
		even   wireCondCost // the client driving even-indexed ops
		odd    wireCondCost
		served wireServed
	}
	costOf := func(ix *lht.Index) wireCondCost {
		f := ix.Metrics().Flat()
		return wireCondCost{
			Lookups: f.Lookups, BatchOps: f.BatchOps, BatchedKeys: f.BatchedKeys,
			CASConflicts: f.CASConflicts, WriterRetries: f.WriterRetries, CASFallbacks: f.CASFallbacks,
		}
	}
	run := func(addrs *[]string, swap bool) (armResult, error) {
		var res armResult
		cl, err := startWireCluster(3, *addrs)
		if err != nil {
			return res, err
		}
		defer cl.close()
		if len(*addrs) == 0 {
			*addrs = append(*addrs, cl.addrs...)
		}
		wires := []tcpnet.Wire{tcpnet.WireBinary, tcpnet.WireGob}
		if swap {
			wires[0], wires[1] = wires[1], wires[0]
		}
		clients := make([]*lht.Index, 2)
		for i, w := range wires {
			c, err := tcpnet.DialContext(context.Background(), cl.addrs, tcpnet.WithWire(w))
			if err != nil {
				return res, err
			}
			defer func() { _ = c.Close() }()
			if clients[i], err = lht.New(c, lht.Config{SplitThreshold: 8, MergeThreshold: 6, Depth: 20}); err != nil {
				return res, err
			}
		}

		rng := rand.New(rand.NewSource(o.Seed + 43))
		keys := make([]float64, 160)
		for i := range keys {
			keys[i] = rng.Float64()
			if _, err := clients[i%2].Insert(record.Record{Key: keys[i], Value: []byte(fmt.Sprintf("c%d", i))}); err != nil {
				return res, fmt.Errorf("interleaved insert %d: %w", i, err)
			}
		}
		for i := 0; i < 60; i++ {
			// Each client deletes keys the other inserted, so the
			// epoch-guarded removes cross codecs.
			if _, err := clients[(i+1)%2].Delete(keys[i]); err != nil {
				return res, fmt.Errorf("interleaved delete %d: %w", i, err)
			}
		}
		for i := 60; i < 120; i++ {
			if _, _, err := clients[(i+1)%2].Search(keys[i]); err != nil {
				return res, fmt.Errorf("cross-codec search %d: %w", i, err)
			}
		}

		// Both clients must agree on the final bytes.
		var trees [2][]byte
		for i, ix := range clients {
			leaves, err := ix.Leaves()
			if err != nil {
				return res, err
			}
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(leaves); err != nil {
				return res, err
			}
			trees[i] = buf.Bytes()
		}
		if !bytes.Equal(trees[0], trees[1]) {
			return res, fmt.Errorf("the two codecs read different trees from one store: %d vs %d bytes", len(trees[0]), len(trees[1]))
		}
		res.tree = trees[0]
		res.even, res.odd = costOf(clients[0]), costOf(clients[1])
		res.served = cl.served()
		return res, nil
	}

	var addrs []string
	a, err := run(&addrs, false)
	if err != nil {
		return fmt.Errorf("bench: conditional wire oracle: %w", err)
	}
	b, err := run(&addrs, true)
	if err != nil {
		return fmt.Errorf("bench: conditional wire oracle (swapped): %w", err)
	}
	if !bytes.Equal(a.tree, b.tree) {
		return fmt.Errorf("bench: conditional interleave tree differs across codec role swap")
	}
	if a.served != b.served {
		return fmt.Errorf("bench: served counters differ across codec role swap: %+v vs %+v", a.served, b.served)
	}
	if a.even != b.even || a.odd != b.odd {
		return fmt.Errorf("bench: client cost counters leak the codec: %+v/%+v vs %+v/%+v", a.even, a.odd, b.even, b.odd)
	}
	if a.even.CASFallbacks != 0 || a.odd.CASFallbacks != 0 {
		return fmt.Errorf("bench: conditional ops fell back to fetch-verify on a native wire: %+v %+v", a.even, a.odd)
	}
	return nil
}

// Sweep dimensions: batched-operation cap, record payload size, leaf
// cache capacity, and query-arrival skew.
var (
	sweepBatchSizes = []int{1, 8, 64, 256}
	sweepValueSizes = []int{16, 64, 256, 1024}
	sweepSubstrates = []string{"local", "tcpnet", "tcpnet-gob"}
	// sweepCacheSizes caps the leaf cache well below the default 4096 so
	// eviction is visible at bench scale: a 2-bucket cache thrashes under
	// uniform queries, a 128-bucket one holds the whole working set.
	sweepCacheSizes = []int{2, 8, 32, 128}
	// sweepSkews are Zipf exponents for the query arrival process (0 =
	// uniform; the Zipf source needs s > 1): skew concentrates queries on
	// hot keys, which a capacity-bounded cache absorbs.
	sweepSkews = []float64{0, 1.01, 1.2, 1.5}
)

// sweepValueBase is the payload size held fixed while the batch-size
// dimension sweeps (and vice versa: sweepBatchBase while value size
// sweeps).
const (
	sweepValueBase = 64
	sweepBatchBase = 64
)

// RunSweep is the wire-protocol parameter sweep: one deterministic index
// workload — a batched bulk load of size records followed by exact-match
// searches and range sweeps — run across substrate {instrumented local
// map, tcpnet framed binary, tcpnet legacy gob} × batch size × leaf-cache
// setting × value size.
//
// It emits five results. The first carries the deterministic cost rows
// the CI perf gate diffs: round trips for the whole workload, per batch
// size, cache on and off. Round trips are counted client-side (Lookups -
// BatchedKeys + BatchOps), so they are identical across substrates and
// value sizes by construction — the run fails if any cell diverges,
// which pins the wire protocol to the cost model. The second and third
// report each substrate's measured throughput against batch size and
// value size. The fourth and fifth sweep the client cache itself —
// leaf-cache capacity under uniform queries, and query-arrival skew
// (Zipf s) with the cache off and on — both deterministic round-trip
// rows over the local substrate, also eligible for the gate.
func RunSweep(o Options, size int) ([]Result, error) {
	o = o.WithDefaults()
	rt := Result{
		Name:   "Sweep",
		Title:  fmt.Sprintf("Wire sweep: round trips per workload (%d records + %d queries)", size, o.Queries),
		XLabel: "batch size (keys)",
		YLabel: "round trips",
	}
	tpBatch := Result{
		Name:   "Sweepb",
		Title:  "Wire sweep: throughput vs batch size (cache off, 64 B values)",
		XLabel: "batch size (keys)",
		YLabel: "kops/sec",
	}
	tpValue := Result{
		Name:   "Sweepc",
		Title:  "Wire sweep: throughput vs value size (cache off, batch 64)",
		XLabel: "value size (bytes)",
		YLabel: "kops/sec",
	}

	// Batch-size dimension: substrate x batch x cache at the base value
	// size.
	rtRows := map[bool][]float64{}
	tpRows := map[string][]float64{}
	var rtBatchBase float64 // cache-off round trips at the base batch size
	for _, b := range sweepBatchSizes {
		for _, cache := range []bool{false, true} {
			var want float64
			for i, sub := range sweepSubstrates {
				cell, err := runSweepCell(o, sub, b, sweepValueBase, cache, 0, 0, size)
				if err != nil {
					return nil, fmt.Errorf("bench: sweep %s b=%d cache=%t: %w", sub, b, cache, err)
				}
				if i == 0 {
					want = cell.roundTrips
				} else if cell.roundTrips != want {
					return nil, fmt.Errorf(
						"bench: sweep round trips diverge at b=%d cache=%t: %s charges %g, %s charges %g",
						b, cache, sweepSubstrates[0], want, sub, cell.roundTrips)
				}
				if !cache {
					tpRows[sub] = append(tpRows[sub], cell.kops)
				}
			}
			rtRows[cache] = append(rtRows[cache], want)
			if !cache && b == sweepBatchBase {
				rtBatchBase = want
			}
		}
	}

	// Value-size dimension: substrate x value at the base batch size.
	// Round trips must not move with the payload.
	tp2Rows := map[string][]float64{}
	for _, vs := range sweepValueSizes {
		for _, sub := range sweepSubstrates {
			cell, err := runSweepCell(o, sub, sweepBatchBase, vs, false, 0, 0, size)
			if err != nil {
				return nil, fmt.Errorf("bench: sweep %s v=%d: %w", sub, vs, err)
			}
			if cell.roundTrips != rtBatchBase {
				return nil, fmt.Errorf(
					"bench: sweep round trips moved with value size at %s v=%d: %g vs %g",
					sub, vs, cell.roundTrips, rtBatchBase)
			}
			tp2Rows[sub] = append(tp2Rows[sub], cell.kops)
		}
	}

	bxs := float64s(sweepBatchSizes)
	rt.Series = append(rt.Series,
		meanSeries("cache off", bxs, [][]float64{rtRows[false]}),
		meanSeries("cache on", bxs, [][]float64{rtRows[true]}))
	for _, sub := range sweepSubstrates {
		tpBatch.Series = append(tpBatch.Series, meanSeries(sub, bxs, [][]float64{tpRows[sub]}))
		tpValue.Series = append(tpValue.Series, meanSeries(sub, float64s(sweepValueSizes), [][]float64{tp2Rows[sub]}))
	}

	// Cache-capacity dimension: the leaf cache capped at a few buckets up
	// to the whole working set, uniform queries, local substrate. The
	// deterministic round-trip rows pin the eviction policy: a bigger
	// cache never costs more.
	cacheRt := Result{
		Name:   "Sweepd",
		Title:  fmt.Sprintf("Cache sweep: round trips vs leaf-cache capacity (%d records + %d queries)", size, o.Queries),
		XLabel: "leaf cache capacity (buckets)",
		YLabel: "round trips",
	}
	var capRows []float64
	for _, cap := range sweepCacheSizes {
		cell, err := runSweepCell(o, "local", sweepBatchBase, sweepValueBase, true, cap, 0, size)
		if err != nil {
			return nil, fmt.Errorf("bench: cache sweep cap=%d: %w", cap, err)
		}
		capRows = append(capRows, cell.roundTrips)
	}
	cacheRt.Series = append(cacheRt.Series,
		meanSeries("cache on", float64s(sweepCacheSizes), [][]float64{capRows}))

	// Skew dimension: the query arrival process from uniform to heavily
	// Zipfian, cache off and on, local substrate. Off, every query costs
	// the same wherever it lands; on, skew concentrates arrivals on leaves
	// a small cache can hold, so the gap between the rows is the cache's
	// skew win — deterministic, gated.
	skewRt := Result{
		Name:   "Sweepe",
		Title:  fmt.Sprintf("Skew sweep: round trips vs query skew (%d records + %d queries)", size, o.Queries),
		XLabel: "query skew (Zipf s, 0 = uniform)",
		YLabel: "round trips",
	}
	skewRows := map[bool][]float64{}
	for _, s := range sweepSkews {
		for _, cache := range []bool{false, true} {
			cell, err := runSweepCell(o, "local", sweepBatchBase, sweepValueBase, cache, 0, s, size)
			if err != nil {
				return nil, fmt.Errorf("bench: skew sweep s=%g cache=%t: %w", s, cache, err)
			}
			skewRows[cache] = append(skewRows[cache], cell.roundTrips)
		}
	}
	skewRt.Series = append(skewRt.Series,
		meanSeries("cache off", sweepSkews, [][]float64{skewRows[false]}),
		meanSeries("cache on", sweepSkews, [][]float64{skewRows[true]}))

	return []Result{rt, tpBatch, tpValue, cacheRt, skewRt}, nil
}

// sweepCell is one parameter combination's measurement.
type sweepCell struct {
	roundTrips float64
	kops       float64
}

// runSweepCell builds the substrate, runs the sweep workload through a
// fresh index, and reports the client-observed round trips plus wall
// throughput. cacheCap bounds the leaf cache (0 = the default capacity)
// and skew shapes the query arrival process (0 = uniform, s > 1 Zipf).
func runSweepCell(o Options, substrate string, batch, valSize int, cache bool, cacheCap int, skew float64, size int) (sweepCell, error) {
	var d dht.DHT
	switch substrate {
	case "local":
		d = dht.NewLocal()
	case "tcpnet", "tcpnet-gob":
		cl, err := startWireCluster(3, nil)
		if err != nil {
			return sweepCell{}, err
		}
		defer cl.close()
		wire := tcpnet.WireBinary
		if substrate == "tcpnet-gob" {
			wire = tcpnet.WireGob
		}
		c, err := tcpnet.DialContext(context.Background(), cl.addrs, tcpnet.WithWire(wire))
		if err != nil {
			return sweepCell{}, err
		}
		defer func() { _ = c.Close() }()
		d = c
	default:
		return sweepCell{}, fmt.Errorf("unknown substrate %q", substrate)
	}

	gen := workload.NewGenerator(workload.Uniform, o.Seed)
	recs := gen.Records(size)
	val := bytes.Repeat([]byte("v"), valSize)
	for i := range recs {
		recs[i].Value = val
	}
	ix, err := lht.New(d, lht.Config{
		SplitThreshold: o.Theta,
		MergeThreshold: o.Theta / 2,
		Depth:          o.Depth,
		BatchSize:      batch,
		LeafCache:      cache,
		LeafCacheSize:  cacheCap,
		Aggregate:      o.Agg,
	})
	if err != nil {
		return sweepCell{}, err
	}

	t0 := time.Now()
	if _, err := ix.BulkLoad(recs); err != nil {
		return sweepCell{}, err
	}
	next := func() float64 { return 0 }
	rng := rand.New(rand.NewSource(o.Seed + 101))
	if skew > 0 {
		keys := make([]float64, len(recs))
		for i, r := range recs {
			keys[i] = r.Key
		}
		arr, err := workload.NewArrivals(keys, skew, o.Seed+101)
		if err != nil {
			return sweepCell{}, err
		}
		next = arr.Next
	} else {
		next = func() float64 { return recs[rng.Intn(len(recs))].Key }
	}
	for q := 0; q < o.Queries; q++ {
		if _, _, err := ix.Search(next()); err != nil {
			return sweepCell{}, err
		}
	}
	for q := 0; q < 20; q++ {
		lo := rng.Float64() * 0.95
		if _, _, err := ix.Range(lo, lo+0.05); err != nil {
			return sweepCell{}, err
		}
	}
	elapsed := time.Since(t0)

	flat := ix.Metrics().Flat()
	ops := size + o.Queries + 20
	return sweepCell{
		roundTrips: float64(flat.RoundTrips()),
		kops:       float64(ops) / elapsed.Seconds() / 1000,
	}, nil
}
