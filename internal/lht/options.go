package lht

import (
	"time"

	"lht/internal/dht"
	"lht/internal/metrics"
)

// Option configures an index at construction. Options layer over the
// Config struct: BuildConfig starts from DefaultConfig and applies each
// option in order, and Config itself satisfies Option (replacing the
// whole configuration), so the two styles compose — a full Config can
// seed the build and individual options override fields after it.
type Option interface {
	applyOption(*Config)
}

// optionFunc adapts a function to the Option interface.
type optionFunc func(*Config)

func (f optionFunc) applyOption(c *Config) { f(c) }

// applyOption makes Config an Option: supplying one replaces the whole
// configuration built so far, which keeps New(d, cfg) calls working
// unchanged under the variadic facade.
func (c Config) applyOption(dst *Config) { *dst = c }

// BuildConfig resolves a Config from DefaultConfig plus the options, in
// order.
func BuildConfig(opts ...Option) Config {
	cfg := DefaultConfig()
	for _, o := range opts {
		o.applyOption(&cfg)
	}
	return cfg
}

// WithLeafCache enables the client-side leaf cache with the given
// capacity (0 means DefaultLeafCacheSize; see Config.LeafCache).
func WithLeafCache(size int) Option {
	return optionFunc(func(c *Config) {
		c.LeafCache = true
		c.LeafCacheSize = size
	})
}

// WithPolicy interposes the retry/backoff layer (see Config.Policy).
func WithPolicy(p dht.Policy) Option {
	return optionFunc(func(c *Config) { c.Policy = &p })
}

// WithBatchSize caps the keys per batched DHT operation (see
// Config.BatchSize).
func WithBatchSize(n int) Option {
	return optionFunc(func(c *Config) { c.BatchSize = n })
}

// WithTraceSink attaches a structured op-event sink (see
// Config.TraceSink).
func WithTraceSink(s metrics.TraceSink) Option {
	return optionFunc(func(c *Config) { c.TraceSink = s })
}

// WithParallelRange toggles concurrent range-query forwarding (see
// Config.ParallelRange).
func WithParallelRange(on bool) Option {
	return optionFunc(func(c *Config) { c.ParallelRange = on })
}

// WithAggregate chains the index's counters to a shared parent (see
// Config.Aggregate).
func WithAggregate(agg *metrics.Counters) Option {
	return optionFunc(func(c *Config) { c.Aggregate = agg })
}

// WithDepth sets D, the a-priori maximum tree depth (see Config.Depth).
func WithDepth(d int) Option {
	return optionFunc(func(c *Config) { c.Depth = d })
}

// WithThresholds sets theta_split and the merge hysteresis threshold
// (see Config.SplitThreshold, Config.MergeThreshold).
func WithThresholds(split, merge int) Option {
	return optionFunc(func(c *Config) {
		c.SplitThreshold = split
		c.MergeThreshold = merge
	})
}

// WithHotSplitRate enables load-aware leaf splitting at the given
// requests-per-second threshold (see Config.HotSplitRate; 0 disables).
func WithHotSplitRate(rate float64) Option {
	return optionFunc(func(c *Config) { c.HotSplitRate = rate })
}

// WithCoalescedGets toggles singleflight read coalescing (see
// Config.CoalesceGets).
func WithCoalescedGets(on bool) Option {
	return optionFunc(func(c *Config) { c.CoalesceGets = on })
}

// WithHedgedGets enables quantile-triggered hedged reads with the given
// trigger floor (see Config.HedgeAfter; 0 disables).
func WithHedgedGets(after time.Duration) Option {
	return optionFunc(func(c *Config) { c.HedgeAfter = after })
}

// WithRereplication extends Scrub with a replica-repair pass on
// substrates that implement dht.Rereplicator (see Config.Rereplicate).
func WithRereplication(on bool) Option {
	return optionFunc(func(c *Config) { c.Rereplicate = on })
}

// withClock overrides the rate estimator's time source for
// deterministic tests (package-private on purpose).
func withClock(now func() int64) Option {
	return optionFunc(func(c *Config) { c.clock = now })
}
