package bench

import (
	"fmt"
	"math/rand"

	"lht/internal/dht"
	"lht/internal/lht"
	"lht/internal/metrics"
	"lht/internal/record"
	"lht/internal/workload"
)

// cacheOp is one pre-generated operation of the cache-ablation workload,
// replayed identically against the cached and the uncached index so the
// two measurements see byte-identical query streams.
type cacheOp struct {
	read   bool
	insert bool
	key    float64
}

// mixedOps generates a 95/5 read/write stream over an evolving live-key
// set: reads target live keys, writes alternate between inserting a
// fresh key and deleting a live one, so the tree keeps splitting and
// merging under the cache while the population stays roughly constant.
func mixedOps(rng *rand.Rand, gen *workload.Generator, live []float64, n int) []cacheOp {
	live = append([]float64(nil), live...)
	ops := make([]cacheOp, 0, n)
	ins := true
	for len(ops) < n {
		if rng.Intn(100) < 95 {
			ops = append(ops, cacheOp{read: true, key: live[rng.Intn(len(live))]})
			continue
		}
		if ins {
			k := gen.Key()
			ops = append(ops, cacheOp{insert: true, key: k})
			live = append(live, k)
		} else {
			j := rng.Intn(len(live))
			ops = append(ops, cacheOp{key: live[j]})
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		ins = !ins
	}
	return ops
}

// replayCacheWorkload grows a fresh index record by record (the
// long-lived-client regime, which also populates the leaf cache the way
// real operation would) and replays ops, returning the mean DHT-lookups
// per exact-match query and the final counter snapshot. Cache counters
// are reset after the build so the hit rate reflects the measured
// queries only.
func replayCacheWorkload(o Options, data []record.Record, ops []cacheOp, cached bool) (float64, metrics.FlatSnapshot, error) {
	cfg := lht.Config{SplitThreshold: o.Theta, MergeThreshold: o.Theta / 2, Depth: o.Depth, LeafCache: cached, Aggregate: o.Agg}
	ix, err := lht.New(dht.NewLocal(), cfg)
	if err != nil {
		return 0, metrics.FlatSnapshot{}, err
	}
	for _, r := range data {
		if _, err := ix.Insert(r); err != nil {
			return 0, metrics.FlatSnapshot{}, err
		}
	}
	build := ix.Metrics().Flat()
	var readLookups, reads int
	for _, op := range ops {
		switch {
		case op.read:
			_, cost, err := ix.Search(op.key)
			if err != nil {
				return 0, metrics.FlatSnapshot{}, fmt.Errorf("bench: cache search %v: %w", op.key, err)
			}
			readLookups += cost.Lookups
			reads++
		case op.insert:
			if _, err := ix.Insert(record.Record{Key: op.key}); err != nil {
				return 0, metrics.FlatSnapshot{}, err
			}
		default:
			if _, err := ix.Delete(op.key); err != nil {
				return 0, metrics.FlatSnapshot{}, fmt.Errorf("bench: cache delete %v: %w", op.key, err)
			}
		}
	}
	return float64(readLookups) / float64(reads), ix.Metrics().Flat().Sub(build), nil
}

// RunCacheAblation measures what the client-side leaf cache buys on the
// dominant operation: mean DHT-lookups per exact-match query under a
// read-heavy churn workload (95/5 read/write, inserts and deletes
// forcing splits and merges behind live cache entries), cache on vs
// off, across data sizes. Expected shape: the uncached curve follows
// Algorithm 2's ~log2(D) probes, the cached curve sits near 1 (every
// repeat into a known leaf is a single direct get), and the hit-rate
// series shows how quickly the bounded LRU covers the working set.
func RunCacheAblation(o Options, dist workload.Dist, sizes []int) (Result, error) {
	o = o.WithDefaults()
	res := Result{
		Name: "Ablation A4",
		Title: fmt.Sprintf("Client leaf cache under churn (%s data, theta=%d, D=%d, 95/5 read/write)",
			dist, o.Theta, o.Depth),
		XLabel: "data size (records)",
		YLabel: "DHT-lookups per exact-match query / hit rate",
	}
	cachedYs := make([][]float64, o.Trials)
	uncachedYs := make([][]float64, o.Trials)
	hitYs := make([][]float64, o.Trials)
	for t := 0; t < o.Trials; t++ {
		gen := workload.NewGenerator(dist, o.Seed+int64(t))
		recs := gen.Records(sizes[len(sizes)-1])
		rng := rand.New(rand.NewSource(o.Seed + int64(t) + 7919))
		var crow, urow, hrow []float64
		for _, size := range sizes {
			data := recs[:size]
			live := make([]float64, len(data))
			for i, r := range data {
				live[i] = r.Key
			}
			ops := mixedOps(rng, gen, live, 4*o.Queries)
			cMean, cSnap, err := replayCacheWorkload(o, data, ops, true)
			if err != nil {
				return res, err
			}
			uMean, _, err := replayCacheWorkload(o, data, ops, false)
			if err != nil {
				return res, err
			}
			crow = append(crow, cMean)
			urow = append(urow, uMean)
			probes := cSnap.CacheHits + cSnap.CacheMisses + cSnap.CacheStale
			hrow = append(hrow, float64(cSnap.CacheHits)/float64(probes))
		}
		cachedYs[t], uncachedYs[t], hitYs[t] = crow, urow, hrow
	}
	xs := float64s(sizes)
	res.Series = append(res.Series,
		meanSeries("cached lookups/query", xs, cachedYs),
		meanSeries("uncached lookups/query", xs, uncachedYs),
		meanSeries("cache hit rate", xs, hitYs))
	return res, nil
}
