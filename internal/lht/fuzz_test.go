package lht

import (
	"math"
	"sort"
	"testing"

	"lht/internal/dht"
	"lht/internal/record"
)

// FuzzOperations feeds the index an arbitrary byte-encoded operation
// sequence and cross-checks against the map oracle: the distributed
// structure must agree with a flat map no matter the interleaving.
// Each operation consumes three bytes: opcode, and a two-byte key.
func FuzzOperations(f *testing.F) {
	f.Add([]byte{0, 1, 2, 0, 200, 10, 1, 1, 2, 2, 0, 0})
	f.Add([]byte{0, 0, 0, 0, 0, 1, 1, 0, 0, 3, 0, 0, 2, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		ix, err := New(dht.NewLocal(), Config{SplitThreshold: 4, MergeThreshold: 3, Depth: 18})
		if err != nil {
			t.Fatal(err)
		}
		oracle := make(map[float64]bool)
		for len(data) >= 3 {
			op, k1, k2 := data[0], data[1], data[2]
			data = data[3:]
			key := (float64(k1)*256 + float64(k2)) / 65536
			switch op % 4 {
			case 0: // insert
				if _, err := ix.Insert(record.Record{Key: key}); err != nil {
					t.Fatalf("Insert(%v): %v", key, err)
				}
				oracle[key] = true
			case 1: // delete
				_, err := ix.Delete(key)
				if oracle[key] != (err == nil) {
					t.Fatalf("Delete(%v) = %v, oracle %v", key, err, oracle[key])
				}
				delete(oracle, key)
			case 2: // search
				_, _, err := ix.Search(key)
				if oracle[key] != (err == nil) {
					t.Fatalf("Search(%v) = %v, oracle %v", key, err, oracle[key])
				}
			default: // range around the key
				hi := math.Min(1, key+0.1)
				if hi <= key {
					continue
				}
				got, _, err := ix.Range(key, hi)
				if err != nil {
					t.Fatalf("Range(%v, %v): %v", key, hi, err)
				}
				want := 0
				for ok := range oracle {
					if ok >= key && ok < hi {
						want++
					}
				}
				if len(got) != want {
					t.Fatalf("Range(%v, %v) = %d records, oracle %d", key, hi, len(got), want)
				}
			}
		}
		if err := ix.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		keys := make([]float64, 0, len(oracle))
		for k := range oracle {
			keys = append(keys, k)
		}
		sort.Float64s(keys)
		if len(keys) > 0 {
			if r, _, err := ix.Min(); err != nil || r.Key != keys[0] {
				t.Fatalf("Min = %v, %v; want %v", r, err, keys[0])
			}
			if r, _, err := ix.Max(); err != nil || r.Key != keys[len(keys)-1] {
				t.Fatalf("Max = %v, %v; want %v", r, err, keys[len(keys)-1])
			}
		}
	})
}
