package bench

import (
	"fmt"
	"strings"
	"time"

	"lht/internal/metrics"
)

// OpLatency summarizes the latency distribution of one operation class
// over one experiment (or a whole run). Percentiles come from the
// log-bucketed histograms in metrics.Counters, so they are upper bounds
// with power-of-two resolution, not exact order statistics.
type OpLatency struct {
	Op     string  `json:"op"`
	Count  int64   `json:"count"`
	Errors int64   `json:"errors,omitempty"`
	MeanUs float64 `json:"mean_us"`
	P50Us  float64 `json:"p50_us"`
	P95Us  float64 `json:"p95_us"`
	P99Us  float64 `json:"p99_us"`
}

// LatencySummary extracts per-operation-class latency percentiles from a
// snapshot (typically a Sub diff covering one experiment), skipping
// classes that saw no traffic.
func LatencySummary(d metrics.Snapshot) []OpLatency {
	var out []OpLatency
	for op := metrics.Op(0); op < metrics.NumOps; op++ {
		st := d.Latency.Ops[op]
		if st.Count == 0 {
			continue
		}
		out = append(out, OpLatency{
			Op:     op.String(),
			Count:  st.Count,
			Errors: st.Errors,
			MeanUs: micros(st.Hist.Mean()),
			P50Us:  micros(st.Hist.Quantile(50)),
			P95Us:  micros(st.Hist.Quantile(95)),
			P99Us:  micros(st.Hist.Quantile(99)),
		})
	}
	return out
}

func micros(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// FormatLatency renders a latency summary as an aligned table matching
// FormatTable's style; an empty summary renders as the empty string.
func FormatLatency(ls []OpLatency) string {
	if len(ls) == 0 {
		return ""
	}
	headers := []string{"op", "count", "errors", "mean", "p50", "p95", "p99"}
	rows := make([][]string, 0, len(ls))
	for _, l := range ls {
		rows = append(rows, []string{
			l.Op,
			fmt.Sprintf("%d", l.Count),
			fmt.Sprintf("%d", l.Errors),
			formatUs(l.MeanUs),
			formatUs(l.P50Us),
			formatUs(l.P95Us),
			formatUs(l.P99Us),
		})
	}
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// formatUs renders a microsecond value with a unit, scaling to ms past
// 1000us for readability.
func formatUs(us float64) string {
	if us >= 1000 {
		return fmt.Sprintf("%.3gms", us/1000)
	}
	return fmt.Sprintf("%.3gus", us)
}
