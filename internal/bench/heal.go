package bench

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"sync/atomic"
	"time"

	"lht/internal/dht"
	"lht/internal/lht"
	"lht/internal/record"
	"lht/internal/tcpnet"
	"lht/internal/workload"
)

// Ablation A12: the self-healing membership plane — gossip cluster view,
// hinted handoff, and scrub-driven re-replication — under permanent and
// transient node loss, end to end over real sockets. Each cell boots a
// fresh 4-node cluster with the server-side membership plane enabled,
// loads the tree over 3 replicas, then applies one churn scenario:
//
//   - kill: one storage node dies permanently — its replica copies are
//     gone and writes during the outage cannot reach their full holder
//     set;
//   - rejoin: the node dies and later returns EMPTY at the same address
//     (disk lost) — the worst non-graceful restart.
//
// During the outage both arms keep writing. The self-healing arm then
// recovers: anti-entropy gossip declares the node dead (kill) or adopts
// its refuted rejoin, the client refreshes its routing ring from the
// gossip view, parked hinted handoffs replay to the returned holder, and
// a bounded number of re-replicating scrub passes restores the replica
// count on the current ring owners. The static arm is yesterday's
// cluster API: a fixed member list with breaker failover only — reads
// keep succeeding off the survivors, but nothing ever repairs, so the
// index stays one failure away from data loss.
//
// Two results: A12, the measured outage-write success, post-recovery
// query success, and replica coverage per scenario (wall-clock dependent,
// not gated), and A12b, the identical logical workload replayed serially
// over the instrumented local substrate — deterministic round trips the
// CI perf gate diffs, pinning that the membership plane is free in the
// cost model when off.
const (
	// healNodes/healReplicas shape the cluster: 4 nodes, 3-way
	// replication, so one loss leaves every key readable and repairable.
	healNodes    = 4
	healReplicas = 3
	// healChurnDiv sizes the outage write phase: size/healChurnDiv fresh
	// records inserted while the victim is down.
	healChurnDiv = 8
	// healMaxScrubRounds bounds the acceptance criterion: the replica
	// count must be fully restored within this many scrub passes.
	healMaxScrubRounds = 3
	// healConvergeBudget caps how long a cell waits for gossip to
	// converge (suspicion, death, rejoin refutation, hint replay) before
	// giving up; generous because CI machines stall.
	healConvergeBudget = 30 * time.Second
)

// healScenarios name the churn schedules; the index doubles as the x
// coordinate.
var healScenarios = []string{"kill", "rejoin"}

// RunMembershipAblation is ablation A12; see the comment above.
func RunMembershipAblation(o Options, size int) (Result, Result, error) {
	o = o.WithDefaults()
	lat := Result{
		Name: "A12",
		Title: fmt.Sprintf("Self-healing membership under churn (%d records + %d outage writes, %d clients)",
			size, size/healChurnDiv, chaosWorkers),
		XLabel: "scenario (0=kill, 1=rejoin empty)",
		YLabel: "success % / replica coverage %",
	}
	rt := Result{
		Name: "A12b",
		Title: fmt.Sprintf("Churn workload cost, plane off (%d records + %d churn writes + %d queries, serialized)",
			size, size/healChurnDiv, o.Queries),
		XLabel: "scenario (0=kill, 1=rejoin empty)",
		YLabel: "round trips",
	}
	xs := make([]float64, len(healScenarios))
	for i := range xs {
		xs[i] = float64(i)
	}

	for _, arm := range []struct {
		name    string
		healing bool
	}{{"static view", false}, {"self-healing", true}} {
		var wr, qr, cov []float64
		for sc := range healScenarios {
			cell, err := measureHealCell(o, size, sc, arm.healing)
			if err != nil {
				return lat, rt, fmt.Errorf("bench: membership ablation %s %s: %w", arm.name, healScenarios[sc], err)
			}
			wr = append(wr, cell.writeOK)
			qr = append(qr, cell.success)
			cov = append(cov, cell.coverage)
		}
		lat.Series = append(lat.Series,
			meanSeries(arm.name+" outage write success %", xs, [][]float64{wr}),
			meanSeries(arm.name+" query success %", xs, [][]float64{qr}),
			meanSeries(arm.name+" replica coverage %", xs, [][]float64{cov}))
	}

	// The gated rows: each scenario's logical workload (build + churn
	// writes + queries) replayed serially over the instrumented local
	// map, cache off and on. Round trips are a pure function of (seed,
	// theta, depth, size, queries) — drift means the membership plane
	// leaked into the default lookup path.
	for _, cache := range []bool{false, true} {
		var rts []float64
		for sc := range healScenarios {
			n, err := healCostCell(o, size, sc, cache)
			if err != nil {
				return lat, rt, fmt.Errorf("bench: membership cost cell %s cache=%t: %w", healScenarios[sc], cache, err)
			}
			rts = append(rts, n)
		}
		name := "cache off"
		if cache {
			name = "cache on"
		}
		rt.Series = append(rt.Series, meanSeries(name, xs, [][]float64{rts}))
	}
	return lat, rt, nil
}

// healCell is one (scenario, arm) combination's measured outcome.
type healCell struct {
	writeOK  float64 // outage-phase writes that succeeded, percent
	success  float64 // post-recovery queries answered in deadline, percent
	coverage float64 // replica copies present on live nodes / expected, percent
}

// healSchedule draws one rep's post-recovery query keys: identical for
// both arms of a scenario.
func healSchedule(o Options, keys []float64, scenario, rep int) []float64 {
	rng := rand.New(rand.NewSource(o.Seed + 23 + int64(scenario)*131 + int64(rep)))
	qs := make([]float64, 4*o.Queries)
	for i := range qs {
		qs[i] = keys[rng.Intn(len(keys))]
	}
	return qs
}

// healChurnRecords are the records written while the victim is down.
func healChurnRecords(o Options, size int) []record.Record {
	return workload.NewGenerator(workload.Uniform, o.Seed+7).Records(size / healChurnDiv)
}

// measureHealCell boots a membership-enabled 4-node cluster, loads the
// tree, kills one node per the scenario, writes through the outage, runs
// the arm's recovery protocol, then measures query success and replica
// coverage.
func measureHealCell(o Options, size, scenario int, healing bool) (healCell, error) {
	var cell healCell
	ctx := context.Background()

	// Boot the servers with the membership plane on. Gossip is driven
	// explicitly (Tick, not Run) so the cell controls its own clock.
	srvs, mems, addrs, err := bootHealCluster(o, healNodes)
	if err != nil {
		return cell, err
	}
	defer func() {
		for _, s := range srvs {
			_ = s.Close()
		}
	}()

	c, err := tcpnet.Dial(ctx, tcpnet.ClusterConfig{
		Seeds:    addrs,
		Replicas: healReplicas,
		Counters: o.Agg,
		Health: &dht.BreakerConfig{
			Threshold:   3,
			Cooldown:    50 * time.Millisecond,
			MaxCooldown: 250 * time.Millisecond,
			Seed:        o.Seed,
		},
		HintedHandoff: healing,
	})
	if err != nil {
		return cell, err
	}
	defer func() { _ = c.Close() }()

	ix, err := lht.New(c, lht.Config{
		SplitThreshold: o.Theta,
		Depth:          o.Depth,
		LeafCache:      true,
		Aggregate:      o.Agg,
		Rereplicate:    healing,
	})
	if err != nil {
		return cell, err
	}

	recs := workload.NewGenerator(workload.Uniform, o.Seed).Records(size)
	keys := make([]float64, 0, len(recs)+size/healChurnDiv)
	for _, r := range recs {
		keys = append(keys, r.Key)
	}
	if _, err := ix.BulkLoad(recs); err != nil {
		return cell, fmt.Errorf("build: %w", err)
	}
	for _, k := range keys {
		if _, _, err := ix.Search(k); err != nil {
			return cell, fmt.Errorf("warmup search: %w", err)
		}
	}

	// Kill the victim. Both scenarios start identically; they differ in
	// whether it ever comes back.
	const victim = healNodes - 1
	_ = srvs[victim].Close()

	// The outage write phase: the static arm loses the down holder's
	// copies outright (and a write whose holder can't be reached errors);
	// the healing arm parks them as hinted handoffs.
	var wrOK, wrTotal int
	for _, r := range healChurnRecords(o, size) {
		keys = append(keys, r.Key)
		wctx, cancel := context.WithTimeout(ctx, chaosOpDeadline)
		_, err := ix.InsertContext(wctx, r)
		cancel()
		wrTotal++
		if err == nil {
			wrOK++
		}
	}
	cell.writeOK = 100 * float64(wrOK) / float64(wrTotal)

	if scenario == 1 {
		// Rejoin: the node returns EMPTY at its old address, with a fresh
		// incarnation-0 membership that must refute its own death.
		fresh, err := resurrectEmpty(addrs[victim], addrs, o.Seed+91)
		if err != nil {
			return cell, err
		}
		srvs[victim], mems[victim] = fresh.srv, fresh.mem
	}

	if healing {
		if err := healRecover(ctx, ix, c, srvs, mems, addrs, victim, scenario); err != nil {
			return cell, err
		}
	}

	// The post-recovery query phase, shared machinery with A11.
	var ok, total atomic.Int64
	for rep := 0; rep < o.Trials; rep++ {
		qs := healSchedule(o, keys, scenario, rep)
		runChaosPhase(ix, qs, &ok, &total)
	}
	cell.success = 100 * float64(ok.Load()) / float64(total.Load())

	skip := -1
	if scenario == 0 {
		skip = victim // permanently dead: not a live copy holder
	}
	cov, err := replicaCoverage(o, addrs, srvs, skip)
	if err != nil {
		return cell, err
	}
	cell.coverage = cov
	return cell, nil
}

// bootHealCluster boots n membership-enabled servers, each seeded with
// the full member list and a deterministic per-node gossip seed.
func bootHealCluster(o Options, n int) ([]*tcpnet.Server, []*tcpnet.Membership, []string, error) {
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range lns[:i] {
				_ = l.Close()
			}
			return nil, nil, nil, err
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	srvs := make([]*tcpnet.Server, n)
	mems := make([]*tcpnet.Membership, n)
	for i := range srvs {
		srvs[i] = tcpnet.NewServer()
		mems[i] = srvs[i].EnableMembership(tcpnet.MembershipConfig{
			Self: addrs[i], Seeds: addrs, Seed: o.Seed + int64(i+1),
		})
		go func(s *tcpnet.Server, ln net.Listener) { _ = s.Serve(ln) }(srvs[i], lns[i])
	}
	return srvs, mems, addrs, nil
}

// resurrected bundles a rebound server with its membership handle.
type resurrected struct {
	srv *tcpnet.Server
	mem *tcpnet.Membership
}

// resurrectEmpty rebinds addr with a brand-new empty server, retrying
// briefly while the dead listener's socket winds down.
func resurrectEmpty(addr string, seeds []string, seed int64) (resurrected, error) {
	var ln net.Listener
	var err error
	for try := 0; try < 200; try++ {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err != nil {
		return resurrected{}, fmt.Errorf("rebind %s: %w", addr, err)
	}
	srv := tcpnet.NewServer()
	mem := srv.EnableMembership(tcpnet.MembershipConfig{Self: addr, Seeds: seeds, Seed: seed})
	go func() { _ = srv.Serve(ln) }()
	return resurrected{srv: srv, mem: mem}, nil
}

// healRecover runs the self-healing arm's recovery protocol: drive
// gossip until the cluster view reflects the churn (victim dead, or
// rejoined with its hint backlog drained), refresh the client's routing
// ring from the view, and re-replicate via bounded scrub passes.
func healRecover(ctx context.Context, ix *lht.Index, c *tcpnet.Client, srvs []*tcpnet.Server, mems []*tcpnet.Membership, addrs []string, victim, scenario int) error {
	deadline := time.Now().Add(healConvergeBudget)
	converged := func() bool {
		for i, m := range mems {
			if i == victim && scenario == 0 {
				continue
			}
			if scenario == 0 {
				if st, ok := m.View().Find(addrs[victim]); !ok || st.State != dht.MemberDead {
					return false
				}
			} else {
				if st, ok := m.View().Find(addrs[victim]); !ok || st.State != dht.MemberAlive {
					return false
				}
				if i != victim && srvs[i].HintBacklog()[addrs[victim]] > 0 {
					return false
				}
			}
		}
		// The client converges too: its suspicion must round-trip through
		// the gossip plane (kill: the victim's death reaches its view and
		// drops it from the ring; rejoin: the victim's refutation comes
		// back with a bumped incarnation and revives the open breaker).
		st, ok := c.View().Find(addrs[victim])
		if scenario == 0 {
			return ok && st.State == dht.MemberDead
		}
		return ok && st.State == dht.MemberAlive && c.Health(addrs[victim]) == dht.BreakerClosed
	}
	for !converged() {
		if time.Now().After(deadline) {
			return fmt.Errorf("gossip never converged for scenario %d", scenario)
		}
		for i, m := range mems {
			if i == victim && scenario == 0 {
				continue
			}
			_ = m.Tick(ctx)
		}
		// The client is one more gossip participant: each exchange pushes
		// its local evidence (the victim's breaker opened → suspect) and
		// pulls the cluster's verdict back.
		_ = c.RefreshView(ctx)
	}
	for round := 0; round < healMaxScrubRounds; round++ {
		rep, err := ix.Scrub(ctx)
		if err != nil {
			return fmt.Errorf("repair scrub round %d: %w", round+1, err)
		}
		if rep.ReplicaMissing == 0 {
			return nil
		}
	}
	// The last round still found missing copies; coverage will show it.
	return nil
}

// replicaCoverage reports the fraction of expected replica copies
// present on live servers: for every leaf storage key, healReplicas
// copies are expected; skip marks a permanently dead server. The leaf
// walk runs over a fresh client dialed against only the live members —
// the measured client's breakers remember the outage, which would turn
// the walk's expected probe misses into unavailability errors.
func replicaCoverage(o Options, addrs []string, srvs []*tcpnet.Server, skip int) (float64, error) {
	ctx := context.Background()
	live := make([]string, 0, len(addrs))
	for i, a := range addrs {
		if i != skip {
			live = append(live, a)
		}
	}
	c, err := tcpnet.Dial(ctx, tcpnet.ClusterConfig{Seeds: live, Replicas: healReplicas})
	if err != nil {
		return 0, fmt.Errorf("coverage dial: %w", err)
	}
	defer func() { _ = c.Close() }()
	view, err := lht.New(c, lht.Config{SplitThreshold: o.Theta, Depth: o.Depth})
	if err != nil {
		return 0, fmt.Errorf("coverage index: %w", err)
	}
	leaves, err := view.Leaves()
	if err != nil {
		return 0, fmt.Errorf("coverage walk: %w", err)
	}
	if len(leaves) == 0 {
		return 0, fmt.Errorf("coverage walk found no leaves")
	}
	want, have := 0, 0
	for _, b := range leaves {
		k := b.Label.Name().Key()
		want += healReplicas
		for i, s := range srvs {
			if i == skip {
				continue
			}
			if s.Has(k) {
				have++
			}
		}
	}
	return 100 * float64(have) / float64(want), nil
}

// healCostCell replays one scenario's logical workload (build + churn
// writes + queries, sequential, no churn — the logical schedule is
// identical with or without the physical planes) over the instrumented
// local substrate and returns the client-charged round trips.
func healCostCell(o Options, size, scenario int, cache bool) (float64, error) {
	ix, err := lht.New(dht.NewLocal(), lht.Config{
		SplitThreshold: o.Theta,
		Depth:          o.Depth,
		LeafCache:      cache,
		Aggregate:      o.Agg,
	})
	if err != nil {
		return 0, err
	}
	recs := workload.NewGenerator(workload.Uniform, o.Seed).Records(size)
	var keys []float64
	for _, r := range recs {
		keys = append(keys, r.Key)
		if _, err := ix.Insert(r); err != nil {
			return 0, err
		}
	}
	for _, r := range healChurnRecords(o, size) {
		keys = append(keys, r.Key)
		if _, err := ix.Insert(r); err != nil {
			return 0, err
		}
	}
	for _, k := range healSchedule(o, keys, scenario, 0)[:o.Queries] {
		if _, _, err := ix.Search(k); err != nil {
			return 0, err
		}
	}
	return float64(ix.Metrics().Flat().RoundTrips()), nil
}
