package tcpnet

import (
	"context"
	"net"
	"testing"

	"lht/internal/dht"
	"lht/internal/dht/dhttest"
	"lht/internal/metrics"
)

// startServerMap boots n servers and returns their addresses plus an
// address-to-server map, so a test can take down a specific holder.
func startServerMap(t *testing.T, n int) ([]string, map[string]*Server) {
	t.Helper()
	addrs := make([]string, 0, n)
	srvs := make(map[string]*Server, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := NewServer()
		go func() { _ = srv.Serve(ln) }()
		t.Cleanup(func() { _ = srv.Close() })
		addr := ln.Addr().String()
		addrs = append(addrs, addr)
		srvs[addr] = srv
	}
	return addrs, srvs
}

// TestReplicatedConformance runs the full substrate battery with
// replication on: every op must behave exactly like the unreplicated
// client, with redundancy and read spreading invisible to callers.
func TestReplicatedConformance(t *testing.T) {
	factory := func(t *testing.T) dht.DHT {
		c, err := Dial(startServers(t, 4), WithReplicas(2))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = c.Close() })
		return c
	}
	dhttest.Run(t, factory, dhttest.Options{
		Keys:         120,
		ValueFactory: func(i int) dht.Value { return &payload{N: i} },
		ValueEqual: func(v dht.Value, i int) bool {
			p, ok := v.(*payload)
			return ok && p.N == i
		},
	})
}

// TestReplicatedFailover pins what replication buys: with the primary
// holder down, reads fall back to the surviving holder, and the read
// rotation spreads load across holders while both are up.
func TestReplicatedFailover(t *testing.T) {
	addrs, srvs := startServerMap(t, 4)
	agg := &metrics.Counters{}
	c, err := Dial(addrs, WithReplicas(2), WithCounters(agg))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	ctx := context.Background()
	if err := c.Put(ctx, "hot", []byte("v")); err != nil {
		t.Fatal(err)
	}

	// Both holders up: repeated reads of one key must leave the primary.
	for i := 0; i < 10; i++ {
		if _, err := c.Get(ctx, "hot"); err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
	}
	if c.SpreadReads() == 0 {
		t.Error("no reads spread to the non-primary holder")
	}
	if got := agg.Snapshot().Load.SpreadReads; got != c.SpreadReads() {
		t.Errorf("chained counter saw %d spread reads, client %d", got, c.SpreadReads())
	}

	// Kill the primary: the fallback scan must still serve the key.
	primary := c.owners("hot")[0]
	if err := srvs[primary.addr].Close(); err != nil {
		t.Fatal(err)
	}
	var served bool
	for i := 0; i < 4; i++ {
		if _, err := c.Get(ctx, "hot"); err == nil {
			served = true
			break
		}
	}
	if !served {
		t.Error("replicated get did not survive losing the primary holder")
	}

	// A conditional write against the dead primary fails rather than
	// diverging: the CAS serializer for the key is gone.
	err = c.PutIf(ctx, "hot", []byte("v2"), 0)
	if err == nil {
		t.Error("PutIf succeeded with the primary CAS serializer down")
	}
}

// TestReplicasValidation pins the dial-time contract.
func TestReplicasValidation(t *testing.T) {
	addrs := startServers(t, 2)
	if _, err := Dial(addrs, WithReplicas(3)); err == nil {
		t.Error("3 replicas on a 2-node cluster dialed")
	}
	if _, err := Dial(addrs, WithReplicas(2), WithWire(WireGob)); err == nil {
		t.Error("replicated gob wire dialed")
	}
	c, err := Dial(addrs, WithReplicas(2))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	if got := len(c.owners("k")); got != 2 {
		t.Errorf("owners = %d nodes, want 2", got)
	}
	if c.owners("k")[0] != c.owner("k") {
		t.Error("replica set does not start at the owner")
	}
}
