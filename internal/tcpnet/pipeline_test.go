package tcpnet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lht/internal/dht"
)

// countGoroutines samples the goroutine count with settling retries, so a
// leak check does not flake on goroutines that are mid-exit.
func countGoroutines(base int) int {
	n := runtime.NumGoroutine()
	for i := 0; i < 50 && n > base; i++ {
		time.Sleep(10 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	return n
}

// batchServer is a stub that accepts one framed connection, answers the
// handshake ping, then holds every request until `hold` of them have
// accumulated — and releases them in REVERSE arrival order. A client that
// correlates responses by request id is unaffected; a client that assumes
// FIFO responses returns garbage. Reaching the release point at all
// proves the client truly had `hold` requests in flight at once.
func batchServer(t *testing.T, hold int) (addr string, done <-chan struct{}) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	ch := make(chan struct{})
	go func() {
		defer close(ch)
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		br := bufio.NewReader(conn)
		if _, err := br.Discard(len(wireMagic)); err != nil {
			return
		}
		// Handshake ping.
		body, err := readFrameBody(br, nil)
		if err != nil {
			return
		}
		id := binary.BigEndian.Uint64(body[:8])
		if _, err := conn.Write(buildFrame(id, dht.OpPing, []byte{statusOK})); err != nil {
			return
		}
		// Accumulate `hold` requests, then answer them newest-first. Each
		// get is answered with a raw value derived from its key, so the
		// caller can verify its response really was its own.
		type held struct {
			id  uint64
			key []byte
		}
		reqs := make([]held, 0, hold)
		for len(reqs) < hold {
			body, err := readFrameBody(br, nil)
			if err != nil {
				return
			}
			c := cursor{b: body[frameHeaderLen:]}
			key, err := c.lenBytes()
			if err != nil {
				return
			}
			reqs = append(reqs, held{
				id:  binary.BigEndian.Uint64(body[:8]),
				key: append([]byte(nil), key...),
			})
		}
		for i := len(reqs) - 1; i >= 0; i-- {
			payload := append([]byte{statusOK, tagRaw}, []byte("echo:")...)
			payload = append(payload, reqs[i].key...)
			if _, err := conn.Write(buildFrame(reqs[i].id, dht.OpGet, payload)); err != nil {
				return
			}
		}
	}()
	return ln.Addr().String(), ch
}

// TestPipelineDepthAndCorrelation proves the multiplexer sustains >=64
// requests in flight on ONE connection and correlates out-of-order
// responses by request id: the stub server refuses to answer until 64
// requests have arrived, then answers them in reverse order.
func TestPipelineDepthAndCorrelation(t *testing.T) {
	const depth = 64
	addr, done := batchServer(t, depth)
	c, err := DialContext(context.Background(), []string{addr}, WithPoolSize(1))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, depth)
	for i := 0; i < depth; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("key-%03d", i)
			v, err := c.Get(ctx, key)
			if err != nil {
				errs[i] = err
				return
			}
			want := "echo:" + key
			if got := string(v.([]byte)); got != want {
				errs[i] = fmt.Errorf("got %q, want %q (response misrouted)", got, want)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	<-done
	if got := c.MaxInFlight(); got < depth {
		t.Fatalf("max in-flight = %d, want >= %d", got, depth)
	}
}

// TestPipelinedClientStress is the -race satellite: many goroutines share
// one pipelined client, interleaving Get/Put/GetBatch with mid-flight
// cancellations, and every response must belong to its request (values
// are derived from keys). Afterwards the client tears down with zero
// leaked goroutines.
func TestPipelinedClientStress(t *testing.T) {
	base := runtime.NumGoroutine()

	addrs := startServers(t, 3)
	c, err := DialContext(context.Background(), addrs)
	if err != nil {
		t.Fatal(err)
	}

	const (
		workers = 16
		rounds  = 60
	)
	ctx := context.Background()
	var cancelled atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < rounds; i++ {
				key := fmt.Sprintf("w%d-k%d", g, i)
				val := []byte("v:" + key)
				if err := c.Put(ctx, key, val); err != nil {
					t.Errorf("Put(%s): %v", key, err)
					return
				}
				switch rng.Intn(4) {
				case 0:
					// Cancel mid-flight: either outcome is fine, but the
					// connection must survive for everyone else.
					cctx, cancel := context.WithTimeout(ctx, time.Duration(rng.Intn(300))*time.Microsecond)
					_, err := c.Get(cctx, key)
					cancel()
					if err != nil {
						if !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
							t.Errorf("cancelled Get(%s): %v", key, err)
							return
						}
						cancelled.Add(1)
					}
				case 1:
					// Batch across all owners, mixed with a known miss.
					keys := []string{key, fmt.Sprintf("w%d-k%d", g, rng.Intn(i+1)), "absent-" + key}
					vals, errs := c.GetBatch(ctx, keys)
					for j := 0; j < 2; j++ {
						if errs[j] != nil {
							t.Errorf("GetBatch(%s)[%d]: %v", keys[j], j, errs[j])
							return
						}
						if got := string(vals[j].([]byte)); got != "v:"+keys[j] {
							t.Errorf("GetBatch(%s) = %q (misrouted)", keys[j], got)
							return
						}
					}
					if !errors.Is(errs[2], dht.ErrNotFound) {
						t.Errorf("GetBatch miss = %v", errs[2])
						return
					}
				default:
					v, err := c.Get(ctx, key)
					if err != nil {
						t.Errorf("Get(%s): %v", key, err)
						return
					}
					if got := string(v.([]byte)); got != "v:"+key {
						t.Errorf("Get(%s) = %q (misrouted)", key, got)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	t.Logf("max in-flight %d, %d cancellations", c.MaxInFlight(), cancelled.Load())

	// Every value survives the chaos with its own key's value.
	for g := 0; g < workers; g++ {
		key := fmt.Sprintf("w%d-k%d", g, rounds-1)
		v, err := c.Get(ctx, key)
		if err != nil || !bytes.Equal(v.([]byte), []byte("v:"+key)) {
			t.Fatalf("final Get(%s) = %v, %v", key, v, err)
		}
	}

	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// The client's reader/writer goroutines must all be gone; only the
	// servers (owned by t.Cleanup) remain.
	if n := countGoroutines(base + 3*2); n > base+3*2+workers {
		t.Errorf("goroutine count %d after close, started at %d: leak", n, base)
	}
}

// TestNoGoroutinePerCall verifies the satellite that removed the per-call
// cancellation watcher: a burst of calls on a never-cancelled context must
// not grow the goroutine count (the old client spawned one goroutine per
// round trip; both wire paths are now goroutine-free per call).
func TestNoGoroutinePerCall(t *testing.T) {
	for _, w := range []struct {
		name string
		wire Wire
	}{{"binary", WireBinary}, {"gob", WireGob}} {
		t.Run(w.name, func(t *testing.T) {
			addrs := startServers(t, 1)
			c, err := DialContext(context.Background(), addrs, WithWire(w.wire), WithPoolSize(1))
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			ctx := context.Background()
			if err := c.Put(ctx, "k", []byte("v")); err != nil {
				t.Fatal(err)
			}
			base := runtime.NumGoroutine()
			for i := 0; i < 200; i++ {
				if _, err := c.Get(ctx, "k"); err != nil {
					t.Fatal(err)
				}
			}
			if n := countGoroutines(base); n > base {
				t.Errorf("goroutine count grew %d -> %d over 200 sequential calls", base, n)
			}
		})
	}
}

// TestCancellationAbandonsSlot pins the framed wire's cancellation
// semantics: cancelling one in-flight request leaves the connection and
// other requests untouched (no reconnect), and the abandoned response is
// dropped when it eventually arrives.
func TestCancellationAbandonsSlot(t *testing.T) {
	addrs := startServers(t, 1)
	c, err := DialContext(context.Background(), addrs, WithPoolSize(1))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	if err := c.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}

	// A pre-cancelled context fails fast without touching the wire.
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := c.Get(cctx, "k"); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled Get = %v", err)
	}

	// Cancel a few requests mid-flight, then immediately use the same
	// connection: if cancellation killed the connection (the legacy
	// behaviour), the next call would need a redial and the high-water
	// mark would reset.
	for i := 0; i < 10; i++ {
		cctx, cancel := context.WithTimeout(ctx, 50*time.Microsecond)
		_, _ = c.Get(cctx, "k")
		cancel()
	}
	v, err := c.Get(ctx, "k")
	if err != nil || !bytes.Equal(v.([]byte), []byte("v")) {
		t.Fatalf("Get after cancellations = %v, %v", v, err)
	}
}
