package bitlabel

import (
	"errors"
	"math/rand"
	"testing"
)

func TestParseAndString(t *testing.T) {
	cases := []string{"#", "#0", "#00", "#01", "#0100", "#01100", "#01011", "#0111111"}
	for _, s := range cases {
		l, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if got := l.String(); got != s {
			t.Errorf("Parse(%q).String() = %q", s, got)
		}
		if got := l.Len(); got != len(s)-1 {
			t.Errorf("Parse(%q).Len() = %d, want %d", s, got, len(s)-1)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		in   string
		want error
	}{
		{"", ErrBadLabel},
		{"0110", ErrBadLabel},
		{"#1", ErrBadLabel},    // first bit must be 0
		{"#10", ErrBadLabel},   // first bit must be 0
		{"#01x0", ErrBadLabel}, // non-bit character
		{"# 0", ErrBadLabel},   // space
		{"#0" + repeat("0", MaxBits), ErrTooDeep},
	}
	for _, tc := range cases {
		if _, err := Parse(tc.in); !errors.Is(err, tc.want) {
			t.Errorf("Parse(%q) = %v, want %v", tc.in, err, tc.want)
		}
	}
}

func repeat(s string, n int) string {
	out := ""
	for i := 0; i < n; i++ {
		out += s
	}
	return out
}

func TestRootConstants(t *testing.T) {
	if Root.String() != "#" {
		t.Errorf("Root = %q", Root.String())
	}
	if !Root.IsRoot() {
		t.Error("Root.IsRoot() = false")
	}
	if TreeRoot.String() != "#0" {
		t.Errorf("TreeRoot = %q", TreeRoot.String())
	}
	if TreeRoot.IsRoot() {
		t.Error("TreeRoot.IsRoot() = true")
	}
}

func TestChildParentSibling(t *testing.T) {
	l := MustParse("#010")
	if got := l.Left().String(); got != "#0100" {
		t.Errorf("Left = %q", got)
	}
	if got := l.Right().String(); got != "#0101" {
		t.Errorf("Right = %q", got)
	}
	if got := l.Parent().String(); got != "#01" {
		t.Errorf("Parent = %q", got)
	}
	if got := l.Sibling().String(); got != "#011" {
		t.Errorf("Sibling = %q", got)
	}
	if got := l.Sibling().Sibling(); got != l {
		t.Errorf("Sibling is not an involution: %v", got)
	}
}

func TestBitAndLastBit(t *testing.T) {
	l := MustParse("#01101")
	want := []int{0, 1, 1, 0, 1}
	for i, w := range want {
		if got := l.Bit(i); got != w {
			t.Errorf("Bit(%d) = %d, want %d", i, got, w)
		}
	}
	if l.LastBit() != 1 {
		t.Errorf("LastBit = %d", l.LastBit())
	}
	if MustParse("#0110").LastBit() != 0 {
		t.Error("LastBit(#0110) != 0")
	}
}

func TestPrefixAndIsPrefixOf(t *testing.T) {
	l := MustParse("#01101")
	if got := l.Prefix(3).String(); got != "#011" {
		t.Errorf("Prefix(3) = %q", got)
	}
	if got := l.Prefix(0); got != Root {
		t.Errorf("Prefix(0) = %v", got)
	}
	if !MustParse("#011").IsPrefixOf(l) {
		t.Error("#011 should be a prefix of #01101")
	}
	if !l.IsPrefixOf(l) {
		t.Error("IsPrefixOf should be reflexive")
	}
	if MustParse("#010").IsPrefixOf(l) {
		t.Error("#010 is not a prefix of #01101")
	}
	if l.IsPrefixOf(MustParse("#011")) {
		t.Error("a longer label cannot be a prefix of a shorter one")
	}
}

// TestNamePaperExamples checks f_n against every example in the paper.
func TestNamePaperExamples(t *testing.T) {
	cases := []struct{ in, want string }{
		{"#01100", "#011"}, // section 3.4
		{"#01011", "#010"}, // section 3.4
		{"#01111", "#0"},   // Fig. 4
		{"#0", "#"},        // the single-leaf tree: lambda = #00* with no zeros
		{"#00", "#"},
		{"#000", "#"},
		{"#01", "#0"},
		{"#0111001", "#011100"}, // section 5 example
		{"#011", "#0"},          // section 5 example
		{"#0011", "#00"},
		{"#00111", "#00"}, // section 5: f_n(#00111) = #00 = f_n(#0011)
	}
	for _, tc := range cases {
		if got := MustParse(tc.in).Name().String(); got != tc.want {
			t.Errorf("Name(%s) = %s, want %s", tc.in, got, tc.want)
		}
	}
}

func TestNextNamePaperExample(t *testing.T) {
	// Section 5: f_nn(#0011, #0011100) = #001110.
	x := MustParse("#0011")
	mu := MustParse("#0011100")
	next, ok := x.NextName(mu)
	if !ok || next.String() != "#001110" {
		t.Errorf("NextName = %v, %v; want #001110, true", next, ok)
	}
	// Section 5 lookup example: f_nn(#011, #01110011001100) = #01110.
	x = MustParse("#011")
	mu = MustParse("#01110011001100")
	next, ok = x.NextName(mu)
	if !ok || next.String() != "#01110" {
		t.Errorf("NextName = %v, %v; want #01110, true", next, ok)
	}
}

func TestNextNameExhausted(t *testing.T) {
	x := MustParse("#011")
	mu := MustParse("#011111")
	if next, ok := x.NextName(mu); ok {
		t.Errorf("NextName should be exhausted, got %v", next)
	}
}

func TestNeighborsPaperFigure(t *testing.T) {
	// Fig. 5b / section 6.2 example: f_rn(#000) = #001, f_rn(#001) = #01,
	// f_ln(#0011) = #0010's branch #001... the example uses
	// f_n(f_ln(#0011)) = #001.
	rn := func(s string) string {
		b, ok := MustParse(s).RightNeighbor()
		if !ok {
			return "<rightmost>"
		}
		return b.String()
	}
	ln := func(s string) string {
		b, ok := MustParse(s).LeftNeighbor()
		if !ok {
			return "<leftmost>"
		}
		return b.String()
	}
	if got := rn("#000"); got != "#001" {
		t.Errorf("f_rn(#000) = %s", got)
	}
	if got := rn("#001"); got != "#01" {
		t.Errorf("f_rn(#001) = %s", got)
	}
	if got := ln("#0011"); got != "#0010" {
		t.Errorf("f_ln(#0011) = %s", got)
	}
	if got := MustParse("#0010").Name().String(); got != "#001" {
		t.Errorf("f_n(#0010) = %s", got)
	}
	// Edges of the tree.
	if got := rn("#0111"); got != "<rightmost>" {
		t.Errorf("f_rn(#0111) = %s, want rightmost", got)
	}
	if got := ln("#000"); got != "<leftmost>" {
		t.Errorf("f_ln(#000) = %s, want leftmost", got)
	}
	if got := rn("#0"); got != "<rightmost>" {
		t.Errorf("f_rn(#0) = %s, want rightmost", got)
	}
	if got := ln("#0"); got != "<leftmost>" {
		t.Errorf("f_ln(#0) = %s, want leftmost", got)
	}
}

func TestLCA(t *testing.T) {
	cases := []struct{ a, b, want string }{
		{"#0010", "#0011", "#001"},
		{"#000", "#011", "#0"},
		{"#0", "#0110", "#0"},
		{"#0101", "#0101", "#0101"},
		{"#001", "#01", "#0"},
	}
	for _, tc := range cases {
		if got := LCA(MustParse(tc.a), MustParse(tc.b)).String(); got != tc.want {
			t.Errorf("LCA(%s, %s) = %s, want %s", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"#000", "#001", -1},
		{"#001", "#000", 1},
		{"#00", "#001", 0}, // ancestor
		{"#0101", "#0101", 0},
		{"#011", "#000", 1},
	}
	for _, tc := range cases {
		if got := Compare(MustParse(tc.a), MustParse(tc.b)); got != tc.want {
			t.Errorf("Compare(%s, %s) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestPanicsOnMisuse(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("Name of root", func() { Root.Name() })
	mustPanic("Parent of root", func() { Root.Parent() })
	mustPanic("Sibling of tree root", func() { TreeRoot.Sibling() })
	mustPanic("LastBit of root", func() { Root.LastBit() })
	mustPanic("Bit out of range", func() { TreeRoot.Bit(1) })
	mustPanic("Prefix out of range", func() { TreeRoot.Prefix(2) })
	mustPanic("Child bad bit", func() { TreeRoot.Child(2) })
	mustPanic("NextName not a prefix", func() {
		MustParse("#01").NextName(MustParse("#00"))
	})
	mustPanic("NextName equal", func() {
		MustParse("#01").NextName(MustParse("#01"))
	})
	deep := TreeRoot
	for deep.Len() < MaxBits {
		deep = deep.Left()
	}
	mustPanic("Child beyond MaxBits", func() { deep.Left() })
}

// TestAgainstReference cross-checks every operation against the naive
// string implementation on a large random sample.
func TestAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		s := randLabelString(rng, 60)
		l := MustParse(s)

		if l.String() != s {
			t.Fatalf("round trip %q -> %q", s, l.String())
		}
		if got, want := l.Name().String(), refName(s); got != want {
			t.Fatalf("Name(%s) = %s, want %s", s, got, want)
		}
		gotRN, okRN := l.RightNeighbor()
		wantRN, wantOKRN := refRightNeighbor(s)
		if okRN != wantOKRN || gotRN.String() != wantRN {
			t.Fatalf("RightNeighbor(%s) = %s,%v want %s,%v", s, gotRN, okRN, wantRN, wantOKRN)
		}
		gotLN, okLN := l.LeftNeighbor()
		wantLN, wantOKLN := refLeftNeighbor(s)
		if okLN != wantOKLN || gotLN.String() != wantLN {
			t.Fatalf("LeftNeighbor(%s) = %s,%v want %s,%v", s, gotLN, okLN, wantLN, wantOKLN)
		}

		// NextName against a random proper extension of l.
		mu := l
		for j := 0; j < 1+rng.Intn(5) && mu.Len() < MaxBits; j++ {
			mu = mu.Child(rng.Intn(2))
		}
		if mu.Len() > l.Len() {
			gotNN, okNN := l.NextName(mu)
			wantNN, wantOKNN := refNextName(s, mu.String())
			if okNN != wantOKNN || (okNN && gotNN.String() != wantNN) {
				t.Fatalf("NextName(%s, %s) = %v,%v want %v,%v", s, mu, gotNN, okNN, wantNN, wantOKNN)
			}
		}

		// LCA against a second random label.
		s2 := randLabelString(rng, 60)
		if got, want := LCA(l, MustParse(s2)).String(), refLCA(s, s2); got != want {
			t.Fatalf("LCA(%s, %s) = %s, want %s", s, s2, got, want)
		}
	}
}

// TestNameBijection verifies Theorem 1 constructively: over the complete
// tree of every depth up to 12, f_n maps the leaf set one-to-one onto the
// internal-node set.
func TestNameBijection(t *testing.T) {
	for depth := 1; depth <= 12; depth++ {
		// Build the complete tree of the given depth: internal nodes are
		// all labels shorter than depth, leaves all labels of exactly
		// depth bits (plus the virtual root as an internal node).
		seen := make(map[Label]bool)
		var walk func(l Label)
		var internals int
		walk = func(l Label) {
			if l.Len() == depth { // leaf
				name := l.Name()
				if seen[name] {
					t.Fatalf("depth %d: name %s hit twice (leaf %s)", depth, name, l)
				}
				seen[name] = true
				return
			}
			internals++
			walk(l.Left())
			walk(l.Right())
		}
		internals++ // virtual root
		walk(TreeRoot)
		if len(seen) != internals {
			t.Fatalf("depth %d: %d names for %d internal nodes", depth, len(seen), internals)
		}
		// Every name must itself be an internal-node label (a proper
		// prefix of some leaf): length < depth.
		for name := range seen {
			if name.Len() >= depth {
				t.Fatalf("depth %d: name %s is not an internal node", depth, name)
			}
		}
	}
}

// TestSplitTheorem verifies Theorem 2: splitting leaf lambda yields one
// child named f_n(lambda) and one named lambda.
func TestSplitTheorem(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 20000; i++ {
		l := MustParse(randLabelString(rng, 60))
		names := map[string]bool{
			l.Left().Name().String():  true,
			l.Right().Name().String(): true,
		}
		if !names[l.Name().String()] || !names[l.String()] {
			t.Fatalf("split of %s names children %v; want {%s, %s}", l, names, l.Name(), l)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	labels := []Label{Root, TreeRoot}
	for i := 0; i < 2000; i++ {
		labels = append(labels, MustParse(randLabelString(rng, 60)))
	}
	for _, l := range labels {
		data, err := l.MarshalBinary()
		if err != nil {
			t.Fatalf("marshal %s: %v", l, err)
		}
		var got Label
		if err := got.UnmarshalBinary(data); err != nil {
			t.Fatalf("unmarshal %s: %v", l, err)
		}
		if got != l {
			t.Fatalf("round trip %s -> %s", l, got)
		}
	}
}

func TestUnmarshalBinaryErrors(t *testing.T) {
	var l Label
	if err := l.UnmarshalBinary([]byte{1, 2, 3}); err == nil {
		t.Error("short input should fail")
	}
	if err := l.UnmarshalBinary([]byte{63, 0, 0, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Error("length > MaxBits should fail")
	}
	// Value wider than the declared bit count.
	if err := l.UnmarshalBinary([]byte{1, 0, 0, 0, 0, 0, 0, 0, 2}); err == nil {
		t.Error("value wider than n bits should fail")
	}
	// First bit set.
	if err := l.UnmarshalBinary([]byte{1, 0, 0, 0, 0, 0, 0, 0, 1}); err == nil {
		t.Error("first bit 1 should fail")
	}
}
