package chord

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"lht/internal/dht"
	"lht/internal/hashring"
	"lht/internal/metrics"
	"lht/internal/simnet"
)

var (
	// ErrNoNodes reports an operation against a ring with no live nodes.
	ErrNoNodes = errors.New("chord: no live nodes")
	// ErrNodeExists reports adding an address twice.
	ErrNodeExists = errors.New("chord: node already exists")
	// ErrNodeUnknown reports removing an address the ring never had.
	ErrNodeUnknown = errors.New("chord: unknown node")

	errLookupDiverged = errors.New("chord: lookup diverged (ring too unstable)")
)

// Config tunes a Ring.
type Config struct {
	// SuccessorListLen is the fault-tolerance depth of each node's
	// successor list. Default 8.
	SuccessorListLen int
	// Replicas is the number of consecutive successors each key is
	// stored on (1 = no replication). Reads fall back along the replica
	// chain when the primary has failed. Default 1.
	Replicas int
	// StabilizeRounds is how many stabilization sweeps AddNode runs after
	// a join so tests get a coherent ring without calling Stabilize
	// themselves. Default 2.
	StabilizeRounds int
	// Seed drives entry-point selection and stabilization order.
	Seed int64
	// Counters, when set, receives the ring's load-balancing counters
	// (spread reads); the routing cost model itself is charged by the
	// dht.Instrumented layer above, not here.
	Counters *metrics.Counters
}

func (c Config) withDefaults() Config {
	if c.SuccessorListLen <= 0 {
		c.SuccessorListLen = 8
	}
	if c.Replicas <= 0 {
		c.Replicas = 1
	}
	if c.StabilizeRounds <= 0 {
		c.StabilizeRounds = 2
	}
	return c
}

// Ring is a Chord network plus its client side. It implements dht.DHT, so
// an LHT or PHT index runs over it unchanged.
//
// Ring methods are safe for concurrent use; the protocol itself is
// step-driven (Stabilize), so the harness controls when maintenance runs.
type Ring struct {
	cfg Config
	net *simnet.Network

	mu    sync.Mutex
	rng   *rand.Rand
	nodes map[string]*Node // every node ever added and not removed

	// readSeq rotates the replica a read starts at (see rotateStart);
	// spreadReads counts reads that started off-primary.
	readSeq     atomic.Uint64
	spreadReads atomic.Int64

	// held is the per-key holder registry: every node that may store a
	// copy of the key (fed by Node.onStore from every copy-creating path,
	// including stabilization handoffs). It scopes retireStale to the
	// nodes that could actually hold a stale remnant — O(holders) per
	// write instead of a sweep over the whole ring under the global lock.
	// Entries survive a holder's downtime (an unreachable node cannot be
	// retired) so the stranded copy is reclaimed by the first write after
	// recovery, exactly as the full sweep used to.
	heldMu sync.Mutex
	held   map[string]map[*Node]struct{}

	// casMu serializes conditional read-compare-write cycles per key
	// across the key's whole replica set, standing in for the responsible
	// peer applying the CAS atomically in a deployed ring.
	casMu dht.KeyLocks
}

var (
	_ dht.DHT         = (*Ring)(nil)
	_ dht.Conditional = (*Ring)(nil)
)

// NewRing creates a ring with n initial nodes named "n0".."n<n-1>", fully
// stabilized.
func NewRing(n int, cfg Config) (*Ring, error) {
	if n < 1 {
		return nil, fmt.Errorf("chord: ring needs at least 1 node, got %d", n)
	}
	r := &Ring{
		cfg:   cfg.withDefaults(),
		net:   simnet.New(),
		nodes: make(map[string]*Node, n),
		held:  make(map[string]map[*Node]struct{}),
	}
	r.rng = rand.New(rand.NewSource(r.cfg.Seed))
	for i := 0; i < n; i++ {
		if err := r.AddNode(fmt.Sprintf("n%d", i)); err != nil {
			return nil, err
		}
	}
	// Enough sweeps for fingers to converge on the initial membership.
	r.Stabilize(3)
	return r, nil
}

// Network exposes the underlying simulated network (message counters,
// failure injection).
func (r *Ring) Network() *simnet.Network { return r.net }

// AddNode creates a node at addr, joins it through a random live member,
// and runs a few stabilization sweeps to integrate it.
func (r *Ring) AddNode(addr string) error {
	r.mu.Lock()
	if _, ok := r.nodes[addr]; ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNodeExists, addr)
	}
	node := newNode(Ref{ID: hashring.HashAddr(addr), Addr: addr}, r.net, r.cfg.SuccessorListLen)
	node.onStore = func(keys ...string) { r.recordHold(node, keys) }
	entry := r.randomLiveLocked()
	r.nodes[addr] = node
	r.mu.Unlock()
	r.net.Register(addr, node)

	if entry == nil {
		return nil // first node: its own ring
	}
	succ, _, err := entry.findSuccessor(context.Background(), node.ref.ID, 0)
	if err != nil {
		return fmt.Errorf("chord: join %q: %w", addr, err)
	}
	node.mu.Lock()
	node.succ = []Ref{succ}
	node.mu.Unlock()
	node.stabilize()
	r.Stabilize(r.cfg.StabilizeRounds)
	return nil
}

// RemoveNode takes a node out of the ring. Graceful departure hands the
// node's keys to its successor before leaving; an abrupt failure
// (graceful=false) strands them, modelling a crash - replication and
// stabilization are what keep the system serving.
func (r *Ring) RemoveNode(addr string, graceful bool) error {
	r.mu.Lock()
	node, ok := r.nodes[addr]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNodeUnknown, addr)
	}
	delete(r.nodes, addr)
	r.mu.Unlock()

	if graceful {
		node.mu.Lock()
		data := node.data
		node.data = make(map[string]dht.Value)
		succs := make([]Ref, len(node.succ))
		copy(succs, node.succ)
		node.mu.Unlock()
		for _, s := range succs {
			if s.Addr == addr {
				continue
			}
			if peer, err := node.call(s.Addr); err == nil {
				peer.rpcStoreBatch(data)
				break
			}
		}
	}
	r.net.Unregister(addr)
	return nil
}

// Fail marks a node crashed (unreachable) without removing its state;
// Recover brings it back, as a rebooted peer re-entering with stale state.
func (r *Ring) Fail(addr string)    { r.net.SetDown(addr, true) }
func (r *Ring) Recover(addr string) { r.net.SetDown(addr, false) }

// Stabilize runs the given number of maintenance sweeps: every live node
// stabilizes, checks its predecessor, and refreshes its finger table.
// Order is randomized per sweep, as asynchronous timers would interleave.
func (r *Ring) Stabilize(rounds int) {
	for i := 0; i < rounds; i++ {
		nodes := r.liveNodes()
		r.mu.Lock()
		r.rng.Shuffle(len(nodes), func(a, b int) { nodes[a], nodes[b] = nodes[b], nodes[a] })
		r.mu.Unlock()
		for _, n := range nodes {
			n.checkPredecessor()
			n.stabilize()
			for f := 0; f < hashring.Bits; f++ {
				n.fixFinger(f)
			}
		}
	}
}

// liveNodes returns the nodes that are registered and not failed.
func (r *Ring) liveNodes() []*Node {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Node, 0, len(r.nodes))
	for addr, n := range r.nodes {
		if !r.net.Down(addr) {
			out = append(out, n)
		}
	}
	return out
}

// NodeAddrs returns the live node addresses in sorted order.
func (r *Ring) NodeAddrs() []string {
	nodes := r.liveNodes()
	out := make([]string, 0, len(nodes))
	for _, n := range nodes {
		out = append(out, n.ref.Addr)
	}
	sort.Strings(out)
	return out
}

func (r *Ring) randomLiveLocked() *Node {
	candidates := make([]*Node, 0, len(r.nodes))
	for addr, n := range r.nodes {
		if !r.net.Down(addr) {
			candidates = append(candidates, n)
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	// Map iteration is already random, but seed-driven selection keeps
	// runs reproducible.
	sort.Slice(candidates, func(i, j int) bool { return candidates[i].ref.Addr < candidates[j].ref.Addr })
	return candidates[r.rng.Intn(len(candidates))]
}

func (r *Ring) entry() (*Node, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.randomLiveLocked()
	if n == nil {
		return nil, ErrNoNodes
	}
	return n, nil
}

// Lookup resolves the node responsible for a DHT key and reports the hop
// count, Chord's O(log N) routing at work. The context bounds the hop
// walk: cancellation stops routing mid-lookup.
func (r *Ring) Lookup(ctx context.Context, key string) (Ref, int, error) {
	entry, err := r.entry()
	if err != nil {
		return zeroRef, 0, err
	}
	return entry.findSuccessor(ctx, hashring.HashKey(key), 0)
}

// replicaChain resolves the responsible node and up to Replicas-1 of its
// live successors, retrying the lookup from other entries on failure. It
// also reports whether it had to slide past an unreachable holder, so
// callers can classify an empty read as a transient fault rather than a
// missing key.
func (r *Ring) replicaChain(ctx context.Context, key string) (chain []*Node, hops int, slid bool, err error) {
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			return nil, hops, slid, cerr
		}
		entry, err := r.entry()
		if err != nil {
			return nil, hops, slid, err
		}
		primary, h, err := entry.findSuccessor(ctx, hashring.HashKey(key), hops)
		hops = h
		if err != nil {
			lastErr = err
			if ctx.Err() != nil {
				return nil, hops, slid, err
			}
			continue
		}
		chain := make([]*Node, 0, r.cfg.Replicas)
		seen := map[string]bool{}
		ref := primary
		for len(chain) < r.cfg.Replicas && !seen[ref.Addr] {
			seen[ref.Addr] = true
			peer, err := entry.call(ref.Addr)
			if ref.Addr != entry.ref.Addr {
				hops++
			}
			if err == nil {
				chain = append(chain, peer)
				next := peer.rpcSuccessorList()
				if len(next) == 0 {
					break
				}
				ref = next[0]
				continue
			}
			// Primary (or a replica) is down: slide along the successor
			// chain via the entry's routing.
			slid = true
			nref, h2, err2 := entry.findSuccessor(ctx, hashring.Add(ref.ID, 1), hops)
			hops = h2
			if err2 != nil || seen[nref.Addr] {
				break
			}
			ref = nref
		}
		if len(chain) > 0 {
			return chain, hops, slid, nil
		}
		lastErr = dht.MarkTransient(fmt.Errorf("no live replica holder: %w", simnet.ErrUnreachable))
	}
	if lastErr == nil {
		lastErr = errLookupDiverged
	}
	// Every way of landing here - routing diverged on a churning ring, no
	// live replica holder - is a fault a later retry may outlive, so the
	// whole class is transient.
	return nil, hops, slid, dht.MarkTransient(fmt.Errorf("chord: %q unroutable: %w", key, lastErr))
}

// rotateStart picks which replica a read of key starts at: a
// deterministic function of the key and a per-ring read sequence, so
// consecutive reads of one hot key spread across its whole live replica
// set instead of pinning the primary, while any serialized schedule
// stays exactly reproducible. The scan still visits every chain member
// in order (wrapping), so fallback-on-failure semantics and the miss
// classification are unchanged, and no DHT-lookups are added — chain
// members are fetched by direct calls, which the cost model does not
// charge.
func (r *Ring) rotateStart(key string, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	start := int((uint64(h.Sum32()) + r.readSeq.Add(1) - 1) % uint64(n))
	if start != 0 {
		r.spreadReads.Add(1)
		r.cfg.Counters.AddSpreadReads(1)
	}
	return start
}

// SpreadReads reports how many reads started at a non-primary replica.
func (r *Ring) SpreadReads() int64 { return r.spreadReads.Load() }

// recordHold marks n as a possible holder of keys in the retirement
// registry. Invoked (via Node.onStore) after every store, with the
// node's own mutex released.
func (r *Ring) recordHold(n *Node, keys []string) {
	r.heldMu.Lock()
	defer r.heldMu.Unlock()
	for _, k := range keys {
		m := r.held[k]
		if m == nil {
			m = make(map[*Node]struct{}, r.cfg.Replicas+1)
			r.held[k] = m
		}
		m[n] = struct{}{}
	}
}

// retireStale deletes key from every registered holder outside keep. A
// replica-set write replaces every current copy, so a copy held
// anywhere else is a stale remnant of an earlier chain — a holder that
// slid out of the replica set during churn and missed the write. Left
// in place it would resurface when churn slides that node back into
// the chain, which is exactly the copy a rotated read must never
// observe; retiring it keeps "any stored copy is the latest write"
// true, the invariant that makes read spreading safe. Retirement is
// scoped by the holder registry (r.held) rather than sweeping the whole
// ring: every copy-creating path records itself, so the registry is a
// superset of the nodes that can hold a remnant, and a write touches
// O(holders) nodes without the global lock.
//
// Down nodes are skipped, as a real system cannot reach them, but stay
// registered: the first write after recovery retires their stranded
// copy. Until that write, the read rotation can surface the recovered
// stale copy — under the old primary-first read order the live primary
// usually shadowed it — which is the Fail/Recover staleness the bucket
// epoch already orders and the index scrub repairs (pinned by
// TestRecoveredStaleCopy* in chord_test.go).
func (r *Ring) retireStale(key string, keep []*Node) {
	inKeep := make(map[*Node]bool, len(keep))
	for _, n := range keep {
		inKeep[n] = true
	}
	r.heldMu.Lock()
	defer r.heldMu.Unlock()
	for n := range r.held[key] {
		if inKeep[n] {
			continue
		}
		if r.net.Down(n.ref.Addr) {
			continue // unreachable: stays registered, retired after recovery
		}
		n.mu.Lock()
		delete(n.data, key)
		n.mu.Unlock()
		delete(r.held[key], n)
	}
	if len(r.held[key]) == 0 {
		delete(r.held, key)
	}
}

// errMissing distinguishes the two causes of a read that found no value:
// an unreachable holder that a later retry may reach again (transient), or
// a genuinely absent key.
func errMissing(key string, slid bool) error {
	if slid {
		return dht.MarkTransient(fmt.Errorf("chord: %q holder unreachable: %w", key, simnet.ErrUnreachable))
	}
	return dht.ErrNotFound
}

// --- dht.DHT -------------------------------------------------------------

// Put implements dht.DHT: route to the responsible node and store, then
// replicate along the successor chain.
func (r *Ring) Put(ctx context.Context, key string, v dht.Value) error {
	chain, _, _, err := r.replicaChain(ctx, key)
	if err != nil {
		return err
	}
	for _, n := range chain {
		n.rpcStore(key, v)
	}
	r.retireStale(key, chain)
	return nil
}

// Get implements dht.DHT, falling back along the replica chain. When no
// live replica holds the key but an unreachable holder was slid past, the
// miss is reported as a transient fault, not ErrNotFound: the value may
// still exist on the crashed peer.
func (r *Ring) Get(ctx context.Context, key string) (dht.Value, error) {
	chain, _, slid, err := r.replicaChain(ctx, key)
	if err != nil {
		return nil, err
	}
	start := r.rotateStart(key, len(chain))
	for i := range chain {
		if v, ok := chain[(start+i)%len(chain)].rpcFetch(key); ok {
			return v, nil
		}
	}
	return nil, errMissing(key, slid)
}

// Take implements dht.DHT: fetch-and-delete across the replica chain.
func (r *Ring) Take(ctx context.Context, key string) (dht.Value, error) {
	chain, _, slid, err := r.replicaChain(ctx, key)
	if err != nil {
		return nil, err
	}
	var (
		out   dht.Value
		found bool
	)
	start := r.rotateStart(key, len(chain))
	for i := range chain {
		if v, ok := chain[(start+i)%len(chain)].rpcTake(key); ok && !found {
			out, found = v, true
		}
	}
	if !found {
		return nil, errMissing(key, slid)
	}
	r.retireStale(key, nil)
	return out, nil
}

// Remove implements dht.DHT.
func (r *Ring) Remove(ctx context.Context, key string) error {
	chain, _, _, err := r.replicaChain(ctx, key)
	if err != nil {
		return err
	}
	for _, n := range chain {
		n.rpcRemove(key)
	}
	r.retireStale(key, nil)
	return nil
}

// Write implements dht.DHT: the peer already storing the key rewrites it
// in place (the index layer's free local-disk write). The ring locates
// the storing replicas directly - no routing happens, matching the cost
// contract.
func (r *Ring) Write(ctx context.Context, key string, v dht.Value) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	r.mu.Lock()
	holders := make([]*Node, 0, r.cfg.Replicas)
	for _, n := range r.nodes {
		n.mu.Lock()
		_, ok := n.data[key]
		n.mu.Unlock()
		if ok {
			holders = append(holders, n)
		}
	}
	r.mu.Unlock()
	if len(holders) == 0 {
		return dht.ErrNotFound
	}
	for _, n := range holders {
		n.rpcWriteLocal(key, v)
	}
	return nil
}

// PutIf implements dht.Conditional: route to the replica chain, compare
// the stored epoch, and store on every replica — all under the key's CAS
// stripe so racing conditional writers serialize exactly as they would on
// the one responsible peer.
func (r *Ring) PutIf(ctx context.Context, key string, v dht.Value, ifEpoch uint64) error {
	r.casMu.Lock(key)
	defer r.casMu.Unlock(key)
	chain, _, slid, err := r.replicaChain(ctx, key)
	if err != nil {
		return err
	}
	cur, found := fetchChain(chain, key)
	if !found {
		if slid {
			// The holder may be down, not absent: the compare cannot run.
			return errMissing(key, slid)
		}
		return &dht.CASConflictError{Key: key}
	}
	if e := dht.EpochOf(cur); e != ifEpoch {
		return &dht.CASConflictError{Key: key, Exists: true, WinnerEpoch: e}
	}
	for _, n := range chain {
		n.rpcStore(key, v)
	}
	r.retireStale(key, chain)
	return nil
}

// CreateIf implements dht.Conditional.
func (r *Ring) CreateIf(ctx context.Context, key string, v dht.Value) error {
	r.casMu.Lock(key)
	defer r.casMu.Unlock(key)
	chain, _, slid, err := r.replicaChain(ctx, key)
	if err != nil {
		return err
	}
	if cur, found := fetchChain(chain, key); found {
		return &dht.CASConflictError{Key: key, Exists: true, WinnerEpoch: dht.EpochOf(cur)}
	} else if slid {
		// Absence is unprovable while a holder is unreachable.
		return errMissing(key, slid)
	}
	for _, n := range chain {
		n.rpcStore(key, v)
	}
	r.retireStale(key, chain)
	return nil
}

// RemoveIf implements dht.Conditional; removing an absent key succeeds.
func (r *Ring) RemoveIf(ctx context.Context, key string, ifEpoch uint64) error {
	r.casMu.Lock(key)
	defer r.casMu.Unlock(key)
	chain, _, slid, err := r.replicaChain(ctx, key)
	if err != nil {
		return err
	}
	cur, found := fetchChain(chain, key)
	if !found {
		if slid {
			return errMissing(key, slid)
		}
		return nil
	}
	if e := dht.EpochOf(cur); e != ifEpoch {
		return &dht.CASConflictError{Key: key, Exists: true, WinnerEpoch: e}
	}
	for _, n := range chain {
		n.rpcRemove(key)
	}
	r.retireStale(key, nil)
	return nil
}

// WriteIf implements dht.Conditional: like Write, the storing replicas
// rewrite in place without routing, but only when the stored epoch still
// matches.
func (r *Ring) WriteIf(ctx context.Context, key string, v dht.Value, ifEpoch uint64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	r.casMu.Lock(key)
	defer r.casMu.Unlock(key)
	r.mu.Lock()
	holders := make([]*Node, 0, r.cfg.Replicas)
	for _, n := range r.nodes {
		n.mu.Lock()
		_, ok := n.data[key]
		n.mu.Unlock()
		if ok {
			holders = append(holders, n)
		}
	}
	r.mu.Unlock()
	if len(holders) == 0 {
		return dht.ErrNotFound
	}
	if cur, ok := holders[0].rpcFetch(key); ok {
		if e := dht.EpochOf(cur); e != ifEpoch {
			return &dht.CASConflictError{Key: key, Exists: true, WinnerEpoch: e}
		}
	}
	for _, n := range holders {
		n.rpcWriteLocal(key, v)
	}
	return nil
}

// TotalKeys sums stored keys across live nodes (replicas counted once per
// holder); a testing and load-balance inspection helper.
func (r *Ring) TotalKeys() int {
	var total int
	for _, n := range r.liveNodes() {
		n.mu.Lock()
		total += len(n.data)
		n.mu.Unlock()
	}
	return total
}

// KeysPerNode returns the per-node key counts keyed by address, the
// load-balance view.
func (r *Ring) KeysPerNode() map[string]int {
	out := make(map[string]int)
	for _, n := range r.liveNodes() {
		n.mu.Lock()
		out[n.ref.Addr] = len(n.data)
		n.mu.Unlock()
	}
	return out
}
