package dht

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"

	"lht/internal/metrics"
)

// hedgeWindow is how many recent successful Get latencies the quantile
// tracker keeps, and hedgeMinSamples how many it needs before trusting
// the observed p95 over the configured floor.
const (
	hedgeWindow     = 128
	hedgeMinSamples = 32
)

// hedger wraps Get with a tail-latency hedge: if the first attempt has
// not answered after a trigger delay, a duplicate Get races it and the
// first decisive response wins, the loser cancelled. Only Get is hedged
// — it is the one idempotent read in the interface; duplicating writes
// would double-apply them.
//
// The trigger is quantile-driven: it starts at the configured floor and,
// once enough samples accumulate, rises to the p95 of observed
// successful Get latency (clamped to [floor, 100*floor]) so hedges fire
// only for genuine stragglers, not the healthy tail. The delay is
// additionally capped at half the caller's remaining deadline budget, so
// a hedge always has as much time to answer as the original had left.
//
// Like the coalescer, the hedger sits *below* the instrumentation layer:
// a hedge is a physical round trip, never a logical DHT-lookup, so the
// paper's cost model is unchanged whether hedging is on or off.
// HedgedGets counts launches, HedgeWins the races the duplicate won.
//
// Over a replicated substrate (tcpnet WithReplicas) the duplicate is not
// a pure retry: its context carries the hedge-attempt mark, and the
// client starts marked reads at the primary — the one holder a first
// read never starts at — so the duplicate is guaranteed to probe a
// different holder than the straggler began with.
type hedger struct {
	inner DHT
	after time.Duration
	c     *metrics.Counters

	mu  sync.Mutex
	lat [hedgeWindow]time.Duration
	idx int
	n   int
}

// WithHedging wraps inner so Gets slower than the trigger delay race a
// duplicate. after is the trigger floor; a non-positive after returns
// inner unchanged. The returned DHT re-exposes inner's optional Batcher
// and Conditional capabilities unchanged (batched and conditional ops
// are never hedged). c, when non-nil, receives HedgedGets and HedgeWins.
func WithHedging(inner DHT, after time.Duration, c *metrics.Counters) DHT {
	if after <= 0 {
		return inner
	}
	h := &hedger{inner: inner, after: after, c: c}
	b, hasB := inner.(Batcher)
	cd, hasC := inner.(Conditional)
	switch {
	case hasB && hasC:
		return struct {
			*hedger
			Batcher
			Conditional
		}{h, b, cd}
	case hasB:
		return struct {
			*hedger
			Batcher
		}{h, b}
	case hasC:
		return struct {
			*hedger
			Conditional
		}{h, cd}
	default:
		return h
	}
}

// observe feeds one successful Get latency into the quantile window.
func (h *hedger) observe(d time.Duration) {
	h.mu.Lock()
	h.lat[h.idx] = d
	h.idx = (h.idx + 1) % hedgeWindow
	if h.n < hedgeWindow {
		h.n++
	}
	h.mu.Unlock()
}

// trigger computes the hedge delay for one Get: the p95 of observed
// latency once warmed up (clamped to [after, 100*after]), else the
// configured floor, and never more than half the remaining deadline.
// A non-positive result means "do not hedge".
func (h *hedger) trigger(ctx context.Context) time.Duration {
	d := h.after
	h.mu.Lock()
	if h.n >= hedgeMinSamples {
		buf := make([]time.Duration, h.n)
		copy(buf, h.lat[:h.n])
		sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
		p := buf[(h.n*95+99)/100-1]
		if p > d {
			d = p
		}
		if lim := 100 * h.after; d > lim {
			d = lim
		}
	}
	h.mu.Unlock()
	if dl, ok := ctx.Deadline(); ok {
		if half := time.Until(dl) / 2; half < d {
			d = half
		}
	}
	return d
}

// decisive reports whether a Get outcome settles the race: anything but
// a transient substrate fault is an answer (a miss is an answer too).
// A transient arm keeps the race open so the other arm can still win.
func decisive(err error) bool { return !IsTransient(err) }

func (h *hedger) Get(ctx context.Context, key string) (Value, error) {
	delay := h.trigger(ctx)
	if delay <= 0 {
		return h.inner.Get(ctx, key)
	}

	type result struct {
		v     Value
		err   error
		hedge bool
		took  time.Duration
	}
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan result, 2) // buffered: losers never block or leak
	launch := func(hedge bool) {
		lctx := rctx
		if hedge {
			lctx = MarkHedgeAttempt(rctx)
		}
		start := time.Now()
		go func() {
			v, err := h.inner.Get(lctx, key)
			ch <- result{v, err, hedge, time.Since(start)}
		}()
	}

	launch(false)
	timer := time.NewTimer(delay)
	defer timer.Stop()

	inflight, hedged := 1, false
	var firstErr error
	for {
		select {
		case <-timer.C:
			if !hedged {
				hedged = true
				inflight++
				h.c.AddHedgedGets(1)
				launch(true)
			}
		case r := <-ch:
			inflight--
			if decisive(r.err) {
				if r.err == nil || isNotFound(r.err) {
					h.observe(r.took)
				}
				if r.hedge {
					h.c.AddHedgeWins(1)
				}
				return r.v, r.err
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if inflight == 0 {
				if hedged {
					return nil, firstErr
				}
				// The only arm failed transiently before the hedge
				// fired: launch the duplicate now rather than waiting
				// out the timer against nothing.
				hedged = true
				inflight++
				h.c.AddHedgedGets(1)
				launch(true)
			}
		case <-ctx.Done():
			return nil, ctxErr(ctx)
		}
	}
}

func isNotFound(err error) bool { return errors.Is(err, ErrNotFound) }

// hedgeAttemptKey marks a context as belonging to a hedge's duplicate
// attempt, so a replica-aware substrate can route it away from wherever
// the straggling original started.
type hedgeAttemptKey struct{}

// MarkHedgeAttempt tags ctx as a hedged duplicate read. Substrates that
// spread reads over replicas should start a marked read at a holder no
// unmarked read starts at (tcpnet starts it at the primary), making the
// hedge's holder diversity deterministic rather than a property of
// rotation-sequence parity under concurrency.
func MarkHedgeAttempt(ctx context.Context) context.Context {
	return context.WithValue(ctx, hedgeAttemptKey{}, true)
}

// IsHedgeAttempt reports whether ctx carries the hedge-attempt mark.
func IsHedgeAttempt(ctx context.Context) bool {
	hedged, _ := ctx.Value(hedgeAttemptKey{}).(bool)
	return hedged
}

func (h *hedger) Put(ctx context.Context, key string, v Value) error {
	return h.inner.Put(ctx, key, v)
}

func (h *hedger) Take(ctx context.Context, key string) (Value, error) {
	return h.inner.Take(ctx, key)
}

func (h *hedger) Remove(ctx context.Context, key string) error {
	return h.inner.Remove(ctx, key)
}

func (h *hedger) Write(ctx context.Context, key string, v Value) error {
	return h.inner.Write(ctx, key, v)
}
