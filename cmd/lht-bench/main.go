// Command lht-bench regenerates the paper's evaluation figures (section
// 9) at configurable scale and prints each as an aligned table (or CSV).
//
// Reduced-scale smoke run (seconds):
//
//	lht-bench -experiments all
//
// Paper-scale run (2^20 records, 100 datasets per point; minutes):
//
//	lht-bench -experiments all -paper
//
// Individual figures: -experiments fig6a,fig7,fig9a ...
//
// Every run reports per-experiment latency percentiles (p50/p95/p99 per
// operation class, from the indexes' log-bucketed histograms); -json
// persists them in results/bench.json under schema lht-bench/2. With
// -metrics ADDR the run's aggregate counters are served live on
// http://ADDR/metrics (Prometheus text format, plus net/http/pprof).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"lht/internal/bench"
	"lht/internal/metrics"
	"lht/internal/workload"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lht-bench:", err)
		os.Exit(1)
	}
}

type config struct {
	opts     bench.Options
	minExp   int
	maxExp   int
	span     float64
	csv      bool
	jsonPath string // non-empty: also write a machine-readable report here
	baseline string // non-empty: perf-gate this run against the report here
	selected map[string]bool
}

// experimentNames lists every figure in presentation order, followed by
// the ablation studies (a1: lookup strategy, a2: merge hysteresis, a3:
// theta sweep, a4: client leaf cache, a5: retry policy under faults,
// a6: batched operation plane, a7: recovery under churn + torn
// mutations, a8: framed binary wire codec vs gob, a9: multi-writer
// concurrency, a10: hot-leaf load balancing under Zipfian skew, a11:
// degradation plane — breakers + hedged reads — under scripted network
// chaos, a12: self-healing membership — gossip view, hinted handoff,
// scrub re-replication — under permanent and rejoin churn) and the
// wire-protocol parameter sweep (substrate x batch size x leaf cache
// x value size x cache capacity x query skew).
var experimentNames = []string{"fig6a", "fig6b", "fig7", "fig8a", "fig8b", "fig9a", "fig9b", "eq3", "thm3", "a1", "a2", "a3", "a4", "a5", "a6", "a7", "a8", "a9", "a10", "a11", "a12", "sweep", "s1", "rw1", "x1"}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("lht-bench", flag.ContinueOnError)
	var (
		experiments = fs.String("experiments", "all", "comma-separated figures to run ("+strings.Join(experimentNames, ",")+") or 'all'")
		theta       = fs.Int("theta", 100, "theta_split, the leaf bucket capacity")
		depth       = fs.Int("depth", 20, "D, the maximum tree depth")
		trials      = fs.Int("trials", 10, "independently generated datasets per data point")
		queries     = fs.Int("queries", 300, "queries per trial for query experiments")
		seed        = fs.Int64("seed", 1, "base random seed")
		minExp      = fs.Int("minexp", 10, "smallest data size as a power of two")
		maxExp      = fs.Int("maxexp", 16, "largest data size as a power of two")
		span        = fs.Float64("span", 0.1, "range span for the vs-size experiments")
		csv         = fs.Bool("csv", false, "emit CSV instead of tables")
		jsonOut     = fs.Bool("json", false, "also write a machine-readable report to results/bench.json")
		jsonPath    = fs.String("json-out", "", "write the machine-readable report to this path (implies -json)")
		metricsAddr = fs.String("metrics", "", "serve the run's live counters as Prometheus /metrics (plus pprof) on this address")
		paper       = fs.Bool("paper", false, "paper scale: 100 trials, 1000 queries, sizes up to 2^20")
		baseline    = fs.String("baseline", "", "perf gate: diff this run's deterministic rows (round trips, allocs/op) against the baseline report at this path and fail on >20% regression")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := config{
		opts: bench.Options{
			Theta: *theta, Depth: *depth, Trials: *trials, Queries: *queries, Seed: *seed,
			Agg: &metrics.Counters{},
		},
		minExp: *minExp, maxExp: *maxExp, span: *span, csv: *csv,
		baseline: *baseline,
		selected: map[string]bool{},
	}
	if *jsonOut {
		cfg.jsonPath = "results/bench.json"
	}
	if *jsonPath != "" {
		cfg.jsonPath = *jsonPath
	}
	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		msrv := &http.Server{Handler: metrics.NewMux(cfg.opts.Agg.Snapshot)}
		defer func() { _ = msrv.Close() }()
		go func() {
			if err := msrv.Serve(ln); err != nil && err != http.ErrServerClosed {
				log.Printf("metrics server: %v", err)
			}
		}()
		fmt.Fprintf(out, "metrics on http://%s/metrics\n", ln.Addr())
	}
	if *paper {
		cfg.opts.Trials = 100
		cfg.opts.Queries = 1000
		cfg.maxExp = 20
	}
	if cfg.minExp < 4 || cfg.maxExp > 24 || cfg.minExp > cfg.maxExp {
		return fmt.Errorf("invalid size range 2^%d..2^%d", cfg.minExp, cfg.maxExp)
	}

	if *experiments == "all" {
		for _, n := range experimentNames {
			cfg.selected[n] = true
		}
	} else {
		for _, n := range strings.Split(*experiments, ",") {
			n = strings.TrimSpace(n)
			if n == "" {
				continue
			}
			if !contains(experimentNames, n) {
				return fmt.Errorf("unknown experiment %q (have %s)", n, strings.Join(experimentNames, ", "))
			}
			cfg.selected[n] = true
		}
	}
	if len(cfg.selected) == 0 {
		return fmt.Errorf("no experiments selected")
	}
	return runExperiments(ctx, cfg, out)
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

func runExperiments(ctx context.Context, cfg config, out io.Writer) error {
	// want re-checks the signal context before each experiment, so an
	// interrupt stops the run after the experiment in flight while keeping
	// everything already emitted.
	want := func(name string) bool { return cfg.selected[name] && ctx.Err() == nil }
	report := bench.NewReport(cfg.opts.WithDefaults())
	// Each experiment calls emit exactly once, so the time since the
	// previous emit is that experiment's wall time (skipped experiments
	// cost nothing in between), and the aggregate-counter diff since the
	// previous emit is that experiment's traffic — which yields its
	// per-operation-class latency percentiles.
	lastEmit := time.Now()
	lastSnap := cfg.opts.Agg.Snapshot()
	emit := func(results ...bench.Result) {
		wall := time.Since(lastEmit)
		snap := cfg.opts.Agg.Snapshot()
		lat := bench.LatencySummary(snap.Sub(lastSnap))
		for i, r := range results {
			if cfg.csv {
				fmt.Fprintf(out, "# %s: %s\n%s\n", r.Name, r.Title, bench.FormatCSV(r))
			} else {
				fmt.Fprintln(out, bench.FormatTable(r))
			}
			tr := bench.TimedResult{Result: r, WallMillis: (wall / time.Duration(len(results))).Milliseconds()}
			if i == 0 {
				// The latency block covers the whole experiment; attach it
				// to its first result rather than duplicating it.
				tr.Latency = lat
			}
			report.AddTimed(tr)
		}
		if !cfg.csv && len(lat) > 0 {
			fmt.Fprintf(out, "latency percentiles (%s):\n%s\n", results[0].Name, bench.FormatLatency(lat))
		}
		lastEmit = time.Now()
		lastSnap = snap
	}
	both := []workload.Dist{workload.Uniform, workload.Gaussian}
	sizes := bench.Sizes(cfg.minExp, cfg.maxExp)

	if want("fig6a") {
		res, err := bench.RunAvgAlphaVsSize(cfg.opts, both, []int{40, 160}, sizes)
		if err != nil {
			return err
		}
		emit(res)
	}
	if want("fig6b") {
		res, err := bench.RunAvgAlphaVsTheta(cfg.opts, both,
			[]int{20, 40, 80, 160, 320}, sizes[len(sizes)-1])
		if err != nil {
			return err
		}
		emit(res)
	}
	if want("fig7") {
		moved, lookups, err := bench.RunMaintenance(cfg.opts, both, sizes)
		if err != nil {
			return err
		}
		emit(moved, lookups)
	}
	if want("fig8a") {
		res, err := bench.RunLookup(cfg.opts, workload.Uniform, sizes)
		if err != nil {
			return err
		}
		res.Name = "Fig 8a"
		emit(res)
	}
	if want("fig8b") {
		res, err := bench.RunLookup(cfg.opts, workload.Gaussian, sizes)
		if err != nil {
			return err
		}
		res.Name = "Fig 8b"
		emit(res)
	}
	if want("fig9a") {
		bw, lat, err := bench.RunRangeVsSize(cfg.opts, workload.Uniform, sizes, cfg.span)
		if err != nil {
			return err
		}
		emit(bw, lat)
	}
	if want("fig9b") {
		bw, lat, err := bench.RunRangeVsSpan(cfg.opts, workload.Uniform, sizes[len(sizes)-1],
			[]float64{0.025, 0.05, 0.1, 0.2, 0.4})
		if err != nil {
			return err
		}
		emit(bw, lat)
	}
	if want("eq3") {
		res, err := bench.RunSavingRatio(cfg.opts, workload.Uniform, sizes[len(sizes)-1],
			[]float64{0, 0.5, 1, 2, 4, 8, 16, 32, 64, 128, 256})
		if err != nil {
			return err
		}
		emit(res)
	}
	if want("thm3") {
		res, err := bench.RunMinMax(cfg.opts, workload.Uniform, sizes)
		if err != nil {
			return err
		}
		emit(res)
	}
	if want("a1") {
		res, err := bench.RunLookupAblation(cfg.opts, workload.Uniform, sizes)
		if err != nil {
			return err
		}
		emit(res)
	}
	if want("a2") {
		res, err := bench.RunMergeAblation(cfg.opts, workload.Uniform, sizes[len(sizes)-1], 4*sizes[len(sizes)-1])
		if err != nil {
			return err
		}
		emit(res)
	}
	if want("a3") {
		res, err := bench.RunThetaSweep(cfg.opts, workload.Uniform, sizes[len(sizes)-1],
			[]int{25, 50, 100, 200, 400}, cfg.span)
		if err != nil {
			return err
		}
		emit(res)
	}
	if want("a4") {
		res, err := bench.RunCacheAblation(cfg.opts, workload.Uniform, sizes)
		if err != nil {
			return err
		}
		emit(res)
	}
	if want("a5") {
		succ, cost, err := bench.RunFaultAblation(cfg.opts, workload.Uniform, sizes[len(sizes)-1],
			[]float64{0, 0.01, 0.02, 0.05, 0.1, 0.2})
		if err != nil {
			return err
		}
		emit(succ, cost)
	}
	if want("a6") {
		load, query, err := bench.RunBatchAblation(cfg.opts, workload.Uniform, sizes)
		if err != nil {
			return err
		}
		emit(load, query)
	}
	if want("a7") {
		// Churn stresses the substrate, not the tree: a modest record
		// count exercises every recovery path while the node count and
		// churn fractions carry the experiment.
		succ, cost, err := bench.RunChurnAblation(cfg.opts, workload.Uniform, 32, sizes[0],
			[]float64{0, 0.05, 0.1, 0.2})
		if err != nil {
			return err
		}
		emit(succ, cost)
	}
	if want("a8") {
		allocs, thru, tail, err := bench.RunWireAblation(cfg.opts)
		if err != nil {
			return err
		}
		emit(allocs, thru, tail)
	}
	if want("a9") {
		thru, rounds, cont, err := bench.RunWriterAblation(cfg.opts, workload.Uniform,
			sizes[len(sizes)-1], []int{1, 2, 4, 8})
		if err != nil {
			return err
		}
		emit(thru, rounds, cont)
	}
	if want("a10") {
		// The tree must hold clearly more leaves than the ablation runs
		// concurrent clients, so uniform arrivals (the control) rarely
		// collide on a leaf and only *skew* concentrates load.
		lat, rt, err := bench.RunHotAblation(cfg.opts, 4*sizes[0])
		if err != nil {
			return err
		}
		emit(lat, rt)
	}
	if want("a11") {
		lat, rt, err := bench.RunChaosAblation(cfg.opts, sizes[0])
		if err != nil {
			return err
		}
		emit(lat, rt)
	}
	if want("a12") {
		lat, rt, err := bench.RunMembershipAblation(cfg.opts, sizes[0])
		if err != nil {
			return err
		}
		emit(lat, rt)
	}
	if want("sweep") {
		results, err := bench.RunSweep(cfg.opts, sizes[0])
		if err != nil {
			return err
		}
		emit(results...)
	}
	if want("s1") {
		res, err := bench.RunHopsVsNodes(cfg.opts, []int{4, 8, 16, 32, 64, 128})
		if err != nil {
			return err
		}
		emit(res)
	}
	if want("rw1") {
		results, err := bench.RunRelatedWork(cfg.opts, workload.Uniform, sizes[len(sizes)-1], cfg.span)
		if err != nil {
			return err
		}
		emit(results...)
	}
	if want("x1") {
		res, err := bench.RunSkewRobustness(cfg.opts, sizes)
		if err != nil {
			return err
		}
		emit(res)
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("interrupted: %w", err)
	}
	if cfg.jsonPath != "" {
		flat := cfg.opts.Agg.Snapshot().Flat()
		report.Counters = &flat
		if err := report.WriteFile(cfg.jsonPath); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s (%d results)\n", cfg.jsonPath, len(report.Results))
	}
	if cfg.baseline != "" {
		base, err := bench.LoadReport(cfg.baseline)
		if err != nil {
			return err
		}
		if bad := bench.CompareBaseline(base, report); len(bad) > 0 {
			for _, line := range bad {
				fmt.Fprintf(out, "perf gate: %s\n", line)
			}
			return fmt.Errorf("perf gate: %d regression(s) against %s", len(bad), cfg.baseline)
		}
		fmt.Fprintf(out, "perf gate ok: %d deterministic rows within 20%% of %s\n",
			bench.GatedRows(base), cfg.baseline)
	}
	return nil
}
