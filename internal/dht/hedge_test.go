package dht

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"lht/internal/metrics"
)

// scriptGet is a DHT whose Get behavior is scripted per call number
// (1-based); writes are accepted and dropped.
type scriptGet struct {
	calls atomic.Int64
	get   func(call int64, ctx context.Context) (Value, error)
}

func (s *scriptGet) Get(ctx context.Context, key string) (Value, error) {
	return s.get(s.calls.Add(1), ctx)
}
func (s *scriptGet) Put(ctx context.Context, key string, v Value) error   { return nil }
func (s *scriptGet) Take(ctx context.Context, key string) (Value, error)  { return nil, ErrNotFound }
func (s *scriptGet) Remove(ctx context.Context, key string) error         { return nil }
func (s *scriptGet) Write(ctx context.Context, key string, v Value) error { return nil }

func TestHedgeWinsOverStraggler(t *testing.T) {
	inner := &scriptGet{}
	inner.get = func(call int64, ctx context.Context) (Value, error) {
		if call == 1 {
			select { // straggler: answers only if nobody cancels it
			case <-time.After(2 * time.Second):
				return "slow", nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return "fast", nil
	}
	var c metrics.Counters
	h := WithHedging(inner, 5*time.Millisecond, &c)

	v, err := h.Get(context.Background(), "k")
	if err != nil || v != "fast" {
		t.Fatalf("Get = %v, %v; want the hedge's answer", v, err)
	}
	f := c.Snapshot().Flat()
	if f.HedgedGets != 1 || f.HedgeWins != 1 {
		t.Fatalf("HedgedGets=%d HedgeWins=%d, want 1/1", f.HedgedGets, f.HedgeWins)
	}
}

func TestNoHedgeWhenFast(t *testing.T) {
	inner := &scriptGet{}
	inner.get = func(call int64, ctx context.Context) (Value, error) { return "v", nil }
	var c metrics.Counters
	h := WithHedging(inner, 50*time.Millisecond, &c)
	for i := 0; i < 5; i++ {
		if v, err := h.Get(context.Background(), "k"); err != nil || v != "v" {
			t.Fatalf("Get = %v, %v", v, err)
		}
	}
	if f := c.Snapshot().Flat(); f.HedgedGets != 0 {
		t.Fatalf("fast gets hedged %d times", f.HedgedGets)
	}
	if n := inner.calls.Load(); n != 5 {
		t.Fatalf("inner saw %d calls, want 5", n)
	}
}

// TestHedgeAfterTransientFailure: if the only in-flight arm dies on a
// transient fault before the timer fires, the duplicate launches
// immediately instead of waiting out the trigger against nothing.
func TestHedgeAfterTransientFailure(t *testing.T) {
	inner := &scriptGet{}
	inner.get = func(call int64, ctx context.Context) (Value, error) {
		if call == 1 {
			return nil, MarkTransient(errors.New("connection reset"))
		}
		return "recovered", nil
	}
	var c metrics.Counters
	h := WithHedging(inner, time.Minute, &c) // timer would never fire in-test

	start := time.Now()
	v, err := h.Get(context.Background(), "k")
	if err != nil || v != "recovered" {
		t.Fatalf("Get = %v, %v", v, err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("hedge waited for the timer instead of firing on arm death")
	}
	if f := c.Snapshot().Flat(); f.HedgedGets != 1 || f.HedgeWins != 1 {
		t.Fatalf("HedgedGets=%d HedgeWins=%d, want 1/1", f.HedgedGets, f.HedgeWins)
	}
}

func TestHedgeBothArmsFailReturnsFirstError(t *testing.T) {
	sentinel := MarkTransient(errors.New("connection reset"))
	inner := &scriptGet{}
	inner.get = func(call int64, ctx context.Context) (Value, error) { return nil, sentinel }
	var c metrics.Counters
	h := WithHedging(inner, time.Millisecond, &c)
	if _, err := h.Get(context.Background(), "k"); err != sentinel {
		t.Fatalf("err = %v, want the first arm's error", err)
	}
}

// TestHedgeNotFoundIsDecisive: a miss is an answer, not a fault — the
// race ends without waiting for the duplicate.
func TestHedgeNotFoundIsDecisive(t *testing.T) {
	inner := &scriptGet{}
	inner.get = func(call int64, ctx context.Context) (Value, error) { return nil, ErrNotFound }
	var c metrics.Counters
	h := WithHedging(inner, time.Hour, &c)
	if _, err := h.Get(context.Background(), "k"); err != ErrNotFound {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if n := inner.calls.Load(); n != 1 {
		t.Fatalf("miss triggered %d inner calls, want 1", n)
	}
}

func TestHedgeTriggerQuantile(t *testing.T) {
	h := &hedger{after: 10 * time.Microsecond}
	if d := h.trigger(context.Background()); d != 10*time.Microsecond {
		t.Fatalf("cold trigger = %v, want the floor", d)
	}
	for i := 0; i < hedgeMinSamples; i++ {
		h.observe(500 * time.Microsecond)
	}
	if d := h.trigger(context.Background()); d != 500*time.Microsecond {
		t.Fatalf("warm trigger = %v, want the observed p95", d)
	}
	// The quantile is clamped at 100x the floor.
	for i := 0; i < hedgeWindow; i++ {
		h.observe(time.Second)
	}
	if d := h.trigger(context.Background()); d != 1000*time.Microsecond {
		t.Fatalf("clamped trigger = %v, want 100*floor", d)
	}
}

func TestHedgeTriggerDeadlineBudget(t *testing.T) {
	h := &hedger{after: time.Minute}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if d := h.trigger(ctx); d > 50*time.Millisecond {
		t.Fatalf("trigger %v exceeds half the remaining deadline", d)
	}
}

func TestHedgeDisabledPassThrough(t *testing.T) {
	inner := &scriptGet{}
	if got := WithHedging(inner, 0, nil); got != DHT(inner) {
		t.Fatal("non-positive trigger must return inner unchanged")
	}
}

// TestHedgeCapabilityReexposure: wrapping the Local substrate (which is
// both a Batcher and a Conditional) must keep both capabilities visible.
func TestHedgeCapabilityReexposure(t *testing.T) {
	h := WithHedging(NewLocal(), time.Millisecond, nil)
	if _, ok := h.(Batcher); !ok {
		t.Fatal("Batcher capability lost")
	}
	if _, ok := h.(Conditional); !ok {
		t.Fatal("Conditional capability lost")
	}
}
