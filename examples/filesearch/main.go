// Filesearch is the paper's motivating scenario (section 1): a P2P file
// sharing network whose users ask "find all MP3 files published between
// Jan 1, 2007 and now" - a range query that a plain DHT cannot serve.
//
// The example runs a 32-node Chord ring, indexes 5000 files by
// publication time (normalized into the [0, 1) key space), and serves the
// date-range query through LHT, reporting both the index-level cost
// (DHT-lookups) and the substrate-level cost (Chord messages).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"time"

	"lht"
)

// The indexable time window: files published in [epoch, horizon).
var (
	epoch   = time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)
	horizon = time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
)

// keyOf maps a publication time into the [0, 1) data-key space.
func keyOf(t time.Time) float64 {
	return float64(t.Sub(epoch)) / float64(horizon.Sub(epoch))
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ring, err := lht.NewChordDHT(32, lht.ChordConfig{Seed: 7, Replicas: 2})
	if err != nil {
		return err
	}
	ix, err := lht.New(ring, lht.DefaultConfig())
	if err != nil {
		return err
	}

	// Publish 5000 files with random timestamps; each record's value is
	// the file name.
	rng := rand.New(rand.NewSource(7))
	window := horizon.Sub(epoch)
	for i := 0; i < 5000; i++ {
		published := epoch.Add(time.Duration(rng.Int63n(int64(window))))
		rec := lht.Record{
			Key:   keyOf(published),
			Value: []byte(fmt.Sprintf("track-%04d.mp3 (%s)", i, published.Format("2006-01-02"))),
		}
		if _, err := ix.Insert(rec); err != nil {
			return err
		}
	}
	loadMsgs := ring.Network().Messages()

	// The user's query: everything published between Jan 1, 2007 and
	// "now" (the paper appeared in 2008; pretend it is mid-2008).
	from := time.Date(2007, 1, 1, 0, 0, 0, 0, time.UTC)
	now := time.Date(2008, 6, 1, 0, 0, 0, 0, time.UTC)
	ring.Network().ResetMessages()
	matches, cost, err := ix.Range(keyOf(from), keyOf(now))
	if err != nil {
		return err
	}
	queryMsgs := ring.Network().Messages()

	sort.Slice(matches, func(i, j int) bool { return matches[i].Key < matches[j].Key })
	fmt.Printf("query: MP3s published between %s and %s\n",
		from.Format("2006-01-02"), now.Format("2006-01-02"))
	fmt.Printf("matched %d of 5000 files; first and last:\n", len(matches))
	if len(matches) > 0 {
		fmt.Printf("  %s\n  %s\n", matches[0].Value, matches[len(matches)-1].Value)
	}
	fmt.Printf("\nindex cost:     %d DHT-lookups in %d parallel steps (near-optimal: %d result buckets + <=3)\n",
		cost.Lookups, cost.Steps, cost.Lookups-3)
	fmt.Printf("substrate cost: %d Chord messages for the query (ring of 32 nodes, O(log N) hops per lookup)\n",
		queryMsgs)

	s := ix.Metrics().Flat()
	fmt.Printf("\nbulk load: %d Chord messages, %d leaf splits, %d record slots moved (one DHT-lookup per split)\n",
		loadMsgs, s.Splits, s.MovedRecords)
	return nil
}
