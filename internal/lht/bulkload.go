package lht

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"lht/internal/bitlabel"
	"lht/internal/keyspace"
	"lht/internal/record"
)

// ErrNotEmpty reports a bulk load into an index that already holds data.
var ErrNotEmpty = errors.New("lht: bulk load requires an empty index")

// BulkLoad populates an empty index with a dataset in one pass: the
// client partitions the records into a valid tree locally (every leaf
// under theta_split, splitting at interval medians exactly as incremental
// growth would) and ships each leaf bucket with a single DHT-put. Loading
// n records costs about n/(theta/2) DHT-lookups instead of incremental
// insertion's ~n*log(D/2) - the standard index-construction optimization.
//
// Records with duplicate keys collapse to the last occurrence (matching
// Insert's replace semantics). Bulk loading performs no splits, so split
// statistics (AlphaMean) stay empty; MovedRecords counts every shipped
// slot, as all buckets travel to their responsible peers.
func (ix *Index) BulkLoad(recs []record.Record) (Cost, error) {
	return ix.BulkLoadContext(context.Background(), recs)
}

// BulkLoadContext is BulkLoad with a caller-supplied context;
// cancellation stops the load between leaf puts (already shipped leaves
// stay put, so a cancelled load leaves a partially populated tree).
func (ix *Index) BulkLoadContext(ctx context.Context, recs []record.Record) (Cost, error) {
	var cost Cost
	// The index must be in its bootstrap state: the single empty leaf.
	b, err := ix.getBucket(ctx, bitlabel.Root.Key(), &cost)
	if err != nil {
		return cost, fmt.Errorf("lht: bulk load probe: %w", err)
	}
	if b.Label != bitlabel.TreeRoot || len(b.Records) > 0 {
		return cost, ErrNotEmpty
	}

	// Deduplicate (last wins) and order by key.
	dedup := make(map[float64]record.Record, len(recs))
	for _, r := range recs {
		if err := keyspace.CheckKey(r.Key); err != nil {
			return cost, err
		}
		dedup[r.Key] = r
	}
	sorted := make([]record.Record, 0, len(dedup))
	for _, r := range dedup {
		sorted = append(sorted, r)
	}
	record.SortByKey(sorted)

	// Partition into leaves exactly as median splits would.
	var leaves []*Bucket
	var build func(label bitlabel.Label, part []record.Record)
	build = func(label bitlabel.Label, part []record.Record) {
		if len(part)+1 < ix.cfg.SplitThreshold || label.Len() >= ix.cfg.Depth {
			if label.Len() >= ix.cfg.Depth && len(part)+1 >= ix.cfg.SplitThreshold {
				ix.mu.Lock()
				ix.overflows++
				ix.mu.Unlock()
			}
			leaves = append(leaves, &Bucket{Label: label, Records: part})
			return
		}
		iv := keyspace.IntervalOf(label)
		pivot := iv.Lo + (iv.Hi-iv.Lo)/2
		split := sort.Search(len(part), func(i int) bool { return part[i].Key >= pivot })
		build(label.Left(), part[:split:split])
		build(label.Right(), part[split:])
	}
	build(bitlabel.TreeRoot, sorted)

	// Ship every leaf to its name; all puts go out in one parallel round.
	cost.Steps++
	for _, leaf := range leaves {
		cost.Lookups++
		ix.c.AddMovedRecords(int64(leaf.Weight()))
		if err := ix.d.Put(ctx, leaf.Label.Name().Key(), leaf); err != nil {
			return cost, fmt.Errorf("lht: bulk load put %s: %w", leaf.Label, err)
		}
	}
	// The bootstrap bucket was either replaced (single-leaf result) or
	// superseded by the new root's leftmost leaf, which shares key "#".
	return cost, nil
}
