// Geosearch exercises the extension the paper's footnote 1 sketches:
// multi-dimensional indexing on top of the one-dimensional index via a
// space-filling curve. Two-dimensional points (normalized map
// coordinates) are Z-order encoded into LHT data keys; a rectangle query
// decomposes into a handful of curve spans, each one an LHT range query,
// with a post-filter on the exact coordinates stored in the record
// payloads.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"
	"math/rand"

	"lht"
	"lht/internal/sfc"
)

// point packs exact coordinates into a record payload.
func pack(x, y float64) []byte {
	buf := make([]byte, 16)
	binary.BigEndian.PutUint64(buf, math.Float64bits(x))
	binary.BigEndian.PutUint64(buf[8:], math.Float64bits(y))
	return buf
}

func unpack(v []byte) (x, y float64) {
	return math.Float64frombits(binary.BigEndian.Uint64(v)),
		math.Float64frombits(binary.BigEndian.Uint64(v[8:]))
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	curve, err := sfc.NewCurve(16) // 2^16 x 2^16 grid
	if err != nil {
		return err
	}
	ix, err := lht.New(lht.NewLocalDHT(), lht.Config{SplitThreshold: 40, MergeThreshold: 20, Depth: 32})
	if err != nil {
		return err
	}

	// 20000 points of interest, clustered around a few "cities".
	rng := rand.New(rand.NewSource(3))
	centers := [][2]float64{{0.25, 0.3}, {0.7, 0.6}, {0.5, 0.85}, {0.15, 0.75}}
	type pt struct{ x, y float64 }
	var pts []pt
	for i := 0; i < 20000; i++ {
		c := centers[rng.Intn(len(centers))]
		x := c[0] + rng.NormFloat64()*0.08
		y := c[1] + rng.NormFloat64()*0.08
		if x < 0 || x >= 1 || y < 0 || y >= 1 {
			continue
		}
		key, err := curve.Encode(x, y)
		if err != nil {
			return err
		}
		// Distinct cells only: the key identifies the cell; nudge
		// duplicates into the next curve position.
		if _, err := ix.Insert(lht.Record{Key: key, Value: pack(x, y)}); err != nil {
			return err
		}
		pts = append(pts, pt{x, y})
	}
	n, err := ix.Count()
	if err != nil {
		return err
	}
	fmt.Printf("indexed %d points (of %d generated; co-located cell duplicates coalesce)\n\n", n, len(pts))

	// Rectangle query around the second city.
	query := sfc.Rect{X0: 0.62, X1: 0.78, Y0: 0.52, Y1: 0.68}
	spans, err := curve.CoverRect(query, 32)
	if err != nil {
		return err
	}

	var (
		hits    []lht.Record
		lookups int
		scanned int
	)
	for _, s := range spans {
		recs, cost, err := ix.Range(s.Lo, s.Hi)
		if err != nil {
			return err
		}
		lookups += cost.Lookups
		scanned += len(recs)
		for _, r := range recs {
			if x, y := unpack(r.Value); query.Contains(x, y) {
				hits = append(hits, r)
			}
		}
	}

	// Brute-force ground truth over the cells that made it into the
	// index.
	truth := 0
	leaves, err := ix.Leaves()
	if err != nil {
		return err
	}
	for _, leaf := range leaves {
		for _, r := range leaf.Records {
			if x, y := unpack(r.Value); query.Contains(x, y) {
				truth++
			}
		}
	}

	fmt.Printf("rectangle [%.2f,%.2f)x[%.2f,%.2f):\n", query.X0, query.X1, query.Y0, query.Y1)
	fmt.Printf("  curve decomposition: %d spans (budget 32)\n", len(spans))
	fmt.Printf("  scanned %d candidate records, %d inside after filtering (ground truth %d)\n",
		scanned, len(hits), truth)
	fmt.Printf("  total cost: %d DHT-lookups across all spans\n", lookups)
	if len(hits) != truth {
		return fmt.Errorf("filtered hits %d != ground truth %d", len(hits), truth)
	}
	precision := float64(len(hits)) / float64(scanned)
	fmt.Printf("  filter precision: %.0f%% (over-approximation confined to span edges)\n", 100*precision)
	return nil
}
