package tcpnet

// Server-side membership: each node runs a Membership that holds a
// versioned dht.ClusterView and keeps it current by anti-entropy gossip —
// every Tick picks one peer (seeded rng, so simnet/netchaos runs replay
// identically), pushes the local view over an OpGossip frame, and merges
// the peer's view from the response. Exchange failures feed a
// fail-counter failure detector (suspect after SuspectAfter consecutive
// misses, dead after DeadAfter more); a node that finds itself slandered
// refutes by bumping its incarnation, which the merge order in
// internal/dht turns into an authoritative resurrection.
//
// The same Tick also drains hinted handoffs: writes that failed over a
// down holder parked an epoch-tagged hint here (OpHintPut), and once the
// view shows the holder routable again the hints replay to it over the
// epoch-ordered OpPutNewer path — a stale hint loses to any newer write
// the holder accepted in the meantime, so replay can never roll a key
// back.
//
// All membership traffic is free in the cost model (see the OpKind doc in
// internal/dht): it is control-plane chatter, not index routing, and the
// gated bench rows never enable it.

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"

	"lht/internal/dht"
	"lht/internal/metrics"
)

// Membership defaults: two straight missed exchanges cast suspicion, two
// more confirm death. With lht-node's default 1s gossip interval that
// makes a silent node suspect in ~2s and dead in ~4s.
const (
	defaultSuspectAfter = 2
	defaultDeadAfter    = 2
	// gossipIOBudget bounds one exchange or replay connection when the
	// caller's context carries no deadline of its own.
	gossipIOBudget = 2 * time.Second
)

// MembershipConfig configures a server's gossip participant.
type MembershipConfig struct {
	// Self is this node's listen address exactly as peers dial it; it is
	// the node's identity in every view. Required.
	Self string
	// Seeds are the bootstrap peers the view starts with (Self is always
	// included). The live member list grows from here by gossip.
	Seeds []string
	// Seed seeds the peer-selection rng; a fixed seed makes the gossip
	// schedule deterministic for replayable tests.
	Seed int64
	// SuspectAfter is how many consecutive failed exchanges with a peer
	// mark it suspect (default 2).
	SuspectAfter int
	// DeadAfter is how many further consecutive failures after suspicion
	// mark the peer dead (default 2).
	DeadAfter int
	// Dialer is the transport factory for outbound gossip and hint replay
	// (nil = plain net.Dialer); the netchaos plane injects here.
	Dialer ContextDialer
}

// Membership is one server's gossip participant. Obtain it with
// Server.EnableMembership; drive it with Tick (tests) or Run (lht-node).
type Membership struct {
	srv    *Server
	self   string
	dialer ContextDialer
	c      *metrics.Counters

	suspectAfter int
	deadAfter    int

	mu    sync.Mutex
	view  dht.ClusterView
	inc   uint64 // self incarnation, bumped only to refute
	rng   *rand.Rand
	fails map[string]int // consecutive failed exchanges per peer
}

// EnableMembership attaches a gossip participant to the server and
// returns it. Call once, before Serve; the OpGossip/OpStatus handlers
// answer with the participant's view from then on.
func (s *Server) EnableMembership(cfg MembershipConfig) *Membership {
	if cfg.Self == "" {
		panic("tcpnet: MembershipConfig.Self is required")
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = defaultSuspectAfter
	}
	if cfg.DeadAfter <= 0 {
		cfg.DeadAfter = defaultDeadAfter
	}
	m := &Membership{
		srv:          s,
		self:         cfg.Self,
		dialer:       cfg.Dialer,
		c:            &s.c,
		suspectAfter: cfg.SuspectAfter,
		deadAfter:    cfg.DeadAfter,
		rng:          rand.New(rand.NewSource(cfg.Seed)),
		fails:        make(map[string]int),
	}
	m.view.Upsert(dht.Member{Addr: cfg.Self, State: dht.MemberAlive})
	for _, seed := range cfg.Seeds {
		if seed != cfg.Self {
			m.view.Upsert(dht.Member{Addr: seed, State: dht.MemberAlive})
		}
	}
	s.mu.Lock()
	s.mem = m
	s.mu.Unlock()
	return m
}

// Membership returns the server's gossip participant, if enabled.
func (s *Server) Membership() *Membership {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mem
}

// Has reports whether the node currently stores key. The A12 harness uses
// it to count live replicas per key without routing through a client.
func (s *Server) Has(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.store[key]
	return ok
}

// View returns a snapshot of the node's current membership view.
func (m *Membership) View() dht.ClusterView {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.view.Clone()
}

// upsertLocked applies a local state transition under the merge order and
// advances the epoch when it changed anything. Callers hold m.mu.
func (m *Membership) upsertLocked(mem dht.Member) {
	if m.view.Upsert(mem) {
		m.view.Epoch++
	}
}

// refuteLocked re-asserts this node as alive when the view slanders it:
// the incarnation bump outranks any same-or-older suspicion or death
// rumor at merge time. Callers hold m.mu.
func (m *Membership) refuteLocked() {
	me, ok := m.view.Find(m.self)
	if !ok || me.State == dht.MemberAlive {
		return
	}
	if me.Incarnation >= m.inc {
		m.inc = me.Incarnation + 1
	}
	m.upsertLocked(dht.Member{Addr: m.self, State: dht.MemberAlive, Incarnation: m.inc})
}

// merge folds a remote view into the local one (used by the OpGossip
// handler and by Tick for the response view) and returns the local view
// after refutation. Safe to call while the server holds s.mu: only m.mu
// is taken.
func (m *Membership) merge(remote dht.ClusterView) dht.ClusterView {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.view.Merge(remote)
	m.refuteLocked()
	return m.view.Clone()
}

// Leave marks this node as gracefully departed. The claim spreads on
// subsequent exchanges initiated by peers; a left node never rejoins
// under the same incarnation.
func (m *Membership) Leave() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.upsertLocked(dht.Member{Addr: m.self, State: dht.MemberLeft, Incarnation: m.inc})
}

// Tick performs one gossip round: pick one peer by seeded rng, exchange
// views, and apply the failure detector to the outcome; then replay any
// parked hints whose holder the view shows routable again. Returns the
// exchange error, or nil when the round had no peer to talk to.
func (m *Membership) Tick(ctx context.Context) error {
	peer, ok := m.pickPeer()
	if !ok {
		m.replayHints(ctx)
		return nil
	}
	m.c.AddGossipRounds(1)
	m.mu.Lock()
	local := m.view.Clone()
	m.mu.Unlock()
	remote, err := m.exchange(ctx, peer, local)
	m.mu.Lock()
	if err != nil {
		m.recordFailureLocked(peer)
	} else {
		m.fails[peer] = 0
		m.view.Merge(remote)
		m.refuteLocked()
	}
	m.mu.Unlock()
	m.replayHints(ctx)
	return err
}

// Run drives Tick every interval until ctx ends; lht-node's background
// gossip loop.
func (m *Membership) Run(ctx context.Context, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			_ = m.Tick(ctx)
		}
	}
}

// pickPeer chooses the round's gossip target: a seeded-uniform draw over
// every known peer that is not confirmed gone (dead peers are still
// probed occasionally via their hint replay path, but gossip targets only
// alive/suspect members — a returned node re-announces itself).
func (m *Membership) pickPeer() (string, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var peers []string
	for _, mem := range m.view.Members {
		if mem.Addr != m.self && mem.State.Routable() {
			peers = append(peers, mem.Addr)
		}
	}
	if len(peers) == 0 {
		return "", false
	}
	return peers[m.rng.Intn(len(peers))], true
}

// recordFailureLocked advances the peer's failure count and worsens its
// state at the configured thresholds. The transition keeps the peer's
// current incarnation: only the peer itself may bump it, so a comeback
// always wins the merge. Callers hold m.mu.
func (m *Membership) recordFailureLocked(peer string) {
	f := m.fails[peer] + 1
	m.fails[peer] = f
	cur, _ := m.view.Find(peer)
	switch {
	case f >= m.suspectAfter+m.deadAfter:
		if cur.State == dht.MemberSuspect || cur.State == dht.MemberAlive {
			m.upsertLocked(dht.Member{Addr: peer, State: dht.MemberDead, Incarnation: cur.Incarnation})
		}
	case f >= m.suspectAfter:
		if cur.State == dht.MemberAlive {
			m.upsertLocked(dht.Member{Addr: peer, State: dht.MemberSuspect, Incarnation: cur.Incarnation})
		}
	}
}

// exchange performs one outbound OpGossip round trip on a fresh
// connection: send the local view, return the peer's.
func (m *Membership) exchange(ctx context.Context, addr string, local dht.ClusterView) (dht.ClusterView, error) {
	body, err := m.roundTrip(ctx, addr, func(conn net.Conn, bw *bufio.Writer) error {
		bp := newFrame(dht.OpGossip)
		*bp = appendView(*bp, local)
		finishFrame(*bp, 1)
		_, werr := bw.Write(*bp)
		putBuf(bp)
		return werr
	})
	if err != nil {
		return dht.ClusterView{}, err
	}
	defer putBuf(body)
	c := cursor{b: (*body)[frameHeaderLen:]}
	st, err := c.u8()
	if err != nil {
		return dht.ClusterView{}, errTruncated
	}
	if st != statusOK {
		return dht.ClusterView{}, fmt.Errorf("tcpnet: gossip %q: %s", addr, string(c.rest()))
	}
	return readView(&c)
}

// roundTrip dials addr, writes the framed-protocol magic, lets send write
// one or more request frames, flushes, and reads one response frame into
// a pooled buffer the caller must putBuf.
func (m *Membership) roundTrip(ctx context.Context, addr string, send func(net.Conn, *bufio.Writer) error) (*[]byte, error) {
	ctx, cancel := withIOBudget(ctx)
	defer cancel()
	conn, err := dialWith(ctx, m.dialer, addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if dl, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(dl)
	}
	bw := bufio.NewWriterSize(conn, wireBufSize)
	if _, err := bw.WriteString(wireMagic); err != nil {
		return nil, err
	}
	if err := send(conn, bw); err != nil {
		return nil, err
	}
	if err := bw.Flush(); err != nil {
		return nil, err
	}
	br := bufio.NewReaderSize(conn, wireBufSize)
	bp := getBuf()
	body, err := readFrameBody(br, *bp)
	*bp = body
	if err != nil {
		putBuf(bp)
		return nil, err
	}
	if len(body) < frameHeaderLen+1 {
		putBuf(bp)
		return nil, errTruncated
	}
	return bp, nil
}

// withIOBudget caps ctx with the default gossip IO budget when it has no
// deadline of its own.
func withIOBudget(ctx context.Context) (context.Context, context.CancelFunc) {
	if _, ok := ctx.Deadline(); ok {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, gossipIOBudget)
}

// replayHints walks the parked-hint store and delivers every hint whose
// holder the view shows routable, over the epoch-ordered OpPutNewer path.
// Hints that fail to deliver stay parked for the next round.
func (m *Membership) replayHints(ctx context.Context) {
	m.mu.Lock()
	routable := make(map[string]bool, len(m.view.Members))
	for _, mem := range m.view.Members {
		routable[mem.Addr] = mem.State.Routable()
	}
	m.mu.Unlock()

	s := m.srv
	s.mu.Lock()
	var batches []hintBatch
	for holder, keys := range s.hints {
		if holder == m.self || !routable[holder] {
			continue
		}
		b := hintBatch{holder: holder, vals: make(map[string][]byte, len(keys))}
		for k, v := range keys {
			b.vals[k] = v
		}
		batches = append(batches, b)
	}
	s.mu.Unlock()

	for _, b := range batches {
		delivered := m.deliverHints(ctx, b.holder, b.vals)
		if len(delivered) == 0 {
			continue
		}
		s.mu.Lock()
		if keys := s.hints[b.holder]; keys != nil {
			for _, k := range delivered {
				// A fresher hint may have parked while we replayed; only
				// retire the exact bytes that were delivered.
				if cur, ok := keys[k]; ok && string(cur) == string(b.vals[k]) {
					delete(keys, k)
				}
			}
			if len(keys) == 0 {
				delete(s.hints, b.holder)
			}
		}
		s.mu.Unlock()
		m.c.AddHintsReplayed(int64(len(delivered)))
	}
}

type hintBatch struct {
	holder string
	vals   map[string][]byte
}

// deliverHints sends each parked value to its returned holder as an
// OpPutNewer and returns the keys the holder acknowledged. One connection
// carries the whole batch; the first transport error abandons the rest
// (they stay parked).
func (m *Membership) deliverHints(ctx context.Context, holder string, vals map[string][]byte) []string {
	ctx, cancel := withIOBudget(ctx)
	defer cancel()
	conn, err := dialWith(ctx, m.dialer, holder)
	if err != nil {
		return nil
	}
	defer conn.Close()
	if dl, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(dl)
	}
	bw := bufio.NewWriterSize(conn, wireBufSize)
	if _, err := bw.WriteString(wireMagic); err != nil {
		return nil
	}
	br := bufio.NewReaderSize(conn, wireBufSize)
	var delivered []string
	for key, val := range vals {
		bp := newFrame(dht.OpPutNewer)
		*bp = appendLenString(*bp, key)
		*bp = append(*bp, val...)
		finishFrame(*bp, 1)
		_, werr := bw.Write(*bp)
		putBuf(bp)
		if werr != nil || bw.Flush() != nil {
			break
		}
		rp := getBuf()
		body, rerr := readFrameBody(br, *rp)
		*rp = body
		if rerr != nil || len(body) < frameHeaderLen+1 || body[frameHeaderLen] != statusOK {
			putBuf(rp)
			break
		}
		putBuf(rp)
		delivered = append(delivered, key)
	}
	return delivered
}

// HintBacklog returns the number of keys parked per holder awaiting
// replay, for status reporting.
func (s *Server) HintBacklog() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.hints) == 0 {
		return nil
	}
	out := make(map[string]int, len(s.hints))
	for holder, keys := range s.hints {
		out[holder] = len(keys)
	}
	return out
}

// parkHint stores a hinted handoff for an unreachable holder: the exact
// tagged value the failed fan-out would have delivered. A newer-epoch
// hint for the same key replaces an older parked one. Callers hold s.mu.
func (s *Server) parkHintLocked(holder, key string, val []byte) {
	if s.hints == nil {
		s.hints = make(map[string]map[string][]byte)
	}
	keys := s.hints[holder]
	if keys == nil {
		keys = make(map[string][]byte)
		s.hints[holder] = keys
	}
	if cur, ok := keys[key]; ok && storedEpoch(cur) > storedEpoch(val) {
		return // an older fan-out arrived late; keep the newer hint
	}
	keys[key] = append([]byte(nil), val...)
	s.c.AddHintsParked(1)
}

// View wire encoding (canonical, shared by OpGossip and OpStatus):
//
//	uv epoch, uv count, count x (uv alen, addr, state u8, uv incarnation)

// appendView appends the wire encoding of a view.
func appendView(b []byte, v dht.ClusterView) []byte {
	b = appendUv(b, v.Epoch)
	b = appendUv(b, uint64(len(v.Members)))
	for _, m := range v.Members {
		b = appendLenString(b, m.Addr)
		b = append(b, byte(m.State))
		b = appendUv(b, m.Incarnation)
	}
	return b
}

// readView decodes a view from the cursor. Member entries fold in through
// Upsert, so a non-canonical (unsorted or duplicated) encoding still
// yields a well-formed view.
func readView(c *cursor) (dht.ClusterView, error) {
	var v dht.ClusterView
	epoch, err := c.uvarint()
	if err != nil {
		return v, err
	}
	v.Epoch = epoch
	n, err := c.count()
	if err != nil {
		return v, err
	}
	for i := 0; i < n; i++ {
		addr, err := c.lenBytes()
		if err != nil {
			return v, err
		}
		st, err := c.u8()
		if err != nil {
			return v, err
		}
		if dht.MemberState(st) > dht.MemberLeft {
			return v, fmt.Errorf("tcpnet: unknown member state %d", st)
		}
		inc, err := c.uvarint()
		if err != nil {
			return v, err
		}
		v.Upsert(dht.Member{Addr: string(addr), State: dht.MemberState(st), Incarnation: inc})
	}
	return v, nil
}

// errNoMembership is the wire error for membership ops on a server that
// never enabled the plane.
var errNoMembership = errors.New("membership disabled")

// respondMembership serves the membership-plane ops (split out of respond
// to keep that switch readable). It is called under s.mu.
func (s *Server) respondMembership(op dht.OpKind, c *cursor, out []byte) []byte {
	switch op {
	case dht.OpGossip:
		remote, err := readView(c)
		if err != nil || !c.empty() {
			return appendStatusErr(out, errMalformed)
		}
		mem := s.mem
		if mem == nil {
			return appendStatusErr(out, errNoMembership.Error())
		}
		// merge only takes mem.mu; lock order is always s.mu -> mem.mu.
		local := mem.merge(remote)
		out = append(out, statusOK)
		return appendView(out, local)

	case dht.OpHintPut:
		holder, err := c.lenBytes()
		if err != nil {
			return appendStatusErr(out, errMalformed)
		}
		key, err := c.lenBytes()
		if err != nil {
			return appendStatusErr(out, errMalformed)
		}
		val := c.rest()
		if len(val) == 0 {
			return appendStatusErr(out, errMalformed)
		}
		s.parkHintLocked(string(holder), string(key), val)
		return append(out, statusOK)

	case dht.OpStatus:
		if !c.empty() {
			return appendStatusErr(out, errMalformed)
		}
		var view dht.ClusterView
		if s.mem != nil {
			s.mem.mu.Lock()
			view = s.mem.view.Clone()
			s.mem.mu.Unlock()
		}
		out = append(out, statusOK)
		out = appendView(out, view)
		out = appendUv(out, uint64(len(s.hints)))
		// Deterministic order: hints render sorted by holder address.
		holders := make([]string, 0, len(s.hints))
		for h := range s.hints {
			holders = append(holders, h)
		}
		sort.Strings(holders)
		for _, h := range holders {
			out = appendLenString(out, h)
			out = appendUv(out, uint64(len(s.hints[h])))
		}
		return out

	default:
		return appendStatusErr(out, "unknown op")
	}
}
