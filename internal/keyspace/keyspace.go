// Package keyspace models the one-dimensional data-key space of LHT.
//
// A data key delta is a real value in [0, 1) (paper section 3.1). The
// partition tree splits the space at interval medians, so every tree node
// covers a dyadic interval [lo, hi) determined entirely by its label
// (section 3.2). This package converts between data keys, labels, and
// intervals, including the binary expansion mu(delta, D) used by the
// lookup binary search (section 5).
package keyspace

import (
	"errors"
	"fmt"

	"lht/internal/bitlabel"
)

// MaxDepth is the deepest tree the float64 key space supports exactly:
// every dyadic boundary down to 2^-52 is representable, so interval
// arithmetic and binary expansion agree bit for bit. (bitlabel.Label
// holds up to 62 bits, but beyond 52 the float64 mantissa runs out.)
const MaxDepth = 52

// ErrKeyRange reports a data key outside [0, 1).
var ErrKeyRange = errors.New("keyspace: data key outside [0, 1)")

// CheckKey validates that delta lies in the data-key domain [0, 1).
func CheckKey(delta float64) error {
	if !(delta >= 0 && delta < 1) { // also rejects NaN
		return fmt.Errorf("%w: %v", ErrKeyRange, delta)
	}
	return nil
}

// Mu computes the binary string mu(delta, D) of section 5: the label of
// the depth-D tree node whose interval contains delta. Its first bit is
// the root edge 0 and the remaining D-1 bits are the binary expansion of
// delta. Every possible leaf label covering delta is a prefix of
// Mu(delta, D) as long as the tree is at most D deep.
//
// depth must be in [1, MaxDepth]; the caller (index configuration)
// validates it. Mu panics on an invalid depth and returns an error only
// for an out-of-range key, mirroring how the index layers use it.
func Mu(delta float64, depth int) (bitlabel.Label, error) {
	if depth < 1 || depth > MaxDepth {
		panic(fmt.Sprintf("keyspace: Mu depth %d outside [1, %d]", depth, MaxDepth))
	}
	if err := CheckKey(delta); err != nil {
		return bitlabel.Label{}, err
	}
	l := bitlabel.TreeRoot
	for i := 1; i < depth; i++ {
		delta *= 2
		if delta >= 1 {
			l = l.Right()
			delta -= 1
		} else {
			l = l.Left()
		}
	}
	return l, nil
}

// Interval is a half-open interval [Lo, Hi) of the data-key space.
type Interval struct {
	Lo, Hi float64
}

// Full is the whole data-key space [0, 1).
var Full = Interval{Lo: 0, Hi: 1}

// IntervalOf returns the dyadic interval covered by a tree node. The
// virtual root and the regular root "#0" both cover [0, 1); each further
// bit halves the interval (0 keeps the lower half, 1 the upper half).
func IntervalOf(l bitlabel.Label) Interval {
	iv := Full
	for i := 1; i < l.Len(); i++ {
		mid := iv.Lo + (iv.Hi-iv.Lo)/2
		if l.Bit(i) == 0 {
			iv.Hi = mid
		} else {
			iv.Lo = mid
		}
	}
	return iv
}

// Contains reports whether delta lies in [Lo, Hi).
func (iv Interval) Contains(delta float64) bool {
	return delta >= iv.Lo && delta < iv.Hi
}

// Overlaps reports whether the two half-open intervals intersect.
func (iv Interval) Overlaps(other Interval) bool {
	return iv.Lo < other.Hi && other.Lo < iv.Hi
}

// ContainedIn reports whether iv is a subset of other.
func (iv Interval) ContainedIn(other Interval) bool {
	return other.Lo <= iv.Lo && iv.Hi <= other.Hi
}

// Intersect returns the intersection of the two intervals. The result is
// empty (Lo >= Hi) when they do not overlap.
func (iv Interval) Intersect(other Interval) Interval {
	out := iv
	if other.Lo > out.Lo {
		out.Lo = other.Lo
	}
	if other.Hi < out.Hi {
		out.Hi = other.Hi
	}
	return out
}

// Empty reports whether the interval contains no keys.
func (iv Interval) Empty() bool { return iv.Lo >= iv.Hi }

// Width returns Hi - Lo (zero for empty intervals).
func (iv Interval) Width() float64 {
	if iv.Empty() {
		return 0
	}
	return iv.Hi - iv.Lo
}

// String renders the interval as "[lo, hi)".
func (iv Interval) String() string { return fmt.Sprintf("[%g, %g)", iv.Lo, iv.Hi) }

// RangeLCA returns the label of the lowest tree node whose interval covers
// the query range [lo, hi), descending from the regular root and stopping
// either when the node's children would split the range or at maxDepth
// bits. This is the locally computable LCA of Algorithm 4 (general range
// forwarding): it depends only on the range, not on the tree's current
// shape.
func RangeLCA(r Interval, maxDepth int) bitlabel.Label {
	l := bitlabel.TreeRoot
	iv := Full
	for l.Len() < maxDepth {
		mid := iv.Lo + (iv.Hi-iv.Lo)/2
		switch {
		case r.Hi <= mid:
			l = l.Left()
			iv.Hi = mid
		case r.Lo >= mid:
			l = l.Right()
			iv.Lo = mid
		default:
			return l
		}
	}
	return l
}
