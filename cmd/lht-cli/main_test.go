package main

import (
	"context"
	"net"
	"strings"
	"testing"

	"lht/internal/tcpnet"
)

// startNodes boots n in-process lht-node equivalents and returns their
// addresses joined for the -nodes flag.
func startNodes(t *testing.T, n int) string {
	t.Helper()
	addrs := make([]string, 0, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := tcpnet.NewServer()
		go func() { _ = srv.Serve(ln) }()
		t.Cleanup(func() { _ = srv.Close() })
		addrs = append(addrs, ln.Addr().String())
	}
	return strings.Join(addrs, ",")
}

func cli(t *testing.T, nodes string, args ...string) (string, error) {
	t.Helper()
	var out strings.Builder
	err := run(context.Background(), append([]string{"-nodes", nodes, "-theta", "8"}, args...), &out)
	return out.String(), err
}

func TestCLIWorkflow(t *testing.T) {
	nodes := startNodes(t, 3)

	out, err := cli(t, nodes, "put", "0.42", "hello world")
	if err != nil || !strings.Contains(out, "ok (") {
		t.Fatalf("put: %q, %v", out, err)
	}
	out, err = cli(t, nodes, "get", "0.42")
	if err != nil || !strings.Contains(out, "hello world") {
		t.Fatalf("get: %q, %v", out, err)
	}
	out, err = cli(t, nodes, "fill", "500")
	if err != nil || !strings.Contains(out, "inserted 500 records") {
		t.Fatalf("fill: %q, %v", out, err)
	}
	out, err = cli(t, nodes, "count")
	if err != nil || !strings.Contains(out, "501 records") {
		t.Fatalf("count: %q, %v", out, err)
	}
	out, err = cli(t, nodes, "range", "0.4", "0.45")
	if err != nil || !strings.Contains(out, "DHT-lookups") {
		t.Fatalf("range: %q, %v", out, err)
	}
	if !strings.Contains(out, "hello world") {
		t.Fatalf("range should include the put record: %q", out)
	}
	out, err = cli(t, nodes, "min")
	if err != nil || !strings.Contains(out, "DHT-lookups") {
		t.Fatalf("min: %q, %v", out, err)
	}
	out, err = cli(t, nodes, "max")
	if err != nil || out == "" {
		t.Fatalf("max: %q, %v", out, err)
	}
	if _, err = cli(t, nodes, "del", "0.42"); err != nil {
		t.Fatalf("del: %v", err)
	}
	if _, err = cli(t, nodes, "get", "0.42"); err == nil {
		t.Fatal("get after del should fail")
	}
}

func TestCLIErrors(t *testing.T) {
	nodes := startNodes(t, 1)
	cases := [][]string{
		{},                  // missing command
		{"put", "0.5"},      // wrong arity
		{"put", "abc", "v"}, // bad key
		{"range", "0.5"},    // wrong arity
		{"fill", "-3"},      // bad count
		{"frobnicate"},      // unknown command
		{"get", "1.5"},      // key out of domain
	}
	for _, args := range cases {
		if _, err := cli(t, nodes, args...); err == nil {
			t.Errorf("cli(%v) should fail", args)
		}
	}
	var out strings.Builder
	if err := run(context.Background(), []string{"-nodes", "127.0.0.1:1", "count"}, &out); err == nil {
		t.Error("dead cluster should fail")
	}
}

func TestCLIScan(t *testing.T) {
	nodes := startNodes(t, 2)
	if _, err := cli(t, nodes, "fill", "200"); err != nil {
		t.Fatal(err)
	}
	out, err := cli(t, nodes, "scan", "0.5", "10")
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if !strings.Contains(out, "10 records") {
		t.Fatalf("scan output: %q", out)
	}
	if _, err := cli(t, nodes, "scan", "0.5"); err == nil {
		t.Error("scan with wrong arity should fail")
	}
	if _, err := cli(t, nodes, "scan", "0.5", "x"); err == nil {
		t.Error("scan with bad limit should fail")
	}
}
