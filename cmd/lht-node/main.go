// Command lht-node runs one storage node of an LHT cluster: a
// gob-over-TCP key-value server (internal/tcpnet). Start a few on
// different ports, then point lht-cli (or any program using
// tcpnet.Dial + lht.New) at the full member list:
//
//	lht-node -listen 127.0.0.1:7001 -data /var/lib/lht/n1.snap &
//	lht-node -listen 127.0.0.1:7002 -data /var/lib/lht/n2.snap &
//	lht-node -listen 127.0.0.1:7003 -data /var/lib/lht/n3.snap &
//	lht-cli -nodes 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003 fill 10000
//
// With -data set, the node loads its shard at startup and snapshots it
// on SIGINT/SIGTERM, so a restart preserves the index; adding
// -snapshot-interval 30s also snapshots periodically, bounding what a
// hard crash can lose to one interval.
//
// With -metrics set, the node serves its traffic counters in Prometheus
// text format on http://ADDR/metrics (plus net/http/pprof profiles):
//
//	lht-node -listen 127.0.0.1:7001 -metrics 127.0.0.1:9001 &
//	curl -s http://127.0.0.1:9001/metrics | grep lht_dht_lookups_total
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lht/internal/metrics"
	"lht/internal/tcpnet"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7001", "address to listen on")
	data := flag.String("data", "", "snapshot file for the node's shard (empty = in-memory only)")
	interval := flag.Duration("snapshot-interval", 0, "also snapshot the shard periodically (0 = only on shutdown); requires -data")
	metricsAddr := flag.String("metrics", "", "serve Prometheus /metrics and pprof on this address (empty = disabled)")
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *listen, *data, *metricsAddr, *interval); err != nil {
		fmt.Fprintln(os.Stderr, "lht-node:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, listen, data, metricsAddr string, interval time.Duration) error {
	srv := tcpnet.NewServer()
	if data != "" {
		if err := srv.LoadSnapshot(data); err != nil {
			return err
		}
		log.Printf("loaded %d keys from %s", srv.Len(), data)
	}
	if interval > 0 && data == "" {
		return fmt.Errorf("-snapshot-interval requires -data")
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}

	// The observability endpoint is separate from the data port so
	// scrapes never contend with the gob protocol.
	if metricsAddr != "" {
		mln, err := net.Listen("tcp", metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		msrv := &http.Server{Handler: metrics.NewMux(srv.Metrics)}
		go func() {
			<-ctx.Done()
			_ = msrv.Close()
		}()
		go func() {
			if err := msrv.Serve(mln); err != nil && err != http.ErrServerClosed {
				log.Printf("metrics server: %v", err)
			}
		}()
		log.Printf("metrics on http://%s/metrics", mln.Addr())
	}

	// Periodic snapshots bound the state a crash (as opposed to a clean
	// shutdown) can lose to one interval; a restarted node then resumes
	// from recent state instead of the last manual save.
	if interval > 0 {
		go func() {
			t := time.NewTicker(interval)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					if err := srv.SaveSnapshot(data); err != nil {
						log.Printf("periodic snapshot: %v", err)
					} else {
						log.Printf("snapshotted %d keys to %s", srv.Len(), data)
					}
				}
			}
		}()
	}

	// SIGINT/SIGTERM cancels ctx: snapshot the shard, then close the
	// server, which unblocks Serve below for a clean exit.
	go func() {
		<-ctx.Done()
		if data != "" {
			if err := srv.SaveSnapshot(data); err != nil {
				log.Printf("snapshot: %v", err)
			} else {
				log.Printf("snapshotted %d keys to %s", srv.Len(), data)
			}
		}
		log.Printf("shutting down (%d keys stored)", srv.Len())
		if err := srv.Close(); err != nil {
			log.Printf("close: %v", err)
		}
	}()

	log.Printf("lht-node serving on %s", ln.Addr())
	return srv.Serve(ln)
}
