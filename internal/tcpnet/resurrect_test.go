package tcpnet

// The one divergence window client-driven replication leaves open (see
// the header of replicas.go): a removal racing an earlier commit's
// OpPutNewer fan-out can transiently resurrect a stale copy on a
// secondary after RemoveIf's propagation deleted it. This test pins the
// repair contract: the resurrected copy carries an older epoch, the
// index's next Scrub orders the two by epoch and retires the straggler,
// and the pass after that is clean.

import (
	"context"
	"errors"
	"testing"

	"lht/internal/dht"
	ilht "lht/internal/lht"
	"lht/internal/record"
)

func TestScrubRetiresResurrectedStraggler(t *testing.T) {
	addrs, _ := startServerMap(t, 3)
	c, err := DialContext(context.Background(), addrs, WithReplicas(2))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	ctx := context.Background()

	// Split the root (theta=4 saturates on the third insert), leaving
	// 0.7 alone in leaf #01, stored under its name key "#0".
	ix, err := ilht.New(c, ilht.Config{SplitThreshold: 4, MergeThreshold: 4, Depth: 20})
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range []float64{0.1, 0.3, 0.7} {
		if _, err := ix.Insert(record.Record{Key: k, Value: []byte{byte(i)}}); err != nil {
			t.Fatalf("insert %g: %v", k, err)
		}
	}

	// Capture the pre-merge child exactly as a holder stores it: this is
	// the value an in-flight OpPutNewer fan-out would still be carrying.
	stale, err := c.Get(ctx, "#0")
	if err != nil {
		t.Fatalf("pre-merge child under %q: %v", "#0", err)
	}

	// Deleting 0.7 drops leaf #01 below the merge threshold; the merge's
	// RemoveIf propagation deletes key "#0" from every holder.
	if _, err := ix.Delete(0.7); err != nil {
		t.Fatalf("merging delete: %v", err)
	}
	if _, err := c.Get(ctx, "#0"); !errors.Is(err, dht.ErrNotFound) {
		t.Fatalf("child key still stored after merge: %v", err)
	}

	// The straggler lands: the stale copy reappears on a secondary
	// holder, after the removal. OpPutNewer accepts it — the holder has
	// nothing stored, so there is no epoch to order it against.
	secondary := c.owners("#0")[1]
	if err := c.putTo(ctx, secondary, dht.OpPutNewer, "#0", stale); err != nil {
		t.Fatalf("straggler store: %v", err)
	}
	if _, err := c.Get(ctx, "#0"); err != nil {
		t.Fatalf("resurrected copy not visible: %v", err)
	}

	// The next Scrub walks the live leaf #0, probes its label key "#0",
	// finds the stale child there with an older epoch, and retires it.
	rep, err := ix.Scrub(ctx)
	if err != nil {
		t.Fatalf("Scrub: %v\n%s", err, rep)
	}
	if rep.Orphans != 1 {
		t.Fatalf("Scrub retired %d orphans, want 1:\n%s", rep.Orphans, rep)
	}
	if _, err := c.Get(ctx, "#0"); !errors.Is(err, dht.ErrNotFound) {
		t.Fatalf("straggler survives Scrub: %v", err)
	}

	// Data is intact and the tree is quiescent again.
	for _, want := range []struct {
		key float64
		val byte
	}{{0.1, 0}, {0.3, 1}} {
		rec, _, err := ix.Search(want.key)
		if err != nil || rec.Value[0] != want.val {
			t.Fatalf("Search(%g) = %v, %v", want.key, rec, err)
		}
	}
	rep, err = ix.Scrub(ctx)
	if err != nil || !rep.Clean() {
		t.Fatalf("second Scrub = %v, %s; want clean", err, rep)
	}
}
