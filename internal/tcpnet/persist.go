package tcpnet

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
)

// snapshotFormat versions the on-disk layout. Format 2 stores tagged
// values (tagRaw/tagGob prefix, see frame.go); format 1 stored bare gob
// bytes and is migrated on load by prefixing tagGob.
const snapshotFormat = 2

type snapshot struct {
	Format int
	Store  map[string][]byte
}

// SaveSnapshot writes the node's store to path atomically (temp file +
// rename), so an lht-node can restart without losing its shard. Values
// are already serialized bytes, making the snapshot format trivially
// stable.
func (s *Server) SaveSnapshot(path string) error {
	s.mu.Lock()
	snap := snapshot{Format: snapshotFormat, Store: make(map[string][]byte, len(s.store))}
	for k, v := range s.store {
		cp := make([]byte, len(v))
		copy(cp, v)
		snap.Store[k] = cp
	}
	s.mu.Unlock()

	tmp, err := os.CreateTemp(filepath.Dir(path), ".lht-node-*")
	if err != nil {
		return fmt.Errorf("tcpnet: snapshot temp: %w", err)
	}
	defer func() { _ = os.Remove(tmp.Name()) }()
	if err := gob.NewEncoder(tmp).Encode(snap); err != nil {
		_ = tmp.Close()
		return fmt.Errorf("tcpnet: snapshot encode: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("tcpnet: snapshot close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("tcpnet: snapshot rename: %w", err)
	}
	return nil
}

// LoadSnapshot replaces the node's store with the snapshot at path. A
// missing file is not an error - it is simply a fresh node.
func (s *Server) LoadSnapshot(path string) error {
	f, err := os.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("tcpnet: snapshot open: %w", err)
	}
	defer func() { _ = f.Close() }()
	var snap snapshot
	if err := gob.NewDecoder(f).Decode(&snap); err != nil {
		return fmt.Errorf("tcpnet: snapshot decode: %w", err)
	}
	switch snap.Format {
	case snapshotFormat:
	case 1:
		// Format 1 predates value tagging: every value is gob bytes.
		for k, v := range snap.Store {
			snap.Store[k] = tagWrap(v)
		}
	default:
		return fmt.Errorf("tcpnet: snapshot format %d, want %d", snap.Format, snapshotFormat)
	}
	s.mu.Lock()
	s.store = snap.Store
	if s.store == nil {
		s.store = make(map[string][]byte)
	}
	s.mu.Unlock()
	return nil
}
