package chord

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"lht/internal/dht"
)

// TestBatchMatchesPerOpAndSavesMessages loads two identical rings — one
// through the native batch plane, one per-op — and checks the batch path
// returns identical data while spending fewer simulated network messages.
func TestBatchMatchesPerOpAndSavesMessages(t *testing.T) {
	ctx := context.Background()
	const n = 64
	keys := make([]string, n)
	kvs := make([]dht.KV, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%03d", i)
		kvs[i] = dht.KV{Key: keys[i], Val: i}
	}

	batched := newRing(t, 16, Config{Seed: 42})
	perOp := newRing(t, 16, Config{Seed: 42})

	batched.Network().ResetMessages()
	for _, err := range batched.PutBatch(ctx, kvs) {
		if err != nil {
			t.Fatal(err)
		}
	}
	putMsgs := batched.Network().Messages()

	perOp.Network().ResetMessages()
	for _, kv := range kvs {
		if err := perOp.Put(ctx, kv.Key, kv.Val); err != nil {
			t.Fatal(err)
		}
	}
	perOpPutMsgs := perOp.Network().Messages()

	if putMsgs >= perOpPutMsgs {
		t.Errorf("batched put cost %d messages, per-op %d; batching should be cheaper", putMsgs, perOpPutMsgs)
	}

	batched.Network().ResetMessages()
	vals, errs := batched.GetBatch(ctx, keys)
	getMsgs := batched.Network().Messages()
	for i := range keys {
		if errs[i] != nil {
			t.Fatalf("slot %d: %v", i, errs[i])
		}
		if vals[i].(int) != i {
			t.Fatalf("slot %d = %v, want %d", i, vals[i], i)
		}
		pv, err := perOp.Get(ctx, keys[i])
		if err != nil || pv.(int) != i {
			t.Fatalf("per-op ring slot %d = %v, %v", i, pv, err)
		}
	}
	perOp.Network().ResetMessages()
	for _, k := range keys {
		if _, err := perOp.Get(ctx, k); err != nil {
			t.Fatal(err)
		}
	}
	perOpGetMsgs := perOp.Network().Messages()
	if getMsgs >= perOpGetMsgs {
		t.Errorf("batched get cost %d messages, per-op %d; batching should be cheaper", getMsgs, perOpGetMsgs)
	}
}

// TestBatchMissingKeys: absent keys come back as per-slot ErrNotFound
// without failing the batch.
func TestBatchMissingKeys(t *testing.T) {
	ctx := context.Background()
	r := newRing(t, 8, Config{Seed: 7})
	if err := r.Put(ctx, "present", 1); err != nil {
		t.Fatal(err)
	}
	vals, errs := r.GetBatch(ctx, []string{"present", "absent-a", "absent-b"})
	if errs[0] != nil || vals[0].(int) != 1 {
		t.Fatalf("present slot = %v, %v", vals[0], errs[0])
	}
	for i := 1; i < 3; i++ {
		if !errors.Is(errs[i], dht.ErrNotFound) {
			t.Fatalf("absent slot %d = %v, want ErrNotFound", i, errs[i])
		}
	}
}

// TestBatchDuplicateKeysLastWins: PutBatch applies duplicates in slice
// order even though grouping reorders keys internally.
func TestBatchDuplicateKeysLastWins(t *testing.T) {
	ctx := context.Background()
	r := newRing(t, 8, Config{Seed: 9})
	kvs := []dht.KV{
		{Key: "dup", Val: 1},
		{Key: "other", Val: 2},
		{Key: "dup", Val: 3},
	}
	for i, err := range r.PutBatch(ctx, kvs) {
		if err != nil {
			t.Fatalf("slot %d: %v", i, err)
		}
	}
	v, err := r.Get(ctx, "dup")
	if err != nil || v.(int) != 3 {
		t.Fatalf("dup = %v, %v; want 3 (last write wins)", v, err)
	}
}
