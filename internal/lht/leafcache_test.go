package lht

import (
	"errors"
	"math/rand"
	"testing"

	"lht/internal/bitlabel"
	"lht/internal/dht"
	"lht/internal/record"
)

func TestLeafCacheLRU(t *testing.T) {
	c := newLeafCache(2)
	a := bitlabel.MustParse("#00")
	b := bitlabel.MustParse("#01")
	d := bitlabel.MustParse("#010")
	c.note(a)
	c.note(b)
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
	// Touch a so b becomes the LRU victim.
	mu := bitlabel.MustParse("#0000")
	if got, ok := c.find(mu); !ok || got != a {
		t.Fatalf("find(%s) = %s, %v", mu, got, ok)
	}
	c.note(d) // evicts b
	if c.len() != 2 {
		t.Fatalf("len after evict = %d, want 2", c.len())
	}
	if _, ok := c.find(bitlabel.MustParse("#0111")); ok {
		t.Fatal("evicted entry still found")
	}
	// Deepest prefix wins: both #01 (gone) and #010 cover #0100...; only
	// #010 is cached now.
	if got, ok := c.find(bitlabel.MustParse("#0100")); !ok || got != d {
		t.Fatalf("find deepest = %s, %v, want %s", got, ok, d)
	}
	c.drop(d)
	if _, ok := c.find(bitlabel.MustParse("#0100")); ok {
		t.Fatal("dropped entry still found")
	}
	// The virtual root is never cached.
	c.note(bitlabel.Root)
	if c.len() != 1 {
		t.Fatalf("len = %d, want 1 (root must not be cached)", c.len())
	}
}

func TestLeafCacheFindPrefersDeepest(t *testing.T) {
	c := newLeafCache(8)
	parent := bitlabel.MustParse("#01")
	child := bitlabel.MustParse("#011")
	c.note(parent)
	c.note(child)
	// A key under #011 must resolve to the deeper (fresher) leaf even
	// though the stale parent is also cached.
	if got, ok := c.find(bitlabel.MustParse("#01100")); !ok || got != child {
		t.Fatalf("find = %s, %v, want %s", got, ok, child)
	}
	// A key under #010 is covered only by the parent.
	if got, ok := c.find(bitlabel.MustParse("#01011")); !ok || got != parent {
		t.Fatalf("find = %s, %v, want %s", got, ok, parent)
	}
}

// TestCachedLookupEquivalence drives one substrate through a cached and
// an uncached client and checks every query answer is identical — the
// soundness contract: the cache may only change cost, never results.
func TestCachedLookupEquivalence(t *testing.T) {
	d := dht.NewLocal()
	base := Config{SplitThreshold: 8, MergeThreshold: 6, Depth: 20}
	cached := base
	cached.LeafCache = true
	cached.LeafCacheSize = 64
	cix, err := New(d, cached)
	if err != nil {
		t.Fatal(err)
	}
	uix, err := New(d, base)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	var keys []float64
	for i := 0; i < 1200; i++ {
		switch {
		case len(keys) > 0 && rng.Intn(4) == 0:
			j := rng.Intn(len(keys))
			k := keys[j]
			if _, err := cix.Delete(k); err != nil {
				t.Fatalf("Delete(%v): %v", k, err)
			}
			keys[j] = keys[len(keys)-1]
			keys = keys[:len(keys)-1]
		default:
			k := rng.Float64()
			if _, err := cix.Insert(record.Record{Key: k, Value: []byte("v")}); err != nil {
				t.Fatalf("Insert(%v): %v", k, err)
			}
			keys = append(keys, k)
		}
		// Every few operations, compare answers for a present key, an
		// absent key, and a range.
		if i%7 != 0 {
			continue
		}
		probe := rng.Float64()
		if len(keys) > 0 && rng.Intn(2) == 0 {
			probe = keys[rng.Intn(len(keys))]
		}
		cr, _, cerr := cix.Search(probe)
		ur, _, uerr := uix.Search(probe)
		if (cerr == nil) != (uerr == nil) || cr.Key != ur.Key {
			t.Fatalf("Search(%v): cached (%v, %v) vs uncached (%v, %v)", probe, cr, cerr, ur, uerr)
		}
		if cerr != nil && !errors.Is(cerr, ErrKeyNotFound) {
			t.Fatalf("Search(%v): %v", probe, cerr)
		}
		lo := rng.Float64() * 0.9
		crecs, _, cerr := cix.Range(lo, lo+0.1)
		urecs, _, uerr := uix.Range(lo, lo+0.1)
		if cerr != nil || uerr != nil || len(crecs) != len(urecs) {
			t.Fatalf("Range: cached (%d, %v) vs uncached (%d, %v)", len(crecs), cerr, len(urecs), uerr)
		}
	}
	if err := cix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	s := cix.Metrics().Flat()
	if s.CacheHits == 0 {
		t.Error("no cache hits over 1200 operations")
	}
	if s.CacheHits+s.CacheMisses+s.CacheStale == 0 {
		t.Error("cache counters never ticked")
	}
}

// TestCachedLookupHitCost pins the fast path: once a leaf is cached, an
// exact-match lookup for any key in its interval costs exactly one
// DHT-get.
func TestCachedLookupHitCost(t *testing.T) {
	cfg := Config{SplitThreshold: 8, Depth: 20, LeafCache: true}
	ix, err := New(dht.NewLocal(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	keys := make([]float64, 300)
	for i := range keys {
		keys[i] = rng.Float64()
		if _, err := ix.Insert(record.Record{Key: keys[i]}); err != nil {
			t.Fatal(err)
		}
	}
	// Warm: one search per key populates every touched leaf.
	for _, k := range keys {
		if _, _, err := ix.Search(k); err != nil {
			t.Fatal(err)
		}
	}
	before := ix.Metrics()
	for _, k := range keys {
		_, cost, err := ix.Search(k)
		if err != nil {
			t.Fatal(err)
		}
		if cost.Lookups != 1 || cost.Steps != 1 {
			t.Fatalf("warm Search(%v) cost %+v, want 1 lookup / 1 step", k, cost)
		}
	}
	diff := ix.Metrics().Sub(before).Flat()
	if diff.CacheHits != int64(len(keys)) || diff.CacheMisses != 0 || diff.CacheStale != 0 {
		t.Fatalf("counters after warm reads: %+v", diff)
	}
}

// TestCacheAcceptance pins the PR's headline number: a read-heavy
// workload (theta=100, D=20, >=10k records, 95/5 read/write) must
// average at most 1.5 DHT-lookups per exact-match query with the cache
// on (the uncached binary search pays ~log2(D) ~ 4-5).
func TestCacheAcceptance(t *testing.T) {
	cfg := Config{SplitThreshold: 100, MergeThreshold: 50, Depth: 20, LeafCache: true}
	ix, err := New(dht.NewLocal(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	keys := make([]float64, 0, 12000)
	for len(keys) < 12000 {
		k := rng.Float64()
		if _, err := ix.Insert(record.Record{Key: k}); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, k)
	}

	var readLookups, reads int
	for op := 0; op < 8000; op++ {
		if rng.Intn(100) < 95 {
			_, cost, err := ix.Search(keys[rng.Intn(len(keys))])
			if err != nil {
				t.Fatal(err)
			}
			readLookups += cost.Lookups
			reads++
			continue
		}
		// 5% writes: alternate churn so splits and merges both happen
		// behind live cache entries.
		if op%2 == 0 {
			k := rng.Float64()
			if _, err := ix.Insert(record.Record{Key: k}); err != nil {
				t.Fatal(err)
			}
			keys = append(keys, k)
		} else {
			j := rng.Intn(len(keys))
			if _, err := ix.Delete(keys[j]); err != nil {
				t.Fatal(err)
			}
			keys[j] = keys[len(keys)-1]
			keys = keys[:len(keys)-1]
		}
	}
	mean := float64(readLookups) / float64(reads)
	if mean > 1.5 {
		t.Fatalf("mean DHT-lookups per cached exact-match query = %.3f, want <= 1.5", mean)
	}
	t.Logf("mean lookups/query = %.3f over %d reads (metrics: %+v)", mean, reads, ix.Metrics().Flat())
}

// TestCacheTinyCapacity checks correctness is independent of capacity:
// with room for only two labels the cache thrashes but answers stay
// right and the entry count stays bounded.
func TestCacheTinyCapacity(t *testing.T) {
	cfg := Config{SplitThreshold: 8, MergeThreshold: 6, Depth: 20, LeafCache: true, LeafCacheSize: 2}
	ix, err := New(dht.NewLocal(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	oracle := map[float64]bool{}
	for i := 0; i < 600; i++ {
		k := rng.Float64()
		if _, err := ix.Insert(record.Record{Key: k}); err != nil {
			t.Fatal(err)
		}
		oracle[k] = true
		if ix.cache.len() > 2 {
			t.Fatalf("cache holds %d entries, capacity 2", ix.cache.len())
		}
	}
	for k := range oracle {
		if _, _, err := ix.Search(k); err != nil {
			t.Fatalf("Search(%v): %v", k, err)
		}
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigLeafCacheValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LeafCache = true
	cfg.LeafCacheSize = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative LeafCacheSize must be rejected")
	}
	cfg.LeafCacheSize = 0
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := cfg.leafCacheSize(); got != DefaultLeafCacheSize {
		t.Fatalf("leafCacheSize() = %d, want default %d", got, DefaultLeafCacheSize)
	}
}
