package tcpnet

import (
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lht/internal/dht"
	"lht/internal/metrics"
)

// countingDialer wraps the default dialer and counts dial attempts, so
// tests can observe how often the client actually hits the network.
type countingDialer struct {
	dials atomic.Int64
	fail  atomic.Bool // refuse every dial when set
}

func (d *countingDialer) DialContext(ctx context.Context, network, addr string) (net.Conn, error) {
	d.dials.Add(1)
	if d.fail.Load() {
		return nil, errors.New("dial refused by test dialer")
	}
	var nd net.Dialer
	return nd.DialContext(ctx, network, addr)
}

// TestBreakerOpensAndFastFails: a run of transport failures against one
// node trips its breaker; further operations fail instantly with the
// typed *dht.UnavailableError (still transient), and the counters
// record the open and the fast-fails.
func TestBreakerOpensAndFastFails(t *testing.T) {
	addrs, srvs := startServerMap(t, 1)
	agg := &metrics.Counters{}
	c, err := DialContext(context.Background(), addrs,
		WithCounters(agg),
		WithHealth(dht.BreakerConfig{Threshold: 2, Cooldown: time.Minute}))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	ctx := context.Background()

	if err := c.Put(ctx, "k", &payload{N: 1}); err != nil {
		t.Fatal(err)
	}
	if got := c.Health(addrs[0]); got != dht.BreakerClosed {
		t.Fatalf("healthy node breaker = %v", got)
	}
	_ = srvs[addrs[0]].Close()

	// Two transport failures reach the threshold.
	for i := 0; i < 2; i++ {
		if _, err := c.Get(ctx, "k"); err == nil {
			t.Fatal("Get against a killed server succeeded")
		}
	}
	if got := c.Health(addrs[0]); got != dht.BreakerOpen {
		t.Fatalf("breaker after threshold failures = %v, want open", got)
	}

	_, err = c.Get(ctx, "k")
	if !dht.IsUnavailable(err) {
		t.Fatalf("open-breaker Get = %v, want *dht.UnavailableError", err)
	}
	if !dht.IsTransient(err) {
		t.Fatal("fast-fail must stay transient so retry loops keep working")
	}
	if errors.Is(err, dht.ErrNotFound) {
		t.Fatal("fast-fail mislabelled as a missing key")
	}
	f := agg.Snapshot().Flat()
	if f.BreakerOpens != 1 || f.BreakerFastFails < 1 {
		t.Fatalf("BreakerOpens=%d BreakerFastFails=%d, want 1/>=1", f.BreakerOpens, f.BreakerFastFails)
	}
	// Writes surface the same typed unavailability.
	if err := c.Put(ctx, "k2", &payload{N: 2}); !dht.IsUnavailable(err) {
		t.Fatalf("open-breaker Put = %v, want *dht.UnavailableError", err)
	}
}

// flipProxy fronts a live server with a listener the test fully
// controls: in reject mode it kills existing links and closes every new
// accept on sight (a node that is down), in forward mode it pipes bytes
// to the backend (the node recovered). Failing and recovering a node
// this way keeps the advertised port bound for the whole test, so no
// assertion depends on re-binding a freed ephemeral port — which this
// kernel happily hands to the next outgoing connection, yielding
// self-connects and EADDRINUSE flakes.
type flipProxy struct {
	ln      net.Listener
	backend string

	mu     sync.Mutex
	reject bool
	conns  map[net.Conn]struct{}
}

func newFlipProxy(t *testing.T, backend string, reject bool) *flipProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &flipProxy{ln: ln, backend: backend, reject: reject, conns: map[net.Conn]struct{}{}}
	go p.serve()
	t.Cleanup(func() {
		_ = ln.Close()
		p.setReject(true)
	})
	return p
}

func (p *flipProxy) addr() string { return p.ln.Addr().String() }

// setReject flips the proxy's mode; entering reject mode severs every
// established link so pooled client connections fail like the node died.
func (p *flipProxy) setReject(reject bool) {
	p.mu.Lock()
	p.reject = reject
	var doomed []net.Conn
	if reject {
		for c := range p.conns {
			doomed = append(doomed, c)
		}
		p.conns = map[net.Conn]struct{}{}
	}
	p.mu.Unlock()
	for _, c := range doomed {
		_ = c.Close()
	}
}

func (p *flipProxy) serve() {
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		rej := p.reject
		if !rej {
			p.conns[c] = struct{}{}
		}
		p.mu.Unlock()
		if rej {
			_ = c.Close()
			continue
		}
		go p.pipe(c)
	}
}

func (p *flipProxy) pipe(c net.Conn) {
	b, err := net.Dial("tcp", p.backend)
	if err != nil {
		_ = c.Close()
		return
	}
	p.mu.Lock()
	p.conns[b] = struct{}{}
	p.mu.Unlock()
	go func() {
		_, _ = io.Copy(b, c)
		_ = b.Close()
	}()
	_, _ = io.Copy(c, b)
	_ = c.Close()
	_ = b.Close()
}

// TestBreakerHalfOpenProbeRecoversClient: after the cooldown the first
// operation is admitted as the probe; with the server back, it succeeds
// and closes the breaker for everyone.
func TestBreakerHalfOpenProbeRecoversClient(t *testing.T) {
	backends, _ := startServerMap(t, 1)
	p := newFlipProxy(t, backends[0], false)
	addr := p.addr()

	c, err := DialContext(context.Background(), []string{addr},
		WithHealth(dht.BreakerConfig{Threshold: 1, Cooldown: 30 * time.Millisecond, MaxCooldown: 60 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	ctx := context.Background()
	if err := c.Put(ctx, "k", &payload{N: 1}); err != nil {
		t.Fatal(err)
	}

	p.setReject(true)
	if _, err := c.Get(ctx, "k"); err == nil {
		t.Fatal("Get through a severed node succeeded")
	}
	if got := c.Health(addr); got != dht.BreakerOpen {
		t.Fatalf("breaker = %v, want open", got)
	}

	p.setReject(false)

	// Within a few cooldown windows an operation must be admitted as the
	// half-open probe, find the node back, and close the breaker.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if v, err := c.Get(ctx, "k"); err == nil && v.(*payload).N == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("client never recovered through the half-open probe")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := c.Health(addr); got != dht.BreakerClosed {
		t.Fatalf("breaker after recovery = %v, want closed", got)
	}
}

// TestOpenHolderFailsOverImmediately: with replication, a holder whose
// breaker is open costs the read a few microseconds before it moves to
// the next holder — never a timeout — and the failover counter records
// the reroute.
func TestOpenHolderFailsOverImmediately(t *testing.T) {
	addrs, srvs := startServerMap(t, 4)
	agg := &metrics.Counters{}
	c, err := DialContext(context.Background(), addrs,
		WithReplicas(2),
		WithCounters(agg),
		WithHealth(dht.BreakerConfig{Threshold: 1, Cooldown: time.Minute}))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	ctx := context.Background()

	const key = "failover-key"
	if err := c.Put(ctx, key, &payload{N: 7}); err != nil {
		t.Fatal(err)
	}
	holders := c.owners(key)
	secondary := holders[1]
	_ = srvs[secondary.addr].Close()

	// The first read trips the secondary's breaker (reads start there)
	// and falls back to the primary — it must still succeed.
	v, err := c.Get(ctx, key)
	if err != nil || v.(*payload).N != 7 {
		t.Fatalf("Get with dead secondary = %v, %v", v, err)
	}
	if got := c.Health(secondary.addr); got != dht.BreakerOpen {
		t.Fatalf("secondary breaker = %v, want open", got)
	}

	// With the breaker open, reads keep succeeding and the dead holder
	// costs microseconds, not dial timeouts: 50 reads must finish far
	// inside what even one connect timeout would burn.
	start := time.Now()
	for i := 0; i < 50; i++ {
		if v, err := c.Get(ctx, key); err != nil || v.(*payload).N != 7 {
			t.Fatalf("read %d = %v, %v", i, v, err)
		}
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("50 reads through an open holder took %v", d)
	}
	if f := agg.Snapshot().Flat(); f.Failovers < 1 {
		t.Fatalf("Failovers = %d, want >= 1", f.Failovers)
	}
}

// TestDegradedStartAdoptsRecoveredNode is the degraded-dial satellite:
// DialContext used to fail hard if any node was down; with
// WithDegradedStart the client comes up with the dead node's breaker
// open, keys it owns fail fast with the typed error, and the node is
// adopted once a half-open probe finds it recovered.
func TestDegradedStartAdoptsRecoveredNode(t *testing.T) {
	backends, _ := startServerMap(t, 2)
	p := newFlipProxy(t, backends[1], true) // node B starts down
	addrs := []string{backends[0], p.addr()}
	dead := p.addr()

	// The strict dial contract is unchanged: without the option, one
	// dead node still fails construction.
	if _, err := DialContext(context.Background(), addrs); err == nil {
		t.Fatal("strict Dial succeeded with a dead node")
	}

	c, err := DialContext(context.Background(), addrs,
		WithDegradedStart(),
		WithHealth(dht.BreakerConfig{Threshold: 1, Cooldown: 30 * time.Millisecond, MaxCooldown: 60 * time.Millisecond}))
	if err != nil {
		t.Fatalf("degraded Dial = %v, want a working client", err)
	}
	t.Cleanup(func() { _ = c.Close() })
	if got := c.Health(dead); got != dht.BreakerOpen {
		t.Fatalf("dead node breaker = %v, want open at start", got)
	}
	ctx := context.Background()

	// Find a key owned by each node: live-owned keys work immediately,
	// dead-owned keys fail fast with the typed error.
	var liveKey, deadKey string
	for i := 0; liveKey == "" || deadKey == ""; i++ {
		k := "probe-" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		if c.owner(k).addr == dead {
			deadKey = k
		} else {
			liveKey = k
		}
	}
	if err := c.Put(ctx, liveKey, &payload{N: 1}); err != nil {
		t.Fatalf("Put on live node = %v", err)
	}
	if err := c.Put(ctx, deadKey, &payload{N: 2}); !dht.IsUnavailable(err) {
		t.Fatalf("Put on dead node = %v, want *dht.UnavailableError", err)
	}

	// Bring the dead node back; the next probes must adopt it.
	p.setReject(false)

	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := c.Put(ctx, deadKey, &payload{N: 2}); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("recovered node was never adopted")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := c.Health(dead); got != dht.BreakerClosed {
		t.Fatalf("adopted node breaker = %v, want closed", got)
	}
}

// TestCancelledProbeDoesNotWedgeBreaker pins the hedger-vs-breaker
// interaction: the hedger cancels its losing arm, and when that arm held
// the half-open probe slot the breaker used to keep the slot claimed
// forever — every later operation fast-failed and nothing could ever
// probe the node again. A cancelled (neutral) probe must relinquish the
// slot so the next operation is admitted as a fresh probe.
func TestCancelledProbeDoesNotWedgeBreaker(t *testing.T) {
	now := time.Unix(2000, 0)
	br := dht.NewBreaker(dht.BreakerConfig{
		Threshold: 1,
		Cooldown:  100 * time.Millisecond,
		Seed:      3,
		Clock:     func() time.Time { return now },
	})
	n := &clientNode{addr: "10.0.0.1:1", br: br}

	tok, err := n.allow()
	if err != nil {
		t.Fatal(err)
	}
	n.record(tok, dht.MarkTransient(errors.New("conn reset")))
	if br.State() != dht.BreakerOpen {
		t.Fatalf("breaker = %v, want open", br.State())
	}

	now = now.Add(100 * time.Millisecond)
	tok, err = n.allow()
	if err != nil {
		t.Fatalf("post-cooldown op not admitted: %v", err)
	}
	if !tok.probe {
		t.Fatal("post-cooldown op did not hold the probe slot")
	}
	// The hedge's losing arm: cancelled mid-flight, no verdict on the node.
	n.record(tok, context.Canceled)

	// Without the relinquish this allow() fast-fails forever.
	tok, err = n.allow()
	if err != nil {
		t.Fatalf("operation after a cancelled probe rejected: %v", err)
	}
	if !tok.probe {
		t.Fatal("next operation was not admitted as the fresh probe")
	}
	n.record(tok, nil)
	if br.State() != dht.BreakerClosed {
		t.Fatalf("breaker = %v, want closed after probe success", br.State())
	}
}

// TestExpiredDeadlineDoesNotTripBreaker: context.DeadlineExceeded counts
// against a node only when the attempt had real budget to wait in. A
// burst of calls whose deadlines were already (nearly) spent on entry
// must leave the breaker closed — the node never had a chance to answer.
func TestExpiredDeadlineDoesNotTripBreaker(t *testing.T) {
	br := dht.NewBreaker(dht.BreakerConfig{Threshold: 2})
	n := &clientNode{addr: "10.0.0.1:1", br: br}
	for i := 0; i < 10; i++ {
		tok, err := n.allow()
		if err != nil {
			t.Fatalf("call %d rejected: %v", i, err)
		}
		// The deadline fired (nearly) immediately: no budget was consumed.
		n.record(tok, context.DeadlineExceeded)
	}
	if br.State() != dht.BreakerClosed {
		t.Fatalf("breaker = %v after zero-budget timeouts, want closed", br.State())
	}

	// An attempt that actually waited out a meaningful budget still counts.
	for i := 0; i < 2; i++ {
		tok, err := n.allow()
		if err != nil {
			t.Fatal(err)
		}
		tok.start = tok.start.Add(-minTimeoutCharge) // ran >= the charge floor
		n.record(tok, context.DeadlineExceeded)
	}
	if br.State() != dht.BreakerOpen {
		t.Fatalf("breaker = %v after real timeouts, want open", br.State())
	}
}

// TestRedialBackoffLimitsDials is the lazy-redial satellite: without any
// breaker, a dead node must cost one dial per backoff window, not one
// dial per operation — rapid-fire calls mostly fail fast on the gate.
func TestRedialBackoffLimitsDials(t *testing.T) {
	for _, tc := range []struct {
		name string
		wire Wire
	}{{"binary", WireBinary}, {"gob", WireGob}} {
		t.Run(tc.name, func(t *testing.T) {
			addrs, srvs := startServerMap(t, 1)
			cd := &countingDialer{}
			c, err := DialContext(context.Background(), addrs, WithWire(tc.wire), WithDialer(cd))
			if err != nil {
				t.Fatal(err)
			}
			defer func() { _ = c.Close() }()
			ctx := context.Background()
			if err := c.Put(ctx, "k", &payload{N: 1}); err != nil {
				t.Fatal(err)
			}

			_ = srvs[addrs[0]].Close()
			cd.fail.Store(true) // refuse instantly: no OS connect latency
			before := cd.dials.Load()
			const calls = 200
			for i := 0; i < calls; i++ {
				if _, err := c.Get(ctx, "k"); err == nil {
					t.Fatal("Get against dead node succeeded")
				} else if !dht.IsTransient(err) {
					t.Fatalf("backed-off Get = %v, want transient", err)
				}
			}
			dials := cd.dials.Load() - before
			if dials >= calls {
				t.Fatalf("%d calls cost %d dials: redial gate not limiting", calls, dials)
			}
		})
	}
}
