package bitlabel

import (
	"strings"
	"testing"
)

// FuzzParse checks that Parse never panics, accepts exactly the valid
// label grammar, and round-trips everything it accepts.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{"", "#", "#0", "#01", "#0110", "#1", "x", "#01x", "#" + strings.Repeat("0", 70)} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		l, err := Parse(s)
		valid := len(s) >= 1 && s[0] == '#' && len(s)-1 <= MaxBits &&
			(len(s) == 1 || s[1] == '0') && strings.Trim(s[1:], "01") == ""
		if valid != (err == nil) {
			t.Fatalf("Parse(%q) err=%v, grammar validity=%v", s, err, valid)
		}
		if err != nil {
			return
		}
		if l.String() != s {
			t.Fatalf("round trip %q -> %q", s, l.String())
		}
		// The accepted label's operations must not panic and must agree
		// with the reference implementation.
		if l.Len() > 0 {
			if got, want := l.Name().String(), refName(s); got != want {
				t.Fatalf("Name(%q) = %q, want %q", s, got, want)
			}
		}
	})
}

// FuzzBinaryRoundTrip checks UnmarshalBinary on arbitrary bytes: it must
// never panic, and everything it accepts must re-marshal identically.
func FuzzBinaryRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{62, 0x20, 0, 0, 0, 0, 0, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		var l Label
		if err := l.UnmarshalBinary(data); err != nil {
			return
		}
		out, err := l.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal of accepted label: %v", err)
		}
		var l2 Label
		if err := l2.UnmarshalBinary(out); err != nil || l2 != l {
			t.Fatalf("round trip %v -> %v (%v)", l, l2, err)
		}
	})
}
