package lht

// This file implements Index.Scrub: a walk over the reachable label space
// that verifies the structural invariants the paper's theorems rely on
// and repairs the violations recovery knows how to fix. It is the offline
// counterpart of the lookup path's in-line read-repair: read-repair heals
// tears as query traffic happens to touch them, Scrub heals the whole
// tree in one pass and reports what it found.

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"lht/internal/bitlabel"
	"lht/internal/dht"
	"lht/internal/metrics"
	"lht/internal/record"
)

// ScrubReport is the typed outcome of one Scrub pass.
type ScrubReport struct {
	Leaves     int // leaves visited by the walk
	Records    int // records held by those leaves
	Lookups    int // DHT-lookups the pass spent (also in ScrubLookups)
	TornSplits int // split intents found and resolved
	TornMerges int // merge intents found and resolved
	Orphans    int // orphaned buckets (stale mutation remnants) removed
	Strays     int // records found outside their leaf's interval, relocated
	Repairs    int // total repairs applied (tears + orphans + strays)
	HotLeaves  int // leaves whose decayed request rate is at or above
	// Config.HotSplitRate at walk time (always 0 with the load plane
	// off); a gauge of where the hot-split plane is about to act, not a
	// violation

	// Replica-repair pass (Config.Rereplicate over a dht.Rereplicator
	// substrate; all zero otherwise): per-owner existence probes issued,
	// copies found missing from an owner, and copies restored from the
	// highest-epoch surviving replica.
	ReplicaProbes   int
	ReplicaMissing  int
	ReplicaRestored int

	// Violations describes every invariant violation observed, including
	// ones Scrub repaired; an entry prefixed with "unrepaired:" needs
	// operator attention (typically lost data after unreplicated churn).
	Violations []string
}

// Clean reports a fully consistent pass: nothing repaired, nothing to
// report.
func (r *ScrubReport) Clean() bool {
	return r.Repairs == 0 && r.ReplicaRestored == 0 && len(r.Violations) == 0
}

// String formats the report for logs and CLI output.
func (r *ScrubReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scrub: %d leaves, %d records, %d DHT-lookups", r.Leaves, r.Records, r.Lookups)
	if r.HotLeaves > 0 {
		fmt.Fprintf(&b, ", %d hot", r.HotLeaves)
	}
	if r.ReplicaProbes > 0 {
		fmt.Fprintf(&b, ", replicas %d probed/%d missing/%d restored",
			r.ReplicaProbes, r.ReplicaMissing, r.ReplicaRestored)
	}
	if r.Clean() {
		b.WriteString(", clean")
		return b.String()
	}
	fmt.Fprintf(&b, ", %d repairs (%d torn splits, %d torn merges, %d orphans, %d strays)",
		r.Repairs, r.TornSplits, r.TornMerges, r.Orphans, r.Strays)
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "\n  %s", v)
	}
	return b.String()
}

// maxScrubRounds bounds how many times one Scrub call restarts its walk
// after a repair that changed tree structure behind the walk position.
const maxScrubRounds = 8

// Scrub walks the reachable label space left to right, verifying the
// structural invariants — the leaves' intervals partition [0, 1) in walk
// order, every leaf is stored under its name f_n(label) and the naming is
// injective (Theorem 1), every record lies inside its leaf's interval,
// and no bucket is orphaned (stored under a leaf's own label key, where
// only a live subtree may store one) — and repairs what recovery can fix:
//
//   - torn split/merge intents are completed or rolled back (repairTorn);
//   - an orphaned bucket shadowed by a newer overlapping leaf is removed;
//     a leaf shadowed by a newer subtree under its own label key is
//     re-split so the two agree (both arise from non-graceful churn
//     resurrecting stale replicas, not from crashes — intents cover those);
//   - records outside their leaf's interval are relocated through the
//     normal insert path.
//
// Scrub returns a typed report; the error is non-nil only when the walk
// itself could not proceed (substrate failure or unrecoverable structure).
// A scrub of a consistent tree performs no writes, so it is safe to run
// concurrently with readers; like all writers, a repairing scrub must be
// serialized against other writers by the caller.
func (ix *Index) Scrub(ctx context.Context) (rep *ScrubReport, err error) {
	ctx, done := ix.beginOp(ctx, metrics.OpScrub)
	defer func() { done(err) }()
	rep = &ScrubReport{}
	before := ix.c.Snapshot()
	var cost Cost
	defer func() {
		d := ix.c.Snapshot().Sub(before)
		rep.Lookups = int(cost.Lookups)
		rep.TornSplits = int(d.Repair.TornSplits)
		rep.TornMerges = int(d.Repair.TornMerges)
		rep.Repairs = int(d.Repair.Repairs) + rep.Strays
		ix.c.AddScrubLookups(int64(cost.Lookups))
	}()

	var strays []record.Record
	var keys []string
	for round := 0; round < maxScrubRounds; round++ {
		again, err := ix.scrubWalk(ctx, rep, &cost, &strays, &keys)
		if err != nil {
			return rep, err
		}
		if !again {
			// Relocate stray records through the normal insert path, now
			// that the tree tiling is verified.
			for _, r := range strays {
				c, err := ix.InsertContext(ctx, r)
				cost.Add(c)
				if err != nil {
					return rep, fmt.Errorf("lht: scrub relocate %g: %w", r.Key, err)
				}
			}
			// With the tiling verified, the visited keys are exactly the
			// live storage keys: restore any replica copies churn lost.
			if err := ix.scrubRereplicate(ctx, keys, rep, &cost); err != nil {
				return rep, err
			}
			return rep, nil
		}
		// A structural repair changed the region already walked; start
		// over (repairs are idempotent, so re-walking is safe).
		rep.Leaves, rep.Records, rep.HotLeaves = 0, 0, 0
		keys = keys[:0]
	}
	return rep, fmt.Errorf("%w: scrub did not converge after %d rounds", ErrCorrupt, maxScrubRounds)
}

// scrubWalk performs one left-to-right pass. It returns again=true when a
// repair changed structure behind the walk position, asking Scrub to
// restart the pass.
func (ix *Index) scrubWalk(ctx context.Context, rep *ScrubReport, cost *Cost, strays *[]record.Record, keys *[]string) (again bool, err error) {
	// Walk fetches are probe traffic; repairTorn re-attributes its own
	// lookups to PhaseRepair.
	ctx = metrics.WithPhase(ctx, metrics.PhaseProbe)
	names := make(map[string]bitlabel.Label)
	want := 0.0
	key := bitlabel.Root.Key()
	b, err := ix.scrubFetch(ctx, key, cost)
	if err != nil {
		return false, fmt.Errorf("lht: scrub leftmost leaf: %w", err)
	}
	for {
		if err := ctx.Err(); err != nil {
			return false, fmt.Errorf("lht: scrub: %w", err)
		}

		// Shadow check: nothing may be stored under a live leaf's own
		// label key — a leaf there means either our bucket or the stored
		// one is a stale remnant (resurrected replica after churn); the
		// epoch decides which.
		if b.Label.Len() < ix.cfg.Depth {
			nb, changed, err := ix.scrubShadow(ctx, key, b, rep, cost)
			if err != nil {
				return false, err
			}
			if changed {
				return true, nil
			}
			b = nb
		}

		// Storage invariant: the bucket under key must be named key.
		if b.Label.Name().Key() != key {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("unrepaired: key %s holds leaf %s, whose name is %s", key, b.Label, b.Label.Name()))
		}
		// Naming injectivity (Theorem 1).
		if prev, dup := names[key]; dup {
			return false, fmt.Errorf("%w: scrub revisited key %s (leaves %s and %s)", ErrCorrupt, key, prev, b.Label)
		}
		names[key] = b.Label

		// Tiling: this leaf must start where the previous one ended.
		iv := b.Interval()
		switch {
		case iv.Lo < want:
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("unrepaired: leaf %s overlaps preceding coverage (starts %g, want %g)", b.Label, iv.Lo, want))
		case iv.Lo > want:
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("unrepaired: coverage gap [%g, %g) before leaf %s", want, iv.Lo, b.Label))
		}

		// Records must lie inside the leaf's interval; strays are pulled
		// out (free in-place rewrite) and relocated after the walk.
		var out []record.Record
		for _, r := range b.Records {
			if !iv.Contains(r.Key) {
				out = append(out, r)
			}
		}
		if len(out) > 0 {
			nb := b.Clone()
			kept := nb.Records[:0:0]
			for _, r := range nb.Records {
				if iv.Contains(r.Key) {
					kept = append(kept, r)
				}
			}
			nb.Records = kept
			nb.Epoch++
			werr := dht.DoWriteIf(ctx, ix.d, key, nb, b.Epoch)
			if errors.Is(werr, dht.ErrCASConflict) || errors.Is(werr, dht.ErrNotFound) {
				// A concurrent writer advanced the leaf under us; restart
				// the pass and re-examine what is stored now.
				return true, nil
			}
			if werr != nil {
				return false, fmt.Errorf("lht: scrub drop strays %q: %w", key, werr)
			}
			b = nb
			*strays = append(*strays, out...)
			rep.Strays += len(out)
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("relocated %d record(s) outside leaf %s %v", len(out), b.Label, iv))
		}

		// Weight bound: a leaf inside the depth bound may transiently hold
		// up to ~2x theta (one insertion causes at most one split), but
		// runaway weight means maintenance is not keeping up.
		if b.Label.Len() < ix.cfg.Depth && b.Weight() > 2*ix.cfg.SplitThreshold {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("unrepaired: leaf %s weight %d exceeds 2x threshold %d", b.Label, b.Weight(), ix.cfg.SplitThreshold))
		}

		rep.Leaves++
		rep.Records += len(b.Records)
		*keys = append(*keys, key)
		if ix.rateHot(b) {
			rep.HotLeaves++
		}
		want = iv.Hi

		// Advance to the leftmost leaf of the nearest right branch.
		beta, ok := b.Label.RightNeighbor()
		if !ok {
			if want != 1 {
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("unrepaired: leaves tile [0, %g), want [0, 1)", want))
			}
			return false, nil
		}
		key = beta.Key()
		nb, err := ix.scrubFetch(ctx, key, cost)
		if errors.Is(err, dht.ErrNotFound) {
			key = beta.Name().Key()
			nb, err = ix.scrubFetch(ctx, key, cost)
		}
		if err != nil {
			return false, fmt.Errorf("lht: scrub walk %s: %w", beta, err)
		}
		b = nb
	}
}

// scrubFetch fetches a bucket for the walk, resolving any torn intent it
// carries before the walk interprets it.
func (ix *Index) scrubFetch(ctx context.Context, key string, cost *Cost) (*Bucket, error) {
	b, err := ix.getBucket(ctx, key, cost)
	cost.Steps++
	if err != nil {
		return nil, err
	}
	if b.Torn() {
		b, err = ix.repairTorn(ctx, key, b, cost)
	}
	return b, err
}

// scrubRereplicate restores the replica count of every live storage key
// after the structural walk verified the tree. It is a no-op unless
// Config.Rereplicate is set and the bare substrate implements
// dht.Rereplicator (the tcpnet cluster client). The repair traffic
// bypasses the instrumented stack — EnsureReplicated speaks raw tagged
// bytes below the codec — so its per-owner probes and restores are
// charged to the scrub's cost here, one lookup per round trip, keeping
// the global counters honest while leaving every query/mutation cost row
// untouched.
//
// A key whose owners are all unreachable is reported as an unrepaired
// violation rather than failing the scrub: the structural verdict above
// it is still valid, and the next pass retries.
func (ix *Index) scrubRereplicate(ctx context.Context, keys []string, rep *ScrubReport, cost *Cost) error {
	rr, ok := ix.rereplicator()
	if !ok {
		return nil
	}
	for _, k := range keys {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("lht: scrub re-replication: %w", err)
		}
		r, err := rr.EnsureReplicated(ctx, k)
		trips := r.Probes + r.Restored
		cost.Lookups += trips
		cost.Steps += trips
		ix.c.AddLookups(int64(trips))
		ix.c.AddPhaseLookups(metrics.OpScrub, metrics.PhaseRepair, int64(trips))
		rep.ReplicaProbes += r.Probes
		rep.ReplicaMissing += r.Missing
		rep.ReplicaRestored += r.Restored
		if err != nil {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("unrepaired: re-replication of key %s: %v", k, err))
		} else if r.Missing > r.Restored {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("unrepaired: key %s still missing %d replica cop(ies)", k, r.Missing-r.Restored))
		}
	}
	return nil
}

// scrubShadow probes the leaf's own label key. A consistent tree stores
// nothing there (a leaf has no descendants, and only a descendant's name
// can equal the leaf's label). A bucket found there is a stale-replica
// conflict; the epoch orders the two structures:
//
//   - shadow newer: our "leaf" is a pre-split remnant — complete the
//     split against the live remote subtree and restart the walk;
//   - shadow older or equal: the shadow is an orphan (pre-merge child
//     resurrected after its parent absorbed it) — remove it.
func (ix *Index) scrubShadow(ctx context.Context, key string, b *Bucket, rep *ScrubReport, cost *Cost) (*Bucket, bool, error) {
	cost.Steps++
	shadow, err := ix.peekBucket(ctx, b.Label.Key(), cost)
	if errors.Is(err, dht.ErrNotFound) {
		return b, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("lht: scrub shadow probe %s: %w", b.Label, err)
	}
	if !b.Label.IsPrefixOf(shadow.Label) || shadow.Label == b.Label {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("unrepaired: key %s holds %s, not a descendant of leaf %s", b.Label.Key(), shadow.Label, b.Label))
		return b, false, nil
	}
	if shadow.Epoch > b.Epoch {
		// The subtree under our label is live and newer: this bucket is a
		// stale pre-split leaf. Completing the split (remote side kept as
		// stored) reconciles the two.
		ix.c.AddTornSplits(1)
		if _, _, err := ix.completeSplit(ctx, key, b, cost, true); err != nil {
			return nil, false, fmt.Errorf("lht: scrub reconcile stale leaf %s: %w", b.Label, err)
		}
		ix.c.AddRepairs(1)
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("re-split stale leaf %s shadowed by newer %s", b.Label, shadow.Label))
		return nil, true, nil
	}
	// The shadow is older: an orphaned remnant whose records the live
	// leaf already carries. Remove it — at the epoch we just observed; a
	// conflict means the "orphan" is being written to right now, so
	// restart the pass rather than delete live data.
	cost.Lookups++
	cost.Steps++
	rerr := dht.DoRemoveIf(ctx, ix.d, b.Label.Key(), shadow.Epoch)
	if errors.Is(rerr, dht.ErrCASConflict) {
		return nil, true, nil
	}
	if rerr != nil {
		return nil, false, fmt.Errorf("lht: scrub remove orphan %s: %w", shadow.Label, rerr)
	}
	ix.c.AddRepairs(1)
	rep.Orphans++
	rep.Violations = append(rep.Violations,
		fmt.Sprintf("removed orphan %s (epoch %d) shadowing leaf %s (epoch %d)", shadow.Label, shadow.Epoch, b.Label, b.Epoch))
	return b, false, nil
}
