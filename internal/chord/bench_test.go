package chord

import (
	"context"
	"fmt"
	"testing"
)

// BenchmarkLookup64 measures routed lookups on a stabilized 64-node ring.
func BenchmarkLookup64(b *testing.B) {
	r, err := NewRing(64, Config{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := r.Lookup(context.Background(), fmt.Sprintf("bench-%d", i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPutGet64 measures full storage round trips.
func BenchmarkPutGet64(b *testing.B) {
	r, err := NewRing(64, Config{Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := fmt.Sprintf("bench-%d", i%1000)
		if err := r.Put(context.Background(), key, i); err != nil {
			b.Fatal(err)
		}
		if _, err := r.Get(context.Background(), key); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStabilize64 measures one full maintenance sweep.
func BenchmarkStabilize64(b *testing.B) {
	r, err := NewRing(64, Config{Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Stabilize(1)
	}
}
