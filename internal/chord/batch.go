package chord

import (
	"context"
	"sort"

	"lht/internal/dht"
	"lht/internal/hashring"
)

var _ dht.Batcher = (*Ring)(nil)

// GetBatch implements dht.Batcher. Keys hashing into the same responsible
// arc share one routed resolution: the batch costs one replica-chain
// lookup (plus one predecessor query that establishes the arc) per
// distinct responsible peer instead of one per key, which is where
// batching saves round trips on a multi-hop DHT.
func (r *Ring) GetBatch(ctx context.Context, keys []string) ([]dht.Value, []error) {
	vals := make([]dht.Value, len(keys))
	errs := make([]error, len(keys))
	r.eachChainGroup(ctx, keys, errs, func(chain []*Node, slid bool, members []int) {
		for _, i := range members {
			v, ok := fetchChain(chain, keys[i])
			if !ok {
				errs[i] = errMissing(keys[i], slid)
				continue
			}
			vals[i] = v
		}
	})
	return vals, errs
}

// PutBatch implements dht.Batcher: one store batch per replica holder per
// resolved group. Pairs apply in ascending slice order, so a duplicate
// key's last occurrence wins, matching a sequence of per-op Puts.
func (r *Ring) PutBatch(ctx context.Context, kvs []dht.KV) []error {
	errs := make([]error, len(kvs))
	keys := make([]string, len(kvs))
	for i, kv := range kvs {
		keys[i] = kv.Key
	}
	r.eachChainGroup(ctx, keys, errs, func(chain []*Node, _ bool, members []int) {
		batch := make(map[string]dht.Value, len(members))
		for _, i := range members {
			batch[kvs[i].Key] = kvs[i].Val
		}
		for _, n := range chain {
			n.rpcStoreBatch(batch)
		}
		for k := range batch {
			r.retireStale(k, chain)
		}
	})
	return errs
}

// fetchChain reads key from the first replica holding it.
func fetchChain(chain []*Node, key string) (dht.Value, bool) {
	for _, n := range chain {
		if v, ok := n.rpcFetch(key); ok {
			return v, true
		}
	}
	return nil, false
}

// eachChainGroup resolves the batch's keys to replica chains, one routed
// resolution per responsible arc: it picks the unresolved key with the
// lowest hash, resolves its chain, asks the primary for its predecessor
// to learn the arc (pred, primary] the primary owns, and claims every
// other unresolved key hashing into that arc for the same group. A key
// whose resolution fails gets the error in its slot alone; the rest of
// the batch proceeds. Under churn a stale predecessor can only shrink or
// grow a group, never misroute it worse than per-op routing does — the
// same stabilization handoff repairs both.
func (r *Ring) eachChainGroup(ctx context.Context, keys []string, errs []error, visit func(chain []*Node, slid bool, members []int)) {
	order := make([]int, len(keys))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ha, hb := hashring.HashKey(keys[order[a]]), hashring.HashKey(keys[order[b]])
		if ha == hb {
			return order[a] < order[b] // duplicate keys resolve in slice order
		}
		return ha < hb
	})
	resolved := make([]bool, len(keys))
	for _, i := range order {
		if resolved[i] {
			continue
		}
		resolved[i] = true
		chain, _, slid, err := r.replicaChain(ctx, keys[i])
		if err != nil {
			errs[i] = err
			continue
		}
		members := []int{i}
		if pred, ok := r.predecessorOf(chain[0]); ok {
			for _, j := range order {
				if !resolved[j] && hashring.Between(hashring.HashKey(keys[j]), pred.ID, chain[0].ref.ID) {
					resolved[j] = true
					members = append(members, j)
				}
			}
			sort.Ints(members) // ascending slice order decides duplicate-key precedence
		}
		visit(chain, slid, members)
	}
}

// predecessorOf queries node for its current predecessor, charging one
// message for the hop (free when the chosen entry is the node itself). An
// unknown predecessor — a single-node ring, or mid-churn — just shrinks
// the group to its representative key; correctness never depends on it.
func (r *Ring) predecessorOf(n *Node) (Ref, bool) {
	entry, err := r.entry()
	if err != nil {
		return zeroRef, false
	}
	peer, err := entry.call(n.ref.Addr)
	if err != nil {
		return zeroRef, false
	}
	return peer.rpcPredecessor()
}
