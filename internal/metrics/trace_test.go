package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRingRetention(t *testing.T) {
	r := NewRing(3)
	for i := 1; i <= 5; i++ {
		r.RecordOp(OpEvent{Kind: "get", Keys: i})
	}
	if r.Len() != 3 || r.Total() != 5 {
		t.Fatalf("Len = %d, Total = %d", r.Len(), r.Total())
	}
	ev := r.Events()
	if len(ev) != 3 || ev[0].Keys != 3 || ev[2].Keys != 5 {
		t.Fatalf("Events = %+v", ev)
	}
	if ev[0].Seq != 3 || ev[2].Seq != 5 {
		t.Fatalf("Seq order = %d..%d", ev[0].Seq, ev[2].Seq)
	}
	r.Reset()
	if r.Len() != 0 || r.Total() != 0 || len(r.Events()) != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestRingConcurrent(t *testing.T) {
	r := NewRing(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.RecordOp(OpEvent{Kind: "get", Key: "k", Keys: 1})
				if i%100 == 0 {
					_ = r.Events()
				}
			}
		}()
	}
	wg.Wait()
	if r.Total() != 4000 || r.Len() != 64 {
		t.Fatalf("Total = %d, Len = %d", r.Total(), r.Len())
	}
	// Sequence numbers must be unique and the retained tail contiguous.
	ev := r.Events()
	for i := 1; i < len(ev); i++ {
		if ev[i].Seq != ev[i-1].Seq+1 {
			t.Fatalf("non-contiguous seq at %d: %d after %d", i, ev[i].Seq, ev[i-1].Seq)
		}
	}
}

func TestOpEventString(t *testing.T) {
	e := OpEvent{Seq: 7, Kind: "get", Key: "lht:#01", Keys: 1, Op: OpRange,
		Phase: PhaseForward, Duration: 1500 * time.Microsecond, Outcome: "ok"}
	s := e.String()
	for _, want := range []string{"#7", "range/forward", "get", "lht:#01", "ok"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q, missing %q", s, want)
		}
	}
	e.Keys, e.Key = 16, ""
	e.Outcome, e.Err = "error", "boom"
	s = e.String()
	if !strings.Contains(s, "[16 keys]") || !strings.Contains(s, "error: boom") {
		t.Fatalf("String() = %q", s)
	}
}
