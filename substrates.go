package lht

import (
	"encoding/gob"

	"lht/internal/chord"
	"lht/internal/dht"
	"lht/internal/kademlia"
	ilht "lht/internal/lht"
)

// DHT is the substrate interface LHT runs over: a flat key-value store
// with one-lookup Get/Put/Take/Remove and a free local Write. Any DHT can
// be adapted by implementing it; this package ships four substrates.
type DHT = dht.DHT

// Value is the unit of substrate storage.
type Value = dht.Value

// ChordRing is the Chord substrate (in-process simulation with
// per-message accounting, joins/leaves/failures and stabilization).
type ChordRing = chord.Ring

// ChordConfig tunes a ChordRing (successor list length, replication,
// seed).
type ChordConfig = chord.Config

// KademliaNetwork is the Kademlia substrate.
type KademliaNetwork = kademlia.Network

// KademliaConfig tunes a KademliaNetwork (bucket size K, lookup
// concurrency alpha, seed).
type KademliaConfig = kademlia.Config

// NewLocalDHT returns the single-process substrate: one flat map with DHT
// semantics. It is the right choice for tests, embedding, and paper-scale
// experiments on one machine.
func NewLocalDHT() DHT { return dht.NewLocal() }

// NewChordDHT builds an n-node Chord ring and returns it; the returned
// ring is itself a DHT, and its methods (AddNode, RemoveNode, Fail,
// Stabilize) drive churn experiments.
func NewChordDHT(n int, cfg ChordConfig) (*ChordRing, error) {
	return chord.NewRing(n, cfg)
}

// NewKademliaDHT builds an n-node Kademlia network; the returned network
// is itself a DHT.
func NewKademliaDHT(n int, cfg KademliaConfig) (*KademliaNetwork, error) {
	return kademlia.NewNetwork(n, cfg)
}

// RegisterGobTypes registers the index's stored types with encoding/gob,
// required before using a substrate that serializes values across
// processes (internal/tcpnet and anything else gob-encoding dht.Value).
func RegisterGobTypes() {
	gob.Register(&ilht.Bucket{})
}
