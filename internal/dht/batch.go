package dht

import "context"

// KV is one key/value pair of a batched put.
type KV struct {
	Key string
	Val Value
}

// Batcher is the optional batched-operation plane of a DHT. A substrate
// that can resolve and ship many keys in fewer round trips than one per
// key implements it natively (Local under one lock pass, chord with one
// routed resolution per responsible peer, tcpnet with one framed message
// per connection); everything else is served by the per-op fallback in
// DoGetBatch / DoPutBatch.
//
// Both methods return positionally aligned results: slot i reports the
// outcome for keys[i] (or kvs[i]), with a nil error slot meaning that key
// succeeded. A batch never fails as a whole — per-key outcomes are
// independent, and a missing key yields ErrNotFound in its slot only.
// PutBatch applies duplicate keys in slice order, so the last occurrence
// wins, matching a sequence of per-op Puts.
//
// Batching changes latency, not the cost model: each batched key is still
// one DHT-lookup (bandwidth); only the number of round trips shrinks.
type Batcher interface {
	// GetBatch returns the values stored under keys. Both returned slices
	// have len(keys) entries; slot i is the outcome for keys[i].
	GetBatch(ctx context.Context, keys []string) ([]Value, []error)

	// PutBatch stores every pair, replacing previous values. The returned
	// slice has len(kvs) entries; slot i is the outcome for kvs[i].
	PutBatch(ctx context.Context, kvs []KV) []error
}

// DoGetBatch fetches keys through d's native GetBatch when d implements
// Batcher, and otherwise decomposes into per-op Gets. Results are
// positionally aligned with keys either way, so callers can program
// against batches without caring what the substrate supports.
func DoGetBatch(ctx context.Context, d DHT, keys []string) ([]Value, []error) {
	if b, ok := d.(Batcher); ok {
		return b.GetBatch(ctx, keys)
	}
	vals := make([]Value, len(keys))
	errs := make([]error, len(keys))
	for i, k := range keys {
		vals[i], errs[i] = d.Get(ctx, k)
	}
	return vals, errs
}

// DoPutBatch stores kvs through d's native PutBatch when d implements
// Batcher, and otherwise decomposes into per-op Puts.
func DoPutBatch(ctx context.Context, d DHT, kvs []KV) []error {
	if b, ok := d.(Batcher); ok {
		return b.PutBatch(ctx, kvs)
	}
	errs := make([]error, len(kvs))
	for i, kv := range kvs {
		errs[i] = d.Put(ctx, kv.Key, kv.Val)
	}
	return errs
}

// withoutBatch hides a substrate's Batcher implementation: only the five
// DHT methods promote through the embedded interface, so DoGetBatch /
// DoPutBatch fall back to per-op calls. The conditional plane is passed
// through untouched — the wrapper strips batching, not CAS; without the
// pass-through the A6 ablation arms would diverge in lookups (the per-op
// arm's conditional puts would degrade to fetch-verify emulation).
type withoutBatch struct{ DHT }

func (w withoutBatch) PutIf(ctx context.Context, key string, v Value, ifEpoch uint64) error {
	return DoPutIf(ctx, w.DHT, key, v, ifEpoch)
}

func (w withoutBatch) CreateIf(ctx context.Context, key string, v Value) error {
	return DoCreateIf(ctx, w.DHT, key, v)
}

func (w withoutBatch) RemoveIf(ctx context.Context, key string, ifEpoch uint64) error {
	return DoRemoveIf(ctx, w.DHT, key, ifEpoch)
}

func (w withoutBatch) WriteIf(ctx context.Context, key string, v Value, ifEpoch uint64) error {
	return DoWriteIf(ctx, w.DHT, key, v, ifEpoch)
}

// WithoutBatch returns d stripped of its batched-operation plane, forcing
// every batch through the per-op fallback. Benchmarks use it as the
// baseline arm when measuring round trips saved by native batching (the
// A6 ablation); it is also a way to disable batching for a substrate that
// misbehaves under it.
func WithoutBatch(d DHT) DHT { return withoutBatch{d} }
