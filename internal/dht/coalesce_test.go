package dht

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lht/internal/metrics"
)

// gatedDHT wraps a Local and blocks every Get until released, so a test
// can pile up concurrent readers on one key deterministically.
type gatedDHT struct {
	*Local
	gets    atomic.Int64
	release chan struct{}
}

func (g *gatedDHT) Get(ctx context.Context, key string) (Value, error) {
	g.gets.Add(1)
	select {
	case <-g.release:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return g.Local.Get(ctx, key)
}

func TestCoalescingThunderingHerd(t *testing.T) {
	inner := &gatedDHT{Local: NewLocal(), release: make(chan struct{})}
	ctx := context.Background()
	if err := inner.Local.Put(ctx, "hot", 42); err != nil {
		t.Fatal(err)
	}
	var c metrics.Counters
	d := WithCoalescing(inner, &c)

	const herd = 32
	var wg sync.WaitGroup
	errs := make(chan error, herd)
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := d.Get(ctx, "hot")
			if err != nil {
				errs <- err
				return
			}
			if v.(int) != 42 {
				t.Errorf("got %v", v)
			}
		}()
	}
	// Wait until the leader is inside the gated inner Get and the rest
	// have had a chance to pile up behind it.
	for inner.gets.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	close(inner.release)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if got := inner.gets.Load(); got >= herd {
		t.Errorf("inner saw %d gets for a %d-strong herd: nothing coalesced", got, herd)
	}
	phys, rides := inner.gets.Load(), c.Snapshot().Load.CoalescedGets
	if phys+rides != herd {
		t.Errorf("physical gets (%d) + coalesced rides (%d) != herd (%d)", phys, rides, herd)
	}
}

// TestCoalescingFollowerOutlivesLeader pins that a follower whose own
// context is live re-issues the fetch instead of inheriting the
// leader's cancellation.
func TestCoalescingFollowerOutlivesLeader(t *testing.T) {
	inner := &gatedDHT{Local: NewLocal(), release: make(chan struct{})}
	if err := inner.Local.Put(context.Background(), "k", 7); err != nil {
		t.Fatal(err)
	}
	d := WithCoalescing(inner, nil)

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderDone := make(chan error, 1)
	go func() {
		_, err := d.Get(leaderCtx, "k")
		leaderDone <- err
	}()
	for inner.gets.Load() == 0 {
		time.Sleep(time.Millisecond)
	}

	followerDone := make(chan error, 1)
	go func() {
		v, err := d.Get(context.Background(), "k")
		if err == nil && v.(int) != 7 {
			err = context.DeadlineExceeded // wrong value, fail below
		}
		followerDone <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancelLeader()
	if err := <-leaderDone; err == nil {
		t.Fatal("cancelled leader returned nil")
	}
	close(inner.release) // let the follower's own fetch through
	if err := <-followerDone; err != nil {
		t.Fatalf("follower with live context failed: %v", err)
	}
}

// TestCoalescingPreservesCapabilities pins that the wrapper re-exposes
// exactly the inner substrate's optional interfaces.
func TestCoalescingPreservesCapabilities(t *testing.T) {
	full := WithCoalescing(NewLocal(), nil) // Local: Batcher + Conditional
	if _, ok := full.(Batcher); !ok {
		t.Error("Batcher capability lost")
	}
	if _, ok := full.(Conditional); !ok {
		t.Error("Conditional capability lost")
	}

	cond := WithCoalescing(WithoutBatch(NewLocal()), nil) // Conditional only
	if _, ok := cond.(Batcher); ok {
		t.Error("Batcher capability invented")
	}
	if _, ok := cond.(Conditional); !ok {
		t.Error("Conditional capability lost")
	}

	// Conditional ops still work through the wrapper.
	ctx := context.Background()
	if err := DoCreateIf(ctx, full, "c", 1); err != nil {
		t.Fatal(err)
	}
	if err := DoCreateIf(ctx, full, "c", 2); err == nil {
		t.Fatal("CreateIf on existing key succeeded")
	}
}

// TestCoalescingFreshReadBypass pins the CAS-retry escape hatch: a Get
// under a WithFreshRead context must hit the substrate itself — never
// ride an in-flight fetch whose answer may predate the write the caller
// just lost to — and must see state newer than the flight it skipped.
func TestCoalescingFreshReadBypass(t *testing.T) {
	inner := &gatedDHT{Local: NewLocal(), release: make(chan struct{})}
	ctx := context.Background()
	if err := inner.Local.Put(ctx, "hot", 1); err != nil {
		t.Fatal(err)
	}
	var c metrics.Counters
	d := WithCoalescing(inner, &c)

	// Park a leader inside the gated substrate get.
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := d.Get(ctx, "hot"); err != nil {
			t.Errorf("leader: %v", err)
		}
	}()
	for inner.gets.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	// The value moves on while the flight is parked — the situation a
	// CAS loser is in after the winner committed.
	if err := inner.Local.Put(ctx, "hot", 2); err != nil {
		t.Fatal(err)
	}

	// A fresh read must bypass the parked flight and see the new value.
	fresh := make(chan struct{})
	go func() {
		defer close(fresh)
		v, err := d.Get(WithFreshRead(ctx), "hot")
		if err != nil {
			t.Errorf("fresh read: %v", err)
			return
		}
		if v.(int) != 2 {
			t.Errorf("fresh read saw %v, want the post-write 2", v)
		}
	}()
	// It blocks on the gate like any substrate get, proving it went
	// physical; the flight's done channel stays closed to it.
	for inner.gets.Load() < 2 {
		time.Sleep(time.Millisecond)
	}
	close(inner.release)
	<-fresh
	<-done

	if got := c.Snapshot().Load.CoalescedGets; got != 0 {
		t.Errorf("fresh read rode a flight: CoalescedGets = %d, want 0", got)
	}
	if got := inner.gets.Load(); got != 2 {
		t.Errorf("substrate saw %d gets, want 2 (leader + fresh)", got)
	}
}
