package lht_test

import (
	"errors"
	"math/rand"
	"testing"

	"lht"
)

// TestChurnSurvivalWithReplication exercises the failure model end to
// end: an index over a replicated Chord ring keeps every record through a
// non-graceful node departure (a crash, not a handoff), because each
// bucket lives on Replicas consecutive successors and reads slide along
// the chain. After the churn, a Scrub pass confirms the tree's
// structural invariants survived untouched.
func TestChurnSurvivalWithReplication(t *testing.T) {
	ring, err := lht.NewChordDHT(16, lht.ChordConfig{Seed: 42, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := lht.New(ring, lht.Config{SplitThreshold: 20, MergeThreshold: 10, Depth: 20})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(42))
	keys := make([]float64, 400)
	for i := range keys {
		keys[i] = rng.Float64()
		if _, err := ix.Insert(lht.Record{Key: keys[i], Value: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}

	// Crash one node outright: its shard is stranded, not handed over.
	// With Replicas=2 every key keeps one live holder.
	members := ring.NodeAddrs()
	if err := ring.RemoveNode(members[len(members)/2], false); err != nil {
		t.Fatal(err)
	}
	ring.Stabilize(4)

	for i, k := range keys {
		rec, _, err := ix.Get(k)
		if err != nil {
			t.Fatalf("Get(%v) after churn: %v", k, err)
		}
		if len(rec.Value) != 1 || rec.Value[0] != byte(i) {
			t.Fatalf("Get(%v) = %v, want value [%d]", k, rec.Value, i)
		}
	}

	// The index keeps accepting writes on the healed ring.
	for i := 0; i < 100; i++ {
		k := rng.Float64()
		keys = append(keys, k)
		if _, err := ix.Insert(lht.Record{Key: k}); err != nil {
			t.Fatalf("Insert after churn: %v", err)
		}
	}

	rep, err := ix.Scrub()
	if err != nil {
		t.Fatalf("Scrub: %v\n%s", err, rep)
	}
	if !rep.Clean() {
		t.Fatalf("Scrub after churn not clean:\n%s", rep)
	}
	if rep.Records != len(keys) {
		t.Fatalf("Scrub visited %d records, want %d", rep.Records, len(keys))
	}
}

// TestTornSplitOverChordRepaired runs the torn-split regression over the
// Chord substrate through the exported API: a writer crashes between a
// split's remote put and its local write-back, and a fresh client's next
// query repairs the tear in-line.
func TestTornSplitOverChordRepaired(t *testing.T) {
	ring, err := lht.NewChordDHT(8, lht.ChordConfig{Seed: 7, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	crash := lht.WithCrashPoints(ring, lht.CrashRule{
		Op:  lht.OpCreateIf,
		Key: func(k string) bool { return k == "#0" },
		// The split pushes its remote half out to "#0" with a
		// create-if-absent; After loses only the acknowledgement, Halt
		// kills the writer.
		N: 1, After: true, Halt: true,
	})
	ix, err := lht.New(crash, lht.Config{SplitThreshold: 4, Depth: 20})
	if err != nil {
		t.Fatal(err)
	}
	keys := []float64{0.1, 0.3, 0.7}
	var crashed bool
	for _, k := range keys {
		if _, err := ix.Insert(lht.Record{Key: k}); errors.Is(err, lht.ErrCrashed) {
			crashed = true
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if !crashed {
		t.Fatal("schedule never fired; the split workload regressed")
	}

	fresh, err := lht.New(ring, lht.Config{SplitThreshold: 4, Depth: 20})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if _, _, err := fresh.Get(k); err != nil {
			t.Fatalf("Get(%v) on torn tree: %v", k, err)
		}
	}
	s := fresh.Metrics().Flat()
	if s.TornSplits != 1 || s.Repairs != 1 {
		t.Fatalf("TornSplits=%d Repairs=%d, want 1, 1", s.TornSplits, s.Repairs)
	}
	rep, err := fresh.Scrub()
	if err != nil || !rep.Clean() {
		t.Fatalf("Scrub after repair = %v, %s; want clean", err, rep)
	}
}
