package bench

import (
	"fmt"
	"math"
	"strings"
)

// FormatTable renders a Result as an aligned text table, one row per X
// value and one column per series - the textual equivalent of the paper's
// figure.
func FormatTable(r Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", r.Name, r.Title)

	headers := make([]string, 0, len(r.Series)+1)
	headers = append(headers, r.XLabel)
	for _, s := range r.Series {
		headers = append(headers, s.Name)
	}

	// Collect rows keyed by X in first-series order (all series share X).
	var rows [][]string
	if len(r.Series) > 0 {
		for i, p := range r.Series[0].Points {
			row := make([]string, 0, len(headers))
			row = append(row, formatX(p.X))
			for _, s := range r.Series {
				if i < len(s.Points) {
					row = append(row, formatY(s.Points[i].Y))
				} else {
					row = append(row, "-")
				}
			}
			rows = append(rows, row)
		}
	}

	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// formatX renders sizes as powers of two when exact ("2^14"), other
// values plainly.
func formatX(x float64) string {
	if x >= 4 && x == math.Trunc(x) {
		e := math.Log2(x)
		if e == math.Trunc(e) {
			return fmt.Sprintf("2^%d", int(e))
		}
		return fmt.Sprintf("%d", int64(x))
	}
	return fmt.Sprintf("%g", x)
}

func formatY(y float64) string {
	switch {
	case y == math.Trunc(y) && math.Abs(y) < 1e15:
		return fmt.Sprintf("%d", int64(y))
	case math.Abs(y) >= 1000:
		return fmt.Sprintf("%.1f", y)
	default:
		return fmt.Sprintf("%.4g", y)
	}
}

// FormatCSV renders a Result as CSV for external plotting.
func FormatCSV(r Result) string {
	var b strings.Builder
	b.WriteString("x")
	for _, s := range r.Series {
		fmt.Fprintf(&b, ",%q", s.Name)
	}
	b.WriteByte('\n')
	if len(r.Series) == 0 {
		return b.String()
	}
	for i, p := range r.Series[0].Points {
		fmt.Fprintf(&b, "%g", p.X)
		for _, s := range r.Series {
			if i < len(s.Points) {
				fmt.Fprintf(&b, ",%g", s.Points[i].Y)
			} else {
				b.WriteString(",")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
