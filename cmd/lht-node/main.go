// Command lht-node runs one storage node of an LHT cluster: a
// gob-over-TCP key-value server (internal/tcpnet). Start a few on
// different ports, then point lht-cli (or any program using
// tcpnet.Dial + lht.New) at the full member list:
//
//	lht-node -listen 127.0.0.1:7001 -data /var/lib/lht/n1.snap &
//	lht-node -listen 127.0.0.1:7002 -data /var/lib/lht/n2.snap &
//	lht-node -listen 127.0.0.1:7003 -data /var/lib/lht/n3.snap &
//	lht-cli -nodes 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003 fill 10000
//
// With -data set, the node loads its shard at startup and snapshots it
// on SIGINT/SIGTERM, so a restart preserves the index; adding
// -snapshot-interval 30s also snapshots periodically, bounding what a
// hard crash can lose to one interval.
//
// With -metrics set, the node serves its traffic counters in Prometheus
// text format on http://ADDR/metrics (plus net/http/pprof profiles):
//
//	lht-node -listen 127.0.0.1:7001 -metrics 127.0.0.1:9001 &
//	curl -s http://127.0.0.1:9001/metrics | grep lht_dht_lookups_total
//
// With -gossip-peers set, the node joins the self-healing membership
// plane: it anti-entropy-gossips a versioned cluster view with its
// peers, declares unresponsive members suspect and then dead, parks
// hinted handoffs for down holders and replays them when the holder
// returns. Adding -repair-interval makes the node periodically scrub
// the shared index with re-replication, restoring the replica count of
// buckets lost to permanent node failures (run it on one node per
// cluster, or stagger the intervals):
//
//	lht-node -listen 127.0.0.1:7001 \
//	  -gossip-peers 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003 \
//	  -repair-interval 30s -repair-replicas 3 &
package main

import (
	"context"
	"flag"
	"fmt"
	"hash/fnv"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"lht"
	"lht/internal/dht"
	"lht/internal/metrics"
	"lht/internal/tcpnet"
)

// nodeConfig carries the parsed flag set into run.
type nodeConfig struct {
	listen, data, metricsAddr string
	snapshotInterval          time.Duration
	gossipPeers               []string
	gossipInterval            time.Duration
	gossipSeed                int64
	repairInterval            time.Duration
	repairReplicas            int
}

func main() {
	var cfg nodeConfig
	listen := flag.String("listen", "127.0.0.1:7001", "address to listen on")
	data := flag.String("data", "", "snapshot file for the node's shard (empty = in-memory only)")
	interval := flag.Duration("snapshot-interval", 0, "also snapshot the shard periodically (0 = only on shutdown); requires -data")
	metricsAddr := flag.String("metrics", "", "serve Prometheus /metrics and pprof on this address (empty = disabled)")
	peers := flag.String("gossip-peers", "", "comma-separated cluster member addresses (including this node); enables the membership plane")
	gossipInterval := flag.Duration("gossip-interval", time.Second, "anti-entropy gossip period; requires -gossip-peers")
	gossipSeed := flag.Int64("gossip-seed", 0, "seed for deterministic gossip peer selection (0 = derive from the listen address)")
	repairInterval := flag.Duration("repair-interval", 0, "scrub the shared index with re-replication this often (0 = off); requires -gossip-peers")
	repairReplicas := flag.Int("repair-replicas", 2, "replica count the cluster's writers use; the repair scrub restores it")
	flag.Parse()
	cfg.listen, cfg.data, cfg.metricsAddr = *listen, *data, *metricsAddr
	cfg.snapshotInterval = *interval
	if *peers != "" {
		cfg.gossipPeers = strings.Split(*peers, ",")
	}
	cfg.gossipInterval, cfg.gossipSeed = *gossipInterval, *gossipSeed
	cfg.repairInterval, cfg.repairReplicas = *repairInterval, *repairReplicas
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "lht-node:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, cfg nodeConfig) error {
	listen, data, metricsAddr := cfg.listen, cfg.data, cfg.metricsAddr
	interval := cfg.snapshotInterval
	srv := tcpnet.NewServer()
	if data != "" {
		if err := srv.LoadSnapshot(data); err != nil {
			return err
		}
		log.Printf("loaded %d keys from %s", srv.Len(), data)
	}
	if interval > 0 && data == "" {
		return fmt.Errorf("-snapshot-interval requires -data")
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}

	// Membership plane: seed the view with the configured member list
	// and anti-entropy gossip on the configured period. Self must be the
	// address peers dial, so -listen needs an explicit host with gossip
	// on.
	if len(cfg.gossipPeers) > 0 {
		seed := cfg.gossipSeed
		if seed == 0 {
			h := fnv.New64a()
			_, _ = h.Write([]byte(listen))
			seed = int64(h.Sum64())
		}
		mem := srv.EnableMembership(tcpnet.MembershipConfig{
			Self:  listen,
			Seeds: cfg.gossipPeers,
			Seed:  seed,
		})
		go mem.Run(ctx, cfg.gossipInterval)
		log.Printf("membership plane on: %d member(s), gossip every %v", len(cfg.gossipPeers), cfg.gossipInterval)
	} else if cfg.repairInterval > 0 {
		return fmt.Errorf("-repair-interval requires -gossip-peers")
	}
	if cfg.repairInterval > 0 {
		if cfg.repairReplicas < 2 {
			return fmt.Errorf("-repair-replicas must be at least 2")
		}
		lht.RegisterGobTypes()
		go repairLoop(ctx, cfg)
	}

	// The observability endpoint is separate from the data port so
	// scrapes never contend with the gob protocol.
	if metricsAddr != "" {
		mln, err := net.Listen("tcp", metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		msrv := &http.Server{Handler: metrics.NewMux(srv.Metrics)}
		go func() {
			<-ctx.Done()
			_ = msrv.Close()
		}()
		go func() {
			if err := msrv.Serve(mln); err != nil && err != http.ErrServerClosed {
				log.Printf("metrics server: %v", err)
			}
		}()
		log.Printf("metrics on http://%s/metrics", mln.Addr())
	}

	// Periodic snapshots bound the state a crash (as opposed to a clean
	// shutdown) can lose to one interval; a restarted node then resumes
	// from recent state instead of the last manual save.
	if interval > 0 {
		go func() {
			t := time.NewTicker(interval)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					if err := srv.SaveSnapshot(data); err != nil {
						log.Printf("periodic snapshot: %v", err)
					} else {
						log.Printf("snapshotted %d keys to %s", srv.Len(), data)
					}
				}
			}
		}()
	}

	// SIGINT/SIGTERM cancels ctx: snapshot the shard, then close the
	// server, which unblocks Serve below for a clean exit.
	go func() {
		<-ctx.Done()
		if data != "" {
			if err := srv.SaveSnapshot(data); err != nil {
				log.Printf("snapshot: %v", err)
			} else {
				log.Printf("snapshotted %d keys to %s", srv.Len(), data)
			}
		}
		log.Printf("shutting down (%d keys stored)", srv.Len())
		if err := srv.Close(); err != nil {
			log.Printf("close: %v", err)
		}
	}()

	log.Printf("lht-node serving on %s", ln.Addr())
	return srv.Serve(ln)
}

// repairLoop periodically scrubs the shared index with re-replication
// enabled, dialing the cluster fresh each pass so the routing ring
// always reflects the latest gossip view. Failures are logged and
// retried next tick — a down peer must never take the node with it.
func repairLoop(ctx context.Context, cfg nodeConfig) {
	t := time.NewTicker(cfg.repairInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			pctx, cancel := context.WithTimeout(ctx, cfg.repairInterval)
			rep, err := repairOnce(pctx, cfg)
			cancel()
			switch {
			case err != nil:
				log.Printf("repair scrub: %v", err)
			case !rep.Clean():
				log.Printf("repair %s", rep)
			}
		}
	}
}

// repairOnce runs one re-replicating scrub over the cluster. The client
// dials degraded (dead members start with open breakers) and refreshes
// its routing ring from the gossip view first, so the scrub probes the
// owners the cluster actually routes to now.
func repairOnce(ctx context.Context, cfg nodeConfig) (*lht.ScrubReport, error) {
	client, err := tcpnet.Dial(ctx, tcpnet.ClusterConfig{
		Seeds:         cfg.gossipPeers,
		Replicas:      cfg.repairReplicas,
		Health:        &dht.BreakerConfig{},
		DegradedStart: true,
	})
	if err != nil {
		return nil, err
	}
	defer func() { _ = client.Close() }()
	if err := client.RefreshView(ctx); err != nil {
		log.Printf("repair view refresh: %v", err)
	}
	ix, err := lht.New(client,
		lht.WithRereplication(true), lht.WithPolicy(lht.DefaultPolicy()))
	if err != nil {
		return nil, err
	}
	return ix.ScrubContext(ctx)
}
