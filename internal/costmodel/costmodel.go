// Package costmodel implements the linear bandwidth cost model of paper
// section 8: moving one data record costs i units (record size), one
// DHT-lookup costs j units (routing hops, typically O(log N) physical
// messages). The model prices maintenance events of over-DHT indexing
// schemes and yields the analytic saving ratio of equation 3.
package costmodel

import (
	"errors"
	"fmt"
)

// Params are the two unit costs of the linear model.
type Params struct {
	// RecordUnit is i: the bandwidth cost of moving one record between
	// peers. Grows with record size.
	RecordUnit float64
	// LookupUnit is j: the bandwidth cost of one DHT-lookup. Grows with
	// network scale (O(log N) physical hops per lookup).
	LookupUnit float64
}

// ErrParams reports non-positive unit costs.
var ErrParams = errors.New("costmodel: units must be positive")

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.RecordUnit <= 0 || p.LookupUnit <= 0 {
		return fmt.Errorf("%w: i=%v j=%v", ErrParams, p.RecordUnit, p.LookupUnit)
	}
	return nil
}

// Gamma is the dimensionless ratio gamma = theta*i/j that equation 3's
// saving ratio depends on: how record-movement-heavy one split is relative
// to one DHT-lookup.
func (p Params) Gamma(theta int) float64 {
	return float64(theta) * p.RecordUnit / p.LookupUnit
}

// Cost prices an arbitrary maintenance event: moved record slots plus
// DHT-lookups.
func (p Params) Cost(movedRecords, lookups float64) float64 {
	return movedRecords*p.RecordUnit + lookups*p.LookupUnit
}

// PsiLHT is equation 1: the average cost of one LHT leaf split - half the
// bucket (alpha approaches 1/2) moves with a single DHT-lookup.
func (p Params) PsiLHT(theta int) float64 {
	return 0.5*float64(theta)*p.RecordUnit + 1*p.LookupUnit
}

// PsiPHT is equation 2: the average cost of one PHT leaf split - the whole
// bucket moves (both children change labels) with 4 DHT-lookups (two child
// puts, two B+-tree link updates).
func (p Params) PsiPHT(theta int) float64 {
	return float64(theta)*p.RecordUnit + 4*p.LookupUnit
}

// SavingRatio is equation 3: 1 - PsiLHT/PsiPHT = (gamma/2 + 3)/(gamma + 4),
// the fraction of per-split maintenance bandwidth LHT saves over PHT. It
// decreases from 3/4 (lookup-dominated, gamma -> 0) to 1/2
// (record-dominated, gamma -> infinity): the paper's "up to 75%, at least
// 50%" claim.
func (p Params) SavingRatio(theta int) float64 {
	gamma := p.Gamma(theta)
	return (gamma/2 + 3) / (gamma + 4)
}

// SavingRatioFromGamma evaluates equation 3 directly from gamma.
func SavingRatioFromGamma(gamma float64) float64 {
	return (gamma/2 + 3) / (gamma + 4)
}

// MeasuredSaving computes the empirical saving ratio from two measured
// maintenance totals priced by the model.
func (p Params) MeasuredSaving(lhtMoved, lhtLookups, phtMoved, phtLookups float64) float64 {
	lht := p.Cost(lhtMoved, lhtLookups)
	pht := p.Cost(phtMoved, phtLookups)
	if pht == 0 {
		return 0
	}
	return 1 - lht/pht
}
