package stats

import (
	"math"
	"testing"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v", got)
	}
}

func TestStdDev(t *testing.T) {
	if StdDev([]float64{5}) != 0 {
		t.Error("single-element stddev != 0")
	}
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2) > 1e-12 {
		t.Errorf("StdDev = %v, want 2", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{9, 1, 8, 2, 7, 3, 6, 4, 5, 10}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 10}, {50, 5}, {90, 9}, {10, 1},
	}
	for _, tc := range cases {
		if got := Percentile(xs, tc.p); got != tc.want {
			t.Errorf("Percentile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("Percentile(nil) != 0")
	}
	// The input must not be mutated.
	if xs[0] != 9 {
		t.Error("Percentile mutated its input")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Errorf("MinMax = %v, %v", lo, hi)
	}
	lo, hi = MinMax(nil)
	if lo != 0 || hi != 0 {
		t.Error("MinMax(nil) != 0,0")
	}
}
