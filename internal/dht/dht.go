// Package dht defines the generic put/get interface that over-DHT
// indexing schemes are built on (the "over-DHT paradigm" of paper section
// 2), together with a single-process implementation, a cost-counting
// instrumentation wrapper, and a retry/backoff policy wrapper for
// transient substrate faults.
//
// Every routed operation (Put, Get, Take, Remove) costs exactly one
// DHT-lookup in the paper's cost model: the underlying substrate resolves
// the key to its responsible peer (typically O(log N) physical hops) and
// performs the storage action there. Write is the deliberate exception: it
// rewrites a value on the peer that already stores it ("write b back to
// the local disk", Algorithm 1 line 10) and costs no lookup.
//
// Substrates may additionally implement the optional Batcher interface,
// serving many keys per round trip; DoGetBatch and DoPutBatch fall back
// to per-op calls for substrates that do not. Batched keys are charged as
// lookups exactly like per-op calls, so batching changes latency (round
// trips), never the cost model's bandwidth measure.
//
// All routed operations take a context.Context: substrates honor
// cancellation and deadlines (the TCP substrate derives real dial/read/
// write deadlines from it), and the index layers thread the caller's
// context through every probe of a multi-lookup operation.
//
// Implementations in this repository: Local (this package), the Chord ring
// adapter (internal/chord), the Kademlia adapter (internal/kademlia), and
// the TCP cluster client (internal/tcpnet).
package dht

import (
	"context"
	"errors"
	"fmt"
	"net"

	"lht/internal/simnet"
)

// ErrNotFound reports that no value is stored under the requested key.
// Over-DHT index algorithms rely on distinguishing this outcome: a failed
// DHT-get steers the LHT lookup binary search (Algorithm 2 line 7).
var ErrNotFound = errors.New("dht: key not found")

// ErrTransient marks substrate faults that a retry may outlive: an
// unreachable peer, a dropped connection, a network timeout. Substrates
// wrap such errors with MarkTransient (or return errors chaining to
// simnet.ErrUnreachable / net timeouts, which IsTransient also
// recognizes); the policy wrapper retries exactly these.
var ErrTransient = errors.New("dht: transient substrate fault")

// transientError attaches the ErrTransient marker to an underlying fault
// while preserving the original error chain.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() []error {
	return []error{ErrTransient, e.err}
}

// MarkTransient wraps err so IsTransient (and errors.Is with
// ErrTransient) reports it as retryable. A nil err returns nil.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient is the default fault classification used by Policy: it
// reports whether err is a transient substrate fault worth retrying.
//
// Permanent outcomes — nil, ErrNotFound, and context cancellation or
// deadline expiry — are never transient: retrying cannot change them (a
// missing key is an answer, and a cancelled caller must be obeyed).
// Transient outcomes are anything marked with MarkTransient, a peer the
// simulated network reports unreachable, or a network timeout.
func IsTransient(err error) bool {
	if err == nil ||
		errors.Is(err, ErrNotFound) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if errors.Is(err, ErrTransient) || errors.Is(err, simnet.ErrUnreachable) ||
		errors.Is(err, simnet.ErrPartitioned) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// Value is the unit of storage. Index layers store their bucket structures
// directly; substrates that cross process boundaries serialize values with
// a codec supplied at construction.
type Value any

// DHT is the substrate interface the index layers program against. A DHT
// is a flat key-value store addressed by opaque string keys; the index
// layers derive keys from tree-node labels.
//
// Every method observes ctx: a cancelled or expired context aborts the
// operation and surfaces ctx.Err() (possibly wrapped). Substrates check
// the context at least once per routed message, so a multi-hop lookup
// stops promptly.
//
// Implementations must be safe for concurrent use.
type DHT interface {
	// Get returns the value stored under key, or ErrNotFound. Costs one
	// DHT-lookup whether or not the key exists.
	Get(ctx context.Context, key string) (Value, error)

	// Put stores v under key, replacing any previous value. Costs one
	// DHT-lookup.
	Put(ctx context.Context, key string, v Value) error

	// Take atomically removes and returns the value stored under key, or
	// returns ErrNotFound. Costs one DHT-lookup. LHT leaf merges use Take
	// to fetch-and-delete the sibling bucket in a single routing.
	Take(ctx context.Context, key string) (Value, error)

	// Remove deletes the value under key if present; removing an absent
	// key is not an error. Costs one DHT-lookup.
	Remove(ctx context.Context, key string) error

	// Write rewrites the value stored under key in place on the peer that
	// already holds it, without routing; it is an error (ErrNotFound) if
	// the key is not stored. Costs zero DHT-lookups. Index layers call
	// Write after mutating a bucket they just fetched.
	Write(ctx context.Context, key string, v Value) error
}

// ctxErr returns ctx.Err() wrapped with a uniform prefix when the context
// is already done, or nil. Substrates call it on entry so a cancelled
// caller never pays for routing.
func ctxErr(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("dht: %w", err)
	}
	return nil
}
