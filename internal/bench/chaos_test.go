package bench

import "testing"

// TestChaosAblation runs A11 at reduced scale and pins the acceptance
// criteria: with breakers + hedged reads over 3 replicas, query success
// stays at 100% through the partition and slow-node scenarios, and the
// p99 latency is at least 2x below the degradation-off arm's; the
// serialized cost replay is eligible for the perf gate while the timed
// result is not.
func TestChaosAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("boots 6 real 4-node clusters")
	}
	if raceEnabled {
		t.Skip("wall-clock deadlines under the race detector's slowdown measure the CPU, not the plane")
	}
	o := Options{Theta: 16, Depth: 12, Trials: 1, Queries: 40, Seed: 1}
	lat, rt, err := RunChaosAblation(o, 256)
	if err != nil {
		t.Fatal(err)
	}

	offSucc := seriesByName(t, lat, "plane off success %")
	onSucc := seriesByName(t, lat, "plane on success %")
	offP99 := seriesByName(t, lat, "plane off query p99")
	onP99 := seriesByName(t, lat, "plane on query p99")
	for sc, name := range []string{"partition", "slow", "flap"} {
		t.Logf("%s: success off=%.1f%% on=%.1f%%, p99 off=%.0fus on=%.0fus",
			name, offSucc.Points[sc].Y, onSucc.Points[sc].Y, offP99.Points[sc].Y, onP99.Points[sc].Y)
	}

	// The headline claim: partition and slow scenarios lose nothing with
	// the plane on (flap can clip a query mid-transition, so it gets the
	// softer bound), and the tail collapses by at least 2x.
	for _, sc := range []int{0, 1} {
		if y := onSucc.Points[sc].Y; y != 100 {
			t.Errorf("plane on, scenario %d: success %v%%, want 100%%", sc, y)
		}
		if off, on := offP99.Points[sc].Y, onP99.Points[sc].Y; on <= 0 || off < 2*on {
			t.Errorf("scenario %d: p99 off %vus vs on %vus, want >= 2x reduction", sc, off, on)
		}
	}
	if y := onSucc.Points[2].Y; y < 99 {
		t.Errorf("plane on, flap: success %v%%, want >= 99%%", y)
	}
	for sc := range onSucc.Points {
		if off, on := offSucc.Points[sc].Y, onSucc.Points[sc].Y; on < off {
			t.Errorf("scenario %d: plane on success %v%% below plane off %v%%", sc, on, off)
		}
	}

	// Gate eligibility: the deterministic replay rows diff byte-for-byte
	// in CI; the wall-clock result must stay out of the gate.
	if !gatedResult(rt) {
		t.Error("the round-trips replay must be eligible for the perf gate")
	}
	if gatedResult(lat) {
		t.Error("the timed chaos result must not be eligible for the perf gate")
	}
	for _, s := range rt.Series {
		if len(s.Points) != len(chaosScenarios) {
			t.Fatalf("replay series %q has %d points, want %d", s.Name, len(s.Points), len(chaosScenarios))
		}
		for _, p := range s.Points {
			if p.Y <= 0 {
				t.Errorf("replay series %q: nonpositive round trips %v at x=%v", s.Name, p.Y, p.X)
			}
		}
	}
}
