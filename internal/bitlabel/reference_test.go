package bitlabel

import (
	"math/rand"
	"strings"
)

// This file holds a deliberately naive string-based reference
// implementation of the label algebra, transcribed directly from the
// paper's regular-expression definitions. The packed implementation is
// property-tested against it.

// refName is f_n (Definition 1) on a textual label like "#0110": truncate
// the maximal trailing run of the last character.
func refName(s string) string {
	body := s[1:]
	if len(body) == 0 {
		panic("refName of virtual root")
	}
	last := body[len(body)-1]
	i := len(body)
	for i > 0 && body[i-1] == last {
		i--
	}
	return "#" + body[:i]
}

// refNextName is f_nn (Definition 2): the shortest prefix of mu extending
// x that ends with a bit different from x's last bit.
func refNextName(x, mu string) (string, bool) {
	if !strings.HasPrefix(mu, x) || len(x) == len(mu) {
		panic("refNextName: x must be a proper prefix of mu")
	}
	last := x[len(x)-1]
	for i := len(x); i < len(mu); i++ {
		if mu[i] != last {
			return mu[:i+1], true
		}
	}
	return "", false
}

// refRightNeighbor is f_rn (Definition 3): for x = p01*, p != "#", the
// nearest right branch is p1; for x = #01* it is x itself (rightmost).
func refRightNeighbor(s string) (string, bool) {
	body := s[1:]
	i := len(body)
	for i > 0 && body[i-1] == '1' {
		i--
	}
	// body[:i] ends with '0' (or is empty).
	if i <= 1 {
		return s, false // x = #01*: no branch to the right
	}
	return "#" + body[:i-1] + "1", true
}

// refLeftNeighbor is f_ln: for x = p10* the nearest left branch is p0; for
// x = #00* it is x itself (leftmost).
func refLeftNeighbor(s string) (string, bool) {
	body := s[1:]
	i := len(body)
	for i > 0 && body[i-1] == '0' {
		i--
	}
	if i <= 1 {
		return s, false // x = #00*
	}
	return "#" + body[:i-1] + "0", true
}

// refLCA is the longest common prefix.
func refLCA(a, b string) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 1 // both start with '#'
	for i < n && a[i] == b[i] {
		i++
	}
	return a[:i]
}

// randLabelString generates a random valid label with 1..maxBits bits.
func randLabelString(rng *rand.Rand, maxBits int) string {
	n := 1 + rng.Intn(maxBits)
	var b strings.Builder
	b.WriteString("#0")
	for i := 1; i < n; i++ {
		b.WriteByte('0' + byte(rng.Intn(2)))
	}
	return b.String()
}
