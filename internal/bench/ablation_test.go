package bench

import (
	"testing"

	"lht/internal/workload"
)

func TestLookupAblation(t *testing.T) {
	o := testOptions()
	res, err := RunLookupAblation(o, workload.Uniform, Sizes(10, 13))
	if err != nil {
		t.Fatal(err)
	}
	bin := seriesByName(t, res, "binary search (Alg 2)")
	lin := seriesByName(t, res, "linear descent")
	// At the largest size the tree is deep enough that the linear walk
	// costs strictly more than the binary search.
	if lastY(lin) <= lastY(bin) {
		t.Errorf("linear %v should exceed binary %v at depth", lastY(lin), lastY(bin))
	}
	// The linear walk's cost grows with size; the binary search stays
	// within the log bound.
	if lin.Points[len(lin.Points)-1].Y <= lin.Points[0].Y {
		t.Errorf("linear cost should grow with size: %v", lin.Points)
	}
	for _, p := range bin.Points {
		if p.Y > 6 {
			t.Errorf("binary search cost %v at size %v exceeds log bound", p.Y, p.X)
		}
	}
}

func TestMergeAblation(t *testing.T) {
	o := testOptions()
	res, err := RunMergeAblation(o, workload.Uniform, 1<<11, 1500)
	if err != nil {
		t.Fatal(err)
	}
	maint := seriesByName(t, res, "maint lookups/op")
	leaves := seriesByName(t, res, "final leaves")
	// Thresholds are [0, 0.5, 1] x theta. No merging: zero churn
	// maintenance from merges (only occasional splits).
	aggressive := maint.Points[2].Y
	hysteresis := maint.Points[1].Y
	if aggressive <= hysteresis {
		t.Errorf("paper's merge-at-theta rule (%v/op) should thrash more than theta/2 hysteresis (%v/op)",
			aggressive, hysteresis)
	}
	// Merging keeps the tree at least as small as not merging.
	if leaves.Points[1].Y > leaves.Points[0].Y {
		t.Errorf("hysteresis merging left more leaves (%v) than no merging (%v)",
			leaves.Points[1].Y, leaves.Points[0].Y)
	}
}

func TestThetaSweep(t *testing.T) {
	o := testOptions()
	res, err := RunThetaSweep(o, workload.Uniform, 1<<12, []int{8, 32, 128}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	rq := seriesByName(t, res, "range lookups/query")
	// Fatter buckets -> fewer buckets per range -> fewer lookups.
	if !(rq.Points[0].Y > rq.Points[1].Y && rq.Points[1].Y > rq.Points[2].Y) {
		t.Errorf("range cost should fall with theta: %v", rq.Points)
	}
	mv := seriesByName(t, res, "moved slots/insert")
	for _, p := range mv.Points {
		// Amortized movement per insert is about half a slot plus the
		// label overhead, independent of theta (each record moves at
		// most once per level; with bounded churn it stays near 0.5).
		if p.Y < 0.2 || p.Y > 1.2 {
			t.Errorf("moved slots/insert = %v at theta %v", p.Y, p.X)
		}
	}
}

func TestCacheAblation(t *testing.T) {
	o := testOptions()
	res, err := RunCacheAblation(o, workload.Uniform, Sizes(10, 13))
	if err != nil {
		t.Fatal(err)
	}
	cached := seriesByName(t, res, "cached lookups/query")
	uncached := seriesByName(t, res, "uncached lookups/query")
	hit := seriesByName(t, res, "cache hit rate")
	for i := range cached.Points {
		c, u := cached.Points[i].Y, uncached.Points[i].Y
		// The headline claim: a read-heavy workload under churn stays at
		// or below 1.5 lookups per query with the cache, and never above
		// the uncached binary search.
		if c > 1.5 {
			t.Errorf("cached cost %v at size %v exceeds 1.5", c, cached.Points[i].X)
		}
		if c >= u {
			t.Errorf("cached cost %v should beat uncached %v at size %v", c, u, cached.Points[i].X)
		}
		if h := hit.Points[i].Y; h < 0.8 || h > 1 {
			t.Errorf("hit rate %v at size %v outside [0.8, 1]", h, hit.Points[i].X)
		}
	}
}

func TestHopsVsNodes(t *testing.T) {
	o := Options{Trials: 1, Queries: 40, Seed: 3}
	res, err := RunHopsVsNodes(o, []int{4, 16, 64})
	if err != nil {
		t.Fatal(err)
	}
	ch := seriesByName(t, res, "Chord")
	// Routing cost grows with N but stays far sublinear.
	if ch.Points[2].Y <= ch.Points[0].Y {
		t.Errorf("chord hops should grow with N: %v", ch.Points)
	}
	if ch.Points[2].Y > 16 {
		t.Errorf("chord hops at 64 nodes = %v; not logarithmic", ch.Points[2].Y)
	}
	kad := seriesByName(t, res, "Kademlia")
	if kad.Points[2].Y > 48 {
		t.Errorf("kademlia messages at 64 nodes = %v", kad.Points[2].Y)
	}
}

func TestRelatedWork(t *testing.T) {
	o := Options{Theta: 32, Depth: 20, Trials: 2, Queries: 40, Seed: 9}
	results, err := RunRelatedWork(o, workload.Uniform, 1<<12, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("want 4 results, got %d", len(results))
	}
	get := func(r Result, name string) float64 {
		return seriesByName(t, r, name).Points[0].Y
	}
	insert, search, rangeBW, rangeLat := results[0], results[1], results[2], results[3]

	// Section 2's claims, quantified: DST insertion costs D lookups -
	// far above LHT's lookup+1.
	if got := get(insert, "DST"); got != 20 {
		t.Errorf("DST insert cost = %v, want D = 20", got)
	}
	if lht, dst := get(insert, "LHT"), get(insert, "DST"); dst < 3*lht {
		t.Errorf("DST insert (%v) should dwarf LHT (%v)", dst, lht)
	}
	// DST exact-match is one lookup; LHT needs its binary search.
	if got := get(search, "DST"); got != 1 {
		t.Errorf("DST search cost = %v, want 1", got)
	}
	if lht := get(search, "LHT"); lht <= 1 {
		t.Errorf("LHT search cost = %v, should exceed DST's single lookup", lht)
	}
	// Range latency: both LHT and DST are parallel and shallow;
	// PHT(seq) is the outlier.
	if seq, d := get(rangeLat, "PHT(seq)"), get(rangeLat, "DST"); seq < 4*d {
		t.Errorf("PHT(seq) latency (%v) should dwarf DST (%v)", seq, d)
	}

	// DST's range bandwidth: the canonical decomposition costs ~2D
	// probes regardless of result size, and capacity saturation forces
	// descents below the saturated interior, so wide ranges end up in
	// the same order as LHT's per-bucket cost - replication does not buy
	// bandwidth, only latency. Sanity-bound it within a small factor of
	// LHT at both spans.
	wide, err := RunRelatedWork(o, workload.Uniform, 1<<12, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range []struct {
		name string
		r    Result
	}{{"narrow", rangeBW}, {"wide", wide[2]}} {
		l, d := get(pair.r, "LHT"), get(pair.r, "DST")
		if d > 3*l {
			t.Errorf("%s span: DST bandwidth %v should stay within 3x LHT %v", pair.name, d, l)
		}
	}
	// DST's latency advantage persists at wide spans (descents are
	// parallel and log-shallow).
	if d := get(wide[3], "DST"); d > 12 {
		t.Errorf("DST wide-range latency = %v steps; should stay log-shallow", d)
	}
}

func TestRelatedWorkRST(t *testing.T) {
	o := Options{Theta: 32, Depth: 20, Trials: 1, Queries: 30, Seed: 10}
	results, err := RunRelatedWork(o, workload.Uniform, 1<<12, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	get := func(r Result, name string) float64 {
		return seriesByName(t, r, name).Points[0].Y
	}
	// RST: one-hop exact match and optimal one-step ranges at any P...
	if got := get(results[1], "RST(P=20)"); got != 1 {
		t.Errorf("RST search cost = %v, want 1", got)
	}
	if l, r := get(results[2], "LHT"), get(results[2], "RST(P=20)"); r > l {
		t.Errorf("RST range bandwidth (%v) should be at or below LHT (%v)", r, l)
	}
	// ...but insertion carries an amortized broadcast of P*splits/inserts
	// messages: negligible on the paper's 20-peer testbed, dominant at
	// P=1000 - the unscalability the paper criticizes.
	small := get(results[0], "RST(P=20)")
	big := get(results[0], "RST(P=1000)")
	lhtIns := get(results[0], "LHT")
	if big <= 4*lhtIns {
		t.Errorf("RST(P=1000) insert (%v) should dwarf LHT (%v)", big, lhtIns)
	}
	if big <= 4*small {
		t.Errorf("RST insert cost should scale with P: P=20 %v, P=1000 %v", small, big)
	}
}

func TestSkewRobustness(t *testing.T) {
	o := Options{Theta: 16, Trials: 1, Queries: 60, Seed: 13}
	res, err := RunSkewRobustness(o, Sizes(9, 12))
	if err != nil {
		t.Fatal(err)
	}
	lht := seriesByName(t, res, "LHT lookups")
	pht := seriesByName(t, res, "PHT lookups")
	depth := seriesByName(t, res, "max leaf depth")
	// Zipf drives the hot subtree deep - well past the uniform log2(n/theta).
	if lastY(depth) < 12 {
		t.Errorf("max leaf depth = %v; zipf should grow a deep hot path", lastY(depth))
	}
	// Both lookup costs stay bounded by their binary searches over D=40.
	for _, p := range lht.Points {
		if p.Y > 7 {
			t.Errorf("LHT lookup cost %v at size %v exceeds log(D/2) bound", p.Y, p.X)
		}
	}
	if sumY(lht) >= sumY(pht) {
		t.Errorf("LHT (%v) should stay below PHT (%v) under skew", sumY(lht), sumY(pht))
	}
}
