package lht

// Cluster-facing facade: the index exposes the membership plane of its
// substrate (when it has one) without callers needing to hold the
// tcpnet client themselves. Both methods type-assert the bare substrate
// the index was built over — the instrumentation, coalescing, hedging
// and policy wrappers all sit above it and do not implement the
// membership interfaces.

import (
	"context"
	"errors"

	"lht/internal/dht"
)

// ErrNoCluster reports a cluster operation against a substrate that has
// no membership plane (anything but the tcpnet cluster client).
var ErrNoCluster = errors.New("lht: substrate has no cluster membership plane")

// ClusterStatus reports the substrate cluster's membership view: per
// member its gossip state and incarnation, the client's breaker verdict,
// parked hinted-handoff backlogs, and known replica debt. It fails with
// ErrNoCluster when the substrate does not implement dht.ClusterReporter.
// Status traffic rides the membership plane and is free in the paper's
// cost model.
func (ix *Index) ClusterStatus(ctx context.Context) (dht.ClusterStatus, error) {
	if r, ok := ix.raw.(dht.ClusterReporter); ok {
		return r.ClusterStatus(ctx)
	}
	return dht.ClusterStatus{}, ErrNoCluster
}

// rereplicator returns the substrate's replica-repair interface when the
// config opted in and the substrate has one.
func (ix *Index) rereplicator() (dht.Rereplicator, bool) {
	if !ix.cfg.Rereplicate {
		return nil, false
	}
	rr, ok := ix.raw.(dht.Rereplicator)
	return rr, ok
}
