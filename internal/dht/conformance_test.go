package dht_test

import (
	"context"
	"testing"

	"lht/internal/dht"
	"lht/internal/dht/dhttest"
	"lht/internal/metrics"
)

func newCounters() *metrics.Counters { return &metrics.Counters{} }

func TestLocalConformance(t *testing.T) {
	dhttest.Run(t, func(t *testing.T) dht.DHT { return dht.NewLocal() }, dhttest.Options{})
}

func TestInstrumentedConformance(t *testing.T) {
	dhttest.Run(t, func(t *testing.T) dht.DHT {
		return dht.NewInstrumented(dht.NewLocal(), newCounters())
	}, dhttest.Options{})
}

func TestCrashPointsConformance(t *testing.T) {
	dhttest.RunCrashPoints(t, func(t *testing.T) dht.DHT { return dht.NewLocal() })
}

func TestLocalConditionalConformance(t *testing.T) {
	dhttest.RunConditional(t, func(t *testing.T) dht.DHT { return dht.NewLocal() }, dhttest.Options{})
}

func TestInstrumentedConditionalConformance(t *testing.T) {
	dhttest.RunConditional(t, func(t *testing.T) dht.DHT {
		return dht.NewInstrumented(dht.NewLocal(), newCounters())
	}, dhttest.Options{})
}

func TestWithoutBatchConditionalConformance(t *testing.T) {
	// Stripping the batch plane must not strip (or fallback-degrade) the
	// conditional plane.
	dhttest.RunConditional(t, func(t *testing.T) dht.DHT {
		return dht.WithoutBatch(dht.NewLocal())
	}, dhttest.Options{})
}

// fallbackOnly hides every optional plane of a DHT, forcing DoPutIf and
// friends through the non-atomic fetch-verify emulation.
type fallbackOnly struct{ d dht.DHT }

func (f fallbackOnly) Get(ctx context.Context, key string) (dht.Value, error) {
	return f.d.Get(ctx, key)
}
func (f fallbackOnly) Put(ctx context.Context, key string, v dht.Value) error {
	return f.d.Put(ctx, key, v)
}
func (f fallbackOnly) Take(ctx context.Context, key string) (dht.Value, error) {
	return f.d.Take(ctx, key)
}
func (f fallbackOnly) Remove(ctx context.Context, key string) error { return f.d.Remove(ctx, key) }
func (f fallbackOnly) Write(ctx context.Context, key string, v dht.Value) error {
	return f.d.Write(ctx, key, v)
}

func TestFallbackConditionalConformance(t *testing.T) {
	// The fetch-verify emulation satisfies the single-client contract; its
	// atomicity-under-contention subtests are skipped (that is exactly
	// what it cannot provide — see Write.CASFallbacks).
	dhttest.RunConditional(t, func(t *testing.T) dht.DHT {
		return fallbackOnly{dht.NewLocal()}
	}, dhttest.Options{SkipConcurrency: true})
}
