package bitlabel

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// Generate implements quick.Generator so testing/quick can draw random
// valid labels.
func (Label) Generate(rng *rand.Rand, size int) reflect.Value {
	maxBits := size
	if maxBits < 1 {
		maxBits = 1
	}
	if maxBits > MaxBits {
		maxBits = MaxBits
	}
	n := 1 + rng.Intn(maxBits)
	l := TreeRoot
	for i := 1; i < n; i++ {
		l = l.Child(rng.Intn(2))
	}
	return reflect.ValueOf(l)
}

func quickCfg() *quick.Config {
	return &quick.Config{MaxCount: 5000, Rand: rand.New(rand.NewSource(99))}
}

// Property: f_n strictly shortens every leaf label and yields a proper
// prefix (a strict ancestor), as Theorem 1's proof requires.
func TestQuickNameIsProperAncestor(t *testing.T) {
	prop := func(l Label) bool {
		name := l.Name()
		return name.Len() < l.Len() && name.IsPrefixOf(l)
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Property (Theorem 2): after splitting any leaf, exactly one child keeps
// the parent's name and the other is named by the parent's own label.
func TestQuickSplitNaming(t *testing.T) {
	prop := func(l Label) bool {
		if l.Len() >= MaxBits {
			return true
		}
		ln, rn := l.Left().Name(), l.Right().Name()
		if l.LastBit() == 1 {
			// lambda = p011*: left child named lambda, right keeps f_n.
			return ln == l && rn == l.Name()
		}
		return rn == l && ln == l.Name()
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Property: the name of a label is invariant along its trailing run -
// every prefix between f_n(x) and x has the same name (the fact the
// lookup binary search exploits to skip candidates).
func TestQuickNameInvariantAlongRun(t *testing.T) {
	prop := func(l Label) bool {
		name := l.Name()
		for k := name.Len() + 1; k <= l.Len(); k++ {
			if l.Prefix(k).Name() != name {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Property: NextName yields a proper prefix of mu, strictly longer than x,
// with a different name.
func TestQuickNextName(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	prop := func(l Label) bool {
		mu := l
		for mu.Len() < MaxBits && rng.Intn(3) != 0 {
			mu = mu.Child(rng.Intn(2))
		}
		if mu.Len() == l.Len() {
			return true
		}
		next, ok := l.NextName(mu)
		if !ok {
			// Exhausted: every remaining bit equals l's last bit.
			for i := l.Len(); i < mu.Len(); i++ {
				if mu.Bit(i) != l.LastBit() {
					return false
				}
			}
			return true
		}
		return next.Len() > l.Len() && next.IsPrefixOf(mu) && next.Name() != l.Name()
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Property: RightNeighbor produces the label of the nearest branch whose
// subtree lies immediately to the right: Compare orders them, and its
// parent is an ancestor of the argument.
func TestQuickRightNeighborGeometry(t *testing.T) {
	prop := func(l Label) bool {
		b, ok := l.RightNeighbor()
		if !ok {
			return b == l
		}
		return Compare(l, b) < 0 && b.Parent().IsPrefixOf(l)
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickLeftNeighborGeometry(t *testing.T) {
	prop := func(l Label) bool {
		b, ok := l.LeftNeighbor()
		if !ok {
			return b == l
		}
		return Compare(b, l) < 0 && b.Parent().IsPrefixOf(l)
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Property: LCA is the longest label that is a prefix of both arguments.
func TestQuickLCA(t *testing.T) {
	prop := func(a, b Label) bool {
		l := LCA(a, b)
		if !l.IsPrefixOf(a) || !l.IsPrefixOf(b) {
			return false
		}
		if l.Len() < a.Len() && l.Len() < b.Len() {
			// One step deeper must disagree.
			return a.Bit(l.Len()) != b.Bit(l.Len())
		}
		return true
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Property: binary encoding round-trips.
func TestQuickBinaryRoundTrip(t *testing.T) {
	prop := func(l Label) bool {
		data, err := l.MarshalBinary()
		if err != nil {
			return false
		}
		var got Label
		return got.UnmarshalBinary(data) == nil && got == l
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Error(err)
	}
}
