package lht

import (
	"context"
	"errors"
	"fmt"

	"lht/internal/bitlabel"
	"lht/internal/dht"
)

// Leaves returns every leaf bucket of the tree in left-to-right key order,
// by walking neighbor branches from the leftmost leaf. It exists for
// inspection, testing and statistics; it costs one DHT-lookup per leaf
// (plus the boundary fallbacks) and is not part of the paper's query
// repertoire.
func (ix *Index) Leaves() ([]*Bucket, error) {
	return ix.LeavesContext(context.Background())
}

// LeavesContext is Leaves with a caller-supplied context; cancellation
// stops the walk at the next leaf fetch.
func (ix *Index) LeavesContext(ctx context.Context) ([]*Bucket, error) {
	var cost Cost
	b, err := ix.getBucket(ctx, bitlabel.Root.Key(), &cost)
	if err != nil {
		return nil, fmt.Errorf("lht: leftmost leaf: %w", err)
	}
	leaves := []*Bucket{b}
	for {
		beta, ok := b.Label.RightNeighbor()
		if !ok {
			return leaves, nil
		}
		// The next leaf in key order is the leftmost leaf of the nearest
		// right branch.
		nb, err := ix.getBucket(ctx, beta.Key(), &cost)
		if errors.Is(err, dht.ErrNotFound) {
			nb, err = ix.getBucket(ctx, beta.Name().Key(), &cost)
		}
		if err != nil {
			return nil, fmt.Errorf("lht: walk %s: %w", beta, err)
		}
		leaves = append(leaves, nb)
		b = nb
	}
}

// CheckInvariants verifies the structural invariants the paper's theorems
// rely on and returns the first violation found:
//
//   - the leaves' intervals tile [0, 1) exactly in walk order;
//   - every leaf bucket is stored under its name f_n(label), and the
//     naming is injective (Theorem 1);
//   - every record lies inside its leaf's interval;
//   - no leaf inside the depth bound exceeds the split threshold.
//
// It is meant for tests and debugging.
func (ix *Index) CheckInvariants() error {
	leaves, err := ix.Leaves()
	if err != nil {
		return err
	}
	names := make(map[string]bitlabel.Label, len(leaves))
	want := 0.0
	for _, b := range leaves {
		iv := b.Interval()
		if iv.Lo != want {
			return fmt.Errorf("%w: leaf %s starts at %g, want %g", ErrCorrupt, b.Label, iv.Lo, want)
		}
		want = iv.Hi
		name := b.Label.Name()
		if prev, dup := names[name.Key()]; dup {
			return fmt.Errorf("%w: leaves %s and %s share name %s", ErrCorrupt, prev, b.Label, name)
		}
		names[name.Key()] = b.Label
		var cost Cost
		stored, err := ix.getBucket(context.Background(), name.Key(), &cost)
		if err != nil {
			return fmt.Errorf("%w: leaf %s not stored under %s: %v", ErrCorrupt, b.Label, name, err)
		}
		if stored.Label != b.Label {
			return fmt.Errorf("%w: key %s holds leaf %s, want %s", ErrCorrupt, name, stored.Label, b.Label)
		}
		for _, r := range b.Records {
			if !iv.Contains(r.Key) {
				return fmt.Errorf("%w: record %g outside leaf %s %v", ErrCorrupt, r.Key, b.Label, iv)
			}
		}
		// A leaf may transiently exceed theta_split: an insertion causes
		// at most one split (section 5, no cascades), so a split whose
		// records all fall on one side leaves that child oversized until
		// the next insertion into it. Flag only runaway weights.
		if b.Label.Len() < ix.cfg.Depth && b.Weight() > 2*ix.cfg.SplitThreshold {
			return fmt.Errorf("%w: leaf %s weight %d exceeds 2x threshold %d", ErrCorrupt, b.Label, b.Weight(), ix.cfg.SplitThreshold)
		}
	}
	if want != 1 {
		return fmt.Errorf("%w: leaves tile [0, %g), want [0, 1)", ErrCorrupt, want)
	}
	return nil
}

// Count returns the total number of indexed records, via a full leaf walk
// (testing/inspection helper).
func (ix *Index) Count() (int, error) {
	leaves, err := ix.Leaves()
	if err != nil {
		return 0, err
	}
	var n int
	for _, b := range leaves {
		n += len(b.Records)
	}
	return n, nil
}
