package bench

import (
	"math"
	"strings"
	"testing"

	"lht/internal/workload"
)

// The tests below run every figure driver at reduced scale and assert the
// *shapes* the paper reports - who wins, by roughly what factor - which is
// exactly what EXPERIMENTS.md promises to reproduce.

func testOptions() Options {
	return Options{Theta: 32, Depth: 20, Trials: 2, Queries: 60, Seed: 7}
}

func seriesByName(t *testing.T, r Result, name string) Series {
	t.Helper()
	for _, s := range r.Series {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("%s: no series %q (have %v)", r.Name, name, func() []string {
		var out []string
		for _, s := range r.Series {
			out = append(out, s.Name)
		}
		return out
	}())
	return Series{}
}

func lastY(s Series) float64 { return s.Points[len(s.Points)-1].Y }

func sumY(s Series) float64 {
	var sum float64
	for _, p := range s.Points {
		sum += p.Y
	}
	return sum
}

func TestSizes(t *testing.T) {
	got := Sizes(3, 6)
	want := []int{8, 16, 32, 64}
	if len(got) != len(want) {
		t.Fatalf("Sizes = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sizes = %v, want %v", got, want)
		}
	}
}

func TestFig6aAlphaVsSize(t *testing.T) {
	o := testOptions()
	res, err := RunAvgAlphaVsSize(o, []workload.Dist{workload.Uniform, workload.Gaussian},
		[]int{16, 64}, Sizes(9, 12))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 4 {
		t.Fatalf("want 4 series, got %d", len(res.Series))
	}
	// Uniform curves converge to 1/2 + 1/(2*theta).
	for _, tc := range []struct {
		name  string
		theta float64
	}{{"uniform theta=16", 16}, {"uniform theta=64", 64}} {
		s := seriesByName(t, res, tc.name)
		want := 0.5 + 1/(2*tc.theta)
		if got := lastY(s); math.Abs(got-want) > 0.03 {
			t.Errorf("%s final alpha = %v, want about %v", tc.name, got, want)
		}
	}
	// Smaller theta means larger offset from 1/2 (Fig. 6's visible gap).
	a16 := lastY(seriesByName(t, res, "uniform theta=16"))
	a64 := lastY(seriesByName(t, res, "uniform theta=64"))
	if a16 <= a64 {
		t.Errorf("alpha(theta=16)=%v should exceed alpha(theta=64)=%v", a16, a64)
	}
}

func TestFig6bAlphaVsTheta(t *testing.T) {
	o := testOptions()
	res, err := RunAvgAlphaVsTheta(o, []workload.Dist{workload.Uniform}, []int{8, 16, 32, 64}, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	s := seriesByName(t, res, "uniform")
	// Monotone decrease toward 1/2 as theta grows.
	for i := 1; i < len(s.Points); i++ {
		if s.Points[i].Y >= s.Points[i-1].Y+0.01 {
			t.Errorf("alpha should fall with theta: %v", s.Points)
		}
	}
	if got := lastY(s); math.Abs(got-(0.5+1.0/128)) > 0.03 {
		t.Errorf("alpha(theta=64) = %v", got)
	}
}

func TestFig7Maintenance(t *testing.T) {
	o := testOptions()
	moved, lookups, err := RunMaintenance(o, []workload.Dist{workload.Uniform}, Sizes(9, 13))
	if err != nil {
		t.Fatal(err)
	}
	lm := lastY(seriesByName(t, moved, "LHT uniform"))
	pm := lastY(seriesByName(t, moved, "PHT uniform"))
	ratio := lm / pm
	// Paper: LHT's movement is about half of PHT's.
	if ratio < 0.40 || ratio > 0.60 {
		t.Errorf("moved ratio LHT/PHT = %v, want about 0.5", ratio)
	}
	ll := lastY(seriesByName(t, lookups, "LHT uniform"))
	pl := lastY(seriesByName(t, lookups, "PHT uniform"))
	ratio = ll / pl
	// Paper: LHT's maintenance lookups are about 25% of PHT's.
	if ratio < 0.18 || ratio > 0.35 {
		t.Errorf("maintenance lookup ratio LHT/PHT = %v, want about 0.25", ratio)
	}
	// Cumulative cost grows monotonically.
	for _, s := range moved.Series {
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].Y < s.Points[i-1].Y {
				t.Errorf("%s not cumulative: %v", s.Name, s.Points)
			}
		}
	}
}

func TestFig8Lookup(t *testing.T) {
	o := testOptions()
	for _, dist := range []workload.Dist{workload.Uniform, workload.Gaussian} {
		res, err := RunLookup(o, dist, Sizes(8, 12))
		if err != nil {
			t.Fatal(err)
		}
		lht := sumY(seriesByName(t, res, "LHT"))
		pht := sumY(seriesByName(t, res, "PHT"))
		// Paper: LHT saves roughly 20% (uniform) / 30% (gaussian) on
		// average; require it to win and stay within plausible bounds.
		if lht >= pht {
			t.Errorf("%s: LHT lookup cost %v should be below PHT %v", dist, lht, pht)
		}
		saving := 1 - lht/pht
		if saving < 0.05 || saving > 0.55 {
			t.Errorf("%s: lookup saving ratio = %v, want roughly 0.2-0.3", dist, saving)
		}
	}
}

func TestFig9and10Range(t *testing.T) {
	o := testOptions()
	// The order-of-magnitude latency gap is a wide-range effect (it scales
	// with the result bucket count B), so use a generous span.
	bw, lat, err := RunRangeVsSize(o, workload.Uniform, Sizes(11, 13), 0.3)
	if err != nil {
		t.Fatal(err)
	}
	lhtBW := sumY(seriesByName(t, bw, "LHT"))
	seqBW := sumY(seriesByName(t, bw, "PHT(seq)"))
	parBW := sumY(seriesByName(t, bw, "PHT(par)"))
	// Fig. 9: PHT(parallel) spends the most bandwidth; LHT is at or below
	// PHT(sequential), both near optimal.
	if parBW <= seqBW || parBW <= lhtBW {
		t.Errorf("bandwidth: par=%v should dominate seq=%v and lht=%v", parBW, seqBW, lhtBW)
	}
	if lhtBW > seqBW*1.10 {
		t.Errorf("bandwidth: LHT %v should be at or below PHT(seq) %v", lhtBW, seqBW)
	}
	lhtLat := sumY(seriesByName(t, lat, "LHT"))
	seqLat := sumY(seriesByName(t, lat, "PHT(seq)"))
	parLat := sumY(seriesByName(t, lat, "PHT(par)"))
	// Fig. 10: PHT(sequential) latency is an order of magnitude worse;
	// LHT is the most time-efficient.
	if seqLat < 4*parLat || seqLat < 4*lhtLat {
		t.Errorf("latency: seq=%v should be far above par=%v and lht=%v", seqLat, parLat, lhtLat)
	}
	if lhtLat >= parLat {
		t.Errorf("latency: LHT %v should beat PHT(par) %v", lhtLat, parLat)
	}
}

func TestFig9bAnd10bSpan(t *testing.T) {
	o := testOptions()
	bw, lat, err := RunRangeVsSpan(o, workload.Gaussian, 1<<12, []float64{0.05, 0.1, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	// Bandwidth grows with span for every algorithm.
	for _, s := range bw.Series {
		if s.Points[len(s.Points)-1].Y <= s.Points[0].Y {
			t.Errorf("%s bandwidth should grow with span: %v", s.Name, s.Points)
		}
	}
	lhtLat := sumY(seriesByName(t, lat, "LHT"))
	parLat := sumY(seriesByName(t, lat, "PHT(par)"))
	seqLat := sumY(seriesByName(t, lat, "PHT(seq)"))
	if lhtLat >= parLat || parLat >= seqLat {
		t.Errorf("latency ordering want LHT < PHT(par) < PHT(seq): %v, %v, %v", lhtLat, parLat, seqLat)
	}
}

func TestEq3SavingRatio(t *testing.T) {
	o := testOptions()
	res, err := RunSavingRatio(o, workload.Uniform, 1<<12, []float64{0, 1, 4, 16, 64, 256})
	if err != nil {
		t.Fatal(err)
	}
	analytic := seriesByName(t, res, "analytic (Eq 3)")
	measured := seriesByName(t, res, "measured")
	if analytic.Points[0].Y != 0.75 {
		t.Errorf("analytic at gamma=0 = %v", analytic.Points[0].Y)
	}
	for i := range analytic.Points {
		a, m := analytic.Points[i].Y, measured.Points[i].Y
		if m < 0.40 || m > 0.80 {
			t.Errorf("measured saving at gamma=%v is %v", measured.Points[i].X, m)
		}
		if math.Abs(a-m) > 0.12 {
			t.Errorf("gamma=%v: measured %v far from analytic %v", analytic.Points[i].X, m, a)
		}
	}
}

func TestThm3MinMax(t *testing.T) {
	o := testOptions()
	res, err := RunMinMax(o, workload.Uniform, Sizes(8, 12))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Series {
		for _, p := range s.Points {
			if p.Y != 1 {
				t.Errorf("%s at size %v costs %v lookups, want 1", s.Name, p.X, p.Y)
			}
		}
	}
}

func TestFormatTableAndCSV(t *testing.T) {
	r := Result{
		Name: "Fig X", Title: "demo", XLabel: "size", YLabel: "y",
		Series: []Series{
			{Name: "A", Points: []Point{{X: 1024, Y: 1.5}, {X: 2048, Y: 2}}},
			{Name: "B", Points: []Point{{X: 1024, Y: 1000.25}}},
		},
	}
	table := FormatTable(r)
	for _, want := range []string{"Fig X", "2^10", "2^11", "1.5", "1000.2", "A", "B", "-"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	csv := FormatCSV(r)
	if !strings.Contains(csv, `x,"A","B"`) || !strings.Contains(csv, "1024,1.5,1000.25") {
		t.Errorf("csv malformed:\n%s", csv)
	}
	if got := FormatCSV(Result{}); got != "x\n" {
		t.Errorf("empty csv = %q", got)
	}
}
