package bench

import (
	"fmt"

	"lht/internal/workload"
)

// RunSkewRobustness stresses both schemes beyond the paper's gaussian
// skew with a zipf key distribution (almost all mass within a tiny
// prefix of the key space), which drives the partition tree toward its
// depth bound on the hot side. Measured per size: average lookup cost
// for LHT and PHT (queries drawn from the *data* distribution, so they
// land in the deep region), and the deepest leaf the tree grew.
//
// Expected shape: the hot subtree reaches depths far beyond the uniform
// case, yet LHT's lookup cost stays ~log(D/2) and below PHT's ~log(D) -
// the binary searches depend on D, not on the realized depth, so both
// schemes absorb skew; LHT keeps its constant-factor lead.
func RunSkewRobustness(o Options, sizes []int) (Result, error) {
	o = o.WithDefaults()
	if o.Depth < 30 {
		o.Depth = 40 // give the hot subtree room to grow
	}
	res := Result{
		Name:   "X1",
		Title:  fmt.Sprintf("Skew robustness: zipf keys (D=%d)", o.Depth),
		XLabel: "data size (records)",
		YLabel: "DHT-lookups per lookup / max leaf depth",
	}
	maxSize := sizes[len(sizes)-1]
	lhtYs := make([][]float64, o.Trials)
	phtYs := make([][]float64, o.Trials)
	depthYs := make([][]float64, o.Trials)
	for t := 0; t < o.Trials; t++ {
		gen := workload.NewGenerator(workload.Zipf, o.Seed+int64(t))
		recs := gen.Records(maxSize)
		lix, err := o.newLHT(o.Theta, o.Depth)
		if err != nil {
			return res, err
		}
		pix, err := o.newPHT(o.Theta, o.Depth)
		if err != nil {
			return res, err
		}
		var lrow, prow, drow []float64
		next := 0
		for i, r := range recs {
			if _, err := lix.Insert(r); err != nil {
				return res, err
			}
			if _, err := pix.Insert(r); err != nil {
				return res, err
			}
			if next < len(sizes) && i+1 == sizes[next] {
				var ltot, ptot int
				queries := make([]float64, o.Queries)
				qgen := workload.NewGenerator(workload.Zipf, o.Seed+int64(1000+t))
				for q := range queries {
					queries[q] = qgen.Key()
				}
				for _, q := range queries {
					_, lc, err := lix.LookupBucket(q)
					if err != nil {
						return res, err
					}
					_, pc, err := pix.LookupLeaf(q)
					if err != nil {
						return res, err
					}
					ltot += lc.Lookups
					ptot += pc.Lookups
				}
				lrow = append(lrow, float64(ltot)/float64(o.Queries))
				prow = append(prow, float64(ptot)/float64(o.Queries))

				leaves, err := lix.Leaves()
				if err != nil {
					return res, err
				}
				maxDepth := 0
				for _, b := range leaves {
					if b.Label.Len() > maxDepth {
						maxDepth = b.Label.Len()
					}
				}
				drow = append(drow, float64(maxDepth))
				next++
			}
		}
		lhtYs[t], phtYs[t], depthYs[t] = lrow, prow, drow
	}
	xs := float64s(sizes)
	res.Series = append(res.Series,
		meanSeries("LHT lookups", xs, lhtYs),
		meanSeries("PHT lookups", xs, phtYs),
		meanSeries("max leaf depth", xs, depthYs))
	return res, nil
}
