package rst

import (
	"errors"
	"math/rand"
	"sort"
	"testing"

	"lht/internal/bitlabel"
	"lht/internal/dht"
	"lht/internal/keyspace"
	"lht/internal/record"
)

func intervalOf(l bitlabel.Label) keyspace.Interval { return keyspace.IntervalOf(l) }

func newTestIndex(t *testing.T, cfg Config) *Index {
	t.Helper()
	ix, err := New(dht.NewLocal(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func smallConfig() Config {
	return Config{SplitThreshold: 8, MergeThreshold: 6, Depth: 20, Peers: 20}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},
		{SplitThreshold: 8, Depth: 20, Peers: 0},
		{SplitThreshold: 8, Depth: 70, Peers: 1},
		{SplitThreshold: 8, MergeThreshold: 9, Depth: 20, Peers: 1},
	}
	for _, cfg := range bad {
		if _, err := New(dht.NewLocal(), cfg); !errors.Is(err, ErrConfig) {
			t.Errorf("New(%+v) = %v, want ErrConfig", cfg, err)
		}
	}
}

func TestOracleOps(t *testing.T) {
	ix := newTestIndex(t, smallConfig())
	oracle := make(map[float64]string)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 3000; i++ {
		k := rng.Float64()
		if rng.Intn(4) == 0 && len(oracle) > 0 {
			for dk := range oracle {
				k = dk
				break
			}
			if _, err := ix.Delete(k); err != nil {
				t.Fatalf("Delete(%v): %v", k, err)
			}
			delete(oracle, k)
			continue
		}
		v := string(rune('a' + i%26))
		if _, err := ix.Insert(record.Record{Key: k, Value: []byte(v)}); err != nil {
			t.Fatalf("Insert(%v): %v", k, err)
		}
		oracle[k] = v
		if i%1000 == 999 {
			if err := ix.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
		}
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for k, v := range oracle {
		rec, _, err := ix.Search(k)
		if err != nil || string(rec.Value) != v {
			t.Fatalf("Search(%v) = %v, %v; want %q", k, rec, err, v)
		}
	}
	if _, _, err := ix.Search(0.123456789); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("Search absent = %v", err)
	}
	if n, err := ix.Count(); err != nil || n != len(oracle) {
		t.Fatalf("Count = %d, %v; want %d", n, err, len(oracle))
	}
	// Range against the oracle.
	var keys []float64
	for k := range oracle {
		keys = append(keys, k)
	}
	sort.Float64s(keys)
	for trial := 0; trial < 50; trial++ {
		lo := rng.Float64()
		hi := lo + rng.Float64()*(1-lo)
		if hi <= lo {
			continue
		}
		got, cost, err := ix.Range(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for _, k := range keys {
			if k >= lo && k < hi {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("Range(%v, %v) = %d records, want %d", lo, hi, len(got), want)
		}
		if cost.Steps > 1 {
			t.Fatalf("RST range latency = %d steps, want 1 (all buckets known locally)", cost.Steps)
		}
	}
}

// TestOneHopQueries pins RST's selling point: exact-match is one lookup,
// a range of B buckets is exactly B lookups in one step.
func TestOneHopQueries(t *testing.T) {
	ix := newTestIndex(t, smallConfig())
	rng := rand.New(rand.NewSource(2))
	keys := make([]float64, 400)
	for i := range keys {
		keys[i] = rng.Float64()
		if _, err := ix.Insert(record.Record{Key: keys[i]}); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range keys[:40] {
		_, cost, err := ix.Search(k)
		if err != nil {
			t.Fatal(err)
		}
		if cost.Lookups != 1 {
			t.Fatalf("Search cost = %d, want 1 (one-hop exact match)", cost.Lookups)
		}
	}
	leaves := ix.Leaves()
	_, cost, err := ix.Range(0.2, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	b := 0
	for _, l := range leaves {
		iv := intervalOf(l)
		if iv.Lo < 0.7 && iv.Hi > 0.2 {
			b++
		}
	}
	if cost.Lookups != b {
		t.Fatalf("Range cost = %d lookups for B=%d buckets; RST is exactly optimal", cost.Lookups, b)
	}
}

// TestBroadcastCostScalesWithPeers pins the paper's criticism: the same
// insert workload costs more maintenance on a larger network, because
// every split broadcasts the new tree shape to every peer.
func TestBroadcastCostScalesWithPeers(t *testing.T) {
	maintAt := func(peers int) int64 {
		cfg := Config{SplitThreshold: 8, MergeThreshold: 0, Depth: 20, Peers: peers}
		ix := newTestIndex(t, cfg)
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 1000; i++ {
			if _, err := ix.Insert(record.Record{Key: rng.Float64()}); err != nil {
				t.Fatal(err)
			}
		}
		return ix.Metrics().Flat().MaintLookups
	}
	small := maintAt(10)
	large := maintAt(1000)
	if large < 10*small {
		t.Errorf("maintenance should scale with peers: P=10 -> %d, P=1000 -> %d", small, large)
	}
}

// TestAttachRebuildsShape verifies a second client can join an existing
// tree and serve queries.
func TestAttachRebuildsShape(t *testing.T) {
	d := dht.NewLocal()
	ix, err := New(d, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	keys := make([]float64, 200)
	for i := range keys {
		keys[i] = rng.Float64()
		if _, err := ix.Insert(record.Record{Key: keys[i]}); err != nil {
			t.Fatal(err)
		}
	}
	ix2, err := New(d, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := ix2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys[:20] {
		if _, _, err := ix2.Search(k); err != nil {
			t.Fatalf("attached client Search(%v): %v", k, err)
		}
	}
	if len(ix2.Leaves()) != len(ix.Leaves()) {
		t.Fatalf("rebuilt shape has %d leaves, original %d", len(ix2.Leaves()), len(ix.Leaves()))
	}
}

func TestRangeRejectsBadBounds(t *testing.T) {
	ix := newTestIndex(t, smallConfig())
	for _, b := range [][2]float64{{0.5, 0.5}, {0.6, 0.5}, {-0.1, 0.5}, {0, 1.1}} {
		if _, _, err := ix.Range(b[0], b[1]); err == nil {
			t.Errorf("Range(%v) should fail", b)
		}
	}
}

func TestMergesKeepShapeConsistent(t *testing.T) {
	ix := newTestIndex(t, smallConfig())
	rng := rand.New(rand.NewSource(5))
	keys := make([]float64, 300)
	for i := range keys {
		keys[i] = rng.Float64()
		if _, err := ix.Insert(record.Record{Key: keys[i]}); err != nil {
			t.Fatal(err)
		}
	}
	rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	for _, k := range keys {
		if _, err := ix.Delete(k); err != nil {
			t.Fatalf("Delete(%v): %v", k, err)
		}
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if s := ix.Metrics().Flat(); s.Merges == 0 {
		t.Error("expected merges")
	}
	if n, _ := ix.Count(); n != 0 {
		t.Fatalf("Count = %d", n)
	}
}
